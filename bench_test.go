// The benchmark harness regenerates every experiment table of the paper
// (EXPERIMENTS.md). Each BenchmarkE* target executes one experiment — the
// workload generation, parameter sweep, baselines and checks — and prints
// its tables on the first iteration, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. BenchmarkMicro* targets measure the
// substrate itself (simulator throughput, codec, exploration).
package indulgence_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"indulgence"
	"indulgence/internal/experiments"
	"indulgence/internal/model"
	"indulgence/internal/wire"
)

// printOnce renders each experiment's tables a single time across the
// whole bench run, keeping -bench output readable when Go re-runs a bench
// to calibrate b.N.
var (
	printMu      sync.Mutex
	printedBench = make(map[string]bool)
)

func runExperimentBench(b *testing.B, id string, run func() (*experiments.Outcome, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		o, err := run()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if !o.OK() {
			b.Fatalf("%s failed: %v", id, o.Failures)
		}
		printMu.Lock()
		if !printedBench[id] {
			printedBench[id] = true
			fmt.Println(o)
		}
		printMu.Unlock()
	}
}

// BenchmarkE1LowerBound regenerates the Proposition 1 table: exhaustive
// worst cases of A_{t+2} plus the executed Claim 5.1 constructions.
func BenchmarkE1LowerBound(b *testing.B) {
	runExperimentBench(b, "E1", experiments.E1LowerBound)
}

// BenchmarkE2FastDecision regenerates the Lemma 13 table (decision rounds
// exactly t+2 in synchronous runs), with a heavier random sweep than the
// unit tests.
func BenchmarkE2FastDecision(b *testing.B) {
	runExperimentBench(b, "E2", func() (*experiments.Outcome, error) {
		return experiments.E2FastDecision(500, 1)
	})
}

// BenchmarkE3PriceTable regenerates the headline price-of-indulgence
// table for t = 1..3.
func BenchmarkE3PriceTable(b *testing.B) {
	runExperimentBench(b, "E3", func() (*experiments.Outcome, error) {
		return experiments.E3PriceTable(3)
	})
}

// BenchmarkE4FailureFree regenerates the Fig. 4 failure-free table.
func BenchmarkE4FailureFree(b *testing.B) {
	runExperimentBench(b, "E4", experiments.E4FailureFree)
}

// BenchmarkE5EarlyDecision regenerates the early-decision (f+2) table.
func BenchmarkE5EarlyDecision(b *testing.B) {
	runExperimentBench(b, "E5", experiments.E5EarlyDecision)
}

// BenchmarkE6EventualFast regenerates the Sect. 6 separation tables
// (k+f+2 for A_{f+2} vs k+2f+2 for AMR).
func BenchmarkE6EventualFast(b *testing.B) {
	runExperimentBench(b, "E6", experiments.E6EventualFast)
}

// BenchmarkE7FDSimulation regenerates the Sect. 4 failure-detector
// simulation table.
func BenchmarkE7FDSimulation(b *testing.B) {
	runExperimentBench(b, "E7", func() (*experiments.Outcome, error) {
		return experiments.E7FDSimulation(300, 1)
	})
}

// BenchmarkE8ResiliencePrice regenerates the split-brain table.
func BenchmarkE8ResiliencePrice(b *testing.B) {
	runExperimentBench(b, "E8", experiments.E8ResiliencePrice)
}

// BenchmarkE9LiveRuntime regenerates the live-cluster table (wall-clock
// latencies under delays and crashes).
func BenchmarkE9LiveRuntime(b *testing.B) {
	runExperimentBench(b, "E9", experiments.E9LiveRuntime)
}

// BenchmarkE10AverageCase regenerates the average-case distribution table.
func BenchmarkE10AverageCase(b *testing.B) {
	runExperimentBench(b, "E10", experiments.E10AverageCase)
}

// BenchmarkAblationPhase1 regenerates the Phase-1-length ablation.
func BenchmarkAblationPhase1(b *testing.B) {
	runExperimentBench(b, "A1", experiments.AblationPhase1)
}

// BenchmarkAblationHaltExchange regenerates the Halt-exchange ablation.
func BenchmarkAblationHaltExchange(b *testing.B) {
	runExperimentBench(b, "A2", experiments.AblationHaltExchange)
}

// BenchmarkAblationThreshold regenerates the detector-threshold ablation.
func BenchmarkAblationThreshold(b *testing.B) {
	runExperimentBench(b, "A3", experiments.AblationThreshold)
}

// BenchmarkAblationPlurality regenerates the A_{f+2} plurality-rule
// ablation.
func BenchmarkAblationPlurality(b *testing.B) {
	runExperimentBench(b, "A4", experiments.AblationPlurality)
}

// BenchmarkMicroSimulatedRun measures one full simulated A_{t+2} run
// (n=5, t=2, failure-free): the substrate cost per data point of every
// table above.
func BenchmarkMicroSimulatedRun(b *testing.B) {
	proposals := []indulgence.Value{3, 1, 4, 1, 5}
	factory := indulgence.NewAtPlus2(indulgence.AtPlus2Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := indulgence.Simulate(indulgence.SimConfig{
			Synchrony: indulgence.ES,
			Schedule:  indulgence.FailureFree(5, 2),
			Proposals: proposals,
			Factory:   factory,
		})
		if err != nil {
			b.Fatal(err)
		}
		if gdr, _ := res.GlobalDecisionRound(); gdr != 4 {
			b.Fatalf("gdr = %d", gdr)
		}
	}
}

// BenchmarkMicroSimulatedRunLean measures the traceless run used by the
// exhaustive explorer.
func BenchmarkMicroSimulatedRunLean(b *testing.B) {
	proposals := []indulgence.Value{3, 1, 4, 1, 5}
	factory := indulgence.NewAtPlus2(indulgence.AtPlus2Options{})
	s := indulgence.FailureFree(5, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := indulgence.Simulate(indulgence.SimConfig{
			Synchrony:      indulgence.ES,
			Schedule:       s,
			Proposals:      proposals,
			Factory:        factory,
			SkipTrace:      true,
			SkipValidation: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroSimulatedRunPooled measures the traceless run on a reused
// Simulator — the exact per-run cost inside the explorer and the batched
// sweeps, with all scratch state amortized.
func BenchmarkMicroSimulatedRunPooled(b *testing.B) {
	proposals := []indulgence.Value{3, 1, 4, 1, 5}
	factory := indulgence.NewAtPlus2(indulgence.AtPlus2Options{})
	s := indulgence.FailureFree(5, 2)
	sm := indulgence.NewSimulator()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sm.Run(indulgence.SimConfig{
			Synchrony:      indulgence.ES,
			Schedule:       s,
			Proposals:      proposals,
			Factory:        factory,
			SkipTrace:      true,
			SkipValidation: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroSimulateBatch measures a 64-run batch through the worker
// pool (per-run cost; compare with the Lean and Pooled variants).
func BenchmarkMicroSimulateBatch(b *testing.B) {
	proposals := []indulgence.Value{3, 1, 4, 1, 5}
	factory := indulgence.NewAtPlus2(indulgence.AtPlus2Options{})
	s := indulgence.FailureFree(5, 2)
	cfgs := make([]indulgence.SimConfig, 64)
	for i := range cfgs {
		cfgs[i] = indulgence.SimConfig{
			Synchrony:      indulgence.ES,
			Schedule:       s,
			Proposals:      proposals,
			Factory:        factory,
			SkipTrace:      true,
			SkipValidation: true,
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i += len(cfgs) {
		if _, err := indulgence.SimulateBatch(0, cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroExplore measures a complete exhaustive exploration
// (n=3, t=1, crash rounds 1..3, all subsets — 37 serial runs).
func BenchmarkMicroExplore(b *testing.B) {
	factory := indulgence.NewAtPlus2(indulgence.AtPlus2Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := indulgence.Explore(indulgence.ExploreConfig{
			N: 3, T: 1,
			Synchrony:     indulgence.ES,
			Factory:       factory,
			Proposals:     []indulgence.Value{1, 2, 3},
			MaxCrashRound: 3,
			Mode:          indulgence.AllSubsets,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.WorstRound != 3 {
			b.Fatalf("worst = %d", res.WorstRound)
		}
	}
}

// BenchmarkMicroWireRoundTrip measures the codec on a Phase-1 message.
func BenchmarkMicroWireRoundTrip(b *testing.B) {
	m := model.Message{From: 3, Round: 7, Payload: wireBenchPayload}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, err := wire.EncodeMessage(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := wire.DecodeMessage(enc); err != nil {
			b.Fatal(err)
		}
	}
}

var wireBenchPayload = func() model.Payload {
	// An EstHalt with a populated Halt set, the densest common payload.
	return benchEstHalt()
}()

// BenchmarkMicroRandomES measures random eventually synchronous schedule
// generation plus validation (the E7 workload generator).
func BenchmarkMicroRandomES(b *testing.B) {
	rng := benchRng()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := indulgence.RandomES(5, 2, 4, indulgence.RandomOpts{Rng: rng})
		if err := s.Validate(indulgence.ES); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroSimHR measures a Hurfin–Raynal worst-case run (the most
// round-hungry baseline data point).
func BenchmarkMicroSimHR(b *testing.B) {
	proposals := []indulgence.Value{1, 2, 3, 4, 5}
	factory := indulgence.NewHurfinRaynal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := indulgence.Simulate(indulgence.SimConfig{
			Synchrony: indulgence.ES,
			Schedule:  indulgence.KillCoordinators(5, 2, 2),
			Proposals: proposals,
			Factory:   factory,
		})
		if err != nil {
			b.Fatal(err)
		}
		if gdr, _ := res.GlobalDecisionRound(); gdr != 6 {
			b.Fatalf("gdr = %d", gdr)
		}
	}
}

// BenchmarkMicroServiceThroughput measures the consensus service end to
// end: one iteration drives 256 closed-loop proposals through batched
// concurrent instances over an in-memory cluster and reports
// decisions/sec (instances) and proposals/sec as custom metrics.
func BenchmarkMicroServiceThroughput(b *testing.B) {
	const (
		n, t      = 4, 1
		proposals = 256
		clients   = 32
	)
	b.ReportAllocs()
	var totalProps, totalInstances int
	start := time.Now()
	for i := 0; i < b.N; i++ {
		hub, err := indulgence.NewHub(n)
		if err != nil {
			b.Fatal(err)
		}
		eps := make([]indulgence.Transport, n)
		for j := range eps {
			if eps[j], err = hub.Endpoint(indulgence.ProcessID(j + 1)); err != nil {
				b.Fatal(err)
			}
		}
		svc, err := indulgence.NewService(indulgence.ServiceConfig{
			N: n, T: t,
			Factory:     indulgence.NewAtPlus2(indulgence.AtPlus2Options{}),
			BaseTimeout: 5 * time.Millisecond,
			MaxBatch:    4,
			Linger:      time.Millisecond,
			MaxInflight: 32,
		}, eps)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		var wg sync.WaitGroup
		next := make(chan indulgence.Value, proposals)
		for v := 1; v <= proposals; v++ {
			next <- indulgence.Value(v)
		}
		close(next)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for v := range next {
					fut, err := svc.Propose(ctx, v)
					if err != nil {
						b.Error(err)
						return
					}
					if _, err := fut.Wait(ctx); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if err := svc.Close(); err != nil {
			b.Fatal(err)
		}
		st := svc.Snapshot()
		if len(st.Violations) != 0 {
			b.Fatalf("consensus violations: %v", st.Violations)
		}
		totalProps += st.Resolved
		totalInstances += st.Instances
		_ = hub.Close()
	}
	elapsed := time.Since(start).Seconds()
	b.ReportMetric(float64(totalProps)/elapsed, "proposals/sec")
	b.ReportMetric(float64(totalInstances)/elapsed, "decisions/sec")
}

// BenchmarkMicroServiceThroughputJournal is BenchmarkMicroServiceThroughput
// with the durable decision journal in the write path: every instance
// start and every decision is fsynced (group-committed) before the
// batch's futures resolve. The spread between the two benchmarks is the
// full price of durability; the baseline file records it.
func BenchmarkMicroServiceThroughputJournal(b *testing.B) {
	const (
		n, t      = 4, 1
		proposals = 256
		clients   = 32
	)
	b.ReportAllocs()
	var totalProps, totalInstances, totalSyncs int
	start := time.Now()
	for i := 0; i < b.N; i++ {
		jn, err := indulgence.OpenJournal(b.TempDir(), indulgence.JournalOptions{})
		if err != nil {
			b.Fatal(err)
		}
		hub, err := indulgence.NewHub(n)
		if err != nil {
			b.Fatal(err)
		}
		eps := make([]indulgence.Transport, n)
		for j := range eps {
			if eps[j], err = hub.Endpoint(indulgence.ProcessID(j + 1)); err != nil {
				b.Fatal(err)
			}
		}
		svc, err := indulgence.NewService(indulgence.ServiceConfig{
			N: n, T: t,
			Factory:     indulgence.NewAtPlus2(indulgence.AtPlus2Options{}),
			BaseTimeout: 5 * time.Millisecond,
			MaxBatch:    4,
			Linger:      time.Millisecond,
			MaxInflight: 32,
			Journal:     jn,
		}, eps)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		var wg sync.WaitGroup
		next := make(chan indulgence.Value, proposals)
		for v := 1; v <= proposals; v++ {
			next <- indulgence.Value(v)
		}
		close(next)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for v := range next {
					fut, err := svc.Propose(ctx, v)
					if err != nil {
						b.Error(err)
						return
					}
					if _, err := fut.Wait(ctx); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if err := svc.Close(); err != nil {
			b.Fatal(err)
		}
		st := svc.Snapshot()
		if len(st.Violations) != 0 {
			b.Fatalf("consensus violations: %v", st.Violations)
		}
		js := jn.Snapshot()
		if js.Decisions != st.Instances {
			b.Fatalf("journal holds %d decisions, service decided %d", js.Decisions, st.Instances)
		}
		totalProps += st.Resolved
		totalInstances += st.Instances
		totalSyncs += js.Syncs
		if err := jn.Close(); err != nil {
			b.Fatal(err)
		}
		_ = hub.Close()
	}
	elapsed := time.Since(start).Seconds()
	b.ReportMetric(float64(totalProps)/elapsed, "proposals/sec")
	b.ReportMetric(float64(totalInstances)/elapsed, "decisions/sec")
	b.ReportMetric(float64(totalSyncs)/float64(max(b.N, 1)), "fsyncs/op")
}
