module indulgence

go 1.24
