// Command lowerbound replays the proof of Proposition 1 — the t+2-round
// lower bound — as executable evidence. It builds the five runs of Claim
// 5.1 (Fig. 1 of the paper), executes A_{t+2} in each, and prints the
// indistinguishability chain that makes a global decision at round t+1
// impossible for ANY indulgent algorithm:
//
//	s1 (crash world, 1-ish)  ~  a1 (suspicion world)   at the target, end of t+1
//	s0 (crash world, 0-ish)  ~  a0 (suspicion world)   at the target, end of t+1
//	a2 ~ a1 ~ a0 at every other process through round k'
//
// A t+1-deciding algorithm would have to decide both ways at the target
// while the rest of the system cannot tell the bridging runs apart —
// contradiction. A_{t+2} escapes by paying exactly one more round.
package main

import (
	"fmt"
	"log"

	"indulgence"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, tc := range []struct{ n, t int }{{3, 1}, {5, 2}} {
		if err := demonstrate(tc.n, tc.t); err != nil {
			return err
		}
	}
	return nil
}

func demonstrate(n, t int) error {
	fmt.Printf("=== Claim 5.1 construction, n=%d t=%d ===\n", n, t)
	proposals := make([]indulgence.Value, n)
	for i := range proposals {
		proposals[i] = indulgence.Value(i + 1)
	}
	proposals[0] = 0 // the victim holds the unique minimum

	factory := indulgence.NewAtPlus2(indulgence.AtPlus2Options{})
	c51, err := indulgence.BuildClaim51(factory, n, t, proposals)
	if err != nil {
		return err
	}
	rep, err := c51.Verify(factory)
	if err != nil {
		return err
	}

	fmt.Printf("victim p%d crashes (serial worlds) or is falsely suspected (asynchronous worlds)\n", c51.Victim)
	fmt.Printf("target p%d is the process whose view bridges the worlds; k' = %d\n", c51.Target, rep.KPrime)
	fmt.Printf("  target cannot distinguish s1 from a1 at end of round t+1: %v\n", rep.TargetS1A1)
	fmt.Printf("  target cannot distinguish s0 from a0 at end of round t+1: %v\n", rep.TargetS0A0)
	fmt.Printf("  the two serial worlds s0/s1 DO differ at the target:      %v\n", rep.WorldsDiffer)
	fmt.Printf("  no other process can tell a2/a1/a0 apart through k'=%d:    %v\n", rep.KPrime, rep.ObserversBlind)
	fmt.Printf("  no process decided before round t+2=%d in any run:         %v\n", t+2, rep.NoEarlyDecision)
	fmt.Printf("  validity+agreement held in all five runs:                  %v\n", rep.ConsensusOK)
	fmt.Println("  global decision rounds per run:")
	for _, name := range []string{"s1", "s0", "a2", "a1", "a0"} {
		fmt.Printf("    %s: %d\n", name, rep.GlobalDecisionRounds[name])
	}
	if !rep.OK() {
		return fmt.Errorf("construction checks failed: %v", rep.Details)
	}
	fmt.Println("=> a t+1-round indulgent algorithm would contradict itself; the price is one round")
	fmt.Println()
	return nil
}
