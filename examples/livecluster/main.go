// Command livecluster runs the paper's algorithms as real concurrent
// processes. Five goroutine nodes execute A_{t+2} over an in-memory
// transport with adaptive timeout failure detection; the demo injects an
// asynchronous period (p1's links delayed, causing false suspicions) and a
// crash, then shows everyone still deciding on one value. A second phase
// repeats the quiet-network run over real TCP loopback sockets.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"indulgence"
	"indulgence/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := memoryDemo(); err != nil {
		return err
	}
	return tcpDemo()
}

func memoryDemo() error {
	const (
		n = 5
		t = 2
	)
	hub, err := indulgence.NewHub(n)
	if err != nil {
		return err
	}
	defer func() { _ = hub.Close() }()
	eps := make([]indulgence.Transport, n)
	for i := 0; i < n; i++ {
		if eps[i], err = hub.Endpoint(indulgence.ProcessID(i + 1)); err != nil {
			return err
		}
	}
	proposals := []indulgence.Value{3, 1, 4, 1, 5}
	cl, err := indulgence.NewCluster(indulgence.ClusterConfig{
		N: n, T: t,
		Factory:     indulgence.NewAtPlus2(indulgence.AtPlus2Options{}),
		Proposals:   proposals,
		Endpoints:   eps,
		BaseTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	// Asynchronous period: p1's outbound links are slow for 150ms, so p1
	// is falsely suspected; then p2 crashes for real.
	hub.DelayProcess(1, 40*time.Millisecond)
	time.AfterFunc(150*time.Millisecond, hub.Heal)
	time.AfterFunc(20*time.Millisecond, func() { _ = cl.Crash(2) })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, err := cl.Run(ctx)
	if err != nil {
		return err
	}
	printResults("in-memory cluster: p1 delayed (false suspicions) + p2 crashed", proposals, results)
	return nil
}

func tcpDemo() error {
	const (
		n = 4
		t = 1
	)
	tc, err := indulgence.NewTCPCluster(n)
	if err != nil {
		return err
	}
	defer func() { _ = tc.Close() }()
	eps := make([]indulgence.Transport, n)
	for i := 0; i < n; i++ {
		if eps[i], err = tc.Endpoint(indulgence.ProcessID(i + 1)); err != nil {
			return err
		}
	}
	proposals := []indulgence.Value{6, 2, 8, 4}
	cl, err := indulgence.NewCluster(indulgence.ClusterConfig{
		N: n, T: t,
		Factory:     indulgence.NewAfPlus2(),
		Proposals:   proposals,
		Endpoints:   eps,
		BaseTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, err := cl.Run(ctx)
	if err != nil {
		return err
	}
	printResults("TCP loopback cluster: A_f+2, quiet network", proposals, results)
	return nil
}

func printResults(title string, proposals []indulgence.Value, results []indulgence.NodeResult) {
	table := stats.NewTable(title, "process", "proposal", "decision", "round", "latency", "crashed")
	for _, r := range results {
		dec := "-"
		if v, ok := r.Decision.Get(); ok {
			dec = fmt.Sprintf("%d", v)
		}
		table.AddRowf(fmt.Sprintf("p%d", r.ID), proposals[r.ID-1], dec, r.Round,
			r.Elapsed.Round(100*time.Microsecond), r.Crashed)
	}
	table.Render(os.Stdout)
	fmt.Println()
}
