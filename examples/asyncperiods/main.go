// Command asyncperiods demonstrates indulgence itself: runs that start
// with an arbitrary asynchronous period — delayed messages, false
// suspicions — never violate safety, and decide promptly once the network
// stabilizes.
//
// Part 1 runs A_{t+2} under schedules whose asynchronous prefix grows,
// showing safety throughout and decisions shortly after the GSR.
// Part 2 reproduces the Sect. 6 separation: under their adversarial
// prefixes, A_{f+2} decides at k+f+2 while the leader-based AMR needs
// k+2f+2.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"indulgence"
	"indulgence/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := part1(); err != nil {
		return err
	}
	return part2()
}

// part1: A_{t+2} under random eventually synchronous schedules with
// increasing stabilization times.
func part1() error {
	const (
		n       = 5
		t       = 2
		samples = 50
	)
	proposals := []indulgence.Value{7, 3, 9, 3, 5}
	table := stats.NewTable("Part 1 - A_t+2 under random asynchronous prefixes (50 runs per row)",
		"GSR K", "safety violations", "undecided runs", "max global decision round")
	rng := rand.New(rand.NewSource(42))
	for _, gsr := range []indulgence.Round{1, 3, 6, 10} {
		var violations, undecided int
		var worst indulgence.Round
		for i := 0; i < samples; i++ {
			s := indulgence.RandomES(n, t, gsr, indulgence.RandomOpts{Rng: rng})
			res, err := indulgence.Simulate(indulgence.SimConfig{
				Synchrony: indulgence.ES,
				Schedule:  s,
				Proposals: proposals,
				Factory:   indulgence.NewAtPlus2(indulgence.AtPlus2Options{}),
			})
			if err != nil {
				return err
			}
			rep := indulgence.CheckConsensus(res, proposals)
			if !rep.Validity || !rep.Agreement {
				violations++
			}
			if !res.AllAliveDecided {
				undecided++
				continue
			}
			if gdr, ok := res.GlobalDecisionRound(); ok && gdr > worst {
				worst = gdr
			}
		}
		table.AddRowf(gsr, violations, undecided, worst)
	}
	table.Render(os.Stdout)
	fmt.Println("indulgence: longer asynchronous periods delay decisions but never endanger agreement")
	fmt.Println()
	return nil
}

// part2: the A_{f+2} vs AMR eventual-fast-decision separation.
func part2() error {
	const t = 1 // n = 3t+1 = 4
	table := stats.NewTable("Part 2 - synchronous after round k, f crashes after k (n=4, t=1)",
		"k", "f", "A_f+2 worst", "k+f+2", "AMR worst", "k+2f+2")
	for _, tc := range []struct {
		k indulgence.Round
		f int
	}{{2, 0}, {2, 1}, {4, 0}, {4, 1}} {
		maxCrashes := tc.f
		if maxCrashes == 0 {
			maxCrashes = -1
		}
		af, err := indulgence.Explore(indulgence.ExploreConfig{
			Synchrony:       indulgence.ES,
			Factory:         indulgence.NewAfPlus2(),
			Proposals:       indulgence.DivergenceProposalsFlood(t),
			Base:            indulgence.DivergencePrefixFlood(t, tc.k),
			FirstCrashRound: tc.k + 1,
			MaxCrashes:      maxCrashes,
			MaxCrashRound:   tc.k + indulgence.Round(tc.f+2),
			Mode:            indulgence.AllSubsets,
		})
		if err != nil {
			return err
		}
		amr, err := indulgence.Explore(indulgence.ExploreConfig{
			Synchrony:       indulgence.ES,
			Factory:         indulgence.NewAMR(),
			Proposals:       indulgence.DivergenceProposalsLeader(t),
			Base:            indulgence.DivergencePrefixLeader(t, tc.k),
			FirstCrashRound: tc.k + 1,
			MaxCrashes:      maxCrashes,
			MaxCrashRound:   tc.k + indulgence.Round(2*tc.f+2),
			Mode:            indulgence.AllSubsets,
		})
		if err != nil {
			return err
		}
		table.AddRowf(tc.k, tc.f, af.WorstRound, int(tc.k)+tc.f+2, amr.WorstRound, int(tc.k)+2*tc.f+2)
	}
	table.Render(os.Stdout)
	fmt.Println("A_f+2 recovers from each crash in one round; the leader-based baseline loses a 2-round attempt")
	return nil
}
