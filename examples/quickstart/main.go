// Command quickstart is the smallest end-to-end use of the library: five
// processes run the paper's A_{t+2} under the eventually synchronous model
// with t = 2, first failure-free (global decision at round t+2 = 4), then
// against an adversary that crashes two processes mid-protocol — the
// decision round does not move, which is exactly the fast-decision
// guarantee of the paper (Lemma 13).
package main

import (
	"fmt"
	"log"

	"indulgence"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n = 5
		t = 2
	)
	proposals := []indulgence.Value{3, 1, 4, 1, 5}
	factory := indulgence.NewAtPlus2(indulgence.AtPlus2Options{})

	// A failure-free synchronous run.
	if err := runOnce("failure-free synchronous run", indulgence.FailureFree(n, t), proposals, factory); err != nil {
		return err
	}

	// An adversarial synchronous run: p2 crashes in round 1 reaching only
	// p3; p4 crashes silently in round 2. Still decides at t+2.
	adversarial := indulgence.NewSchedule(n, t)
	adversarial.CrashWithReceivers(2, 1, indulgence.PIDSetOf(3))
	adversarial.CrashSilent(4, 2)
	return runOnce("two crashes, worst-case placement", adversarial, proposals, factory)
}

func runOnce(title string, s *indulgence.Schedule, proposals []indulgence.Value, factory indulgence.Factory) error {
	res, err := indulgence.Simulate(indulgence.SimConfig{
		Synchrony: indulgence.ES,
		Schedule:  s,
		Proposals: proposals,
		Factory:   factory,
	})
	if err != nil {
		return err
	}
	fmt.Printf("--- %s ---\n", title)
	for i, d := range res.Decisions {
		switch {
		case d.Decided():
			fmt.Printf("p%d proposed %d, decided %d at round %d\n", i+1, proposals[i], d.Value, d.Round)
		case res.CrashRounds[i] > 0:
			fmt.Printf("p%d proposed %d, crashed in round %d\n", i+1, proposals[i], res.CrashRounds[i])
		default:
			fmt.Printf("p%d proposed %d, undecided\n", i+1, proposals[i])
		}
	}
	rep := indulgence.CheckConsensus(res, proposals)
	gdr, _ := res.GlobalDecisionRound()
	fmt.Printf("global decision round: %d (t+2 = %d)   validity=%v agreement=%v termination=%v\n\n",
		gdr, s.T()+2, rep.Validity, rep.Agreement, rep.Termination)
	return rep.Err()
}
