// Command priceofindulgence regenerates the paper's headline comparison:
// the worst-case number of rounds to a global decision in synchronous
// runs, measured by exhaustively exploring every serial run (synchronous,
// at most one crash per round) of each algorithm:
//
//	FloodSet / FloodSetWS (synchronous model):   t+1
//	A_{t+2} / A_{◇S}      (indulgent, optimal):  t+2   <- the price: 1 round
//	Hurfin–Raynal         (indulgent, previous): 2t+2
//	CT rotating coordinator (generic ◇S):        3t+3
package main

import (
	"fmt"
	"log"
	"os"

	"indulgence"
	"indulgence/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type row struct {
	name    string
	factory indulgence.Factory
	syn     indulgence.Synchrony
	formula string
	// horizon is the last round worth crashing in for resilience t.
	horizon func(t int) indulgence.Round
	// witness builds the known-worst run for t beyond the exhaustive
	// range (exploration explodes combinatorially with t).
	witness func(n, t int) *indulgence.Schedule
}

func run() error {
	ff := func(n, t int) *indulgence.Schedule { return indulgence.FailureFree(n, t) }
	killer := func(rpp int) func(n, t int) *indulgence.Schedule {
		return func(n, t int) *indulgence.Schedule { return indulgence.KillCoordinators(n, t, rpp) }
	}
	rows := []row{
		{"FloodSet", indulgence.NewFloodSet(), indulgence.SCS, "t+1",
			func(t int) indulgence.Round { return indulgence.Round(t + 1) }, ff},
		{"FloodSetWS", indulgence.NewFloodSetWS(), indulgence.SCS, "t+1",
			func(t int) indulgence.Round { return indulgence.Round(t + 1) }, ff},
		{"A_t+2", indulgence.NewAtPlus2(indulgence.AtPlus2Options{}), indulgence.ES, "t+2",
			func(t int) indulgence.Round { return indulgence.Round(t + 2) }, ff},
		{"A_diamondS", indulgence.NewDiamondS(), indulgence.ES, "t+2",
			func(t int) indulgence.Round { return indulgence.Round(t + 2) }, ff},
		{"HurfinRaynal", indulgence.NewHurfinRaynal(), indulgence.ES, "2t+2",
			func(t int) indulgence.Round { return indulgence.Round(2*t + 2) }, killer(2)},
		{"CT", indulgence.NewCT(), indulgence.ES, "3t+3",
			func(t int) indulgence.Round { return indulgence.Round(3*t + 3) }, killer(3)},
	}
	resilience := []int{1, 2, 3}
	const maxExploreT = 2

	headers := []string{"algorithm", "model", "formula"}
	for _, t := range resilience {
		headers = append(headers, fmt.Sprintf("t=%d (n=%d)", t, 2*t+1))
	}
	table := stats.NewTable("Worst-case global decision round over ALL serial runs ('w' = witness run)", headers...)

	for _, r := range rows {
		cells := []string{r.name, r.syn.String(), r.formula}
		for _, t := range resilience {
			n := 2*t + 1
			proposals := make([]indulgence.Value, n)
			for i := range proposals {
				proposals[i] = indulgence.Value(i + 1)
			}
			if t <= maxExploreT {
				res, err := indulgence.Explore(indulgence.ExploreConfig{
					N: n, T: t,
					Synchrony:     r.syn,
					Factory:       r.factory,
					Proposals:     proposals,
					MaxCrashRound: r.horizon(t),
					Mode:          indulgence.PrefixSubsets,
				})
				if err != nil {
					return fmt.Errorf("%s t=%d: %w", r.name, t, err)
				}
				if res.PropertyViolation != nil {
					return fmt.Errorf("%s t=%d: %v", r.name, t, res.PropertyViolation)
				}
				cells = append(cells, fmt.Sprintf("%d  (%d runs)", res.WorstRound, res.Runs))
				continue
			}
			res, err := indulgence.Simulate(indulgence.SimConfig{
				Synchrony: r.syn,
				Schedule:  r.witness(n, t),
				Proposals: proposals,
				Factory:   r.factory,
			})
			if err != nil {
				return fmt.Errorf("%s t=%d witness: %w", r.name, t, err)
			}
			gdr, _ := res.GlobalDecisionRound()
			cells = append(cells, fmt.Sprintf("%dw", gdr))
		}
		table.AddRow(cells...)
	}
	table.Render(os.Stdout)
	fmt.Println("\nThe inherent price of indulgence: exactly one round over the synchronous optimum,")
	fmt.Println("a 2x improvement over the previously fastest indulgent algorithm in worst-case synchronous runs.")
	return nil
}
