// Package baseline implements the consensus algorithms the paper compares
// against, plus the underlying consensus module C that A_{t+2} delegates to:
//
//   - FloodSet [Lynch 1996]: the t+1-round algorithm for the synchronous
//     crash-stop model SCS — the yardstick against which the paper defines
//     the one-round "price of indulgence" (Sect. 1.3).
//   - FloodSetWS [Charron-Bost, Guerraoui & Schiper 2000]: flooding with
//     perfect failure detection and Halt bookkeeping; global decision at
//     t+1; the algorithm A_{t+2} is a variant of it (Sect. 3.1).
//   - CT: a Chandra–Toueg-style rotating-coordinator ◇S consensus
//     transposed to ES rounds — the paper's underlying module C (footnote 7).
//   - HurfinRaynal [Hurfin & Raynal 1999]: the previously fastest indulgent
//     algorithm, with synchronous runs needing 2t+2 rounds (Sect. 1.4).
//   - AMR [Mostefaoui & Raynal 2001]: the leader-based algorithm that
//     A_{f+2} optimizes, translated to ES per footnote 10; it needs
//     k+2f+2 rounds in runs synchronous after round k with f late crashes.
//
// All algorithms implement model.Algorithm and, once decided, flood DECIDE
// messages so late processes decide too (and so that the t-resilience
// axiom remains satisfiable).
package baseline

import (
	"fmt"
	"slices"

	"indulgence/internal/model"
	"indulgence/internal/payload"
)

// FloodSetName is the algorithm name reported by FloodSet instances.
const FloodSetName = "FloodSet"

// floodSet is the classic synchronous-model flooding consensus: for t+1
// rounds every process broadcasts the set of values it has seen; at the end
// of round t+1 it decides the minimum. Correct only in SCS (it is not
// indulgent: a single false suspicion can break agreement, which is exactly
// the paper's starting point).
type floodSet struct {
	ctx     model.ProcessContext
	seen    map[model.Value]struct{}
	decided model.OptValue
}

var _ model.Algorithm = (*floodSet)(nil)

// NewFloodSet returns a Factory for FloodSet. It requires t ≤ n−2 (the
// regime in which the t+1 bound of [13] is meaningful).
func NewFloodSet() model.Factory {
	return func(ctx model.ProcessContext, proposal model.Value) (model.Algorithm, error) {
		if err := ctx.Validate(); err != nil {
			return nil, err
		}
		if ctx.T > ctx.N-2 {
			return nil, fmt.Errorf("baseline: FloodSet requires t <= n-2, got t=%d n=%d", ctx.T, ctx.N)
		}
		return &floodSet{
			ctx:  ctx,
			seen: map[model.Value]struct{}{proposal: {}},
		}, nil
	}
}

// Name implements model.Algorithm.
func (f *floodSet) Name() string { return FloodSetName }

// StartRound implements model.Algorithm.
func (f *floodSet) StartRound(model.Round) model.Payload {
	if v, ok := f.decided.Get(); ok {
		return payload.Decide{V: v}
	}
	vals := make([]model.Value, 0, len(f.seen))
	for v := range f.seen {
		vals = append(vals, v)
	}
	return payload.NewValues(vals)
}

// EndRound implements model.Algorithm.
func (f *floodSet) EndRound(k model.Round, delivered []model.Message) {
	if !f.decided.IsBottom() {
		return
	}
	if v, ok := payload.FindDecide(delivered); ok {
		f.decided = model.Some(v)
		return
	}
	for _, m := range delivered {
		vs, ok := m.Payload.(payload.Values)
		if !ok {
			continue
		}
		for _, v := range vs.Vals {
			f.seen[v] = struct{}{}
		}
	}
	if int(k) >= f.ctx.T+1 {
		f.decided = model.Some(f.min())
	}
}

func (f *floodSet) min() model.Value {
	vals := make([]model.Value, 0, len(f.seen))
	for v := range f.seen {
		vals = append(vals, v)
	}
	return slices.Min(vals)
}

// Decision implements model.Algorithm.
func (f *floodSet) Decision() (model.Value, bool) { return f.decided.Get() }
