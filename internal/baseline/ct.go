package baseline

import (
	"fmt"

	"indulgence/internal/model"
	"indulgence/internal/payload"
)

// CTName is the algorithm name reported by CT instances.
const CTName = "CT-DiamondS"

// RoundsPerPhaseCT is the number of rounds in one CT coordinator phase.
const RoundsPerPhaseCT = 3

// ct is a Chandra–Toueg-style rotating-coordinator ◇S consensus transposed
// to the ES round model, the paper's underlying consensus module C
// (footnote 7: "any round-based ◇P or ◇S consensus algorithm transposed to
// the ES model"). Phase r (coordinator c = ((r−1) mod n) + 1) spans three
// rounds:
//
//	round 3r−2 (A): every process broadcasts its timestamped estimate;
//	                the coordinator selects the estimate with the highest
//	                timestamp (ties towards the smallest value);
//	round 3r−1 (B): the coordinator broadcasts its proposal; a process
//	                that receives it adopts (est, ts) := (v, r);
//	round 3r   (C): every process acknowledges the proposal it adopted
//	                (⊥ if it suspected the coordinator, i.e. the proposal
//	                did not arrive in-round); a process that observes a
//	                majority of positive acknowledgements for v decides v.
//
// Suspicion is the simulated ◇S of Sect. 4: the coordinator is suspected
// exactly when its round message is missing. After the GSR, the first
// phase with a correct coordinator decides, so termination holds in every
// ES run; the timestamp locking gives uniform agreement with t < n/2.
type ct struct {
	ctx     model.ProcessContext
	est     model.Value
	ts      int
	prop    model.OptValue // coordinator: proposal for the current phase
	ackVal  model.OptValue // acknowledgement to send in round C
	decided model.OptValue
}

var _ model.Algorithm = (*ct)(nil)

// NewCT returns a Factory for the CT underlying consensus. It requires the
// indulgence resilience t < n/2.
func NewCT() model.Factory {
	return func(ctx model.ProcessContext, proposal model.Value) (model.Algorithm, error) {
		if err := ctx.Validate(); err != nil {
			return nil, err
		}
		if !ctx.MajorityCorrect() {
			return nil, fmt.Errorf("baseline: CT requires t < n/2, got t=%d n=%d", ctx.T, ctx.N)
		}
		return &ct{ctx: ctx, est: proposal}, nil
	}
}

// phasePos returns the 1-based phase and the position (0=A, 1=B, 2=C) of
// round k.
func phasePosCT(k model.Round) (phase, pos int) {
	return (int(k)-1)/RoundsPerPhaseCT + 1, (int(k) - 1) % RoundsPerPhaseCT
}

// coordOf returns the coordinator of the given 1-based phase.
func coordOf(phase, n int) model.ProcessID {
	return model.ProcessID((phase-1)%n + 1)
}

// Name implements model.Algorithm.
func (c *ct) Name() string { return CTName }

// StartRound implements model.Algorithm.
func (c *ct) StartRound(k model.Round) model.Payload {
	if v, ok := c.decided.Get(); ok {
		return payload.Decide{V: v}
	}
	phase, pos := phasePosCT(k)
	switch pos {
	case 0:
		return payload.Estimate{Est: c.est, TS: c.ts}
	case 1:
		if coordOf(phase, c.ctx.N) == c.ctx.Self {
			if v, ok := c.prop.Get(); ok {
				return payload.Propose{V: v}
			}
		}
		// Non-coordinators (and a coordinator with nothing to propose,
		// which cannot happen since it always hears itself) send their
		// estimate as the round's dummy message (footnote 1).
		return payload.Estimate{Est: c.est, TS: c.ts}
	default:
		return payload.Ack{Val: c.ackVal}
	}
}

// EndRound implements model.Algorithm.
func (c *ct) EndRound(k model.Round, delivered []model.Message) {
	if v, ok := payload.FindDecide(delivered); ok && c.decided.IsBottom() {
		c.decided = model.Some(v)
	}
	if !c.decided.IsBottom() {
		return
	}
	phase, pos := phasePosCT(k)
	roundMsgs := payload.OfRound(k, delivered)
	switch pos {
	case 0:
		c.prop = model.Bottom()
		if coordOf(phase, c.ctx.N) == c.ctx.Self {
			if est, _, ok := payload.BestEstimate(roundMsgs); ok {
				c.prop = model.Some(est)
			}
		}
	case 1:
		c.ackVal = model.Bottom()
		coord := coordOf(phase, c.ctx.N)
		for _, m := range roundMsgs {
			p, ok := m.Payload.(payload.Propose)
			if !ok || m.From != coord {
				continue
			}
			c.est = p.V
			c.ts = phase
			c.ackVal = model.Some(p.V)
		}
	default:
		counts := make(map[model.Value]int)
		for _, m := range roundMsgs {
			a, ok := m.Payload.(payload.Ack)
			if !ok {
				continue
			}
			if v, some := a.Val.Get(); some {
				counts[v]++
			}
		}
		for v, cnt := range counts {
			if cnt >= c.ctx.Majority() {
				c.decide(v)
			}
		}
	}
}

func (c *ct) decide(v model.Value) {
	if c.decided.IsBottom() {
		c.decided = model.Some(v)
	}
}

// Decision implements model.Algorithm.
func (c *ct) Decision() (model.Value, bool) { return c.decided.Get() }
