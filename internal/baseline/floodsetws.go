package baseline

import (
	"fmt"

	"indulgence/internal/fd"
	"indulgence/internal/model"
	"indulgence/internal/payload"
)

// FloodSetWSName is the algorithm name reported by FloodSetWS instances.
const FloodSetWSName = "FloodSetWS"

// floodSetWS is the FloodSetWS algorithm of [Charron-Bost, Guerraoui &
// Schiper 2000] in its round form: estimate flooding with Halt bookkeeping
// under perfect failure detection, deciding the current estimate at the
// end of round t+1. In SCS every suspicion is accurate (a missing round-k
// message implies the sender crashed), which is exactly the perfect
// failure detector P; the algorithm then achieves global decision at round
// t+1 in every run. A_{t+2} (internal/core) is this algorithm extended by
// one round of false-suspicion detection, which is how the paper derives
// its matching upper bound.
type floodSetWS struct {
	ctx     model.ProcessContext
	est     model.Value
	halt    model.PIDSet
	decided model.OptValue
}

var _ model.Algorithm = (*floodSetWS)(nil)

// NewFloodSetWS returns a Factory for FloodSetWS. It requires t ≤ n−2 and
// is correct only under SCS (perfect suspicions).
func NewFloodSetWS() model.Factory {
	return func(ctx model.ProcessContext, proposal model.Value) (model.Algorithm, error) {
		if err := ctx.Validate(); err != nil {
			return nil, err
		}
		if ctx.T > ctx.N-2 {
			return nil, fmt.Errorf("baseline: FloodSetWS requires t <= n-2, got t=%d n=%d", ctx.T, ctx.N)
		}
		return &floodSetWS{ctx: ctx, est: proposal}, nil
	}
}

// Name implements model.Algorithm.
func (f *floodSetWS) Name() string { return FloodSetWSName }

// StartRound implements model.Algorithm.
func (f *floodSetWS) StartRound(model.Round) model.Payload {
	if v, ok := f.decided.Get(); ok {
		return payload.Decide{V: v}
	}
	return payload.EstHalt{Est: f.est, Halt: f.halt}
}

// EndRound implements model.Algorithm.
func (f *floodSetWS) EndRound(k model.Round, delivered []model.Message) {
	if !f.decided.IsBottom() {
		return
	}
	if v, ok := payload.FindDecide(delivered); ok {
		f.decided = model.Some(v)
		return
	}
	roundMsgs := payload.OfRound(k, delivered)
	// Suspect every process whose round-k message is missing, and every
	// process that reports having suspected us.
	f.halt = f.halt.Union(fd.Suspected(f.ctx.N, k, delivered))
	for _, m := range roundMsgs {
		eh, ok := m.Payload.(payload.EstHalt)
		if !ok {
			continue
		}
		if eh.Halt.Has(f.ctx.Self) {
			f.halt.Add(m.From)
		}
	}
	// msgSet: round-k messages whose senders are not halted.
	for _, m := range roundMsgs {
		eh, ok := m.Payload.(payload.EstHalt)
		if !ok || f.halt.Has(m.From) {
			continue
		}
		if eh.Est < f.est {
			f.est = eh.Est
		}
	}
	if int(k) >= f.ctx.T+1 {
		f.decided = model.Some(f.est)
	}
}

// Decision implements model.Algorithm.
func (f *floodSetWS) Decision() (model.Value, bool) { return f.decided.Get() }
