package baseline_test

import (
	"math/rand"
	"testing"

	"indulgence/internal/baseline"
	"indulgence/internal/check"
	"indulgence/internal/lowerbound"
	"indulgence/internal/model"
	"indulgence/internal/sched"
	"indulgence/internal/sim"
)

func props(n int) []model.Value {
	out := make([]model.Value, n)
	for i := range out {
		out[i] = model.Value(i + 1)
	}
	return out
}

// mustRun simulates one run and fails the test on any error or property
// violation.
func mustRun(t *testing.T, factory model.Factory, syn model.Synchrony, s *sched.Schedule) *sim.Result {
	t.Helper()
	p := props(s.N())
	res, err := sim.Run(sim.Config{Synchrony: syn, Schedule: s, Proposals: p, Factory: factory})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep := check.Consensus(res, p); !rep.OK() {
		t.Fatalf("consensus: %v (schedule %v)", rep.Err(), s)
	}
	return res
}

// gdr extracts the global decision round.
func gdr(t *testing.T, res *sim.Result) model.Round {
	t.Helper()
	r, ok := res.GlobalDecisionRound()
	if !ok {
		t.Fatal("no decision")
	}
	return r
}

// exploreWorst runs the serial-run explorer and returns the worst round.
func exploreWorst(t *testing.T, factory model.Factory, syn model.Synchrony, n, tt int, maxCrashRound model.Round, mode lowerbound.SubsetMode) model.Round {
	t.Helper()
	res, err := lowerbound.Explore(lowerbound.Config{
		N: n, T: tt,
		Synchrony:     syn,
		Factory:       factory,
		Proposals:     props(n),
		MaxCrashRound: maxCrashRound,
		Mode:          mode,
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if res.PropertyViolation != nil {
		t.Fatalf("consensus violation in %v: %v", res.ViolationWitness, res.PropertyViolation)
	}
	if res.Undecided {
		t.Fatalf("undecided serial run, witness %v", res.Witness)
	}
	return res.WorstRound
}

// randomESSweep checks safety and termination over seeded random
// eventually synchronous runs.
func randomESSweep(t *testing.T, factory model.Factory, n, tt, samples int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		gsr := model.Round(1 + rng.Intn(7))
		s := sched.RandomES(n, tt, gsr, sched.RandomOpts{Rng: rng})
		p := props(n)
		res, err := sim.Run(sim.Config{Synchrony: model.ES, Schedule: s, Proposals: p, Factory: factory})
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if rep := check.Consensus(res, p); !rep.OK() {
			t.Fatalf("sample %d: %v\nschedule %v", i, rep.Err(), s)
		}
	}
}

func TestFloodSetDecidesAtTPlus1(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{3, 1}, {5, 2}, {5, 3}, {7, 3}} {
		res := mustRun(t, baseline.NewFloodSet(), model.SCS, sched.FailureFree(tc.n, tc.t))
		if got := gdr(t, res); int(got) != tc.t+1 {
			t.Errorf("n=%d t=%d: gdr=%d want %d", tc.n, tc.t, got, tc.t+1)
		}
	}
}

func TestFloodSetSerialWorst(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{3, 1}, {4, 2}, {5, 2}} {
		worst := exploreWorst(t, baseline.NewFloodSet(), model.SCS, tc.n, tc.t,
			model.Round(tc.t+1), lowerbound.AllSubsets)
		if int(worst) != tc.t+1 {
			t.Errorf("n=%d t=%d worst=%d, want t+1=%d", tc.n, tc.t, worst, tc.t+1)
		}
	}
}

func TestFloodSetGuards(t *testing.T) {
	if _, err := baseline.NewFloodSet()(model.ProcessContext{Self: 1, N: 3, T: 2}, 1); err == nil {
		t.Fatal("t = n-1 must be rejected")
	}
	if _, err := baseline.NewFloodSet()(model.ProcessContext{Self: 9, N: 3, T: 1}, 1); err == nil {
		t.Fatal("invalid context must be rejected")
	}
}

func TestFloodSetWSSerialWorst(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{3, 1}, {5, 2}} {
		worst := exploreWorst(t, baseline.NewFloodSetWS(), model.SCS, tc.n, tc.t,
			model.Round(tc.t+1), lowerbound.AllSubsets)
		if int(worst) != tc.t+1 {
			t.Errorf("n=%d t=%d worst=%d, want t+1=%d", tc.n, tc.t, worst, tc.t+1)
		}
	}
}

func TestCTFailureFree(t *testing.T) {
	res := mustRun(t, baseline.NewCT(), model.ES, sched.FailureFree(5, 2))
	if got := gdr(t, res); got != 3 {
		t.Errorf("failure-free CT gdr=%d, want 3 (one phase)", got)
	}
}

func TestCTCoordinatorKiller(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{3, 1}, {5, 2}} {
		res := mustRun(t, baseline.NewCT(), model.ES, sched.KillCoordinators(tc.n, tc.t, baseline.RoundsPerPhaseCT))
		if got := gdr(t, res); int(got) != 3*tc.t+3 {
			t.Errorf("n=%d t=%d: gdr=%d want 3t+3=%d", tc.n, tc.t, got, 3*tc.t+3)
		}
	}
}

func TestCTRandomES(t *testing.T) {
	randomESSweep(t, baseline.NewCT(), 5, 2, 80, 101)
}

func TestCTGuards(t *testing.T) {
	if _, err := baseline.NewCT()(model.ProcessContext{Self: 1, N: 4, T: 2}, 1); err == nil {
		t.Fatal("t >= n/2 must be rejected")
	}
}

func TestHurfinRaynalFailureFree(t *testing.T) {
	res := mustRun(t, baseline.NewHurfinRaynal(), model.ES, sched.FailureFree(5, 2))
	if got := gdr(t, res); got != 2 {
		t.Errorf("failure-free HR gdr=%d, want 2", got)
	}
}

func TestHurfinRaynalWorstCase(t *testing.T) {
	// The paper's Sect. 1.4 claim: a synchronous run needing 2t+2 rounds.
	for _, tc := range []struct{ n, t int }{{3, 1}, {5, 2}} {
		res := mustRun(t, baseline.NewHurfinRaynal(), model.ES, sched.KillCoordinators(tc.n, tc.t, baseline.RoundsPerPhaseHR))
		if got := gdr(t, res); int(got) != 2*tc.t+2 {
			t.Errorf("n=%d t=%d: killer gdr=%d want 2t+2=%d", tc.n, tc.t, got, 2*tc.t+2)
		}
		// And exhaustively: no serial run is worse.
		worst := exploreWorst(t, baseline.NewHurfinRaynal(), model.ES, tc.n, tc.t,
			model.Round(2*tc.t+2), lowerbound.PrefixSubsets)
		if int(worst) != 2*tc.t+2 {
			t.Errorf("n=%d t=%d explored worst=%d want %d", tc.n, tc.t, worst, 2*tc.t+2)
		}
	}
}

func TestHurfinRaynalRandomES(t *testing.T) {
	randomESSweep(t, baseline.NewHurfinRaynal(), 5, 2, 80, 202)
}

func TestAMRFailureFree(t *testing.T) {
	res := mustRun(t, baseline.NewAMR(), model.ES, sched.FailureFree(4, 1))
	if got := gdr(t, res); got != 2 {
		t.Errorf("failure-free AMR gdr=%d, want 2 (one attempt)", got)
	}
}

func TestAMRGuards(t *testing.T) {
	if _, err := baseline.NewAMR()(model.ProcessContext{Self: 1, N: 6, T: 2}, 1); err == nil {
		t.Fatal("t >= n/3 must be rejected")
	}
}

func TestAMRSerialWorst(t *testing.T) {
	worst := exploreWorst(t, baseline.NewAMR(), model.ES, 4, 1, 4, lowerbound.AllSubsets)
	if worst != 4 {
		t.Errorf("worst=%d, want 2t+2=4", worst)
	}
}

func TestAMRRandomES(t *testing.T) {
	randomESSweep(t, baseline.NewAMR(), 7, 2, 60, 303)
}

func TestAlgorithmNames(t *testing.T) {
	cases := []struct {
		factory model.Factory
		ctx     model.ProcessContext
		want    string
	}{
		{baseline.NewFloodSet(), model.ProcessContext{Self: 1, N: 5, T: 2}, baseline.FloodSetName},
		{baseline.NewFloodSetWS(), model.ProcessContext{Self: 1, N: 5, T: 2}, baseline.FloodSetWSName},
		{baseline.NewCT(), model.ProcessContext{Self: 1, N: 5, T: 2}, baseline.CTName},
		{baseline.NewHurfinRaynal(), model.ProcessContext{Self: 1, N: 5, T: 2}, baseline.HurfinRaynalName},
		{baseline.NewAMR(), model.ProcessContext{Self: 1, N: 7, T: 2}, baseline.AMRName},
	}
	for _, tc := range cases {
		a, err := tc.factory(tc.ctx, 1)
		if err != nil {
			t.Fatalf("%s: %v", tc.want, err)
		}
		if a.Name() != tc.want {
			t.Errorf("Name() = %q, want %q", a.Name(), tc.want)
		}
	}
}
