package baseline

import (
	"fmt"

	"indulgence/internal/fd"
	"indulgence/internal/model"
	"indulgence/internal/payload"
)

// AMRName is the algorithm name reported by AMR instances.
const AMRName = "AMR-Leader"

// RoundsPerAttemptAMR is the number of rounds in one AMR leader attempt.
const RoundsPerAttemptAMR = 2

// amr is the second, leader-based consensus algorithm of Mostefaoui &
// Raynal [14] translated to the ES model exactly as the paper's footnote
// 10 prescribes: the eventual leader primitive is simulated by taking, in
// each round, the minimum process identity among the senders of the
// messages received in that round. A_{f+2} (internal/core) is the paper's
// optimization of this algorithm; the point of the Sect. 6 comparison is
// that a run of AMR that is synchronous after round k with f crashes after
// round k needs k + 2f + 2 rounds, against k + f + 2 for A_{f+2}.
//
// Attempt r spans two rounds:
//
//	round 2r−1 (A): every process broadcasts its estimate; each process
//	                adopts the estimate of its current leader (the minimum
//	                identity heard this round) if the leader was heard;
//	round 2r   (B): every process broadcasts the adopted estimate; a
//	                process receiving n−t identical estimates v decides v;
//	                otherwise it adopts any value appearing at least n−2t
//	                times (unique when t < n/3), or the minimum received.
//
// Requires t < n/3 (the quorum-intersection observation of Sect. 6).
type amr struct {
	ctx     model.ProcessContext
	est     model.Value
	decided model.OptValue
}

var _ model.Algorithm = (*amr)(nil)

// NewAMR returns a Factory for the AMR leader-based baseline. It requires
// t < n/3.
func NewAMR() model.Factory {
	return func(ctx model.ProcessContext, proposal model.Value) (model.Algorithm, error) {
		if err := ctx.Validate(); err != nil {
			return nil, err
		}
		if 3*ctx.T >= ctx.N {
			return nil, fmt.Errorf("baseline: AMR requires t < n/3, got t=%d n=%d", ctx.T, ctx.N)
		}
		return &amr{ctx: ctx, est: proposal}, nil
	}
}

// Name implements model.Algorithm.
func (a *amr) Name() string { return AMRName }

// StartRound implements model.Algorithm.
func (a *amr) StartRound(k model.Round) model.Payload {
	if v, ok := a.decided.Get(); ok {
		return payload.Decide{V: v}
	}
	if (int(k)-1)%RoundsPerAttemptAMR == 0 {
		return payload.Estimate{Est: a.est}
	}
	return payload.Adopt{Est: a.est}
}

// EndRound implements model.Algorithm.
func (a *amr) EndRound(k model.Round, delivered []model.Message) {
	if v, ok := payload.FindDecide(delivered); ok && a.decided.IsBottom() {
		a.decided = model.Some(v)
	}
	if !a.decided.IsBottom() {
		return
	}
	roundMsgs := payload.OfRound(k, delivered)
	if (int(k)-1)%RoundsPerAttemptAMR == 0 {
		// Leader round: adopt the estimate of the minimum identity heard.
		leader := fd.Leader(k, roundMsgs)
		for _, m := range roundMsgs {
			e, ok := m.Payload.(payload.Estimate)
			if !ok || m.From != leader {
				continue
			}
			a.est = e.Est
		}
		return
	}
	// Adoption round: decide on n−t identical values, adopt an (n−2t)-
	// plurality, else the minimum. The pick is deterministic (highest
	// count, ties towards the smallest value): when a decision is possible
	// somewhere, the (n−2t)-plurality value is unique by the t < n/3
	// observation, and otherwise any deterministic choice is safe.
	counts := make(map[model.Value]int)
	var minVal, bestVal model.Value
	bestCnt := 0
	seen := false
	for _, m := range roundMsgs {
		ad, ok := m.Payload.(payload.Adopt)
		if !ok {
			continue
		}
		counts[ad.Est]++
		if cnt := counts[ad.Est]; cnt > bestCnt || (cnt == bestCnt && ad.Est < bestVal) {
			bestVal, bestCnt = ad.Est, cnt
		}
		if !seen || ad.Est < minVal {
			minVal, seen = ad.Est, true
		}
	}
	if !seen {
		return
	}
	switch {
	case bestCnt >= a.ctx.N-a.ctx.T:
		a.decided = model.Some(bestVal)
	case bestCnt >= a.ctx.N-2*a.ctx.T:
		a.est = bestVal
	default:
		a.est = minVal
	}
}

// Decision implements model.Algorithm.
func (a *amr) Decision() (model.Value, bool) { return a.decided.Get() }
