package baseline

import (
	"fmt"

	"indulgence/internal/model"
	"indulgence/internal/payload"
)

// HurfinRaynalName is the algorithm name reported by HurfinRaynal
// instances.
const HurfinRaynalName = "HurfinRaynal"

// RoundsPerPhaseHR is the number of rounds in one Hurfin–Raynal phase.
const RoundsPerPhaseHR = 2

// hurfinRaynal is the Hurfin–Raynal ◇S consensus [10] in its essential
// round form: a rotating coordinator with two rounds per phase. Before the
// paper's A_{t+2}, this was the most efficient indulgent algorithm known
// in worst-case synchronous runs, and the paper's Sect. 1.4 comparison
// point: crashing the coordinators of the first t phases forces a
// synchronous run in which the global decision only happens at round 2t+2.
//
// Phase r (coordinator c = ((r−1) mod n) + 1):
//
//	round 2r−1 (A): the coordinator broadcasts its proposal (selected from
//	                the timestamped estimates received in the previous
//	                round; its own proposal in phase 1); other processes
//	                broadcast their estimate. A process receiving the
//	                proposal in-round adopts (est, ts) := (v, r).
//	round 2r   (B): every process broadcasts its estimate together with a
//	                positive or negative acknowledgement; a process that
//	                observes a majority of positive acknowledgements for v
//	                decides v, and coordinators of later phases refresh
//	                their view of the estimates from these messages.
//
// The structure preserves exactly the property the paper cites: 2 rounds
// per coordinator crash, hence 2t+2 rounds in the worst synchronous run,
// and 2 rounds in failure-free synchronous runs.
type hurfinRaynal struct {
	ctx     model.ProcessContext
	est     model.Value
	ts      int
	prop    model.OptValue // proposal to send when coordinating
	ackVal  model.OptValue // acknowledgement to send in round B
	decided model.OptValue
}

var _ model.Algorithm = (*hurfinRaynal)(nil)

// NewHurfinRaynal returns a Factory for the Hurfin–Raynal baseline. It
// requires the indulgence resilience t < n/2.
func NewHurfinRaynal() model.Factory {
	return func(ctx model.ProcessContext, proposal model.Value) (model.Algorithm, error) {
		if err := ctx.Validate(); err != nil {
			return nil, err
		}
		if !ctx.MajorityCorrect() {
			return nil, fmt.Errorf("baseline: HurfinRaynal requires t < n/2, got t=%d n=%d", ctx.T, ctx.N)
		}
		h := &hurfinRaynal{ctx: ctx, est: proposal}
		if coordOf(1, ctx.N) == ctx.Self {
			h.prop = model.Some(proposal)
		}
		return h, nil
	}
}

func phasePosHR(k model.Round) (phase, pos int) {
	return (int(k)-1)/RoundsPerPhaseHR + 1, (int(k) - 1) % RoundsPerPhaseHR
}

// Name implements model.Algorithm.
func (h *hurfinRaynal) Name() string { return HurfinRaynalName }

// StartRound implements model.Algorithm.
func (h *hurfinRaynal) StartRound(k model.Round) model.Payload {
	if v, ok := h.decided.Get(); ok {
		return payload.Decide{V: v}
	}
	phase, pos := phasePosHR(k)
	if pos == 0 {
		if coordOf(phase, h.ctx.N) == h.ctx.Self {
			if v, ok := h.prop.Get(); ok {
				return payload.Propose{V: v}
			}
		}
		return payload.Estimate{Est: h.est, TS: h.ts}
	}
	return payload.AckEst{Est: h.est, TS: h.ts, Ack: h.ackVal}
}

// EndRound implements model.Algorithm.
func (h *hurfinRaynal) EndRound(k model.Round, delivered []model.Message) {
	if v, ok := payload.FindDecide(delivered); ok && h.decided.IsBottom() {
		h.decided = model.Some(v)
	}
	if !h.decided.IsBottom() {
		return
	}
	phase, pos := phasePosHR(k)
	roundMsgs := payload.OfRound(k, delivered)
	if pos == 0 {
		h.ackVal = model.Bottom()
		coord := coordOf(phase, h.ctx.N)
		for _, m := range roundMsgs {
			p, ok := m.Payload.(payload.Propose)
			if !ok || m.From != coord {
				continue
			}
			h.est = p.V
			h.ts = phase
			h.ackVal = model.Some(p.V)
		}
		return
	}
	counts := make(map[model.Value]int)
	for _, m := range roundMsgs {
		a, ok := m.Payload.(payload.AckEst)
		if !ok {
			continue
		}
		if v, some := a.Ack.Get(); some {
			counts[v]++
		}
	}
	for v, cnt := range counts {
		if cnt >= h.ctx.Majority() && h.decided.IsBottom() {
			h.decided = model.Some(v)
		}
	}
	// Refresh the proposal for the next phase if this process coordinates
	// it: pick the estimate with the highest timestamp among the fresh
	// AckEst messages.
	h.prop = model.Bottom()
	if coordOf(phase+1, h.ctx.N) == h.ctx.Self {
		if est, _, ok := payload.BestEstimate(roundMsgs); ok {
			h.prop = model.Some(est)
		}
	}
}

// Decision implements model.Algorithm.
func (h *hurfinRaynal) Decision() (model.Value, bool) { return h.decided.Get() }
