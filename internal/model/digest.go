package model

import "encoding/binary"

// The digest helpers below define the deterministic byte encoding used for
// run digests, indistinguishability checks, and configuration memoization.
// Each helper is length- or tag-prefixed so that concatenations are
// unambiguous (no two distinct structured values share an encoding).

// AppendDigestInt appends a fixed-width encoding of v to dst.
func AppendDigestInt(dst []byte, v int64) []byte {
	var buf [9]byte
	buf[0] = 'i'
	binary.BigEndian.PutUint64(buf[1:], uint64(v))
	return append(dst, buf[:]...)
}

// AppendDigestBool appends a 1-byte encoding of v to dst.
func AppendDigestBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 'T')
	}
	return append(dst, 'F')
}

// AppendDigestString appends a length-prefixed encoding of s to dst.
func AppendDigestString(dst []byte, s string) []byte {
	dst = AppendDigestInt(dst, int64(len(s)))
	return append(dst, s...)
}

// AppendDigestValues appends a length-prefixed encoding of vs to dst.
func AppendDigestValues(dst []byte, vs []Value) []byte {
	dst = AppendDigestInt(dst, int64(len(vs)))
	for _, v := range vs {
		dst = AppendDigestInt(dst, int64(v))
	}
	return dst
}

// AppendDigestOptValue appends an encoding of o (distinguishing ⊥ from any
// concrete value) to dst.
func AppendDigestOptValue(dst []byte, o OptValue) []byte {
	v, ok := o.Get()
	dst = AppendDigestBool(dst, ok)
	if ok {
		dst = AppendDigestInt(dst, int64(v))
	}
	return dst
}

// AppendDigestPIDSet appends an encoding of s to dst.
func AppendDigestPIDSet(dst []byte, s PIDSet) []byte {
	return AppendDigestInt(dst, int64(uint64(s)))
}
