package model

import (
	"math/bits"
	"strconv"
	"strings"
)

// PIDSet is a set of process identities backed by a bitmask, supporting
// systems of up to MaxProcesses processes. The zero value is the empty set.
// It is the representation of the paper's Halt sets and of receiver sets in
// adversary schedules. PIDSet is a value type: methods that grow the set
// take a pointer receiver, everything else is pure.
type PIDSet uint64

// NewPIDSet returns the set containing the given processes.
func NewPIDSet(ps ...ProcessID) PIDSet {
	var s PIDSet
	for _, p := range ps {
		s.Add(p)
	}
	return s
}

// FullPIDSet returns the set {1..n}.
func FullPIDSet(n int) PIDSet {
	if n <= 0 {
		return 0
	}
	if n >= MaxProcesses {
		return PIDSet(^uint64(0))
	}
	return PIDSet((uint64(1) << uint(n)) - 1)
}

// Has reports whether p is in the set.
func (s PIDSet) Has(p ProcessID) bool {
	if p < 1 || p > MaxProcesses {
		return false
	}
	return s&(1<<uint(p-1)) != 0
}

// Add inserts p into the set. Out-of-range IDs are ignored.
func (s *PIDSet) Add(p ProcessID) {
	if p < 1 || p > MaxProcesses {
		return
	}
	*s |= 1 << uint(p-1)
}

// Remove deletes p from the set.
func (s *PIDSet) Remove(p ProcessID) {
	if p < 1 || p > MaxProcesses {
		return
	}
	*s &^= 1 << uint(p-1)
}

// Union returns s ∪ o.
func (s PIDSet) Union(o PIDSet) PIDSet { return s | o }

// Intersect returns s ∩ o.
func (s PIDSet) Intersect(o PIDSet) PIDSet { return s & o }

// Diff returns s \ o.
func (s PIDSet) Diff(o PIDSet) PIDSet { return s &^ o }

// Len returns the cardinality of the set.
func (s PIDSet) Len() int { return bits.OnesCount64(uint64(s)) }

// IsEmpty reports whether the set is empty.
func (s PIDSet) IsEmpty() bool { return s == 0 }

// Members returns the elements in ascending order.
func (s PIDSet) Members() []ProcessID {
	out := make([]ProcessID, 0, s.Len())
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, ProcessID(i+1))
		v &^= 1 << uint(i)
	}
	return out
}

// String implements fmt.Stringer, rendering like {1,3,4}.
func (s PIDSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(p)))
	}
	b.WriteByte('}')
	return b.String()
}
