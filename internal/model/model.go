// Package model defines the round-based computation model of Dutta &
// Guerraoui's "The inherent price of indulgence" (PODC 2002 / Distributed
// Computing 18(1), 2005): process identities, totally ordered proposal
// values with an explicit ⊥, round-stamped messages with deterministic
// digests, and the Algorithm state-machine contract implemented by every
// consensus protocol in this repository.
//
// The model is shared by the two synchrony flavours studied in the paper:
// the synchronous crash-stop model SCS and the eventually synchronous model
// ES. Rounds are communication-closed in the sense that each round has a
// send phase (every live process broadcasts one payload, including to
// itself) followed by a receive phase (the process is handed every message
// the adversary delivers in that round: same-round messages plus, in ES,
// messages delayed from earlier rounds).
package model

import (
	"fmt"
	"math"
)

// ProcessID identifies a process. IDs are 1-based: the paper's processes
// p1..pn map to ProcessID 1..n. The zero value is invalid.
type ProcessID int

// Round is a 1-based round number. Round 0 denotes "before round 1" (for
// example an unset decision round).
type Round int

// Synchrony selects which round-based model a run executes under.
type Synchrony int

const (
	// SCS is the synchronous crash-stop model: a message sent in round k
	// is delivered in round k unless its sender crashed in round k, in
	// which case any subset of its round-k messages may be lost.
	SCS Synchrony = iota + 1
	// ES is the eventually synchronous model: runs may be asynchronous
	// (messages delayed, processes falsely suspected) for an arbitrary yet
	// finite prefix, but from an unknown global stabilization round (the
	// paper's K, the schedule's GSR) behaviour is synchronous. Every run
	// additionally satisfies t-resilience and reliable channels.
	ES
)

// String implements fmt.Stringer.
func (s Synchrony) String() string {
	switch s {
	case SCS:
		return "SCS"
	case ES:
		return "ES"
	default:
		return fmt.Sprintf("Synchrony(%d)", int(s))
	}
}

// Value is a proposal/decision value. Values form a totally ordered set
// (assumption 4 of the paper, Sect. 3): the natural int64 order is used
// everywhere a minimum is taken.
type Value int64

// NoValue is a sentinel outside the proposable range. It is never a legal
// proposal and only appears as a zero-like placeholder in internal state.
const NoValue Value = math.MinInt64

// OptValue is a value from V ∪ {⊥}: either a concrete Value or the paper's
// ⊥ (bottom), used for the new estimates nE of algorithm A_{t+2}.
// The zero OptValue is ⊥.
type OptValue struct {
	v    Value
	some bool
}

// Some returns the OptValue holding v.
func Some(v Value) OptValue { return OptValue{v: v, some: true} }

// Bottom returns ⊥.
func Bottom() OptValue { return OptValue{} }

// Get returns the held value and whether one is present (false means ⊥).
func (o OptValue) Get() (Value, bool) { return o.v, o.some }

// IsBottom reports whether o is ⊥.
func (o OptValue) IsBottom() bool { return !o.some }

// String implements fmt.Stringer.
func (o OptValue) String() string {
	if !o.some {
		return "⊥"
	}
	return fmt.Sprintf("%d", int64(o.v))
}

// ProcessContext is the static configuration a process knows about the
// system it runs in.
type ProcessContext struct {
	// Self is the identity of this process (1..N).
	Self ProcessID
	// N is the total number of processes.
	N int
	// T is the resilience bound: the maximum number of processes that may
	// crash in any run.
	T int
}

// Validate reports whether the context is internally consistent. It does
// not enforce algorithm-specific resilience requirements (such as t < n/2
// for indulgent algorithms); constructors enforce those.
func (c ProcessContext) Validate() error {
	switch {
	case c.N < 1:
		return fmt.Errorf("model: n must be positive, got %d", c.N)
	case c.N > MaxProcesses:
		return fmt.Errorf("model: n must be at most %d, got %d", MaxProcesses, c.N)
	case c.T < 0 || c.T >= c.N:
		return fmt.Errorf("model: t must be in [0, n), got t=%d n=%d", c.T, c.N)
	case c.Self < 1 || int(c.Self) > c.N:
		return fmt.Errorf("model: self must be in [1, %d], got %d", c.N, c.Self)
	}
	return nil
}

// Quorum returns n − t, the number of same-round messages every process is
// guaranteed to receive each round in ES (t-resilience).
func (c ProcessContext) Quorum() int { return c.N - c.T }

// Majority returns ⌊n/2⌋ + 1.
func (c ProcessContext) Majority() int { return c.N/2 + 1 }

// MajorityCorrect reports whether the context satisfies the indulgence
// resilience requirement t < n/2 from [Chandra & Toueg 1996] recalled in
// Sect. 1.1 of the paper.
func (c ProcessContext) MajorityCorrect() bool { return 2*c.T < c.N }

// Message is a round-stamped message. Round is the round in which the
// message was sent; in ES it may be delivered in a later round.
type Message struct {
	From    ProcessID
	Round   Round
	Payload Payload
}

// AppendDigest appends a deterministic encoding of m to dst and returns the
// extended slice.
func (m Message) AppendDigest(dst []byte) []byte {
	dst = AppendDigestInt(dst, int64(m.From))
	dst = AppendDigestInt(dst, int64(m.Round))
	if m.Payload == nil {
		return AppendDigestString(dst, "")
	}
	dst = AppendDigestString(dst, m.Payload.Kind())
	return m.Payload.AppendDigest(dst)
}

// Clone returns a deep copy of m.
func (m Message) Clone() Message {
	c := m
	if m.Payload != nil {
		c.Payload = m.Payload.ClonePayload()
	}
	return c
}

// Payload is the algorithm-specific content of a message. Payloads are
// shared-immutable: once a payload has been returned from StartRound it
// must never be mutated again — not by the sender and not by any receiver.
// Under that contract the simulator delivers the same payload value to
// every recipient without cloning; ClonePayload returns a deep copy for
// the cases that still need ownership (trace recording, wire hand-off, and
// algorithms that opt out of the contract via PayloadMutator). AppendDigest
// must be a deterministic, injective-per-Kind encoding (it drives run
// digests and the indistinguishability checks behind the paper's
// lower-bound argument).
type Payload interface {
	// Kind returns a short stable identifier of the payload type, unique
	// across all payload types in the repository (used by digests and the
	// wire codec).
	Kind() string
	// AppendDigest appends a deterministic encoding of the payload to dst.
	AppendDigest(dst []byte) []byte
	// ClonePayload returns a deep copy.
	ClonePayload() Payload
}

// Algorithm is the deterministic round state machine executed by one
// process. The simulator (and the live runtime) drive it as follows, for
// rounds k = 1, 2, ...:
//
//  1. StartRound(k) is called once at the beginning of round k; the
//     returned payload is broadcast to all processes including the sender
//     (self-delivery is always in-round and processes never suspect
//     themselves, assumption 2 of Sect. 3). A nil payload is sent as-is
//     (an empty dummy message, footnote 1 of the paper).
//  2. EndRound(k, delivered) is called once with every message delivered
//     in round k's receive phase: all round-k messages the adversary
//     delivers on time plus, in ES, older messages whose delay expires at
//     round k. Messages are sorted by (Round, From). The delivered slice
//     is only valid for the duration of the call (the simulator reuses its
//     backing array across rounds); algorithms that retain messages must
//     copy the slice. Payloads inside delivered messages are shared with
//     the sender and the other recipients and must not be mutated (see
//     Payload); an algorithm that needs to mutate them declares it via
//     PayloadMutator and receives private clones instead.
//
// Decision reports the decided value as soon as the algorithm decides;
// once set it must never change (the checkers verify this). Algorithms
// must keep participating after deciding (deciders flood DECIDE messages)
// so that the t-resilience guarantee remains satisfiable for processes
// that have not yet decided.
type Algorithm interface {
	// Name returns a short human-readable algorithm name.
	Name() string
	// StartRound returns the payload to broadcast in round k.
	StartRound(k Round) Payload
	// EndRound delivers the messages received in round k.
	EndRound(k Round, delivered []Message)
	// Decision returns the decided value, if any.
	Decision() (Value, bool)
}

// PayloadMutator is an optional extension of Algorithm for implementations
// that mutate the payloads handed to EndRound (none of the algorithms in
// this repository do). When any algorithm of a run reports true, the
// simulator falls back to cloning every delivered payload per recipient,
// restoring exclusive ownership at the cost of the allocation-free
// shared-immutable fast path.
type PayloadMutator interface {
	// MutatesReceivedPayloads reports whether EndRound may mutate the
	// payloads of the messages it is handed.
	MutatesReceivedPayloads() bool
}

// Factory constructs one process's algorithm instance. It is invoked once
// per process at the start of a run with that process's context and
// proposal.
type Factory func(ctx ProcessContext, proposal Value) (Algorithm, error)

// MaxProcesses bounds n so that PIDSet fits in a machine word.
const MaxProcesses = 64
