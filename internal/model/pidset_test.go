package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPIDSetBasics(t *testing.T) {
	var s PIDSet
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatalf("zero set not empty: %v", s)
	}
	s.Add(3)
	s.Add(1)
	s.Add(3) // duplicate
	if s.Len() != 2 || !s.Has(1) || !s.Has(3) || s.Has(2) {
		t.Fatalf("unexpected set %v", s)
	}
	s.Remove(1)
	if s.Has(1) || s.Len() != 1 {
		t.Fatalf("remove failed: %v", s)
	}
	if got := s.String(); got != "{3}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestPIDSetOutOfRange(t *testing.T) {
	var s PIDSet
	s.Add(0)
	s.Add(-4)
	s.Add(MaxProcesses + 1)
	if !s.IsEmpty() {
		t.Fatalf("out-of-range adds must be ignored, got %v", s)
	}
	if s.Has(0) || s.Has(MaxProcesses+1) {
		t.Fatal("out-of-range Has must be false")
	}
	s.Remove(0) // must not panic
}

func TestPIDSetBoundary(t *testing.T) {
	var s PIDSet
	s.Add(MaxProcesses)
	if !s.Has(MaxProcesses) || s.Len() != 1 {
		t.Fatalf("boundary id %d not handled: %v", MaxProcesses, s)
	}
	full := FullPIDSet(MaxProcesses)
	if full.Len() != MaxProcesses {
		t.Fatalf("FullPIDSet(%d).Len() = %d", MaxProcesses, full.Len())
	}
}

func TestFullPIDSet(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want int
	}{{-1, 0}, {0, 0}, {1, 1}, {5, 5}, {63, 63}, {64, 64}} {
		got := FullPIDSet(tc.n)
		if got.Len() != tc.want {
			t.Errorf("FullPIDSet(%d).Len() = %d, want %d", tc.n, got.Len(), tc.want)
		}
		for p := ProcessID(1); int(p) <= tc.want; p++ {
			if !got.Has(p) {
				t.Errorf("FullPIDSet(%d) missing %d", tc.n, p)
			}
		}
	}
}

func TestPIDSetAlgebra(t *testing.T) {
	a := NewPIDSet(1, 2, 3)
	b := NewPIDSet(3, 4)
	if got := a.Union(b); got.Len() != 4 {
		t.Errorf("union: %v", got)
	}
	if got := a.Intersect(b); got.Len() != 1 || !got.Has(3) {
		t.Errorf("intersect: %v", got)
	}
	if got := a.Diff(b); got.Len() != 2 || got.Has(3) {
		t.Errorf("diff: %v", got)
	}
}

func TestPIDSetMembers(t *testing.T) {
	s := NewPIDSet(5, 2, 9)
	got := s.Members()
	want := []ProcessID{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("members %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members %v, want %v (ascending)", got, want)
		}
	}
}

// TestPIDSetQuick checks, with random membership vectors, that the bitmask
// set agrees with a reference map-based set on every operation.
func TestPIDSetQuick(t *testing.T) {
	f := func(adds, removes []uint8) bool {
		var s PIDSet
		ref := make(map[ProcessID]bool)
		for _, a := range adds {
			p := ProcessID(int(a)%MaxProcesses + 1)
			s.Add(p)
			ref[p] = true
		}
		for _, r := range removes {
			p := ProcessID(int(r)%MaxProcesses + 1)
			s.Remove(p)
			delete(ref, p)
		}
		if s.Len() != len(ref) {
			return false
		}
		for p := ProcessID(1); p <= MaxProcesses; p++ {
			if s.Has(p) != ref[p] {
				return false
			}
		}
		members := s.Members()
		for i := 1; i < len(members); i++ {
			if members[i-1] >= members[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPIDSetUnionLaws checks basic set algebra laws with random sets.
func TestPIDSetUnionLaws(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := PIDSet(x), PIDSet(y)
		if a.Union(b) != b.Union(a) {
			return false
		}
		if a.Intersect(b) != b.Intersect(a) {
			return false
		}
		if a.Diff(b).Intersect(b) != 0 {
			return false
		}
		return a.Union(b).Len() == a.Len()+b.Len()-a.Intersect(b).Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
