package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestOptValue(t *testing.T) {
	b := Bottom()
	if !b.IsBottom() {
		t.Fatal("Bottom() not bottom")
	}
	if _, ok := b.Get(); ok {
		t.Fatal("Bottom().Get() returned a value")
	}
	if b.String() != "⊥" {
		t.Fatalf("Bottom().String() = %q", b.String())
	}
	s := Some(42)
	if s.IsBottom() {
		t.Fatal("Some(42) is bottom")
	}
	if v, ok := s.Get(); !ok || v != 42 {
		t.Fatalf("Some(42).Get() = %d, %v", v, ok)
	}
	if s.String() != "42" {
		t.Fatalf("Some(42).String() = %q", s.String())
	}
	var zero OptValue
	if !zero.IsBottom() {
		t.Fatal("zero OptValue must be ⊥")
	}
}

func TestProcessContextValidate(t *testing.T) {
	cases := []struct {
		name string
		ctx  ProcessContext
		ok   bool
	}{
		{"valid", ProcessContext{Self: 1, N: 3, T: 1}, true},
		{"self high", ProcessContext{Self: 3, N: 3, T: 1}, true},
		{"t zero", ProcessContext{Self: 1, N: 2, T: 0}, true},
		{"n zero", ProcessContext{Self: 1, N: 0, T: 0}, false},
		{"n too large", ProcessContext{Self: 1, N: MaxProcesses + 1, T: 0}, false},
		{"t negative", ProcessContext{Self: 1, N: 3, T: -1}, false},
		{"t == n", ProcessContext{Self: 1, N: 3, T: 3}, false},
		{"self zero", ProcessContext{Self: 0, N: 3, T: 1}, false},
		{"self out of range", ProcessContext{Self: 4, N: 3, T: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.ctx.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestProcessContextDerived(t *testing.T) {
	ctx := ProcessContext{Self: 1, N: 7, T: 3}
	if got := ctx.Quorum(); got != 4 {
		t.Errorf("Quorum() = %d, want 4", got)
	}
	if got := ctx.Majority(); got != 4 {
		t.Errorf("Majority() = %d, want 4", got)
	}
	if !ctx.MajorityCorrect() {
		t.Error("t=3 n=7 should be majority-correct")
	}
	if (ProcessContext{N: 4, T: 2}).MajorityCorrect() {
		t.Error("t=2 n=4 should not be majority-correct")
	}
}

func TestSynchronyString(t *testing.T) {
	if SCS.String() != "SCS" || ES.String() != "ES" {
		t.Fatalf("unexpected: %s %s", SCS, ES)
	}
	if !strings.Contains(Synchrony(9).String(), "9") {
		t.Fatal("unknown synchrony should render its number")
	}
}

// digestPayload is a trivial payload for digest tests.
type digestPayload struct{ v int64 }

func (p digestPayload) Kind() string                 { return "test" }
func (p digestPayload) AppendDigest(d []byte) []byte { return AppendDigestInt(d, p.v) }
func (p digestPayload) ClonePayload() Payload        { return p }

func TestMessageDigestAndClone(t *testing.T) {
	m1 := Message{From: 1, Round: 2, Payload: digestPayload{7}}
	m2 := Message{From: 1, Round: 2, Payload: digestPayload{8}}
	if bytes.Equal(m1.AppendDigest(nil), m2.AppendDigest(nil)) {
		t.Fatal("distinct payloads share a digest")
	}
	m3 := Message{From: 2, Round: 2, Payload: digestPayload{7}}
	if bytes.Equal(m1.AppendDigest(nil), m3.AppendDigest(nil)) {
		t.Fatal("distinct senders share a digest")
	}
	nilMsg := Message{From: 1, Round: 1}
	if len(nilMsg.AppendDigest(nil)) == 0 {
		t.Fatal("nil payload digest empty")
	}
	c := m1.Clone()
	if c.From != m1.From || c.Round != m1.Round {
		t.Fatal("clone changed header")
	}
}

func TestDigestInjectivity(t *testing.T) {
	// Concatenation ambiguity: ("a","bc") must differ from ("ab","c").
	d1 := AppendDigestString(AppendDigestString(nil, "a"), "bc")
	d2 := AppendDigestString(AppendDigestString(nil, "ab"), "c")
	if bytes.Equal(d1, d2) {
		t.Fatal("string digests are ambiguous under concatenation")
	}
	// Values vs single ints.
	v1 := AppendDigestValues(nil, []Value{1, 2})
	v2 := AppendDigestValues(nil, []Value{1})
	if bytes.Equal(v1, v2) {
		t.Fatal("value-slice digests collide")
	}
	// OptValue: ⊥ differs from any value.
	o1 := AppendDigestOptValue(nil, Bottom())
	o2 := AppendDigestOptValue(nil, Some(0))
	if bytes.Equal(o1, o2) {
		t.Fatal("⊥ digest equals Some(0) digest")
	}
	// Bool marks.
	if bytes.Equal(AppendDigestBool(nil, true), AppendDigestBool(nil, false)) {
		t.Fatal("bool digests collide")
	}
	// PIDSet digests.
	if bytes.Equal(AppendDigestPIDSet(nil, NewPIDSet(1)), AppendDigestPIDSet(nil, NewPIDSet(2))) {
		t.Fatal("pidset digests collide")
	}
}
