package journal

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"indulgence/internal/model"
	"indulgence/internal/wire"
)

// FuzzSegmentTornTail hammers the recovery scanner with arbitrary bytes:
// it must never panic, the kept records must be a stable property of the
// intact prefix (re-scanning it yields exactly them — recovery cannot
// invent decisions), and re-encoding them canonically must round-trip
// losslessly. Byte-identity with the input is NOT required: start
// records written before the algorithm tag existed re-encode one length
// byte longer (the committed corpus entry pins that legacy path), which
// is why the property is idempotence plus canonical round-trip rather
// than prefix equality.
func FuzzSegmentTornTail(f *testing.F) {
	var seed []byte
	for i := uint64(0); i < 3; i++ {
		seed = appendFrame(seed, Entry{Start: true, Alg: "A_f+2", Decision: wire.DecisionRecord{Instance: i}})
		seed = appendFrame(seed, Entry{Decision: wire.DecisionRecord{Instance: i, Value: model.Value(i), Round: 3, Batch: 1}})
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-2])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	// A legacy start frame — marker + instance, no tag length — as
	// journals written before the algorithm tag contain.
	legacyPayload := []byte{0x05, 0x07}
	var legacy [frameHeader]byte
	binary.BigEndian.PutUint32(legacy[:4], uint32(len(legacyPayload)))
	binary.BigEndian.PutUint32(legacy[4:], crc32.Checksum(legacyPayload, castagnoli))
	f.Add(append(legacy[:], legacyPayload...))

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, intact, torn := scanSegment(b)
		if intact > len(b) {
			t.Fatalf("intact offset %d beyond %d input bytes", intact, len(b))
		}
		if torn == (intact == len(b)) {
			t.Fatalf("torn=%v but intact=%d of %d", torn, intact, len(b))
		}
		// Idempotence: the intact prefix is a complete journal whose
		// scan reproduces exactly the kept records.
		again, intact2, torn2 := scanSegment(b[:intact])
		if torn2 || intact2 != intact || len(again) != len(recs) {
			t.Fatalf("re-scan of intact prefix: torn=%v intact=%d records=%d (was %d)",
				torn2, intact2, len(again), len(recs))
		}
		for i := range recs {
			if again[i] != recs[i] {
				t.Fatalf("record %d unstable under re-scan: %+v != %+v", i, again[i], recs[i])
			}
		}
		// Canonical round-trip: re-encoding the kept records and
		// scanning that must be lossless and tear-free.
		var reenc []byte
		for _, r := range recs {
			reenc = appendFrame(reenc, r)
		}
		canon, intact3, torn3 := scanSegment(reenc)
		if torn3 || intact3 != len(reenc) || len(canon) != len(recs) {
			t.Fatalf("canonical re-encoding does not round-trip: torn=%v intact=%d of %d",
				torn3, intact3, len(reenc))
		}
		for i := range recs {
			if canon[i] != recs[i] {
				t.Fatalf("record %d mutated by canonical round-trip: %+v != %+v", i, canon[i], recs[i])
			}
		}
	})
}

// FuzzReplayPrefix is the torn-write property test the recovery contract
// promises: take any journal built from fuzz-chosen records, cut it at
// any byte, and recovery must keep exactly the records whose frames lie
// entirely before the cut — every intact prefix record, only the torn
// tail dropped.
func FuzzReplayPrefix(f *testing.F) {
	f.Add(uint8(3), uint64(5), int64(-2), uint(17))
	f.Add(uint8(1), uint64(0), int64(0), uint(0))
	f.Add(uint8(8), uint64(1)<<40, int64(1)<<40, uint(1000))

	f.Fuzz(func(t *testing.T, count uint8, instSeed uint64, valSeed int64, cut uint) {
		var (
			whole  []byte
			bounds []int
			recs   []Entry
		)
		for i := 0; i < int(count%16); i++ {
			e := Entry{
				Start: i%3 == 2,
				Decision: wire.DecisionRecord{
					Instance: instSeed + uint64(i)*7,
					Value:    model.Value(valSeed) - model.Value(i),
					Round:    model.Round(i + 1),
					Batch:    i%8 + 1,
				},
			}
			if e.Start {
				e.Decision = wire.DecisionRecord{Instance: e.Decision.Instance}
			}
			recs = append(recs, e)
			whole = appendFrame(whole, e)
			bounds = append(bounds, len(whole))
		}
		cutAt := int(cut % uint(len(whole)+1))
		kept, intact, torn := scanSegment(whole[:cutAt])

		wantKept := 0
		for _, b := range bounds {
			if b <= cutAt {
				wantKept++
			}
		}
		if len(kept) != wantKept {
			t.Fatalf("cut at %d: kept %d records, want %d", cutAt, len(kept), wantKept)
		}
		for i, r := range kept {
			if r != recs[i] {
				t.Fatalf("record %d mutated by the cut: %+v != %+v", i, r, recs[i])
			}
		}
		if torn != (cutAt != intact) {
			t.Fatalf("cut at %d: torn=%v intact=%d", cutAt, torn, intact)
		}
		if wantKept > 0 && intact != bounds[wantKept-1] {
			t.Fatalf("cut at %d: intact=%d, want boundary %d", cutAt, intact, bounds[wantKept-1])
		}
	})
}

// FuzzFrameHeader checks that no 8-byte header over fuzz-chosen size and
// checksum fields can make the scanner read outside its input or accept
// a record that the CRC does not endorse.
func FuzzFrameHeader(f *testing.F) {
	valid := appendFrame(nil, Entry{Decision: wire.DecisionRecord{Instance: 1, Value: 2, Round: 3, Batch: 4}})
	f.Add(uint32(len(valid)-frameHeader), binary.BigEndian.Uint32(valid[4:8]), valid[frameHeader:])
	f.Add(uint32(0), uint32(0), []byte{})
	f.Add(^uint32(0), uint32(1), []byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, size, sum uint32, payload []byte) {
		frame := make([]byte, frameHeader, frameHeader+len(payload))
		binary.BigEndian.PutUint32(frame[:4], size)
		binary.BigEndian.PutUint32(frame[4:], sum)
		frame = append(frame, payload...)
		recs, intact, _ := scanSegment(frame)
		if len(recs) > 1 {
			t.Fatalf("single frame yielded %d records", len(recs))
		}
		if len(recs) == 1 && intact != frameHeader+int(size) {
			t.Fatalf("accepted frame of size %d but consumed %d", size, intact)
		}
	})
}
