package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"indulgence/internal/wire"
)

// Segment frame layout: a 4-byte big-endian payload length, a 4-byte
// big-endian CRC-32C of the payload, then the payload (one wire
// DecisionRecord). The CRC is what makes torn writes detectable: a crash
// mid-frame leaves either a short header, a short payload, or a payload
// that no longer matches its checksum — all of which recovery treats as
// the torn tail.
const frameHeader = 8

// maxRecordSize bounds frame payloads, mirroring wire.MaxFrameSize; any
// larger length field is treated as tail corruption.
const maxRecordSize = wire.MaxFrameSize

// castagnoli is the CRC-32C table (the polynomial used by modern storage
// formats, hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Entry is one journal record: an instance-start claim (appended
// before the instance's first frame may reach the network), a
// decision, or a decision-trace record (the introspection context of
// one launch choice).
type Entry struct {
	// Start reports an instance-start claim; for starts, only
	// Decision.Instance and Alg are meaningful.
	Start bool
	// Alg is the algorithm tag of a start claim: the algorithm the
	// claiming service launches the instance with ("" when unrecorded,
	// as in records written before the tag existed). check.Replay uses
	// it to audit algorithm choices across process lifetimes.
	Alg string
	// Decision is the decided outcome of the instance. For starts, its
	// Instance and Group carry the claim's addressing; the remaining
	// fields are zero.
	Decision wire.DecisionRecord
	// Trace, when non-nil, makes this a decision-trace entry: the
	// controller/selector/admission context the service held when it
	// launched the instance. Start and Decision are then zero.
	Trace *wire.DecisionTraceRecord
}

// Instance returns the entry's consensus-instance ID.
func (e Entry) Instance() uint64 {
	if e.Trace != nil {
		return e.Trace.Instance
	}
	return e.Decision.Instance
}

// appendFrame appends the framed encoding of e to dst. An oversized
// algorithm tag is truncated rather than erroring: the tag is an audit
// annotation, and a claim must never fail for its label's sake.
func appendFrame(dst []byte, e Entry) []byte {
	var payload []byte
	switch {
	case e.Trace != nil:
		payload, _ = wire.AppendDecisionTraceRecord(nil, sanitizeTrace(*e.Trace))
	case e.Start:
		alg := e.Alg
		if len(alg) > wire.MaxAlgNameLen {
			alg = alg[:wire.MaxAlgNameLen]
		}
		payload, _ = wire.AppendStartRecord(nil, wire.StartRecord{
			Instance: e.Decision.Instance, Alg: alg, Group: e.Decision.Group})
	default:
		payload = wire.AppendDecisionRecord(nil, e.Decision)
	}
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	return append(append(dst, hdr[:]...), payload...)
}

// sanitizeTrace clamps a trace record's annotation fields into the
// codec's bounds: like a start claim's algorithm tag, introspection
// context must never make a journal write fail for its label's sake.
func sanitizeTrace(r wire.DecisionTraceRecord) wire.DecisionTraceRecord {
	clampAlg := func(s string) string {
		if len(s) > wire.MaxAlgNameLen {
			return s[:wire.MaxAlgNameLen]
		}
		return s
	}
	clampInt := func(v, hi int) int {
		return max(0, min(v, hi))
	}
	r.Chosen = clampAlg(r.Chosen)
	if len(r.NotTaken) > wire.MaxTraceAlternatives {
		r.NotTaken = r.NotTaken[:wire.MaxTraceAlternatives]
	}
	for i, alg := range r.NotTaken {
		r.NotTaken[i] = clampAlg(alg)
	}
	r.Level = clampInt(r.Level, wire.MaxTraceAlternatives)
	r.BatchFill = clampInt(r.BatchFill, wire.MaxFrameSize)
	r.BatchLimit = clampInt(r.BatchLimit, wire.MaxFrameSize)
	r.QueueLen = min(r.QueueLen, wire.MaxFrameSize)
	r.QueueCap = min(r.QueueCap, wire.MaxFrameSize)
	r.ShedMask &= wire.MaxShedMask
	return r
}

// decodeEntry decodes one frame payload of any record kind; ok
// requires the payload to be exactly one well-formed record.
func decodeEntry(payload []byte) (Entry, bool) {
	if len(payload) == 0 {
		return Entry{}, false
	}
	if rec, n, err := wire.DecodeStartRecord(payload); err == nil {
		return Entry{Start: true, Alg: rec.Alg,
			Decision: wire.DecisionRecord{Instance: rec.Instance, Group: rec.Group}}, n == len(payload)
	}
	if rec, n, err := wire.DecodeDecisionTraceRecord(payload); err == nil {
		return Entry{Trace: &rec}, n == len(payload)
	}
	rec, n, err := wire.DecodeDecisionRecord(payload)
	if err != nil || n != len(payload) {
		return Entry{}, false
	}
	return Entry{Decision: rec}, true
}

// scanSegment parses one segment's bytes into its longest intact prefix
// of entries. It returns the entries, the byte offset parsing stopped
// at, and whether trailing bytes were dropped (a torn tail: incomplete
// header, bogus length, short payload, CRC mismatch, or a payload that
// is not exactly one well-formed record). scanSegment never fails —
// every input has a well-defined intact prefix, possibly empty.
func scanSegment(b []byte) (entries []Entry, intact int, torn bool) {
	off := 0
	for {
		if off == len(b) {
			return entries, off, false
		}
		if len(b)-off < frameHeader {
			return entries, off, true
		}
		size := int(binary.BigEndian.Uint32(b[off:]))
		sum := binary.BigEndian.Uint32(b[off+4:])
		if size == 0 || size > maxRecordSize || off+frameHeader+size > len(b) {
			return entries, off, true
		}
		payload := b[off+frameHeader : off+frameHeader+size]
		if crc32.Checksum(payload, castagnoli) != sum {
			return entries, off, true
		}
		e, ok := decodeEntry(payload)
		if !ok {
			return entries, off, true
		}
		entries = append(entries, e)
		off += frameHeader + size
	}
}

// segmentName formats the file name of segment idx.
func segmentName(idx int) string { return fmt.Sprintf("seg-%08d.wal", idx) }

// listSegments returns the journal directory's segment indices in
// ascending order.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"))
		if err != nil {
			return nil, fmt.Errorf("journal: stray segment name %q", name)
		}
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs, nil
}

// syncDir fsyncs the directory itself so segment creation and truncation
// survive a crash of the file system's metadata. Best-effort: some file
// systems reject directory fsync, which recovery tolerates anyway.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// ReplayInfo summarizes one read of a journal directory.
type ReplayInfo struct {
	// Decisions, Starts and Traces count the intact entries replayed,
	// by kind.
	Decisions, Starts, Traces int
	// Segments is the number of segment files read.
	Segments int
	// TornBytes is the size of the dropped torn tail of the final
	// segment (0 when the journal ends cleanly).
	TornBytes int
	// Frontier is 1 + the highest instance ID replayed, over starts
	// and decisions alike (0 when empty): the first instance ID a
	// recovered service may assign.
	Frontier uint64
}

// Replay reads every intact entry of the journal at dir in append
// order, calling fn for each; a non-nil fn error stops the replay and is
// returned. A torn tail is tolerated only on the final segment — that is
// the only place a crash can tear — and is reported in ReplayInfo;
// mid-journal corruption fails with ErrCorrupt. Replay opens nothing for
// writing and is safe on a journal another process wrote.
func Replay(dir string, fn func(Entry) error) (ReplayInfo, error) {
	var info ReplayInfo
	idxs, err := listSegments(dir)
	if err != nil {
		return info, err
	}
	for i, idx := range idxs {
		b, err := os.ReadFile(filepath.Join(dir, segmentName(idx)))
		if err != nil {
			return info, err
		}
		entries, intact, torn := scanSegment(b)
		if torn && i != len(idxs)-1 {
			return info, fmt.Errorf("%w: %s has a torn tail mid-journal", ErrCorrupt, segmentName(idx))
		}
		info.Segments++
		info.TornBytes = len(b) - intact
		for _, e := range entries {
			if fn != nil {
				if err := fn(e); err != nil {
					return info, err
				}
			}
			switch {
			case e.Trace != nil:
				info.Traces++
			case e.Start:
				info.Starts++
			default:
				info.Decisions++
			}
			if e.Instance() >= info.Frontier {
				info.Frontier = e.Instance() + 1
			}
		}
	}
	return info, nil
}
