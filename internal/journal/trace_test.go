package journal

import (
	"strings"
	"testing"

	"indulgence/internal/metrics"
	"indulgence/internal/wire"
)

// TestAppendDecisionTrace round-trips trace entries through the
// segment format alongside claims and decisions: they replay in
// append order, count under their own kind, advance the frontier like
// the claims they annotate, and never land in the decision index.
func TestAppendDecisionTrace(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	j, err := Open(dir, Options{NoSync: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	trace := wire.DecisionTraceRecord{
		Instance: 3, Level: 1, Chosen: "A_<>S",
		NotTaken: []string{"A_f+2", "A_t+2"}, Suspicions: 2,
		QueueLen: 5, QueueCap: 16, BatchFill: 62, BatchLimit: 8,
		LingerNanos: 1_000_000, EWMANanos: 750_000, ShedMask: 0b10,
	}
	if err := j.AppendStart(3, "A_<>S"); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDecisionTrace(trace); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(wire.DecisionRecord{Instance: 3, Value: 9, Round: 2, Batch: 1}); err != nil {
		t.Fatal(err)
	}
	st := j.Snapshot()
	if st.Traces != 1 || st.Starts != 1 || st.Decisions != 1 {
		t.Fatalf("snapshot kinds = %+v, want 1 of each", st)
	}
	if st.Frontier != 4 {
		t.Fatalf("frontier = %d, want 4", st.Frontier)
	}
	if _, ok := j.Get(3); !ok {
		t.Fatalf("decision for instance 3 missing from index")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if text := reg.Text(); !strings.Contains(text, `indulgence_journal_entries_total{kind="trace"} 1`) {
		t.Errorf("registry missing trace entry counter:\n%s", text)
	}

	// A trace-only tail still advances the recovered frontier: the
	// trace annotates a claim whose instance must never be reassigned.
	j2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.AppendDecisionTrace(wire.DecisionTraceRecord{Instance: 9, Chosen: "A_f+2"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := j3.Frontier(); got != 10 {
		t.Fatalf("recovered frontier = %d, want 10", got)
	}

	// Replay sees all three kinds, the trace byte-identically.
	var traces []wire.DecisionTraceRecord
	info, err := Replay(dir, func(e Entry) error {
		if e.Trace != nil {
			traces = append(traces, *e.Trace)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Traces != 2 || info.Starts != 1 || info.Decisions != 1 {
		t.Fatalf("replay info = %+v, want 2 traces, 1 start, 1 decision", info)
	}
	if len(traces) != 2 || traces[0].Chosen != trace.Chosen ||
		traces[0].EWMANanos != trace.EWMANanos || len(traces[0].NotTaken) != 2 {
		t.Fatalf("replayed traces = %+v, want first %+v", traces, trace)
	}
}

// TestAppendDecisionTraceClamps: out-of-bounds annotation fields are
// clamped at the frame boundary, never poisoning the segment.
func TestAppendDecisionTraceClamps(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	long := strings.Repeat("x", wire.MaxAlgNameLen+20)
	if err := j.AppendDecisionTrace(wire.DecisionTraceRecord{
		Instance: 1, Chosen: long, NotTaken: []string{long}, Level: 99,
		BatchFill: -4, ShedMask: 1 << 60,
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var got *wire.DecisionTraceRecord
	if _, err := Replay(dir, func(e Entry) error {
		got = e.Trace
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("trace entry did not survive the clamp")
	}
	if len(got.Chosen) != wire.MaxAlgNameLen || got.Level != wire.MaxTraceAlternatives ||
		got.BatchFill != 0 || got.ShedMask > wire.MaxShedMask {
		t.Errorf("clamped record = %+v", got)
	}
}
