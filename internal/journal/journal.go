// Package journal is the durable decision log of the consensus service:
// an append-only, fsync-batched, CRC-framed record of every decided
// instance, written before the decision is served. It is what makes the
// paper's per-decision price (the t+2 round floor) a price paid once —
// a restarted service replays the journal instead of re-running
// consensus for instances it already decided, and resumes its
// instance-ID frontier past the highest journaled ID, so no instance can
// ever decide twice across process lifetimes.
//
// # Disk format
//
// A journal is a directory of segment files seg-00000000.wal,
// seg-00000001.wal, ... Each segment is a sequence of frames: a 4-byte
// length, a 4-byte CRC-32C, and one record of the wire envelope family
// — a wire.DecisionRecord, a wire.StartRecord claiming an instance
// ID before its first frame may touch the network (so a recovered
// frontier can never collide with in-flight frames of an instance that
// crashed undecided), or a wire.DecisionTraceRecord carrying the
// introspection context of one launch choice. Segments rotate once
// they exceed
// Options.SegmentBytes. The format is append-only and self-checking;
// no index or manifest files exist — recovery is a linear scan.
//
// # Durability and recovery contract
//
// The two record kinds carry two durability classes. Append (decisions)
// returns only after an fsync, with every decision written inside one
// group-commit window sharing that window's single fsync, so fsync
// count scales with elapsed windows, not with decisions. AppendStart
// (instance-ID claims) returns after its write completes, without
// waiting for fsync: the in-flight frames a
// start record guards against can only survive a process crash, which
// page-cache writes survive too, and a machine crash that could lose
// the write also loses the frames — while every later decision fsync
// makes earlier start writes durable as a side effect.
//
// A crash can therefore lose only the torn tail of the final segment:
// recovery (Open or Replay) keeps every intact prefix record, drops the
// torn tail (Open truncates it away), and fails loudly on mid-journal
// corruption, which no crash can produce. Records whose append call
// never returned may still be present — durable but unacknowledged —
// which is the safe direction: serving a journaled decision is always
// correct, re-deciding one is not.
package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"indulgence/internal/metrics"
	"indulgence/internal/stats"
	"indulgence/internal/wire"
)

// Journal errors.
var (
	// ErrClosed reports use of a closed journal.
	ErrClosed = errors.New("journal: closed")
	// ErrCorrupt reports damage recovery cannot attribute to a torn
	// tail (corruption before the final segment's end).
	ErrCorrupt = errors.New("journal: corrupt")
	// ErrLocked reports a journal directory already owned by a live
	// journal (this process or another).
	ErrLocked = errors.New("journal: directory locked by another journal")
)

// Options configures a journal.
type Options struct {
	// SegmentBytes rotates the active segment once its size reaches
	// this many bytes (default 1 MiB). Rotation happens between
	// batches, so a segment can overshoot by at most one batch.
	SegmentBytes int64
	// GroupWindow is how long a decision append may wait for
	// companions to share its fsync (group commit), measured from the
	// first pending decision after the previous fsync (default 1ms;
	// negative fsyncs every decision immediately). The window is what
	// keeps fsync count proportional to elapsed windows instead of to
	// decisions when decisions arrive slower than an fsync completes.
	GroupWindow time.Duration
	// NoSync skips fsync entirely. Replay still works, but a crash may
	// lose acknowledged records — only for tests and throwaway
	// journals.
	NoSync bool
	// OnAppend, when non-nil, is invoked on the writer goroutine after
	// each entry has become durable and before its Append returns —
	// the observability and fault-injection hook the crash-restart
	// tests use to stop a service inside the journaled-but-unserved
	// window. It must not call back into the journal.
	OnAppend func(Entry)
	// Metrics, when non-nil, registers the journal's instruments on
	// this registry (entries by kind, fsync count and latency, segment
	// count), labelled with MetricsLabels — the sharded runtime passes
	// its group label here. Entry counters include the entries
	// replayed at Open, so a recovered journal's series resume at
	// their true totals.
	Metrics *metrics.Registry
	// MetricsLabels are attached to every series Metrics registers.
	MetricsLabels []metrics.Label
}

// withDefaults returns o with zero fields replaced by defaults.
func (o Options) withDefaults() Options {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.SegmentBytes < frameHeader {
		o.SegmentBytes = frameHeader
	}
	if o.GroupWindow == 0 {
		o.GroupWindow = time.Millisecond
	}
	return o
}

// Stats is a point-in-time snapshot of journal counters.
type Stats struct {
	// Decisions, Starts and Traces count intact entries by kind
	// (replayed at Open plus appended since); Decisions counts
	// distinct instances.
	Decisions, Starts, Traces int
	// Appends counts entries appended by this process; Batches and
	// Syncs count the group commits and fsyncs that carried them
	// (Appends/Syncs is the group-commit fan-in).
	Appends, Batches, Syncs int
	// Segments is the number of segment files.
	Segments int
	// TornBytes is the size of the torn tail truncated at Open.
	TornBytes int
	// Frontier is 1 + the highest journaled instance ID.
	Frontier uint64
	// SyncLatency summarizes fsync wall-clock latency over a bounded
	// uniform sample — the durability component of decision latency.
	SyncLatency stats.LatencySummary
}

// maxGroup bounds how many decisions one fsync may carry, purely as a
// backstop against unbounded pending growth if a timer is ever starved.
const maxGroup = 1024

// appendReq is one enqueued append waiting for persistence: a write for
// start records, a write plus fsync for decisions.
type appendReq struct {
	entry Entry
	sync  bool
	done  chan error
}

// Journal is an open decision log. All methods are safe for concurrent
// use; a single writer goroutine serializes disk writes and batches
// fsyncs across concurrent Appends.
type Journal struct {
	dir  string
	opts Options

	intake     chan appendReq
	writerDone chan struct{}

	// mu guards closed and the recovered/live state below; Append
	// holds it for reading across the intake send so Close never
	// closes the channel under a sender.
	mu        sync.RWMutex
	closed    bool
	index     map[uint64]wire.DecisionRecord
	starts    int
	traces    int
	frontier  uint64
	appends   int
	batches   int
	syncs     int
	segments  int
	tornBytes int
	syncLat   *stats.Reservoir[time.Duration]

	// lockFile holds the flock that makes this process the directory's
	// only writer; the kernel drops it if the process dies.
	lockFile *os.File

	// Registry instruments (nil when Options.Metrics is nil; nil
	// instruments no-op).
	mDecisions, mStarts, mTraces, mSyncs *metrics.Counter
	mSyncNs                              *metrics.Histogram
	mSegments                            *metrics.Gauge

	// Writer-goroutine state: the active segment and its size.
	seg     *os.File
	segIdx  int
	segSize int64
	buf     []byte
}

// Open opens (creating if needed) the journal at dir, replays every
// segment to rebuild the decision index and instance frontier, truncates
// a torn tail off the final segment, and readies the final segment for
// appending. The directory is flock-guarded: a second live Open of the
// same dir — a concurrently running serve, say — fails with ErrLocked
// instead of interleaving two writers' segments, while a crashed
// owner's lock is released by the kernel, so recovery is never blocked
// by a stale lock file. The caller owns the returned journal and must
// Close it.
func Open(dir string, opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = lock.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	j := &Journal{
		dir:        dir,
		opts:       opts,
		lockFile:   lock,
		intake:     make(chan appendReq, 256),
		writerDone: make(chan struct{}),
		index:      make(map[uint64]wire.DecisionRecord),
		syncLat:    stats.NewReservoirSeeded[time.Duration](1<<14, 0x6a6f75726e616c), // "journal"
	}
	kind := func(k string) []metrics.Label {
		return append([]metrics.Label{{Key: "kind", Value: k}}, opts.MetricsLabels...)
	}
	const entriesHelp = "intact journal entries by record kind, replayed at open plus appended since"
	j.mDecisions = opts.Metrics.Counter("indulgence_journal_entries_total", entriesHelp, kind("decision")...)
	j.mStarts = opts.Metrics.Counter("indulgence_journal_entries_total", entriesHelp, kind("start")...)
	j.mTraces = opts.Metrics.Counter("indulgence_journal_entries_total", entriesHelp, kind("trace")...)
	j.mSyncs = opts.Metrics.Counter("indulgence_journal_fsyncs_total",
		"fsyncs taken by the journal writer (group commits)", opts.MetricsLabels...)
	j.mSyncNs = opts.Metrics.Histogram("indulgence_journal_fsync_ns",
		"fsync wall-clock latency in nanoseconds", 1<<12, 1<<30, opts.MetricsLabels...)
	j.mSegments = opts.Metrics.Gauge("indulgence_journal_segments",
		"segment files in the journal directory", opts.MetricsLabels...)

	fail := func(err error) (*Journal, error) {
		_ = lock.Close() // closing the fd drops the flock
		return nil, err
	}
	idxs, err := listSegments(dir)
	if err != nil {
		return fail(err)
	}
	for i, idx := range idxs {
		path := filepath.Join(dir, segmentName(idx))
		b, err := os.ReadFile(path)
		if err != nil {
			return fail(err)
		}
		entries, intact, torn := scanSegment(b)
		if torn {
			if i != len(idxs)-1 {
				return fail(fmt.Errorf("%w: %s has a torn tail mid-journal", ErrCorrupt, segmentName(idx)))
			}
			// The crash window: drop the torn tail so appends resume
			// on a clean frame boundary.
			if err := os.Truncate(path, int64(intact)); err != nil {
				return fail(fmt.Errorf("journal: truncate torn tail of %s: %w", segmentName(idx), err))
			}
			syncDir(dir)
			j.tornBytes = len(b) - intact
		}
		for _, e := range entries {
			j.publish(e)
		}
	}

	j.segIdx = 0
	if len(idxs) > 0 {
		j.segIdx = idxs[len(idxs)-1]
	}
	path := filepath.Join(dir, segmentName(j.segIdx))
	seg, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fail(err)
	}
	st, err := seg.Stat()
	if err != nil {
		_ = seg.Close()
		return fail(err)
	}
	j.seg, j.segSize = seg, st.Size()
	j.segments = max(len(idxs), 1)
	j.mSegments.Set(int64(j.segments))
	if len(idxs) == 0 {
		syncDir(dir)
	}
	go j.writer()
	return j, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// Append makes the decision record rec durable and returns once it is
// fsynced (or the write failed). Concurrent appends share one fsync
// when they land within the same group-commit window, so durability
// costs one fsync per batch, not per decision.
func (j *Journal) Append(rec wire.DecisionRecord) error {
	return j.append(Entry{Decision: rec}, true)
}

// AppendStart claims every instance ID through instance: the recovered
// frontier resumes past it. The service appends a claim before a
// claimed instance may send its first frame (one block-claim covers
// many launches), so the recovered frontier covers every ID that ever
// touched the network — including instances that crashed undecided —
// and no successor can collide with their in-flight frames. alg tags
// the claim with the algorithm the instance is launched with ("" when
// the caller does not track one); the adaptive service claims per
// instance so every instance's algorithm choice is on record, and
// check.Replay audits the tags across lifetimes.
// AppendStart returns once the record is written, without
// waiting for an fsync: the frames it guards against can only survive a
// process crash, which page-cache writes survive too, while a machine
// crash that could lose the write also loses the frames. (Any later
// decision fsync makes earlier start writes durable as a side effect.)
func (j *Journal) AppendStart(instance uint64, alg string) error {
	return j.AppendStartRecord(wire.StartRecord{Instance: instance, Alg: alg})
}

// AppendStartRecord is AppendStart with the full record: sharded
// services use it to tag their claims with the consensus group, which
// check.Replay audits (an instance ID journaled under two groups is an
// agreement violation). It shares AppendStart's no-fsync contract.
func (j *Journal) AppendStartRecord(r wire.StartRecord) error {
	return j.append(Entry{Start: true, Alg: r.Alg,
		Decision: wire.DecisionRecord{Instance: r.Instance, Group: r.Group}}, false)
}

// AppendDecisionTrace journals the introspection context of one launch
// choice — the controller/selector/admission state behind a start
// claim. It shares AppendStart's no-fsync durability class: a trace is
// an audit annotation of the claim it accompanies, and any later
// decision fsync makes it durable as a side effect. Out-of-bounds
// annotation fields are clamped rather than erroring, like an
// oversized start-claim algorithm tag.
func (j *Journal) AppendDecisionTrace(r wire.DecisionTraceRecord) error {
	return j.append(Entry{Trace: &r}, false)
}

func (j *Journal) append(e Entry, sync bool) error {
	req := appendReq{entry: e, sync: sync, done: make(chan error, 1)}
	j.mu.RLock()
	if j.closed {
		j.mu.RUnlock()
		return ErrClosed
	}
	j.intake <- req
	j.mu.RUnlock()
	return <-req.done
}

// Get returns the journaled record of an instance, if any.
func (j *Journal) Get(instance uint64) (wire.DecisionRecord, bool) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	rec, ok := j.index[instance]
	return rec, ok
}

// Frontier returns 1 + the highest journaled instance ID (0 when the
// journal is empty): the first instance ID a recovered service may
// assign.
func (j *Journal) Frontier() uint64 {
	j.mu.RLock()
	defer j.mu.RUnlock()
	return j.frontier
}

// Len returns the number of distinct journaled instances.
func (j *Journal) Len() int {
	j.mu.RLock()
	defer j.mu.RUnlock()
	return len(j.index)
}

// Snapshot returns current counters and the fsync-latency summary.
func (j *Journal) Snapshot() Stats {
	j.mu.RLock()
	defer j.mu.RUnlock()
	return Stats{
		Decisions:   len(j.index),
		Starts:      j.starts,
		Traces:      j.traces,
		Appends:     j.appends,
		Batches:     j.batches,
		Syncs:       j.syncs,
		Segments:    j.segments,
		TornBytes:   j.tornBytes,
		Frontier:    j.frontier,
		SyncLatency: stats.SummarizeDurations(j.syncLat.Values()),
	}
}

// Close drains queued appends, makes them durable, and closes the active
// segment. Close is idempotent; Appends racing with it either complete
// durably or fail with ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	close(j.intake)
	<-j.writerDone
	err := j.seg.Close()
	_ = j.lockFile.Close() // drops the flock
	return err
}

// writer is the single disk-writing goroutine. Every append is written
// to the segment as it arrives; start appends resolve right after their
// write, while decision appends join the pending group commit. The
// first pending decision opens a group-commit window
// (Options.GroupWindow); every decision written before it closes shares
// the one fsync taken at its close, so fsync count scales with elapsed
// windows, not with decisions — a decision's durability latency is
// bounded by one window plus one fsync.
func (j *Journal) writer() {
	defer close(j.writerDone)
	var (
		pending []appendReq // written decisions awaiting their fsync
		fatal   error       // first disk error; latches the journal failed
		windowT *time.Timer
		windowC <-chan time.Time
	)
	stopWindow := func() {
		if windowT != nil {
			windowT.Stop()
			windowT, windowC = nil, nil
		}
	}
	flush := func() {
		stopWindow()
		if len(pending) == 0 {
			return
		}
		err := fatal
		if err == nil {
			err = j.fsync()
			if err != nil {
				fatal = err
			}
		}
		j.mu.Lock()
		j.batches++
		if err == nil {
			j.appends += len(pending)
			for _, req := range pending {
				j.publish(req.entry)
			}
		}
		j.mu.Unlock()
		for _, req := range pending {
			if err == nil && j.opts.OnAppend != nil {
				j.opts.OnAppend(req.entry)
			}
			req.done <- err
		}
		pending = pending[:0]
	}
	for {
		select {
		case req, ok := <-j.intake:
			if !ok {
				flush()
				return
			}
			if fatal != nil {
				req.done <- fatal
				continue
			}
			if err := j.write(req.entry); err != nil {
				// A failed write may have left a partial frame in the
				// segment: every frame appended after it would sit past
				// the torn point and be silently dropped by recovery
				// even if fsynced — an acknowledged-but-unrecoverable
				// record. Latch the error so every later append fails
				// instead, after one last fsync attempt for the intact
				// frames already pending (they precede the tear).
				fatal = err
				flush()
				req.done <- err
				continue
			}
			if req.sync && !j.opts.NoSync {
				pending = append(pending, req)
				if len(pending) == 1 && j.opts.GroupWindow > 0 {
					windowT = time.NewTimer(j.opts.GroupWindow)
					windowC = windowT.C
				}
				if j.opts.GroupWindow <= 0 || len(pending) >= maxGroup {
					flush()
				}
				continue
			}
			// Start records (and every append under NoSync) resolve at
			// write completion.
			j.mu.Lock()
			j.appends++
			j.publish(req.entry)
			j.mu.Unlock()
			if j.opts.OnAppend != nil {
				j.opts.OnAppend(req.entry)
			}
			req.done <- nil
		case <-windowC:
			windowT, windowC = nil, nil
			flush()
		}
	}
}

// write rotates if due and appends one framed entry to the active
// segment. Rotation fsyncs implicitly via the segment close path only
// when needed: the next explicit fsync covers whatever the new segment
// accumulates.
func (j *Journal) write(e Entry) error {
	if err := j.rotateIfNeeded(); err != nil {
		return err
	}
	j.buf = appendFrame(j.buf[:0], e)
	if _, err := j.seg.Write(j.buf); err != nil {
		return err
	}
	j.segSize += int64(len(j.buf))
	return nil
}

// fsync syncs the active segment, timing it into the latency sample.
func (j *Journal) fsync() error {
	begin := time.Now()
	if err := j.seg.Sync(); err != nil {
		return err
	}
	j.recordSync(time.Since(begin))
	return nil
}

// publish folds one durable entry into the in-memory state; callers
// hold mu (Open's replay runs before any reader exists).
func (j *Journal) publish(e Entry) {
	switch {
	case e.Trace != nil:
		j.traces++
		j.mTraces.Inc()
	case e.Start:
		j.starts++
		j.mStarts.Inc()
	default:
		j.index[e.Decision.Instance] = e.Decision
		j.mDecisions.Inc()
	}
	if e.Instance() >= j.frontier {
		j.frontier = e.Instance() + 1
	}
}

// recordSync accounts one fsync under the stats lock.
func (j *Journal) recordSync(d time.Duration) {
	j.mu.Lock()
	j.syncs++
	j.syncLat.Add(d)
	j.mu.Unlock()
	j.mSyncs.Inc()
	j.mSyncNs.Observe(int64(d))
}

// rotateIfNeeded closes the active segment and opens the next one when
// the active segment has reached its size budget. The outgoing segment
// is fsynced before it closes, so a pending group commit's frames can
// never rotate away unsynced.
func (j *Journal) rotateIfNeeded() error {
	if j.segSize < j.opts.SegmentBytes {
		return nil
	}
	if !j.opts.NoSync {
		if err := j.fsync(); err != nil {
			return err
		}
	}
	if err := j.seg.Close(); err != nil {
		return err
	}
	j.segIdx++
	seg, err := os.OpenFile(filepath.Join(j.dir, segmentName(j.segIdx)),
		os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	syncDir(j.dir)
	j.seg, j.segSize = seg, 0
	j.mu.Lock()
	j.segments++
	j.mSegments.Set(int64(j.segments))
	j.mu.Unlock()
	return nil
}
