package journal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"indulgence/internal/model"
	"indulgence/internal/wire"
)

// rec builds a distinguishable record for instance i.
func rec(i uint64) wire.DecisionRecord {
	return wire.DecisionRecord{Instance: i, Value: model.Value(i) + 100, Round: 3, Batch: 2}
}

// replayAll collects every decision record of a journal directory.
func replayAll(t *testing.T, dir string) ([]wire.DecisionRecord, ReplayInfo) {
	t.Helper()
	var recs []wire.DecisionRecord
	info, err := Replay(dir, func(e Entry) error {
		if !e.Start {
			recs = append(recs, e.Decision)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, info
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const count = 100
	for i := uint64(0); i < count; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got, ok := j.Get(42); !ok || got != rec(42) {
		t.Fatalf("Get(42) = %+v, %v", got, ok)
	}
	if j.Frontier() != count || j.Len() != count {
		t.Fatalf("frontier=%d len=%d", j.Frontier(), j.Len())
	}
	st := j.Snapshot()
	if st.Appends != count || st.Decisions != count || st.Batches == 0 || st.Syncs == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SyncLatency.Count != st.Syncs {
		t.Fatalf("sync latency samples %d != syncs %d", st.SyncLatency.Count, st.Syncs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, info := replayAll(t, dir)
	if len(recs) != count || info.Decisions != count || info.TornBytes != 0 {
		t.Fatalf("replay = %d records, info %+v", len(recs), info)
	}
	for i, r := range recs {
		if r != rec(uint64(i)) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if info.Frontier != count {
		t.Fatalf("replay frontier = %d", info.Frontier)
	}
}

func TestReopenResumesFrontier(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	if j2.Frontier() != 10 || j2.Len() != 10 {
		t.Fatalf("recovered frontier=%d len=%d", j2.Frontier(), j2.Len())
	}
	if got, ok := j2.Get(7); !ok || got != rec(7) {
		t.Fatalf("recovered Get(7) = %+v, %v", got, ok)
	}
	// Appends resume past the recovered frontier and land in the same
	// log.
	if err := j2.Append(rec(10)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, dir)
	if len(recs) != 11 || recs[10] != rec(10) {
		t.Fatalf("replay after reopen: %d records", len(recs))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const count = 50
	for i := uint64(0); i < count; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Snapshot()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) < 2 {
		t.Fatalf("no rotation: %d segments for %d records at 64-byte budget", len(idxs), count)
	}
	if st.Segments != len(idxs) {
		t.Fatalf("stats report %d segments, dir has %d", st.Segments, len(idxs))
	}
	recs, info := replayAll(t, dir)
	if len(recs) != count || info.Segments != len(idxs) {
		t.Fatalf("replay across segments: %d records, info %+v", len(recs), info)
	}
	for i, r := range recs {
		if r.Instance != uint64(i) {
			t.Fatalf("append order broken across rotation: record %d is instance %d", i, r.Instance)
		}
	}
}

// TestTornTailTruncatedOnOpen simulates the crash window: bytes of a
// half-written frame at the end of the final segment are dropped at Open,
// every intact record survives, and the journal accepts new appends on a
// clean boundary.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: append half a frame.
	path := filepath.Join(dir, segmentName(0))
	whole := appendFrame(nil, Entry{Decision: rec(99)})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(whole[:len(whole)-3]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 5 || j2.Frontier() != 5 {
		t.Fatalf("recovered len=%d frontier=%d", j2.Len(), j2.Frontier())
	}
	if st := j2.Snapshot(); st.TornBytes != len(whole)-3 {
		t.Fatalf("torn bytes = %d, want %d", st.TornBytes, len(whole)-3)
	}
	if _, ok := j2.Get(99); ok {
		t.Fatal("torn record resurrected")
	}
	if err := j2.Append(rec(5)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, info := replayAll(t, dir)
	if len(recs) != 6 || info.TornBytes != 0 {
		t.Fatalf("post-recovery replay: %d records, info %+v", len(recs), info)
	}
}

// TestCorruptionVariants drives Open and Replay through each torn-write
// shape: short header, bogus length, short payload, flipped payload bit
// (CRC mismatch), flipped CRC byte, and trailing garbage.
func TestCorruptionVariants(t *testing.T) {
	base := func() []byte {
		var b []byte
		for i := uint64(0); i < 3; i++ {
			b = appendFrame(b, Entry{Decision: rec(i)})
		}
		return b
	}
	whole := appendFrame(nil, Entry{Decision: rec(3)})
	cases := []struct {
		name string
		tail []byte
	}{
		{"short header", whole[:4]},
		{"short payload", whole[:frameHeader+2]},
		{"bogus length", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}},
		{"zero length", make([]byte, frameHeader)},
		{"payload bit flip", flipByte(whole, len(whole)-1)},
		{"crc byte flip", flipByte(whole, 5)},
		{"garbage", []byte{0x42, 0x42, 0x42}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			intact := base()
			if err := os.WriteFile(filepath.Join(dir, segmentName(0)),
				append(append([]byte(nil), intact...), c.tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			recs, info := replayAll(t, dir)
			if len(recs) != 3 {
				t.Fatalf("kept %d of 3 intact records", len(recs))
			}
			if info.TornBytes != len(c.tail) {
				t.Fatalf("torn bytes = %d, want %d", info.TornBytes, len(c.tail))
			}
			j, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open over torn tail: %v", err)
			}
			if j.Len() != 3 {
				t.Fatalf("open kept %d of 3 records", j.Len())
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMidJournalCorruptionFails pins the other half of the contract: a
// torn tail is only legal on the final segment, so damage to an earlier
// segment — which no crash can produce — must fail loudly, not be
// silently dropped.
func TestMidJournalCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) < 2 {
		t.Fatalf("need rotation for this test, got %d segments", len(idxs))
	}
	first := filepath.Join(dir, segmentName(idxs[0]))
	b, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, b[:len(b)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over mid-journal damage: %v", err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-journal damage: %v", err)
	}
}

// TestConcurrentAppendsGroupCommit checks the group-commit fan-in:
// concurrent appenders all become durable, the index is complete, and
// fsyncs number well below appends.
func TestConcurrentAppendsGroupCommit(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 16
		each    = 32
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := j.Append(rec(uint64(w*each + i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := j.Snapshot()
	if st.Appends != workers*each || j.Len() != workers*each {
		t.Fatalf("stats = %+v, len = %d", st, j.Len())
	}
	if st.Syncs != st.Batches || st.Batches > st.Appends {
		t.Fatalf("%d syncs / %d batches / %d appends: group commit broken",
			st.Syncs, st.Batches, st.Appends)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, dir)
	if len(recs) != workers*each {
		t.Fatalf("replayed %d of %d", len(recs), workers*each)
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := j.Append(rec(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

func TestOnAppendHook(t *testing.T) {
	dir := t.TempDir()
	var seen []uint64
	j, err := Open(dir, Options{OnAppend: func(e Entry) {
		seen = append(seen, e.Instance())
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
		// Append returning happens-after the hook, so reading seen
		// here is race-free.
		if len(seen) != int(i)+1 || seen[i] != i {
			t.Fatalf("hook saw %v after append %d", seen, i)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayEmptyAndMissingDir(t *testing.T) {
	dir := t.TempDir()
	if info, err := Replay(dir, nil); err != nil || info.Decisions != 0 || info.Frontier != 0 {
		t.Fatalf("empty dir: %+v, %v", info, err)
	}
	if _, err := Replay(filepath.Join(dir, "nope"), nil); err == nil {
		t.Fatal("missing dir replayed")
	}
	if _, err := Replay(dir, nil); err != nil {
		t.Fatal(err)
	}
	// A stray file that looks almost like a segment is an error, not
	// silently skipped data.
	if err := os.WriteFile(filepath.Join(dir, "seg-x.wal"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, nil); err == nil {
		t.Fatal("stray segment name accepted")
	}
}

// flipByte returns a copy of b with one byte inverted.
func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}

// TestStartRecordsRaiseFrontier pins the collision guard: a started but
// undecided instance (the crash-undecided case) still pushes the
// recovered frontier past its ID, while the decision index ignores it.
func TestStartRecordsRaiseFrontier(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendStart(4, "A_t+2"); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(2)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendStart(9, ""); err != nil {
		t.Fatal(err)
	}
	if j.Frontier() != 10 || j.Len() != 1 {
		t.Fatalf("frontier=%d len=%d, want 10 and 1", j.Frontier(), j.Len())
	}
	if _, ok := j.Get(9); ok {
		t.Fatal("start record served as a decision")
	}
	st := j.Snapshot()
	if st.Starts != 2 || st.Decisions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	if j2.Frontier() != 10 || j2.Len() != 1 {
		t.Fatalf("recovered frontier=%d len=%d", j2.Frontier(), j2.Len())
	}
	if st := j2.Snapshot(); st.Starts != 2 || st.Decisions != 1 {
		t.Fatalf("recovered stats = %+v", st)
	}
	var kinds []bool
	var algs []string
	if _, err := Replay(dir, func(e Entry) error {
		kinds = append(kinds, e.Start)
		if e.Start {
			algs = append(algs, e.Alg)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 3 || !kinds[0] || kinds[1] || !kinds[2] {
		t.Fatalf("replayed kinds = %v", kinds)
	}
	// The algorithm tag survives the disk round trip, tagged and
	// untagged claims alike.
	if len(algs) != 2 || algs[0] != "A_t+2" || algs[1] != "" {
		t.Fatalf("replayed algorithm tags = %v", algs)
	}
}

// TestOpenLocked pins the single-writer guarantee: a journal directory
// with a live owner refuses a second Open (no interleaved writers), and
// the lock dies with the owner (Close releases it; so would a crash).
func TestOpenLocked(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open of a live journal: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteErrorLatchesFatal pins the failed-write contract: after a
// write error (which may have torn the segment mid-frame), the journal
// must never acknowledge another append — an fsynced record past a torn
// frame would be acknowledged yet dropped by recovery.
func TestWriteErrorLatchesFatal(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	// Sabotage the active segment out from under the writer: every
	// further write fails like a disk error would.
	if err := j.seg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(1)); err == nil {
		t.Fatal("append over a dead segment succeeded")
	}
	if err := j.AppendStart(9, ""); err == nil {
		t.Fatal("start append after a write error succeeded")
	}
	if err := j.Append(rec(2)); err == nil {
		t.Fatal("journal kept acknowledging after a write error")
	}
	_ = j.Close()

	// Recovery sees exactly the records acknowledged before the error.
	recs, _ := replayAll(t, dir)
	if len(recs) != 1 || recs[0] != rec(0) {
		t.Fatalf("post-failure replay = %v", recs)
	}
}

// TestClassRoundTrip pins the SLO-class tag through the journal: a
// classed decision record survives Append → Get and Append → Replay
// byte-exactly, and classless records keep reading back as class 0
// (the trailing-field wire compatibility the sharded runtime's replay
// audit depends on).
func TestClassRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	classed := wire.DecisionRecord{Instance: 0, Value: 7, Round: 3, Batch: 4, Group: 2, Class: 5}
	classless := wire.DecisionRecord{Instance: 1, Value: 8, Round: 3, Batch: 1}
	topClass := wire.DecisionRecord{Instance: 2, Value: 9, Round: 4, Batch: 2, Class: wire.MaxClassValue}
	for _, r := range []wire.DecisionRecord{classed, classless, topClass} {
		if err := j.Append(r); err != nil {
			t.Fatalf("append %+v: %v", r, err)
		}
	}
	if got, ok := j.Get(0); !ok || got != classed {
		t.Fatalf("Get(0) = %+v, %v", got, ok)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, dir)
	want := []wire.DecisionRecord{classed, classless, topClass}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records", len(recs))
	}
	for i, r := range recs {
		if r != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
}
