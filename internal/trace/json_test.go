package trace_test

import (
	"bytes"
	"testing"

	"indulgence/internal/core"
	"indulgence/internal/model"
	"indulgence/internal/sched"
	"indulgence/internal/sim"
	"indulgence/internal/trace"
)

// TestJSONRoundTrip records a real A_{t+2} run (with a crash and delayed
// messages, exercising every payload variety) and checks that the JSON
// round trip preserves the run exactly: every process's history digest is
// unchanged.
func TestJSONRoundTrip(t *testing.T) {
	s := sched.New(5, 2, sched.WithGSR(3))
	s.CrashWithReceivers(2, 1, model.NewPIDSet(3))
	s.Delay(1, 1, 4, 3)
	props := []model.Value{9, 1, 8, 7, 6}
	res, err := sim.Run(sim.Config{
		Synchrony: model.ES,
		Schedule:  s,
		Proposals: props,
		Factory:   core.New(core.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	run := res.Run

	var buf bytes.Buffer
	if err := run.WriteJSON(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}

	if got.N != run.N || got.T != run.T || got.Synchrony != run.Synchrony ||
		got.Algorithm != run.Algorithm || got.GSR != run.GSR || got.Rounds != run.Rounds {
		t.Fatalf("header mangled: %+v vs %+v", got, run)
	}
	for p := model.ProcessID(1); int(p) <= run.N; p++ {
		if run.HistoryDigest(p, run.Rounds) != got.HistoryDigest(p, got.Rounds) {
			t.Fatalf("history of p%d changed across the JSON round trip", p)
		}
		a, b := run.Proc(p), got.Proc(p)
		if a.Decided != b.Decided || a.DecidedRound != b.DecidedRound || a.CrashRound != b.CrashRound {
			t.Fatalf("p%d decision/crash metadata mangled", p)
		}
	}
	gdrA, _ := run.GlobalDecisionRound()
	gdrB, _ := got.GlobalDecisionRound()
	if gdrA != gdrB {
		t.Fatalf("global decision round %d vs %d", gdrA, gdrB)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := trace.ReadJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := trace.ReadJSON(bytes.NewBufferString(`{"synchrony":"weird"}`)); err == nil {
		t.Fatal("unknown synchrony accepted")
	}
	if _, err := trace.ReadJSON(bytes.NewBufferString(
		`{"synchrony":"ES","procs":[{"id":1,"steps":[{"round":1,"sent":"!!!"}]}]}`)); err == nil {
		t.Fatal("bad base64 accepted")
	}
}
