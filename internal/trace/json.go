package trace

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"

	"indulgence/internal/model"
	"indulgence/internal/wire"
)

// The JSON form of a recorded run: a stable, self-contained format for
// archiving runs and analysing them outside Go. Payloads are embedded as
// base64 of their wire encoding, so the JSON layer stays independent of
// the payload vocabulary.

type jsonRun struct {
	N         int           `json:"n"`
	T         int           `json:"t"`
	Synchrony string        `json:"synchrony"`
	Algorithm string        `json:"algorithm"`
	GSR       model.Round   `json:"gsr"`
	Rounds    model.Round   `json:"rounds"`
	Procs     []jsonProcess `json:"procs"`
}

type jsonProcess struct {
	ID           model.ProcessID `json:"id"`
	Proposal     model.Value     `json:"proposal"`
	CrashRound   model.Round     `json:"crashRound,omitempty"`
	Decided      *model.Value    `json:"decided,omitempty"`
	DecidedRound model.Round     `json:"decidedRound,omitempty"`
	Steps        []jsonStep      `json:"steps"`
}

type jsonStep struct {
	Round     model.Round   `json:"round"`
	Sends     bool          `json:"sends"`
	Completes bool          `json:"completes"`
	Sent      string        `json:"sent,omitempty"` // base64 wire payload
	Received  []jsonMessage `json:"received,omitempty"`
}

type jsonMessage struct {
	From    model.ProcessID `json:"from"`
	Round   model.Round     `json:"round"`
	Payload string          `json:"payload,omitempty"` // base64 wire payload
}

func encodePayloadB64(p model.Payload) (string, error) {
	if p == nil {
		return "", nil
	}
	raw, err := wire.EncodePayload(nil, p)
	if err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(raw), nil
}

func decodePayloadB64(s string) (model.Payload, error) {
	if s == "" {
		return nil, nil
	}
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("trace: payload base64: %w", err)
	}
	p, _, err := wire.DecodePayload(raw)
	return p, err
}

// WriteJSON serializes the run to w as indented JSON.
func (r *Run) WriteJSON(w io.Writer) error {
	out := jsonRun{
		N: r.N, T: r.T,
		Synchrony: r.Synchrony.String(),
		Algorithm: r.Algorithm,
		GSR:       r.GSR,
		Rounds:    r.Rounds,
		Procs:     make([]jsonProcess, 0, len(r.Procs)),
	}
	for i := range r.Procs {
		pt := &r.Procs[i]
		jp := jsonProcess{
			ID:         pt.ID,
			Proposal:   pt.Proposal,
			CrashRound: pt.CrashRound,
			Steps:      make([]jsonStep, 0, len(pt.Steps)),
		}
		if v, ok := pt.Decided.Get(); ok {
			val := v
			jp.Decided = &val
			jp.DecidedRound = pt.DecidedRound
		}
		for _, st := range pt.Steps {
			sent, err := encodePayloadB64(st.Sent)
			if err != nil {
				return fmt.Errorf("trace: encode p%d round %d send: %w", pt.ID, st.Round, err)
			}
			js := jsonStep{
				Round:     st.Round,
				Sends:     st.Sends,
				Completes: st.Completes,
				Sent:      sent,
			}
			for _, m := range st.Received {
				pl, err := encodePayloadB64(m.Payload)
				if err != nil {
					return fmt.Errorf("trace: encode p%d round %d receive: %w", pt.ID, st.Round, err)
				}
				js.Received = append(js.Received, jsonMessage{From: m.From, Round: m.Round, Payload: pl})
			}
			jp.Steps = append(jp.Steps, js)
		}
		out.Procs = append(out.Procs, jp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes a run written by WriteJSON.
func ReadJSON(r io.Reader) (*Run, error) {
	var in jsonRun
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	run := &Run{
		N: in.N, T: in.T,
		Algorithm: in.Algorithm,
		GSR:       in.GSR,
		Rounds:    in.Rounds,
		Procs:     make([]ProcessTrace, 0, len(in.Procs)),
	}
	switch in.Synchrony {
	case model.SCS.String():
		run.Synchrony = model.SCS
	case model.ES.String():
		run.Synchrony = model.ES
	default:
		return nil, fmt.Errorf("trace: unknown synchrony %q", in.Synchrony)
	}
	for _, jp := range in.Procs {
		pt := ProcessTrace{
			ID:         jp.ID,
			Proposal:   jp.Proposal,
			CrashRound: jp.CrashRound,
		}
		if jp.Decided != nil {
			pt.Decided = model.Some(*jp.Decided)
			pt.DecidedRound = jp.DecidedRound
		}
		for _, js := range jp.Steps {
			sent, err := decodePayloadB64(js.Sent)
			if err != nil {
				return nil, fmt.Errorf("trace: decode p%d round %d send: %w", jp.ID, js.Round, err)
			}
			st := Step{
				Round:     js.Round,
				Sends:     js.Sends,
				Completes: js.Completes,
				Sent:      sent,
			}
			for _, jm := range js.Received {
				pl, err := decodePayloadB64(jm.Payload)
				if err != nil {
					return nil, fmt.Errorf("trace: decode p%d round %d receive: %w", jp.ID, js.Round, err)
				}
				st.Received = append(st.Received, model.Message{From: jm.From, Round: jm.Round, Payload: pl})
			}
			pt.Steps = append(pt.Steps, st)
		}
		run.Procs = append(run.Procs, pt)
	}
	return run, nil
}
