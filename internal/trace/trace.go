// Package trace records complete runs of round-based algorithms: every
// payload sent, every message delivered, every crash and every decision,
// per process and per round. Traces power the consensus property checkers,
// the failure-detector property checkers, and — through per-process local
// histories and their digests — the indistinguishability comparisons at the
// heart of the paper's lower-bound argument (two runs are indistinguishable
// to a process up to round k iff its local history is identical in both).
package trace

import (
	"bytes"
	"crypto/sha256"
	"fmt"

	"indulgence/internal/model"
)

// Step records one round of one process's local history.
type Step struct {
	// Round is the 1-based round number.
	Round model.Round
	// Sent is the payload broadcast in the send phase (nil if the process
	// crashed before round Round or the algorithm sent a dummy).
	Sent model.Payload
	// Received holds the messages delivered in the receive phase, sorted
	// by (Round, From). Nil if the process crashed in or before this
	// round (a crashing process does not complete its receive phase).
	Received []model.Message
	// Sends reports whether the process executed the send phase.
	Sends bool
	// Completes reports whether the process completed the round
	// (executed the receive phase).
	Completes bool
}

// ProcessTrace is the full local history of one process in one run.
type ProcessTrace struct {
	// ID identifies the process.
	ID model.ProcessID
	// Proposal is the value the process proposed.
	Proposal model.Value
	// Steps holds one entry per round, Steps[r-1] for round r.
	Steps []Step
	// Decided is the decision, if the process decided.
	Decided model.OptValue
	// DecidedRound is the round at the end of which the process decided
	// (0 if it never decided).
	DecidedRound model.Round
	// CrashRound is the round in which the process crashed (0 if it never
	// crashed).
	CrashRound model.Round
}

// Correct reports whether the process never crashed in this run.
func (p *ProcessTrace) Correct() bool { return p.CrashRound == 0 }

// Run is the complete trace of one simulated run.
type Run struct {
	// N and T describe the system.
	N, T int
	// Synchrony is the model the run executed under.
	Synchrony model.Synchrony
	// Algorithm is the name of the algorithm executed.
	Algorithm string
	// GSR is the schedule's global stabilization round.
	GSR model.Round
	// Rounds is the number of rounds executed.
	Rounds model.Round
	// Procs holds one trace per process, Procs[id-1].
	Procs []ProcessTrace
}

// Proc returns the trace of process p.
func (r *Run) Proc(p model.ProcessID) *ProcessTrace { return &r.Procs[p-1] }

// GlobalDecisionRound returns the round at which the run achieves a global
// decision in the paper's sense (Sect. 1.3): the round k such that every
// process that ever decides does so at round ≤ k and at least one process
// decides at k. ok is false if no process ever decides.
func (r *Run) GlobalDecisionRound() (round model.Round, ok bool) {
	for i := range r.Procs {
		p := &r.Procs[i]
		if p.DecidedRound > 0 && p.DecidedRound > round {
			round, ok = p.DecidedRound, true
		}
	}
	return round, ok
}

// HistoryDigest returns a collision-resistant digest of process p's local
// history through the end of round upto: its proposal, every payload it
// sent and every message it received in rounds 1..upto. Two deterministic
// processes with equal digests are in identical states.
func (r *Run) HistoryDigest(p model.ProcessID, upto model.Round) [sha256.Size]byte {
	return sha256.Sum256(r.historyBytes(p, upto))
}

func (r *Run) historyBytes(p model.ProcessID, upto model.Round) []byte {
	pt := r.Proc(p)
	buf := model.AppendDigestInt(nil, int64(pt.ID))
	buf = model.AppendDigestInt(buf, int64(pt.Proposal))
	for i := 0; i < len(pt.Steps) && model.Round(i) < upto; i++ {
		st := &pt.Steps[i]
		buf = model.AppendDigestInt(buf, int64(st.Round))
		buf = model.AppendDigestBool(buf, st.Sends)
		if st.Sent != nil {
			buf = model.AppendDigestString(buf, st.Sent.Kind())
			buf = st.Sent.AppendDigest(buf)
		} else {
			buf = model.AppendDigestString(buf, "")
		}
		buf = model.AppendDigestBool(buf, st.Completes)
		buf = model.AppendDigestInt(buf, int64(len(st.Received)))
		for _, m := range st.Received {
			buf = m.AppendDigest(buf)
		}
	}
	return buf
}

// Indistinguishable reports whether process p cannot distinguish runs a and
// b at the end of round upto: its proposal and its per-round sent payloads
// and receive sets are identical in both runs through round upto. This is
// the executable form of the view-equality arguments in the proof of
// Proposition 1 (Fig. 1).
func Indistinguishable(a, b *Run, p model.ProcessID, upto model.Round) bool {
	if a.N != b.N || int(p) < 1 || int(p) > a.N {
		return false
	}
	return bytes.Equal(a.historyBytes(p, upto), b.historyBytes(p, upto))
}

// String summarizes the run.
func (r *Run) String() string {
	gdr, ok := r.GlobalDecisionRound()
	if !ok {
		return fmt.Sprintf("run{%s %s n=%d t=%d rounds=%d undecided}", r.Algorithm, r.Synchrony, r.N, r.T, r.Rounds)
	}
	return fmt.Sprintf("run{%s %s n=%d t=%d rounds=%d global-decision=%d}", r.Algorithm, r.Synchrony, r.N, r.T, r.Rounds, gdr)
}
