package trace

import (
	"testing"

	"indulgence/internal/model"
	"indulgence/internal/payload"
)

// mkRun builds a two-process run with the given per-round sent estimates
// and full receive sets.
func mkRun(perRound [][2]model.Value) *Run {
	run := &Run{
		N: 2, T: 0, Synchrony: model.ES, Algorithm: "test", GSR: 1,
		Rounds: model.Round(len(perRound)),
		Procs: []ProcessTrace{
			{ID: 1, Proposal: 10},
			{ID: 2, Proposal: 20},
		},
	}
	for r, ests := range perRound {
		round := model.Round(r + 1)
		msgs := []model.Message{
			{From: 1, Round: round, Payload: payload.Estimate{Est: ests[0]}},
			{From: 2, Round: round, Payload: payload.Estimate{Est: ests[1]}},
		}
		for i := 0; i < 2; i++ {
			run.Procs[i].Steps = append(run.Procs[i].Steps, Step{
				Round:     round,
				Sent:      payload.Estimate{Est: ests[i]},
				Received:  msgs,
				Sends:     true,
				Completes: true,
			})
		}
	}
	return run
}

func TestGlobalDecisionRound(t *testing.T) {
	run := mkRun([][2]model.Value{{1, 2}, {1, 1}})
	if _, ok := run.GlobalDecisionRound(); ok {
		t.Fatal("no decisions yet")
	}
	run.Procs[0].Decided = model.Some(1)
	run.Procs[0].DecidedRound = 2
	run.Procs[1].Decided = model.Some(1)
	run.Procs[1].DecidedRound = 3
	gdr, ok := run.GlobalDecisionRound()
	if !ok || gdr != 3 {
		t.Fatalf("gdr = %d, %v", gdr, ok)
	}
}

func TestHistoryDigestSensitivity(t *testing.T) {
	a := mkRun([][2]model.Value{{1, 2}, {1, 1}})
	b := mkRun([][2]model.Value{{1, 2}, {1, 1}})
	if a.HistoryDigest(1, 2) != b.HistoryDigest(1, 2) {
		t.Fatal("identical runs must share digests")
	}
	// Change round 2 only: digests agree up to round 1, differ at 2.
	c := mkRun([][2]model.Value{{1, 2}, {3, 1}})
	if a.HistoryDigest(1, 1) != c.HistoryDigest(1, 1) {
		t.Fatal("round-1 digest should be unaffected by round-2 changes")
	}
	if a.HistoryDigest(1, 2) == c.HistoryDigest(1, 2) {
		t.Fatal("digest insensitive to received payload change")
	}
	// Proposal changes are visible.
	d := mkRun([][2]model.Value{{1, 2}, {1, 1}})
	d.Procs[0].Proposal = 99
	if a.HistoryDigest(1, 0) == d.HistoryDigest(1, 0) {
		t.Fatal("digest insensitive to proposal")
	}
}

func TestIndistinguishable(t *testing.T) {
	a := mkRun([][2]model.Value{{1, 2}, {1, 1}})
	b := mkRun([][2]model.Value{{1, 2}, {9, 9}})
	if !Indistinguishable(a, b, 1, 1) {
		t.Fatal("views should agree through round 1")
	}
	if Indistinguishable(a, b, 1, 2) {
		t.Fatal("views should differ at round 2")
	}
	// Out-of-range process.
	if Indistinguishable(a, b, 5, 1) {
		t.Fatal("unknown process cannot be indistinguishable")
	}
	// Different system sizes.
	c := &Run{N: 3, Procs: make([]ProcessTrace, 3)}
	if Indistinguishable(a, c, 1, 1) {
		t.Fatal("different systems cannot be compared")
	}
}

func TestIndistinguishableCrashedSteps(t *testing.T) {
	a := mkRun([][2]model.Value{{1, 2}})
	b := mkRun([][2]model.Value{{1, 2}})
	// In run b, p2 crashed mid-round 1 (sends but does not complete).
	b.Procs[1].Steps[0].Completes = false
	b.Procs[1].Steps[0].Received = nil
	b.Procs[1].CrashRound = 1
	if Indistinguishable(a, b, 2, 1) {
		t.Fatal("completing vs crashing views must differ")
	}
	if !Indistinguishable(a, b, 1, 1) {
		t.Fatal("p1's view is unaffected")
	}
}

func TestRunString(t *testing.T) {
	run := mkRun([][2]model.Value{{1, 2}})
	if s := run.String(); s == "" {
		t.Fatal("empty String()")
	}
	run.Procs[0].Decided = model.Some(1)
	run.Procs[0].DecidedRound = 1
	if s := run.String(); s == "" {
		t.Fatal("empty String() with decision")
	}
}
