package metrics

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// OpsServer is the live introspection endpoint `serve` and
// `bench-service` expose behind -metrics-addr: the registry in
// Prometheus text form at /metrics, the same snapshot as JSON at
// /metrics.json, and the standard net/http/pprof handlers under
// /debug/pprof/. A scrape reads the instruments' instantaneous
// values; it is not synchronized with the event schedule, so two
// scrapes of a live run differ — the deterministic artifact is the
// snapshot the harness takes at quiescence, not the scrape.
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeOps starts an ops endpoint for reg on addr (host:port; port 0
// picks a free port) and serves it on a background goroutine until
// Close.
func ServeOps(addr string, reg *Registry) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(reg.Text()))
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(reg.JSON()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &OpsServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the listener's address (useful with port 0).
func (s *OpsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and the server.
func (s *OpsServer) Close() error { return s.srv.Close() }
