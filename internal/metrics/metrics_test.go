package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the exact edge semantics: each
// bucket le=e counts observations v with prev(e) < v <= e, the
// underflow bucket (le="0") counts v <= 0, and the overflow bucket
// counts v > hi.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int // counts index: 0 underflow, 1..n edges, n+1 overflow
	}{
		{-5, 0},
		{0, 0},
		{1, 1},
		{7, 1},
		{8, 1},  // exactly lo
		{9, 2},  // first value past lo
		{16, 2}, // exactly 2lo
		{17, 3},
		{31, 3},
		{32, 3}, // exactly 4lo
		{33, 4},
		{64, 4}, // exactly hi
		{65, 5}, // overflow
		{1 << 40, 5},
	}
	h := newHistogram(8, 64) // edges 8, 16, 32, 64
	if got := len(h.edges); got != 4 {
		t.Fatalf("edges = %v, want 4 edges", h.edges)
	}
	for _, c := range cases {
		if got := h.bucket(c.v); got != c.bucket {
			t.Errorf("bucket(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// Same edges through the registry path, checking the rendered
	// cumulative counts.
	r := NewRegistry()
	hist := r.Histogram("boundary_ns", "boundary test", 8, 64)
	for _, c := range cases {
		hist.Observe(c.v)
	}
	text := r.Text()
	for _, want := range []string{
		`boundary_ns_bucket{le="0"} 2`,
		`boundary_ns_bucket{le="8"} 5`,
		`boundary_ns_bucket{le="16"} 7`,
		`boundary_ns_bucket{le="32"} 10`,
		`boundary_ns_bucket{le="64"} 12`,
		`boundary_ns_bucket{le="+Inf"} 14`,
		`boundary_ns_count 14`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	if hist.Count() != 14 {
		t.Errorf("Count() = %d, want 14", hist.Count())
	}
}

// TestHistogramSingleBucket covers the degenerate lo == hi ladder.
func TestHistogramSingleBucket(t *testing.T) {
	h := newHistogram(4, 4)
	if len(h.edges) != 1 {
		t.Fatalf("edges = %v, want [4]", h.edges)
	}
	for v, want := range map[int64]int{0: 0, 1: 1, 4: 1, 5: 2} {
		if got := h.bucket(v); got != want {
			t.Errorf("bucket(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestHistogramRejectsBadLadder(t *testing.T) {
	for _, c := range [][2]int64{{0, 8}, {-2, 8}, {3, 24}, {8, 4}, {8, 24}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Histogram(lo=%d, hi=%d) did not panic", c[0], c[1])
				}
			}()
			NewRegistry().Histogram("bad", "", c[0], c[1])
		}()
	}
}

// TestConcurrentHammer drives every instrument kind from many
// goroutines; under -race this is the data-race proof, and the final
// totals prove no observation is lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Registration races with use on purpose: lookups are
			// idempotent and all workers must land on one series.
			c := r.Counter("hammer_total", "events")
			g := r.Gauge("hammer_gauge", "level")
			h := r.Histogram("hammer_ns", "latency", 1024, 1<<20)
			for i := 0; i < each; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i * 997))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hammer_total", "events").Value(); got != workers*each {
		t.Errorf("counter = %d, want %d", got, workers*each)
	}
	if got := r.Histogram("hammer_ns", "latency", 1024, 1<<20).Count(); got != workers*each {
		t.Errorf("histogram count = %d, want %d", got, workers*each)
	}
}

// TestRenderDeterminism: registration order must not leak into the
// snapshot — families, series and buckets render sorted.
func TestRenderDeterminism(t *testing.T) {
	build := func(flip bool) *Registry {
		r := NewRegistry()
		add := func(group string) {
			r.Counter("zz_total", "z", Label{"group", group}).Add(3)
			r.Gauge("aa_gauge", "a", Label{"group", group}, Label{"class", "1"}).Set(7)
			r.Histogram("mm_ns", "m", 2, 8, Label{"group", group}).Observe(5)
		}
		if flip {
			add("1")
			add("0")
		} else {
			add("0")
			add("1")
		}
		return r
	}
	a, b := build(false), build(true)
	if a.Text() != b.Text() {
		t.Errorf("Text() depends on registration order:\n%s\n---\n%s", a.Text(), b.Text())
	}
	if a.JSON() != b.JSON() {
		t.Errorf("JSON() depends on registration order")
	}
	// Label keys within a series render sorted too.
	if !strings.Contains(a.Text(), `aa_gauge{class="1",group="0"} 7`) {
		t.Errorf("labels not canonically sorted:\n%s", a.Text())
	}
	if !json.Valid([]byte(a.JSON())) {
		t.Errorf("JSON() is not valid JSON:\n%s", a.JSON())
	}
}

// TestNilSafety: a nil registry and nil instruments are the "off"
// configuration — every call is a no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	g := r.Gauge("x_gauge", "x")
	h := r.Histogram("x_ns", "x", 1, 8)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry returned non-nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(9)
	g.Add(1)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil instruments accumulated state")
	}
	if r.Text() != "" || r.JSON() != "[]" {
		t.Errorf("nil registry rendered content")
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "d")
	defer func() {
		if recover() == nil {
			t.Errorf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dual", "d")
}

// TestOpsServer scrapes a live endpoint end to end: Prometheus text
// at /metrics, JSON at /metrics.json, pprof index under /debug/pprof/.
func TestOpsServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", "ops", Label{"class", "0"}).Add(11)
	s, err := ServeOps("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("ServeOps: %v", err)
	}
	defer s.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}
	if got := get("/metrics"); !strings.Contains(got, `ops_total{class="0"} 11`) {
		t.Errorf("/metrics missing series:\n%s", got)
	}
	if got := get("/metrics.json"); !json.Valid([]byte(got)) || !strings.Contains(got, `"ops_total"`) {
		t.Errorf("/metrics.json invalid or missing family:\n%s", got)
	}
	if got := get("/debug/pprof/"); !strings.Contains(got, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", got)
	}
}
