// Package metrics is the repository's introspection plane: typed
// counters, gauges and fixed-log-bucket histograms behind a registry
// whose snapshots are pure functions of the event schedule.
//
// The package is deliberately inert: it never reads a clock, never
// draws randomness, and its hot paths (Add, Set, Observe) are single
// atomic operations with zero allocations, so instrumenting the live
// stack cannot perturb the schedules the chaos harness replays. Every
// observation an instrument records is a value the *caller* computed —
// on the injected clock.Clock where a duration is involved — which is
// what makes a registry snapshot at quiescence a deterministic
// function of the run: counters and histogram buckets are
// order-insensitive sums, gauges are last-writer values that the
// virtual-time drivers only move at settled instants, and rendering
// sorts families, series and buckets. Two runs of the same seed at
// GOMAXPROCS(1) produce byte-identical Text() output.
//
// Instruments are nil-safe: methods on a nil *Counter, *Gauge or
// *Histogram (or registration calls on a nil *Registry) are no-ops
// returning nil, so components accept instruments unconditionally and
// uninstrumented configurations pay a nil check per event, nothing
// more.
//
// Histogram buckets are fixed at registration: power-of-two edges
// from Lo to Hi plus an explicit underflow bucket (observations <= 0,
// rendered le="0") and an overflow bucket (rendered le="+Inf").
// Rendering follows the Prometheus text exposition format
// (cumulative _bucket series plus _sum and _count); JSON() renders
// the same snapshot as a machine-readable document for the ops
// endpoint and the chaos harness.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" pair on a series. Series identity is the
// sorted label set; registering the same name and labels twice
// returns the same instrument.
type Label struct {
	Key   string
	Value string
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry owns a set of metric families and renders deterministic
// snapshots of them. The zero value is not usable; construct with
// NewRegistry. A nil *Registry is a valid "instrumentation off"
// registry: every registration call on it returns nil, and nil
// instruments no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name   string
	help   string
	kind   kind
	lo, hi int64 // histogram bucket range (kindHistogram only)
	series map[string]*series
}

type series struct {
	sig    string // canonical sorted k="v" join, "" for unlabelled
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// signature renders the canonical series identity and the sorted
// label slice. Label keys must be unique; values are escaped at
// render time, not here.
func signature(labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return "", nil
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		if i > 0 && sorted[i-1].Key == l.Key {
			panic("metrics: duplicate label key " + l.Key)
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String(), sorted
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup finds or creates the family and series for one registration
// call, enforcing that a name keeps one kind, help string and (for
// histograms) bucket range for the registry's lifetime.
func (r *Registry) lookup(name, help string, k kind, lo, hi int64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, lo: lo, hi: hi, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != k || f.help != help || f.lo != lo || f.hi != hi {
		panic(fmt.Sprintf("metrics: conflicting registration for %s", name))
	}
	sig, sorted := signature(labels)
	s := f.series[sig]
	if s == nil {
		s = &series{sig: sig, labels: sorted}
		switch k {
		case kindCounter:
			s.ctr = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = newHistogram(lo, hi)
		}
		f.series[sig] = s
	}
	return s
}

// Counter registers (or finds) the counter series name{labels...} and
// returns its instrument. On a nil registry it returns nil.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, 0, 0, labels).ctr
}

// Gauge registers (or finds) the gauge series name{labels...} and
// returns its instrument. On a nil registry it returns nil.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, 0, 0, labels).gauge
}

// Histogram registers (or finds) the histogram series name{labels...}
// with power-of-two bucket edges lo, 2lo, 4lo, ..., hi (lo must be a
// positive power of two and hi a power-of-two multiple of it), plus
// an underflow bucket for observations <= 0 and an overflow bucket
// above hi. On a nil registry it returns nil.
func (r *Registry) Histogram(name, help string, lo, hi int64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if lo <= 0 || lo&(lo-1) != 0 || hi < lo || hi&(hi-1) != 0 {
		panic(fmt.Sprintf("metrics: histogram %s: bucket range [%d, %d] is not a power-of-two ladder", name, lo, hi))
	}
	return r.lookup(name, help, kindHistogram, lo, hi, labels).hist
}

// Counter is a monotone event count. Negative deltas are ignored.
type Counter struct {
	v atomic.Int64
}

// Add adds n (ignored when n <= 0 or c is nil).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-writer-wins instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (no-op on nil).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed power-of-two buckets.
// counts[0] is the underflow bucket (v <= 0), counts[1..len(edges)]
// pair with edges (bucket i+1 counts edges[i-1] < v <= edges[i],
// with edges[-1] read as 0), and counts[len(edges)+1] is overflow.
type Histogram struct {
	lo    int64
	edges []int64
	count []atomic.Int64
	sum   atomic.Int64
}

func newHistogram(lo, hi int64) *Histogram {
	h := &Histogram{lo: lo}
	for e := lo; ; e <<= 1 {
		h.edges = append(h.edges, e)
		if e >= hi {
			break
		}
	}
	h.count = make([]atomic.Int64, len(h.edges)+2)
	return h
}

// bucket returns the counts index for one observation.
func (h *Histogram) bucket(v int64) int {
	if v <= 0 {
		return 0
	}
	if v <= h.lo {
		return 1
	}
	// Smallest i with lo<<i >= v, i.e. ceil(log2(v/lo)).
	i := bits.Len64(uint64(v-1) / uint64(h.lo))
	if i >= len(h.edges) {
		return len(h.edges) + 1
	}
	return i + 1
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count[h.bucket(v)].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.count {
		n += h.count[i].Load()
	}
	return n
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshotFamilies returns the families sorted by name and each
// family's series sorted by signature, under the registry lock.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedSeries() []*series {
	ss := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		ss = append(ss, s)
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].sig < ss[j].sig })
	return ss
}

// Text renders the registry in the Prometheus text exposition format:
// families sorted by name, series sorted by label signature,
// histogram buckets cumulative with le edges in ascending order
// (underflow as le="0", overflow as le="+Inf"). The output is a pure
// function of the instruments' current values. On a nil registry it
// returns "".
func (r *Registry) Text() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, f := range r.snapshotFamilies() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.sortedSeries() {
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, s.sig, "", s.ctr.Value())
			case kindGauge:
				writeSample(&b, f.name, s.sig, "", s.gauge.Value())
			case kindHistogram:
				h := s.hist
				cum := int64(0)
				cum += h.count[0].Load()
				writeSample(&b, f.name+"_bucket", s.sig, `le="0"`, cum)
				for i, e := range h.edges {
					cum += h.count[i+1].Load()
					writeSample(&b, f.name+"_bucket", s.sig, `le="`+strconv.FormatInt(e, 10)+`"`, cum)
				}
				cum += h.count[len(h.edges)+1].Load()
				writeSample(&b, f.name+"_bucket", s.sig, `le="+Inf"`, cum)
				writeSample(&b, f.name+"_sum", s.sig, "", h.Sum())
				writeSample(&b, f.name+"_count", s.sig, "", cum)
			}
		}
	}
	return b.String()
}

func writeSample(b *strings.Builder, name, sig, extra string, v int64) {
	b.WriteString(name)
	if sig != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(sig)
		if sig != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(v, 10))
	b.WriteByte('\n')
}

// JSON renders the same snapshot as a deterministic JSON document:
// an array of families sorted by name, each with its series sorted
// by label signature; histogram buckets carry cumulative counts with
// the same le edges the text format exposes. On a nil registry it
// returns "[]".
func (r *Registry) JSON() string {
	if r == nil {
		return "[]"
	}
	var b strings.Builder
	b.WriteString("[")
	for fi, f := range r.snapshotFamilies() {
		if fi > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n {%q: %q, %q: %q, %q: %q, %q: [", "name", f.name, "type", f.kind.String(), "help", f.help, "series")
		for si, s := range f.sortedSeries() {
			if si > 0 {
				b.WriteString(",")
			}
			b.WriteString("\n  {")
			fmt.Fprintf(&b, "%q: {", "labels")
			for li, l := range s.labels {
				if li > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%q: %q", l.Key, l.Value)
			}
			b.WriteString("}")
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, ", %q: %d", "value", s.ctr.Value())
			case kindGauge:
				fmt.Fprintf(&b, ", %q: %d", "value", s.gauge.Value())
			case kindHistogram:
				h := s.hist
				fmt.Fprintf(&b, ", %q: [", "buckets")
				cum := h.count[0].Load()
				fmt.Fprintf(&b, "{%q: %q, %q: %d}", "le", "0", "count", cum)
				for i, e := range h.edges {
					cum += h.count[i+1].Load()
					fmt.Fprintf(&b, ", {%q: %q, %q: %d}", "le", strconv.FormatInt(e, 10), "count", cum)
				}
				cum += h.count[len(h.edges)+1].Load()
				fmt.Fprintf(&b, ", {%q: %q, %q: %d}]", "le", "+Inf", "count", cum)
				fmt.Fprintf(&b, ", %q: %d, %q: %d", "sum", h.Sum(), "count", cum)
			}
			b.WriteString("}")
		}
		b.WriteString("]}")
	}
	b.WriteString("\n]\n")
	return b.String()
}
