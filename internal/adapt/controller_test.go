package adapt_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"indulgence/internal/adapt"
	"indulgence/internal/core"
)

// TestControllerTrajectory scripts an entire load episode — idle, burst,
// regression, recovery — and pins the exact setting after every tick.
// The controller is a pure state machine, so this trajectory is the
// behaviour, not a sample of it.
func TestControllerTrajectory(t *testing.T) {
	cfg := adapt.Config{
		MinBatch: 1, MaxBatch: 32,
		MinLinger: 0, MaxLinger: 4 * time.Millisecond,
		Step: 4, LingerStep: 500 * time.Microsecond,
	}
	c := adapt.NewController(cfg, adapt.Setting{Batch: 8, Linger: 2 * time.Millisecond})

	steps := []struct {
		name string
		obs  adapt.Observation
		want adapt.Setting
	}{
		// Idle ticks decay the linger toward the floor; batch holds.
		{"idle-1", adapt.Observation{QueueCap: 64, Slots: 16},
			adapt.Setting{Batch: 8, Linger: 1500 * time.Microsecond}},
		{"idle-2", adapt.Observation{QueueCap: 64, Slots: 16},
			adapt.Setting{Batch: 8, Linger: 1125 * time.Microsecond}},
		// A burst fills the queue: additive batch increase per tick.
		{"burst-1", adapt.Observation{Decided: 2, Latency: time.Millisecond, FillPercent: 100,
			QueueLen: 40, QueueCap: 64, Busy: 16, Slots: 16},
			adapt.Setting{Batch: 12, Linger: 1125 * time.Microsecond}},
		{"burst-2", adapt.Observation{Decided: 4, Latency: time.Millisecond, FillPercent: 100,
			QueueLen: 48, QueueCap: 64, Busy: 16, Slots: 16},
			adapt.Setting{Batch: 16, Linger: 1125 * time.Microsecond}},
		// Full batches keep growing the batch even after the queue
		// drains: count-triggered cuts mean the limit is the bottleneck.
		{"full-cuts", adapt.Observation{Decided: 4, Latency: time.Millisecond, FillPercent: 95,
			QueueLen: 2, QueueCap: 64, Busy: 4, Slots: 16},
			adapt.Setting{Batch: 20, Linger: 1125 * time.Microsecond}},
		// A latency regression (> 1.5x the EWMA of ~1ms) halves the
		// linger — the knob that directly inflates latency — while the
		// batch, whose only downward cost is fate-sharing, holds.
		{"regression", adapt.Observation{Decided: 2, Latency: 10 * time.Millisecond, FillPercent: 80,
			QueueLen: 0, QueueCap: 64, Busy: 4, Slots: 16},
			adapt.Setting{Batch: 20, Linger: 562500 * time.Nanosecond}},
		// Under-full cuts while the slots are the bottleneck grow the
		// linger additively so batches fill while rounds dominate.
		{"underfull-busy", adapt.Observation{Decided: 2, Latency: 3 * time.Millisecond, FillPercent: 30,
			QueueLen: 0, QueueCap: 64, Busy: 16, Slots: 16},
			adapt.Setting{Batch: 20, Linger: 1625 * time.Microsecond}},
		// A single low-fill window (a burst tail) decays the linger but
		// NOT the batch — decay hysteresis needs three in a row.
		{"underfull-relaxed-1", adapt.Observation{Decided: 1, Latency: 3 * time.Millisecond, FillPercent: 20,
			QueueLen: 0, QueueCap: 64, Busy: 2, Slots: 16},
			adapt.Setting{Batch: 20, Linger: 1218750 * time.Nanosecond}},
		{"underfull-relaxed-2", adapt.Observation{Decided: 1, Latency: 3 * time.Millisecond, FillPercent: 20,
			QueueLen: 0, QueueCap: 64, Busy: 2, Slots: 16},
			adapt.Setting{Batch: 20, Linger: 914062 * time.Nanosecond}},
		// The third consecutive low-fill window starts walking the batch
		// down, re-centering the fill signal.
		{"underfull-relaxed-3", adapt.Observation{Decided: 1, Latency: 3 * time.Millisecond, FillPercent: 20,
			QueueLen: 0, QueueCap: 64, Busy: 2, Slots: 16},
			adapt.Setting{Batch: 15, Linger: 685546 * time.Nanosecond}},
		// An instance failure is the one signal that shrinks the batch
		// multiplicatively: fate-sharing exposure halves on the spot.
		{"failure", adapt.Observation{Decided: 1, Failures: 1, Latency: 3 * time.Millisecond,
			FillPercent: 60, QueueLen: 0, QueueCap: 64, Busy: 4, Slots: 16},
			adapt.Setting{Batch: 7, Linger: 342773 * time.Nanosecond}},
		// Failures preempt the additive increase: a pressured, full-fill
		// window that also failed instances must still shrink, not grow.
		{"failure-under-pressure", adapt.Observation{Decided: 1, Failures: 1, Latency: 3 * time.Millisecond,
			FillPercent: 100, QueueLen: 60, QueueCap: 64, Busy: 16, Slots: 16},
			adapt.Setting{Batch: 3, Linger: 171386 * time.Nanosecond}},
	}
	for i, st := range steps {
		got, _ := c.Tick(st.obs)
		if got != st.want {
			t.Fatalf("step %d (%s): setting = %+v, want %+v", i, st.name, got, st.want)
		}
	}
	if c.Adjustments() == 0 {
		t.Fatal("no adjustments counted")
	}
}

// TestControllerDeterminism replays one observation script twice and
// requires identical trajectories and adjustment counts.
func TestControllerDeterminism(t *testing.T) {
	script := []adapt.Observation{
		{QueueCap: 64, Slots: 8},
		{Decided: 3, Latency: 2 * time.Millisecond, FillPercent: 100, QueueLen: 60, QueueCap: 64, Busy: 8, Slots: 8},
		{Decided: 3, Latency: 9 * time.Millisecond, FillPercent: 70, QueueLen: 0, QueueCap: 64, Busy: 1, Slots: 8},
		{Decided: 1, Latency: time.Millisecond, FillPercent: 10, QueueLen: 0, QueueCap: 64, Busy: 1, Slots: 8},
		{QueueCap: 64, Slots: 8},
	}
	run := func() []adapt.Setting {
		c := adapt.NewController(adapt.Config{}, adapt.Setting{Batch: 8, Linger: 2 * time.Millisecond})
		var out []adapt.Setting
		for _, obs := range script {
			s, _ := c.Tick(obs)
			out = append(out, s)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestControllerBounds drives the controller hard in both directions and
// checks it never leaves its floor/ceiling envelope.
func TestControllerBounds(t *testing.T) {
	cfg := adapt.Config{MinBatch: 2, MaxBatch: 16, MinLinger: 100 * time.Microsecond, MaxLinger: time.Millisecond}
	c := adapt.NewController(cfg, adapt.Setting{Batch: 2, Linger: 100 * time.Microsecond})
	pressure := adapt.Observation{Decided: 1, Latency: time.Millisecond, FillPercent: 100,
		QueueLen: 64, QueueCap: 64, Busy: 8, Slots: 8}
	for i := 0; i < 50; i++ {
		s, _ := c.Tick(pressure)
		if s.Batch < 2 || s.Batch > 16 || s.Linger < 100*time.Microsecond || s.Linger > time.Millisecond {
			t.Fatalf("tick %d: setting %+v outside bounds", i, s)
		}
	}
	if s := c.Setting(); s.Batch != 16 {
		t.Fatalf("sustained pressure should pin the ceiling, got %+v", s)
	}
	// Now collapse: failing instances with huge latency.
	collapse := adapt.Observation{Decided: 1, Failures: 1, Latency: time.Second,
		QueueCap: 64, Slots: 8, FillPercent: 60}
	for i := 0; i < 50; i++ {
		s, _ := c.Tick(collapse)
		if s.Batch < 2 || s.Linger < 100*time.Microsecond {
			t.Fatalf("tick %d: setting %+v under floor", i, s)
		}
	}
	if s := c.Setting(); s.Batch != 2 || s.Linger != 100*time.Microsecond {
		t.Fatalf("sustained failures should pin the floor, got %+v", s)
	}
}

// TestPlaneVirtualClock runs a Plane under a fixed virtual clock and a
// captured log, asserting the decision log is reproduced byte-exactly —
// the package's determinism contract end to end.
func TestPlaneVirtualClock(t *testing.T) {
	run := func() string {
		var b strings.Builder
		now := time.Unix(0, 0)
		cfg := adapt.Config{
			Interval: 5 * time.Millisecond,
			Logf:     func(f string, a ...any) { fmt.Fprintf(&b, f+"\n", a...) },
			Now:      func() time.Time { now = now.Add(5 * time.Millisecond); return now },
		}
		p := adapt.NewPlane(cfg, adapt.Choice{Name: core.AtPlus2Name}, adapt.Setting{Batch: 8, Linger: 2 * time.Millisecond}, 4, 1)
		p.ObserveCut(100)
		p.ObserveDecision([]time.Duration{time.Millisecond, 3 * time.Millisecond}, 0)
		p.Tick(32, 64, 8, 8)
		p.Tick(0, 64, 0, 8)
		p.Tick(0, 64, 0, 8)
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("virtual-clock log not reproducible:\n%q\nvs\n%q", a, b)
	}
	if !strings.Contains(a, "batch=12") {
		t.Fatalf("expected a batch adjustment in the log, got:\n%s", a)
	}
	if !strings.Contains(a, "window 5ms") {
		t.Fatalf("expected virtual-clock window durations in the log, got:\n%s", a)
	}
}

// TestPlaneCeilingStretchesToStart: a static configuration above the
// controller's default ceilings must become a larger envelope, not a
// silent clamp — the adaptive service starts exactly where its static
// twin stands.
func TestPlaneCeilingStretchesToStart(t *testing.T) {
	p := adapt.NewPlane(adapt.Config{MaxBatch: 64, MaxLinger: 8 * time.Millisecond}, adapt.Choice{},
		adapt.Setting{Batch: 128, Linger: 20 * time.Millisecond}, 4, 1)
	if p.BatchLimit() != 128 || p.Linger() != 20*time.Millisecond {
		t.Fatalf("start setting clamped: batch %d linger %v", p.BatchLimit(), p.Linger())
	}
	if p.BatchCeiling() != 128 {
		t.Fatalf("ceiling %d does not cover the start batch", p.BatchCeiling())
	}
}

// TestPlaneAdmission exercises the shedding hysteresis: consecutive
// saturated ticks arm it, a drained queue disarms it.
func TestPlaneAdmission(t *testing.T) {
	p := adapt.NewPlane(adapt.Config{AdmitHigh: 0.9, AdmitLow: 0.5, AdmitTicks: 2},
		adapt.Choice{}, adapt.Setting{Batch: 8, Linger: time.Millisecond}, 4, 1)
	if !p.Admit() {
		t.Fatal("fresh plane must admit")
	}
	p.Tick(60, 64, 8, 8) // one hot tick: not yet
	if !p.Admit() {
		t.Fatal("one saturated tick must not shed")
	}
	p.Tick(60, 64, 8, 8) // second consecutive: shed
	if p.Admit() {
		t.Fatal("two saturated ticks must shed")
	}
	p.Tick(40, 64, 8, 8) // between low and high: still shedding
	if p.Admit() {
		t.Fatal("hysteresis must hold between the marks")
	}
	p.Tick(10, 64, 2, 8) // at/below low water: disarm
	if !p.Admit() {
		t.Fatal("drained queue must disarm shedding")
	}
	// An interrupted hot streak must not accumulate.
	p.Tick(60, 64, 8, 8)
	p.Tick(40, 64, 8, 8)
	p.Tick(60, 64, 8, 8)
	if !p.Admit() {
		t.Fatal("non-consecutive saturated ticks must not shed")
	}
}

// TestPlaneAdmissionClasses extends TestPlaneAdmission to SLO-classed
// admission: under saturation the classes must shed strictly
// lowest-first (one per tick, staggered by the per-class arm counts),
// hysteresis must disarm them per class highest-first as the queue
// drains, every refusal must carry its class's retry budget, and the
// overload counters must split per class.
func TestPlaneAdmissionClasses(t *testing.T) {
	p := adapt.NewPlane(adapt.Config{
		AdmitHigh: 0.9, AdmitLow: 0.5, AdmitTop: 0.98, AdmitTicks: 2,
		Classes: 3, RetryBudget: 3, Interval: 5 * time.Millisecond,
	}, adapt.Choice{}, adapt.Setting{Batch: 8, Linger: time.Millisecond}, 4, 1)

	shedState := func() [3]bool {
		var s [3]bool
		for c := 0; c < 3; c++ {
			s[c] = p.AdmitClass(c) != nil
		}
		return s
	}
	// Saturation: classes arm lowest-first, one tick apart.
	steps := []struct {
		queue int
		want  [3]bool // shed state after the tick, per class
		note  string
	}{
		{100, [3]bool{false, false, false}, "one hot tick arms nothing"},
		{100, [3]bool{true, false, false}, "class 0 sheds first"},
		{100, [3]bool{true, true, false}, "class 1 sheds one tick later"},
		{100, [3]bool{true, true, true}, "class 2 sheds last"},
		// Drain: classes disarm highest-first as occupancy falls
		// through their nested low-water marks.
		{70, [3]bool{true, true, false}, "class 2 disarms first on drain"},
		{60, [3]bool{true, false, false}, "class 1 disarms next"},
		{40, [3]bool{false, false, false}, "class 0 disarms last"},
	}
	for i, step := range steps {
		p.Tick(step.queue, 100, 8, 8)
		if got := shedState(); got != step.want {
			t.Fatalf("step %d (%s): shed state %v, want %v", i, step.note, got, step.want)
		}
		if p.Admit() != (p.AdmitClass(0) == nil) {
			t.Fatalf("step %d: legacy Admit diverges from class 0", i)
		}
	}

	// Refusals carry the class's identity and budget and unwrap to
	// ErrOverload.
	p.Tick(100, 100, 8, 8)
	p.Tick(100, 100, 8, 8)
	p.Tick(100, 100, 8, 8)
	oe := p.AdmitClass(1)
	if oe == nil {
		t.Fatal("class 1 must be shed again after re-arming")
	}
	if oe.Class != 1 || oe.Budget != 3+1 || oe.RetryAfter != 10*time.Millisecond {
		t.Fatalf("refusal %+v: want class 1, budget 4, retry 10ms", oe)
	}
	if !errors.Is(oe, adapt.ErrOverload) {
		t.Fatal("OverloadError must unwrap to ErrOverload")
	}

	// Overload counters split per class. shedState probed each class
	// once per step above; recount from a known point instead.
	st := p.Snapshot()
	if len(st.OverloadsByClass) != 3 || len(st.SheddingByClass) != 3 {
		t.Fatalf("per-class stats sized %d/%d, want 3/3",
			len(st.OverloadsByClass), len(st.SheddingByClass))
	}
	before := st.OverloadsByClass
	for i := 0; i < 5; i++ {
		p.AdmitClass(0)
	}
	p.AdmitClass(1)
	after := p.Snapshot().OverloadsByClass
	if after[0]-before[0] != 5 || after[1]-before[1] != 1 || after[2] != before[2] {
		t.Fatalf("overloads by class %v -> %v: want +5/+1/+0", before, after)
	}
	if want := [3]bool{true, true, false}; !st.SheddingByClass[0] || !st.SheddingByClass[1] || st.SheddingByClass[2] != want[2] {
		t.Fatalf("snapshot shedding by class %v", st.SheddingByClass)
	}
}
