package adapt

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"indulgence/internal/metrics"
)

// Stats is a point-in-time snapshot of the control plane.
type Stats struct {
	// Batch and Linger are the current effective setting.
	Batch int
	// Linger is the current effective under-full batch wait.
	Linger time.Duration
	// Adjustments counts controller ticks that changed the setting.
	Adjustments int
	// Ticks counts controller ticks run.
	Ticks int
	// Shedding reports whether admission control is currently shedding
	// (any class; class 0 sheds first, so this is class 0's state).
	Shedding bool
	// SheddingByClass is each class's current shedding state (length
	// Config.Classes).
	SheddingByClass []bool
	// OverloadsByClass counts proposals denied by AdmitClass per class
	// (length Config.Classes).
	OverloadsByClass []int
	// Algorithm is the selector's current choice ("" without selection).
	Algorithm string
	// Transitions counts selector level changes.
	Transitions int
}

// Plane is the assembled control plane one service embeds: the
// controller, the optional selector and the admission gate behind one
// lock, with the actuated setting mirrored into atomics so the
// batcher's and Propose's hot paths never contend with a tick.
type Plane struct {
	cfg    Config
	static Choice

	batch  atomic.Int64
	linger atomic.Int64
	// shedMask is the per-class shedding state: bit c set means class c
	// is currently shed. The invariant bit c+1 ⇒ bit c (lower classes
	// shed first) is maintained by Tick.
	shedMask atomic.Uint32
	// denied counts AdmitClass refusals per class.
	denied [MaxClasses]atomic.Int64

	mu          sync.Mutex
	ctl         *Controller
	sel         *Selector // nil unless SelectAlgorithms
	hotTicks    [MaxClasses]int
	ticks       int
	transitions int
	suspicions  int // cumulative suspicion events across decided instances
	lastTick    time.Time
	// Window accumulators, reset every tick.
	wDecided  int
	wFailed   int
	wLatSum   time.Duration
	wLatCount int
	wFillSum  int
	wCuts     int

	// Registry instruments (nil without Config.Metrics; nil
	// instruments no-op).
	mBatch, mLinger, mEwma, mLevel *metrics.Gauge
	mShedding                      [MaxClasses]*metrics.Gauge
	mDenied                        [MaxClasses]*metrics.Counter
	mAdjust, mTicks, mTransitions  *metrics.Counter
}

// NewPlane assembles a control plane. static is the service's
// statically configured choice, used when algorithm selection is off
// (its Name may be ""); start seeds the controller with the service's
// static batch/linger so an adaptive service begins exactly where its
// static twin stands and diverges only on evidence — the ceilings
// stretch to cover the starting point, so a static configuration above
// the controller's defaults is a larger envelope, never a silent clamp.
// n and t size the selector's ladder.
func NewPlane(cfg Config, static Choice, start Setting, n, t int) *Plane {
	cfg = cfg.withDefaults()
	if start.Batch > cfg.MaxBatch {
		cfg.MaxBatch = start.Batch
	}
	if start.Linger > cfg.MaxLinger {
		cfg.MaxLinger = start.Linger
	}
	p := &Plane{
		cfg:      cfg,
		static:   static,
		ctl:      NewController(cfg, start),
		lastTick: cfg.Now(),
	}
	if cfg.SelectAlgorithms {
		p.sel = NewSelector(n, t, cfg.ClimbAfter)
	}
	s := p.ctl.Setting()
	p.batch.Store(int64(s.Batch))
	p.linger.Store(int64(s.Linger))

	reg := cfg.Metrics
	p.mBatch = reg.Gauge("indulgence_adapt_batch_limit",
		"effective batch-size limit set by the controller", cfg.MetricsLabels...)
	p.mLinger = reg.Gauge("indulgence_adapt_linger_ns",
		"effective under-full batch linger in nanoseconds", cfg.MetricsLabels...)
	p.mEwma = reg.Gauge("indulgence_adapt_ewma_ns",
		"controller decision-latency EWMA baseline in nanoseconds", cfg.MetricsLabels...)
	p.mLevel = reg.Gauge("indulgence_adapt_selector_level",
		"selector ladder level (0 = fastest rung)", cfg.MetricsLabels...)
	p.mAdjust = reg.Counter("indulgence_adapt_adjustments_total",
		"controller ticks that changed the batch/linger setting", cfg.MetricsLabels...)
	p.mTicks = reg.Counter("indulgence_adapt_ticks_total",
		"controller ticks run", cfg.MetricsLabels...)
	p.mTransitions = reg.Counter("indulgence_adapt_selector_transitions_total",
		"selector ladder transitions", cfg.MetricsLabels...)
	for c := 0; c < cfg.Classes; c++ {
		classLabels := append([]metrics.Label{{Key: "class", Value: strconv.Itoa(c)}}, cfg.MetricsLabels...)
		p.mShedding[c] = reg.Gauge("indulgence_adapt_shedding",
			"whether admission control is currently shedding the class (0/1)", classLabels...)
		p.mDenied[c] = reg.Counter("indulgence_sheds_total",
			"proposals refused by per-class admission control", classLabels...)
	}
	p.mBatch.Set(int64(s.Batch))
	p.mLinger.Set(int64(s.Linger))
	return p
}

// Interval returns the control-loop period the owning service should
// tick at.
func (p *Plane) Interval() time.Duration { return p.cfg.Interval }

// BatchCeiling returns the largest batch the controller may ever set —
// what the service must size its intake for.
func (p *Plane) BatchCeiling() int { return p.cfg.MaxBatch }

// BatchLimit returns the current effective batch limit.
func (p *Plane) BatchLimit() int { return int(p.batch.Load()) }

// Linger returns the current effective linger.
func (p *Plane) Linger() time.Duration { return time.Duration(p.linger.Load()) }

// Admit reports whether a new class-0 proposal may enter intake; false
// means the caller should fail the proposal with ErrOverload. Class 0
// is the first class to shed, so Admit is also "is any shedding
// active" for unclassed callers.
func (p *Plane) Admit() bool { return p.shedMask.Load()&1 == 0 }

// Classes returns the number of SLO classes admission distinguishes.
func (p *Plane) Classes() int { return p.cfg.Classes }

// AdmitClass gates one proposal of the given class (clamped to the
// configured class range). It returns nil when the proposal may enter
// intake, or the typed refusal — class, suggested back-off and retry
// budget — when the class is currently shed.
func (p *Plane) AdmitClass(class int) *OverloadError {
	if class < 0 {
		class = 0
	}
	if class >= p.cfg.Classes {
		class = p.cfg.Classes - 1
	}
	if p.shedMask.Load()&(1<<uint(class)) == 0 {
		return nil
	}
	p.denied[class].Add(1)
	p.mDenied[class].Inc()
	return &OverloadError{
		Class:      class,
		RetryAfter: time.Duration(p.cfg.AdmitTicks) * p.cfg.Interval,
		Budget:     p.cfg.RetryBudget + class,
	}
}

// admitHigh is class c's high-water occupancy: AdmitHigh for class 0,
// interpolated up to AdmitTop for the highest class.
func (p *Plane) admitHigh(c int) float64 {
	if p.cfg.Classes <= 1 {
		return p.cfg.AdmitHigh
	}
	f := float64(c) / float64(p.cfg.Classes-1)
	return p.cfg.AdmitHigh + (p.cfg.AdmitTop-p.cfg.AdmitHigh)*f
}

// admitLow is class c's low-water occupancy: AdmitLow for class 0,
// rising toward AdmitHigh for higher classes so they disarm earlier as
// the queue drains.
func (p *Plane) admitLow(c int) float64 {
	if p.cfg.Classes <= 1 {
		return p.cfg.AdmitLow
	}
	f := float64(c) / float64(p.cfg.Classes)
	return p.cfg.AdmitLow + (p.cfg.AdmitHigh-p.cfg.AdmitLow)*f
}

// Selecting reports whether per-instance algorithm selection is on.
func (p *Plane) Selecting() bool { return p.sel != nil }

// Pick returns the algorithm choice for the next instance: the
// selector's current level, or the static choice when selection is off.
func (p *Plane) Pick() Choice {
	if p.sel == nil {
		return p.static
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sel.Pick()
}

// ChoiceContext is the control plane's state at the moment one
// instance's launch was chosen — what the service journals as a
// decision-trace record. It deliberately carries no wire types: the
// service owns the mapping onto the codec.
type ChoiceContext struct {
	// Level is the selector's rung index (0 with selection off).
	Level int
	// Chosen names the algorithm picked; NotTaken names the ladder's
	// other rungs in ladder order (empty with selection off).
	Chosen   string
	NotTaken []string
	// Suspicions is the cumulative failure-detector suspicion count
	// across decided instances at choice time.
	Suspicions int
	// BatchLimit and Linger are the effective setting in force.
	BatchLimit int
	Linger     time.Duration
	// EWMA is the controller's decision-latency baseline.
	EWMA time.Duration
	// ShedMask is the per-class admission state (bit c = class c shed).
	ShedMask uint32
}

// PickContext returns the choice for the next instance together with
// the control-plane context behind it, under one lock acquisition, so
// a journaled trace can never disagree with the pick it annotates.
func (p *Plane) PickContext() (Choice, ChoiceContext) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ctx := ChoiceContext{
		BatchLimit: int(p.batch.Load()),
		Linger:     time.Duration(p.linger.Load()),
		EWMA:       p.ctl.EWMA(),
		ShedMask:   p.shedMask.Load(),
		Suspicions: p.suspicions,
	}
	choice := p.static
	if p.sel != nil {
		choice = p.sel.Pick()
		ctx.Level = p.sel.Level()
		for i, name := range p.sel.Rungs() {
			if i != ctx.Level {
				ctx.NotTaken = append(ctx.NotTaken, name)
			}
		}
	}
	ctx.Chosen = choice.Name
	return choice, ctx
}

// ObserveCut records one batch cut by its fill — the cut size as a
// percentage of the effective limit at the cut. The service computes
// the percentage once and feeds this window accumulator and its own
// Stats.BatchFill reservoir from the same number, so the controller
// and the exported stats can never disagree about a cut.
func (p *Plane) ObserveCut(fillPercent int) {
	p.mu.Lock()
	p.wCuts++
	p.wFillSum += fillPercent
	p.mu.Unlock()
}

// ObserveDecision records one decided instance: the latencies of the
// proposals it resolved and the suspicion events its nodes observed.
// The selector sees the outcome immediately (selection is per instance,
// not per tick); the controller sees the window aggregate at the next
// tick.
func (p *Plane) ObserveDecision(latencies []time.Duration, suspicions int) {
	var transition string
	p.mu.Lock()
	p.wDecided++
	p.suspicions += suspicions
	for _, l := range latencies {
		p.wLatSum += l
		p.wLatCount++
	}
	if p.sel != nil {
		if tr := p.sel.Report(Outcome{Suspicions: suspicions}); tr != "" {
			p.transitions++
			p.mTransitions.Inc()
			transition = tr
		}
		p.mLevel.Set(int64(p.sel.Level()))
	}
	p.mu.Unlock()
	if transition != "" {
		p.logf("adapt: selector %s (suspicions=%d)", transition, suspicions)
	}
}

// ObserveFailure records one instance that missed its decision.
func (p *Plane) ObserveFailure() {
	var transition string
	p.mu.Lock()
	p.wFailed++
	if p.sel != nil {
		if tr := p.sel.Report(Outcome{Failed: true}); tr != "" {
			p.transitions++
			p.mTransitions.Inc()
			transition = tr
		}
		p.mLevel.Set(int64(p.sel.Level()))
	}
	p.mu.Unlock()
	if transition != "" {
		p.logf("adapt: selector %s (missed decision)", transition)
	}
}

// Tick runs one control cycle: it folds the window accumulators and the
// sampled queue/slot occupancy into an Observation, applies the
// controller, updates admission, and publishes the new setting.
func (p *Plane) Tick(queueLen, queueCap, busy, slots int) Setting {
	var logs []string
	defer func() {
		for _, m := range logs {
			p.logf("%s", m)
		}
	}()
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.cfg.Now()
	obs := Observation{
		Decided:  p.wDecided,
		Failures: p.wFailed,
		QueueLen: queueLen, QueueCap: queueCap,
		Busy: busy, Slots: slots,
		Elapsed: now.Sub(p.lastTick),
	}
	if p.wLatCount > 0 {
		obs.Latency = p.wLatSum / time.Duration(p.wLatCount)
	}
	if p.wCuts > 0 {
		obs.FillPercent = p.wFillSum / p.wCuts
	}
	p.wDecided, p.wFailed, p.wLatSum, p.wLatCount, p.wFillSum, p.wCuts = 0, 0, 0, 0, 0, 0
	p.lastTick = now
	p.ticks++

	p.mTicks.Inc()
	setting, changed := p.ctl.Tick(obs)
	p.mEwma.Set(int64(p.ctl.EWMA()))
	if changed {
		p.batch.Store(int64(setting.Batch))
		p.linger.Store(int64(setting.Linger))
		p.mAdjust.Inc()
		p.mBatch.Set(int64(setting.Batch))
		p.mLinger.Set(int64(setting.Linger))
		if p.cfg.Logf != nil {
			logs = append(logs, fmt.Sprintf("adapt: batch=%d linger=%s (queue %d/%d, busy %d/%d, fill %d%%, lat %s, window %s)",
				setting.Batch, setting.Linger, queueLen, queueCap, busy, slots,
				obs.FillPercent, obs.Latency, obs.Elapsed))
		}
	}

	// Admission hysteresis, per class: AdmitTicks+c consecutive ticks at
	// or above class c's high-water mark arm its shedding (and only once
	// every lower class already sheds); one tick at or below its
	// low-water mark disarms it (and only once every higher class has
	// disarmed). The staggered tick counts and nested occupancy bands
	// make the shed order strictly lowest-class-first on the way up and
	// highest-class-first on the way down.
	occ := 0.0
	if queueCap > 0 {
		occ = float64(queueLen) / float64(queueCap)
	}
	mask := p.shedMask.Load()
	for c := 0; c < p.cfg.Classes; c++ {
		bit := uint32(1) << uint(c)
		switch {
		case occ >= p.admitHigh(c):
			p.hotTicks[c]++
			lowerShed := c == 0 || mask&(bit>>1) != 0
			if p.hotTicks[c] >= p.cfg.AdmitTicks+c && lowerShed && mask&bit == 0 {
				mask |= bit
				if p.cfg.Logf != nil {
					if p.cfg.Classes == 1 {
						logs = append(logs, fmt.Sprintf("adapt: admission shedding ON (queue %d/%d)", queueLen, queueCap))
					} else {
						logs = append(logs, fmt.Sprintf("adapt: admission shedding ON class %d (queue %d/%d)", c, queueLen, queueCap))
					}
				}
			}
		case occ <= p.admitLow(c):
			p.hotTicks[c] = 0
			higherShed := mask &^ (bit<<1 - 1)
			if mask&bit != 0 && higherShed == 0 {
				mask &^= bit
				if p.cfg.Logf != nil {
					if p.cfg.Classes == 1 {
						logs = append(logs, fmt.Sprintf("adapt: admission shedding off (queue %d/%d)", queueLen, queueCap))
					} else {
						logs = append(logs, fmt.Sprintf("adapt: admission shedding off class %d (queue %d/%d)", c, queueLen, queueCap))
					}
				}
			}
		default:
			p.hotTicks[c] = 0
		}
	}
	p.shedMask.Store(mask)
	for c := 0; c < p.cfg.Classes; c++ {
		shed := int64(0)
		if mask&(1<<uint(c)) != 0 {
			shed = 1
		}
		p.mShedding[c].Set(shed)
	}
	return setting
}

// Snapshot returns current control-plane counters.
func (p *Plane) Snapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	mask := p.shedMask.Load()
	st := Stats{
		Batch:       p.ctl.Setting().Batch,
		Linger:      p.ctl.Setting().Linger,
		Adjustments: p.ctl.Adjustments(),
		Ticks:       p.ticks,
		Shedding:    mask&1 != 0,
		Transitions: p.transitions,
	}
	st.SheddingByClass = make([]bool, p.cfg.Classes)
	st.OverloadsByClass = make([]int, p.cfg.Classes)
	for c := 0; c < p.cfg.Classes; c++ {
		st.SheddingByClass[c] = mask&(1<<uint(c)) != 0
		st.OverloadsByClass[c] = int(p.denied[c].Load())
	}
	if p.sel != nil {
		st.Algorithm = p.sel.Current().Name
	}
	return st
}

// logf emits one decision-log line. It is called OUTSIDE the plane
// mutex — a user-supplied Logf (typically a synchronous stderr write)
// must not serialize the hot paths that report observations.
func (p *Plane) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}
