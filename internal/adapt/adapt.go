// Package adapt is the service layer's control plane: it closes the
// feedback loop between observed execution and service configuration,
// so the paper's price gap — A_f+2 decides in f+2 rounds where the
// indulgent A_t+2 pays t+2, and batching amortizes whichever price is
// paid — is exploited at run time instead of being fixed by hand-picked
// constants.
//
// Three cooperating mechanisms, assembled into a Plane that the service
// layer embeds:
//
//   - Controller: an AIMD-style tuner of the effective batch size and
//     linger. Intake backlog additively grows the batch (bigger batches
//     drain a burst in fewer t+2-round instances); a decision-latency
//     regression against the controller's EWMA baseline multiplicatively
//     shrinks both knobs; an idle service decays its linger toward the
//     floor so a lone proposal never waits out a window tuned for a
//     burst that ended.
//   - Selector: a per-instance algorithm policy. While recent instances
//     decide cleanly it picks the fast ladder level (A_f+2 when t < n/3
//     permits it); observed failure-detector suspicions demote one level
//     (to the ◇S discipline), and a missed decision drops straight to
//     the indulgent safe level A_t+2. Consecutive clean decisions climb
//     back up. Concurrent instances under one service may therefore run
//     different algorithms — each instance is internally homogeneous,
//     which is what consensus requires.
//   - Admission: when the intake queue saturates for consecutive control
//     ticks, new proposals are shed with ErrOverload until the queue
//     drains below the low-water mark, so overload surfaces as a typed
//     error instead of unbounded queueing delay.
//
// # Determinism contract
//
// The controller and the selector are pure state machines: their only
// inputs are explicit Observation values (and, for logging, the clock
// injected through Config.Now). Feeding a scripted observation sequence
// under a fixed virtual clock reproduces the exact same trajectory of
// settings, level transitions and log lines on every run — that is what
// the unit tests in this package assert, and what makes controller
// behaviour reviewable offline. All wall-clock sampling lives in the
// service layer's tick loop, outside the controlled state machines.
package adapt

import (
	"errors"
	"fmt"
	"time"

	"indulgence/internal/core"
	"indulgence/internal/metrics"
	"indulgence/internal/model"
)

// ErrOverload reports a proposal shed by admission control: the intake
// queue stayed saturated across consecutive controller ticks. Callers
// should back off and retry; the service remains healthy.
var ErrOverload = errors.New("adapt: service overloaded, proposal shed")

// MaxClasses bounds the SLO classes admission control distinguishes
// (classes 0..7; higher classes are more important and shed later).
const MaxClasses = 8

// OverloadError is the typed admission refusal classed traffic
// receives: which class was shed, how long the client should wait
// before retrying, and how many retries its class is budgeted.
// errors.Is(err, ErrOverload) matches it, so legacy callers keep
// working unchanged.
type OverloadError struct {
	// Class is the SLO class of the shed proposal.
	Class int
	// RetryAfter is the suggested back-off before the next attempt —
	// the minimum time admission needs to disarm once load drops.
	RetryAfter time.Duration
	// Budget is the per-class retry budget: how many back-off retries
	// the class is entitled to before the client should give up or
	// degrade. Higher classes get larger budgets.
	Budget int
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("adapt: class %d shed, retry after %s (budget %d)", e.Class, e.RetryAfter, e.Budget)
}

// Unwrap makes errors.Is(e, ErrOverload) true.
func (e *OverloadError) Unwrap() error { return ErrOverload }

// Config describes the control plane attached to a service.
type Config struct {
	// MinBatch and MaxBatch bound the effective batch size the
	// controller may set (defaults 1 and 64). MaxBatch is also the
	// intake-sizing ceiling the service must provision for.
	MinBatch, MaxBatch int
	// MinLinger and MaxLinger bound the effective linger (defaults 0
	// and 8ms). A floor of zero lets an idle service cut lone proposals
	// immediately.
	MinLinger, MaxLinger time.Duration
	// Interval is the control-loop period (default 5ms): how often the
	// service snapshots observations and runs one controller tick.
	Interval time.Duration
	// Step is the additive batch increase applied per congested tick
	// (default 4; the multiplicative decrease is fixed at 1/2).
	Step int
	// LingerStep is the additive linger increase applied when under-full
	// batches are cut while every instance slot is busy (default 250µs).
	LingerStep time.Duration
	// SelectAlgorithms enables the per-instance algorithm selector.
	// Only the single-process service may enable it: a multi-process
	// member cannot unilaterally change the protocol of a slot it
	// shares with its peers.
	SelectAlgorithms bool
	// ClimbAfter is how many consecutive clean decisions promote the
	// selector one ladder level toward the fast algorithm (default 8).
	ClimbAfter int
	// AdmitHigh and AdmitLow are the intake-occupancy hysteresis bounds
	// of admission control (defaults 0.9 and 0.5): shedding starts after
	// AdmitTicks consecutive ticks at or above AdmitHigh and stops at or
	// below AdmitLow.
	AdmitHigh, AdmitLow float64
	// AdmitTicks is how many consecutive saturated ticks arm shedding
	// (default 2).
	AdmitTicks int
	// Classes is how many SLO classes admission distinguishes (default
	// 1, max MaxClasses). With more than one class, shedding arms per
	// class from the lowest class up — class c sheds only at higher
	// occupancy, after more consecutive hot ticks, and only while every
	// class below it is already shedding — and disarms from the highest
	// class down as the queue drains, so under saturation classes shed
	// strictly lowest-first.
	Classes int
	// AdmitTop is the occupancy at which even the highest class sheds
	// (default 0.98). Per-class high-water marks interpolate from
	// AdmitHigh (class 0) to AdmitTop (class Classes-1); per-class
	// low-water marks interpolate from AdmitLow (class 0) toward
	// AdmitHigh, so higher classes disarm earlier on drain.
	AdmitTop float64
	// RetryBudget is the base per-class retry budget surfaced in
	// OverloadError (default 3); class c is budgeted RetryBudget + c.
	RetryBudget int
	// Metrics, when non-nil, registers the control plane's instruments
	// on this registry: batch/linger/EWMA/selector-level gauges,
	// adjustment/tick/transition counters, and per-class shedding
	// gauges and shed counters (registered eagerly for every
	// configured class, so a scrape always shows the full class set).
	Metrics *metrics.Registry
	// MetricsLabels are attached to every series Metrics registers —
	// the sharded runtime passes its group label here.
	MetricsLabels []metrics.Label
	// Logf, when non-nil, receives one line per controller adjustment,
	// selector transition and admission flip — the decision log surfaced
	// by the CLI's -verbose mode.
	Logf func(format string, args ...any)
	// Now is the clock used for log timestamps and observation windows
	// (default time.Now). Tests inject a fixed virtual clock to make
	// trajectories — including logged window durations — byte-exact.
	Now func() time.Time
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) withDefaults() Config {
	if cfg.MinBatch == 0 {
		cfg.MinBatch = 1
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxLinger == 0 {
		cfg.MaxLinger = 8 * time.Millisecond
	}
	if cfg.Interval == 0 {
		cfg.Interval = 5 * time.Millisecond
	}
	if cfg.Step == 0 {
		cfg.Step = 4
	}
	if cfg.LingerStep == 0 {
		cfg.LingerStep = 250 * time.Microsecond
	}
	if cfg.ClimbAfter == 0 {
		cfg.ClimbAfter = 8
	}
	if cfg.AdmitHigh == 0 {
		cfg.AdmitHigh = 0.9
	}
	if cfg.AdmitLow == 0 {
		cfg.AdmitLow = 0.5
	}
	if cfg.AdmitTicks == 0 {
		cfg.AdmitTicks = 2
	}
	if cfg.Classes < 1 {
		cfg.Classes = 1
	}
	if cfg.Classes > MaxClasses {
		cfg.Classes = MaxClasses
	}
	if cfg.AdmitTop == 0 {
		cfg.AdmitTop = 0.98
	}
	if cfg.AdmitTop < cfg.AdmitHigh {
		cfg.AdmitTop = cfg.AdmitHigh
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 3
	}
	if cfg.Now == nil {
		//indulgence:wallclock production default for Config.Now; tests inject a virtual source
		cfg.Now = time.Now
	}
	return cfg
}

// Choice is one selectable algorithm configuration: the factory every
// node of an instance is built from, the receive discipline it needs,
// and the name recorded in the journal's start claim for that instance.
type Choice struct {
	// Name is the algorithm name (core.AfPlus2Name et al.).
	Name string
	// Factory builds each process's algorithm for the instance.
	Factory model.Factory
	// WaitPolicy is the receive discipline the algorithm requires
	// (A_◇S is only live under WaitQuorum; the others use the ◇P-style
	// WaitUnsuspected).
	WaitPolicy core.WaitPolicy
}

// ProbeName returns the algorithm name a factory reports for an (n, t)
// system, or "" if the factory refuses the configuration. It exists so
// services can tag journal start claims with the statically configured
// algorithm without knowing how it was constructed.
func ProbeName(factory model.Factory, n, t int) string {
	if factory == nil {
		return ""
	}
	alg, err := factory(model.ProcessContext{Self: 1, N: n, T: t}, 0)
	if err != nil {
		return ""
	}
	return alg.Name()
}
