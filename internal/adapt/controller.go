package adapt

import "time"

// Observation is one control-window snapshot of the service, assembled
// by the Plane from the window's accumulated instance outcomes plus the
// queue/slot occupancy sampled at the tick.
type Observation struct {
	// Decided is the number of instances decided in the window.
	Decided int
	// Latency is the mean end-to-end proposal latency (enqueue to
	// resolution) over the window's decided proposals; 0 when Decided
	// is 0.
	Latency time.Duration
	// FillPercent is the mean fill of batches cut in the window as a
	// percentage of the effective batch limit at the cut (0 when no
	// batch was cut).
	FillPercent int
	// Failures is the number of instances that missed their decision in
	// the window.
	Failures int
	// QueueLen and QueueCap describe the intake backlog at the tick.
	QueueLen, QueueCap int
	// Busy and Slots describe instance-slot occupancy at the tick.
	Busy, Slots int
	// Elapsed is the window's wall-clock duration (under the injected
	// clock), carried for the decision log.
	Elapsed time.Duration
}

// pressured reports a material intake backlog: a quarter or more of the
// queue is waiting for an instance.
func (o Observation) pressured() bool {
	return o.QueueCap > 0 && o.QueueLen*4 >= o.QueueCap
}

// working reports meaningful concurrent load: a quarter or more of the
// instance slots busy. It is the discriminator between "lone proposals
// on a relaxed service" (trim the linger, nobody should wait) and
// "under-full cuts while instances stream" (grow the linger — the cuts
// are outpacing coalescing).
func (o Observation) working() bool {
	return o.Slots > 0 && o.Busy*4 >= o.Slots
}

// idle reports a window in which nothing happened: nothing queued,
// nothing running, nothing cut, nothing decided. In-flight instances
// count as happening — a slow instance spanning several windows must
// not read as idleness and decay the linger the working rule just grew.
func (o Observation) idle() bool {
	return o.QueueLen == 0 && o.Busy == 0 && o.Decided == 0 && o.FillPercent == 0
}

// Setting is the controller's actuation: the effective batch limit and
// linger the service's batcher applies from this tick on.
type Setting struct {
	// Batch is the effective batch-size limit.
	Batch int
	// Linger is the effective under-full batch wait.
	Linger time.Duration
}

// Controller is the AIMD batch/linger tuner. It is a pure state
// machine: Tick's output depends only on the constructor configuration,
// the prior ticks and the observation — no clock, no randomness — so
// scripted observation sequences reproduce exact trajectories. Not safe
// for concurrent use; the Plane serializes access.
type Controller struct {
	cfg         Config
	setting     Setting
	ewma        time.Duration // EWMA of observed proposal latency
	lowFill     int           // consecutive low-fill windows (decay hysteresis)
	adjustments int
}

// NewController returns a controller starting from the given setting,
// clamped into cfg's bounds. cfg must already have defaults applied
// when used outside the Plane (Plane applies them).
func NewController(cfg Config, start Setting) *Controller {
	cfg = cfg.withDefaults()
	start.Batch = clampInt(start.Batch, cfg.MinBatch, cfg.MaxBatch)
	start.Linger = clampDur(start.Linger, cfg.MinLinger, cfg.MaxLinger)
	return &Controller{cfg: cfg, setting: start}
}

// Setting returns the current effective setting.
func (c *Controller) Setting() Setting { return c.setting }

// Adjustments returns how many ticks changed the setting.
func (c *Controller) Adjustments() int { return c.adjustments }

// EWMA returns the controller's decision-latency baseline (0 until
// the first decided window) — the reference the linger law compares
// fresh latencies against, journaled in decision-trace records.
func (c *Controller) EWMA() time.Duration { return c.ewma }

// Tick folds one observation into the controller state and returns the
// (possibly unchanged) setting, plus whether this tick changed it.
//
// The law. The two knobs have asymmetric costs — a too-small batch
// costs queueing delay under load, while a too-large one costs nothing
// at light load (under-full cuts are linger-triggered, so nobody waits
// for a batch to fill) and only widens failure fate-sharing; the linger
// is the knob that directly inflates latency. The batch therefore
// follows demand and the linger follows latency:
//
//   - Batch, additive increase: full batches cut in the window (mean
//     fill ≥ 90%: cuts were count-triggered, so demand saturates the
//     current limit), or an intake backlog (≥ 1/4 of the queue — rare,
//     since the batcher drains intake eagerly, and decisive), grow the
//     batch by Step. A deeper batch drains a burst in fewer instances,
//     each still paying its fixed round price, so queueing delay falls.
//   - Batch, multiplicative decrease: an instance failure halves the
//     batch (and the linger) — fate-sharing is the one cost deep
//     batches do carry, so failures shrink exposure fast.
//   - Batch decay: persistently low fill (< 25% for three consecutive
//     windows — one burst-tail partial batch must not undo the growth
//     the burst earned) on a relaxed service walks the batch down by
//     1/4 per further window, re-centering the fill signal so the next
//     burst is measured against honest headroom.
//   - Linger: a mean latency more than 50% over the EWMA baseline
//     halves it (whatever else is slow, waiting longer to cut cannot
//     help); an idle window decays it by 1/4 toward the floor (a lone
//     proposal must not wait out a burst-tuned window); under-full cuts
//     while instances stream (a quarter of the slots busy or more)
//     double it plus LingerStep — the cuts are outpacing coalescing,
//     filling batches is free when rounds dominate, and the fill < 90%
//     gate makes the growth self-limiting (at 90% the cuts are
//     count-triggered and the batch AI takes over); under-full cuts on
//     a relaxed service decay it by 1/4.
func (c *Controller) Tick(obs Observation) (Setting, bool) {
	prev := c.setting
	switch {
	case obs.Failures > 0:
		// Failures preempt growth: a pressured window with failing
		// instances must shrink fate-sharing exposure, not widen it.
		c.lowFill = 0
		c.setting.Batch = clampInt(c.setting.Batch/2, c.cfg.MinBatch, c.cfg.MaxBatch)
		c.setting.Linger = clampDur(c.setting.Linger/2, c.cfg.MinLinger, c.cfg.MaxLinger)
	case obs.pressured() || obs.FillPercent >= 90:
		c.lowFill = 0
		c.setting.Batch = clampInt(c.setting.Batch+c.cfg.Step, c.cfg.MinBatch, c.cfg.MaxBatch)
	case obs.FillPercent > 0 && obs.FillPercent < 25 && !obs.working():
		c.lowFill++
		if c.lowFill >= 3 {
			// The decrement floors at 1 so the walk-down cannot stall
			// above MinBatch on integer division (2 - 2/4 == 2).
			c.setting.Batch = clampInt(c.setting.Batch-max(c.setting.Batch/4, 1), c.cfg.MinBatch, c.cfg.MaxBatch)
		}
	case obs.FillPercent >= 25:
		c.lowFill = 0
	}
	switch {
	case obs.Failures > 0:
		// Linger already halved above.
	case obs.Decided > 0 && c.ewma > 0 && obs.Latency > c.ewma+c.ewma/2:
		c.setting.Linger = clampDur(c.setting.Linger/2, c.cfg.MinLinger, c.cfg.MaxLinger)
	case obs.idle():
		c.setting.Linger = clampDur(c.setting.Linger*3/4, c.cfg.MinLinger, c.cfg.MaxLinger)
	case obs.FillPercent > 0 && obs.FillPercent < 90 && obs.working():
		c.setting.Linger = clampDur(c.setting.Linger*2+c.cfg.LingerStep, c.cfg.MinLinger, c.cfg.MaxLinger)
	case obs.FillPercent > 0 && obs.FillPercent < 50 && !obs.pressured():
		c.setting.Linger = clampDur(c.setting.Linger*3/4, c.cfg.MinLinger, c.cfg.MaxLinger)
	}
	if obs.Decided > 0 {
		if c.ewma == 0 {
			c.ewma = obs.Latency
		} else {
			c.ewma = (3*c.ewma + obs.Latency) / 4
		}
	}
	changed := c.setting != prev
	if changed {
		c.adjustments++
	}
	return c.setting, changed
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampDur(v, lo, hi time.Duration) time.Duration {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
