package adapt

import (
	"fmt"

	"indulgence/internal/core"
)

// Outcome is what the service reports about one finished instance — the
// selector's entire view of the world.
type Outcome struct {
	// Failed reports a missed decision: the instance timed out or
	// errored without deciding.
	Failed bool
	// Suspicions is the total number of failure-detector suspicion
	// events observed across the instance's nodes (internal/fd timeout
	// detectors; 0 in a synchronous trusted run).
	Suspicions int
}

// Selector is the per-instance algorithm policy: a three-level ladder
// ordered fast → guarded → safe.
//
//	level 0 (fast):    A_f+2 when t < n/3 permits it (the paper's fast
//	                   eventually deciding algorithm, decides in f+2
//	                   rounds under synchrony), else A_t+2 with the
//	                   Fig. 4 failure-free fast path.
//	level 1 (guarded): A_◇S under the wait-quorum (◇S) discipline —
//	                   still fast under synchrony, but never waits on a
//	                   suspected process.
//	level 2 (safe):    A_t+2 under wait-unsuspected — the indulgent
//	                   worst-case-optimal baseline.
//
// Transitions, exactly (the scripted ladder tests pin these):
//
//   - a failed instance drops straight to safe;
//   - an instance that decided but observed suspicions drops one level;
//   - a clean decision (no suspicions) extends the clean streak, and
//     ClimbAfter consecutive clean decisions climb one level toward
//     fast, resetting the streak.
//
// Like the Controller, the Selector is a pure state machine over
// reported outcomes. Not safe for concurrent use; the Plane serializes
// access.
type Selector struct {
	ladder     []Choice
	level      int
	streak     int
	climbAfter int
	picks      map[string]int
}

// NewSelector builds the ladder for an (n, t) system. The fast level is
// A_f+2 only when its t < n/3 resilience requirement holds; otherwise
// the failure-free-fast A_t+2 variant takes that rung, so the ladder is
// well-formed for every t < n/2 system the service accepts.
func NewSelector(n, t, climbAfter int) *Selector {
	if climbAfter <= 0 {
		climbAfter = 8
	}
	fast := Choice{
		Name:       core.AfPlus2Name,
		Factory:    core.NewAfPlus2(),
		WaitPolicy: core.WaitUnsuspected,
	}
	if 3*t >= n {
		fast = Choice{
			Name:       core.AtPlus2Name + "+ff",
			Factory:    core.New(core.Options{FailureFreeFast: true}),
			WaitPolicy: core.WaitUnsuspected,
		}
	}
	return &Selector{
		ladder: []Choice{
			fast,
			{Name: core.DiamondSName, Factory: core.NewDiamondS(), WaitPolicy: core.WaitQuorum},
			{Name: core.AtPlus2Name, Factory: core.New(core.Options{}), WaitPolicy: core.WaitUnsuspected},
		},
		climbAfter: climbAfter,
		picks:      make(map[string]int),
	}
}

// Pick returns the current level's choice and accounts the pick.
func (s *Selector) Pick() Choice {
	c := s.ladder[s.level]
	s.picks[c.Name]++
	return c
}

// Current returns the current choice without accounting a pick.
func (s *Selector) Current() Choice { return s.ladder[s.level] }

// Level returns the current ladder level (0 = fast).
func (s *Selector) Level() int { return s.level }

// Rungs returns the ladder's algorithm names in ladder order (fast
// first) — the choice set a decision-trace record enumerates.
func (s *Selector) Rungs() []string {
	names := make([]string, len(s.ladder))
	for i, c := range s.ladder {
		names[i] = c.Name
	}
	return names
}

// Picks returns a copy of the per-algorithm pick counts.
func (s *Selector) Picks() map[string]int {
	out := make(map[string]int, len(s.picks))
	for k, v := range s.picks {
		out[k] = v
	}
	return out
}

// Report folds one instance outcome into the ladder state and returns
// a human-readable transition description ("" when the level held).
func (s *Selector) Report(o Outcome) string {
	from := s.level
	switch {
	case o.Failed:
		s.level = len(s.ladder) - 1
		s.streak = 0
	case o.Suspicions > 0:
		if s.level < len(s.ladder)-1 {
			s.level++
		}
		s.streak = 0
	default:
		s.streak++
		if s.streak >= s.climbAfter && s.level > 0 {
			s.level--
			s.streak = 0
		}
	}
	if s.level == from {
		return ""
	}
	return fmt.Sprintf("%s -> %s", s.ladder[from].Name, s.ladder[s.level].Name)
}
