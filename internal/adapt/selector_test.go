package adapt_test

import (
	"testing"

	"indulgence/internal/adapt"
	"indulgence/internal/core"
)

// TestSelectorFallbackLadder scripts a suspicion trace and pins the
// exact A_f+2 → A_diamondS → A_t+2 transitions — the selector's whole
// contract, step by step.
func TestSelectorFallbackLadder(t *testing.T) {
	s := adapt.NewSelector(4, 1, 3) // t < n/3: the fast rung is A_f+2
	if got := s.Current().Name; got != core.AfPlus2Name {
		t.Fatalf("fresh selector at %q, want %q", got, core.AfPlus2Name)
	}

	steps := []struct {
		name string
		o    adapt.Outcome
		want string
	}{
		// Clean decisions hold the fast level.
		{"clean-1", adapt.Outcome{}, core.AfPlus2Name},
		{"clean-2", adapt.Outcome{}, core.AfPlus2Name},
		// One suspicion demotes exactly one level: A_f+2 → A_◇S.
		{"suspect-1", adapt.Outcome{Suspicions: 2}, core.DiamondSName},
		// Another demotes to the safe floor: A_◇S → A_t+2.
		{"suspect-2", adapt.Outcome{Suspicions: 1}, core.AtPlus2Name},
		// Further suspicion holds the floor.
		{"suspect-3", adapt.Outcome{Suspicions: 1}, core.AtPlus2Name},
		// Three clean decisions (ClimbAfter=3) climb one level.
		{"clean-3", adapt.Outcome{}, core.AtPlus2Name},
		{"clean-4", adapt.Outcome{}, core.AtPlus2Name},
		{"clean-5", adapt.Outcome{}, core.DiamondSName},
		// Three more reach the fast level again.
		{"clean-6", adapt.Outcome{}, core.DiamondSName},
		{"clean-7", adapt.Outcome{}, core.DiamondSName},
		{"clean-8", adapt.Outcome{}, core.AfPlus2Name},
		// A missed decision drops straight past A_◇S to the safe floor.
		{"failed", adapt.Outcome{Failed: true}, core.AtPlus2Name},
		// A suspicion right after resets the clean streak at the floor.
		{"suspect-4", adapt.Outcome{Suspicions: 3}, core.AtPlus2Name},
		{"clean-9", adapt.Outcome{}, core.AtPlus2Name},
		{"clean-10", adapt.Outcome{}, core.AtPlus2Name},
		{"clean-11", adapt.Outcome{}, core.DiamondSName},
	}
	for i, st := range steps {
		s.Report(st.o)
		if got := s.Current().Name; got != st.want {
			t.Fatalf("step %d (%s): at %q, want %q", i, st.name, got, st.want)
		}
	}
}

// TestSelectorWaitPolicies checks that every rung carries the receive
// discipline its algorithm is live under.
func TestSelectorWaitPolicies(t *testing.T) {
	s := adapt.NewSelector(4, 1, 1)
	if c := s.Current(); c.WaitPolicy != core.WaitUnsuspected {
		t.Fatalf("A_f+2 rung has policy %v", c.WaitPolicy)
	}
	s.Report(adapt.Outcome{Suspicions: 1})
	if c := s.Current(); c.Name != core.DiamondSName || c.WaitPolicy != core.WaitQuorum {
		t.Fatalf("◇S rung = %q/%v, want %q under wait-quorum", c.Name, c.WaitPolicy, core.DiamondSName)
	}
	s.Report(adapt.Outcome{Suspicions: 1})
	if c := s.Current(); c.Name != core.AtPlus2Name || c.WaitPolicy != core.WaitUnsuspected {
		t.Fatalf("safe rung = %q/%v", c.Name, c.WaitPolicy)
	}
}

// TestSelectorResilienceFallback: with t ≥ n/3 the fast rung cannot be
// A_f+2; the failure-free-fast A_t+2 variant takes it, and every rung's
// factory must actually construct for the system it was built for.
func TestSelectorResilienceFallback(t *testing.T) {
	s := adapt.NewSelector(5, 2, 8) // 3t ≥ n: A_f+2 is out of envelope
	if got := s.Current().Name; got != core.AtPlus2Name+"+ff" {
		t.Fatalf("fast rung for t ≥ n/3 is %q, want %q", got, core.AtPlus2Name+"+ff")
	}
	for _, nt := range []struct{ n, t int }{{4, 1}, {5, 2}, {7, 2}} {
		s := adapt.NewSelector(nt.n, nt.t, 1)
		for level := 0; level < 3; level++ {
			if name := adapt.ProbeName(s.Current().Factory, nt.n, nt.t); name == "" {
				t.Fatalf("n=%d t=%d level %d: factory refuses its own system", nt.n, nt.t, level)
			}
			s.Report(adapt.Outcome{Suspicions: 1})
		}
	}
}

// TestSelectorPickCounts: Pick accounts per-algorithm counts, the basis
// of the ≥90%-fast acceptance measurement.
func TestSelectorPickCounts(t *testing.T) {
	s := adapt.NewSelector(4, 1, 8)
	for i := 0; i < 9; i++ {
		s.Pick()
		s.Report(adapt.Outcome{})
	}
	s.Report(adapt.Outcome{Suspicions: 1})
	s.Pick()
	picks := s.Picks()
	if picks[core.AfPlus2Name] != 9 || picks[core.DiamondSName] != 1 {
		t.Fatalf("picks = %v", picks)
	}
}
