package check

import (
	"errors"
	"strings"
	"testing"

	"indulgence/internal/model"
	"indulgence/internal/sim"
)

func result(decisions []sim.Decision, crashes []model.Round) *sim.Result {
	return &sim.Result{Decisions: decisions, CrashRounds: crashes}
}

func TestConsensusAllGood(t *testing.T) {
	res := result(
		[]sim.Decision{{Value: 1, Round: 3}, {Value: 1, Round: 3}, {Value: 1, Round: 4}},
		[]model.Round{0, 0, 0},
	)
	rep := Consensus(res, []model.Value{1, 2, 3})
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.GlobalDecisionRound != 4 {
		t.Fatalf("gdr = %d", rep.GlobalDecisionRound)
	}
	if rep.Err() != nil {
		t.Fatalf("Err() = %v", rep.Err())
	}
}

func TestConsensusValidity(t *testing.T) {
	res := result(
		[]sim.Decision{{Value: 9, Round: 1}, {Value: 9, Round: 1}},
		[]model.Round{0, 0},
	)
	rep := Consensus(res, []model.Value{1, 2})
	if rep.Validity {
		t.Fatal("unproposed decision accepted")
	}
	if err := rep.Err(); !errors.Is(err, ErrViolation) || !strings.Contains(err.Error(), "validity") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestConsensusUniformAgreement(t *testing.T) {
	// The first decider crashed afterwards — uniform agreement still
	// counts its decision.
	res := result(
		[]sim.Decision{{Value: 1, Round: 2}, {Value: 2, Round: 3}},
		[]model.Round{5, 0},
	)
	rep := Consensus(res, []model.Value{1, 2})
	if rep.Agreement {
		t.Fatal("disagreement accepted")
	}
}

func TestConsensusTermination(t *testing.T) {
	res := result(
		[]sim.Decision{{Value: 1, Round: 2}, {}},
		[]model.Round{0, 0},
	)
	rep := Consensus(res, []model.Value{1, 2})
	if rep.Termination {
		t.Fatal("correct process never decided, termination should fail")
	}
	// A crashed process may stay undecided.
	res2 := result(
		[]sim.Decision{{Value: 1, Round: 2}, {}},
		[]model.Round{0, 1},
	)
	if rep := Consensus(res2, []model.Value{1, 2}); !rep.OK() {
		t.Fatalf("crashed non-decider flagged: %v", rep.Violations)
	}
}

func TestDecisionRounds(t *testing.T) {
	res := result(
		[]sim.Decision{{Value: 1, Round: 2}, {}, {Value: 1, Round: 5}},
		[]model.Round{0, 1, 0},
	)
	rounds := DecisionRounds(res)
	if rounds[0] != 2 || rounds[1] != 0 || rounds[2] != 5 {
		t.Fatalf("rounds = %v", rounds)
	}
	earliest, ok := EarliestDecisionRound(res)
	if !ok || earliest != 2 {
		t.Fatalf("earliest = %d, %v", earliest, ok)
	}
	none := result([]sim.Decision{{}}, []model.Round{0})
	if _, ok := EarliestDecisionRound(none); ok {
		t.Fatal("no decisions should report !ok")
	}
}

func TestInstance(t *testing.T) {
	props := []model.Value{1, 2, 3}
	ok := Instance(
		[]model.OptValue{model.Some(2), model.Some(2), model.Some(2)}, props, 0)
	if !ok.OK() || ok.Err() != nil {
		t.Fatalf("clean instance flagged: %+v", ok)
	}

	crashedOnly := Instance(
		[]model.OptValue{model.Some(1), model.Bottom(), model.Some(1)}, props,
		model.NewPIDSet(2))
	if !crashedOnly.OK() {
		t.Fatalf("crashed non-decider flagged: %+v", crashedOnly)
	}

	noTerm := Instance(
		[]model.OptValue{model.Some(1), model.Bottom(), model.Some(1)}, props, 0)
	if noTerm.Termination || noTerm.Validity != true || noTerm.Agreement != true {
		t.Fatalf("missing decider not flagged: %+v", noTerm)
	}

	split := Instance(
		[]model.OptValue{model.Some(1), model.Some(3)}, props, 0)
	if split.Agreement {
		t.Fatalf("split decision not flagged: %+v", split)
	}
	if !errors.Is(split.Err(), ErrViolation) {
		t.Fatalf("Err() = %v", split.Err())
	}

	invalid := Instance([]model.OptValue{model.Some(9)}, props, 0)
	if invalid.Validity {
		t.Fatalf("unproposed value not flagged: %+v", invalid)
	}
}
