package check

import (
	"errors"
	"strings"
	"testing"

	"indulgence/internal/model"
	"indulgence/internal/sim"
	"indulgence/internal/wire"
)

func result(decisions []sim.Decision, crashes []model.Round) *sim.Result {
	return &sim.Result{Decisions: decisions, CrashRounds: crashes}
}

func TestConsensusAllGood(t *testing.T) {
	res := result(
		[]sim.Decision{{Value: 1, Round: 3}, {Value: 1, Round: 3}, {Value: 1, Round: 4}},
		[]model.Round{0, 0, 0},
	)
	rep := Consensus(res, []model.Value{1, 2, 3})
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.GlobalDecisionRound != 4 {
		t.Fatalf("gdr = %d", rep.GlobalDecisionRound)
	}
	if rep.Err() != nil {
		t.Fatalf("Err() = %v", rep.Err())
	}
}

func TestConsensusValidity(t *testing.T) {
	res := result(
		[]sim.Decision{{Value: 9, Round: 1}, {Value: 9, Round: 1}},
		[]model.Round{0, 0},
	)
	rep := Consensus(res, []model.Value{1, 2})
	if rep.Validity {
		t.Fatal("unproposed decision accepted")
	}
	if err := rep.Err(); !errors.Is(err, ErrViolation) || !strings.Contains(err.Error(), "validity") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestConsensusUniformAgreement(t *testing.T) {
	// The first decider crashed afterwards — uniform agreement still
	// counts its decision.
	res := result(
		[]sim.Decision{{Value: 1, Round: 2}, {Value: 2, Round: 3}},
		[]model.Round{5, 0},
	)
	rep := Consensus(res, []model.Value{1, 2})
	if rep.Agreement {
		t.Fatal("disagreement accepted")
	}
}

func TestConsensusTermination(t *testing.T) {
	res := result(
		[]sim.Decision{{Value: 1, Round: 2}, {}},
		[]model.Round{0, 0},
	)
	rep := Consensus(res, []model.Value{1, 2})
	if rep.Termination {
		t.Fatal("correct process never decided, termination should fail")
	}
	// A crashed process may stay undecided.
	res2 := result(
		[]sim.Decision{{Value: 1, Round: 2}, {}},
		[]model.Round{0, 1},
	)
	if rep := Consensus(res2, []model.Value{1, 2}); !rep.OK() {
		t.Fatalf("crashed non-decider flagged: %v", rep.Violations)
	}
}

func TestDecisionRounds(t *testing.T) {
	res := result(
		[]sim.Decision{{Value: 1, Round: 2}, {}, {Value: 1, Round: 5}},
		[]model.Round{0, 1, 0},
	)
	rounds := DecisionRounds(res)
	if rounds[0] != 2 || rounds[1] != 0 || rounds[2] != 5 {
		t.Fatalf("rounds = %v", rounds)
	}
	earliest, ok := EarliestDecisionRound(res)
	if !ok || earliest != 2 {
		t.Fatalf("earliest = %d, %v", earliest, ok)
	}
	none := result([]sim.Decision{{}}, []model.Round{0})
	if _, ok := EarliestDecisionRound(none); ok {
		t.Fatal("no decisions should report !ok")
	}
}

func TestInstance(t *testing.T) {
	props := []model.Value{1, 2, 3}
	ok := Instance(
		[]model.OptValue{model.Some(2), model.Some(2), model.Some(2)}, props, 0)
	if !ok.OK() || ok.Err() != nil {
		t.Fatalf("clean instance flagged: %+v", ok)
	}

	crashedOnly := Instance(
		[]model.OptValue{model.Some(1), model.Bottom(), model.Some(1)}, props,
		model.NewPIDSet(2))
	if !crashedOnly.OK() {
		t.Fatalf("crashed non-decider flagged: %+v", crashedOnly)
	}

	noTerm := Instance(
		[]model.OptValue{model.Some(1), model.Bottom(), model.Some(1)}, props, 0)
	if noTerm.Termination || noTerm.Validity != true || noTerm.Agreement != true {
		t.Fatalf("missing decider not flagged: %+v", noTerm)
	}

	split := Instance(
		[]model.OptValue{model.Some(1), model.Some(3)}, props, 0)
	if split.Agreement {
		t.Fatalf("split decision not flagged: %+v", split)
	}
	if !errors.Is(split.Err(), ErrViolation) {
		t.Fatalf("Err() = %v", split.Err())
	}

	invalid := Instance([]model.OptValue{model.Some(9)}, props, 0)
	if invalid.Validity {
		t.Fatalf("unproposed value not flagged: %+v", invalid)
	}
}

func TestReplayClean(t *testing.T) {
	records := []wire.DecisionRecord{
		{Instance: 0, Value: 5, Round: 3, Batch: 2},
		{Instance: 2, Value: 9, Round: 4, Batch: 1},
		{Instance: 1, Value: 7, Round: 3, Batch: 3},
		// A benign duplicate (same value): re-journaling a decision is
		// wasteful but not a violation.
		{Instance: 2, Value: 9, Round: 4, Batch: 1},
	}
	live := map[uint64]model.Value{0: 5, 2: 9}
	starts := []wire.StartRecord{
		// Tagged, untagged and duplicate-compatible claims are all clean.
		{Instance: 0, Alg: "A_f+2"},
		{Instance: 1},
		{Instance: 2, Alg: "A_t+2"},
		{Instance: 2, Alg: "A_t+2"},
		{Instance: 2},
	}
	rep := Replay(records, starts, live)
	if !rep.OK() {
		t.Fatalf("clean replay flagged: %+v", rep)
	}
	if rep.GlobalDecisionRound != 4 {
		t.Fatalf("global decision round = %d", rep.GlobalDecisionRound)
	}
	if empty := Replay(nil, nil, nil); !empty.OK() || empty.GlobalDecisionRound != 0 {
		t.Fatalf("empty replay = %+v", empty)
	}
}

func TestReplayJournalConflict(t *testing.T) {
	rep := Replay([]wire.DecisionRecord{
		{Instance: 3, Value: 1, Round: 3, Batch: 1},
		{Instance: 3, Value: 2, Round: 3, Batch: 1},
	}, nil, nil)
	if rep.Agreement {
		t.Fatalf("conflicting journal records not flagged: %+v", rep)
	}
	if !errors.Is(rep.Err(), ErrViolation) || !strings.Contains(rep.Err().Error(), "instance 3") {
		t.Fatalf("Err() = %v", rep.Err())
	}
}

func TestReplayLiveConflict(t *testing.T) {
	records := []wire.DecisionRecord{{Instance: 8, Value: 4, Round: 3, Batch: 2}}
	rep := Replay(records, nil, map[uint64]model.Value{8: 6})
	if rep.Agreement {
		t.Fatalf("journal/live split not flagged: %+v", rep)
	}
	// A live decision the journal never saw (its append was lost with
	// the crash window open... which Append's blocking prevents) is not
	// checkable here and must not be flagged.
	rep = Replay(records, nil, map[uint64]model.Value{9: 1})
	if !rep.OK() {
		t.Fatalf("unjournaled live instance flagged: %+v", rep)
	}
}

// TestReplayAlgorithmConflict pins the cross-lifetime exactness of the
// algorithm tag: one instance claimed under two different algorithms is
// an agreement violation (the frontier should have made a second launch
// impossible), while untagged claims stay compatible with everything.
func TestReplayAlgorithmConflict(t *testing.T) {
	rep := Replay(nil, []wire.StartRecord{
		{Instance: 4, Alg: "A_f+2"},
		{Instance: 4, Alg: "A_t+2"},
	}, nil)
	if rep.Agreement {
		t.Fatalf("conflicting algorithm claims not flagged: %+v", rep)
	}
	if !errors.Is(rep.Err(), ErrViolation) || !strings.Contains(rep.Err().Error(), "A_f+2") {
		t.Fatalf("Err() = %v", rep.Err())
	}
	clean := Replay(nil, []wire.StartRecord{
		{Instance: 4, Alg: "A_f+2"},
		{Instance: 4},
		{Instance: 5, Alg: "A_t+2"},
	}, nil)
	if !clean.OK() {
		t.Fatalf("compatible claims flagged: %+v", clean)
	}
}

// TestReplayGroupConflict pins the sharded-runtime invariant: an
// instance ID claimed or decided under two different consensus groups
// is an agreement violation (the strided allocation makes the group ID
// spaces disjoint, so a cross-group instance means two groups ran the
// same ID), while a group's own claims and decisions stay compatible
// with each other.
func TestReplayGroupConflict(t *testing.T) {
	rep := Replay([]wire.DecisionRecord{
		{Instance: 5, Value: 1, Round: 3, Batch: 1, Group: 1},
		{Instance: 5, Value: 1, Round: 3, Batch: 1, Group: 3},
	}, nil, nil)
	if rep.Agreement {
		t.Fatalf("cross-group decisions not flagged: %+v", rep)
	}
	if !errors.Is(rep.Err(), ErrViolation) || !strings.Contains(rep.Err().Error(), "group 1") {
		t.Fatalf("Err() = %v", rep.Err())
	}

	// A claim and its decision under one group agree; a claim under
	// another group conflicts. Pre-group records (group 0) conflict with
	// grouped ones too — group 0 is a real group, the compatibility one.
	rep = Replay(
		[]wire.DecisionRecord{{Instance: 6, Value: 2, Round: 3, Batch: 1, Group: 2}},
		[]wire.StartRecord{{Instance: 6, Alg: "A_t+2", Group: 1}}, nil)
	if rep.Agreement {
		t.Fatalf("claim/decision group split not flagged: %+v", rep)
	}
	rep = Replay(
		[]wire.DecisionRecord{{Instance: 7, Value: 2, Round: 3, Batch: 1, Group: 2}},
		[]wire.StartRecord{{Instance: 7}}, nil)
	if rep.Agreement {
		t.Fatalf("legacy claim vs grouped decision not flagged: %+v", rep)
	}

	clean := Replay(
		[]wire.DecisionRecord{
			{Instance: 1, Value: 4, Round: 3, Batch: 1, Group: 1},
			{Instance: 2, Value: 5, Round: 3, Batch: 1, Group: 2},
			{Instance: 1, Value: 4, Round: 3, Batch: 1, Group: 1},
		},
		[]wire.StartRecord{
			{Instance: 1, Alg: "A_t+2", Group: 1},
			{Instance: 2, Alg: "A_t+2", Group: 2},
		},
		map[uint64]model.Value{1: 4, 2: 5})
	if !clean.OK() {
		t.Fatalf("disjoint group spaces flagged: %+v", clean)
	}
}

func TestReplayImpossibleRecord(t *testing.T) {
	rep := Replay([]wire.DecisionRecord{
		{Instance: 0, Value: 1, Round: 0, Batch: 1},
		{Instance: 1, Value: 1, Round: 3, Batch: 0},
	}, nil, nil)
	if rep.Validity {
		t.Fatalf("impossible records not flagged: %+v", rep)
	}
	if len(rep.Violations) != 2 {
		t.Fatalf("violations = %v", rep.Violations)
	}
}

// TestReplayClassConflict pins the SLO-class audit: an instance decided
// exactly once cannot legally be on record under two different classes,
// and a class outside wire's encodable range cannot have been written
// by a correct service. Same-class duplicates and classless (class 0)
// records stay clean.
func TestReplayClassConflict(t *testing.T) {
	rep := Replay([]wire.DecisionRecord{
		{Instance: 9, Value: 3, Round: 3, Batch: 1, Class: 2},
		{Instance: 9, Value: 3, Round: 3, Batch: 1, Class: 1},
	}, nil, nil)
	if rep.Agreement {
		t.Fatalf("cross-class duplicate not flagged: %+v", rep)
	}
	if !errors.Is(rep.Err(), ErrViolation) || !strings.Contains(rep.Err().Error(), "class 2") {
		t.Fatalf("Err() = %v", rep.Err())
	}

	rep = Replay([]wire.DecisionRecord{
		{Instance: 10, Value: 1, Round: 3, Batch: 1, Class: wire.MaxClassValue + 1},
	}, nil, nil)
	if rep.Validity {
		t.Fatalf("unencodable class not flagged: %+v", rep)
	}

	clean := Replay([]wire.DecisionRecord{
		{Instance: 11, Value: 6, Round: 3, Batch: 2, Class: 3},
		{Instance: 11, Value: 6, Round: 3, Batch: 2, Class: 3},
		{Instance: 12, Value: 7, Round: 3, Batch: 1},
	}, nil, map[uint64]model.Value{11: 6, 12: 7})
	if !clean.OK() {
		t.Fatalf("same-class duplicate flagged: %+v", clean)
	}
}
