// Package check verifies the consensus properties of Sect. 1.3 of the
// paper: validity (a decided value was proposed), uniform agreement (no
// two processes decide differently, whether or not they later crash), and
// termination (every correct process decides). Consensus checks recorded
// simulator runs; Instance checks the live decisions of one runtime
// cluster or service shard — the service audits every resolved instance
// with it; Replay cross-checks a decision journal against live
// observations, extending uniform agreement across process lifetimes.
// The package also extracts the round-complexity measurements the
// experiments report.
package check

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"indulgence/internal/model"
	"indulgence/internal/sim"
	"indulgence/internal/wire"
)

// ErrViolation is wrapped by Report.Err when a property is violated.
var ErrViolation = errors.New("check: consensus property violated")

// Report is the outcome of checking one run.
type Report struct {
	// Validity holds iff every decided value was proposed by some
	// process.
	Validity bool
	// Agreement holds iff no two processes decided different values
	// (uniform agreement: crashed deciders count).
	Agreement bool
	// Termination holds iff every process that never crashed decided by
	// the end of the run. Meaningful only for runs executed to
	// quiescence.
	Termination bool
	// GlobalDecisionRound is the paper's global decision round: the
	// largest decision round among deciders (0 if nobody decided).
	GlobalDecisionRound model.Round
	// Violations lists human-readable descriptions of each violation.
	Violations []string
}

// OK reports whether all three properties hold.
func (r Report) OK() bool { return r.Validity && r.Agreement && r.Termination }

// Err returns nil if all properties hold, and an error wrapping
// ErrViolation describing every violation otherwise.
func (r Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrViolation, strings.Join(r.Violations, "; "))
}

// Consensus checks validity, uniform agreement and termination of one run
// against the proposals it started from.
func Consensus(res *sim.Result, proposals []model.Value) Report {
	rep := Report{Validity: true, Agreement: true, Termination: true}

	proposed := make(map[model.Value]struct{}, len(proposals))
	for _, v := range proposals {
		proposed[v] = struct{}{}
	}

	var (
		firstValue   model.Value
		firstDecider model.ProcessID
		haveDecision bool
	)
	for i, d := range res.Decisions {
		p := model.ProcessID(i + 1)
		if !d.Decided() {
			if res.CrashRounds[i] == 0 {
				rep.Termination = false
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("termination: correct process p%d never decided", p))
			}
			continue
		}
		if d.Round > rep.GlobalDecisionRound {
			rep.GlobalDecisionRound = d.Round
		}
		if _, ok := proposed[d.Value]; !ok {
			rep.Validity = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("validity: p%d decided unproposed value %d", p, d.Value))
		}
		if !haveDecision {
			firstValue, firstDecider, haveDecision = d.Value, p, true
		} else if d.Value != firstValue {
			rep.Agreement = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("agreement: p%d decided %d but p%d decided %d", firstDecider, firstValue, p, d.Value))
		}
	}
	return rep
}

// Instance checks the consensus properties over the live decisions of one
// consensus instance, as collected by the runtime or the service layer:
// decisions[i] is the decision of process i+1 (⊥ if it never decided).
// Validity and uniform agreement are checked exactly as for simulated
// runs; termination requires every process outside crashed to have
// decided. GlobalDecisionRound is not populated — live rounds live in the
// runtime's NodeResults, not here.
func Instance(decisions []model.OptValue, proposals []model.Value, crashed model.PIDSet) Report {
	rep := Report{Validity: true, Agreement: true, Termination: true}

	proposed := make(map[model.Value]struct{}, len(proposals))
	for _, v := range proposals {
		proposed[v] = struct{}{}
	}

	var (
		firstValue   model.Value
		firstDecider model.ProcessID
		haveDecision bool
	)
	for i, d := range decisions {
		p := model.ProcessID(i + 1)
		v, ok := d.Get()
		if !ok {
			if !crashed.Has(p) {
				rep.Termination = false
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("termination: correct process p%d never decided", p))
			}
			continue
		}
		if _, ok := proposed[v]; !ok {
			rep.Validity = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("validity: p%d decided unproposed value %d", p, v))
		}
		if !haveDecision {
			firstValue, firstDecider, haveDecision = v, p, true
		} else if v != firstValue {
			rep.Agreement = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("agreement: p%d decided %d but p%d decided %d", firstDecider, firstValue, p, v))
		}
	}
	return rep
}

// Replay cross-checks a decision journal against the live decisions
// observed across one or more process lifetimes of the service: records
// is the journal's decisions in append order (as produced by
// journal.Replay), starts its instance-start claims, and live maps
// instance ID to the value clients saw that instance resolve to. It
// extends uniform agreement across crashes — an instance must never be
// on record with two values, whether the second record comes from the
// same lifetime (a duplicate append), a later one (a re-run the
// frontier should have prevented), or a live client. Start claims
// extend the audit to algorithm choices: an instance claimed under two
// different non-empty algorithm tags was launched twice with different
// protocols — either a frontier violation across restarts or a
// misconfigured cluster whose members disagree on the algorithm —
// and is flagged as an agreement violation (untagged claims are
// compatible with everything; they predate the tag or chose not to
// record one). Group tags extend it to the sharded runtime: every
// instance ID belongs to exactly one consensus group (the strided
// allocation makes the spaces disjoint), so an instance claimed or
// decided under two different groups — across the claims and records
// of every journal fed to one Replay call, such as all group journals
// of one member — means two groups ran the same instance ID and is
// flagged as an agreement violation (pre-group records carry group 0,
// the compatibility group, and conflict only with records of other
// groups). Class tags are audited the same way: an instance is decided
// exactly once, so two records of one instance under different SLO
// classes mean two conflicting decision events were journaled — an
// agreement violation — and a class outside wire's encodable range
// [0, MaxClassValue] is a validity violation (classless records carry
// class 0 and conflict only with explicitly classed duplicates).
// Structurally impossible records (non-positive round or
// batch) are flagged as validity violations: no decision can legally
// produce them, so their presence means the log was not written by a
// correct service. Termination is not assessable from a journal (a
// record exists only once an instance terminates) and is reported as
// holding. GlobalDecisionRound is the largest journaled decision round.
func Replay(records []wire.DecisionRecord, starts []wire.StartRecord, live map[uint64]model.Value) Report {
	rep := Report{Validity: true, Agreement: true, Termination: true}

	groups := make(map[uint64]uint64, len(starts)+len(records))
	checkGroup := func(instance, group uint64) {
		if prev, ok := groups[instance]; !ok {
			groups[instance] = group
		} else if prev != group {
			rep.Agreement = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("agreement: instance %d recorded under group %d and again under group %d",
					instance, prev, group))
		}
	}

	algs := make(map[uint64]string, len(starts))
	for _, s := range starts {
		checkGroup(s.Instance, s.Group)
		if s.Alg == "" {
			continue
		}
		if prev, ok := algs[s.Instance]; ok && prev != s.Alg {
			rep.Agreement = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("agreement: instance %d claimed for algorithm %s and again for %s",
					s.Instance, prev, s.Alg))
			continue
		}
		algs[s.Instance] = s.Alg
	}

	seen := make(map[uint64]wire.DecisionRecord, len(records))
	for _, r := range records {
		checkGroup(r.Instance, r.Group)
		if r.Round < 1 || r.Batch < 1 {
			rep.Validity = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("journal: instance %d has an impossible record (round %d, batch %d)",
					r.Instance, r.Round, r.Batch))
		}
		if r.Class < 0 || r.Class > wire.MaxClassValue {
			rep.Validity = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("journal: instance %d has an unencodable class %d", r.Instance, r.Class))
		}
		if prev, ok := seen[r.Instance]; ok {
			if prev.Value != r.Value {
				rep.Agreement = false
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("agreement: instance %d journaled as %d and again as %d",
						r.Instance, prev.Value, r.Value))
			}
			if prev.Class != r.Class {
				rep.Agreement = false
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("agreement: instance %d journaled at class %d and again at class %d",
						r.Instance, prev.Class, r.Class))
			}
			continue
		}
		seen[r.Instance] = r
		if r.Round > rep.GlobalDecisionRound {
			rep.GlobalDecisionRound = r.Round
		}
	}

	instances := make([]uint64, 0, len(live))
	for inst := range live {
		instances = append(instances, inst)
	}
	sort.Slice(instances, func(i, j int) bool { return instances[i] < instances[j] })
	for _, inst := range instances {
		if rec, ok := seen[inst]; ok && rec.Value != live[inst] {
			rep.Agreement = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("agreement: instance %d journaled %d but resolved %d live",
					inst, rec.Value, live[inst]))
		}
	}
	return rep
}

// DecisionRounds returns each process's decision round (0 = undecided).
func DecisionRounds(res *sim.Result) []model.Round {
	out := make([]model.Round, len(res.Decisions))
	for i, d := range res.Decisions {
		out[i] = d.Round
	}
	return out
}

// EarliestDecisionRound returns the smallest decision round among deciders
// (the local decision time of the fastest process). ok is false if nobody
// decided.
func EarliestDecisionRound(res *sim.Result) (round model.Round, ok bool) {
	for _, d := range res.Decisions {
		if !d.Decided() {
			continue
		}
		if !ok || d.Round < round {
			round, ok = d.Round, true
		}
	}
	return round, ok
}
