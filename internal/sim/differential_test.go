package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"indulgence/internal/baseline"
	"indulgence/internal/core"
	"indulgence/internal/model"
	"indulgence/internal/sched"
	"indulgence/internal/sim"
)

// cloningAlg wraps an algorithm and declares (via model.PayloadMutator)
// that it mutates received payloads, which forces the simulator onto the
// conservative clone-per-recipient delivery path. It never actually
// mutates anything, so its runs must be identical to the shared-payload
// fast path — that equivalence is exactly what the differential test pins
// down.
type cloningAlg struct{ model.Algorithm }

func (cloningAlg) MutatesReceivedPayloads() bool { return true }

func forceCloning(f model.Factory) model.Factory {
	return func(ctx model.ProcessContext, proposal model.Value) (model.Algorithm, error) {
		a, err := f(ctx, proposal)
		if err != nil {
			return nil, err
		}
		return cloningAlg{a}, nil
	}
}

// diffCorpus samples random SCS and ES schedules for one system size.
func diffCorpus(rng *rand.Rand, n, t, perKind int) []*sched.Schedule {
	var out []*sched.Schedule
	for i := 0; i < perKind; i++ {
		out = append(out, sched.RandomSynchronous(n, t, sched.RandomOpts{
			Rng:             rng,
			MaxCrashRound:   model.Round(t + 2),
			DelayCrashSends: true,
		}))
	}
	for _, gsr := range []model.Round{2, 4, 6} {
		for i := 0; i < perKind; i++ {
			out = append(out, sched.RandomES(n, t, gsr, sched.RandomOpts{
				Rng:           rng,
				MaxCrashRound: gsr + 3,
			}))
		}
	}
	return out
}

func summarize(r *sim.Result) string {
	return fmt.Sprintf("decisions=%v rounds=%d allDecided=%v sent=%d delivered=%d",
		r.Decisions, r.Rounds, r.AllAliveDecided, r.MessagesSent, r.MessagesDelivered)
}

// TestDifferentialLeanVsTracedVsCloned runs a corpus of random SCS/ES
// schedules through three simulator configurations — the lean pooled path
// (shared payloads, reused scratch), the traced path (per-recipient
// clones, fresh state) and a forced-clone lean path — and asserts that
// decisions, executed rounds and message counts are identical. It guards
// the shared-immutable payload contract: if payload sharing ever leaked
// state between recipients or runs, the paths would diverge.
func TestDifferentialLeanVsTracedVsCloned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n5 := diffCorpus(rng, 5, 2, 12)
	n5 = append(n5, diffCorpus(rng, 7, 2, 6)...)
	n5 = append(n5, sched.FailureFree(5, 2), sched.KillCoordinators(5, 2, 2))
	// A_f+2 requires t < n/3, so it only sees the n=7, t=2 schedules.
	n7 := diffCorpus(rng, 7, 2, 12)

	cases := []struct {
		name    string
		factory model.Factory
		corpus  []*sched.Schedule
	}{
		{"atplus2", core.New(core.Options{}), n5},
		{"atplus2-ff", core.New(core.Options{FailureFreeFast: true}), n5},
		{"afplus2", core.NewAfPlus2(), n7},
		{"hurfinraynal", baseline.NewHurfinRaynal(), n5},
		{"ct", baseline.NewCT(), n5},
		{"floodset", baseline.NewFloodSet(), n5},
	}
	for _, tc := range cases {
		factory, corpus := tc.factory, tc.corpus
		t.Run(tc.name, func(t *testing.T) {
			lean := sim.NewSimulator() // reused across the whole corpus
			for i, s := range corpus {
				base := sim.Config{
					Synchrony: model.ES,
					Schedule:  s,
					Proposals: []model.Value{3, 1, 4, 1, 5, 9, 2}[:s.N()],
					Factory:   factory,
				}

				leanCfg := base
				leanCfg.SkipTrace = true
				leanRes, err := lean.Run(leanCfg)
				if err != nil {
					t.Fatalf("schedule %d lean: %v", i, err)
				}
				if leanRes.Run != nil {
					t.Fatalf("schedule %d: lean run recorded a trace", i)
				}

				tracedRes, err := sim.Run(base)
				if err != nil {
					t.Fatalf("schedule %d traced: %v", i, err)
				}
				if tracedRes.Run == nil {
					t.Fatalf("schedule %d: traced run missing its trace", i)
				}

				clonedCfg := leanCfg
				clonedCfg.Factory = forceCloning(factory)
				clonedRes, err := sim.Run(clonedCfg)
				if err != nil {
					t.Fatalf("schedule %d cloned: %v", i, err)
				}

				want := summarize(tracedRes)
				if got := summarize(leanRes); got != want {
					t.Errorf("schedule %d (%v):\nlean   %s\ntraced %s", i, s, got, want)
				}
				if got := summarize(clonedRes); got != want {
					t.Errorf("schedule %d (%v):\ncloned %s\ntraced %s", i, s, got, want)
				}
			}
		})
	}
}

// TestSimulatorReuseMatchesFreshRuns re-runs the same configuration many
// times on one Simulator and checks every repetition reproduces the first
// — scratch-state reuse must not leak state across runs.
func TestSimulatorReuseMatchesFreshRuns(t *testing.T) {
	s := sched.New(5, 2)
	s.CrashWithReceivers(2, 1, model.NewPIDSet(1, 3))
	s.Crash(4, 3)
	cfg := sim.Config{
		Synchrony: model.ES,
		Schedule:  s,
		Proposals: []model.Value{3, 1, 4, 1, 5},
		Factory:   core.New(core.Options{}),
		SkipTrace: true,
	}
	fresh, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(fresh)
	sm := sim.NewSimulator()
	for i := 0; i < 50; i++ {
		res, err := sm.Run(cfg)
		if err != nil {
			t.Fatalf("rep %d: %v", i, err)
		}
		if got := summarize(res); got != want {
			t.Fatalf("rep %d diverged:\ngot  %s\nwant %s", i, got, want)
		}
	}
	sm.Reset()
	res, err := sm.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := summarize(res); got != want {
		t.Fatalf("after Reset:\ngot  %s\nwant %s", got, want)
	}
}

// TestRunBatchMatchesSerial checks RunBatch against one-by-one execution
// and its determinism across worker counts.
func TestRunBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	corpus := diffCorpus(rng, 5, 2, 8)
	cfgs := make([]sim.Config, len(corpus))
	for i, s := range corpus {
		cfgs[i] = sim.Config{
			Synchrony: model.ES,
			Schedule:  s,
			Proposals: []model.Value{3, 1, 4, 1, 5},
			Factory:   core.New(core.Options{}),
			SkipTrace: true,
		}
	}
	want := make([]string, len(cfgs))
	for i := range cfgs {
		res, err := sim.Run(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = summarize(res)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		results, err := sim.RunBatch(workers, cfgs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, res := range results {
			if got := summarize(res); got != want[i] {
				t.Errorf("workers=%d run %d:\ngot  %s\nwant %s", workers, i, got, want[i])
			}
		}
	}
}

// TestRunBatchError checks that a failing run surfaces the lowest-index
// error while the remaining results are still populated.
func TestRunBatchError(t *testing.T) {
	good := sim.Config{
		Synchrony: model.ES,
		Schedule:  sched.New(3, 1),
		Proposals: []model.Value{1, 2, 3},
		Factory:   core.New(core.Options{}),
	}
	bad := good
	bad.Schedule = nil
	results, err := sim.RunBatch(2, []sim.Config{good, bad, good})
	if err == nil {
		t.Fatal("expected an error from the nil-schedule run")
	}
	if results[0] == nil || results[2] == nil {
		t.Fatal("successful runs should still be populated")
	}
	if results[1] != nil {
		t.Fatal("failed run should have a nil result")
	}
}
