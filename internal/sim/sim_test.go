package sim

import (
	"errors"
	"testing"

	"indulgence/internal/model"
	"indulgence/internal/payload"
	"indulgence/internal/sched"
)

// probe is a test algorithm that records everything it observes and
// decides its own proposal at a configurable round.
type probe struct {
	ctx      model.ProcessContext
	proposal model.Value
	decideAt model.Round
	received map[model.Round][]model.Message
	started  []model.Round
	decided  model.OptValue
	flip     bool // if set, change the decision value afterwards (contract violation)
}

func newProbeFactory(decideAt model.Round, store *map[model.ProcessID]*probe) model.Factory {
	return func(ctx model.ProcessContext, proposal model.Value) (model.Algorithm, error) {
		p := &probe{
			ctx:      ctx,
			proposal: proposal,
			decideAt: decideAt,
			received: make(map[model.Round][]model.Message),
		}
		if store != nil {
			(*store)[ctx.Self] = p
		}
		return p, nil
	}
}

func (p *probe) Name() string { return "probe" }

func (p *probe) StartRound(k model.Round) model.Payload {
	p.started = append(p.started, k)
	return payload.Estimate{Est: p.proposal, TS: int(k)}
}

func (p *probe) EndRound(k model.Round, delivered []model.Message) {
	msgs := make([]model.Message, len(delivered))
	copy(msgs, delivered)
	p.received[k] = msgs
	if k >= p.decideAt {
		v := p.proposal
		if p.flip && k > p.decideAt {
			v++
		}
		p.decided = model.Some(v)
	}
}

func (p *probe) Decision() (model.Value, bool) { return p.decided.Get() }

func proposals(n int) []model.Value {
	out := make([]model.Value, n)
	for i := range out {
		out[i] = model.Value(10 + i)
	}
	return out
}

func TestRunConfigErrors(t *testing.T) {
	s := sched.New(3, 1)
	good := Config{
		Synchrony: model.ES,
		Schedule:  s,
		Proposals: proposals(3),
		Factory:   newProbeFactory(1, nil),
	}
	cases := []struct {
		name   string
		mutate func(Config) Config
	}{
		{"nil schedule", func(c Config) Config { c.Schedule = nil; return c }},
		{"bad proposals", func(c Config) Config { c.Proposals = proposals(2); return c }},
		{"nil factory", func(c Config) Config { c.Factory = nil; return c }},
		{"bad synchrony", func(c Config) Config { c.Synchrony = 0; return c }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.mutate(good)); !errors.Is(err, ErrConfig) {
				t.Fatalf("err = %v, want ErrConfig", err)
			}
		})
	}
	// Schedule validation propagates.
	bad := sched.New(4, 2) // t >= n/2 without unsafe flag
	cfg := good
	cfg.Schedule = bad
	cfg.Proposals = proposals(4)
	if _, err := Run(cfg); !errors.Is(err, sched.ErrMajorityCorrect) {
		t.Fatalf("err = %v, want resilience validation error", err)
	}
}

func TestSelfDeliveryAndSorting(t *testing.T) {
	store := make(map[model.ProcessID]*probe)
	s := sched.New(3, 1)
	res, err := Run(Config{
		Synchrony: model.ES,
		Schedule:  s,
		Proposals: proposals(3),
		Factory:   newProbeFactory(1, &store),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAliveDecided || res.Rounds != 1 {
		t.Fatalf("rounds=%d decided=%v", res.Rounds, res.AllAliveDecided)
	}
	for pid, p := range store {
		msgs := p.received[1]
		if len(msgs) != 3 {
			t.Fatalf("p%d received %d messages", pid, len(msgs))
		}
		for i, m := range msgs {
			if m.From != model.ProcessID(i+1) {
				t.Fatalf("p%d messages not sorted by sender: %v", pid, msgs)
			}
		}
	}
}

func TestCrashSemantics(t *testing.T) {
	store := make(map[model.ProcessID]*probe)
	s := sched.New(3, 1)
	// p1 crashes in round 2, its last message reaching only p2.
	s.CrashWithReceivers(1, 2, model.NewPIDSet(2))
	res, err := Run(Config{
		Synchrony: model.ES,
		Schedule:  s,
		Proposals: proposals(3),
		Factory:   newProbeFactory(3, &store),
	})
	if err != nil {
		t.Fatal(err)
	}
	// p1 sends in rounds 1 and 2 but never completes round 2.
	p1 := store[1]
	if len(p1.started) != 2 {
		t.Fatalf("p1 started rounds %v", p1.started)
	}
	if _, ok := p1.received[2]; ok {
		t.Fatal("crashed process completed its crash round")
	}
	if res.Decisions[0].Decided() {
		t.Fatal("crashed process decided")
	}
	if res.CrashRounds[0] != 2 {
		t.Fatalf("crash round = %d", res.CrashRounds[0])
	}
	// p2 hears p1 in round 2; p3 does not.
	heard := func(pid model.ProcessID, k model.Round, from model.ProcessID) bool {
		for _, m := range store[pid].received[k] {
			if m.From == from && m.Round == k {
				return true
			}
		}
		return false
	}
	if !heard(2, 2, 1) {
		t.Fatal("p2 should hear p1's round-2 message")
	}
	if heard(3, 2, 1) {
		t.Fatal("p3 should not hear p1's round-2 message")
	}
	// Nobody hears p1 in round 3.
	if heard(2, 3, 1) || heard(3, 3, 1) {
		t.Fatal("crashed process kept sending")
	}
}

func TestDelayedDelivery(t *testing.T) {
	store := make(map[model.ProcessID]*probe)
	s := sched.New(3, 1, sched.WithGSR(2))
	s.Delay(1, 1, 2, 3) // p1's round-1 message to p2 arrives in round 3
	res, err := Run(Config{
		Synchrony: model.ES,
		Schedule:  s,
		Proposals: proposals(3),
		Factory:   newProbeFactory(4, &store),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	p2 := store[2]
	find := func(k model.Round, from model.ProcessID, sentRound model.Round) bool {
		for _, m := range p2.received[k] {
			if m.From == from && m.Round == sentRound {
				return true
			}
		}
		return false
	}
	if find(1, 1, 1) {
		t.Fatal("delayed message delivered in its send round")
	}
	if !find(3, 1, 1) {
		t.Fatal("delayed message not delivered at its scheduled round")
	}
	if !find(3, 1, 3) {
		t.Fatal("round-3 message missing")
	}
}

func TestDelayedToCrashedReceiverIsDropped(t *testing.T) {
	s := sched.New(3, 1, sched.WithGSR(2))
	s.Delay(1, 1, 2, 4)
	s.Crash(2, 2)
	if _, err := Run(Config{
		Synchrony: model.ES,
		Schedule:  s,
		Proposals: proposals(3),
		Factory:   newProbeFactory(1, nil),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestUnstableDecisionDetected(t *testing.T) {
	factory := func(ctx model.ProcessContext, proposal model.Value) (model.Algorithm, error) {
		return &probe{
			ctx:      ctx,
			proposal: proposal,
			decideAt: 1,
			received: make(map[model.Round][]model.Message),
			flip:     true,
		}, nil
	}
	_, err := Run(Config{
		Synchrony:      model.ES,
		Schedule:       sched.New(3, 1),
		Proposals:      proposals(3),
		Factory:        factory,
		RunToMaxRounds: true,
		MaxRounds:      3,
	})
	if !errors.Is(err, ErrUnstableDecision) {
		t.Fatalf("err = %v, want ErrUnstableDecision", err)
	}
}

func TestRunToMaxRounds(t *testing.T) {
	res, err := Run(Config{
		Synchrony:      model.ES,
		Schedule:       sched.New(3, 1),
		Proposals:      proposals(3),
		Factory:        newProbeFactory(1, nil),
		RunToMaxRounds: true,
		MaxRounds:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", res.Rounds)
	}
	if gdr, ok := res.GlobalDecisionRound(); !ok || gdr != 1 {
		t.Fatalf("global decision round = %d", gdr)
	}
}

func TestSkipTrace(t *testing.T) {
	res, err := Run(Config{
		Synchrony: model.ES,
		Schedule:  sched.New(3, 1),
		Proposals: proposals(3),
		Factory:   newProbeFactory(1, nil),
		SkipTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Run != nil {
		t.Fatal("trace recorded despite SkipTrace")
	}
	if !res.Decisions[0].Decided() {
		t.Fatal("decisions must be reported without a trace")
	}
}

func TestNeverDecidingHitsCap(t *testing.T) {
	res, err := Run(Config{
		Synchrony: model.ES,
		Schedule:  sched.New(3, 1),
		Proposals: proposals(3),
		Factory:   newProbeFactory(1000, nil),
		MaxRounds: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllAliveDecided {
		t.Fatal("should not have decided")
	}
	if res.Rounds != 7 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestTraceRecording(t *testing.T) {
	s := sched.New(3, 1)
	s.CrashSilent(3, 2)
	res, err := Run(Config{
		Synchrony: model.ES,
		Schedule:  s,
		Proposals: proposals(3),
		Factory:   newProbeFactory(2, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	run := res.Run
	if run == nil {
		t.Fatal("no trace")
	}
	if run.N != 3 || run.T != 1 || run.GSR != 1 {
		t.Fatalf("trace header: %+v", run)
	}
	p3 := run.Proc(3)
	if p3.CrashRound != 2 || p3.Correct() {
		t.Fatalf("p3 crash round %d", p3.CrashRound)
	}
	if len(p3.Steps) != 2 || p3.Steps[1].Completes {
		t.Fatalf("p3 steps: %+v", p3.Steps)
	}
	p1 := run.Proc(1)
	if p1.DecidedRound != 2 || p1.Decided.IsBottom() {
		t.Fatalf("p1 decision: %+v", p1)
	}
	if p1.Steps[0].Sent == nil {
		t.Fatal("sent payload not recorded")
	}
}

// TestMessageAccounting checks the message-complexity counters: in a
// failure-free n-process run of r rounds, n² messages are sent and
// delivered per round; losses and crashed receivers reduce deliveries
// only.
func TestMessageAccounting(t *testing.T) {
	res, err := Run(Config{
		Synchrony:      model.ES,
		Schedule:       sched.New(3, 1),
		Proposals:      proposals(3),
		Factory:        newProbeFactory(2, nil),
		RunToMaxRounds: true,
		MaxRounds:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesSent != 4*9 || res.MessagesDelivered != 4*9 {
		t.Fatalf("failure-free: sent=%d delivered=%d, want 36/36", res.MessagesSent, res.MessagesDelivered)
	}

	// p3 crashes silently in round 2: its round-2 messages to others are
	// lost (2 of them) and it stops sending/receiving afterwards.
	s := sched.New(3, 1)
	s.CrashSilent(3, 2)
	res, err = Run(Config{
		Synchrony:      model.ES,
		Schedule:       s,
		Proposals:      proposals(3),
		Factory:        newProbeFactory(2, nil),
		RunToMaxRounds: true,
		MaxRounds:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sent: round 1: 9; round 2: 9 (p3 still sends); round 3: 6.
	if res.MessagesSent != 24 {
		t.Fatalf("sent=%d, want 24", res.MessagesSent)
	}
	// Delivered: round 1: 9; round 2: p3's 2 outbound lost, p3 receives
	// nothing (crashed): 9 − 2 − 3 = 4... p1,p2 receive 2 each (p3's
	// lost) = 4; round 3: 4 among survivors.
	if res.MessagesDelivered != 9+4+4 {
		t.Fatalf("delivered=%d, want 17", res.MessagesDelivered)
	}
}

// TestFootnote5CrashDelay checks the ES subtlety of footnote 5: even in a
// synchronous run (GSR=1), the messages a process sends in its crash round
// may be delayed arbitrarily rather than lost.
func TestFootnote5CrashDelay(t *testing.T) {
	store := make(map[model.ProcessID]*probe)
	s := sched.New(3, 1) // GSR = 1: synchronous
	s.Crash(1, 1)
	s.Delay(1, 1, 2, 3) // p1's last message to p2 arrives at round 3
	s.Drop(1, 1, 3)     // and is lost towards p3
	if err := s.Validate(model.ES); err != nil {
		t.Fatalf("footnote-5 schedule must be ES-legal: %v", err)
	}
	if err := s.Validate(model.SCS); err == nil {
		t.Fatal("the delay must be illegal in SCS")
	}
	if _, err := Run(Config{
		Synchrony:      model.ES,
		Schedule:       s,
		Proposals:      proposals(3),
		Factory:        newProbeFactory(4, &store),
		RunToMaxRounds: true,
		MaxRounds:      4,
	}); err != nil {
		t.Fatal(err)
	}
	p2 := store[2]
	found := false
	for _, m := range p2.received[3] {
		if m.From == 1 && m.Round == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("p1's crash-round message was not delivered delayed")
	}
	for _, m := range store[3].received[1] {
		if m.From == 1 {
			t.Fatal("p3 received the lost message")
		}
	}
}
