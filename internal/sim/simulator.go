package sim

import (
	"fmt"
	"slices"

	"indulgence/internal/model"
	"indulgence/internal/sched"
	"indulgence/internal/trace"
)

// Simulator executes runs while reusing its scratch state — the pending
// delivery queues, the per-process inboxes and the algorithm table — so
// that repeated simulations (the exhaustive explorer, the random sweeps)
// stop paying the per-run setup cost. A Simulator is not safe for
// concurrent use; spawn one per goroutine (RunBatch and the lower-bound
// explorer do exactly that).
//
// The Result returned by Run is freshly allocated and remains valid after
// subsequent runs. Message payloads inside a recorded trace are deep
// copies; everywhere else payloads follow the shared-immutable contract of
// model.Payload.
type Simulator struct {
	algs    []model.Algorithm
	pending [][]delivery      // pending[r]: deliveries due in round r
	inbox   [][]model.Message // inbox[i]: messages for process i+1 this round
}

// NewSimulator returns a Simulator with empty scratch state. The zero
// value is also usable; New exists for symmetry and future options.
func NewSimulator() *Simulator { return &Simulator{} }

// Reset drops every reference retained in the scratch state (pending
// messages, inboxes, algorithm instances of the previous run) while
// keeping the allocated capacity. Run resets implicitly; call Reset only
// to release payload memory while keeping the Simulator itself.
func (sm *Simulator) Reset() {
	for i := range sm.algs {
		sm.algs[i] = nil
	}
	// Walk the full capacity: a smaller follow-up run reslices pending and
	// inbox below earlier lengths, leaving populated slices parked between
	// len and cap.
	pending := sm.pending[:cap(sm.pending)]
	for r := range pending {
		clearDeliveries(pending[r])
		pending[r] = pending[r][:0]
	}
	inbox := sm.inbox[:cap(sm.inbox)]
	for i := range inbox {
		clearMessages(inbox[i])
		inbox[i] = inbox[i][:0]
	}
}

func clearDeliveries(ds []delivery) {
	ds = ds[:cap(ds)]
	for i := range ds {
		ds[i] = delivery{}
	}
}

func clearMessages(ms []model.Message) {
	ms = ms[:cap(ms)]
	for i := range ms {
		ms[i] = model.Message{}
	}
}

// cmpMessages orders deliveries by (send round, sender) — the order the
// Algorithm contract promises to EndRound.
func cmpMessages(a, b model.Message) int {
	if a.Round != b.Round {
		return int(a.Round - b.Round)
	}
	return int(a.From - b.From)
}

// Run executes one run and returns its outcome, like the package-level Run
// but reusing the Simulator's scratch state. The error is non-nil only for
// configuration problems or algorithm contract violations.
func (sm *Simulator) Run(cfg Config) (*Result, error) {
	s := cfg.Schedule
	if s == nil {
		return nil, fmt.Errorf("%w: nil schedule", ErrConfig)
	}
	n := s.N()
	if len(cfg.Proposals) != n {
		return nil, fmt.Errorf("%w: %d proposals for n=%d", ErrConfig, len(cfg.Proposals), n)
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("%w: nil factory", ErrConfig)
	}
	if cfg.Synchrony != model.SCS && cfg.Synchrony != model.ES {
		return nil, fmt.Errorf("%w: unknown synchrony %v", ErrConfig, cfg.Synchrony)
	}
	if !cfg.SkipValidation {
		if err := s.Validate(cfg.Synchrony); err != nil {
			return nil, err
		}
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = s.MaxScheduledRound() + model.Round(3*n+8*(s.T()+2)+12)
	}

	algs := sm.algs[:0]
	for i := 0; i < n; i++ {
		ctx := model.ProcessContext{Self: model.ProcessID(i + 1), N: n, T: s.T()}
		a, err := cfg.Factory(ctx, cfg.Proposals[i])
		if err != nil {
			return nil, fmt.Errorf("sim: build algorithm for p%d: %w", i+1, err)
		}
		algs = append(algs, a)
	}
	sm.algs = algs

	res := &Result{
		Decisions:   make([]Decision, n),
		CrashRounds: make([]model.Round, n),
	}
	for i := 0; i < n; i++ {
		if r, ok := s.CrashRound(model.ProcessID(i + 1)); ok {
			res.CrashRounds[i] = r
		}
	}

	var run *trace.Run
	if !cfg.SkipTrace {
		run = &trace.Run{
			N:         n,
			T:         s.T(),
			Synchrony: cfg.Synchrony,
			Algorithm: algs[0].Name(),
			GSR:       s.GSR(),
			Procs:     make([]trace.ProcessTrace, n),
		}
		for i := 0; i < n; i++ {
			run.Procs[i] = trace.ProcessTrace{
				ID:         model.ProcessID(i + 1),
				Proposal:   cfg.Proposals[i],
				CrashRound: res.CrashRounds[i],
			}
		}
		res.Run = run
	}

	// Payloads are shared-immutable (model.Payload): one broadcast payload
	// is delivered to every recipient without cloning, unless a trace is
	// recorded or some algorithm opts out via model.PayloadMutator.
	cloneDeliveries := run != nil
	if !cloneDeliveries {
		for _, a := range algs {
			if pm, ok := a.(model.PayloadMutator); ok && pm.MutatesReceivedPayloads() {
				cloneDeliveries = true
				break
			}
		}
	}

	// pending is indexed by delivery round; entries keep their backing
	// arrays across runs. Deliveries scheduled past maxRounds can never be
	// received and are dropped at enqueue time.
	pending := sm.pending
	if int(maxRounds) >= cap(pending) {
		pending = append(pending[:cap(pending)], make([][]delivery, int(maxRounds)+1-cap(pending))...)
	}
	pending = pending[:int(maxRounds)+1]
	for r := range pending {
		pending[r] = pending[r][:0]
	}
	sm.pending = pending

	inbox := sm.inbox
	if n > cap(inbox) {
		inbox = append(inbox[:cap(inbox)], make([][]model.Message, n-cap(inbox))...)
	}
	inbox = inbox[:n]
	sm.inbox = inbox

	executed := model.Round(0)

	for k := model.Round(1); k <= maxRounds; k++ {
		executed = k
		// Send phase: every process that has not crashed in an earlier
		// round broadcasts, including to itself (self-delivery is always
		// in-round).
		for i := 0; i < n; i++ {
			p := model.ProcessID(i + 1)
			if !s.SendsIn(p, k) {
				continue
			}
			payload := algs[i].StartRound(k)
			if run != nil {
				var sent model.Payload
				if payload != nil {
					sent = payload.ClonePayload()
				}
				run.Procs[i].Steps = append(run.Procs[i].Steps, trace.Step{
					Round: k,
					Sent:  sent,
					Sends: true,
				})
			}
			for j := 0; j < n; j++ {
				q := model.ProcessID(j + 1)
				res.MessagesSent++
				fate := s.FateOf(k, p, q)
				var at model.Round
				switch fate.Kind {
				case sched.OnTime:
					at = k
				case sched.Delayed:
					at = fate.DeliverRound
				case sched.Lost:
					continue
				default:
					return nil, fmt.Errorf("%w: invalid fate kind %v", ErrConfig, fate.Kind)
				}
				if at > maxRounds {
					continue
				}
				pl := payload
				if cloneDeliveries && payload != nil {
					pl = payload.ClonePayload()
				}
				if pending[at] == nil {
					pending[at] = make([]delivery, 0, n*n)
				}
				pending[at] = append(pending[at], delivery{
					to:  q,
					msg: model.Message{From: p, Round: k, Payload: pl},
				})
			}
		}

		// Receive phase: every process that completes round k is handed
		// everything the adversary delivers in round k, sorted by
		// (send round, sender).
		arrivals := pending[k]
		for i := 0; i < n; i++ {
			inbox[i] = inbox[i][:0]
		}
		for _, d := range arrivals {
			if !s.CompletesRound(d.to, k) {
				continue
			}
			res.MessagesDelivered++
			if inbox[d.to-1] == nil {
				inbox[d.to-1] = make([]model.Message, 0, n)
			}
			inbox[d.to-1] = append(inbox[d.to-1], d.msg)
		}
		for i := 0; i < n; i++ {
			p := model.ProcessID(i + 1)
			if !s.CompletesRound(p, k) {
				continue
			}
			msgs := inbox[i]
			slices.SortFunc(msgs, cmpMessages)
			algs[i].EndRound(k, msgs)
			if run != nil {
				st := &run.Procs[i].Steps[len(run.Procs[i].Steps)-1]
				st.Completes = true
				recv := make([]model.Message, len(msgs))
				for mi, m := range msgs {
					recv[mi] = m.Clone()
				}
				st.Received = recv
			}
			if v, ok := algs[i].Decision(); ok {
				if res.Decisions[i].Decided() {
					if res.Decisions[i].Value != v {
						return nil, fmt.Errorf("%w: p%d decided %d then %d", ErrUnstableDecision, p, res.Decisions[i].Value, v)
					}
				} else {
					res.Decisions[i] = Decision{Value: v, Round: k}
					if run != nil {
						run.Procs[i].Decided = model.Some(v)
						run.Procs[i].DecidedRound = k
					}
				}
			}
		}

		if !cfg.RunToMaxRounds && allAliveDecided(s, res, k) {
			break
		}
	}

	res.Rounds = executed
	res.AllAliveDecided = allAliveDecided(s, res, executed)
	if run != nil {
		run.Rounds = executed
	}
	return res, nil
}
