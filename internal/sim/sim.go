// Package sim executes round-based algorithms under adversary schedules,
// implementing the exact delivery semantics of the paper's two models: the
// synchronous crash-stop model SCS and the eventually synchronous model ES.
// It is a deterministic lockstep simulator: given the same configuration it
// produces the same run, which is what makes the lower-bound exploration
// and the indistinguishability constructions reproducible.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"indulgence/internal/model"
	"indulgence/internal/sched"
	"indulgence/internal/trace"
)

// Errors returned by Run.
var (
	// ErrUnstableDecision reports that an algorithm changed its decision
	// value after deciding, violating the Algorithm contract.
	ErrUnstableDecision = errors.New("sim: algorithm changed its decision")
	// ErrConfig reports an invalid configuration.
	ErrConfig = errors.New("sim: invalid configuration")
)

// Config describes one run.
type Config struct {
	// Synchrony selects the model (SCS or ES).
	Synchrony model.Synchrony
	// Schedule is the adversary script; it must validate under Synchrony.
	Schedule *sched.Schedule
	// Proposals holds one proposal per process (Proposals[id-1]).
	Proposals []model.Value
	// Factory constructs each process's algorithm.
	Factory model.Factory
	// MaxRounds caps the execution. 0 selects a generous default that
	// covers every algorithm in this repository: the schedule's last
	// scheduled round plus 3n + 8(t+2) + 12 rounds.
	MaxRounds model.Round
	// RunToMaxRounds keeps executing after every live process has
	// decided (by default the run stops at that point).
	RunToMaxRounds bool
	// SkipTrace suppresses per-round history recording (Result.Run will
	// be nil). Decisions and crash rounds are still reported. Used by
	// the lower-bound explorer, which runs millions of simulations.
	SkipTrace bool
	// SkipValidation trusts the schedule to be valid for the model.
	// Only generators that produce valid-by-construction schedules
	// (such as the explorer) should set it.
	SkipValidation bool
}

// Decision is one process's decision.
type Decision struct {
	// Value is the decided value.
	Value model.Value
	// Round is the round at the end of which the process decided
	// (0 if it never decided).
	Round model.Round
}

// Decided reports whether a decision was taken.
func (d Decision) Decided() bool { return d.Round > 0 }

// Result reports one run's outcome.
type Result struct {
	// Decisions holds one entry per process (Decisions[id-1]).
	Decisions []Decision
	// CrashRounds holds each process's crash round (0 = never crashed),
	// copied from the schedule for the checkers' convenience.
	CrashRounds []model.Round
	// Rounds is the number of rounds executed.
	Rounds model.Round
	// AllAliveDecided reports whether every process alive at the end of
	// the run had decided (the run reached quiescence rather than the
	// round cap).
	AllAliveDecided bool
	// MessagesSent counts point-to-point messages entering the channels
	// (n per broadcast, self-delivery included), the message complexity
	// of the run.
	MessagesSent int
	// MessagesDelivered counts messages actually handed to receive
	// phases (sent minus losses and minus deliveries to crashed
	// receivers).
	MessagesDelivered int
	// Run is the full trace, nil when SkipTrace was set.
	Run *trace.Run
}

// GlobalDecisionRound returns the global decision round (Sect. 1.3): the
// largest decision round among deciding processes. ok is false if nobody
// decided.
func (r *Result) GlobalDecisionRound() (round model.Round, ok bool) {
	for _, d := range r.Decisions {
		if d.Round > round {
			round, ok = d.Round, true
		}
	}
	return round, ok
}

type delivery struct {
	to  model.ProcessID
	msg model.Message
}

// Run executes one run and returns its outcome. The error is non-nil only
// for configuration problems or algorithm contract violations; consensus
// property violations (possible with invalid resilience, as in the
// split-brain experiment) are reported by package check, not here.
func Run(cfg Config) (*Result, error) {
	s := cfg.Schedule
	if s == nil {
		return nil, fmt.Errorf("%w: nil schedule", ErrConfig)
	}
	n := s.N()
	if len(cfg.Proposals) != n {
		return nil, fmt.Errorf("%w: %d proposals for n=%d", ErrConfig, len(cfg.Proposals), n)
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("%w: nil factory", ErrConfig)
	}
	if cfg.Synchrony != model.SCS && cfg.Synchrony != model.ES {
		return nil, fmt.Errorf("%w: unknown synchrony %v", ErrConfig, cfg.Synchrony)
	}
	if !cfg.SkipValidation {
		if err := s.Validate(cfg.Synchrony); err != nil {
			return nil, err
		}
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = s.MaxScheduledRound() + model.Round(3*n+8*(s.T()+2)+12)
	}

	algs := make([]model.Algorithm, n)
	for i := 0; i < n; i++ {
		ctx := model.ProcessContext{Self: model.ProcessID(i + 1), N: n, T: s.T()}
		a, err := cfg.Factory(ctx, cfg.Proposals[i])
		if err != nil {
			return nil, fmt.Errorf("sim: build algorithm for p%d: %w", i+1, err)
		}
		algs[i] = a
	}

	res := &Result{
		Decisions:   make([]Decision, n),
		CrashRounds: make([]model.Round, n),
	}
	for i := 0; i < n; i++ {
		if r, ok := s.CrashRound(model.ProcessID(i + 1)); ok {
			res.CrashRounds[i] = r
		}
	}

	var run *trace.Run
	if !cfg.SkipTrace {
		run = &trace.Run{
			N:         n,
			T:         s.T(),
			Synchrony: cfg.Synchrony,
			Algorithm: algs[0].Name(),
			GSR:       s.GSR(),
			Procs:     make([]trace.ProcessTrace, n),
		}
		for i := 0; i < n; i++ {
			run.Procs[i] = trace.ProcessTrace{
				ID:         model.ProcessID(i + 1),
				Proposal:   cfg.Proposals[i],
				CrashRound: res.CrashRounds[i],
			}
		}
		res.Run = run
	}

	pending := make(map[model.Round][]delivery)
	executed := model.Round(0)

	for k := model.Round(1); k <= maxRounds; k++ {
		executed = k
		// Send phase: every process that has not crashed in an earlier
		// round broadcasts, including to itself (self-delivery is always
		// in-round).
		for i := 0; i < n; i++ {
			p := model.ProcessID(i + 1)
			if !s.SendsIn(p, k) {
				continue
			}
			payload := algs[i].StartRound(k)
			if run != nil {
				var sent model.Payload
				if payload != nil {
					sent = payload.ClonePayload()
				}
				run.Procs[i].Steps = append(run.Procs[i].Steps, trace.Step{
					Round: k,
					Sent:  sent,
					Sends: true,
				})
			}
			for j := 0; j < n; j++ {
				q := model.ProcessID(j + 1)
				res.MessagesSent++
				fate := s.FateOf(k, p, q)
				var at model.Round
				switch fate.Kind {
				case sched.OnTime:
					at = k
				case sched.Delayed:
					at = fate.DeliverRound
				case sched.Lost:
					continue
				default:
					return nil, fmt.Errorf("%w: invalid fate kind %v", ErrConfig, fate.Kind)
				}
				var pl model.Payload
				if payload != nil {
					pl = payload.ClonePayload()
				}
				pending[at] = append(pending[at], delivery{
					to:  q,
					msg: model.Message{From: p, Round: k, Payload: pl},
				})
			}
		}

		// Receive phase: every process that completes round k is handed
		// everything the adversary delivers in round k, sorted by
		// (send round, sender).
		arrivals := pending[k]
		delete(pending, k)
		inbox := make([][]model.Message, n)
		for _, d := range arrivals {
			if !s.CompletesRound(d.to, k) {
				continue
			}
			res.MessagesDelivered++
			inbox[d.to-1] = append(inbox[d.to-1], d.msg)
		}
		for i := 0; i < n; i++ {
			p := model.ProcessID(i + 1)
			if !s.CompletesRound(p, k) {
				continue
			}
			msgs := inbox[i]
			sort.Slice(msgs, func(a, b int) bool {
				if msgs[a].Round != msgs[b].Round {
					return msgs[a].Round < msgs[b].Round
				}
				return msgs[a].From < msgs[b].From
			})
			algs[i].EndRound(k, msgs)
			if run != nil {
				st := &run.Procs[i].Steps[len(run.Procs[i].Steps)-1]
				st.Completes = true
				recv := make([]model.Message, len(msgs))
				for mi, m := range msgs {
					recv[mi] = m.Clone()
				}
				st.Received = recv
			}
			if v, ok := algs[i].Decision(); ok {
				if res.Decisions[i].Decided() {
					if res.Decisions[i].Value != v {
						return nil, fmt.Errorf("%w: p%d decided %d then %d", ErrUnstableDecision, p, res.Decisions[i].Value, v)
					}
				} else {
					res.Decisions[i] = Decision{Value: v, Round: k}
					if run != nil {
						run.Procs[i].Decided = model.Some(v)
						run.Procs[i].DecidedRound = k
					}
				}
			}
		}

		if !cfg.RunToMaxRounds && allAliveDecided(s, res, k) {
			break
		}
	}

	res.Rounds = executed
	res.AllAliveDecided = allAliveDecided(s, res, executed)
	if run != nil {
		run.Rounds = executed
	}
	return res, nil
}

// allAliveDecided reports whether every process that completed round k has
// decided.
func allAliveDecided(s *sched.Schedule, res *Result, k model.Round) bool {
	for i := range res.Decisions {
		p := model.ProcessID(i + 1)
		if !s.CompletesRound(p, k) {
			continue
		}
		if !res.Decisions[i].Decided() {
			return false
		}
	}
	return true
}
