// Package sim executes round-based algorithms under adversary schedules,
// implementing the exact delivery semantics of the paper's two models: the
// synchronous crash-stop model SCS and the eventually synchronous model ES.
// It is a deterministic lockstep simulator: given the same configuration it
// produces the same run, which is what makes the lower-bound exploration
// and the indistinguishability constructions reproducible.
//
// The package offers three entry points, fastest last:
//
//   - Run executes a single run (a convenience wrapper);
//   - Simulator executes many runs while reusing scratch state — the hot
//     path of the exhaustive explorer and the random sweeps;
//   - RunBatch fans a slice of independent runs out over a bounded worker
//     pool, one Simulator per worker, preserving input order.
package sim

import (
	"errors"
	"fmt"

	"indulgence/internal/model"
	"indulgence/internal/pool"
	"indulgence/internal/sched"
	"indulgence/internal/trace"
)

// Errors returned by Run.
var (
	// ErrUnstableDecision reports that an algorithm changed its decision
	// value after deciding, violating the Algorithm contract.
	ErrUnstableDecision = errors.New("sim: algorithm changed its decision")
	// ErrConfig reports an invalid configuration.
	ErrConfig = errors.New("sim: invalid configuration")
)

// Config describes one run.
type Config struct {
	// Synchrony selects the model (SCS or ES).
	Synchrony model.Synchrony
	// Schedule is the adversary script; it must validate under Synchrony.
	Schedule *sched.Schedule
	// Proposals holds one proposal per process (Proposals[id-1]).
	Proposals []model.Value
	// Factory constructs each process's algorithm.
	Factory model.Factory
	// MaxRounds caps the execution. 0 selects a generous default that
	// covers every algorithm in this repository: the schedule's last
	// scheduled round plus 3n + 8(t+2) + 12 rounds.
	MaxRounds model.Round
	// RunToMaxRounds keeps executing after every live process has
	// decided (by default the run stops at that point).
	RunToMaxRounds bool
	// SkipTrace suppresses per-round history recording (Result.Run will
	// be nil). Decisions and crash rounds are still reported, and
	// delivered payloads are shared between recipients rather than cloned
	// (see model.Payload). Used by the lower-bound explorer, which runs
	// millions of simulations.
	SkipTrace bool
	// SkipValidation trusts the schedule to be valid for the model.
	// Only generators that produce valid-by-construction schedules
	// (such as the explorer) should set it.
	SkipValidation bool
}

// Decision is one process's decision.
type Decision struct {
	// Value is the decided value.
	Value model.Value
	// Round is the round at the end of which the process decided
	// (0 if it never decided).
	Round model.Round
}

// Decided reports whether a decision was taken.
func (d Decision) Decided() bool { return d.Round > 0 }

// Result reports one run's outcome.
type Result struct {
	// Decisions holds one entry per process (Decisions[id-1]).
	Decisions []Decision
	// CrashRounds holds each process's crash round (0 = never crashed),
	// copied from the schedule for the checkers' convenience.
	CrashRounds []model.Round
	// Rounds is the number of rounds executed.
	Rounds model.Round
	// AllAliveDecided reports whether every process alive at the end of
	// the run had decided (the run reached quiescence rather than the
	// round cap).
	AllAliveDecided bool
	// MessagesSent counts point-to-point messages entering the channels
	// (n per broadcast, self-delivery included), the message complexity
	// of the run.
	MessagesSent int
	// MessagesDelivered counts messages actually handed to receive
	// phases (sent minus losses and minus deliveries to crashed
	// receivers).
	MessagesDelivered int
	// Run is the full trace, nil when SkipTrace was set.
	Run *trace.Run
}

// GlobalDecisionRound returns the global decision round (Sect. 1.3): the
// largest decision round among deciding processes. ok is false if nobody
// decided.
func (r *Result) GlobalDecisionRound() (round model.Round, ok bool) {
	for _, d := range r.Decisions {
		if d.Round > round {
			round, ok = d.Round, true
		}
	}
	return round, ok
}

type delivery struct {
	to  model.ProcessID
	msg model.Message
}

// Run executes one run and returns its outcome. The error is non-nil only
// for configuration problems or algorithm contract violations; consensus
// property violations (possible with invalid resilience, as in the
// split-brain experiment) are reported by package check, not here.
//
// Run is a convenience wrapper over a fresh Simulator; callers executing
// many runs should reuse a Simulator (or RunBatch) instead.
func Run(cfg Config) (*Result, error) {
	var sm Simulator
	return sm.Run(cfg)
}

// RunBatch executes the given runs concurrently on a bounded worker pool
// (clamped via pool.Workers; workers <= 0 selects one worker per runnable
// CPU) and returns their results in input order. Each worker owns one
// Simulator, so the batch amortizes scratch state exactly like a
// hand-rolled Simulator loop while exploiting every core. Every run is
// always executed; if any fail, the error of the lowest-indexed failing
// run is returned and the results of successful runs are still populated.
// Determinism: each run is independent and the output order is the input
// order, so the outcome is identical for every worker count.
func RunBatch(workers int, cfgs []Config) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	pool.ForEach(workers, len(cfgs), func() func(int) {
		var sm Simulator
		return func(i int) { results[i], errs[i] = sm.Run(cfgs[i]) }
	})
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("sim: batch run %d: %w", i, err)
		}
	}
	return results, nil
}

// allAliveDecided reports whether every process that completed round k has
// decided.
func allAliveDecided(s *sched.Schedule, res *Result, k model.Round) bool {
	for i := range res.Decisions {
		p := model.ProcessID(i + 1)
		if !s.CompletesRound(p, k) {
			continue
		}
		if !res.Decisions[i].Decided() {
			return false
		}
	}
	return true
}
