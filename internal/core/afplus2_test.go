package core_test

import (
	"math/rand"
	"testing"

	"indulgence/internal/check"
	"indulgence/internal/core"
	"indulgence/internal/lowerbound"
	"indulgence/internal/model"
	"indulgence/internal/sched"
	"indulgence/internal/sim"
)

func TestAfPlus2FailureFree(t *testing.T) {
	res := mustRun(t, core.NewAfPlus2(), sched.FailureFree(4, 1), props(4))
	if got := gdr(t, res); got != 2 {
		t.Errorf("failure-free gdr=%d, want 2", got)
	}
}

func TestAfPlus2Guards(t *testing.T) {
	if _, err := core.NewAfPlus2()(model.ProcessContext{Self: 1, N: 6, T: 2}, 1); err == nil {
		t.Fatal("t >= n/3 must be rejected")
	}
	if _, err := core.NewAfPlus2()(model.ProcessContext{Self: 1, N: 7, T: 2}, 1); err != nil {
		t.Fatalf("legal context rejected: %v", err)
	}
}

// TestAfPlus2EarlyDecision is the f+2 early-decision behaviour: over all
// serial runs with at most f crashes the worst case is exactly f+2.
func TestAfPlus2EarlyDecision(t *testing.T) {
	for _, tc := range []struct{ t, f int }{{1, 0}, {1, 1}, {2, 1}, {2, 2}} {
		n := 3*tc.t + 1
		mode := lowerbound.AllSubsets
		if n > 5 && tc.f > 1 {
			mode = lowerbound.PrefixSubsets
		}
		maxCrashes := tc.f
		if maxCrashes == 0 {
			maxCrashes = -1
		}
		res, err := lowerbound.Explore(lowerbound.Config{
			N: n, T: tc.t,
			Synchrony:     model.ES,
			Factory:       core.NewAfPlus2(),
			Proposals:     props(n),
			MaxCrashes:    maxCrashes,
			MaxCrashRound: model.Round(tc.f + 2),
			Mode:          mode,
		})
		if err != nil {
			t.Fatalf("t=%d f=%d: %v", tc.t, tc.f, err)
		}
		if int(res.WorstRound) != tc.f+2 {
			t.Errorf("t=%d f=%d: worst=%d, want f+2=%d", tc.t, tc.f, res.WorstRound, tc.f+2)
		}
		if res.PropertyViolation != nil {
			t.Errorf("t=%d f=%d: %v", tc.t, tc.f, res.PropertyViolation)
		}
	}
}

// TestAfPlus2EventualFast is Lemma 15 end to end: under the adversarial
// divergence prefix, decisions land exactly at k+f+2.
func TestAfPlus2EventualFast(t *testing.T) {
	for _, tc := range []struct {
		t, f int
		k    model.Round
	}{{1, 0, 3}, {1, 1, 3}, {2, 1, 2}} {
		maxCrashes := tc.f
		if maxCrashes == 0 {
			maxCrashes = -1
		}
		res, err := lowerbound.Explore(lowerbound.Config{
			Synchrony:       model.ES,
			Factory:         core.NewAfPlus2(),
			Proposals:       sched.DivergenceProposalsFlood(tc.t),
			Base:            sched.DivergencePrefixFlood(tc.t, tc.k),
			FirstCrashRound: tc.k + 1,
			MaxCrashes:      maxCrashes,
			MaxCrashRound:   tc.k + model.Round(tc.f+2),
			Mode:            lowerbound.AllSubsets,
		})
		if err != nil {
			t.Fatalf("t=%d k=%d f=%d: %v", tc.t, tc.k, tc.f, err)
		}
		want := int(tc.k) + tc.f + 2
		if int(res.WorstRound) != want {
			t.Errorf("t=%d k=%d f=%d: worst=%d, want k+f+2=%d", tc.t, tc.k, tc.f, res.WorstRound, want)
		}
	}
}

func TestAfPlus2SafetyRandomES(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 120; i++ {
		gsr := model.Round(1 + rng.Intn(7))
		s := sched.RandomES(7, 2, gsr, sched.RandomOpts{Rng: rng})
		p := props(7)
		res, err := sim.Run(sim.Config{Synchrony: model.ES, Schedule: s, Proposals: p, Factory: core.NewAfPlus2()})
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if rep := check.Consensus(res, p); !rep.OK() {
			t.Fatalf("sample %d: %v\nschedule %v", i, rep.Err(), s)
		}
	}
}

func TestAfPlus2Name(t *testing.T) {
	a, err := core.NewAfPlus2()(model.ProcessContext{Self: 1, N: 4, T: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != core.AfPlus2Name {
		t.Errorf("Name() = %q", a.Name())
	}
	ab, err := core.NewAfPlus2Opts(core.AfOptions{DisablePluralityAdoption: true})(model.ProcessContext{Self: 1, N: 4, T: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Name() != core.AfPlus2Name+"[noplur]" {
		t.Errorf("ablated Name() = %q", ab.Name())
	}
}
