package core

import (
	"fmt"
	"slices"

	"indulgence/internal/model"
	"indulgence/internal/payload"
)

// afPlus2 is algorithm A_{f+2} (Sect. 6, Fig. 5), the paper's fast
// eventually deciding consensus for t < n/3: if a run is synchronous after
// round k and suffers f crashes after round k, it globally decides by
// round k + f + 2 — against k + 2f + 2 for the leader-based AMR baseline
// it optimizes.
//
// Every round each process broadcasts its estimate (or, once decided, the
// decision). On receiving the round-k messages a process first honours any
// DECIDE received (from this or an earlier round); otherwise it selects
// the n−t round messages with the lowest sender identities as msgSet and:
//
//   - decides est′ if every message in msgSet carries the same est′;
//   - adopts any value occurring at least n−2t times in msgSet (unique
//     when t < n/3, by the quorum-intersection observation of Sect. 6);
//   - otherwise adopts the minimum estimate in msgSet.
type afPlus2 struct {
	ctx     model.ProcessContext
	opts    AfOptions
	est     model.Value
	decided model.OptValue
}

var _ model.Algorithm = (*afPlus2)(nil)

// AfOptions configures A_{f+2}.
type AfOptions struct {
	// DisablePluralityAdoption drops the (n−2t)-plurality adoption rule,
	// always adopting the minimum of msgSet instead. Ablation only: the
	// rule is what forces every process to adopt a freshly decided value
	// (Lemma 14); without it a decider's value can be abandoned by the
	// survivors and agreement breaks (see the ablation experiments for a
	// seven-process witness run).
	DisablePluralityAdoption bool
}

// NewAfPlus2 returns a Factory for A_{f+2}. It requires t < n/3.
func NewAfPlus2() model.Factory { return NewAfPlus2Opts(AfOptions{}) }

// NewAfPlus2Opts returns a Factory for A_{f+2} with explicit options.
func NewAfPlus2Opts(opts AfOptions) model.Factory {
	return func(ctx model.ProcessContext, proposal model.Value) (model.Algorithm, error) {
		if err := ctx.Validate(); err != nil {
			return nil, err
		}
		if 3*ctx.T >= ctx.N {
			return nil, fmt.Errorf("core: A_f+2 requires t < n/3, got t=%d n=%d", ctx.T, ctx.N)
		}
		return &afPlus2{ctx: ctx, opts: opts, est: proposal}, nil
	}
}

// Name implements model.Algorithm.
func (a *afPlus2) Name() string {
	if a.opts.DisablePluralityAdoption {
		return AfPlus2Name + "[noplur]"
	}
	return AfPlus2Name
}

// StartRound implements model.Algorithm.
func (a *afPlus2) StartRound(model.Round) model.Payload {
	if v, ok := a.decided.Get(); ok {
		return payload.Decide{V: v}
	}
	return payload.Estimate{Est: a.est}
}

// EndRound implements model.Algorithm.
func (a *afPlus2) EndRound(k model.Round, delivered []model.Message) {
	if !a.decided.IsBottom() {
		return
	}
	if v, ok := payload.FindDecide(delivered); ok {
		a.decided = model.Some(v)
		return
	}
	// msgSet: the n−t round-k messages with the lowest sender ids
	// (delivered is sorted by (round, sender), so the filtered slice is
	// sorted by sender).
	roundMsgs := payload.OfRound(k, delivered)
	ests := make([]model.Value, 0, len(roundMsgs))
	for _, m := range roundMsgs {
		e, ok := m.Payload.(payload.Estimate)
		if !ok {
			continue
		}
		ests = append(ests, e.Est)
	}
	quorum := a.ctx.N - a.ctx.T
	if len(ests) < quorum {
		// Fewer than n−t estimates can only happen transiently outside
		// the model guarantees (e.g. live runtime warm-up); skip the
		// round rather than act on insufficient evidence.
		return
	}
	ests = ests[:quorum]

	counts := make(map[model.Value]int, len(ests))
	var bestVal model.Value
	bestCnt := 0
	for _, v := range ests {
		counts[v]++
		if cnt := counts[v]; cnt > bestCnt || (cnt == bestCnt && v < bestVal) {
			bestVal, bestCnt = v, cnt
		}
	}
	switch {
	case bestCnt == quorum:
		a.decided = model.Some(bestVal)
	case !a.opts.DisablePluralityAdoption && bestCnt >= a.ctx.N-2*a.ctx.T:
		a.est = bestVal
	default:
		a.est = slices.Min(ests)
	}
}

// Decision implements model.Algorithm.
func (a *afPlus2) Decision() (model.Value, bool) { return a.decided.Get() }
