package core

import (
	"indulgence/internal/baseline"
	"indulgence/internal/model"
)

// NewDiamondS returns a Factory for A_{◇S}, the Sect. 5.1 (Fig. 3)
// adaptation of A_{t+2} to an asynchronous round model enriched with the
// eventually strong failure detector ◇S.
//
// The paper obtains A_{◇S} from A_{t+2} by (1) substituting the underlying
// consensus C with a ◇S-based algorithm C′ and (2) modifying the two
// receive steps (Fig. 2, lines 6 and 15) to wait for n−t round messages —
// the most an algorithm may wait for under ◇S, whose accuracy is only
// eventual and weak — instead of additionally waiting for all processes
// not suspected by the (◇P-like) simulated detector.
//
// In the lockstep simulator the receive sets are fixed by the adversary
// schedule, so modification (2) changes nothing: the per-round state
// machine of A_{◇S} coincides with A_{t+2} over any given receive set, and
// the fast-decision property (global decision at t+2 in synchronous runs)
// is inherited — exactly the paper's argument that "AS retains the fast
// decision property because it is relevant only in synchronous runs". The
// waiting rule matters in the live runtime, where WaitQuorum selects the
// ◇S discipline (wait for n−t) and WaitUnsuspected the ◇P discipline
// (additionally wait for every unsuspected process).
func NewDiamondS() model.Factory {
	return New(Options{
		Underlying: baseline.NewCT(),
		name:       DiamondSName,
	})
}

// WaitPolicy selects the receive-phase waiting discipline of the live
// runtime (internal/runtime); it realizes the line-6/line-15 modification
// of Fig. 3.
type WaitPolicy int

const (
	// WaitUnsuspected waits for at least n−t round messages and for a
	// message from every process the local failure detector does not
	// suspect (the A_{t+2}/◇P discipline).
	WaitUnsuspected WaitPolicy = iota + 1
	// WaitQuorum waits for exactly n−t round messages (the A_{◇S}
	// discipline).
	WaitQuorum
)

// String implements fmt.Stringer.
func (w WaitPolicy) String() string {
	switch w {
	case WaitUnsuspected:
		return "wait-unsuspected"
	case WaitQuorum:
		return "wait-quorum"
	default:
		return "wait-unknown"
	}
}
