package core_test

import (
	"math/rand"
	"testing"

	"indulgence/internal/baseline"
	"indulgence/internal/check"
	"indulgence/internal/core"
	"indulgence/internal/lowerbound"
	"indulgence/internal/model"
	"indulgence/internal/sched"
	"indulgence/internal/sim"
)

func props(n int) []model.Value {
	out := make([]model.Value, n)
	for i := range out {
		out[i] = model.Value(i + 1)
	}
	return out
}

func mustRun(t *testing.T, factory model.Factory, s *sched.Schedule, p []model.Value) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{Synchrony: model.ES, Schedule: s, Proposals: p, Factory: factory})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep := check.Consensus(res, p); !rep.OK() {
		t.Fatalf("consensus: %v (schedule %v)", rep.Err(), s)
	}
	return res
}

func gdr(t *testing.T, res *sim.Result) model.Round {
	t.Helper()
	r, ok := res.GlobalDecisionRound()
	if !ok {
		t.Fatal("no decision")
	}
	return r
}

// TestFastDecisionExhaustive is Lemma 13, checked exhaustively: over every
// serial run, every deciding process decides at exactly round t+2.
func TestFastDecisionExhaustive(t *testing.T) {
	for _, tc := range []struct {
		n, t int
		mode lowerbound.SubsetMode
	}{
		{3, 1, lowerbound.AllSubsets},
		{4, 1, lowerbound.AllSubsets},
		{5, 2, lowerbound.AllSubsets},
		{6, 2, lowerbound.PrefixSubsets},
		// n=7, t=3 is covered by the benchmark harness; exhausting it
		// here would dominate the test suite's runtime.
	} {
		res, err := lowerbound.Explore(lowerbound.Config{
			N: tc.n, T: tc.t,
			Synchrony:     model.ES,
			Factory:       core.New(core.Options{}),
			Proposals:     props(tc.n),
			MaxCrashRound: model.Round(tc.t + 2),
			Mode:          tc.mode,
		})
		if err != nil {
			t.Fatalf("n=%d t=%d: %v", tc.n, tc.t, err)
		}
		want := model.Round(tc.t + 2)
		if res.WorstRound != want || res.WitnessEarliest != want {
			t.Errorf("n=%d t=%d: rounds %d..%d, want exactly %d",
				tc.n, tc.t, res.WitnessEarliest, res.WorstRound, want)
		}
		if res.PropertyViolation != nil {
			t.Errorf("n=%d t=%d: %v", tc.n, tc.t, res.PropertyViolation)
		}
		if res.Undecided {
			t.Errorf("n=%d t=%d: undecided serial run", tc.n, tc.t)
		}
	}
}

// TestSafetyUnderRandomES is the indulgence property test: validity,
// uniform agreement and termination hold over seeded random eventually
// synchronous schedules with arbitrary crash/delay patterns, and the
// elimination property (Lemma 6) holds in every run.
func TestSafetyUnderRandomES(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 150; i++ {
		n := 3 + rng.Intn(5)
		tt := 1 + rng.Intn((n-1)/2)
		gsr := model.Round(1 + rng.Intn(8))
		s := sched.RandomES(n, tt, gsr, sched.RandomOpts{Rng: rng})
		p := props(n)
		res, err := sim.Run(sim.Config{
			Synchrony: model.ES, Schedule: s, Proposals: p,
			Factory: core.New(core.Options{}),
		})
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if rep := check.Consensus(res, p); !rep.OK() {
			t.Fatalf("sample %d (n=%d t=%d gsr=%d): %v\nschedule %v", i, n, tt, gsr, rep.Err(), s)
		}
		if err := core.CheckElimination(res.Run); err != nil {
			t.Fatalf("sample %d: %v\nschedule %v", i, err, s)
		}
	}
}

// TestSynchronousHaltClaim verifies Claim 13.1 over random synchronous
// runs: nobody who completes round t+1 appears in any Halt set.
func TestSynchronousHaltClaim(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 150; i++ {
		n := 3 + rng.Intn(5)
		tt := 1 + rng.Intn((n-1)/2)
		s := sched.RandomSynchronous(n, tt, sched.RandomOpts{Rng: rng, DelayCrashSends: true})
		res, err := sim.Run(sim.Config{
			Synchrony: model.ES, Schedule: s, Proposals: props(n),
			Factory: core.New(core.Options{}),
		})
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if err := core.CheckSynchronousHalt(res.Run); err != nil {
			t.Fatalf("sample %d: %v\nschedule %v", i, err, s)
		}
	}
}

func TestFailureFreeFastOption(t *testing.T) {
	ff := core.New(core.Options{FailureFreeFast: true})
	// Failure-free: decide at round 2.
	res := mustRun(t, ff, sched.FailureFree(5, 2), props(5))
	if got := gdr(t, res); got != 2 {
		t.Errorf("failure-free: gdr=%d, want 2", got)
	}
	// With a crash the optimization must not fire; decision at t+2.
	s := sched.New(5, 2)
	s.CrashSilent(3, 1)
	res = mustRun(t, ff, s, props(5))
	if got := gdr(t, res); got != 4 {
		t.Errorf("crashed run: gdr=%d, want t+2=4", got)
	}
	// Fast decision safety under random synchronous runs.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		s := sched.RandomSynchronous(5, 2, sched.RandomOpts{Rng: rng, DelayCrashSends: true})
		mustRun(t, ff, s, props(5))
	}
}

// TestDelegationToUnderlying drives A_{t+2} into its Phase-2 fallback: the
// victim's messages are delayed past Phase 1, so everyone detects false
// suspicions (or sees ⊥) and the decision comes from the underlying CT —
// later than t+2 but still uniform.
func TestDelegationToUnderlying(t *testing.T) {
	s := sched.DelayedSenderPrefix(3, 1, 3, 1)
	res := mustRun(t, core.New(core.Options{}), s, []model.Value{0, 1, 1})
	if got := gdr(t, res); got <= 3 {
		t.Errorf("gdr=%d, expected the slow path (beyond t+2=3)", got)
	}
}

func TestConstructorGuards(t *testing.T) {
	if _, err := core.New(core.Options{})(model.ProcessContext{Self: 1, N: 4, T: 2}, 1); err == nil {
		t.Fatal("t >= n/2 must be rejected")
	}
	// The underlying factory is probed at construction: AMR requires
	// t < n/3, so it must be rejected as C for n=5, t=2.
	_, err := core.New(core.Options{Underlying: baseline.NewAMR()})(model.ProcessContext{Self: 1, N: 5, T: 2}, 1)
	if err == nil {
		t.Fatal("incompatible underlying factory must surface at construction")
	}
	// And accepted where legal.
	if _, err := core.New(core.Options{Underlying: baseline.NewAMR()})(model.ProcessContext{Self: 1, N: 7, T: 2}, 1); err != nil {
		t.Fatalf("legal underlying rejected: %v", err)
	}
}

func TestCustomUnderlying(t *testing.T) {
	// A_{t+2} with HR as C still solves consensus on the slow path.
	s := sched.DelayedSenderPrefix(3, 1, 3, 1)
	mustRun(t, core.New(core.Options{Underlying: baseline.NewHurfinRaynal()}), s, []model.Value{0, 1, 1})
}

func TestNames(t *testing.T) {
	cases := []struct {
		opts core.Options
		want string
	}{
		{core.Options{}, "A_t+2"},
		{core.Options{FailureFreeFast: true}, "A_t+2+ff"},
		{core.Options{Phase1Rounds: 1}, "A_t+2[p1=1]"},
		{core.Options{DisableHaltExchange: true}, "A_t+2[nohaltx]"},
		{core.Options{DetectorThreshold: 2}, "A_t+2[thr=2]"},
	}
	for _, tc := range cases {
		a, err := core.New(tc.opts)(model.ProcessContext{Self: 1, N: 5, T: 2}, 1)
		if err != nil {
			t.Fatalf("%q: %v", tc.want, err)
		}
		if a.Name() != tc.want {
			t.Errorf("Name() = %q, want %q", a.Name(), tc.want)
		}
	}
	ds, err := core.NewDiamondS()(model.ProcessContext{Self: 1, N: 5, T: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name() != core.DiamondSName {
		t.Errorf("diamond-S name = %q", ds.Name())
	}
}

// TestDiamondSMatchesAtPlus2 checks the Sect. 5.1 argument concretely: in
// the lockstep simulator (where receive sets are fixed by the schedule),
// A_{◇S} behaves identically to A_{t+2} — same decisions, same rounds —
// on arbitrary schedules.
func TestDiamondSMatchesAtPlus2(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 60; i++ {
		gsr := model.Round(1 + rng.Intn(5))
		s := sched.RandomES(5, 2, gsr, sched.RandomOpts{Rng: rng})
		p := props(5)
		a, err := sim.Run(sim.Config{Synchrony: model.ES, Schedule: s, Proposals: p, Factory: core.New(core.Options{})})
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.Run(sim.Config{Synchrony: model.ES, Schedule: s.Clone(), Proposals: p, Factory: core.NewDiamondS()})
		if err != nil {
			t.Fatal(err)
		}
		for j := range a.Decisions {
			if a.Decisions[j] != b.Decisions[j] {
				t.Fatalf("sample %d: p%d decisions differ: %+v vs %+v\nschedule %v",
					i, j+1, a.Decisions[j], b.Decisions[j], s)
			}
		}
	}
}

// TestDeterminism: the simulator plus algorithm is fully deterministic —
// identical schedules yield identical traces.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := sched.RandomES(5, 2, 4, sched.RandomOpts{Rng: rng})
	p := props(5)
	run := func() *sim.Result {
		res, err := sim.Run(sim.Config{Synchrony: model.ES, Schedule: s.Clone(), Proposals: p, Factory: core.New(core.Options{})})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] {
			t.Fatalf("nondeterministic decisions at p%d", i+1)
		}
	}
	for p := model.ProcessID(1); int(p) <= 5; p++ {
		if a.Run.HistoryDigest(p, a.Rounds) != b.Run.HistoryDigest(p, b.Rounds) {
			t.Fatalf("nondeterministic history at p%d", p)
		}
	}
}
