package core

import (
	"errors"
	"fmt"

	"indulgence/internal/fd"
	"indulgence/internal/model"
	"indulgence/internal/payload"
	"indulgence/internal/trace"
)

// This file mechanizes the elimination-property apparatus of Sect. 3.3–3.4
// (Lemmas 6–13) as checkers over recorded runs. The Phase-1 state of every
// process is *replayed independently* from its recorded receive sets —
// duplicating the compute() rules on purpose, so the checkers do not trust
// the algorithm implementation they verify.

// Checker errors.
var (
	// ErrElimination reports a violation of Lemma 6: two NEWESTIMATE
	// messages carried distinct non-⊥ new estimates.
	ErrElimination = errors.New("core: elimination property violated")
	// ErrHaltClaim reports a violation of Claim 13.1: in a synchronous
	// run, a process that completed round t+1 was in some Halt set.
	ErrHaltClaim = errors.New("core: synchronous-run Halt claim violated")
)

// Phase1Snapshot is the replayed state of one process at the end of one
// Phase-1 round.
type Phase1Snapshot struct {
	// Round is the 1-based round.
	Round model.Round
	// Est is the estimate after compute() (est_i[k] in the paper).
	Est model.Value
	// Halt is the Halt set after compute() (Halt_i[k]).
	Halt model.PIDSet
	// Completed reports whether the process completed the round; when
	// false the paper's est_i[k] is "undefined" and Est/Halt are the last
	// defined values.
	Completed bool
}

// ReplayPhase1 recomputes process p's Phase-1 evolution (rounds 1..t+1)
// from the recorded run, applying the Fig. 2 compute() rules to the
// recorded receive sets. The returned slice has one snapshot per round
// 1..t+1.
func ReplayPhase1(run *trace.Run, p model.ProcessID) []Phase1Snapshot {
	pt := run.Proc(p)
	p1 := run.T + 1
	est := pt.Proposal
	var halt model.PIDSet
	out := make([]Phase1Snapshot, 0, p1)
	for k := model.Round(1); int(k) <= p1; k++ {
		snap := Phase1Snapshot{Round: k, Est: est, Halt: halt}
		if int(k) > len(pt.Steps) || !pt.Steps[k-1].Completes {
			out = append(out, snap)
			continue
		}
		delivered := pt.Steps[k-1].Received
		roundMsgs := payload.OfRound(k, delivered)
		halt = halt.Union(fd.Suspected(run.N, k, delivered))
		for _, m := range roundMsgs {
			eh, ok := m.Payload.(payload.EstHalt)
			if !ok {
				continue
			}
			if eh.Halt.Has(p) {
				halt.Add(m.From)
			}
		}
		for _, m := range roundMsgs {
			eh, ok := m.Payload.(payload.EstHalt)
			if !ok || halt.Has(m.From) {
				continue
			}
			if eh.Est < est {
				est = eh.Est
			}
		}
		snap.Est, snap.Halt, snap.Completed = est, halt, true
		out = append(out, snap)
	}
	return out
}

// SentNewEstimates extracts the nE values actually broadcast in round t+2,
// per sender (only processes that sent a NEWESTIMATE message appear).
func SentNewEstimates(run *trace.Run) map[model.ProcessID]model.OptValue {
	out := make(map[model.ProcessID]model.OptValue)
	round := model.Round(run.T + 2)
	for i := range run.Procs {
		pt := &run.Procs[i]
		if int(round) > len(pt.Steps) || !pt.Steps[round-1].Sends {
			continue
		}
		ne, ok := pt.Steps[round-1].Sent.(payload.NewEstimate)
		if !ok {
			continue
		}
		out[pt.ID] = ne.NE
	}
	return out
}

// CheckElimination verifies Lemma 6 on a recorded A_{t+2} run: among all
// NEWESTIMATE messages sent in round t+2, there is at most one distinct
// non-⊥ value.
func CheckElimination(run *trace.Run) error {
	var (
		seen  model.Value
		found bool
	)
	for p, ne := range SentNewEstimates(run) {
		v, some := ne.Get()
		if !some {
			continue
		}
		if !found {
			seen, found = v, true
			continue
		}
		if v != seen {
			return fmt.Errorf("%w: p%d sent nE=%d while another process sent nE=%d", ErrElimination, p, v, seen)
		}
	}
	return nil
}

// CSets computes the sets C_0..C_{t+1} of the Lemma 6 proof for threshold
// c: C_0 is the set of processes proposing at most c, and C_k the set of
// processes that either crashed before completing round k or completed it
// with est ≤ c. The proof shows C_k grows by at least one process per
// round in any run where two processes send distinct non-⊥ new estimates;
// the tests verify the monotonicity (Observation O2) on real runs.
func CSets(run *trace.Run, c model.Value) []model.PIDSet {
	p1 := run.T + 1
	out := make([]model.PIDSet, p1+1)
	for i := range run.Procs {
		pt := &run.Procs[i]
		if pt.Proposal <= c {
			out[0].Add(pt.ID)
		}
		snaps := ReplayPhase1(run, pt.ID)
		for k := 1; k <= p1; k++ {
			snap := snaps[k-1]
			if !snap.Completed || snap.Est <= c {
				out[k].Add(pt.ID)
			}
		}
	}
	return out
}

// CheckSynchronousHalt verifies Claim 13.1 on a synchronous run: if any
// process appears in some Halt set at the end of round t+1, it crashed
// before completing round t+1. Together with |Halt| ≤ t it yields the
// paper's fast-decision property (Lemma 13).
func CheckSynchronousHalt(run *trace.Run) error {
	if run.GSR != 1 {
		return fmt.Errorf("core: CheckSynchronousHalt requires a synchronous run, GSR=%d", run.GSR)
	}
	last := model.Round(run.T + 1)
	var h model.PIDSet
	for i := range run.Procs {
		snaps := ReplayPhase1(run, run.Procs[i].ID)
		if snap := snaps[last-1]; snap.Completed {
			h = h.Union(snap.Halt)
		}
	}
	for _, p := range h.Members() {
		pt := run.Proc(p)
		completes := int(last) <= len(pt.Steps) && pt.Steps[last-1].Completes
		if completes {
			return fmt.Errorf("%w: p%d completed round %d yet is in H[%d]", ErrHaltClaim, p, last, last)
		}
	}
	return nil
}
