// Package core implements the paper's contributions: the matching
// algorithm A_{t+2} of Sect. 3 (Fig. 2) with its failure-free optimization
// (Sect. 5.2, Fig. 4) and ◇S adaptation (Sect. 5.1, Fig. 3), the fast
// eventually deciding algorithm A_{f+2} of Sect. 6 (Fig. 5), and the
// elimination-property machinery of Lemmas 6–13 as independently replayed
// run checkers.
package core

import (
	"fmt"

	"indulgence/internal/baseline"
	"indulgence/internal/fd"
	"indulgence/internal/model"
	"indulgence/internal/payload"
)

// Algorithm names reported by the constructors in this package.
const (
	AtPlus2Name  = "A_t+2"
	DiamondSName = "A_diamondS"
	AfPlus2Name  = "A_f+2"
)

// Options configures A_{t+2}.
type Options struct {
	// Underlying builds the independent consensus module C invoked when
	// the fast path fails (Fig. 2, lines 15–16). Defaults to the
	// Chandra–Toueg-style ◇S algorithm baseline.NewCT (footnote 7).
	Underlying model.Factory
	// FailureFreeFast enables the Fig. 4 optimization: global decision at
	// round 2 in failure-free, suspicion-free synchronous runs.
	FailureFreeFast bool
	// Phase1Rounds overrides the length of Phase 1 (default and paper
	// value: t+1). It exists only for the ablation experiments, which
	// demonstrate that shortening Phase 1 breaks the elimination property
	// and with it uniform agreement. Values other than t+1 are unsafe.
	Phase1Rounds int
	// UnsafeSkipResilienceCheck disables the t < n/2 constructor check
	// (and the underlying-factory probe). It exists solely for the
	// Sect. 1.1 resilience-price experiment, which runs A_{t+2} outside
	// its safe envelope to demonstrate the split-brain agreement
	// violation that makes a correct majority necessary.
	UnsafeSkipResilienceCheck bool
	// DisableHaltExchange drops the "p_j reported having suspected me"
	// rule from the Halt update (Fig. 2, line 33's second clause),
	// keeping only direct suspicions. Ablation only: the elimination
	// property then fails and agreement breaks under false suspicions
	// (see the ablation experiments for a three-process witness run).
	DisableHaltExchange bool
	// DetectorThreshold overrides the false-suspicion detector threshold
	// (Fig. 2, line 10: nE := ⊥ iff |Halt| > t). 0 selects the paper's
	// t. Ablation only: a larger threshold misses false suspicions and
	// breaks agreement; a smaller one misreports crashes as false
	// suspicions and forfeits the t+2 fast decision.
	DetectorThreshold int
	// name overrides the reported algorithm name (used by NewDiamondS).
	name string
}

// atPlus2 is algorithm A_{t+2} (Fig. 2). Phase 1 spans rounds 1..t+1:
// processes flood (est, Halt) and track suspicions symmetrically — p_j
// enters Halt_i if p_i missed p_j's round message, or if p_j reported
// having suspected p_i. Phase 2 is round t+2: a process that detected a
// false suspicion (|Halt| > t) broadcasts nE = ⊥, others broadcast their
// estimate; receiving only non-⊥ values decides, otherwise the process
// delegates to the underlying consensus C with proposal vc from round t+3
// on. Deciders flood DECIDE from round t+3 (with the Fig. 4 optimization,
// from round 3).
type atPlus2 struct {
	ctx      model.ProcessContext
	opts     Options
	p1       int // Phase-1 length (t+1 unless ablated)
	proposal model.Value

	est     model.Value
	halt    model.PIDSet
	vc      model.Value
	decided model.OptValue

	under model.Algorithm // underlying C, created lazily at round t+3
}

var _ model.Algorithm = (*atPlus2)(nil)

// New returns a Factory for A_{t+2} with the given options. It requires
// the indulgence resilience 0 < t < n/2 (for t = 0 the paper notes
// consensus is trivially solvable in one round; use the failure-free
// optimization or FloodSet instead).
func New(opts Options) model.Factory {
	return func(ctx model.ProcessContext, proposal model.Value) (model.Algorithm, error) {
		if err := ctx.Validate(); err != nil {
			return nil, err
		}
		if !ctx.MajorityCorrect() && !opts.UnsafeSkipResilienceCheck {
			return nil, fmt.Errorf("core: A_t+2 requires t < n/2, got t=%d n=%d", ctx.T, ctx.N)
		}
		o := opts
		if o.Underlying == nil {
			o.Underlying = baseline.NewCT()
		}
		p1 := o.Phase1Rounds
		if p1 <= 0 {
			p1 = ctx.T + 1
		}
		// Probe the underlying factory now so configuration errors
		// surface at construction rather than mid-run.
		if !o.UnsafeSkipResilienceCheck {
			if _, err := o.Underlying(ctx, proposal); err != nil {
				return nil, fmt.Errorf("core: underlying consensus: %w", err)
			}
		}
		return &atPlus2{
			ctx:      ctx,
			opts:     o,
			p1:       p1,
			proposal: proposal,
			est:      proposal,
			vc:       proposal,
		}, nil
	}
}

// Name implements model.Algorithm.
func (a *atPlus2) Name() string {
	if a.opts.name != "" {
		return a.opts.name
	}
	name := AtPlus2Name
	if a.opts.FailureFreeFast {
		name += "+ff"
	}
	if a.p1 != a.ctx.T+1 {
		name += fmt.Sprintf("[p1=%d]", a.p1)
	}
	if a.opts.DisableHaltExchange {
		name += "[nohaltx]"
	}
	if a.opts.DetectorThreshold != 0 {
		name += fmt.Sprintf("[thr=%d]", a.opts.DetectorThreshold)
	}
	return name
}

// threshold returns the false-suspicion detector threshold.
func (a *atPlus2) threshold() int {
	if a.opts.DetectorThreshold != 0 {
		return a.opts.DetectorThreshold
	}
	return a.ctx.T
}

// StartRound implements model.Algorithm.
func (a *atPlus2) StartRound(k model.Round) model.Payload {
	if v, ok := a.decided.Get(); ok {
		return payload.Decide{V: v}
	}
	switch {
	case int(k) <= a.p1:
		return payload.EstHalt{Est: a.est, Halt: a.halt}
	case int(k) == a.p1+1:
		// Beginning of round t+2: compute the new estimate. |Halt| > t
		// certifies a false suspicion somewhere (Fig. 2, line 10): either
		// some p_j ∈ Halt with self ∈ Halt_j falsely suspected us, or we
		// suspected more than t processes, of which at most t can have
		// crashed.
		nE := model.Bottom()
		if a.halt.Len() <= a.threshold() {
			nE = model.Some(a.est)
		}
		return payload.NewEstimate{NE: nE}
	default:
		return payload.Wrap{Inner: a.underlying().StartRound(a.innerRound(k))}
	}
}

// EndRound implements model.Algorithm.
func (a *atPlus2) EndRound(k model.Round, delivered []model.Message) {
	if !a.decided.IsBottom() {
		return
	}
	// DECIDE messages are honoured in any round: the paper sends them in
	// round t+3 and, with the Fig. 4 optimization, in round 3.
	if v, ok := payload.FindDecide(delivered); ok {
		a.decided = model.Some(v)
		return
	}
	switch {
	case int(k) <= a.p1:
		if a.opts.FailureFreeFast && k == 2 {
			if a.failureFreeFast(delivered) {
				return
			}
		}
		a.compute(k, delivered)
	case int(k) == a.p1+1:
		a.phase2(k, delivered)
	default:
		inner := make([]model.Message, 0, len(delivered))
		for _, m := range delivered {
			w, ok := m.Payload.(payload.Wrap)
			if !ok {
				continue
			}
			inner = append(inner, model.Message{
				From:    m.From,
				Round:   a.innerRound(m.Round),
				Payload: w.Inner,
			})
		}
		u := a.underlying()
		u.EndRound(a.innerRound(k), inner)
		if v, ok := u.Decision(); ok {
			a.decided = model.Some(v)
		}
	}
}

// compute is the Phase-1 state update (Fig. 2, lines 30–35): extend Halt
// with the processes missing from this round and with those that report
// having suspected us, then lower the estimate to the minimum over the
// round messages from non-halted senders.
func (a *atPlus2) compute(k model.Round, delivered []model.Message) {
	roundMsgs := payload.OfRound(k, delivered)
	a.halt = a.halt.Union(fd.Suspected(a.ctx.N, k, delivered))
	if !a.opts.DisableHaltExchange {
		for _, m := range roundMsgs {
			eh, ok := m.Payload.(payload.EstHalt)
			if !ok {
				continue
			}
			if eh.Halt.Has(a.ctx.Self) {
				a.halt.Add(m.From)
			}
		}
	}
	for _, m := range roundMsgs {
		eh, ok := m.Payload.(payload.EstHalt)
		if !ok || a.halt.Has(m.From) {
			continue
		}
		if eh.Est < a.est {
			a.est = eh.Est
		}
	}
}

// failureFreeFast is the Fig. 4 optimization, evaluated on the round-2
// receive set before the normal compute. If round-2 messages arrived from
// all n processes and none reports a suspicion, round 1 was a complete
// suspicion-free exchange: every estimate already equals the global
// minimum, so deciding on any received estimate is safe. If only a subset
// arrived but none reports a suspicion, the proposal vc for the underlying
// consensus is seeded with a received estimate. Returns true if a decision
// was taken.
func (a *atPlus2) failureFreeFast(delivered []model.Message) bool {
	roundMsgs := payload.OfRound(2, delivered)
	est := model.NoValue
	clean := true
	for _, m := range roundMsgs {
		eh, ok := m.Payload.(payload.EstHalt)
		if !ok || !eh.Halt.IsEmpty() {
			clean = false
			break
		}
		if est == model.NoValue || eh.Est < est {
			est = eh.Est
		}
	}
	if !clean || est == model.NoValue {
		return false
	}
	if len(roundMsgs) == a.ctx.N {
		a.decided = model.Some(est)
		return true
	}
	a.vc = est
	return false
}

// phase2 processes the round-(t+2) NEWESTIMATE exchange. By t-resilience
// at least n−t round messages arrived; by the elimination property
// (Lemma 6) they carry at most one distinct non-⊥ value.
func (a *atPlus2) phase2(k model.Round, delivered []model.Message) {
	roundMsgs := payload.OfRound(k, delivered)
	var (
		sawNE    bool
		sawBot   bool
		best     model.Value
		haveBest bool
	)
	for _, m := range roundMsgs {
		ne, ok := m.Payload.(payload.NewEstimate)
		if !ok {
			continue
		}
		sawNE = true
		v, some := ne.NE.Get()
		if !some {
			sawBot = true
			continue
		}
		if !haveBest || v < best {
			best, haveBest = v, true
		}
	}
	switch {
	case sawNE && !sawBot && haveBest:
		// Only non-⊥ new estimates: decide (Fig. 2, line 13).
		a.decided = model.Some(best)
	case haveBest:
		// Some non-⊥ value among ⊥s: propose it to C.
		a.vc = best
	default:
		// Every new estimate was ⊥ (or none arrived): vc keeps its
		// current value — the proposal, or the Fig. 4 seed.
	}
}

// underlying returns the underlying consensus instance, creating it with
// proposal vc on first use (round t+3, Fig. 2 line 15: proposeC(vc)).
func (a *atPlus2) underlying() model.Algorithm {
	if a.under == nil {
		u, err := a.opts.Underlying(a.ctx, a.vc)
		if err != nil {
			// The factory was probed at construction with the same
			// context; a failure here means a non-deterministic factory.
			// Fall back to a stalled instance: the process stops making
			// progress towards a decision but stays safe.
			u = stalled{name: "stalled"}
		}
		a.under = u
	}
	return a.under
}

// innerRound maps an outer round to the underlying algorithm's round
// numbering (outer round t+3 is C's round 1).
func (a *atPlus2) innerRound(k model.Round) model.Round {
	return k - model.Round(a.p1+1)
}

// Decision implements model.Algorithm.
func (a *atPlus2) Decision() (model.Value, bool) { return a.decided.Get() }

// stalled is a never-deciding placeholder algorithm (see underlying).
type stalled struct{ name string }

var _ model.Algorithm = stalled{}

func (s stalled) Name() string                          { return s.name }
func (s stalled) StartRound(model.Round) model.Payload  { return nil }
func (s stalled) EndRound(model.Round, []model.Message) {}
func (s stalled) Decision() (model.Value, bool)         { return 0, false }
