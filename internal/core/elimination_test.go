package core_test

import (
	"math/rand"
	"testing"

	"indulgence/internal/core"
	"indulgence/internal/model"
	"indulgence/internal/payload"
	"indulgence/internal/sched"
	"indulgence/internal/sim"
)

// tracedRun executes A_{t+2} with tracing on the given schedule.
func tracedRun(t *testing.T, factory model.Factory, s *sched.Schedule, p []model.Value) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{Synchrony: model.ES, Schedule: s, Proposals: p, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestReplayMatchesAlgorithm cross-validates the independent Phase-1
// replay against the implementation: the estimate a process sends in
// round k+1 must equal the replayed estimate after round k, and the Halt
// set likewise.
func TestReplayMatchesAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 60; i++ {
		n := 3 + rng.Intn(4)
		tt := 1 + rng.Intn((n-1)/2)
		gsr := model.Round(1 + rng.Intn(4))
		s := sched.RandomES(n, tt, gsr, sched.RandomOpts{Rng: rng})
		res := tracedRun(t, core.New(core.Options{}), s, props(n))
		run := res.Run
		for p := model.ProcessID(1); int(p) <= n; p++ {
			snaps := core.ReplayPhase1(run, p)
			pt := run.Proc(p)
			for k := 0; k < len(snaps); k++ {
				next := k + 1 // round k+2 in 1-based terms sends est after round k+1
				if next >= len(pt.Steps) || !pt.Steps[next].Sends {
					continue
				}
				eh, ok := pt.Steps[next].Sent.(payload.EstHalt)
				if !ok {
					continue
				}
				if !snaps[k].Completed {
					t.Fatalf("p%d sent in round %d without completing round %d", p, next+1, k+1)
				}
				if eh.Est != snaps[k].Est || eh.Halt != snaps[k].Halt {
					t.Fatalf("replay mismatch at p%d after round %d: sent (est=%d halt=%v), replayed (est=%d halt=%v)\nschedule %v",
						p, k+1, eh.Est, eh.Halt, snaps[k].Est, snaps[k].Halt, s)
				}
			}
		}
	}
}

// TestCSetsMonotone is Observation O2 of the elimination proof: the C_k
// sets only grow with k, and contain every minimum-value proposer from
// the start.
func TestCSetsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 60; i++ {
		n := 3 + rng.Intn(4)
		tt := 1 + rng.Intn((n-1)/2)
		s := sched.RandomES(n, tt, model.Round(1+rng.Intn(4)), sched.RandomOpts{Rng: rng})
		p := props(n)
		res := tracedRun(t, core.New(core.Options{}), s, p)
		for _, c := range []model.Value{1, 2, model.Value(n)} {
			sets := core.CSets(res.Run, c)
			if sets[0].IsEmpty() {
				t.Fatalf("C_0 empty for c=%d with proposals %v", c, p)
			}
			for k := 1; k < len(sets); k++ {
				if !sets[k-1].Diff(sets[k]).IsEmpty() {
					t.Fatalf("C_%d ⊄ C_%d: %v vs %v\nschedule %v", k-1, k, sets[k-1], sets[k], s)
				}
			}
		}
	}
}

// TestEliminationDetectsViolation feeds the checker the Halt-exchange
// ablation witness run, in which two distinct non-⊥ new estimates are
// broadcast — the checker must flag it.
func TestEliminationDetectsViolation(t *testing.T) {
	s := sched.DelayedSenderPrefix(3, 1, 3, 1)
	res := tracedRun(t, core.New(core.Options{DisableHaltExchange: true}), s, []model.Value{0, 1, 1})
	if err := core.CheckElimination(res.Run); err == nil {
		t.Fatal("elimination checker missed the ablated violation")
	}
	// The faithful algorithm passes on the same adversary.
	res = tracedRun(t, core.New(core.Options{}), s.Clone(), []model.Value{0, 1, 1})
	if err := core.CheckElimination(res.Run); err != nil {
		t.Fatalf("faithful run flagged: %v", err)
	}
}

func TestSynchronousHaltRequiresSynchronousRun(t *testing.T) {
	s := sched.DelayedSenderPrefix(3, 1, 2, 1)
	res := tracedRun(t, core.New(core.Options{}), s, []model.Value{0, 1, 1})
	if err := core.CheckSynchronousHalt(res.Run); err == nil {
		t.Fatal("checker must refuse non-synchronous runs")
	}
}

func TestSentNewEstimates(t *testing.T) {
	s := sched.New(3, 1)
	s.CrashSilent(2, 1)
	res := tracedRun(t, core.New(core.Options{}), s, []model.Value{5, 1, 7})
	nes := core.SentNewEstimates(res.Run)
	// p2 crashed in round 1 and never reached round t+2 = 3.
	if _, ok := nes[2]; ok {
		t.Fatal("crashed process reported a new estimate")
	}
	// p1 and p3 survived with |Halt| = 1 ≤ t: non-⊥ estimates.
	for _, p := range []model.ProcessID{1, 3} {
		ne, ok := nes[p]
		if !ok {
			t.Fatalf("p%d missing", p)
		}
		if v, some := ne.Get(); !some || v != 5 {
			t.Fatalf("p%d nE = %v, want Some(5)", p, ne)
		}
	}
}
