package layering_test

import (
	"sort"
	"strings"
	"testing"

	"indulgence/internal/analysis/analysistest"
	"indulgence/internal/analysis/layering"
)

func TestLayering(t *testing.T) {
	analysistest.Run(t, "testdata", layering.Analyzer,
		"indulgence/internal/sched",    // planted upward imports
		"indulgence/internal/nonesuch", // not in the table
	)
}

// TestTableIsDAG pins the table itself: every allowed import must name
// another table entry, and the allowed-import relation must be acyclic
// — the table cannot drift into documenting an impossible layering.
func TestTableIsDAG(t *testing.T) {
	for pkg, allowed := range layering.Table {
		for _, imp := range allowed {
			if _, ok := layering.Table[imp]; !ok {
				t.Errorf("table entry %q allows unknown package %q", pkg, imp)
			}
			if imp == pkg {
				t.Errorf("table entry %q allows importing itself", pkg)
			}
		}
	}

	// Kahn's algorithm: if some packages can never be peeled off, the
	// remaining subgraph contains a cycle.
	indeg := make(map[string]int, len(layering.Table))
	for pkg := range layering.Table {
		indeg[pkg] = len(layering.Table[pkg])
	}
	dependents := make(map[string][]string)
	for pkg, allowed := range layering.Table {
		for _, imp := range allowed {
			dependents[imp] = append(dependents[imp], pkg)
		}
	}
	var queue []string
	for pkg, d := range indeg {
		if d == 0 {
			queue = append(queue, pkg)
		}
	}
	sort.Strings(queue)
	peeled := 0
	for len(queue) > 0 {
		pkg := queue[0]
		queue = queue[1:]
		peeled++
		for _, dep := range dependents[pkg] {
			if indeg[dep]--; indeg[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if peeled != len(layering.Table) {
		var stuck []string
		for pkg, d := range indeg {
			if d > 0 {
				stuck = append(stuck, pkg)
			}
		}
		sort.Strings(stuck)
		t.Errorf("layering table contains an import cycle among: %s", strings.Join(stuck, ", "))
	}
}

// TestMetricsIsALeaf pins the introspection plane's place in the DAG:
// metrics may import no internal package (every instrumented layer
// names it, so any dependency it grew would ripple upward through the
// whole live stack), and each instrumented layer is allowed to report
// into it.
func TestMetricsIsALeaf(t *testing.T) {
	if allowed := layering.Table["metrics"]; len(allowed) != 0 {
		t.Errorf("metrics must stay a leaf, but allows %v", allowed)
	}
	for _, pkg := range []string{"fd", "transport", "journal", "adapt", "runtime",
		"service", "shard", "chaos"} {
		found := false
		for _, imp := range layering.Table[pkg] {
			if imp == "metrics" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s is not allowed to import metrics", pkg)
		}
	}
}

// TestNothingImportsExperiments pins the rule's encoding: no entry may
// list experiments as an allowed import.
func TestNothingImportsExperiments(t *testing.T) {
	for pkg, allowed := range layering.Table {
		for _, imp := range allowed {
			if imp == "experiments" {
				t.Errorf("table entry %q allows importing experiments", pkg)
			}
		}
	}
}
