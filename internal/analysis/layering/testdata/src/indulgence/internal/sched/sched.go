// Package sched is layering testdata: sched may import model, but the
// planted sim and experiments imports reach upward through the DAG.
package sched

import (
	"indulgence/internal/experiments" // want `layering violation: sched may not import experiments`
	"indulgence/internal/model"
	"indulgence/internal/sim" // want `layering violation: sched may not import sim`
)

var _ = model.Value(0)
var _ = sim.Run
var _ = experiments.E1
