package sched

// Test files may cross layers: asserting on internals from above is
// how white-box tests work.
import "indulgence/internal/experiments"

var _ = experiments.E1
