// Package nonesuch is layering testdata: an internal package absent
// from the layering table must be reported, so adding a package forces
// a layering decision.
package nonesuch // want `internal package "nonesuch" is not in the layering table`
