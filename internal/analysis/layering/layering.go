// Package layering enforces the repository's import DAG — the
// "Layering (who may import whom)" section of docs/ARCHITECTURE.md —
// mechanically. Table is the machine-readable form of that section:
// each internal package lists exactly the internal packages it may
// import, lower layers never name upper ones, and nothing below the
// root façade imports experiments. A package missing from the table is
// reported too, so growing the tree forces a deliberate layering
// decision instead of silently inheriting one.
package layering

import (
	"sort"
	"strings"

	"indulgence/internal/analysis"
)

// Table is the layering contract: internal package → the internal
// packages its non-test code may import. It mirrors (and is kept in
// lockstep with) docs/ARCHITECTURE.md's layering diagram; changing a
// layer means changing this table in the same commit, which is the
// point — the DAG is reviewed, never drifted.
var Table = map[string][]string{
	// Leaves: these import no other internal package. clock is the time
	// source injected everywhere, so everything may depend on it and it
	// may depend on nothing; wire's only dependencies are the payload
	// family it encodes; metrics is the instrumentation leaf the live
	// stack reports into, so like clock it sits below everything and
	// names nothing.
	"model":       {},
	"pool":        {},
	"stats":       {},
	"metrics":     {},
	"chaos/clock": {},

	"payload":  {"model"},
	"wire":     {"model", "payload"},
	"trace":    {"model", "wire"},
	"sched":    {"model"},
	"workload": {"model", "wire"},

	"sim":        {"model", "pool", "sched", "trace"},
	"fd":         {"chaos/clock", "metrics", "model", "trace"},
	"baseline":   {"fd", "model", "payload"},
	"core":       {"baseline", "fd", "model", "payload", "trace"},
	"check":      {"model", "sim", "wire"},
	"lowerbound": {"check", "model", "pool", "sched", "sim", "trace"},

	"adapt":     {"core", "metrics", "model"},
	"journal":   {"metrics", "stats", "wire"},
	"transport": {"chaos/clock", "metrics", "model", "wire"},
	"runtime":   {"chaos/clock", "core", "fd", "metrics", "model", "transport", "wire"},
	"service": {"adapt", "chaos/clock", "check", "core", "journal", "metrics",
		"model", "runtime", "stats", "transport", "wire"},
	"shard": {"chaos/clock", "journal", "metrics", "model", "service", "transport",
		"wire"},

	// chaos composes the whole live stack into the seeded sweep and
	// trace record/replay harness; experiments sits above everything
	// but chaos' CLI-facing siblings. Nothing may import experiments —
	// no table entry lists it, which is the rule's encoding.
	"chaos": {"adapt", "chaos/clock", "check", "core", "journal", "metrics",
		"model", "runtime", "service", "shard", "transport", "wire", "workload"},
	"experiments": {"adapt", "baseline", "chaos", "chaos/clock", "check", "core",
		"fd", "lowerbound", "model", "runtime", "sched", "service", "sim",
		"stats", "transport", "wire", "workload"},

	// The static-analysis suite itself: pure stdlib plus its own
	// framework, below everything it checks.
	"analysis":                 {},
	"analysis/directive":       {"analysis"},
	"analysis/unitchecker":     {"analysis"},
	"analysis/analysistest":    {"analysis"},
	"analysis/clockdiscipline": {"analysis", "analysis/directive"},
	"analysis/seedroll":        {"analysis", "analysis/directive"},
	"analysis/layering":        {"analysis"},
	"analysis/wiremarker":      {"analysis"},
	"analysis/taggedtimer":     {"analysis", "analysis/directive"},
}

// Analyzer is the layering rule.
var Analyzer = &analysis.Analyzer{
	Name: "layering",
	Doc: "enforce the ARCHITECTURE.md import DAG over internal packages: each may " +
		"import only the internal packages its layering.Table entry lists",
	Run: run,
}

// rel returns the table key for pkgpath ("" when pkgpath is outside the
// internal tree).
func rel(pkgpath string) string {
	if i := strings.Index(pkgpath, "internal/"); i >= 0 {
		return pkgpath[i+len("internal/"):]
	}
	return ""
}

func run(pass *analysis.Pass) error {
	self := rel(pass.PkgPath())
	if self == "" {
		return nil
	}
	// External test packages (pkg_test) are all test files, and test
	// files are exempt below; don't demand table entries for them.
	if strings.HasSuffix(self, "_test") {
		return nil
	}
	allowed, known := Table[self]
	if !known {
		pass.Reportf(pass.Files[0].Package,
			"internal package %q is not in the layering table: add it to "+
				"internal/analysis/layering.Table (and docs/ARCHITECTURE.md) with the "+
				"imports it is allowed", self)
		return nil
	}
	allowedSet := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		allowedSet[a] = true
	}
	for _, f := range pass.Files {
		// Test files may reach across layers to assert on internals;
		// the DAG binds what ships.
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			target := rel(strings.Trim(imp.Path.Value, `"`))
			if target == "" || target == self || allowedSet[target] {
				continue
			}
			want := append([]string(nil), allowed...)
			sort.Strings(want)
			pass.Reportf(imp.Pos(),
				"layering violation: %s may not import %s (allowed: %s) — "+
					"see internal/analysis/layering.Table",
				self, target, strings.Join(want, ", "))
		}
	}
	return nil
}
