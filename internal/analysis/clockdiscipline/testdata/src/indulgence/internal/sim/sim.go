// Package sim is clockdiscipline testdata: the lockstep simulator is
// not a live-stack package, so direct wall-clock reads are allowed.
package sim

import "time"

func allowed() time.Time {
	time.Sleep(time.Microsecond)
	return time.Now()
}
