package fd

import "time"

// Test files are exempt: tests may use wall time for deadlines.
func helperUsingWallTime() time.Time {
	time.Sleep(time.Microsecond)
	return time.Now()
}
