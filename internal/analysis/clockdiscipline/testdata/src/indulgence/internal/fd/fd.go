// Package fd is clockdiscipline testdata: a live-stack package with
// planted wall-clock reads, one waived site, and one waiver missing
// its justification.
package fd

import "time"

func bad() time.Time {
	time.Sleep(time.Millisecond) // want `direct time\.Sleep in a live-stack package`
	<-time.After(time.Second)    // want `direct time\.After in a live-stack package`
	t := time.NewTimer(1)        // want `direct time\.NewTimer in a live-stack package`
	_ = t
	_ = time.NewTicker(1)       // want `direct time\.NewTicker in a live-stack package`
	_ = time.Tick(1)            // want `direct time\.Tick in a live-stack package`
	time.AfterFunc(1, nil)      // want `direct time\.AfterFunc in a live-stack package`
	_ = time.Since(time.Time{}) // want `direct time\.Since in a live-stack package`
	_ = time.Until(time.Time{}) // want `direct time\.Until in a live-stack package`
	return time.Now()           // want `direct time\.Now in a live-stack package`
}

// escaped shows that references count, not only calls: assigning
// time.Now to a field smuggles the wall clock past the injection point.
func escaped() func() time.Time {
	return time.Now // want `direct time\.Now in a live-stack package`
}

func waived() time.Time {
	//indulgence:wallclock socket deadlines are kernel wall time, not schedulable
	deadline := time.Now()
	return deadline.Add(time.Now().Add(0).Sub(deadline)) //indulgence:wallclock same-line waiver form
}

func unjustified() {
	/*indulgence:wallclock*/ // want `waiver needs a justification`
	_ = time.Duration(0)     // arithmetic members stay allowed
}
