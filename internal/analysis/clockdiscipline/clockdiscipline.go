// Package clockdiscipline enforces the live stack's injected-clock
// contract: packages on the service path never read wall time from the
// time package directly, because the chaos harness must be able to run
// the exact production code on a virtual clock (docs/ARCHITECTURE.md,
// "The clock contract"). One stray time.Now is one schedule the
// virtual-time sweeps can neither compress nor reproduce.
package clockdiscipline

import (
	"go/ast"
	"strings"

	"indulgence/internal/analysis"
	"indulgence/internal/analysis/directive"
)

// Directive is the waiver name: //indulgence:wallclock <reason> on or
// above the offending line exempts a genuinely OS-bound call site
// (socket deadlines, wall-time wedge watchdogs).
const Directive = "wallclock"

// livePrefixes are the packages bound by the contract: everything the
// chaos harness runs on a virtual clock. internal/chaos/clock itself is
// exempt below — it is the one place wall time is allowed to enter,
// as the Real implementation of the Clock interface.
var livePrefixes = []string{
	"internal/fd",
	"internal/runtime",
	"internal/service",
	"internal/transport",
	"internal/adapt",
	"internal/shard",
	"internal/chaos",
}

// forbidden are the time-package members that read or schedule against
// the process's wall clock. Since and Until are included: each is a
// disguised time.Now read. Purely arithmetic members (Duration,
// ParseDuration, Unix, Date, ...) stay allowed.
var forbidden = map[string]string{
	"Now":       "clock.Clock.Now",
	"Sleep":     "a clock.Clock timer",
	"After":     "clock.Clock.NewTimer",
	"AfterFunc": "clock.Clock.AfterFunc",
	"NewTimer":  "clock.Clock.NewTimer",
	"NewTicker": "clock.Clock.NewTicker",
	"Tick":      "clock.Clock.NewTicker",
	"Since":     "clock.Clock.Since",
	"Until":     "clock.Clock.Now arithmetic",
}

// Analyzer is the clockdiscipline rule.
var Analyzer = &analysis.Analyzer{
	Name: "clockdiscipline",
	Doc: "forbid direct time.Now/Sleep/After/AfterFunc/NewTimer/NewTicker/Tick/Since/Until " +
		"in live-stack packages; time comes from an injected clock.Clock " +
		"(waive OS-bound sites with //indulgence:wallclock <reason>)",
	Run: run,
}

// applies reports whether the contract binds pkgpath.
func applies(pkgpath string) bool {
	if strings.HasSuffix(pkgpath, "internal/chaos/clock") {
		return false
	}
	for _, p := range livePrefixes {
		if strings.HasSuffix(pkgpath, p) || strings.Contains(pkgpath, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !applies(pass.PkgPath()) {
		return nil
	}
	waivers := directive.Collect(pass, Directive)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			replacement, bad := forbidden[sel.Sel.Name]
			if !bad || pass.ImportedPackage(sel.X) != "time" {
				return true
			}
			// References count as much as calls: `cfg.Now = time.Now`
			// smuggles the wall clock past the injection point exactly
			// like calling it would.
			if _, ok := waivers.Waived(pass.Fset, sel.Pos()); ok {
				return true
			}
			pass.Reportf(sel.Pos(),
				"direct time.%s in a live-stack package: take time from the injected clock (%s), "+
					"or waive an OS-bound site with //indulgence:wallclock <reason>",
				sel.Sel.Name, replacement)
			return true
		})
	}
	return nil
}
