package clockdiscipline_test

import (
	"testing"

	"indulgence/internal/analysis/analysistest"
	"indulgence/internal/analysis/clockdiscipline"
)

func TestClockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", clockdiscipline.Analyzer,
		"indulgence/internal/fd",  // live-stack: planted violations, waivers
		"indulgence/internal/sim", // not live-stack: wall time allowed
	)
}
