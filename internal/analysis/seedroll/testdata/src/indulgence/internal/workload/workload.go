// Package workload is seedroll testdata: a deterministic package with
// a planted math/rand import, package-level PRNG state and a global
// draw.
package workload

import (
	"math/rand" // want `math/rand imported in a deterministic package`
)

var rng = rand.New(rand.NewSource(1)) // want `package-level PRNG state`

func draw() int {
	return rng.Intn(10) + rand.Intn(10) // want `draw from math/rand's global generator`
}
