package stats

import "math/rand"

// Test files are exempt: seeding and global draws are fine in tests.
func shuffleForTest(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
