// Package stats is seedroll testdata: not a deterministic package, so
// the import is legal — but the global-generator draw and package-level
// state are still findings.
package stats

import "math/rand"

var shared = rand.NewSource(42) // want `package-level PRNG state`

func sample(n int) int {
	local := rand.New(rand.NewSource(7)) // locally-seeded: allowed here
	return local.Intn(n) + rand.Intn(n)  // want `draw from math/rand's global generator`
}
