// Package sched is seedroll testdata: a deterministic package whose
// math/rand import carries a justified waiver, with the generator
// threaded from the caller — no package state, no global draws.
package sched

import (
	//indulgence:prng generator sequence is part of the published schedule format
	"math/rand"
)

func generate(rng *rand.Rand) int {
	return rng.Intn(6)
}
