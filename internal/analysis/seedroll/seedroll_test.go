package seedroll_test

import (
	"testing"

	"indulgence/internal/analysis/analysistest"
	"indulgence/internal/analysis/seedroll"
)

func TestSeedRoll(t *testing.T) {
	analysistest.Run(t, "testdata", seedroll.Analyzer,
		"indulgence/internal/workload", // deterministic: import + state + draw flagged
		"indulgence/internal/sched",    // deterministic: waived import, threaded source
		"indulgence/internal/stats",    // non-deterministic: state + global draw flagged
	)
}
