// Package seedroll enforces the deterministic substrates' randomness
// contract: packages whose outputs must be a pure function of a seed
// draw every sample as a seed-hash roll (FNV over seed and coordinates,
// the chaos injector's and workload generator's idiom), never from
// math/rand — stateful PRNG draws make concurrent callers perturb each
// other's outcomes, which is exactly how "one seed, one schedule" dies.
// Additionally, no internal package may hold package-level PRNG state
// or draw from math/rand's implicit global generator: global state
// couples every caller in the process into one hidden sequence.
package seedroll

import (
	"go/ast"
	"strings"

	"indulgence/internal/analysis"
	"indulgence/internal/analysis/directive"
)

// Directive is the waiver name: //indulgence:prng <reason> exempts a
// deliberate, locally-seeded math/rand use (for example a generator
// whose published seeds depend on Go's math/rand sequence-compatibility
// promise).
const Directive = "prng"

// detPrefixes are the deterministic packages: math/rand may not be
// imported by their non-test code at all.
var detPrefixes = []string{
	"internal/workload",
	"internal/chaos",
	"internal/lowerbound",
	"internal/sched",
}

// globalFns are the math/rand members backed by the package-global
// generator. Constructors (New, NewSource, NewZipf) are excluded: a
// locally-seeded *rand.Rand threaded from a caller is only forbidden
// where the import itself is.
var globalFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
	// math/rand/v2 spellings of the same global draws.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true, "UintN": true,
	"Uint": true,
}

func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// Analyzer is the seedroll rule.
var Analyzer = &analysis.Analyzer{
	Name: "seedroll",
	Doc: "forbid math/rand imports in deterministic packages and package-level PRNG " +
		"state or global-generator draws anywhere internal; randomness is seed-hash " +
		"rolls or a caller-threaded seeded source (waive with //indulgence:prng <reason>)",
	Run: run,
}

func inDetPackage(pkgpath string) bool {
	for _, p := range detPrefixes {
		if strings.HasSuffix(pkgpath, p) || strings.Contains(pkgpath, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	pkgpath := pass.PkgPath()
	if !strings.Contains(pkgpath+"/", "/internal/") {
		return nil
	}
	waivers := directive.Collect(pass, Directive)
	det := inDetPackage(pkgpath)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		if det {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if !isRandPath(path) {
					continue
				}
				if _, ok := waivers.Waived(pass.Fset, imp.Pos()); ok {
					continue
				}
				pass.Reportf(imp.Pos(),
					"%s imported in a deterministic package: draw samples as seed-hash rolls "+
						"(see chaos.Network.roll / workload's rollers), or waive a deliberately "+
						"seeded use with //indulgence:prng <reason>", path)
			}
		}
		checkPackageState(pass, f, waivers)
		checkGlobalDraws(pass, f, waivers)
	}
	return nil
}

// checkPackageState reports package-level variables whose declared type
// names a math/rand type — PRNG state with package lifetime.
func checkPackageState(pass *analysis.Pass, f *ast.File, waivers *directive.Set) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if !mentionsRand(pass, vs.Type) && !anyMentionsRand(pass, vs.Values) {
				continue
			}
			if _, ok := waivers.Waived(pass.Fset, vs.Pos()); ok {
				continue
			}
			pass.Reportf(vs.Pos(),
				"package-level PRNG state: thread a seeded source from the caller or roll "+
					"seed-hashes per draw (waive with //indulgence:prng <reason>)")
		}
	}
}

// checkGlobalDraws reports selector uses of math/rand's global
// generator (rand.Intn, rand.Float64, ...).
func checkGlobalDraws(pass *analysis.Pass, f *ast.File, waivers *directive.Set) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !globalFns[sel.Sel.Name] || !isRandPath(pass.ImportedPackage(sel.X)) {
			return true
		}
		if _, ok := waivers.Waived(pass.Fset, sel.Pos()); ok {
			return true
		}
		pass.Reportf(sel.Pos(),
			"draw from math/rand's global generator: every caller in the process shares "+
				"(and perturbs) one hidden sequence — thread a seeded source instead "+
				"(waive with //indulgence:prng <reason>)")
		return true
	})
}

// mentionsRand reports whether the expression's syntax references the
// math/rand package (rand.Rand, *rand.Rand, rand.Source, rand.New(...)).
func mentionsRand(pass *analysis.Pass, e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && isRandPath(pass.ImportedPackage(sel.X)) {
			found = true
			return false
		}
		return !found
	})
	return found
}

func anyMentionsRand(pass *analysis.Pass, es []ast.Expr) bool {
	for _, e := range es {
		if mentionsRand(pass, e) {
			return true
		}
	}
	return false
}
