// Package unitchecker is the `go vet -vettool` driver of the analysis
// framework: it speaks the vet-tool protocol the go command defines —
// answer `-V=full` with a content-hashed version line, answer `-flags`
// with a JSON description of the tool's flags, and otherwise accept a
// single *.cfg argument naming a JSON "vet config" that describes one
// type-checked package unit (file lists, import map, export-data
// locations). The tool type-checks the unit against the compiler's
// export data, runs every enabled analyzer, prints diagnostics to
// stderr and exits 2 when any were found, and always writes the fact
// file the go command expects (empty — these analyzers keep no
// cross-package facts) so vet results cache cleanly.
//
// This is a standard-library re-statement of the protocol subset
// x/tools' unitchecker implements; the go command's side of the
// contract is in cmd/go/internal/work (buildVetConfig) and the
// analysistest subpackage covers the analyzers themselves, so this
// driver stays a thin shell whose one integration risk — protocol
// drift — is caught by CI actually invoking `go vet -vettool`.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"indulgence/internal/analysis"
)

// Config is the JSON schema of the vet config files the go command
// hands the tool, one per package unit. Field names and meanings match
// cmd/go's buildVetConfig; fields this driver has no use for are kept
// (and unmarshalled) so the schema documents the full contract.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the vet-tool protocol over analyzers and exits. The -V,
// -flags and per-analyzer enable flags are registered on the default
// flag set; with no enable flag set, every analyzer runs.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	flag.Var(versionFlag{}, "V", "print version and exit")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		name, doc := a.Name, a.Doc
		if enabled[name] != nil {
			log.Fatalf("duplicate analyzer name %q", name)
		}
		enabled[name] = flag.Bool(name, false, doc)
	}
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}

	// With no explicit selection, all analyzers run (go vet's default).
	any := false
	for _, on := range enabled {
		any = any || *on
	}
	var selected []*analysis.Analyzer
	for _, a := range analyzers {
		if !any || *enabled[a.Name] {
			selected = append(selected, a)
		}
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf(`invoking %s directly is unsupported; use "go vet -vettool=$(which %s)"`,
			progname, progname)
	}
	os.Exit(Run(args[0], selected))
}

// Run executes one package unit and returns the process exit code:
// 0 clean, 2 diagnostics reported. Protocol errors are fatal.
func Run(configFile string, analyzers []*analysis.Analyzer) int {
	cfg := readConfig(configFile)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg, 0)
			}
			log.Fatalf("%s: parse %s: %v", cfg.ImportPath, name, err)
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg, 0)
		}
		log.Fatalf("%s: typecheck: %v", cfg.ImportPath, err)
	}

	var diags []diagnostic
	if !cfg.VetxOnly && len(files) > 0 {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     files,
				Pkg:       pkg,
				TypesInfo: info,
				Report: func(d analysis.Diagnostic) {
					diags = append(diags, diagnostic{
						analyzer: a.Name,
						posn:     fset.Position(d.Pos).String(),
						message:  d.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				log.Fatalf("%s: analyzer %s: %v", cfg.ImportPath, a.Name, err)
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].posn < diags[j].posn })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.posn, d.message)
	}
	code := 0
	if len(diags) > 0 {
		code = 2
	}
	return writeVetx(cfg, code)
}

type diagnostic struct {
	analyzer, posn, message string
}

func readConfig(configFile string) *Config {
	data, err := os.ReadFile(configFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode vet config file %s: %v", configFile, err)
	}
	return cfg
}

// typecheck builds the unit's types against the export data the go
// command staged for its dependencies (cfg.PackageFile), resolving
// import paths through cfg.ImportMap exactly as the compiler did.
func typecheck(cfg *Config, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	compilerImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})
	goarch := os.Getenv("GOARCH")
	if goarch == "" {
		goarch = runtime.GOARCH
	}
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, goarch),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// writeVetx writes the (empty) fact file the go command requires even
// from fact-free tools — its presence is what lets vet cache the unit.
func writeVetx(cfg *Config, code int) int {
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Fatalf("write vetx: %v", err)
		}
	}
	return code
}

// printFlags answers the go command's `-flags` query: a JSON array
// describing every flag, from which vet validates user-supplied
// analyzer flags before passing them through.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements -V=full: the go command fingerprints the tool
// by hashing its own executable, and the printed line's shape (`name
// version devel ... buildID=hash`) is what cmd/go's toolID parser
// accepts.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h[:16]))
	os.Exit(0)
	return nil
}
