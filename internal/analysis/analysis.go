// Package analysis is the repository's static-analysis framework: a
// deliberately small, dependency-free re-statement of the
// golang.org/x/tools/go/analysis surface (Analyzer, Pass, Diagnostic)
// that the indulgence-vet analyzers are written against.
//
// The module vendors no third-party code, so the framework is built on
// the standard library alone: an Analyzer inspects one type-checked
// package per Pass and reports Diagnostics; drivers decide where
// packages come from. Two drivers exist — the unitchecker subpackage
// speaks the `go vet -vettool` protocol for CI, and the analysistest
// subpackage loads `testdata/src` packages with planted violations for
// the analyzers' own tests. Because the test driver type-checks against
// stub imports, analyzers must tolerate partially resolved type
// information: missing Uses entries mean "don't know", never panic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis rule: a named check with the
// contract it enforces documented in Doc (the first line is the
// summary shown by flag help).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and as the CLI flag
	// that enables or disables it. It must be a valid Go identifier.
	Name string
	// Doc documents the contract the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is one application of one analyzer to one package. The driver
// owns every field; analyzers only read them and call Report.
type Pass struct {
	// Analyzer is the rule being applied.
	Analyzer *Analyzer
	// Fset maps positions of every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package. Under the test driver it may be
	// only partially complete (stub imports), never nil.
	Pkg *types.Package
	// TypesInfo holds the type-checker's resolutions. Entries may be
	// missing when type checking was lenient; analyzers fall back to
	// syntax, never assume presence.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding: a position and a message. The message
// states the violated contract and, where one exists, the sanctioned
// alternative — diagnostics are how the contracts teach.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PkgPath returns the package path of the pass, with any " [pkg.test]"
// variant suffix the go command appends to test packages stripped, so
// path-scoped analyzers treat a package and its test variant alike.
func (p *Pass) PkgPath() string {
	path := p.Pkg.Path()
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path
}

// InTestFile reports whether pos lies in a _test.go file. Rules about
// production determinism and layering exempt test code; tests may
// sleep, seed PRNGs and reach across layers to assert on internals.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ImportedPackage resolves expr to the import path of the package it
// names, when expr is an identifier bound to an import (a PkgName).
// The empty string means "not a package name, or not resolved" — under
// lenient type checking an unresolved selector still records its
// package qualifier, so this stays reliable even against stub imports.
func (p *Pass) ImportedPackage(expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	obj := p.TypesInfo.Uses[id]
	if obj == nil {
		obj = p.TypesInfo.Defs[id]
	}
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
