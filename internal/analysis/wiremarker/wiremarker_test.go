package wiremarker_test

import (
	"testing"

	"indulgence/internal/analysis/analysistest"
	"indulgence/internal/analysis/wiremarker"
)

func TestWireMarker(t *testing.T) {
	analysistest.Run(t, "testdata", wiremarker.Analyzer,
		"indulgence/internal/wire")
}
