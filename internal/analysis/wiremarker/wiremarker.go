// Package wiremarker guards the wire format's frame-kind invariant.
// Every envelope and record family in internal/wire opens with a
// one-byte marker, and the whole family rests on one arithmetic fact:
// a version-0 frame begins with the zigzag varint of a sender in
// [1, MaxProcesses], which is always an even byte or a continuation
// byte (high bit set). Markers must therefore be odd, below 0x80, and
// pairwise distinct — any marker violating that can open (or be opened
// by) a frame of another kind, and the first-byte dispatch in the mux,
// journal recovery and trace codec silently mis-routes. The analyzer
// recomputes the invariant from the marker constant declarations
// themselves on every vet run.
package wiremarker

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"indulgence/internal/analysis"
)

// Analyzer is the wiremarker rule.
var Analyzer = &analysis.Analyzer{
	Name: "wiremarker",
	Doc: "require internal/wire's *Marker byte constants to be odd, below 0x80 and " +
		"pairwise distinct, so no marker can open a version-0 uvarint frame or " +
		"another marker's frame kind",
	Run: run,
}

// marker is one collected marker constant.
type marker struct {
	name  string
	value int64
	pos   token.Pos
}

func run(pass *analysis.Pass) error {
	if !strings.HasSuffix(pass.PkgPath(), "internal/wire") {
		return nil
	}
	var markers []marker
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasSuffix(name.Name, "Marker") {
						continue
					}
					if m, ok := constValue(pass, name); ok {
						markers = append(markers, m)
					} else {
						pass.Reportf(name.Pos(),
							"marker constant %s does not evaluate to an integer constant", name.Name)
					}
				}
			}
		}
	}
	byValue := make(map[int64]marker, len(markers))
	for _, m := range markers {
		switch {
		case m.value <= 0:
			pass.Reportf(m.pos,
				"wire marker %s = %d must be positive: zero or negative bytes cannot "+
					"open a frame", m.name, m.value)
		case m.value%2 == 0:
			pass.Reportf(m.pos,
				"wire marker %s = 0x%02x is even: an even first byte is a valid version-0 "+
					"zigzag-varint sender, so this marker's frames are indistinguishable "+
					"from bare messages", m.name, m.value)
		case m.value >= 0x80:
			pass.Reportf(m.pos,
				"wire marker %s = 0x%02x has the high bit set: it decodes as a uvarint "+
					"continuation byte and can open a version-0 frame", m.name, m.value)
		}
		if prev, dup := byValue[m.value]; dup {
			pass.Reportf(m.pos,
				"wire markers %s and %s are both 0x%02x: frame kinds must be decidable "+
					"from the first byte", prev.name, m.name, m.value)
		} else {
			byValue[m.value] = m
		}
	}
	return nil
}

// constValue resolves the declared constant's value via the type
// checker, so markers defined by expression (iota arithmetic, shifts)
// are evaluated exactly as the compiler sees them.
func constValue(pass *analysis.Pass, name *ast.Ident) (marker, bool) {
	obj := pass.TypesInfo.Defs[name]
	c, ok := obj.(*types.Const)
	if !ok {
		return marker{}, false
	}
	v, exact := constant.Int64Val(constant.ToInt(c.Val()))
	if !exact {
		return marker{}, false
	}
	return marker{name: name.Name, value: v, pos: name.Pos()}, true
}
