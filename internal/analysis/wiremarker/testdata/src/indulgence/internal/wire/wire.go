// Package wire is wiremarker testdata: a family of marker constants
// with planted violations of each clause of the frame-kind invariant.
package wire

const instanceMarker byte = 0x01

const (
	recordMarker byte = 0x03
	startMarker  byte = 0x05
)

// Markers defined by expression are evaluated like the compiler does.
const (
	traceHeaderMarker byte = 0x0B + 2*iota
	traceEventMarker
)

const evenMarker byte = 0x04 // want `is even`

const highMarker byte = 0x85 // want `high bit set`

const zeroMarker byte = 0 // want `must be positive`

const dupMarker byte = 0x03 // want `recordMarker and dupMarker are both 0x03`

// notAMarkerByte is ignored: only *Marker names are markers.
const notAMarkerByte byte = 0x04
