package taggedtimer_test

import (
	"testing"

	"indulgence/internal/analysis/analysistest"
	"indulgence/internal/analysis/taggedtimer"
)

func TestTaggedTimer(t *testing.T) {
	analysistest.Run(t, "testdata", taggedtimer.Analyzer,
		"indulgence/internal/chaos")
}
