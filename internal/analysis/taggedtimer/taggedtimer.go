// Package taggedtimer guards the third clause of the virtual clock's
// determinism contract inside the chaos fabric: callbacks that may
// collide at one virtual instant must be scheduled with
// AfterFuncTagged, whose tag — not goroutine interleaving — orders
// same-instant events. A bare AfterFunc inside internal/chaos gets tag
// zero implicitly; writing AfterFuncTagged(d, 0, f) instead states that
// choice, and writing a hash tag makes the ordering a pure function of
// the scenario. Either way the decision is visible at the call site,
// which is what the analyzer enforces.
package taggedtimer

import (
	"go/ast"
	"strings"

	"indulgence/internal/analysis"
	"indulgence/internal/analysis/directive"
)

// Directive is the waiver name: //indulgence:untagged <reason> exempts
// a call site that cannot tag (for example the fallback branch taken
// only on clocks without AfterFuncTagged, where real time breaks ties).
const Directive = "untagged"

// Analyzer is the taggedtimer rule.
var Analyzer = &analysis.Analyzer{
	Name: "taggedtimer",
	Doc: "inside the chaos fabric, schedule same-instant callbacks with " +
		"AfterFuncTagged (tag 0 for registration order, a seed-hash for scenario " +
		"order), never bare AfterFunc (waive with //indulgence:untagged <reason>)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pkgpath := pass.PkgPath()
	if !strings.HasSuffix(pkgpath, "internal/chaos") &&
		!strings.Contains(pkgpath, "internal/chaos/") {
		return nil
	}
	if strings.HasSuffix(pkgpath, "internal/chaos/clock") {
		// The clock package defines both methods; it is the contract,
		// not a consumer of it.
		return nil
	}
	waivers := directive.Collect(pass, Directive)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "AfterFunc" {
				return true
			}
			// time.AfterFunc is clockdiscipline's finding; this rule is
			// about clock-valued receivers.
			if pass.ImportedPackage(sel.X) == "time" {
				return true
			}
			if _, ok := waivers.Waived(pass.Fset, sel.Pos()); ok {
				return true
			}
			pass.Reportf(sel.Pos(),
				"bare AfterFunc in the chaos fabric: use AfterFuncTagged so the "+
					"same-instant ordering decision is explicit (tag 0 keeps registration "+
					"order; a seed-hash tag makes it a function of the scenario) — waive "+
					"non-virtual-clock fallbacks with //indulgence:untagged <reason>",
			)
			return true
		})
	}
	return nil
}
