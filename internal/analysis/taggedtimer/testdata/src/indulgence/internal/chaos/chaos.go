// Package chaos is taggedtimer testdata: inside the fabric,
// same-instant callbacks must carry an explicit ordering tag.
package chaos

import "time"

type clock interface {
	AfterFunc(d time.Duration, f func()) func()
	AfterFuncTagged(d time.Duration, tag uint64, f func()) func()
}

func schedule(clk clock, d time.Duration) {
	clk.AfterFunc(d, func() {}) // want `bare AfterFunc in the chaos fabric`

	clk.AfterFuncTagged(d, 0, func() {}) // explicit tag: fine

	//indulgence:untagged real clocks break their own ties
	clk.AfterFunc(d, func() {})
}

// timePackageCalls are clockdiscipline's findings, not this rule's.
func timePackageCalls() {
	time.AfterFunc(time.Second, func() {})
}
