// Package directive implements the waiver machinery shared by every
// directive-aware indulgence-vet analyzer.
//
// A waiver is a comment of the form
//
//	//indulgence:<name> <justification>
//
// placed on the offending line or on the line directly above it. The
// name binds the waiver to one analyzer's directive (wallclock, prng,
// untagged, ...), and the justification is mandatory: a waiver without
// a written reason is itself reported, so every escape hatch in the
// tree carries its rationale at the call site, reviewable in the diff
// that adds it. Analyzers opt in by calling Collect once per pass and
// consulting Waived before reporting; future analyzers get the whole
// mechanism by picking an unused directive name.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"indulgence/internal/analysis"
)

// Prefix opens every waiver comment.
const Prefix = "//indulgence:"

// Set holds the waivers of one directive name across one package.
type Set struct {
	name string
	// byLine maps filename → line → justification for each waiver.
	byLine map[string]map[int]string
}

// Collect gathers the pass's //indulgence:<name> directives. Waivers
// with an empty justification are reported immediately — an analyzer
// that collects its directive enforces the justification contract for
// free — and directives bound to other names are left for their own
// analyzers.
func Collect(pass *analysis.Pass, name string) *Set {
	s := &Set{name: name, byLine: make(map[string]map[int]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.collect(pass, c)
			}
		}
	}
	return s
}

func (s *Set) collect(pass *analysis.Pass, c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, Prefix)
	if !ok {
		// The block form /*indulgence:name reason*/ is accepted too,
		// for sites where another trailing comment follows.
		if text, ok = strings.CutPrefix(c.Text, "/*indulgence:"); !ok {
			return
		}
		text = strings.TrimSuffix(text, "*/")
	}
	dir, reason, _ := strings.Cut(text, " ")
	if dir != s.name {
		return
	}
	reason = strings.TrimSpace(reason)
	if reason == "" {
		pass.Reportf(c.Pos(), "%s%s waiver needs a justification: //indulgence:%s <reason>",
			Prefix, s.name, s.name)
		return
	}
	posn := pass.Fset.Position(c.Pos())
	lines := s.byLine[posn.Filename]
	if lines == nil {
		lines = make(map[int]string)
		s.byLine[posn.Filename] = lines
	}
	lines[posn.Line] = reason
}

// Waived reports whether pos is covered by a waiver: one on the same
// source line (a trailing comment) or on the line directly above (a
// leading comment). The justification is returned for analyzers that
// want to surface it.
func (s *Set) Waived(fset *token.FileSet, pos token.Pos) (reason string, ok bool) {
	posn := fset.Position(pos)
	lines := s.byLine[posn.Filename]
	if lines == nil {
		return "", false
	}
	if r, ok := lines[posn.Line]; ok {
		return r, true
	}
	if r, ok := lines[posn.Line-1]; ok {
		return r, true
	}
	return "", false
}
