// Package analysistest runs an analyzer over packages of planted
// violations and checks its diagnostics against // want expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library alone.
//
// Layout: testdata/src/<importpath>/*.go holds one package per
// directory, the directory path below src doubling as the import path
// (path-scoped analyzers are tested under their real prefixes, e.g.
// src/indulgence/internal/fd). Each line that should be reported
// carries a trailing comment
//
//	// want "regexp" ["regexp" ...]
//
// and the harness fails on any diagnostic without a matching want on
// its line, and any want no diagnostic matched.
//
// Type checking is lenient by design: imports resolve to empty stub
// packages and type errors are swallowed, so testdata needs no
// buildable dependencies. Analyzers therefore see exactly the partial
// information the framework contract guarantees them — package-name
// resolutions and constant values, not cross-package method sets.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"indulgence/internal/analysis"
)

// Run applies a to each package under dir/src and checks expectations.
// pkgpaths name the packages (directories below src) to load.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, pkg := range pkgpaths {
		runOne(t, dir, a, pkg)
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	pkgdir := filepath.Join(dir, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(pkgdir)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgdir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: parse %s: %v", a.Name, e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files in %s", a.Name, pkgdir)
	}

	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer: &stubImporter{stubs: make(map[string]*types.Package)},
		Error:    func(error) {}, // lenient: stub imports guarantee errors
	}
	pkg, _ := conf.Check(pkgpath, fset, files, info) // errors swallowed above
	if pkg == nil {
		pkg = types.NewPackage(pkgpath, files[0].Name.Name)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: run on %s: %v", a.Name, pkgpath, err)
	}
	check(t, a.Name, pkgpath, fset, files, diags)
}

// stubImporter resolves every import to an empty, complete package, so
// package qualifiers still resolve to PkgNames without any dependency
// being buildable.
type stubImporter struct{ stubs map[string]*types.Package }

var _ types.Importer = (*stubImporter)(nil)

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := si.stubs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	si.stubs[path] = p
	return p, nil
}

// expectation is one parsed // want pattern.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// parseWants extracts the expectations from every comment.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					if rest[0] != '"' && rest[0] != '`' {
						t.Fatalf("%s:%d: malformed // want operand %q", posn.Filename, posn.Line, rest)
					}
					lit, remainder, err := cutString(rest)
					if err != nil {
						t.Fatalf("%s:%d: %v in %q", posn.Filename, posn.Line, err, rest)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", posn.Filename, posn.Line, err)
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re})
					rest = strings.TrimSpace(remainder)
				}
			}
		}
	}
	return wants
}

// cutString splits one leading Go string literal (quoted or backquoted)
// off s, returning its value and the remainder.
func cutString(s string) (lit, rest string, err error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			lit, err := strconv.Unquote(s[:i+1])
			return lit, s[i+1:], err
		}
	}
	return "", "", strconv.ErrSyntax
}

// check matches diagnostics against expectations, failing on surplus
// of either kind.
func check(t *testing.T, name, pkgpath string, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: %s: unexpected diagnostic at %s:%d: %s",
				name, pkgpath, posn.Filename, posn.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s: no diagnostic at %s:%d matched %q",
				name, pkgpath, w.file, w.line, w.re)
		}
	}
}
