package fd

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"indulgence/internal/model"
	"indulgence/internal/payload"
	"indulgence/internal/trace"
)

func TestSuspectedAndLeader(t *testing.T) {
	msgs := []model.Message{
		{From: 2, Round: 3, Payload: payload.Estimate{Est: 1}},
		{From: 4, Round: 3, Payload: payload.Estimate{Est: 2}},
		{From: 1, Round: 2, Payload: payload.Estimate{Est: 3}}, // delayed, ignored
	}
	sus := Suspected(4, 3, msgs)
	if !sus.Has(1) || !sus.Has(3) || sus.Has(2) || sus.Has(4) {
		t.Fatalf("suspected = %v", sus)
	}
	if got := HeardInRound(3, msgs); got.Len() != 2 {
		t.Fatalf("heard = %v", got)
	}
	if l := Leader(3, msgs); l != 2 {
		t.Fatalf("leader = %d", l)
	}
	if l := Leader(9, msgs); l != 0 {
		t.Fatalf("leader of empty round = %d", l)
	}
}

// syntheticRun builds a trace where p3 crashes in round 2 and p1 falsely
// suspects p2 in round 1 (message delayed), with GSR 2 and 3 rounds.
func syntheticRun() *trace.Run {
	est := func(from model.ProcessID, k model.Round) model.Message {
		return model.Message{From: from, Round: k, Payload: payload.Estimate{Est: model.Value(from)}}
	}
	run := &trace.Run{
		N: 3, T: 1, Synchrony: model.ES, Algorithm: "synthetic", GSR: 2, Rounds: 3,
		Procs: []trace.ProcessTrace{
			{ID: 1, Proposal: 1},
			{ID: 2, Proposal: 2},
			{ID: 3, Proposal: 3, CrashRound: 2},
		},
	}
	// Round 1: p1 misses p2 (delayed); everyone else hears everyone.
	run.Procs[0].Steps = append(run.Procs[0].Steps, trace.Step{
		Round: 1, Sent: payload.Estimate{Est: 1}, Sends: true, Completes: true,
		Received: []model.Message{est(1, 1), est(3, 1)},
	})
	run.Procs[1].Steps = append(run.Procs[1].Steps, trace.Step{
		Round: 1, Sent: payload.Estimate{Est: 2}, Sends: true, Completes: true,
		Received: []model.Message{est(1, 1), est(2, 1), est(3, 1)},
	})
	run.Procs[2].Steps = append(run.Procs[2].Steps, trace.Step{
		Round: 1, Sent: payload.Estimate{Est: 3}, Sends: true, Completes: true,
		Received: []model.Message{est(1, 1), est(2, 1), est(3, 1)},
	})
	// Round 2: p3 crashes silently (sends nothing on).
	run.Procs[0].Steps = append(run.Procs[0].Steps, trace.Step{
		Round: 2, Sent: payload.Estimate{Est: 1}, Sends: true, Completes: true,
		Received: []model.Message{est(1, 2), est(2, 2), est(2, 1)},
	})
	run.Procs[1].Steps = append(run.Procs[1].Steps, trace.Step{
		Round: 2, Sent: payload.Estimate{Est: 2}, Sends: true, Completes: true,
		Received: []model.Message{est(1, 2), est(2, 2)},
	})
	run.Procs[2].Steps = append(run.Procs[2].Steps, trace.Step{
		Round: 2, Sent: payload.Estimate{Est: 3}, Sends: true, Completes: false,
	})
	// Round 3: synchronous among survivors.
	for i := 0; i < 2; i++ {
		run.Procs[i].Steps = append(run.Procs[i].Steps, trace.Step{
			Round: 3, Sent: payload.Estimate{Est: model.Value(i + 1)}, Sends: true, Completes: true,
			Received: []model.Message{est(1, 3), est(2, 3)},
		})
	}
	return run
}

func TestSimulateOutput(t *testing.T) {
	run := syntheticRun()
	out := Simulate(run)
	// Round 1: p1 suspected p2 and p3... it heard p1 and p3 only.
	if got := out.Suspects[0][0]; !got.Has(2) || got.Has(3) {
		t.Fatalf("p1 round-1 suspicions: %v", got)
	}
	// Round 2: p2 heard p1, p2 — suspects p3.
	if got := out.Suspects[1][1]; !got.Has(3) || got.Has(1) {
		t.Fatalf("p2 round-2 suspicions: %v", got)
	}
	// Crashed process has no completed round 2.
	if out.Completed[2][1] {
		t.Fatal("crashed process marked as completing")
	}
}

func TestCheckDiamondPOK(t *testing.T) {
	run := syntheticRun()
	out := Simulate(run)
	if err := CheckDiamondP(run, out); err != nil {
		t.Fatalf("dP should hold: %v", err)
	}
	if err := CheckDiamondS(run, out); err != nil {
		t.Fatalf("dS should hold: %v", err)
	}
}

func TestCheckDiamondPViolations(t *testing.T) {
	run := syntheticRun()
	out := Simulate(run)
	// Tamper: after stabilization, p1 suspects correct p2.
	out.Suspects[0][2].Add(2)
	if err := CheckDiamondP(run, out); !errors.Is(err, ErrStrongAccuracy) {
		t.Fatalf("err = %v, want accuracy violation", err)
	}
	// Tamper: p1 stops suspecting the crashed p3 after stabilization.
	out2 := Simulate(run)
	out2.Suspects[0][2].Remove(3)
	if err := CheckDiamondP(run, out2); !errors.Is(err, ErrCompleteness) {
		t.Fatalf("err = %v, want completeness violation", err)
	}
	// Tamper for dS: every correct process suspected at some point after
	// stabilization.
	out3 := Simulate(run)
	out3.Suspects[0][2].Add(2)
	out3.Suspects[1][2].Add(1)
	if err := CheckDiamondS(run, out3); !errors.Is(err, ErrWeakAccuracy) {
		t.Fatalf("err = %v, want weak-accuracy violation", err)
	}
}

func TestTimeoutDetector(t *testing.T) {
	d := NewTimeoutDetector(10 * time.Millisecond)
	if got := d.TimeoutFor(1); got != 10*time.Millisecond {
		t.Fatalf("initial timeout %v", got)
	}
	d.Suspect(1)
	if !d.Suspected().Has(1) {
		t.Fatal("suspect not recorded")
	}
	// Hearing from a suspected process unsuspects it and doubles its
	// timeout (the adaptive step that yields eventual accuracy).
	d.Heard(1)
	if d.Suspected().Has(1) {
		t.Fatal("false suspicion not cleared")
	}
	if got := d.TimeoutFor(1); got != 20*time.Millisecond {
		t.Fatalf("timeout after false suspicion %v", got)
	}
	// Hearing from an unsuspected process changes nothing.
	d.Heard(2)
	if got := d.TimeoutFor(2); got != 10*time.Millisecond {
		t.Fatalf("unsuspected timeout grew to %v", got)
	}
	// Cap at 64x base.
	for i := 0; i < 20; i++ {
		d.Suspect(1)
		d.Heard(1)
	}
	if got := d.TimeoutFor(1); got != 640*time.Millisecond {
		t.Fatalf("cap violated: %v", got)
	}
}

func TestTimeoutDetectorSuspectEvents(t *testing.T) {
	d := NewTimeoutDetector(10 * time.Millisecond)
	if got := d.SuspectEvents(); got != 0 {
		t.Fatalf("fresh detector reports %d events", got)
	}
	// Re-suspecting an already-suspected process is not a new event (the
	// round loop calls Suspect on every ticker tick while p is unheard).
	d.Suspect(1)
	d.Suspect(1)
	d.Suspect(2)
	if got := d.SuspectEvents(); got != 2 {
		t.Fatalf("events = %d, want 2", got)
	}
	// A trusted-again process suspected anew is a new event.
	d.Heard(1)
	d.Suspect(1)
	if got := d.SuspectEvents(); got != 3 {
		t.Fatalf("events after re-suspicion = %d, want 3", got)
	}
}

func TestTimeoutDetectorConcurrent(t *testing.T) {
	d := NewTimeoutDetector(time.Millisecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1000; i++ {
			d.Suspect(model.ProcessID(rng.Intn(5) + 1))
		}
	}()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		d.Heard(model.ProcessID(rng.Intn(5) + 1))
		_ = d.Suspected()
		_ = d.TimeoutFor(3)
	}
	<-done
}
