package fd

import (
	"sync"
	"time"

	"indulgence/internal/chaos/clock"
	"indulgence/internal/metrics"
	"indulgence/internal/model"
)

// TimeoutDetector is the live runtime's unreliable failure detector: a
// process is suspected when it has not been heard from within its current
// timeout. Every time a suspicion is revealed to be false — a message from
// a suspected process arrives — that process's timeout doubles, so in any
// eventually synchronous execution each process is falsely suspected only
// finitely often: the detector converges to ◇P, exactly the behaviour the
// paper's ES model abstracts. The zero value is not usable; construct with
// NewTimeoutDetector.
//
// The detector measures elapsed time on an injected clock: under the
// chaos harness's virtual clock, suspicion timing is simulated-time
// exact instead of wall-clock approximate. The round loop marks the
// start of each receive phase with BeginRound and asks SuspectOverdue
// to raise whatever suspicions the elapsed round time justifies.
type TimeoutDetector struct {
	clk       clock.Clock
	mu        sync.Mutex
	base      time.Duration
	max       time.Duration
	timeouts  map[model.ProcessID]time.Duration
	suspected model.PIDSet
	events    int
	roundAt   time.Time
	mEvents   *metrics.Counter
}

// NewTimeoutDetector returns a detector with the given initial per-process
// timeout, measuring on the wall clock. Timeouts double on each false
// suspicion, capped at 64× the base.
func NewTimeoutDetector(base time.Duration) *TimeoutDetector {
	return NewTimeoutDetectorClock(base, clock.Real{})
}

// NewTimeoutDetectorClock is NewTimeoutDetector on an explicit clock.
func NewTimeoutDetectorClock(base time.Duration, clk clock.Clock) *TimeoutDetector {
	return &TimeoutDetector{
		clk:      clock.Or(clk),
		base:     base,
		max:      64 * base,
		timeouts: make(map[model.ProcessID]time.Duration),
	}
}

// Instrument attaches a suspicion-event counter: every trusted-to-
// suspected transition the detector raises also increments c. A nil
// counter (the uninstrumented default) costs nothing.
func (d *TimeoutDetector) Instrument(c *metrics.Counter) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mEvents = c
}

// BeginRound marks the start of a receive phase: SuspectOverdue measures
// per-process timeouts from this instant.
func (d *TimeoutDetector) BeginRound() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.roundAt = d.clk.Now()
}

// SuspectOverdue suspects every process in 1..n — except self and the
// already-heard set — whose timeout has expired since BeginRound. The
// round loop calls it on its polling tick; under a virtual clock the
// elapsed time is exact, so a run's suspicion pattern is a function of
// the schedule, not of host scheduling jitter.
func (d *TimeoutDetector) SuspectOverdue(n int, self model.ProcessID, heard model.PIDSet) {
	d.mu.Lock()
	defer d.mu.Unlock()
	elapsed := d.clk.Now().Sub(d.roundAt)
	for q := model.ProcessID(1); int(q) <= n; q++ {
		if q == self || heard.Has(q) {
			continue
		}
		t, ok := d.timeouts[q]
		if !ok {
			t = d.base
		}
		if elapsed >= t {
			if !d.suspected.Has(q) {
				d.events++
				d.mEvents.Inc()
			}
			d.suspected.Add(q)
		}
	}
}

// TimeoutFor returns the current timeout for p.
func (d *TimeoutDetector) TimeoutFor(p model.ProcessID) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t, ok := d.timeouts[p]; ok {
		return t
	}
	return d.base
}

// Suspect marks p as suspected (its timeout expired unheard).
func (d *TimeoutDetector) Suspect(p model.ProcessID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.suspected.Has(p) {
		d.events++
		d.mEvents.Inc()
	}
	d.suspected.Add(p)
}

// SuspectEvents returns how many distinct suspicion events the detector
// has raised: transitions of a process from trusted to suspected, each
// counted once per transition (a process unsuspected by Heard and
// suspected again counts again). The adaptive control plane reads this
// as its per-instance trust signal.
func (d *TimeoutDetector) SuspectEvents() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.events
}

// Heard records a message from p. If p was suspected, the suspicion was
// false: p is unsuspected and its timeout doubles.
func (d *TimeoutDetector) Heard(p model.ProcessID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.suspected.Has(p) {
		return
	}
	d.suspected.Remove(p)
	t, ok := d.timeouts[p]
	if !ok {
		t = d.base
	}
	t *= 2
	if t > d.max {
		t = d.max
	}
	d.timeouts[p] = t
}

// Suspected returns the current suspicion set.
func (d *TimeoutDetector) Suspected() model.PIDSet {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suspected
}
