package fd

import (
	"sync"
	"time"

	"indulgence/internal/model"
)

// TimeoutDetector is the live runtime's unreliable failure detector: a
// process is suspected when it has not been heard from within its current
// timeout. Every time a suspicion is revealed to be false — a message from
// a suspected process arrives — that process's timeout doubles, so in any
// eventually synchronous execution each process is falsely suspected only
// finitely often: the detector converges to ◇P, exactly the behaviour the
// paper's ES model abstracts. The zero value is not usable; construct with
// NewTimeoutDetector.
type TimeoutDetector struct {
	mu        sync.Mutex
	base      time.Duration
	max       time.Duration
	timeouts  map[model.ProcessID]time.Duration
	suspected model.PIDSet
	events    int
}

// NewTimeoutDetector returns a detector with the given initial per-process
// timeout. Timeouts double on each false suspicion, capped at 64× the
// base.
func NewTimeoutDetector(base time.Duration) *TimeoutDetector {
	return &TimeoutDetector{
		base:     base,
		max:      64 * base,
		timeouts: make(map[model.ProcessID]time.Duration),
	}
}

// TimeoutFor returns the current timeout for p.
func (d *TimeoutDetector) TimeoutFor(p model.ProcessID) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t, ok := d.timeouts[p]; ok {
		return t
	}
	return d.base
}

// Suspect marks p as suspected (its timeout expired unheard).
func (d *TimeoutDetector) Suspect(p model.ProcessID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.suspected.Has(p) {
		d.events++
	}
	d.suspected.Add(p)
}

// SuspectEvents returns how many distinct suspicion events the detector
// has raised: transitions of a process from trusted to suspected, each
// counted once per transition (a process unsuspected by Heard and
// suspected again counts again). The adaptive control plane reads this
// as its per-instance trust signal.
func (d *TimeoutDetector) SuspectEvents() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.events
}

// Heard records a message from p. If p was suspected, the suspicion was
// false: p is unsuspected and its timeout doubles.
func (d *TimeoutDetector) Heard(p model.ProcessID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.suspected.Has(p) {
		return
	}
	d.suspected.Remove(p)
	t, ok := d.timeouts[p]
	if !ok {
		t = d.base
	}
	t *= 2
	if t > d.max {
		t = d.max
	}
	d.timeouts[p] = t
}

// Suspected returns the current suspicion set.
func (d *TimeoutDetector) Suspected() model.PIDSet {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suspected
}
