// Package fd implements the failure-detector machinery of Sect. 4 of the
// paper. In the round-based eventually synchronous model ES, an unreliable
// failure detector is *simulated* from receipt patterns: after receiving
// the messages of round k, the simulated output at a process is the set of
// processes from which no round-k message was received in round k. The
// package provides this simulation over recorded runs, property checkers
// for the ◇P and ◇S axioms (strong completeness, eventual strong/weak
// accuracy), and the Ω leader simulation of footnote 10 (minimum identity
// among the senders heard in the current round). A timeout-based detector
// for the live runtime lives in timeout.go.
package fd

import (
	"errors"
	"fmt"

	"indulgence/internal/model"
	"indulgence/internal/trace"
)

// Suspected returns the simulated failure-detector output after the
// receive phase of round k in a system of n processes: the set of
// processes from which none of the delivered messages is a round-k
// message. It is the helper every round-based algorithm in this repository
// uses to compute its suspicions (a process never suspects itself by
// construction, since self-delivery is always in-round).
func Suspected(n int, k model.Round, delivered []model.Message) model.PIDSet {
	heard := HeardInRound(k, delivered)
	return model.FullPIDSet(n).Diff(heard)
}

// HeardInRound returns the senders of the round-k messages among delivered.
func HeardInRound(k model.Round, delivered []model.Message) model.PIDSet {
	var heard model.PIDSet
	for _, m := range delivered {
		if m.Round == k {
			heard.Add(m.From)
		}
	}
	return heard
}

// Leader returns the Ω output simulated per footnote 10 of the paper: the
// minimum process identity among the senders of round-k messages, or 0 if
// none were received (impossible under t-resilience, since a process always
// hears itself).
func Leader(k model.Round, delivered []model.Message) model.ProcessID {
	heard := HeardInRound(k, delivered)
	members := heard.Members()
	if len(members) == 0 {
		return 0
	}
	return members[0]
}

// Output is the simulated failure-detector history of one run: for every
// process p and completed round k, Suspects[p-1][k-1] is the set of
// processes p suspected in round k. Rounds a process did not complete hold
// the empty set and are flagged in Completed.
type Output struct {
	// N is the system size.
	N int
	// Suspects[p-1][k-1] is p's simulated FD output after round k.
	Suspects [][]model.PIDSet
	// Completed[p-1][k-1] reports whether p completed round k.
	Completed [][]bool
}

// Simulate computes the Sect. 4 simulated failure-detector history of a
// recorded run.
func Simulate(run *trace.Run) *Output {
	out := &Output{
		N:         run.N,
		Suspects:  make([][]model.PIDSet, run.N),
		Completed: make([][]bool, run.N),
	}
	for i := range run.Procs {
		pt := &run.Procs[i]
		out.Suspects[i] = make([]model.PIDSet, run.Rounds)
		out.Completed[i] = make([]bool, run.Rounds)
		for _, st := range pt.Steps {
			if !st.Completes || int(st.Round) > int(run.Rounds) {
				continue
			}
			out.Completed[i][st.Round-1] = true
			out.Suspects[i][st.Round-1] = Suspected(run.N, st.Round, st.Received)
		}
	}
	return out
}

// Property-checking errors.
var (
	// ErrCompleteness reports a strong-completeness violation: a crashed
	// process was not permanently suspected by some correct process after
	// the stabilized suffix.
	ErrCompleteness = errors.New("fd: strong completeness violated")
	// ErrStrongAccuracy reports an eventual-strong-accuracy violation: a
	// correct process was suspected by a correct process after the
	// stabilized suffix.
	ErrStrongAccuracy = errors.New("fd: eventual strong accuracy violated")
	// ErrWeakAccuracy reports an eventual-weak-accuracy violation: no
	// correct process goes permanently unsuspected by all correct
	// processes after the stabilized suffix.
	ErrWeakAccuracy = errors.New("fd: eventual weak accuracy violated")
)

// stableFrom returns the first round from which the run is "stabilized"
// for FD purposes: at or after the GSR and strictly after every crash, so
// that post-suffix suspicions must exactly match the crashed set.
func stableFrom(run *trace.Run) model.Round {
	k := run.GSR
	for i := range run.Procs {
		if cr := run.Procs[i].CrashRound; cr > 0 && cr+1 > k {
			k = cr + 1
		}
	}
	return k
}

// CheckDiamondP verifies that the simulated output satisfies the ◇P axioms
// on this run: from the stabilized suffix on, every correct process
// suspects exactly the crashed processes (strong completeness + eventual
// strong accuracy). The paper's Sect. 4 argues precisely this for the
// ES simulation.
func CheckDiamondP(run *trace.Run, out *Output) error {
	from := stableFrom(run)
	crashed := model.FullPIDSet(run.N).Diff(correctSet(run))
	for i := range run.Procs {
		if !run.Procs[i].Correct() {
			continue
		}
		for k := from; k <= run.Rounds; k++ {
			if !out.Completed[i][k-1] {
				continue
			}
			sus := out.Suspects[i][k-1]
			if missing := crashed.Diff(sus); !missing.IsEmpty() {
				return fmt.Errorf("%w: p%d does not suspect crashed %v in round %d",
					ErrCompleteness, i+1, missing, k)
			}
			if extra := sus.Diff(crashed); !extra.IsEmpty() {
				return fmt.Errorf("%w: p%d suspects correct %v in round %d",
					ErrStrongAccuracy, i+1, extra, k)
			}
		}
	}
	return nil
}

// CheckDiamondS verifies the ◇S axioms on this run: strong completeness
// (as for ◇P) plus eventual weak accuracy — some correct process is never
// suspected by any correct process from the stabilized suffix on.
func CheckDiamondS(run *trace.Run, out *Output) error {
	from := stableFrom(run)
	crashed := model.FullPIDSet(run.N).Diff(correctSet(run))
	candidates := correctSet(run)
	for i := range run.Procs {
		if !run.Procs[i].Correct() {
			continue
		}
		for k := from; k <= run.Rounds; k++ {
			if !out.Completed[i][k-1] {
				continue
			}
			sus := out.Suspects[i][k-1]
			if missing := crashed.Diff(sus); !missing.IsEmpty() {
				return fmt.Errorf("%w: p%d does not suspect crashed %v in round %d",
					ErrCompleteness, i+1, missing, k)
			}
			candidates = candidates.Diff(sus)
		}
	}
	if candidates.IsEmpty() {
		return fmt.Errorf("%w: every correct process is suspected after round %d", ErrWeakAccuracy, from-1)
	}
	return nil
}

func correctSet(run *trace.Run) model.PIDSet {
	var set model.PIDSet
	for i := range run.Procs {
		if run.Procs[i].Correct() {
			set.Add(run.Procs[i].ID)
		}
	}
	return set
}
