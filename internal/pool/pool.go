// Package pool provides the bounded worker pool shared by the batch
// simulator (sim.RunBatch) and the lower-bound explorer: a fixed number
// of workers claim indexed tasks from an atomic counter, with worker-local
// state held in per-worker closures. Keeping the scaffolding in one place
// guarantees the two hot paths never diverge on clamping or claiming
// semantics.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers clamps a requested worker count: non-positive requests select
// min(GOMAXPROCS, NumCPU) — the work is CPU-bound, so oversubscribing
// runnable CPUs only adds scheduling overhead — and no pool ever runs
// more workers than tasks.
func Workers(requested, tasks int) int {
	if requested <= 0 {
		requested = min(runtime.GOMAXPROCS(0), runtime.NumCPU())
	}
	return max(1, min(requested, tasks))
}

// ForEach executes body(i) for every i in [0, n) on a pool of workers
// (clamped via Workers). newBody is invoked once per worker and returns
// that worker's body, so worker-local state (a reused simulator, schedule
// scratch) lives in the closure. With one worker everything runs inline on
// the calling goroutine. Bodies must record their own results and errors
// by index; ForEach returns when all tasks are done.
func ForEach(workers, n int, newBody func() func(i int)) {
	workers = Workers(workers, n)
	if n == 0 {
		return
	}
	if workers == 1 {
		body := newBody()
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := newBody()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}
