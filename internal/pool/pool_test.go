package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersClamp(t *testing.T) {
	def := min(runtime.GOMAXPROCS(0), runtime.NumCPU())
	cases := []struct{ requested, tasks, want int }{
		{0, 100, def},
		{-3, 100, def},
		{5, 100, 5},
		{5, 3, 3},
		{0, 0, 1},
		{8, 1, 1},
	}
	for _, tc := range cases {
		if got := Workers(tc.requested, tc.tasks); got != tc.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", tc.requested, tc.tasks, got, tc.want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 500
		var counts [n]int64
		var bodies int64
		ForEach(workers, n, func() func(int) {
			atomic.AddInt64(&bodies, 1)
			return func(i int) { atomic.AddInt64(&counts[i], 1) }
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
		if got := int(atomic.LoadInt64(&bodies)); got > workers {
			t.Fatalf("workers=%d: %d worker bodies created", workers, got)
		}
	}
}

func TestForEachSingleWorkerRunsInOrder(t *testing.T) {
	var order []int
	ForEach(1, 10, func() func(int) {
		return func(i int) { order = append(order, i) }
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("serial ForEach out of order: %v", order)
		}
	}
	if len(order) != 10 {
		t.Fatalf("executed %d of 10 tasks", len(order))
	}
}

func TestForEachZeroTasks(t *testing.T) {
	called := false
	ForEach(4, 0, func() func(int) {
		called = true
		return func(int) {}
	})
	if called {
		t.Fatal("worker body created for an empty task set")
	}
}
