// Package sched defines adversary schedules for the round-based models SCS
// and ES of "The inherent price of indulgence", together with a validator
// enforcing the exact model axioms and generators for the run families used
// throughout the paper (failure-free runs, synchronous runs, serial runs,
// eventually synchronous runs with an asynchronous prefix, coordinator
// killers, and the split-brain schedule behind the t < n/2 resilience
// price).
//
// A Schedule fixes, for one run, (a) which processes crash and in which
// round, (b) the fate of every message — delivered in its send round,
// delayed to a later round, or lost — and (c) the global stabilization
// round GSR, the paper's K: the first round from which delivery is
// synchronous. A run is synchronous exactly when GSR = 1, and serial when
// additionally at most one process crashes per round.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"indulgence/internal/model"
)

// FateKind classifies what happens to one message.
type FateKind uint8

const (
	// OnTime delivers the message in the round it was sent.
	OnTime FateKind = iota + 1
	// Delayed delivers the message in a later round (only in ES; the
	// source of false suspicions).
	Delayed
	// Lost never delivers the message.
	Lost
)

// String implements fmt.Stringer.
func (k FateKind) String() string {
	switch k {
	case OnTime:
		return "on-time"
	case Delayed:
		return "delayed"
	case Lost:
		return "lost"
	default:
		return fmt.Sprintf("FateKind(%d)", uint8(k))
	}
}

// Fate is the fate of a single message.
type Fate struct {
	Kind FateKind
	// DeliverRound is the round in which a Delayed message is delivered.
	// It must be strictly greater than the send round. Unused otherwise.
	DeliverRound model.Round
}

// OnTimeFate is the default fate of every message not explicitly scheduled.
var OnTimeFate = Fate{Kind: OnTime}

type fateKey struct {
	round    model.Round
	from, to model.ProcessID
}

// Schedule is a complete adversary script for one run. The zero value is
// not usable; construct with New. Schedules are mutable while being built
// and should be treated as immutable once handed to the simulator.
type Schedule struct {
	n, t        int
	gsr         model.Round
	crashes     map[model.ProcessID]model.Round
	fates       map[fateKey]Fate
	allowUnsafe bool
}

// Option configures a Schedule at construction time.
type Option func(*Schedule)

// WithGSR sets the global stabilization round K. The default is 1
// (a synchronous run).
func WithGSR(k model.Round) Option {
	return func(s *Schedule) { s.gsr = k }
}

// AllowUnsafeResilience disables the t < n/2 indulgence-resilience check in
// Validate. It exists solely for the Sect. 1.1 resilience-price experiment,
// which demonstrates an agreement violation when a majority may fail.
func AllowUnsafeResilience() Option {
	return func(s *Schedule) { s.allowUnsafe = true }
}

// New returns an empty (failure-free, fully synchronous) schedule for a
// system of n processes tolerating t crashes.
func New(n, t int, opts ...Option) *Schedule {
	s := &Schedule{
		n:       n,
		t:       t,
		gsr:     1,
		crashes: make(map[model.ProcessID]model.Round),
		fates:   make(map[fateKey]Fate),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// N returns the system size.
func (s *Schedule) N() int { return s.n }

// T returns the resilience bound.
func (s *Schedule) T() int { return s.t }

// GSR returns the global stabilization round K (1 for synchronous runs).
func (s *Schedule) GSR() model.Round { return s.gsr }

// SetGSR updates the global stabilization round.
func (s *Schedule) SetGSR(k model.Round) { s.gsr = k }

// Crash schedules process p to crash in round r: p sends its round-r
// messages according to their scheduled fates (default: delivered on time)
// and does not complete round r (it receives nothing in round r and sends
// nothing afterwards). Crashing the same process twice keeps the earlier
// round.
func (s *Schedule) Crash(p model.ProcessID, r model.Round) *Schedule {
	if cur, ok := s.crashes[p]; !ok || r < cur {
		s.crashes[p] = r
	}
	return s
}

// CrashSilent schedules p to crash at the beginning of round r, before
// sending any round-r message (every round-r message from p is lost).
func (s *Schedule) CrashSilent(p model.ProcessID, r model.Round) *Schedule {
	s.Crash(p, r)
	for q := model.ProcessID(1); int(q) <= s.n; q++ {
		if q != p {
			s.SetFate(r, p, q, Fate{Kind: Lost})
		}
	}
	return s
}

// CrashWithReceivers schedules p to crash in round r such that exactly the
// processes in receivers obtain p's round-r message in round r and all
// other processes never receive it. p itself always observes its own
// message, so its membership in receivers is irrelevant.
func (s *Schedule) CrashWithReceivers(p model.ProcessID, r model.Round, receivers model.PIDSet) *Schedule {
	s.Crash(p, r)
	for q := model.ProcessID(1); int(q) <= s.n; q++ {
		if q == p {
			continue
		}
		if receivers.Has(q) {
			s.SetFate(r, p, q, OnTimeFate)
		} else {
			s.SetFate(r, p, q, Fate{Kind: Lost})
		}
	}
	return s
}

// SetFate schedules the fate of the message sent by from to to in round r.
// Self-messages cannot be scheduled (they are always delivered in-round).
func (s *Schedule) SetFate(r model.Round, from, to model.ProcessID, f Fate) *Schedule {
	s.fates[fateKey{round: r, from: from, to: to}] = f
	return s
}

// Delay schedules the round-r message from from to to to be delivered in
// round deliver (> r).
func (s *Schedule) Delay(r model.Round, from, to model.ProcessID, deliver model.Round) *Schedule {
	return s.SetFate(r, from, to, Fate{Kind: Delayed, DeliverRound: deliver})
}

// Drop schedules the round-r message from from to to to be lost.
func (s *Schedule) Drop(r model.Round, from, to model.ProcessID) *Schedule {
	return s.SetFate(r, from, to, Fate{Kind: Lost})
}

// FateOf returns the fate of the round-r message from from to to.
// Unscheduled messages are delivered on time; self-messages are always on
// time regardless of any scheduled fate.
func (s *Schedule) FateOf(r model.Round, from, to model.ProcessID) Fate {
	if from == to {
		return OnTimeFate
	}
	if f, ok := s.fates[fateKey{round: r, from: from, to: to}]; ok {
		return f
	}
	return OnTimeFate
}

// CrashRound returns the round in which p crashes, if it does.
func (s *Schedule) CrashRound(p model.ProcessID) (model.Round, bool) {
	r, ok := s.crashes[p]
	return r, ok
}

// Crashes returns the number of crashing processes.
func (s *Schedule) Crashes() int { return len(s.crashes) }

// Correct reports whether p never crashes in this schedule.
func (s *Schedule) Correct(p model.ProcessID) bool {
	_, crashed := s.crashes[p]
	return !crashed
}

// CorrectSet returns the set of processes that never crash.
func (s *Schedule) CorrectSet() model.PIDSet {
	set := model.FullPIDSet(s.n)
	for p := range s.crashes {
		set.Remove(p)
	}
	return set
}

// SendsIn reports whether p executes the send phase of round r (it has not
// crashed in an earlier round).
func (s *Schedule) SendsIn(p model.ProcessID, r model.Round) bool {
	cr, crashed := s.crashes[p]
	return !crashed || r <= cr
}

// CompletesRound reports whether p completes round r (receives in r): p
// must not crash in round r or earlier.
func (s *Schedule) CompletesRound(p model.ProcessID, r model.Round) bool {
	cr, crashed := s.crashes[p]
	return !crashed || r < cr
}

// MaxScheduledRound returns the largest round mentioned by the schedule:
// crash rounds, explicitly scheduled send rounds, delayed delivery rounds
// and the GSR. Beyond it the run is failure-free and synchronous.
func (s *Schedule) MaxScheduledRound() model.Round {
	max := s.gsr
	for _, r := range s.crashes {
		if r > max {
			max = r
		}
	}
	for k, f := range s.fates {
		if k.round > max {
			max = k.round
		}
		if f.Kind == Delayed && f.DeliverRound > max {
			max = f.DeliverRound
		}
	}
	return max
}

// IsSerial reports whether the schedule describes a serial run in the
// paper's sense: a synchronous run (GSR = 1) with at most one crash per
// round.
func (s *Schedule) IsSerial() bool {
	if s.gsr != 1 {
		return false
	}
	perRound := make(map[model.Round]int, len(s.crashes))
	for _, r := range s.crashes {
		perRound[r]++
		if perRound[r] > 1 {
			return false
		}
	}
	return true
}

// CopyFrom resets s to a deep copy of src while keeping s's allocated map
// capacity — the allocation-free counterpart of Clone for callers that
// rebuild many schedule variants from one prototype (the lower-bound
// explorer's workers).
func (s *Schedule) CopyFrom(src *Schedule) *Schedule {
	s.n, s.t, s.gsr, s.allowUnsafe = src.n, src.t, src.gsr, src.allowUnsafe
	if s.crashes == nil {
		s.crashes = make(map[model.ProcessID]model.Round, len(src.crashes))
	} else {
		clear(s.crashes)
	}
	if s.fates == nil {
		s.fates = make(map[fateKey]Fate, len(src.fates))
	} else {
		clear(s.fates)
	}
	for p, r := range src.crashes {
		s.crashes[p] = r
	}
	for k, f := range src.fates {
		s.fates[k] = f
	}
	return s
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{
		n:           s.n,
		t:           s.t,
		gsr:         s.gsr,
		crashes:     make(map[model.ProcessID]model.Round, len(s.crashes)),
		fates:       make(map[fateKey]Fate, len(s.fates)),
		allowUnsafe: s.allowUnsafe,
	}
	for p, r := range s.crashes {
		c.crashes[p] = r
	}
	for k, f := range s.fates {
		c.fates[k] = f
	}
	return c
}

// String renders a compact, deterministic description of the schedule,
// suitable for reporting worst-case witnesses.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sched{n=%d t=%d gsr=%d", s.n, s.t, s.gsr)
	crashed := make([]model.ProcessID, 0, len(s.crashes))
	for p := range s.crashes {
		crashed = append(crashed, p)
	}
	sort.Slice(crashed, func(i, j int) bool { return crashed[i] < crashed[j] })
	for _, p := range crashed {
		fmt.Fprintf(&b, " crash(p%d@r%d)", p, s.crashes[p])
	}
	keys := make([]fateKey, 0, len(s.fates))
	for k := range s.fates {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.round != b.round {
			return a.round < b.round
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
	for _, k := range keys {
		f := s.fates[k]
		switch f.Kind {
		case Lost:
			fmt.Fprintf(&b, " drop(r%d p%d->p%d)", k.round, k.from, k.to)
		case Delayed:
			fmt.Fprintf(&b, " delay(r%d p%d->p%d @r%d)", k.round, k.from, k.to, f.DeliverRound)
		}
	}
	b.WriteByte('}')
	return b.String()
}
