package sched

import (
	"errors"
	"testing"

	"indulgence/internal/model"
)

func TestValidateShapes(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *Schedule
		syn     model.Synchrony
		wantErr error // nil = must validate
	}{
		{
			name:  "failure-free ES",
			build: func() *Schedule { return New(5, 2) },
			syn:   model.ES,
		},
		{
			name:  "failure-free SCS",
			build: func() *Schedule { return New(5, 2) },
			syn:   model.SCS,
		},
		{
			name:    "ES needs majority correct",
			build:   func() *Schedule { return New(4, 2) },
			syn:     model.ES,
			wantErr: ErrMajorityCorrect,
		},
		{
			name:  "unsafe override",
			build: func() *Schedule { return New(4, 2, AllowUnsafeResilience()) },
			syn:   model.ES,
		},
		{
			name: "too many crashes",
			build: func() *Schedule {
				s := New(5, 1)
				s.Crash(1, 1)
				s.Crash(2, 2)
				return s
			},
			syn:     model.ES,
			wantErr: ErrResilience,
		},
		{
			name:    "gsr in SCS",
			build:   func() *Schedule { return New(5, 2, WithGSR(3)) },
			syn:     model.SCS,
			wantErr: ErrSynchronousModel,
		},
		{
			name: "delay in SCS",
			build: func() *Schedule {
				s := New(5, 2)
				s.Delay(1, 1, 2, 3)
				return s
			},
			syn:     model.SCS,
			wantErr: ErrSynchronousModel,
		},
		{
			name: "SCS loss needs crashing sender",
			build: func() *Schedule {
				s := New(5, 2)
				s.Drop(1, 1, 2)
				return s
			},
			syn:     model.SCS,
			wantErr: ErrSynchronousModel,
		},
		{
			name: "SCS loss from crashing sender ok",
			build: func() *Schedule {
				s := New(5, 2)
				s.CrashWithReceivers(1, 1, model.NewPIDSet(2))
				return s
			},
			syn: model.SCS,
		},
		{
			name: "ES correct-to-correct loss forbidden",
			build: func() *Schedule {
				s := New(5, 2)
				s.Drop(1, 1, 2)
				return s
			},
			syn:     model.ES,
			wantErr: ErrReliableChannels,
		},
		{
			name: "ES pre-GSR loss to faulty receiver ok",
			build: func() *Schedule {
				s := New(5, 2, WithGSR(3))
				s.Crash(2, 9)
				s.Drop(1, 1, 2)
				return s
			},
			syn: model.ES,
		},
		{
			name: "ES post-GSR loss from live sender forbidden even to faulty receiver",
			build: func() *Schedule {
				s := New(5, 2)
				s.Crash(2, 9)
				s.Drop(1, 1, 2)
				return s
			},
			syn:     model.ES,
			wantErr: ErrEventualSynchrony,
		},
		{
			name: "delay at GSR from live sender forbidden",
			build: func() *Schedule {
				s := New(5, 2, WithGSR(2))
				s.Delay(2, 1, 2, 4)
				return s
			},
			syn:     model.ES,
			wantErr: ErrEventualSynchrony,
		},
		{
			name: "delay at GSR from crashing sender ok (footnote 5)",
			build: func() *Schedule {
				s := New(5, 2, WithGSR(2))
				s.Crash(1, 2)
				s.Delay(2, 1, 2, 4)
				return s
			},
			syn: model.ES,
		},
		{
			name: "delay before GSR ok",
			build: func() *Schedule {
				s := New(5, 2, WithGSR(3))
				s.Delay(1, 1, 2, 3)
				return s
			},
			syn: model.ES,
		},
		{
			name: "t-resilience: too many delays to one receiver",
			build: func() *Schedule {
				s := New(5, 2, WithGSR(4))
				// p5 hears only itself and p4 in round 1: 2 < n-t = 3.
				s.Delay(1, 1, 5, 3)
				s.Delay(1, 2, 5, 3)
				s.Delay(1, 3, 5, 3)
				return s
			},
			syn:     model.ES,
			wantErr: ErrTResilience,
		},
		{
			name: "t-resilience boundary: exactly n-t heard",
			build: func() *Schedule {
				s := New(5, 2, WithGSR(4))
				s.Delay(1, 1, 5, 3)
				s.Delay(1, 2, 5, 3)
				return s
			},
			syn: model.ES,
		},
		{
			name: "fate after sender crash rejected",
			build: func() *Schedule {
				s := New(5, 2)
				s.Crash(1, 1)
				s.Drop(2, 1, 3)
				return s
			},
			syn:     model.ES,
			wantErr: nil, // generic error, checked separately below
		},
		{
			name: "delayed delivery must be later",
			build: func() *Schedule {
				s := New(5, 2, WithGSR(3))
				s.Delay(2, 1, 2, 2)
				return s
			},
			syn:     model.ES,
			wantErr: nil, // generic error
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Validate(tc.syn)
			switch {
			case tc.wantErr != nil:
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Validate() = %v, want %v", err, tc.wantErr)
				}
			case tc.name == "fate after sender crash rejected" || tc.name == "delayed delivery must be later":
				if err == nil {
					t.Fatal("Validate() accepted an ill-formed schedule")
				}
			default:
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
			}
		})
	}
}

func TestValidateSelfFate(t *testing.T) {
	s := New(3, 1)
	s.SetFate(1, 2, 2, Fate{Kind: Lost})
	if err := s.Validate(model.ES); err == nil {
		t.Fatal("self-message fate must be rejected")
	}
}

func TestFateKindString(t *testing.T) {
	if OnTime.String() != "on-time" || Delayed.String() != "delayed" || Lost.String() != "lost" {
		t.Fatal("unexpected FateKind strings")
	}
	if FateKind(99).String() == "" {
		t.Fatal("unknown kind should render")
	}
}
