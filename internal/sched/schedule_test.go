package sched

import (
	"strings"
	"testing"

	"indulgence/internal/model"
)

func TestFateDefaults(t *testing.T) {
	s := New(4, 1)
	if f := s.FateOf(3, 1, 2); f.Kind != OnTime {
		t.Fatalf("default fate = %v, want on-time", f)
	}
	s.Delay(3, 1, 2, 5)
	if f := s.FateOf(3, 1, 2); f.Kind != Delayed || f.DeliverRound != 5 {
		t.Fatalf("delayed fate = %v", f)
	}
	s.Drop(2, 1, 2)
	if f := s.FateOf(2, 1, 2); f.Kind != Lost {
		t.Fatalf("dropped fate = %v", f)
	}
	// Self-messages are always on time, even if scheduled otherwise.
	s.Drop(1, 2, 2)
	if f := s.FateOf(1, 2, 2); f.Kind != OnTime {
		t.Fatalf("self fate = %v, want on-time", f)
	}
}

func TestCrashBookkeeping(t *testing.T) {
	s := New(5, 2)
	s.Crash(3, 4)
	s.Crash(3, 2) // earlier round wins
	if r, ok := s.CrashRound(3); !ok || r != 2 {
		t.Fatalf("crash round = %d, %v", r, ok)
	}
	s.Crash(3, 6) // later round ignored
	if r, _ := s.CrashRound(3); r != 2 {
		t.Fatalf("crash round moved to %d", r)
	}
	if s.Crashes() != 1 {
		t.Fatalf("crashes = %d", s.Crashes())
	}
	if s.Correct(3) || !s.Correct(1) {
		t.Fatal("correctness misreported")
	}
	if got := s.CorrectSet(); got.Has(3) || got.Len() != 4 {
		t.Fatalf("correct set = %v", got)
	}
	// A process sends in its crash round but does not complete it.
	if !s.SendsIn(3, 2) || s.SendsIn(3, 3) {
		t.Fatal("SendsIn wrong around crash")
	}
	if !s.CompletesRound(3, 1) || s.CompletesRound(3, 2) {
		t.Fatal("CompletesRound wrong around crash")
	}
}

func TestCrashHelpers(t *testing.T) {
	s := New(4, 1)
	s.CrashSilent(2, 3)
	for q := model.ProcessID(1); q <= 4; q++ {
		if q == 2 {
			continue
		}
		if f := s.FateOf(3, 2, q); f.Kind != Lost {
			t.Fatalf("silent crash: fate to p%d = %v", q, f)
		}
	}
	s2 := New(4, 1)
	s2.CrashWithReceivers(2, 3, model.NewPIDSet(1, 4))
	if s2.FateOf(3, 2, 1).Kind != OnTime || s2.FateOf(3, 2, 4).Kind != OnTime {
		t.Fatal("receivers should get the message on time")
	}
	if s2.FateOf(3, 2, 3).Kind != Lost {
		t.Fatal("non-receiver should lose the message")
	}
}

func TestMaxScheduledRound(t *testing.T) {
	s := New(4, 1, WithGSR(3))
	if got := s.MaxScheduledRound(); got != 3 {
		t.Fatalf("gsr only: %d", got)
	}
	s.Crash(1, 7)
	if got := s.MaxScheduledRound(); got != 7 {
		t.Fatalf("with crash: %d", got)
	}
	s.Delay(2, 2, 3, 9)
	if got := s.MaxScheduledRound(); got != 9 {
		t.Fatalf("with delay: %d", got)
	}
}

func TestIsSerial(t *testing.T) {
	s := New(5, 2)
	if !s.IsSerial() {
		t.Fatal("failure-free synchronous run must be serial")
	}
	s.Crash(1, 2)
	s.Crash(2, 3)
	if !s.IsSerial() {
		t.Fatal("one crash per round is serial")
	}
	s.Crash(3, 3)
	if s.IsSerial() {
		t.Fatal("two crashes in one round is not serial")
	}
	async := New(5, 2, WithGSR(4))
	if async.IsSerial() {
		t.Fatal("GSR > 1 is not serial")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(4, 1)
	s.Crash(1, 2)
	s.Delay(1, 2, 3, 4)
	c := s.Clone()
	c.Crash(2, 1)
	c.Drop(2, 3, 4)
	if s.Crashes() != 1 {
		t.Fatal("clone crash leaked into original")
	}
	if s.FateOf(2, 3, 4).Kind != OnTime {
		t.Fatal("clone fate leaked into original")
	}
	if c.GSR() != s.GSR() || c.N() != s.N() || c.T() != s.T() {
		t.Fatal("clone lost parameters")
	}
}

func TestScheduleString(t *testing.T) {
	s := New(3, 1, WithGSR(2))
	s.Crash(2, 1)
	s.Drop(1, 2, 3)
	s.Delay(1, 1, 3, 4)
	got := s.String()
	for _, want := range []string{"n=3", "t=1", "gsr=2", "crash(p2@r1)", "drop(r1 p2->p3)", "delay(r1 p1->p3 @r4)"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	// Deterministic rendering.
	if s.String() != s.String() {
		t.Fatal("String() not deterministic")
	}
}

func TestCopyFrom(t *testing.T) {
	proto := New(4, 1, WithGSR(3), AllowUnsafeResilience())
	proto.Crash(2, 1)
	proto.Delay(1, 1, 3, 4)

	// CopyFrom overwrites unrelated prior state and matches Clone.
	s := New(9, 5)
	s.Crash(7, 2)
	s.Drop(1, 8, 9)
	s.CopyFrom(proto)
	if s.String() != proto.String() {
		t.Fatalf("CopyFrom mismatch:\ngot  %s\nwant %s", s, proto)
	}
	if s.N() != 4 || s.T() != 1 || s.GSR() != 3 {
		t.Fatalf("parameters not copied: %s", s)
	}
	if err := s.Validate(model.ES); err != nil {
		t.Fatalf("allowUnsafe not copied: %v", err)
	}

	// Mutating the copy leaves the prototype untouched.
	s.Crash(4, 2)
	s.Drop(2, 1, 2)
	if !proto.Correct(4) {
		t.Fatal("CopyFrom aliased the crash map")
	}
	if proto.FateOf(2, 1, 2).Kind != OnTime {
		t.Fatal("CopyFrom aliased the fate map")
	}

	// Repeated CopyFrom restores the prototype state exactly.
	s.CopyFrom(proto)
	if s.String() != proto.String() {
		t.Fatalf("second CopyFrom mismatch:\ngot  %s\nwant %s", s, proto)
	}
}
