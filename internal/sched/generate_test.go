package sched

import (
	"math/rand"
	"testing"

	"indulgence/internal/model"
)

// TestRandomSynchronousAlwaysValid is the generator's core contract: every
// sampled synchronous schedule satisfies the ES axioms (and the SCS axioms
// when crash sends are not delayed), across many seeds — a property-based
// test of the generator against the validator.
func TestRandomSynchronousAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		n := 3 + rng.Intn(5)
		tt := rng.Intn((n + 1) / 2) // t < n/2 for ES
		s := RandomSynchronous(n, tt, RandomOpts{Rng: rng, DelayCrashSends: true})
		if err := s.Validate(model.ES); err != nil {
			t.Fatalf("seeded run %d (n=%d t=%d): %v\n%v", i, n, tt, err, s)
		}
		if s.GSR() != 1 {
			t.Fatalf("synchronous schedule with GSR %d", s.GSR())
		}
	}
	for i := 0; i < 300; i++ {
		n := 3 + rng.Intn(5)
		tt := rng.Intn(n - 1)
		s := RandomSynchronous(n, tt, RandomOpts{Rng: rng})
		if err := s.Validate(model.SCS); err != nil {
			t.Fatalf("SCS run %d (n=%d t=%d): %v\n%v", i, n, tt, err, s)
		}
	}
}

// TestRandomESAlwaysValid checks the eventually synchronous generator
// against the validator across seeds, sizes and stabilization times.
func TestRandomESAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		n := 3 + rng.Intn(5)
		tt := rng.Intn((n + 1) / 2)
		gsr := model.Round(1 + rng.Intn(8))
		s := RandomES(n, tt, gsr, RandomOpts{Rng: rng})
		if err := s.Validate(model.ES); err != nil {
			t.Fatalf("run %d (n=%d t=%d gsr=%d): %v\n%v", i, n, tt, gsr, err, s)
		}
		if s.GSR() != gsr {
			t.Fatalf("GSR = %d, want %d", s.GSR(), gsr)
		}
	}
}

func TestKillCoordinators(t *testing.T) {
	s := KillCoordinators(5, 2, 2)
	if err := s.Validate(model.ES); err != nil {
		t.Fatalf("killer invalid: %v", err)
	}
	if r, ok := s.CrashRound(1); !ok || r != 1 {
		t.Fatalf("p1 crash at %d", r)
	}
	if r, ok := s.CrashRound(2); !ok || r != 3 {
		t.Fatalf("p2 crash at %d", r)
	}
	if !s.IsSerial() {
		t.Fatal("killer schedule should be serial")
	}
}

func TestDelayedSenderPrefix(t *testing.T) {
	s := DelayedSenderPrefix(4, 1, 3, 2)
	if err := s.Validate(model.ES); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if s.GSR() != 4 {
		t.Fatalf("GSR = %d", s.GSR())
	}
	for r := model.Round(1); r <= 3; r++ {
		for q := model.ProcessID(1); q <= 4; q++ {
			if q == 2 {
				continue
			}
			f := s.FateOf(r, 2, q)
			if f.Kind != Delayed || f.DeliverRound != 4 {
				t.Fatalf("round %d p2->p%d fate %v", r, q, f)
			}
		}
	}
}

func TestDivergencePrefixesValid(t *testing.T) {
	for _, tt := range []int{1, 2, 3} {
		if err := DivergencePrefixFlood(tt, 5).Validate(model.ES); err != nil {
			t.Errorf("flood prefix t=%d: %v", tt, err)
		}
		if err := DivergencePrefixLeader(tt, 5).Validate(model.ES); err != nil {
			t.Errorf("leader prefix t=%d: %v", tt, err)
		}
		n := 3*tt + 1
		if got := len(DivergenceProposalsFlood(tt)); got != n {
			t.Errorf("flood proposals t=%d: %d values", tt, got)
		}
		if got := len(DivergenceProposalsLeader(tt)); got != n {
			t.Errorf("leader proposals t=%d: %d values", tt, got)
		}
	}
}

func TestSplitBrain(t *testing.T) {
	s := SplitBrain(4, 6)
	if err := s.Validate(model.ES); err != nil {
		t.Fatalf("split-brain must validate (with unsafe resilience): %v", err)
	}
	if s.T() != 2 {
		t.Fatalf("t = %d, want n/2", s.T())
	}
	// Cross-half messages delayed during the split, intra-half on time.
	if f := s.FateOf(3, 1, 3); f.Kind != Delayed || f.DeliverRound != 7 {
		t.Fatalf("cross-half fate %v", f)
	}
	if f := s.FateOf(3, 1, 2); f.Kind != OnTime {
		t.Fatalf("intra-half fate %v", f)
	}
}

func TestFailureFree(t *testing.T) {
	s := FailureFree(5, 2)
	if err := s.Validate(model.ES); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(model.SCS); err != nil {
		t.Fatal(err)
	}
	if s.Crashes() != 0 || s.MaxScheduledRound() != 1 {
		t.Fatalf("not failure free: %v", s)
	}
}
