package sched

import (
	//indulgence:prng RandomOpts.Rng is threaded from the caller; schedule corpora pin its sequence
	"math/rand"

	"indulgence/internal/model"
)

// FailureFree returns the failure-free synchronous schedule: no crashes, no
// delays, GSR = 1. It is the paper's "well-behaved" run (Sect. 5.2).
func FailureFree(n, t int) *Schedule { return New(n, t) }

// RandomOpts parameterizes the random schedule generators. The zero value
// selects sensible defaults.
type RandomOpts struct {
	// Rng supplies randomness. Required.
	Rng *rand.Rand
	// MaxCrashes caps the number of crashing processes (default t).
	MaxCrashes int
	// MaxCrashRound is the latest round in which a crash may occur
	// (default 2t+3, past every algorithm's synchronous decision round).
	MaxCrashRound model.Round
	// DelayCrashSends, when true, lets a crashing sender's last messages
	// be delayed instead of lost (legal in ES even in synchronous runs,
	// footnote 5 of the paper; illegal in SCS).
	DelayCrashSends bool
}

func (o *RandomOpts) defaults(t int) {
	if o.MaxCrashes == 0 {
		o.MaxCrashes = t
	}
	if o.MaxCrashes > t {
		o.MaxCrashes = t
	}
	if o.MaxCrashRound == 0 {
		o.MaxCrashRound = model.Round(2*t + 3)
	}
}

// RandomSynchronous returns a uniformly sampled synchronous schedule
// (GSR = 1): up to MaxCrashes processes crash at random rounds, each losing
// its last messages to a random subset of receivers (or, with
// DelayCrashSends, delaying some of them). The result always validates
// under ES; it validates under SCS when DelayCrashSends is false.
func RandomSynchronous(n, t int, o RandomOpts) *Schedule {
	o.defaults(t)
	rng := o.Rng
	s := New(n, t)
	crashers := rng.Perm(n)[:rng.Intn(o.MaxCrashes+1)]
	for _, idx := range crashers {
		p := model.ProcessID(idx + 1)
		r := model.Round(1 + rng.Intn(int(o.MaxCrashRound)))
		s.Crash(p, r)
		for q := model.ProcessID(1); int(q) <= n; q++ {
			if q == p {
				continue
			}
			switch {
			case rng.Intn(2) == 0:
				// delivered on time: leave the default fate.
			case o.DelayCrashSends && rng.Intn(3) == 0:
				s.Delay(r, p, q, r+1+model.Round(rng.Intn(3)))
			default:
				s.Drop(r, p, q)
			}
		}
	}
	return s
}

// RandomES returns a random eventually synchronous schedule with the given
// GSR: rounds before the GSR suffer random delays and (between faulty
// endpoints) losses, subject to the t-resilience and reliable-channels
// axioms; behaviour from the GSR on is synchronous. Crashes (up to
// MaxCrashes) occur at random rounds in [1, MaxCrashRound]. The result
// always validates under ES.
func RandomES(n, t int, gsr model.Round, o RandomOpts) *Schedule {
	o.defaults(t)
	rng := o.Rng
	s := New(n, t, WithGSR(gsr))
	crashers := rng.Perm(n)[:rng.Intn(o.MaxCrashes+1)]
	for _, idx := range crashers {
		p := model.ProcessID(idx + 1)
		s.Crash(p, model.Round(1+rng.Intn(int(o.MaxCrashRound))))
	}

	quorum := n - t
	for r := model.Round(1); r < gsr; r++ {
		for p := model.ProcessID(1); int(p) <= n; p++ {
			if !s.CompletesRound(p, r) {
				continue
			}
			senders := make([]model.ProcessID, 0, n)
			for q := model.ProcessID(1); int(q) <= n; q++ {
				if q != p && s.SendsIn(q, r) {
					senders = append(senders, q)
				}
			}
			// Pick quorum−1 senders (besides p itself) heard on time; the
			// rest are delayed or, with a faulty endpoint, possibly lost.
			rng.Shuffle(len(senders), func(i, j int) { senders[i], senders[j] = senders[j], senders[i] })
			heard := quorum - 1
			if heard > len(senders) {
				heard = len(senders)
			}
			for i, q := range senders {
				if i < heard {
					continue // on time by default
				}
				lossOK := !s.Correct(q) || !s.Correct(p)
				switch {
				case rng.Intn(3) == 0:
					// on time anyway
				case lossOK && rng.Intn(3) == 0:
					s.Drop(r, q, p)
				default:
					span := int(gsr-r) + 2
					s.Delay(r, q, p, r+1+model.Round(rng.Intn(span)))
				}
			}
		}
	}

	// Crashing senders at or after the GSR lose their last messages to a
	// random subset of receivers.
	for p, cr := range s.crashes {
		if cr < gsr {
			continue
		}
		for q := model.ProcessID(1); int(q) <= n; q++ {
			if q != p && rng.Intn(2) == 0 {
				s.Drop(cr, p, q)
			}
		}
	}
	return s
}

// KillCoordinators returns the synchronous schedule that silently crashes
// the coordinator of each of the first t phases of a rotating-coordinator
// algorithm with the given number of rounds per phase (coordinator of phase
// r is process ((r−1) mod n) + 1). It realizes the worst-case synchronous
// runs of the Hurfin–Raynal baseline (2 rounds/phase ⇒ global decision at
// 2t+2) and of the Chandra–Toueg-style underlying consensus.
func KillCoordinators(n, t, roundsPerPhase int) *Schedule {
	s := New(n, t)
	for i := 1; i <= t; i++ {
		p := model.ProcessID((i-1)%n + 1)
		first := model.Round((i-1)*roundsPerPhase + 1)
		s.CrashSilent(p, first)
	}
	return s
}

// DelayedSenderPrefix returns the deterministic eventually synchronous
// schedule in which, for every round of the asynchronous prefix 1..k, the
// victim's messages to all other processes are delayed to round k+1 (the
// victim is falsely suspected throughout the prefix) and behaviour is
// synchronous from round k+1 on (GSR = k+1). Requires t ≥ 1 so that
// t-resilience holds while the victim goes unheard. It is the base
// schedule of the "synchronous after round k" experiments (Sect. 6).
func DelayedSenderPrefix(n, t int, k model.Round, victim model.ProcessID) *Schedule {
	s := New(n, t, WithGSR(k+1))
	for r := model.Round(1); r <= k; r++ {
		for q := model.ProcessID(1); int(q) <= n; q++ {
			if q != victim {
				s.Delay(r, victim, q, k+1)
			}
		}
	}
	return s
}

// The divergence prefixes below are the adversarial eventually synchronous
// prefixes of the Sect. 6 eventual-fast-decision experiments, for the
// paper's canonical t < n/3 configuration n = 3t+1. Each blocks estimate
// convergence of its algorithm family for the whole asynchronous prefix
// 1..k (behaviour is synchronous from the GSR k+1), with a two-valued
// initial configuration that is reproduced exactly round over round; every
// deprived receiver still obtains at least n−t same-round messages, so
// t-resilience holds. The stability arguments are spelled out on the
// proposal helpers.

// DivergencePrefixFlood blocks A_{f+2} (with DivergenceProposalsFlood):
// in every prefix round, the messages of senders {p1..pt} to receivers
// {p_{t+2}..pn} are delayed to round k+1.
func DivergencePrefixFlood(t int, k model.Round) *Schedule {
	n := 3*t + 1
	s := New(n, t, WithGSR(k+1))
	for r := model.Round(1); r <= k; r++ {
		for from := model.ProcessID(1); int(from) <= t; from++ {
			for to := model.ProcessID(t + 2); int(to) <= n; to++ {
				s.Delay(r, from, to, k+1)
			}
		}
	}
	return s
}

// DivergenceProposalsFlood returns the initial configuration that keeps
// A_{f+2} estimates diverged under DivergencePrefixFlood(t, ·): value 1 at
// processes p1..p_{t+1} and value 2 at the remaining 2t processes.
//
// Stability: a full-view process's msgSet window {p1..p_{2t+1}} holds t+1
// ones and t twos — mixed (no decision) with the unique (n−2t)-plurality 1
// — while a deprived process sees exactly {p_{t+1}..pn}, i.e. one 1 and 2t
// twos — mixed with the unique plurality 2. The pattern is knife-edge on
// purpose: after stabilization, crashing a single low-value holder flips
// some window to a 2-plurality, so each of the f post-GSR crashes buys the
// adversary exactly one extra round, attaining Lemma 15's k+f+2.
func DivergenceProposalsFlood(t int) []model.Value {
	n := 3*t + 1
	out := make([]model.Value, n)
	for i := range out {
		if i < t+1 {
			out[i] = 1
		} else {
			out[i] = 2
		}
	}
	return out
}

// DivergencePrefixLeader blocks AMR (with DivergenceProposalsLeader): in
// every prefix round, the messages of the t senders {p1, p3, p4, ...,
// p_{t+1}} to the t+1 receivers {p2} ∪ {p_{2t+2}..pn} are delayed to round
// k+1.
func DivergencePrefixLeader(t int, k model.Round) *Schedule {
	n := 3*t + 1
	s := New(n, t, WithGSR(k+1))
	hidden := []model.ProcessID{1}
	for q := model.ProcessID(3); int(q) <= t+1; q++ {
		hidden = append(hidden, q)
	}
	receivers := []model.ProcessID{2}
	for q := model.ProcessID(2*t + 2); int(q) <= n; q++ {
		receivers = append(receivers, q)
	}
	for r := model.Round(1); r <= k; r++ {
		for _, from := range hidden {
			for _, to := range receivers {
				s.Delay(r, from, to, k+1)
			}
		}
	}
	return s
}

// DivergenceProposalsLeader returns the initial configuration that keeps
// AMR estimates diverged under DivergencePrefixLeader(t, ·): value 2 at
// the deprived group X = {p2} ∪ {p_{2t+2}..pn} and value 1 elsewhere.
//
// Stability: X never hears p1 (nor the other low 1-holders), so X's
// perceived leader is p2, which — hearing no process below itself — keeps
// adopting its own estimate 2, and X follows it; everyone else follows the
// true leader p1 and keeps 1. In the even adoption rounds a full-view
// process sees 2t ones and t+1 twos (below the n−t decision quorum, with
// plurality 1), while an X member sees t ones and t+1 twos (unique
// plurality 2) — so nobody decides and both groups reproduce their value.
func DivergenceProposalsLeader(t int) []model.Value {
	n := 3*t + 1
	out := make([]model.Value, n)
	for i := range out {
		out[i] = 1
	}
	out[1] = 2
	for i := 2*t + 1; i < n; i++ {
		out[i] = 2
	}
	return out
}

// SplitBrain returns the Sect. 1.1 resilience-price schedule for an even n
// with t = n/2: for splitRounds rounds the system is partitioned into
// halves {1..n/2} and {n/2+1..n}, every cross-half message being delayed to
// round splitRounds+1 (the GSR). Each process still receives n−t = n/2
// same-round messages (its own half), so the schedule satisfies
// t-resilience; it is built with AllowUnsafeResilience because t ≥ n/2.
// Running any indulgent algorithm configured with t = n/2 under this
// schedule violates agreement: each half decides on its own minimum.
func SplitBrain(n int, splitRounds model.Round) *Schedule {
	t := n / 2
	s := New(n, t, WithGSR(splitRounds+1), AllowUnsafeResilience())
	half := n / 2
	for r := model.Round(1); r <= splitRounds; r++ {
		for from := model.ProcessID(1); int(from) <= n; from++ {
			for to := model.ProcessID(1); int(to) <= n; to++ {
				if from == to {
					continue
				}
				fromA := int(from) <= half
				toA := int(to) <= half
				if fromA != toA {
					s.Delay(r, from, to, splitRounds+1)
				}
			}
		}
	}
	return s
}
