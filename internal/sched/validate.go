package sched

import (
	"errors"
	"fmt"

	"indulgence/internal/model"
)

// Validation errors matched by callers and tests.
var (
	// ErrResilience reports that more processes crash than the schedule's
	// resilience bound t permits.
	ErrResilience = errors.New("sched: more than t crashes")
	// ErrTResilience reports a violation of the ES t-resilience axiom:
	// some process completing a round would receive fewer than n−t
	// same-round messages.
	ErrTResilience = errors.New("sched: t-resilience violated")
	// ErrReliableChannels reports a lost message between two correct
	// processes, violating the ES reliable-channels axiom.
	ErrReliableChannels = errors.New("sched: reliable channels violated")
	// ErrEventualSynchrony reports non-synchronous behaviour at or after
	// the GSR.
	ErrEventualSynchrony = errors.New("sched: eventual synchrony violated")
	// ErrSynchronousModel reports ES-only behaviour (delays, spurious
	// losses) in an SCS schedule.
	ErrSynchronousModel = errors.New("sched: behaviour not allowed in SCS")
	// ErrMajorityCorrect reports t ≥ n/2 for an ES schedule without
	// AllowUnsafeResilience, the indulgence resilience requirement.
	ErrMajorityCorrect = errors.New("sched: ES requires t < n/2 (use AllowUnsafeResilience to override)")
)

// Validate checks that the schedule is a legal adversary for the given
// synchrony model, enforcing the model axioms of Sect. 1.2 of the paper:
//
//   - SCS: every message is delivered in its send round, except that a
//     process crashing in round k may lose any subset of its round-k
//     messages. No delays, GSR is meaningless (must be 1).
//   - ES: t-resilience (every process completing round k receives at
//     least n−t round-k messages in round k, its own included), reliable
//     channels (correct→correct messages are never lost, only finitely
//     delayed), and eventual synchrony from the GSR on (non-crashing
//     senders are heard in-round; per footnote 5, a sender crashing in
//     round k ≥ GSR may still have its round-k messages lost or delayed).
//
// Validate returns the first violation found, wrapped around one of the
// exported sentinel errors.
func (s *Schedule) Validate(syn model.Synchrony) error {
	if err := s.validateShape(syn); err != nil {
		return err
	}
	for key, f := range s.fates {
		if err := s.validateFate(syn, key, f); err != nil {
			return err
		}
	}
	if syn == model.ES {
		if err := s.validateTResilience(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Schedule) validateShape(syn model.Synchrony) error {
	switch {
	case s.n < 2:
		return fmt.Errorf("sched: n must be at least 2, got %d", s.n)
	case s.n > model.MaxProcesses:
		return fmt.Errorf("sched: n must be at most %d, got %d", model.MaxProcesses, s.n)
	case s.t < 0 || s.t >= s.n:
		return fmt.Errorf("sched: t must be in [0, n), got t=%d n=%d", s.t, s.n)
	case s.gsr < 1:
		return fmt.Errorf("sched: GSR must be at least 1, got %d", s.gsr)
	}
	if syn == model.SCS && s.gsr != 1 {
		return fmt.Errorf("%w: GSR=%d in SCS", ErrSynchronousModel, s.gsr)
	}
	if syn == model.ES && !s.allowUnsafe && 2*s.t >= s.n {
		return fmt.Errorf("%w: t=%d n=%d", ErrMajorityCorrect, s.t, s.n)
	}
	if len(s.crashes) > s.t && !s.allowUnsafe {
		return fmt.Errorf("%w: %d crashes with t=%d", ErrResilience, len(s.crashes), s.t)
	}
	for p, r := range s.crashes {
		if p < 1 || int(p) > s.n {
			return fmt.Errorf("sched: crash of out-of-range process p%d", p)
		}
		if r < 1 {
			return fmt.Errorf("sched: crash of p%d in invalid round %d", p, r)
		}
	}
	return nil
}

func (s *Schedule) validateFate(syn model.Synchrony, key fateKey, f Fate) error {
	if key.from < 1 || int(key.from) > s.n || key.to < 1 || int(key.to) > s.n {
		return fmt.Errorf("sched: fate references out-of-range process (r%d p%d->p%d)", key.round, key.from, key.to)
	}
	if key.from == key.to {
		return fmt.Errorf("sched: self-message fate scheduled for p%d round %d (self-delivery is always on time)", key.from, key.round)
	}
	if key.round < 1 {
		return fmt.Errorf("sched: fate in invalid round %d", key.round)
	}
	if cr, crashed := s.crashes[key.from]; crashed && key.round > cr {
		return fmt.Errorf("sched: fate for message from p%d in round %d after its crash in round %d", key.from, key.round, cr)
	}
	senderCrashesNow := false
	if cr, crashed := s.crashes[key.from]; crashed && cr == key.round {
		senderCrashesNow = true
	}
	switch f.Kind {
	case OnTime:
		return nil
	case Delayed:
		if syn == model.SCS {
			return fmt.Errorf("%w: delayed message r%d p%d->p%d", ErrSynchronousModel, key.round, key.from, key.to)
		}
		if f.DeliverRound <= key.round {
			return fmt.Errorf("sched: delayed message r%d p%d->p%d must be delivered strictly later, got round %d",
				key.round, key.from, key.to, f.DeliverRound)
		}
		// Eventual synchrony: a message sent at or after the GSR by a
		// non-crashing sender must be delivered in-round. Footnote 5 of
		// the paper permits messages from a sender crashing in that round
		// to be delayed arbitrarily, even in synchronous runs.
		if key.round >= s.gsr && !senderCrashesNow {
			return fmt.Errorf("%w: delayed message r%d p%d->p%d sent at/after GSR %d by non-crashing sender",
				ErrEventualSynchrony, key.round, key.from, key.to, s.gsr)
		}
		return nil
	case Lost:
		if syn == model.SCS {
			if !senderCrashesNow {
				return fmt.Errorf("%w: lost message r%d p%d->p%d from non-crashing sender",
					ErrSynchronousModel, key.round, key.from, key.to)
			}
			return nil
		}
		// ES: only messages involving a faulty endpoint may be lost.
		if s.Correct(key.from) && s.Correct(key.to) {
			return fmt.Errorf("%w: lost message r%d p%d->p%d between correct processes",
				ErrReliableChannels, key.round, key.from, key.to)
		}
		if key.round >= s.gsr && !senderCrashesNow {
			return fmt.Errorf("%w: lost message r%d p%d->p%d sent at/after GSR %d by non-crashing sender",
				ErrEventualSynchrony, key.round, key.from, key.to, s.gsr)
		}
		return nil
	default:
		return fmt.Errorf("sched: invalid fate kind %d for r%d p%d->p%d", f.Kind, key.round, key.from, key.to)
	}
}

// validateTResilience checks that every process completing any round
// receives at least n−t same-round messages in that round. Rounds beyond
// MaxScheduledRound are fully synchronous and failure-free, so checking the
// scheduled prefix suffices.
func (s *Schedule) validateTResilience() error {
	horizon := s.MaxScheduledRound()
	quorum := s.n - s.t
	for r := model.Round(1); r <= horizon; r++ {
		for p := model.ProcessID(1); int(p) <= s.n; p++ {
			if !s.CompletesRound(p, r) {
				continue
			}
			onTime := 0
			for q := model.ProcessID(1); int(q) <= s.n; q++ {
				if !s.SendsIn(q, r) {
					continue
				}
				if s.FateOf(r, q, p).Kind == OnTime {
					onTime++
				}
			}
			if onTime < quorum {
				return fmt.Errorf("%w: p%d receives %d < n-t=%d round-%d messages",
					ErrTResilience, p, onTime, quorum, r)
			}
		}
	}
	return nil
}
