package chaos

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"indulgence/internal/wire"
	"indulgence/internal/workload"
)

// traceHeader builds the deterministic trace header the trace tests
// record under: a generated classed workload (capped well inside the
// intake bound so scenario load never blocks the clock driver) on a
// 4-process system, with per-class admission armed when the workload
// is classed.
func traceHeader(t *testing.T, seed int64, groups int) wire.TraceHeaderRecord {
	t.Helper()
	spec := workload.GenSpec(seed, 8*max(groups, 1))
	sc := Scenario{
		Seed:        seed,
		N:           4,
		T:           1,
		Algorithm:   "atplus2",
		Adaptive:    true,
		Classes:     spec.Classes(),
		BaseTimeout: 25 * time.Millisecond,
		MaxBatch:    4,
		Linger:      2 * time.Millisecond,
		MaxInflight: 4,
		Groups:      groups,
		Workload:    spec,
	}
	hdr := sc.TraceHeader()
	if _, err := ScenarioFromTrace(hdr); err != nil {
		t.Fatalf("header does not round-trip to a runnable scenario: %v", err)
	}
	return hdr
}

// TestTraceRecordReplay is the record→replay contract on the sharded
// runtime: a 3-group classed workload records a trace, the trace
// replays with zero audit violations, and the replayed trace encodes
// byte-identically to the recording (the fixed point — one header is
// one execution). The trace round-trips through disk on the way, so
// the audited artifact is the file format, not the in-memory struct.
func TestTraceRecordReplay(t *testing.T) {
	hdr := traceHeader(t, 21, 3)
	tr, res := RecordTrace(hdr, Options{})
	if res.Err != nil {
		t.Fatalf("record: %v", res.Err)
	}
	if !res.OK() || res.Decided == 0 {
		t.Fatalf("recording run not clean: decided=%d shed=%d failed=%d wedged=%v violations=%v\nlog:\n%s",
			res.Decided, res.Shed, res.Failed, res.Wedged, res.Violations, res.Log)
	}
	if len(tr.Events) != len(tr.Outcomes) {
		t.Fatalf("%d events but %d outcomes", len(tr.Events), len(tr.Outcomes))
	}

	path := filepath.Join(t.TempDir(), "run.trace")
	if err := workload.WriteTrace(path, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	read, err := workload.ReadTrace(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}

	rep, replayed, res2 := ReplayTrace(read, Options{})
	if res2.Err != nil {
		t.Fatalf("replay: %v", res2.Err)
	}
	if !rep.OK() {
		t.Fatalf("replay audit found violations: %v\nrecorded log:\n%s\nreplayed log:\n%s",
			rep.Violations, res.Log, res2.Log)
	}
	a, err := read.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := replayed.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("replayed trace is not byte-identical to the recording (%d vs %d bytes)", len(a), len(b))
	}
}

// TestTraceRecordDeterministic: recording the same header twice yields
// byte-identical traces — one seed is one workload is one execution.
func TestTraceRecordDeterministic(t *testing.T) {
	hdr := traceHeader(t, 33, 1)
	tr1, res1 := RecordTrace(hdr, Options{})
	if res1.Err != nil || !res1.OK() {
		t.Fatalf("first recording: err=%v violations=%v", res1.Err, res1.Violations)
	}
	tr2, res2 := RecordTrace(hdr, Options{})
	if res2.Err != nil || !res2.OK() {
		t.Fatalf("second recording: err=%v violations=%v", res2.Err, res2.Violations)
	}
	if res1.Log != res2.Log {
		t.Fatalf("decision logs differ\nfirst:\n%s\nsecond:\n%s", res1.Log, res2.Log)
	}
	a, _ := tr1.Encode()
	b, _ := tr2.Encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("two recordings of one header differ (%d vs %d bytes)", len(a), len(b))
	}
}

// TestTraceMutationFlagged: a deliberately corrupted trace — a decided
// outcome rewritten to another value, or an event the seed never
// generated — fails the replay audit with a pointed violation.
func TestTraceMutationFlagged(t *testing.T) {
	hdr := traceHeader(t, 44, 1)
	tr, res := RecordTrace(hdr, Options{})
	if res.Err != nil || !res.OK() {
		t.Fatalf("record: err=%v violations=%v", res.Err, res.Violations)
	}

	// A rewritten decision value must surface both as a replay mismatch
	// and as a cross-lifetime agreement violation via check.Replay.
	mutated := *tr
	mutated.Outcomes = append([]wire.TraceOutcomeRecord(nil), tr.Outcomes...)
	found := false
	for i, o := range mutated.Outcomes {
		if o.Status == wire.TraceDecided {
			o.Value++
			mutated.Outcomes[i] = o
			found = true
			break
		}
	}
	if !found {
		t.Fatal("recording decided nothing")
	}
	rep, _, _ := ReplayTrace(&mutated, Options{})
	if rep.OK() || rep.Agreement {
		t.Fatalf("mutated outcome not flagged: %+v", rep)
	}
	joined := strings.Join(rep.Violations, "\n")
	if !strings.Contains(joined, "replayed") {
		t.Fatalf("violations do not name the replay mismatch: %v", rep.Violations)
	}

	// A mutated event is a validity violation: the embedded seed is the
	// source of truth and does not generate it.
	mutated = *tr
	mutated.Events = append([]wire.TraceEventRecord(nil), tr.Events...)
	mutated.Events[0].Payload++
	rep, _, _ = ReplayTrace(&mutated, Options{})
	if rep.Validity {
		t.Fatalf("mutated event not flagged: %+v", rep)
	}
}

// TestWorkloadScenarioClasses: the chaos-side classed workload path
// tags outcomes with their cohort's class and the decisions with the
// batch's class — the end-to-end SLO plumbing, on virtual time.
func TestWorkloadScenarioClasses(t *testing.T) {
	hdr := traceHeader(t, 55, 1)
	tr, res := RecordTrace(hdr, Options{})
	if res.Err != nil || !res.OK() {
		t.Fatalf("record: err=%v violations=%v", res.Err, res.Violations)
	}
	classes := make(map[int]bool)
	for i, o := range tr.Outcomes {
		ev := tr.Events[i]
		classes[ev.Class] = true
		if o.Status == wire.TraceDecided && o.Class < ev.Class {
			t.Fatalf("event %d (class %d) decided under lower class %d", i, ev.Class, o.Class)
		}
	}
	if len(classes) < 2 {
		t.Fatalf("generated workload exercised only classes %v", classes)
	}
}
