package chaos

import (
	"strings"
	"testing"
	"time"
)

// TestRunMetricsSnapshot: a quiet scenario's final snapshot carries the
// consensus series, and the counters agree with the run's own result —
// the registry is an account of the same schedule, not a parallel one.
func TestRunMetricsSnapshot(t *testing.T) {
	pin(t)
	sc := Scenario{
		Seed: 7, N: 4, T: 1,
		Algorithm:       "atplus2",
		BaseTimeout:     25 * time.Millisecond,
		MaxBatch:        4,
		Linger:          2 * time.Millisecond,
		MaxInflight:     4,
		InstanceTimeout: 2 * time.Second,
		Proposals:       8,
		Waves:           2,
		WaveGap:         10 * time.Millisecond,
		Horizon:         500 * time.Millisecond,
	}
	r := Run(sc, Options{})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	if r.Metrics == "" {
		t.Fatal("run produced no metrics snapshot")
	}
	for _, series := range []string{
		"indulgence_proposals_total{group=\"0\"} 8",
		"indulgence_resolved_total{group=\"0\"} 8",
		"indulgence_rounds_per_decision_bucket{alg=\"A_t+2\",group=\"0\",le=",
		"indulgence_decision_latency_ns_count{group=\"0\"}",
		"indulgence_journal_entries_total{group=\"0\",kind=\"decision\"}",
	} {
		if !strings.Contains(r.Metrics, series) {
			t.Errorf("snapshot missing %q\nsnapshot:\n%s", series, r.Metrics)
		}
	}
	// Frame counters are live-stack instruments, but their totals are
	// teardown timing, not seed — the chaos snapshot strips them.
	if strings.Contains(r.Metrics, "indulgence_frames_") {
		t.Errorf("snapshot still carries frame counters:\n%s", r.Metrics)
	}
}

// TestRunMetricsDeterministic: the same spec run twice renders a
// byte-identical metrics snapshot — the seed-replay contract extended
// to the introspection plane. Fault-laden generated scenarios exercise
// the latency and rounds histograms on virtual time, so this is also
// the histogram determinism proof: every observed duration is a pure
// function of the event schedule.
func TestRunMetricsDeterministic(t *testing.T) {
	pin(t)
	for seed := int64(1); seed <= 6; seed++ {
		sc := Generate(seed)
		a := Run(sc, Options{})
		if a.Err != nil {
			t.Fatalf("seed %d: %v", seed, a.Err)
		}
		b := Run(sc, Options{})
		if b.Err != nil {
			t.Fatalf("seed %d rerun: %v", seed, b.Err)
		}
		if a.Metrics != b.Metrics {
			t.Errorf("seed %d: metrics snapshots differ\nfirst:\n%s\nsecond:\n%s\nspec: %s",
				seed, a.Metrics, b.Metrics, sc.JSON())
		}
	}
}

// TestMultiGroupMetricsDeterministic extends snapshot byte-identity to
// the sharded runtime, where every group's series share one registry
// and the shared muxes count frames runtime-wide.
func TestMultiGroupMetricsDeterministic(t *testing.T) {
	pin(t)
	for seed := int64(31); seed <= 33; seed++ {
		sc := GenerateGroups(seed, 2)
		a := Run(sc, Options{})
		if a.Err != nil {
			t.Fatalf("seed %d: %v", seed, a.Err)
		}
		b := Run(sc, Options{})
		if b.Err != nil {
			t.Fatalf("seed %d rerun: %v", seed, b.Err)
		}
		if a.Metrics != b.Metrics {
			t.Errorf("seed %d: metrics snapshots differ\nfirst:\n%s\nsecond:\n%s\nspec: %s",
				seed, a.Metrics, b.Metrics, sc.JSON())
		}
	}
}
