package chaos

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"indulgence/internal/model"
)

// pin serializes goroutine scheduling for the reproducibility contract:
// seed replay is promised under GOMAXPROCS(1), matching the chaos CLI.
func pin(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(1)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestScenarioSpecRoundTrip: the printed JSON of a spec re-encodes
// byte-identically after a parse — the replay artifact is lossless.
func TestScenarioSpecRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		sc := Generate(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid scenario: %v", seed, err)
		}
		enc := sc.JSON()
		sc2, err := ParseScenario([]byte(enc))
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if enc2 := sc2.JSON(); enc != enc2 {
			t.Fatalf("seed %d: spec not stable under round-trip:\n%s\n%s", seed, enc, enc2)
		}
	}
}

// TestGenerateDeterministic: the same seed always yields the same spec.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, _ := json.Marshal(Generate(seed))
		b, _ := json.Marshal(Generate(seed))
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestRunQuietScenario: a fault-free hand-written spec decides every
// proposal with no violations, in a sliver of wall time.
func TestRunQuietScenario(t *testing.T) {
	pin(t)
	sc := Scenario{
		Seed: 7, N: 4, T: 1,
		Algorithm:       "atplus2",
		BaseTimeout:     25 * time.Millisecond,
		MaxBatch:        4,
		Linger:          2 * time.Millisecond,
		MaxInflight:     4,
		InstanceTimeout: 2 * time.Second,
		Proposals:       8,
		Waves:           2,
		WaveGap:         10 * time.Millisecond,
		Horizon:         500 * time.Millisecond,
	}
	r := Run(sc, Options{})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	if !r.OK() || r.Decided != sc.Proposals {
		t.Fatalf("quiet scenario not clean: decided=%d shed=%d failed=%d wedged=%v violations=%v\nlog:\n%s",
			r.Decided, r.Shed, r.Failed, r.Wedged, r.Violations, r.Log)
	}
}

// TestRunReproducible: the same spec run twice produces an identical
// decision log — the seed-replay contract, exercised on a scenario
// with partitions, crashes and link noise.
func TestRunReproducible(t *testing.T) {
	pin(t)
	for seed := int64(1); seed <= 6; seed++ {
		sc := Generate(seed)
		a := Run(sc, Options{})
		if a.Err != nil {
			t.Fatalf("seed %d: %v", seed, a.Err)
		}
		b := Run(sc, Options{})
		if b.Err != nil {
			t.Fatalf("seed %d rerun: %v", seed, b.Err)
		}
		if a.Log != b.Log {
			t.Errorf("seed %d: decision logs differ\nfirst:\n%s\nsecond:\n%s\nspec: %s",
				seed, a.Log, b.Log, sc.JSON())
		}
	}
}

// TestSweepSmoke: a seeded batch of generated scenarios runs clean —
// no violations, no wedges, no failed proposals — and the virtual
// schedule compresses (virtual time exceeds wall time).
func TestSweepSmoke(t *testing.T) {
	pin(t)
	count := 25
	if testing.Short() {
		count = 8
	}
	st := Sweep(1000, count, Options{}, nil)
	for _, f := range st.Failures {
		t.Errorf("seed %d: wedged=%v failed=%d violations=%v\nspec: %s\nlog:\n%s",
			f.Scenario.Seed, f.Wedged, f.Failed, f.Violations, f.Scenario.JSON(), f.Log)
	}
	if st.Decided == 0 {
		t.Fatalf("sweep decided nothing: %+v", st)
	}
	t.Logf("sweep: %d runs, %d decided, %d shed, virtual %v in wall %v",
		st.Runs, st.Decided, st.Shed, st.Virtual, st.Wall)
}

// TestCrashScenario: crashing t processes mid-run still decides every
// proposal (the runtime excuses crashed processes; t bounds them).
func TestCrashScenario(t *testing.T) {
	pin(t)
	sc := Scenario{
		Seed: 11, N: 5, T: 2,
		Algorithm:       "atplus2",
		BaseTimeout:     20 * time.Millisecond,
		MaxBatch:        3,
		Linger:          time.Millisecond,
		MaxInflight:     3,
		InstanceTimeout: 3 * time.Second,
		Proposals:       6,
		Waves:           2,
		WaveGap:         50 * time.Millisecond,
		Horizon:         600 * time.Millisecond,
		Crashes: []Crash{
			{P: 2, At: 30 * time.Millisecond},
			{P: 5, At: 70 * time.Millisecond, Restart: 200 * time.Millisecond},
		},
	}
	r := Run(sc, Options{})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	if !r.OK() || r.Failed > 0 {
		t.Fatalf("crash scenario not clean: decided=%d failed=%d wedged=%v violations=%v\nlog:\n%s",
			r.Decided, r.Failed, r.Wedged, r.Violations, r.Log)
	}
}

// TestPartitionScenario: a full partition below quorum on both sides
// wedges every instance until the heal, then decides — indulgence as a
// runnable property.
func TestPartitionScenario(t *testing.T) {
	pin(t)
	sc := Scenario{
		Seed: 13, N: 4, T: 1,
		Algorithm:       "diamonds",
		BaseTimeout:     20 * time.Millisecond,
		MaxBatch:        4,
		Linger:          time.Millisecond,
		MaxInflight:     2,
		InstanceTimeout: 3 * time.Second,
		Proposals:       4,
		Waves:           1,
		Horizon:         500 * time.Millisecond,
		Partitions: []Partition{{
			A: []model.ProcessID{1, 2}, B: []model.ProcessID{3, 4},
			From: 0, Until: 400 * time.Millisecond,
		}},
	}
	r := Run(sc, Options{})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	if !r.OK() || r.Failed > 0 {
		t.Fatalf("partition scenario not clean: decided=%d failed=%d wedged=%v violations=%v\nlog:\n%s",
			r.Decided, r.Failed, r.Wedged, r.Violations, r.Log)
	}
	// The heal gates the decisions: virtual completion must lie past
	// the partition window.
	if r.Virtual < 400*time.Millisecond {
		t.Fatalf("decided in %v virtual, inside the partition window", r.Virtual)
	}
}

// TestMultiGroupSweep is the sharded chaos battery: seeded generated
// scenarios — partitions, link noise, crash/restarts — run on the
// multi-group runtime, and every run must come back with zero
// check.Instance and check.Replay violations in every group (the
// per-group prefixes in Rollup.Violations and the combined-journal
// replay cover all groups). Scaled load means every group sees traffic.
func TestMultiGroupSweep(t *testing.T) {
	pin(t)
	count := 12
	if testing.Short() {
		count = 5
	}
	st := SweepGroups(4000, count, 3, Options{}, func(r Result) {
		if r.Scenario.Groups != 3 {
			t.Fatalf("seed %d: scenario ran with %d groups", r.Scenario.Seed, r.Scenario.Groups)
		}
	})
	for _, f := range st.Failures {
		t.Errorf("seed %d: wedged=%v failed=%d violations=%v\nspec: %s\nlog:\n%s",
			f.Scenario.Seed, f.Wedged, f.Failed, f.Violations, f.Scenario.JSON(), f.Log)
	}
	if st.Decided == 0 {
		t.Fatalf("multi-group sweep decided nothing: %+v", st)
	}
	t.Logf("multi-group sweep: %d runs, %d decided, %d shed, virtual %v in wall %v",
		st.Runs, st.Decided, st.Shed, st.Virtual, st.Wall)
}

// TestMultiGroupReproducible extends the seed-replay contract to the
// sharded runtime: the same multi-group spec run twice produces an
// identical decision log.
func TestMultiGroupReproducible(t *testing.T) {
	pin(t)
	for seed := int64(31); seed <= 34; seed++ {
		sc := GenerateGroups(seed, 2)
		a := Run(sc, Options{})
		if a.Err != nil {
			t.Fatalf("seed %d: %v", seed, a.Err)
		}
		b := Run(sc, Options{})
		if b.Err != nil {
			t.Fatalf("seed %d rerun: %v", seed, b.Err)
		}
		if a.Log != b.Log {
			t.Errorf("seed %d: decision logs differ\nfirst:\n%s\nsecond:\n%s\nspec: %s",
				seed, a.Log, b.Log, sc.JSON())
		}
	}
}

// TestGenerateGroupsSharesSchedule pins GenerateGroups to Generate's
// rand stream: the multi-group spec differs from the single-group one
// only in Groups and Proposals — same faults, same shape, same seed.
func TestGenerateGroupsSharesSchedule(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		single := Generate(seed)
		multi := GenerateGroups(seed, 4)
		if multi.Groups != 4 {
			t.Fatalf("seed %d: groups = %d", seed, multi.Groups)
		}
		if multi.Proposals < single.Proposals {
			t.Fatalf("seed %d: scaled load %d below single-group load %d",
				seed, multi.Proposals, single.Proposals)
		}
		multi.Groups = single.Groups
		multi.Proposals = single.Proposals
		if multi.JSON() != single.JSON() {
			t.Fatalf("seed %d: specs diverge beyond Groups/Proposals:\n%s\n%s",
				seed, single.JSON(), multi.JSON())
		}
		if err := GenerateGroups(seed, 4).Validate(); err != nil {
			t.Fatalf("seed %d: invalid multi-group scenario: %v", seed, err)
		}
	}
}
