// Package chaos is the deterministic fault-injection harness for the
// live service stack. A Scenario is a pure-data description of one
// adversarial execution — link faults, partitions, gray links, crashes
// and the proposal load — and Run executes it on a virtual clock
// (internal/chaos/clock): the whole stack, from batching lingers down
// to suspicion timeouts and delayed frame deliveries, advances on
// simulated time, so a thousand multi-second executions finish in
// wall-clock seconds and a failing seed replays from its printed spec.
//
// The fault model follows the paper's ES network: channels are
// reliable but may delay messages arbitrarily. "Dropping" a frame
// therefore means delaying it to the scenario horizon (late, not
// lost) — true loss would leave the round protocol, which never
// retransmits, wedged below its quorum with no adversary to blame.
// Partitions delay frames sent across the cut until the heal instant,
// gray links are heavy one-directional delay, duplicates and jitter
// are delivered as-is (receive sets are idempotent and order-blind).
// Under this adversary the paper's theorems say safety violations are
// impossible; every run is audited with check.Instance and
// check.Replay, so a violation is a defect detector firing, never an
// accepted outcome.
package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	//indulgence:prng locally seeded; published seed->scenario mapping pins math/rand's fixed sequence
	"math/rand"
	"time"

	"indulgence/internal/adapt"
	"indulgence/internal/core"
	"indulgence/internal/model"
	"indulgence/internal/workload"
)

// LinkFault perturbs the ordered process pair From→To.
type LinkFault struct {
	// From and To name the directed link.
	From, To model.ProcessID
	// Delay is the base one-way delivery delay added to every frame.
	Delay time.Duration
	// Jitter adds a per-frame delay drawn uniformly from [0, Jitter),
	// hashed from the frame bytes — enough to reorder back-to-back
	// sends.
	Jitter time.Duration
	// DropP is the probability a frame is "dropped": delayed to the
	// scenario horizon instead of lost (see the package comment).
	DropP float64
	// DupP is the probability a frame is delivered twice, the copy
	// landing one jitter interval after the original.
	DupP float64
}

// Partition disconnects two process groups during a time window.
type Partition struct {
	// A and B are the two sides of the cut. Processes in neither group
	// are unaffected.
	A, B []model.ProcessID
	// From and Until bound the window, as offsets from scenario start.
	// Frames sent across the cut inside the window are delayed until
	// Until (the heal instant).
	From, Until time.Duration
	// OneWay makes the cut asymmetric: only A→B frames are held; B→A
	// flows normally.
	OneWay bool
}

// Crash schedules a crash-stop failure.
type Crash struct {
	// P is the crashed process.
	P model.ProcessID
	// At is the crash instant, as an offset from scenario start. Every
	// instance running at that instant loses P; instances started while
	// P is down start with P crashed.
	At time.Duration
	// Restart, when nonzero, is the instant (offset from scenario
	// start, after At) from which NEW instances include P again.
	// Instances that already lost P keep it crashed — a crash is
	// per-instance crash-stop, exactly like the runtime's model.
	Restart time.Duration
}

// Scenario is a complete, JSON-serializable chaos experiment: system
// shape, algorithm, fault schedule and proposal load. The spec is pure
// data — replaying the printed JSON of a failing run reproduces it
// exactly (run with GOMAXPROCS(1), as the chaos CLI and tests do).
type Scenario struct {
	// Seed feeds every per-frame fault decision (hashed, so decisions
	// are order-independent) and names the scenario.
	Seed int64
	// N and T describe the system.
	N, T int
	// Algorithm names the consensus algorithm: atplus2, atplus2ff,
	// diamonds, or afplus2. Generated scenarios use only the indulgent
	// three: A_f+2 is safe only under accurate detection, which an
	// adversarial schedule deliberately violates.
	Algorithm string
	// Adaptive attaches the feedback control plane (batch/linger
	// tuning; never algorithm selection, which would smuggle A_f+2
	// under the adversary).
	Adaptive bool
	// BaseTimeout is the instances' initial suspicion timeout.
	BaseTimeout time.Duration
	// MaxBatch, Linger and MaxInflight configure the service batcher.
	MaxBatch    int
	Linger      time.Duration
	MaxInflight int
	// InstanceTimeout is the per-instance deadline. It must clear the
	// horizon, or instances wedged behind a partition are failed
	// spuriously.
	InstanceTimeout time.Duration
	// Proposals is the total client load, submitted in Waves waves
	// spaced WaveGap apart starting at scenario start.
	Proposals int
	Waves     int
	WaveGap   time.Duration
	// Horizon is the fault horizon: dropped frames deliver shortly
	// after it, and all fault windows end at or before it.
	Horizon time.Duration
	// Groups, when above 1, runs the scenario on the sharded runtime
	// (internal/shard): Groups consensus groups over the shared
	// endpoints, proposals placed round-robin, every group journaling
	// into its own subdirectory and audited per group. 0 or 1 runs the
	// single-group service exactly as before the field existed; the
	// field is omitted from the JSON encoding when 0, so legacy specs
	// replay byte-identically.
	Groups int `json:",omitempty"`
	// Workload, when set, replaces the fixed wave load with a generated
	// workload (internal/workload): every generated event is submitted
	// at its virtual arrival instant, at its cohort's SLO class, and the
	// run's outcomes are captured as trace records (Result.Outcomes).
	// The spec must carry a MaxEvents cap no larger than the runtime's
	// total intake capacity (MaxBatch × MaxInflight × groups), because
	// scenario load is submitted on the clock driver and must never
	// block. Proposals, Waves and WaveGap must be zero. Omitted from the
	// JSON encoding when nil, so legacy specs replay byte-identically.
	Workload *workload.Spec `json:",omitempty"`
	// Classes, when above 1, arms per-SLO-class admission control on the
	// adaptive plane (adapt.Config.Classes); it requires Adaptive and is
	// only meaningful with a classed workload. Omitted when 0.
	Classes int `json:",omitempty"`
	// Links, Partitions and Crashes are the fault schedule.
	Links      []LinkFault
	Partitions []Partition
	Crashes    []Crash
}

// JSON returns the compact canonical encoding of the scenario — the
// replay artifact printed for failing runs. Encoding is deterministic
// (fixed field order, exact float round-trip), so equal specs encode
// byte-identically.
func (sc Scenario) JSON() string {
	b, err := json.Marshal(sc)
	if err != nil {
		// Scenario has no unmarshalable fields; keep the signature clean.
		panic(fmt.Sprintf("chaos: encode scenario: %v", err))
	}
	return string(b)
}

// ParseScenario decodes a spec printed by JSON.
func ParseScenario(b []byte) (Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(b, &sc); err != nil {
		return Scenario{}, fmt.Errorf("chaos: parse scenario: %w", err)
	}
	return sc, sc.Validate()
}

// Validate rejects specs the harness cannot run faithfully.
func (sc Scenario) Validate() error {
	if sc.N < 2 {
		return fmt.Errorf("chaos: n=%d, need at least 2", sc.N)
	}
	if sc.T < 0 || sc.T >= sc.N {
		return fmt.Errorf("chaos: t=%d outside [0,%d)", sc.T, sc.N)
	}
	if _, _, err := algByName(sc.Algorithm); err != nil {
		return err
	}
	if sc.Workload != nil {
		if err := sc.Workload.Validate(); err != nil {
			return fmt.Errorf("chaos: workload: %w", err)
		}
		groups := sc.Groups
		if groups < 1 {
			groups = 1
		}
		if bound := sc.MaxBatch * sc.MaxInflight * groups; sc.Workload.MaxEvents < 1 || sc.Workload.MaxEvents > bound {
			return fmt.Errorf("chaos: workload MaxEvents %d outside [1,%d] (MaxBatch×MaxInflight×groups — scenario load must never block the clock driver)",
				sc.Workload.MaxEvents, bound)
		}
		if sc.Proposals != 0 || sc.Waves != 0 || sc.WaveGap != 0 {
			return errors.New("chaos: a workload scenario must leave Proposals, Waves and WaveGap zero")
		}
	} else if sc.Proposals < 1 {
		return fmt.Errorf("chaos: %d proposals", sc.Proposals)
	}
	if sc.Classes < 0 || sc.Classes > adapt.MaxClasses {
		return fmt.Errorf("chaos: %d classes outside [0,%d]", sc.Classes, adapt.MaxClasses)
	}
	if sc.Classes > 1 && !sc.Adaptive {
		return errors.New("chaos: Classes needs Adaptive (per-class admission lives on the control plane)")
	}
	if sc.BaseTimeout <= 0 || sc.Horizon <= 0 || sc.InstanceTimeout <= sc.Horizon {
		return fmt.Errorf("chaos: need BaseTimeout>0, Horizon>0 and InstanceTimeout>Horizon (got %v, %v, %v)",
			sc.BaseTimeout, sc.Horizon, sc.InstanceTimeout)
	}
	if sc.Groups < 0 || sc.Groups > 64 {
		return fmt.Errorf("chaos: %d groups outside [0,64]", sc.Groups)
	}
	crashed := make(map[model.ProcessID]bool)
	for _, c := range sc.Crashes {
		if c.P < 1 || int(c.P) > sc.N {
			return fmt.Errorf("chaos: crash of unknown process %d", c.P)
		}
		if c.Restart != 0 && c.Restart <= c.At {
			return fmt.Errorf("chaos: p%d restarts at %v, before its crash at %v", c.P, c.Restart, c.At)
		}
		crashed[c.P] = true
	}
	if len(crashed) > sc.T {
		return fmt.Errorf("chaos: %d distinct crashed processes exceed t=%d", len(crashed), sc.T)
	}
	for _, p := range sc.Partitions {
		if p.Until <= p.From {
			return fmt.Errorf("chaos: partition window [%v,%v) is empty", p.From, p.Until)
		}
		if p.Until > sc.Horizon {
			return fmt.Errorf("chaos: partition heals at %v, past horizon %v", p.Until, sc.Horizon)
		}
	}
	for _, l := range sc.Links {
		if l.From < 1 || int(l.From) > sc.N || l.To < 1 || int(l.To) > sc.N {
			return fmt.Errorf("chaos: link fault on unknown pair %d->%d", l.From, l.To)
		}
		if l.DropP < 0 || l.DropP > 1 || l.DupP < 0 || l.DupP > 1 {
			return fmt.Errorf("chaos: link %d->%d probabilities outside [0,1]", l.From, l.To)
		}
	}
	return nil
}

// algByName resolves a scenario algorithm name to its factory and wait
// policy (the ◇S discipline for diamonds, ◇P otherwise).
func algByName(name string) (model.Factory, core.WaitPolicy, error) {
	switch name {
	case "atplus2":
		return core.New(core.Options{}), core.WaitUnsuspected, nil
	case "atplus2ff":
		return core.New(core.Options{FailureFreeFast: true}), core.WaitUnsuspected, nil
	case "diamonds":
		return core.NewDiamondS(), core.WaitQuorum, nil
	case "afplus2":
		return core.NewAfPlus2(), core.WaitUnsuspected, nil
	default:
		return nil, 0, fmt.Errorf("chaos: unknown algorithm %q", name)
	}
}

// generated scenario shape: the ranges are chosen so that every
// generated scenario is live by construction — fault windows end at the
// horizon, instance deadlines clear it with slack for the post-heal
// rounds, crashes stay within t — while still exercising partitions,
// gray links, drop/dup/jitter and mid-run crashes.
var generatedAlgorithms = []string{"atplus2", "atplus2ff", "diamonds"}

// Generate derives a random-but-reproducible scenario from seed: the
// same seed always yields the same spec (math/rand's sequence for a
// fixed seed is part of Go's compatibility promise).
func Generate(seed int64) Scenario {
	r := rand.New(rand.NewSource(seed))
	n := 3 + r.Intn(3) // 3..5
	t := 1
	if n >= 5 && r.Intn(2) == 0 {
		t = 2
	}
	base := time.Duration(20+10*r.Intn(4)) * time.Millisecond // 20..50ms
	horizon := time.Duration(400+200*r.Intn(4)) * time.Millisecond

	sc := Scenario{
		Seed:        seed,
		N:           n,
		T:           t,
		Algorithm:   generatedAlgorithms[r.Intn(len(generatedAlgorithms))],
		Adaptive:    r.Intn(4) == 0,
		BaseTimeout: base,
		MaxBatch:    2 + r.Intn(3),
		Linger:      time.Duration(1+r.Intn(4)) * time.Millisecond,
		MaxInflight: 2 + r.Intn(3),
		Horizon:     horizon,
		// Post-heal, every round completes within a few base timeouts;
		// 64× base clears even a fully backed-off detector.
		InstanceTimeout: horizon + 64*base,
	}
	// Load: never more proposals than the intake can hold outright, so
	// wave submission (which runs on the clock driver) cannot block.
	cap := sc.MaxBatch * sc.MaxInflight
	sc.Proposals = 2 + r.Intn(2*cap)
	if sc.Proposals > cap {
		sc.Proposals = cap
	}
	sc.Waves = 1 + r.Intn(3)
	sc.WaveGap = horizon / time.Duration(sc.Waves+1)

	// Per-link noise: delay, jitter, drops, duplicates.
	for from := 1; from <= n; from++ {
		for to := 1; to <= n; to++ {
			if from == to || r.Float64() >= 0.3 {
				continue
			}
			sc.Links = append(sc.Links, LinkFault{
				From:   model.ProcessID(from),
				To:     model.ProcessID(to),
				Delay:  time.Duration(r.Int63n(int64(2 * base))),
				Jitter: time.Duration(r.Int63n(int64(base))),
				DropP:  0.3 * r.Float64(),
				DupP:   0.2 * r.Float64(),
			})
		}
	}
	// A gray link: one direction of one pair turns very slow.
	if r.Intn(3) == 0 {
		from := model.ProcessID(1 + r.Intn(n))
		to := model.ProcessID(1 + r.Intn(n))
		if from != to {
			sc.Links = append(sc.Links, LinkFault{
				From:  from,
				To:    to,
				Delay: time.Duration(4+r.Intn(5)) * base,
			})
		}
	}
	// A partition: random nonempty split, window inside the horizon.
	if r.Intn(2) == 0 {
		var a, b []model.ProcessID
		for p := 1; p <= n; p++ {
			if r.Intn(2) == 0 {
				a = append(a, model.ProcessID(p))
			} else {
				b = append(b, model.ProcessID(p))
			}
		}
		if len(a) > 0 && len(b) > 0 {
			from := time.Duration(r.Int63n(int64(horizon / 2)))
			width := time.Duration(r.Int63n(int64(horizon/2))) + time.Millisecond
			until := from + width
			if until > horizon {
				until = horizon
			}
			sc.Partitions = append(sc.Partitions, Partition{
				A: a, B: b, From: from, Until: until, OneWay: r.Intn(2) == 0,
			})
		}
	}
	// Crashes: up to t distinct processes, optionally restarting.
	k := r.Intn(t + 1)
	perm := r.Perm(n)
	for i := 0; i < k; i++ {
		c := Crash{
			P:  model.ProcessID(perm[i] + 1),
			At: time.Duration(r.Int63n(int64(horizon / 2))),
		}
		if r.Intn(2) == 0 {
			c.Restart = c.At + time.Duration(r.Int63n(int64(horizon/4))) + time.Millisecond
		}
		sc.Crashes = append(sc.Crashes, c)
	}
	return sc
}

// GenerateGroups derives the multi-group variant of Generate(seed): the
// identical spec — it consumes Generate's rand stream untouched, so the
// shared fields match seed for seed — with Groups set and the proposal
// load scaled so every group sees traffic. The scaled load keeps
// Generate's non-blocking bound, now groups intakes wide. groups <= 1
// returns Generate's spec unchanged.
func GenerateGroups(seed int64, groups int) Scenario {
	sc := Generate(seed)
	if groups <= 1 {
		return sc
	}
	sc.Groups = groups
	bound := sc.MaxBatch * sc.MaxInflight * groups
	sc.Proposals *= groups
	if sc.Proposals > bound {
		sc.Proposals = bound
	}
	return sc
}
