package chaos

import (
	"fmt"
	goruntime "runtime"
	"time"

	"indulgence/internal/check"
	"indulgence/internal/model"
	"indulgence/internal/wire"
	"indulgence/internal/workload"
)

// This file is the trace record/replay engine: a workload trace header
// (wire.TraceHeaderRecord) fully determines one deterministic execution
// — system shape, algorithm, batching knobs, admission classes, and the
// embedded workload spec whose seed regenerates the event stream — so
// recording a trace and replaying it are the SAME operation, run twice.
// RecordTrace executes the header's run on a fresh virtual clock behind
// a faultless fault fabric (every delivery still a tagged clock event,
// which is what makes the run replayable) and returns the trace;
// ReplayTrace re-executes a recorded trace's header and audits the
// replayed decisions against the recorded ones. A deterministic trace
// is a fixed point: RecordTrace(tr.Header) re-encodes byte-identically.

// ScenarioFromTrace reconstructs the runnable scenario a deterministic
// trace header describes. The reconstruction is canonical — horizon and
// instance deadline are derived from the header, never carried in it —
// so the recorder and every replayer run the exact same scenario.
func ScenarioFromTrace(hdr wire.TraceHeaderRecord) (Scenario, error) {
	if hdr.Version != wire.TraceFormatVersion {
		return Scenario{}, fmt.Errorf("chaos: trace format v%d, this build speaks v%d", hdr.Version, wire.TraceFormatVersion)
	}
	spec, err := workload.ParseSpec([]byte(hdr.Spec))
	if err != nil {
		return Scenario{}, fmt.Errorf("chaos: trace spec: %w", err)
	}
	base := time.Duration(hdr.TimeoutNanos)
	// Post-load, every round completes within a few base timeouts; the
	// Generate slack (64×base past the horizon) clears even a fully
	// backed-off detector.
	horizon := spec.Duration() + base
	sc := Scenario{
		Seed:            hdr.Seed,
		N:               hdr.N,
		T:               hdr.T,
		Algorithm:       hdr.Algorithm,
		Adaptive:        hdr.Classes > 0,
		Classes:         hdr.Classes,
		BaseTimeout:     base,
		MaxBatch:        hdr.MaxBatch,
		Linger:          time.Duration(hdr.LingerNanos),
		MaxInflight:     hdr.MaxInflight,
		InstanceTimeout: horizon + 64*base,
		Horizon:         horizon,
		Groups:          hdr.Groups,
		Workload:        spec,
	}
	return sc, sc.Validate()
}

// TraceHeader derives the deterministic trace header under which sc's
// workload run records. It is the inverse of ScenarioFromTrace for the
// fields a header carries; sc must be a valid workload scenario.
func (sc Scenario) TraceHeader() wire.TraceHeaderRecord {
	placement := ""
	if sc.Groups > 1 {
		placement = "round-robin"
	}
	return wire.TraceHeaderRecord{
		Version:       wire.TraceFormatVersion,
		Deterministic: true,
		Seed:          sc.Seed,
		N:             sc.N,
		T:             sc.T,
		Groups:        sc.Groups,
		MaxBatch:      sc.MaxBatch,
		MaxInflight:   sc.MaxInflight,
		LingerNanos:   int64(sc.Linger),
		TimeoutNanos:  int64(sc.BaseTimeout),
		Algorithm:     sc.Algorithm,
		Placement:     placement,
		Classes:       sc.Classes,
		Spec:          sc.Workload.JSON(),
	}
}

// RecordTrace executes the deterministic run a trace header describes
// and returns its trace alongside the audited chaos result. Determinism
// needs one scheduler thread: GOMAXPROCS is pinned to 1 for the run and
// restored after (same-instant goroutine wakeups must interleave
// identically on every execution).
func RecordTrace(hdr wire.TraceHeaderRecord, opts Options) (*workload.Trace, Result) {
	sc, err := ScenarioFromTrace(hdr)
	if err != nil {
		return nil, Result{Err: err}
	}
	defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(1))
	res := Run(sc, opts)
	if res.Err != nil {
		return nil, res
	}
	tr := &workload.Trace{Header: hdr, Outcomes: res.Outcomes}
	for _, e := range sc.Workload.Events() {
		tr.Events = append(tr.Events, e.Record())
	}
	return tr, res
}

// ReplayTrace re-executes a recorded trace and audits the replay
// against the recording. A deterministic recording must reproduce
// exactly — every replayed outcome record equal to its recorded one —
// and additionally passes both lifetimes through check.Replay, so a
// recorded decision that resurfaces with another value is flagged as a
// cross-lifetime agreement violation. A non-deterministic recording (a
// real-clock bench run) cannot be re-executed faithfully; it gets the
// standalone AuditTrace consistency audit instead and replayed is nil.
func ReplayTrace(recorded *workload.Trace, opts Options) (rep check.Report, replayed *workload.Trace, res Result) {
	if !recorded.Header.Deterministic {
		return AuditTrace(recorded), nil, Result{}
	}
	replayed, res = RecordTrace(recorded.Header, opts)
	if res.Err != nil {
		rep = check.Report{Violations: []string{fmt.Sprintf("replay failed: %v", res.Err)}}
		return rep, nil, res
	}
	rep = AuditReplay(recorded, replayed)
	rep.Violations = append(rep.Violations, res.Violations...)
	return rep, replayed, res
}

// AuditReplay cross-checks a replayed trace against its recording:
// identical headers and event streams, and — both sides being
// deterministic executions of one header — outcome records equal
// field for field (latency included: virtual time is part of the
// determinism contract). The decided outcomes of both lifetimes are
// additionally fed through check.Replay, recorded as the journal view
// and replayed as the live view, extending uniform agreement across
// the record/replay boundary. Validity/Agreement mirror the findings;
// Termination is not assessable here and reports true.
func AuditReplay(recorded, replayed *workload.Trace) check.Report {
	rep := check.Report{Validity: true, Agreement: true, Termination: true}
	if recorded.Header != replayed.Header {
		rep.Validity = false
		rep.Violations = append(rep.Violations, "trace: replay ran a different header than recorded")
	}
	auditEvents(&rep, recorded)
	if len(recorded.Events) != len(replayed.Events) {
		rep.Validity = false
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("trace: %d recorded events but %d replayed", len(recorded.Events), len(replayed.Events)))
	}
	n := len(recorded.Outcomes)
	if len(replayed.Outcomes) != n {
		rep.Agreement = false
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("trace: %d recorded outcomes but %d replayed", n, len(replayed.Outcomes)))
		if len(replayed.Outcomes) < n {
			n = len(replayed.Outcomes)
		}
	}
	for i := 0; i < n; i++ {
		if recorded.Outcomes[i] != replayed.Outcomes[i] {
			rep.Agreement = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("trace: event %d recorded %+v but replayed %+v",
					recorded.Outcomes[i].Seq, recorded.Outcomes[i], replayed.Outcomes[i]))
		}
	}
	crossReplay(&rep, recorded, replayed)
	return rep
}

// AuditTrace audits one trace standalone — the only audit available to
// a non-deterministic (real-clock) recording: the embedded spec must
// regenerate the recorded event stream byte-exactly, every event must
// carry exactly one outcome, and the decided outcomes must form a
// consistent decision journal under check.Replay (one value, one group,
// one class per instance).
func AuditTrace(tr *workload.Trace) check.Report {
	rep := check.Report{Validity: true, Agreement: true, Termination: true}
	auditEvents(&rep, tr)
	if len(tr.Outcomes) != len(tr.Events) {
		rep.Validity = false
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("trace: %d events but %d outcomes", len(tr.Events), len(tr.Outcomes)))
	}
	for i, o := range tr.Outcomes {
		if o.Seq != uint64(i) {
			rep.Validity = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("trace: outcome %d carries seq %d", i, o.Seq))
		}
	}
	crossReplay(&rep, tr, nil)
	return rep
}

// auditEvents checks a trace's event stream against its embedded spec:
// the spec is the trace's source of truth, so a recorded event the seed
// does not regenerate means the trace was not written by a correct
// recorder (or was mutated after the fact).
func auditEvents(rep *check.Report, tr *workload.Trace) {
	spec, err := workload.ParseSpec([]byte(tr.Header.Spec))
	if err != nil {
		rep.Validity = false
		rep.Violations = append(rep.Violations, fmt.Sprintf("trace: embedded spec: %v", err))
		return
	}
	gen := spec.Events()
	if len(gen) != len(tr.Events) {
		rep.Validity = false
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("trace: spec generates %d events but %d are recorded", len(gen), len(tr.Events)))
		return
	}
	for i, e := range gen {
		if rec := e.Record(); rec != tr.Events[i] {
			rep.Validity = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("trace: event %d recorded as %+v but the seed generates %+v", i, tr.Events[i], rec))
		}
	}
}

// crossReplay runs check.Replay with recorded decided outcomes as the
// journal view and replayed decided outcomes (when present) as the live
// view, folding its findings into rep.
func crossReplay(rep *check.Report, recorded, replayed *workload.Trace) {
	var records []wire.DecisionRecord
	for _, o := range recorded.Outcomes {
		if o.Status != wire.TraceDecided {
			continue
		}
		records = append(records, wire.DecisionRecord{
			Instance: o.Instance, Value: o.Value, Round: o.Round,
			Batch: o.Batch, Group: o.Group, Class: o.Class,
		})
	}
	var live map[uint64]model.Value
	if replayed != nil {
		live = make(map[uint64]model.Value)
		for _, o := range replayed.Outcomes {
			if o.Status == wire.TraceDecided {
				live[o.Instance] = o.Value
			}
		}
	}
	cross := check.Replay(records, nil, live)
	if !cross.Validity {
		rep.Validity = false
	}
	if !cross.Agreement {
		rep.Agreement = false
	}
	rep.Violations = append(rep.Violations, cross.Violations...)
}
