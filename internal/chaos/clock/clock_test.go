package clock

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestVirtualTimerOrder schedules events out of order and checks they
// fire in deterministic (time, registration) order.
func TestVirtualTimerOrder(t *testing.T) {
	v := NewVirtual()
	var got []int
	v.AfterFunc(30*time.Millisecond, func() { got = append(got, 3) })
	v.AfterFunc(10*time.Millisecond, func() { got = append(got, 1) })
	v.AfterFunc(20*time.Millisecond, func() { got = append(got, 2) })
	v.AfterFunc(10*time.Millisecond, func() { got = append(got, 11) }) // same instant: registration order

	start := v.Now()
	for v.Step() {
	}
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if d := v.Now().Sub(start); d != 30*time.Millisecond {
		t.Fatalf("clock advanced %v, want 30ms", d)
	}
}

// TestVirtualTimerStopReset exercises the Stop/Reset contract.
func TestVirtualTimerStopReset(t *testing.T) {
	v := NewVirtual()
	var fired atomic.Int32
	tm := v.AfterFunc(10*time.Millisecond, func() { fired.Add(1) })
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	for v.Step() {
	}
	if fired.Load() != 0 {
		t.Fatal("stopped timer fired")
	}
	tm.Reset(5 * time.Millisecond)
	for v.Step() {
	}
	if fired.Load() != 1 {
		t.Fatalf("reset timer fired %d times, want 1", fired.Load())
	}
}

// TestVirtualTicker checks periodic ticks advance virtual time by the
// period and stop cleanly.
func TestVirtualTicker(t *testing.T) {
	v := NewVirtual()
	tick := v.NewTicker(5 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if !v.Step() {
			t.Fatal("ticker ran out of events")
		}
		select {
		case <-tick.C():
		default:
			t.Fatalf("no tick after step %d", i)
		}
	}
	if d := v.Since(epoch); d != 15*time.Millisecond {
		t.Fatalf("3 ticks advanced %v, want 15ms", d)
	}
	tick.Stop()
	if v.Step() {
		t.Fatal("stopped ticker left live events")
	}
}

// TestVirtualChannelTimer checks NewTimer delivers the fire time on C.
func TestVirtualChannelTimer(t *testing.T) {
	v := NewVirtual()
	tm := v.NewTimer(7 * time.Millisecond)
	if !v.Step() {
		t.Fatal("no event")
	}
	select {
	case at := <-tm.C():
		if want := epoch.Add(7 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer channel empty after step")
	}
}

// TestVirtualRunWakesBlockedGoroutine is the shape every harness run
// has: a goroutine blocked on a clock timer makes progress only when
// the driver steps, and Run returns once it signals done.
func TestVirtualRunWakesBlockedGoroutine(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	tm := v.NewTimer(50 * time.Millisecond)
	go func() {
		<-tm.C()
		close(done)
	}()
	if !v.Run(done) {
		t.Fatal("Run reported wedged")
	}
}

// TestVirtualRunWedge: no events, done never closes — Run must report
// the wedge instead of spinning.
func TestVirtualRunWedge(t *testing.T) {
	v := NewVirtual()
	if v.Run(make(chan struct{})) {
		t.Fatal("Run reported success with nothing scheduled")
	}
}

// TestVirtualIdleCheck: the clock must not advance while a registered
// idle check reports in-flight work.
func TestVirtualIdleCheck(t *testing.T) {
	v := NewVirtual()
	var pending atomic.Int64
	pending.Store(1)
	v.RegisterIdle(func() bool { return pending.Load() == 0 })
	go func() {
		time.Sleep(10 * time.Millisecond) // real time: simulate a slow consumer
		pending.Store(0)
	}()
	start := time.Now()
	v.Settle()
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("Settle returned before the idle check passed")
	}
}

// TestWithTimeoutVirtual: the deadline helper cancels the context at
// the virtual deadline, and cancel stops the timer.
func TestWithTimeoutVirtual(t *testing.T) {
	v := NewVirtual()
	ctx, cancel := WithTimeout(context.Background(), v, 20*time.Millisecond)
	defer cancel()
	if ctx.Err() != nil {
		t.Fatal("context dead before deadline")
	}
	for v.Step() {
	}
	<-ctx.Done()

	ctx2, cancel2 := WithTimeout(context.Background(), v, 20*time.Millisecond)
	cancel2()
	if ctx2.Err() == nil {
		t.Fatal("cancel did not cancel")
	}
	if n := v.PendingEvents(); n != 0 {
		t.Fatalf("%d events leaked after cancel", n)
	}
}

// TestWithTimeoutReal: the Real path keeps context.DeadlineExceeded.
func TestWithTimeoutReal(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), Real{}, time.Millisecond)
	defer cancel()
	<-ctx.Done()
	if ctx.Err() != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", ctx.Err())
	}
}

// TestOr covers the nil default.
func TestOr(t *testing.T) {
	if _, ok := Or(nil).(Real); !ok {
		t.Fatal("Or(nil) is not Real")
	}
	v := NewVirtual()
	if Or(v) != Clock(v) {
		t.Fatal("Or(v) did not pass through")
	}
}
