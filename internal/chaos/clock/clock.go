// Package clock abstracts time for the live stack. Every component of
// the service path that waits — fd timeout detectors, service lingers
// and instance deadlines, memory-hub delivery delays — takes a Clock
// instead of calling the time package directly, so the same code runs
// on wall time in production (Real) and on simulated time under the
// chaos harness (Virtual, a discrete-event scheduler). The package
// sits below transport and fd in the dependency order: it imports only
// the standard library, so any layer may depend on it.
package clock

import (
	"context"
	"time"
)

// Timer is the clock's analogue of time.Timer: it fires once on C
// (channel timers) or runs a function (AfterFunc timers) when its
// duration elapses on the owning clock.
type Timer interface {
	// C returns the firing channel. It is nil for AfterFunc timers.
	C() <-chan time.Time
	// Stop prevents the timer from firing, reporting whether it was
	// still pending. Like time.Timer.Stop it does not drain C.
	Stop() bool
	// Reset re-arms the timer for d from now, reporting whether it was
	// still pending. Callers follow the time.Timer discipline: Stop and
	// drain before Reset.
	Reset(d time.Duration) bool
}

// Ticker is the clock's analogue of time.Ticker. Ticks are dropped,
// never queued, when the receiver lags.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Clock is the time source of the live stack.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns the time elapsed on this clock since t.
	Since(t time.Time) time.Duration
	// NewTimer returns a timer that fires on its channel after d.
	NewTimer(d time.Duration) Timer
	// AfterFunc returns a timer that runs f after d. Under a virtual
	// clock f runs synchronously on the clock's Step driver, so it must
	// not block indefinitely.
	AfterFunc(d time.Duration, f func()) Timer
	// NewTicker returns a ticker with period d (d must be positive).
	NewTicker(d time.Duration) Ticker
}

// IdleRegistry is implemented by clocks that must not advance past
// work still in flight at the current instant. Components with
// externally invisible queues (the memory hub's mailboxes) register an
// idle check; a Virtual clock only advances when every check passes.
type IdleRegistry interface {
	RegisterIdle(func() bool)
}

// WithTimeout is context.WithTimeout on an arbitrary clock. On a Real
// clock it defers to the context package (callers keep genuine
// DeadlineExceeded errors); on any other clock the deadline is a clock
// timer cancelling the context, so expiry surfaces as context.Canceled.
func WithTimeout(parent context.Context, c Clock, d time.Duration) (context.Context, context.CancelFunc) {
	if _, ok := c.(Real); ok {
		return context.WithTimeout(parent, d)
	}
	ctx, cancel := context.WithCancel(parent)
	t := c.AfterFunc(d, cancel)
	return ctx, func() {
		t.Stop()
		cancel()
	}
}

// Real is the wall-clock implementation: a thin veneer over the time
// package. The zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer { return realTimer{time.AfterFunc(d, f)} }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time        { return rt.t.C }
func (rt realTimer) Stop() bool                 { return rt.t.Stop() }
func (rt realTimer) Reset(d time.Duration) bool { return rt.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }

// Or returns c, or Real when c is nil — the one-liner every Config
// default uses.
func Or(c Clock) Clock {
	if c == nil {
		return Real{}
	}
	return c
}
