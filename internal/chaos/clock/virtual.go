package clock

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// epoch is the fixed start time of every Virtual clock. A constant base
// keeps virtual timestamps identical across runs, which the chaos
// harness's replay guarantee depends on.
var epoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// Virtual is a discrete-event simulated clock: time stands still while
// goroutines run and jumps to the next scheduled event when the driver
// calls Step. Determinism contract: events at distinct virtual instants
// fire in time order; events at the same instant fire in ascending tag
// order (see AfterFuncTagged), then registration order within a tag;
// and between instants the driver settles — it waits until every
// registered idle check passes and no new events are being scheduled —
// so everything caused by instant T is visible before T+1 exists.
// Settling is strongest at GOMAXPROCS=1 (cooperative scheduling runs
// every runnable goroutine to its next blocking point on a Gosched
// sweep); the chaos sweep runner pins itself there for exact replay.
//
// One goroutine — the driver — calls Step/Settle; any goroutine may use
// the Clock interface.
type Virtual struct {
	mu   sync.Mutex
	now  time.Time
	seq  uint64 // registration order and activity counter
	evs  eventHeap
	idle []func() bool
}

var _ Clock = (*Virtual)(nil)
var _ IdleRegistry = (*Virtual)(nil)

// NewVirtual returns a virtual clock at the fixed epoch with no events.
func NewVirtual() *Virtual {
	return &Virtual{now: epoch}
}

// event is one scheduled occurrence. cancelled events stay in the heap
// and are skipped when popped (lazy deletion).
type event struct {
	when      time.Time
	tag       uint64 // same-instant tiebreak; 0 orders first, by seq
	seq       uint64
	fire      func(now time.Time)
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	if h[i].tag != h[j].tag {
		return h[i].tag < h[j].tag
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// RegisterIdle implements IdleRegistry: the clock will not advance while
// check returns false.
func (v *Virtual) RegisterIdle(check func() bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.idle = append(v.idle, check)
}

// schedule registers fn to run at now+d; the caller receives the event
// for cancellation. A non-positive d fires at the current instant — on
// the next Step, not synchronously.
func (v *Virtual) schedule(d time.Duration, fn func(now time.Time)) *event {
	return v.scheduleTagged(d, 0, fn)
}

// scheduleTagged is schedule with an explicit same-instant tiebreak.
func (v *Virtual) scheduleTagged(d time.Duration, tag uint64, fn func(now time.Time)) *event {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.seq++
	e := &event{when: v.now.Add(d), tag: tag, seq: v.seq, fire: fn}
	heap.Push(&v.evs, e)
	return e
}

// cancel marks e dead, reporting whether it had not fired yet.
func (v *Virtual) cancel(e *event) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.seq++ // cancellation is activity too
	if e == nil || e.cancelled {
		return false
	}
	e.cancelled = true
	return true
}

// NewTimer implements Clock.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	t := &virtualTimer{v: v, ch: make(chan time.Time, 1)}
	t.ev = v.schedule(d, t.deliver)
	return t
}

// AfterFunc implements Clock. f runs on the driver goroutine inside
// Step.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	t := &virtualTimer{v: v, f: f}
	t.ev = v.schedule(d, t.deliver)
	return t
}

// AfterFuncTagged is AfterFunc with a same-instant ordering tag: events
// at one instant fire in ascending tag order, before seq (registration
// order) breaks remaining ties. The chaos injector tags every frame
// delivery with a hash of the frame's bytes, which makes the firing
// order of a same-instant delivery batch a pure function of its
// contents — goroutine interleaving during scheduling cannot perturb
// it. Untagged events (tag 0) keep their registration-order contract.
func (v *Virtual) AfterFuncTagged(d time.Duration, tag uint64, f func()) Timer {
	t := &virtualTimer{v: v, f: f}
	t.ev = v.scheduleTagged(d, tag, t.deliver)
	return t
}

// NewTicker implements Clock.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	t := &virtualTicker{v: v, period: d, ch: make(chan time.Time, 1)}
	t.mu.Lock()
	t.ev = v.schedule(d, t.tick)
	t.mu.Unlock()
	return t
}

type virtualTimer struct {
	v  *Virtual
	ch chan time.Time // nil for AfterFunc timers
	f  func()         // nil for channel timers

	mu sync.Mutex
	ev *event
}

func (t *virtualTimer) deliver(now time.Time) {
	if t.f != nil {
		t.f()
		return
	}
	select {
	case t.ch <- now:
	default:
	}
}

func (t *virtualTimer) C() <-chan time.Time { return t.ch }

func (t *virtualTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.v.cancel(t.ev)
}

func (t *virtualTimer) Reset(d time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	active := t.v.cancel(t.ev)
	t.ev = t.v.schedule(d, t.deliver)
	return active
}

type virtualTicker struct {
	v      *Virtual
	period time.Duration
	ch     chan time.Time

	mu      sync.Mutex
	ev      *event
	stopped bool
}

func (t *virtualTicker) tick(now time.Time) {
	select {
	case t.ch <- now:
	default: // receiver lags: the tick is dropped, like time.Ticker
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return
	}
	t.ev = t.v.schedule(t.period, t.tick)
}

func (t *virtualTicker) C() <-chan time.Time { return t.ch }

func (t *virtualTicker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stopped = true
	t.v.cancel(t.ev)
}

// PendingEvents returns the number of live (uncancelled) events.
func (v *Virtual) PendingEvents() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, e := range v.evs {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// settleBudget caps one Settle call in wall time. Exceeding it means
// the system never went quiescent (a genuine livelock the harness's
// watchdog will surface); Settle returns anyway so the driver keeps
// making progress instead of hanging silently.
const settleBudget = 2 * time.Second

// Settle blocks until the system is quiescent at the current virtual
// instant: every registered idle check passes and no clock activity
// (schedules, cancellations) has happened for several scheduler sweeps
// in a row. The driver calls it before reading simulation state and
// before each Step, so every consequence of the current instant —
// frames delivered, rounds completed, futures resolved — has registered
// before time moves.
func (v *Virtual) Settle() {
	deadline := time.Now().Add(settleBudget)
	stable := 0
	last := ^uint64(0)
	for sweep := 0; ; sweep++ {
		// Let every runnable goroutine run to its next blocking point.
		// At GOMAXPROCS=1 a few Gosched calls do exactly that; on more
		// processors the periodic real sleep below lets other Ps drain.
		for i := 0; i < 8; i++ {
			runtime.Gosched()
		}
		v.mu.Lock()
		cur := v.seq
		v.mu.Unlock()
		if cur == last && v.idleNow() {
			stable++
			if stable >= 2 {
				return
			}
		} else {
			stable = 0
		}
		last = cur
		if sweep >= 2 || runtime.GOMAXPROCS(0) > 1 {
			time.Sleep(20 * time.Microsecond)
		}
		if time.Now().After(deadline) {
			return
		}
	}
}

// idleNow reports whether every registered idle check passes.
func (v *Virtual) idleNow() bool {
	v.mu.Lock()
	checks := v.idle
	v.mu.Unlock()
	for _, c := range checks {
		if !c() {
			return false
		}
	}
	return true
}

// Step advances the clock to the earliest pending event and fires every
// event scheduled at that instant, in registration order, on the
// calling goroutine. It reports false — and leaves the clock untouched —
// when no events are pending, which with an unsettled simulation means
// the system is wedged: nothing is runnable and nothing is scheduled to
// become runnable. Callers Settle first.
func (v *Virtual) Step() bool {
	v.mu.Lock()
	for len(v.evs) > 0 && v.evs[0].cancelled {
		heap.Pop(&v.evs)
	}
	if len(v.evs) == 0 {
		v.mu.Unlock()
		return false
	}
	t := v.evs[0].when
	var batch []*event
	for len(v.evs) > 0 && (v.evs[0].cancelled || v.evs[0].when.Equal(t)) {
		e := heap.Pop(&v.evs).(*event)
		if !e.cancelled {
			// Mark the event dead before firing: a concurrent Stop must
			// report "already fired" (false), exactly like time.Timer.
			e.cancelled = true
			batch = append(batch, e)
		}
	}
	v.now = t
	v.mu.Unlock()
	for _, e := range batch {
		e.fire(t)
	}
	return true
}

// Run drives the clock until done is closed (reporting true) or the
// event queue runs dry with the simulation settled and done still open
// (reporting false — the wedged verdict). It is the standard harness
// loop: settle, check done, step.
func (v *Virtual) Run(done <-chan struct{}) bool {
	for {
		v.Settle()
		select {
		case <-done:
			return true
		default:
		}
		if !v.Step() {
			// One more settle+check: the final event may have resolved
			// the run, with the closer goroutine a sweep behind.
			v.Settle()
			select {
			case <-done:
				return true
			default:
				return false
			}
		}
	}
}
