package chaos

import (
	"hash/fnv"
	"sync/atomic"
	"time"

	"indulgence/internal/chaos/clock"
	"indulgence/internal/model"
	"indulgence/internal/transport"
)

// Network is a scenario's fault fabric: it wraps a transport's
// endpoints so that every frame crossing a faulted link is delayed,
// "dropped" (delayed to the horizon), duplicated or held behind a
// partition, all on the scenario's clock.
//
// Every per-frame decision is a pure function of (seed, from, to,
// frame bytes): a hash roll, not a stateful PRNG draw. Concurrent
// senders therefore cannot perturb each other's fault outcomes — the
// decisions commute, which is what makes a seed replayable regardless
// of goroutine interleaving inside one virtual instant.
type Network struct {
	sc    Scenario
	clk   clock.Clock
	start time.Time
	links map[linkKey]LinkFault
}

type linkKey struct{ from, to model.ProcessID }

// NewNetwork builds the fabric for sc on clk. The scenario's time
// offsets are measured from clk's current instant.
func NewNetwork(sc Scenario, clk clock.Clock) *Network {
	nw := &Network{
		sc:    sc,
		clk:   clk,
		start: clk.Now(),
		links: make(map[linkKey]LinkFault, len(sc.Links)),
	}
	for _, l := range sc.Links {
		k := linkKey{l.From, l.To}
		// Two faults on one link compose: delays add, probabilities
		// saturate. (The generator emits at most one plus a gray-link
		// overlay.)
		f := nw.links[k]
		f.From, f.To = l.From, l.To
		f.Delay += l.Delay
		f.Jitter += l.Jitter
		f.DropP = clamp01(f.DropP + l.DropP)
		f.DupP = clamp01(f.DupP + l.DupP)
		nw.links[k] = f
	}
	return nw
}

func clamp01(p float64) float64 {
	if p > 1 {
		return 1
	}
	return p
}

// Wrap returns a fault-injecting view of ep. Self-sends bypass the
// fabric: a process always hears itself, per the model.
func (nw *Network) Wrap(ep transport.Transport) transport.Transport {
	return &endpoint{nw: nw, inner: ep, self: ep.Self()}
}

type endpoint struct {
	nw    *Network
	inner transport.Transport
	self  model.ProcessID
}

func (e *endpoint) Self() model.ProcessID { return e.self }
func (e *endpoint) Recv() <-chan []byte   { return e.inner.Recv() }
func (e *endpoint) Close() error          { return e.inner.Close() }

// SharedFrameCounter exposes the inner transport's in-flight frame
// counter so a Mux stacked on the wrapped endpoint still feeds the
// virtual clock's idle check. Frames the injector itself holds are
// clock events, which the clock already accounts for.
func (e *endpoint) SharedFrameCounter() *atomic.Int64 {
	if fc, ok := e.inner.(interface{ SharedFrameCounter() *atomic.Int64 }); ok {
		return fc.SharedFrameCounter()
	}
	return nil
}

// hopDelay is the floor on every cross-process delivery: even an
// unfaulted frame takes one virtual microsecond. This is what makes a
// run replayable — every delivery is a clock event, so the set of
// frames a process has seen at any instant is a function of virtual
// time and frame contents, never of goroutine interleaving. Same-
// instant deliveries fire in frame-hash order via the clock's tagged
// events (see clock.Virtual's AfterFuncTagged).
const hopDelay = time.Microsecond

// tagged is the deterministic same-instant ordering hook of
// clock.Virtual. Other clocks (the wall clock) fall back to plain
// AfterFunc: real time breaks its own ties.
type tagged interface {
	AfterFuncTagged(d time.Duration, tag uint64, f func()) clock.Timer
}

func (e *endpoint) Send(to model.ProcessID, frame []byte) error {
	if to == e.self {
		// A process hears itself synchronously, per the model; its own
		// mailbox is FIFO under its own sends, so no event is needed.
		return e.inner.Send(to, frame)
	}
	for i, d := range e.nw.plan(e.self, to, frame) {
		// The delivered copy is cloned: the caller may reuse its buffer
		// after Send returns. A send racing the hub's close simply
		// vanishes — the scenario is over by then.
		fr := append([]byte(nil), frame...)
		d += hopDelay
		if tc, ok := e.nw.clk.(tagged); ok {
			tag := e.nw.hash(e.self, to, saltTag+i, frame)
			tc.AfterFuncTagged(d, tag|1, func() { _ = e.inner.Send(to, fr) })
		} else {
			//indulgence:untagged fallback for non-virtual clocks, where real time breaks its own ties
			e.nw.clk.AfterFunc(d, func() { _ = e.inner.Send(to, fr) })
		}
	}
	return nil
}

// Salts separating the independent hash rolls derived from one frame.
const (
	saltDrop = iota
	saltDup
	saltJitter
	saltDupGap
	saltHorizon
	saltTag // +i for the i'th delivered copy
)

// plan returns the delivery delays for one frame on from→to: one entry
// per delivered copy (so usually one; two when duplicated).
func (nw *Network) plan(from, to model.ProcessID, frame []byte) []time.Duration {
	now := nw.clk.Now().Sub(nw.start)
	lf := nw.links[linkKey{from, to}]

	d := lf.Delay
	if lf.Jitter > 0 {
		d += time.Duration(nw.roll(from, to, saltJitter, frame) * float64(lf.Jitter))
	}
	if lf.DropP > 0 && nw.roll(from, to, saltDrop, frame) < lf.DropP {
		// "Drop" = delay to just past the horizon; the stagger keeps a
		// burst of dropped frames from landing in one instant.
		late := nw.sc.Horizon - now + time.Duration(nw.roll(from, to, saltHorizon, frame)*float64(nw.sc.BaseTimeout))
		if late > d {
			d = late
		}
	}
	// A frame sent into a partition window is held until the heal
	// instant (plus its link delay): the ES adversary may not destroy
	// it, only defer it.
	for _, p := range nw.sc.Partitions {
		if now < p.From || now >= p.Until || !cuts(p, from, to) {
			continue
		}
		if heal := p.Until - now; heal > d {
			d = heal
		}
	}
	delays := []time.Duration{d}
	if lf.DupP > 0 && nw.roll(from, to, saltDup, frame) < lf.DupP {
		gap := time.Duration(nw.roll(from, to, saltDupGap, frame) * float64(lf.Jitter+time.Millisecond))
		delays = append(delays, d+gap+time.Microsecond)
	}
	return delays
}

// cuts reports whether the partition blocks from→to.
func cuts(p Partition, from, to model.ProcessID) bool {
	if contains(p.A, from) && contains(p.B, to) {
		return true
	}
	if !p.OneWay && contains(p.B, from) && contains(p.A, to) {
		return true
	}
	return false
}

func contains(ps []model.ProcessID, p model.ProcessID) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}

// hash digests (seed, from, to, salt, frame) with FNV-64a.
func (nw *Network) hash(from, to model.ProcessID, salt int, frame []byte) uint64 {
	h := fnv.New64a()
	var hdr [8 + 3]byte
	u := uint64(nw.sc.Seed)
	for i := 0; i < 8; i++ {
		hdr[i] = byte(u >> (8 * i))
	}
	hdr[8], hdr[9], hdr[10] = byte(from), byte(to), byte(salt)
	h.Write(hdr[:])
	h.Write(frame)
	return h.Sum64()
}

// roll maps a hash to a float in [0,1).
func (nw *Network) roll(from, to model.ProcessID, salt int, frame []byte) float64 {
	return float64(nw.hash(from, to, salt, frame)>>11) / float64(1<<53)
}
