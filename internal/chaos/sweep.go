package chaos

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"indulgence/internal/adapt"
	"indulgence/internal/chaos/clock"
	"indulgence/internal/check"
	"indulgence/internal/journal"
	"indulgence/internal/metrics"
	"indulgence/internal/model"
	"indulgence/internal/runtime"
	"indulgence/internal/service"
	"indulgence/internal/shard"
	"indulgence/internal/transport"
	"indulgence/internal/wire"
	"indulgence/internal/workload"
)

// Options tunes a chaos run.
type Options struct {
	// JournalDir is where the run's decision journal lives ("" = a
	// private temp directory, removed after the run). A kept journal is
	// the post-mortem artifact of a failing seed.
	JournalDir string
	// MaxWall is the wall-clock watchdog (default 15s): a run that
	// cannot finish its virtual schedule within it is reported wedged.
	// Virtual-time runs finish in milliseconds; the watchdog only fires
	// on a genuine livelock.
	MaxWall time.Duration
}

// Result is the audited outcome of one scenario run.
type Result struct {
	// Scenario is the spec that ran — print Scenario.JSON() to replay.
	Scenario Scenario
	// Decided, Shed and Failed partition the scenario's proposals:
	// resolved with a decision, refused by admission control
	// (adapt.ErrOverload), or failed (instance timeout or abort).
	Decided, Shed, Failed int
	// Violations collects every audit finding: live check.Instance
	// violations from the service, check.Replay findings over the
	// journal, and a wedge marker if the run had to be aborted. The
	// paper says this stays empty; a non-empty slice is a bug.
	Violations []string
	// Wedged reports that the run was cut short: the virtual schedule
	// overran its cap or the wall watchdog fired.
	Wedged bool
	// Log is the canonical per-proposal decision log. Two runs of the
	// same spec must produce identical logs — the reproducibility
	// contract the chaos tests enforce.
	Log string
	// Metrics is the run's final registry snapshot (Prometheus text),
	// taken after the service quiesced. The registry observes only
	// virtual-clock durations and schedule-driven counters, so two runs
	// of the same spec must produce byte-identical snapshots — the same
	// contract Log carries, extended to the introspection plane. The one
	// exception is stripped before the snapshot lands here: transport
	// frame counters tally decide-flooding that shutdown cuts off
	// mid-stride, so their totals are an artifact of teardown timing,
	// not of the seed.
	Metrics string
	// Outcomes holds one trace outcome record per workload event, by
	// event sequence number — only populated for workload scenarios.
	// Together with the regenerable event stream they form the run's
	// trace (see ExecuteTrace).
	Outcomes []wire.TraceOutcomeRecord
	// Virtual and Wall are the simulated and wall-clock durations.
	Virtual, Wall time.Duration
	// Err is a harness setup error (invalid spec, journal failure) —
	// distinct from consensus misbehaviour.
	Err error
}

// OK reports whether the run found nothing wrong.
func (r Result) OK() bool {
	return r.Err == nil && !r.Wedged && len(r.Violations) == 0
}

// errAborted marks proposals whose futures were cut off by a wedge
// abort (distinct from service failures, which carry their own error).
var errAborted = errors.New("chaos: run aborted")

// crashPlan tracks which processes are down and applies crashes to
// every cluster the service has started. Instances started while a
// process is down begin with it crashed; a restart only readmits the
// process to instances started afterwards (per-instance crash-stop).
type crashPlan struct {
	mu       sync.Mutex
	down     map[model.ProcessID]bool
	clusters []*runtime.Cluster
}

func (cp *crashPlan) crash(p model.ProcessID) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.down[p] = true
	for _, cl := range cp.clusters {
		_ = cl.Crash(p)
	}
}

func (cp *crashPlan) restart(p model.ProcessID) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.down[p] = false
}

// onInstance is the service hook: crash the new cluster's dead
// processes before its rounds start, and retain it for later crashes.
func (cp *crashPlan) onInstance(_ uint64, cl *runtime.Cluster) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.clusters = append(cp.clusters, cl)
	for p, d := range cp.down {
		if d {
			_ = cl.Crash(p)
		}
	}
}

// Run executes one scenario on a fresh virtual clock and audits it.
func Run(sc Scenario, opts Options) Result {
	res := Result{Scenario: sc}
	if err := sc.Validate(); err != nil {
		res.Err = err
		return res
	}
	factory, policy, err := algByName(sc.Algorithm)
	if err != nil {
		res.Err = err
		return res
	}
	if opts.MaxWall <= 0 {
		opts.MaxWall = 15 * time.Second
	}
	dir := opts.JournalDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "chaos-journal-*")
		if err != nil {
			res.Err = err
			return res
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	clk := clock.NewVirtual()
	virtStart := clk.Now()
	//indulgence:wallclock wedge watchdog measures real elapsed time, outside the virtual run
	wallStart := time.Now()

	hub, err := transport.NewHubClock(sc.N, clk)
	if err != nil {
		res.Err = err
		return res
	}
	defer hub.Close()
	nw := NewNetwork(sc, clk)
	eps := make([]transport.Transport, sc.N)
	for i := range eps {
		ep, err := hub.Endpoint(model.ProcessID(i + 1))
		if err != nil {
			res.Err = err
			return res
		}
		eps[i] = nw.Wrap(ep)
	}

	groups := sc.Groups
	if groups < 1 {
		groups = 1
	}

	cp := &crashPlan{down: make(map[model.ProcessID]bool)}
	for _, c := range sc.Crashes {
		c := c
		clk.AfterFuncTagged(c.At, 0, func() { cp.crash(c.P) })
		if c.Restart > 0 {
			clk.AfterFuncTagged(c.Restart, 0, func() { cp.restart(c.P) })
		}
	}

	reg := metrics.NewRegistry()
	cfg := service.Config{
		N: sc.N, T: sc.T,
		Factory:         factory,
		WaitPolicy:      policy,
		BaseTimeout:     sc.BaseTimeout,
		MaxBatch:        sc.MaxBatch,
		Linger:          sc.Linger,
		MaxInflight:     sc.MaxInflight,
		InstanceTimeout: sc.InstanceTimeout,
		OnInstance:      cp.onInstance,
		Clock:           clk,
		Metrics:         reg,
	}
	if sc.Adaptive {
		cfg.Adaptive = &adapt.Config{Classes: sc.Classes}
	}
	// The two runtime shapes — the single-group service and the sharded
	// multi-group runtime — are abstracted behind four closures so the
	// schedule driver and the audits below stay shared. NoSync on every
	// journal: it is an audit trail here, not a durability promise, and
	// fsync stalls would leak wall time into the virtual schedule.
	var (
		propose  func(context.Context, int, model.Value) (*service.Future, error)
		abortSvc func()
		closeSvc func()
		// liveViolations reads the live check.Instance findings after
		// shutdown; replayAll reads back every journaled record and
		// claim (all groups of a sharded run in one stream, arming
		// check.Replay's cross-group instance audit).
		liveViolations func() []string
		replayAll      func() ([]wire.DecisionRecord, []wire.StartRecord, error)
	)
	if groups > 1 {
		rt, err := shard.New(shard.Config{
			Service:        cfg,
			Groups:         groups,
			JournalDir:     dir,
			JournalOptions: journal.Options{NoSync: true},
		}, eps)
		if err != nil {
			res.Err = err
			return res
		}
		propose = rt.ProposeClass
		abortSvc = rt.Abort
		closeSvc = func() { rt.Close() }
		liveViolations = func() []string { return rt.Snapshot().Violations }
		replayAll = func() ([]wire.DecisionRecord, []wire.StartRecord, error) {
			return shard.ReplayDir(dir, groups)
		}
	} else {
		j, err := journal.Open(dir, journal.Options{
			NoSync:        true,
			Metrics:       reg,
			MetricsLabels: []metrics.Label{{Key: "group", Value: "0"}},
		})
		if err != nil {
			res.Err = err
			return res
		}
		cfg.Journal = j
		svc, err := service.New(cfg, eps)
		if err != nil {
			j.Close()
			res.Err = err
			return res
		}
		propose = svc.ProposeClass
		abortSvc = svc.Abort
		closeSvc = func() { svc.Close() }
		liveViolations = func() []string { return svc.Snapshot().Violations }
		replayAll = func() ([]wire.DecisionRecord, []wire.StartRecord, error) {
			j.Close()
			var recs []wire.DecisionRecord
			var starts []wire.StartRecord
			_, err := journal.Replay(dir, func(e journal.Entry) error {
				switch {
				case e.Trace != nil:
					// Introspection context, not a claim or outcome.
				case e.Start:
					starts = append(starts, wire.StartRecord{Instance: e.Instance(), Alg: e.Alg})
				default:
					recs = append(recs, e.Decision)
				}
				return nil
			})
			return recs, starts, err
		}
	}

	// Proposal load. Wave scenarios submit Waves fixed waves on the
	// clock driver; workload scenarios submit each generated event at
	// its arrival instant, at its cohort's SLO class. Either way every
	// future is awaited by its own goroutine and outs is indexed by
	// proposal/event number, so the decision log's order is the load
	// order, not the resolution order.
	type outcome struct {
		dec     service.Decision
		err     error
		shed    bool
		class   int
		latency time.Duration
	}
	var events []workload.Event
	nProps := sc.Proposals
	if sc.Workload != nil {
		events = sc.Workload.Events()
		nProps = len(events)
	}
	outs := make([]outcome, nProps)
	var wg sync.WaitGroup
	wg.Add(nProps)
	var loadMu sync.Mutex
	submitted, aborted := 0, false
	value := func(idx int) model.Value {
		return model.Value(int64(idx+1)*1_000_003 + sc.Seed)
	}
	// submitOne proposes one load item (class-tagged) and hands its
	// future to a waiter goroutine. Callers hold loadMu.
	submitOne := func(i, class int, v model.Value) {
		start := clk.Now()
		fut, err := propose(context.Background(), class, v)
		if err != nil {
			outs[i] = outcome{err: err, shed: errors.Is(err, adapt.ErrOverload), class: class}
			wg.Done()
			return
		}
		go func() {
			defer wg.Done()
			dec, err := fut.Wait(context.Background())
			outs[i] = outcome{dec: dec, err: err, class: class, latency: clk.Now().Sub(start)}
		}()
	}
	submitWave := func(lo, hi int) {
		loadMu.Lock()
		defer loadMu.Unlock()
		if aborted {
			for i := lo; i < hi; i++ {
				outs[i] = outcome{err: errAborted}
				wg.Done()
			}
			return
		}
		for i := lo; i < hi; i++ {
			submitOne(i, 0, value(i))
		}
		if hi > submitted {
			submitted = hi
		}
	}
	submitEvent := func(e workload.Event) {
		loadMu.Lock()
		defer loadMu.Unlock()
		if aborted {
			outs[e.Seq] = outcome{err: errAborted, class: e.Class}
			wg.Done()
			return
		}
		submitOne(int(e.Seq), e.Class, e.Value)
		if int(e.Seq)+1 > submitted {
			submitted = int(e.Seq) + 1
		}
	}
	waves := sc.Waves
	if waves < 1 {
		waves = 1
	}
	if sc.Workload != nil {
		// Events are At-sorted and same-instant callbacks fire in
		// registration order, so submission order is event order.
		for _, e := range events {
			e := e
			clk.AfterFuncTagged(e.At, 0, func() { submitEvent(e) })
		}
	} else {
		per := (sc.Proposals + waves - 1) / waves
		for w := 0; w < waves; w++ {
			lo := w * per
			hi := lo + per
			if hi > sc.Proposals {
				hi = sc.Proposals
			}
			if lo >= hi {
				break
			}
			clk.AfterFuncTagged(time.Duration(w)*sc.WaveGap, 0, func() { submitWave(lo, hi) })
		}
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// Drive the virtual schedule: settle the goroutine fabric, then
	// fire the next instant, until every future has resolved. Every
	// instance carries a virtual deadline, so a healthy run terminates
	// on its own; the virtual cap and wall watchdog only catch bugs.
	virtualCap := sc.Horizon + 2*sc.InstanceTimeout +
		time.Duration(waves)*sc.WaveGap + time.Second
	if sc.Workload != nil {
		virtualCap += sc.Workload.Duration()
	}
	wallDeadline := wallStart.Add(opts.MaxWall)
	finished := false
	for !finished {
		clk.Settle()
		select {
		case <-done:
			finished = true
			continue
		default:
		}
		//indulgence:wallclock wedge watchdog compares real elapsed time against the wall cap
		if clk.Now().Sub(virtStart) > virtualCap || time.Now().After(wallDeadline) {
			res.Wedged = true
			break
		}
		if !clk.Step() {
			// Out of events with unresolved futures: settle once more
			// in case the last step's work is still propagating.
			clk.Settle()
			select {
			case <-done:
				finished = true
			default:
				res.Wedged = true
			}
			if res.Wedged {
				break
			}
		}
	}
	if res.Wedged {
		loadMu.Lock()
		aborted = true
		for i := submitted; i < nProps; i++ {
			outs[i] = outcome{err: errAborted}
			wg.Done()
		}
		loadMu.Unlock()
		abortSvc()
		<-done
		res.Violations = append(res.Violations,
			//indulgence:wallclock wedge report quotes real elapsed time
			fmt.Sprintf("wedged after %v virtual / %v wall", clk.Now().Sub(virtStart), time.Since(wallStart)))
	} else {
		closeSvc()
	}

	res.Virtual = clk.Now().Sub(virtStart)
	//indulgence:wallclock Result.Wall reports real elapsed run time by definition
	res.Wall = time.Since(wallStart)

	// The final registry snapshot, at quiescence: every instrument fed
	// by the run has settled, so this render is the run's deterministic
	// introspection record — minus the frame counters, which count
	// flood frames shutdown truncates at a point the schedule does not
	// force.
	res.Metrics = stripFrameSeries(reg.Text())

	// Audit 1: the service's own live check.Instance findings.
	res.Violations = append(res.Violations, liveViolations()...)

	// Audit 2: replay the journals against the futures' view.
	recs, starts, err := replayAll()
	if err != nil {
		res.Err = fmt.Errorf("chaos: replay journal: %w", err)
		return res
	}
	live := make(map[uint64]model.Value)
	for _, o := range outs {
		if o.err == nil {
			live[o.dec.Instance] = o.dec.Value
		}
	}
	rep := check.Replay(recs, starts, live)
	res.Violations = append(res.Violations, rep.Violations...)

	// The canonical decision log (wave format unchanged — legacy specs
	// must keep producing byte-identical logs) and, for workload runs,
	// the trace outcomes. Latency rides the outcome record but stays out
	// of the log: it is a measurement, not a decision.
	var b strings.Builder
	if sc.Workload != nil {
		res.Outcomes = make([]wire.TraceOutcomeRecord, nProps)
		for i, o := range outs {
			rec := wire.TraceOutcomeRecord{Seq: uint64(i), Class: o.class, LatencyNanos: int64(o.latency)}
			switch {
			case o.shed:
				res.Shed++
				rec.Status = wire.TraceShed
				fmt.Fprintf(&b, "e%04d c%d shed\n", i, o.class)
			case o.err != nil:
				res.Failed++
				rec.Status = wire.TraceFailed
				fmt.Fprintf(&b, "e%04d c%d failed: %v\n", i, o.class, o.err)
			default:
				res.Decided++
				rec.Status = wire.TraceDecided
				rec.Instance = o.dec.Instance
				rec.Value = o.dec.Value
				rec.Round = o.dec.Round
				rec.Batch = o.dec.Batch
				rec.Group = o.dec.Instance % uint64(groups)
				rec.Class = o.dec.Class
				fmt.Fprintf(&b, "e%04d c%d v=%d -> inst=%d val=%d round=%d batch=%d class=%d\n",
					i, o.class, events[i].Value, o.dec.Instance, o.dec.Value, o.dec.Round, o.dec.Batch, o.dec.Class)
			}
			res.Outcomes[i] = rec
		}
	} else {
		for i, o := range outs {
			switch {
			case o.shed:
				res.Shed++
				fmt.Fprintf(&b, "p%03d shed\n", i)
			case o.err != nil:
				res.Failed++
				fmt.Fprintf(&b, "p%03d failed: %v\n", i, o.err)
			default:
				res.Decided++
				fmt.Fprintf(&b, "p%03d v=%d -> inst=%d val=%d round=%d batch=%d\n",
					i, value(i), o.dec.Instance, o.dec.Value, o.dec.Round, o.dec.Batch)
			}
		}
	}
	res.Log = b.String()
	return res
}

// SweepStats aggregates a batch of seeded runs.
type SweepStats struct {
	// Runs counts executed scenarios; Failures holds the ones that
	// found something (violations, wedge, or harness error).
	Runs     int
	Failures []Result
	// Decided, Shed and Failed total the proposal outcomes.
	Decided, Shed, Failed int
	// Virtual and Wall total the simulated and wall-clock durations —
	// the virtual/wall ratio is the harness's time-compression factor.
	Virtual, Wall time.Duration
}

// Sweep generates and runs count scenarios from consecutive seeds
// starting at baseSeed. onRun, when non-nil, observes every result as
// it completes (the CLI uses it for progress and failure printing).
func Sweep(baseSeed int64, count int, opts Options, onRun func(Result)) SweepStats {
	return SweepGroups(baseSeed, count, 1, opts, onRun)
}

// SweepGroups is Sweep on the sharded runtime: every generated scenario
// runs with the given group count (via GenerateGroups, so the fault
// schedules match Sweep's seed for seed — the sweep exercises the same
// adversaries against the multi-group stack). groups <= 1 is exactly
// Sweep.
func SweepGroups(baseSeed int64, count, groups int, opts Options, onRun func(Result)) SweepStats {
	return sweepWith(func(seed int64) Scenario { return GenerateGroups(seed, groups) },
		baseSeed, count, opts, onRun)
}

// SweepWorkload runs the generated adversaries of SweepGroups with each
// scenario's fixed wave load replaced by the given workload (clamped per
// scenario via WorkloadScenario): the same seeded partitions, gray links
// and crashes, now exercised under classed multi-cohort arrivals.
func SweepWorkload(baseSeed int64, count, groups int, spec *workload.Spec, opts Options, onRun func(Result)) SweepStats {
	return sweepWith(func(seed int64) Scenario {
		return WorkloadScenario(GenerateGroups(seed, groups), spec)
	}, baseSeed, count, opts, onRun)
}

// WorkloadScenario replaces sc's wave load with a generated workload:
// the spec's event cap is clamped to the scenario's intake bound (load
// is submitted on the clock driver and must never block), wave fields
// are cleared, and a classed workload arms per-class admission on the
// adaptive plane.
func WorkloadScenario(sc Scenario, spec *workload.Spec) Scenario {
	w := *spec
	groups := sc.Groups
	if groups < 1 {
		groups = 1
	}
	bound := sc.MaxBatch * sc.MaxInflight * groups
	if w.MaxEvents == 0 || w.MaxEvents > bound {
		w.MaxEvents = bound
	}
	sc.Workload = &w
	sc.Proposals, sc.Waves, sc.WaveGap = 0, 0, 0
	if c := w.Classes(); c > 1 {
		sc.Adaptive = true
		sc.Classes = c
	}
	return sc
}

// sweepWith drives one batch of seeded scenario runs; the sweep shapes
// share it.
func sweepWith(gen func(int64) Scenario, baseSeed int64, count int, opts Options, onRun func(Result)) SweepStats {
	var st SweepStats
	for i := 0; i < count; i++ {
		r := Run(gen(baseSeed+int64(i)), opts)
		st.Runs++
		st.Decided += r.Decided
		st.Shed += r.Shed
		st.Failed += r.Failed
		st.Virtual += r.Virtual
		st.Wall += r.Wall
		// Generated scenarios are live by construction, so a failed
		// proposal (an instance missing its generous deadline) is a
		// finding even when no safety violation was recorded.
		if !r.OK() || r.Failed > 0 {
			st.Failures = append(st.Failures, r)
		}
		if onRun != nil {
			onRun(r)
		}
	}
	sort.SliceStable(st.Failures, func(a, b int) bool {
		return st.Failures[a].Scenario.Seed < st.Failures[b].Scenario.Seed
	})
	return st
}

// stripFrameSeries drops the transport frame-counter families from a
// rendered snapshot. A decided node floods its DECIDE until Stop
// reaches it, and shutdown truncates that flood at a point the virtual
// schedule does not force — so frame totals are the one instrument
// family that is teardown timing, not seed. Everything else in the
// snapshot stays byte-identical run over run.
func stripFrameSeries(text string) string {
	var b strings.Builder
	for _, line := range strings.SplitAfter(text, "\n") {
		if strings.Contains(line, "indulgence_frames_") {
			continue
		}
		b.WriteString(line)
	}
	return b.String()
}
