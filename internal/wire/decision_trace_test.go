package wire

import (
	"reflect"
	"strings"
	"testing"
)

func TestDecisionTraceRecordRoundTrip(t *testing.T) {
	records := []DecisionTraceRecord{
		{},
		{Instance: 7, Chosen: "A_f+2", NotTaken: []string{"A_<>S", "A_t+2"}, Level: 0},
		{
			Instance: 1<<64 - 1, Group: 3, Level: 2,
			Chosen: "A_t+2", NotTaken: []string{"A_f+2", "A_<>S", "probe:A_f+2"},
			Suspicions: 42, QueueLen: 17, QueueCap: 64,
			BatchFill: 87, BatchLimit: 32,
			LingerNanos: 2_500_000, EWMANanos: 1_300_000, ShedMask: 0b101,
		},
	}
	for _, r := range records {
		enc, err := AppendDecisionTraceRecord(nil, r)
		if err != nil {
			t.Fatalf("append %+v: %v", r, err)
		}
		if enc[0] != decisionTraceMarker {
			t.Fatalf("record does not open with the trace marker: %#x", enc[0])
		}
		got, n, err := DecodeDecisionTraceRecord(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", r, err)
		}
		if n != len(enc) {
			t.Errorf("consumed %d of %d bytes", n, len(enc))
		}
		if !reflect.DeepEqual(got, r) && !(len(r.NotTaken) == 0 && len(got.NotTaken) == 0) {
			t.Errorf("round trip: got %+v, want %+v", got, r)
		}
	}
}

func TestDecisionTraceRecordNegativeDurationsClamp(t *testing.T) {
	enc, err := AppendDecisionTraceRecord(nil, DecisionTraceRecord{LingerNanos: -5, EWMANanos: -9})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeDecisionTraceRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.LingerNanos != 0 || got.EWMANanos != 0 {
		t.Errorf("negative durations did not clamp: %+v", got)
	}
}

func TestDecisionTraceRecordBounds(t *testing.T) {
	tooLong := strings.Repeat("x", MaxAlgNameLen+1)
	bad := []DecisionTraceRecord{
		{Chosen: tooLong},
		{NotTaken: []string{tooLong}},
		{NotTaken: make([]string, MaxTraceAlternatives+1)},
		{Level: MaxTraceAlternatives + 1},
		{Level: -1},
		{BatchFill: MaxFrameSize + 1},
		{BatchLimit: -1},
		{QueueCap: MaxFrameSize + 1},
		{ShedMask: MaxShedMask + 1},
	}
	for _, r := range bad {
		if _, err := AppendDecisionTraceRecord(nil, r); err == nil {
			t.Errorf("append accepted out-of-range record %+v", r)
		}
	}
	// Decode-side bounds: an over-long not-taken count and a foreign
	// marker must be rejected.
	if _, _, err := DecodeDecisionTraceRecord([]byte{decisionTraceMarker, 0, 0, 0, 0, MaxTraceAlternatives + 1}); err == nil {
		t.Errorf("decode accepted an oversized not-taken count")
	}
	if _, _, err := DecodeDecisionTraceRecord([]byte{startMarker, 0}); err == nil {
		t.Errorf("decode accepted a start record")
	}
	// Truncation at every prefix length of a full record must error,
	// never panic.
	enc, err := AppendDecisionTraceRecord(nil, DecisionTraceRecord{
		Instance: 9, Group: 1, Level: 1, Chosen: "A_<>S",
		NotTaken: []string{"A_f+2"}, Suspicions: 3, QueueLen: 4, QueueCap: 8,
		BatchFill: 50, BatchLimit: 16, LingerNanos: 1000, EWMANanos: 2000, ShedMask: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeDecisionTraceRecord(enc[:i]); err == nil {
			t.Errorf("decode accepted a %d-byte prefix of a %d-byte record", i, len(enc))
		}
	}
}
