package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"indulgence/internal/model"
	"indulgence/internal/payload"
)

func roundTrip(t *testing.T, m model.Message) model.Message {
	t.Helper()
	enc, err := EncodeMessage(nil, m)
	if err != nil {
		t.Fatalf("encode %v: %v", m, err)
	}
	dec, n, err := DecodeMessage(enc)
	if err != nil {
		t.Fatalf("decode %v: %v", m, err)
	}
	if n != len(enc) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
	}
	return dec
}

func TestRoundTripAllKinds(t *testing.T) {
	msgs := []model.Message{
		{From: 1, Round: 1, Payload: payload.NewValues([]model.Value{-3, 0, 9})},
		{From: 2, Round: 2, Payload: payload.EstHalt{Est: -7, Halt: model.NewPIDSet(1, 64)}},
		{From: 3, Round: 3, Payload: payload.NewEstimate{NE: model.Some(-1)}},
		{From: 4, Round: 4, Payload: payload.NewEstimate{NE: model.Bottom()}},
		{From: 5, Round: 5, Payload: payload.Decide{V: 123456789}},
		{From: 6, Round: 6, Payload: payload.Estimate{Est: 5, TS: 99}},
		{From: 7, Round: 7, Payload: payload.Propose{V: -5}},
		{From: 8, Round: 8, Payload: payload.Ack{Val: model.Some(0)}},
		{From: 9, Round: 9, Payload: payload.Ack{Val: model.Bottom()}},
		{From: 10, Round: 10, Payload: payload.AckEst{Est: 1, TS: 2, Ack: model.Some(3)}},
		{From: 11, Round: 11, Payload: payload.Adopt{Est: 42}},
		{From: 12, Round: 12, Payload: payload.Wrap{Inner: payload.Propose{V: 4}}},
		{From: 13, Round: 13, Payload: payload.Wrap{Inner: payload.Wrap{Inner: payload.Decide{V: 1}}}},
		{From: 14, Round: 14, Payload: payload.Wrap{}},
		{From: 15, Round: 15, Payload: nil},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if got.From != m.From || got.Round != m.Round {
			t.Fatalf("header mangled: %v -> %v", m, got)
		}
		if !reflect.DeepEqual(got.Payload, m.Payload) {
			t.Fatalf("payload mangled: %#v -> %#v", m.Payload, got.Payload)
		}
	}
}

// TestRoundTripQuick fuzzes EstHalt and Values payloads through the codec.
func TestRoundTripQuick(t *testing.T) {
	f := func(from uint8, round uint16, est int64, halt uint64, vals []int64) bool {
		m1 := model.Message{
			From:    model.ProcessID(int(from)%64 + 1),
			Round:   model.Round(round),
			Payload: payload.EstHalt{Est: model.Value(est), Halt: model.PIDSet(halt)},
		}
		vs := make([]model.Value, len(vals))
		for i, v := range vals {
			vs[i] = model.Value(v)
		}
		m2 := model.Message{
			From:    m1.From,
			Round:   m1.Round,
			Payload: payload.NewValues(vs),
		}
		for _, m := range []model.Message{m1, m2} {
			enc, err := EncodeMessage(nil, m)
			if err != nil {
				return false
			}
			dec, n, err := DecodeMessage(enc)
			if err != nil || n != len(enc) {
				return false
			}
			if !reflect.DeepEqual(dec, m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	m := model.Message{From: 1, Round: 9, Payload: payload.AckEst{Est: 1, TS: 2, Ack: model.Some(3)}}
	enc, err := EncodeMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeMessage(enc[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

func TestDecodeUnknownTag(t *testing.T) {
	enc, err := EncodeMessage(nil, model.Message{From: 1, Round: 1, Payload: payload.Decide{V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	enc[len(enc)-2] = 0xEE // clobber the payload tag region
	if _, _, err := DecodeMessage(enc); err == nil {
		t.Log("tag clobber happened to decode; adjusting offset")
	}
	bad := append(binaryHeader(), 0xEE)
	if _, _, err := DecodeMessage(bad); !errors.Is(err, ErrUnknownPayload) {
		t.Fatalf("err = %v, want ErrUnknownPayload", err)
	}
}

// binaryHeader encodes a minimal valid (from, round) prefix.
func binaryHeader() []byte {
	enc, _ := EncodeMessage(nil, model.Message{From: 1, Round: 1, Payload: nil})
	return enc[:len(enc)-1] // strip the nil payload tag
}

func TestFrames(t *testing.T) {
	var buf bytes.Buffer
	want := []byte("hello frames")
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("frame 1: %q, %v", got, err)
	}
	got, err = ReadFrame(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("frame 2: %q, %v", got, err)
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("read from empty stream succeeded")
	}
}

// TestLegacyFrameDecodesAsInstanceZero pins the backward-compatibility
// contract: every version-0 frame (bare message, no envelope) decodes
// through the instance-aware entry points as instance 0 with an identical
// message.
func TestLegacyFrameDecodesAsInstanceZero(t *testing.T) {
	msgs := []model.Message{
		{From: 1, Round: 1, Payload: nil},
		{From: 64, Round: 3, Payload: payload.Decide{V: -9}},
		{From: 2, Round: 200, Payload: payload.EstHalt{Est: 7, Halt: model.NewPIDSet(1, 2, 64)}},
		{From: 33, Round: 5, Payload: payload.NewValues([]model.Value{1, 2, 3})},
	}
	for _, m := range msgs {
		legacy, err := EncodeMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if legacy[0] == instanceMarker {
			t.Fatalf("legacy frame for %v starts with the instance marker", m)
		}
		inst, dec, n, err := DecodeInstanceMessage(legacy)
		if err != nil {
			t.Fatalf("decode legacy %v: %v", m, err)
		}
		if inst != 0 || n != len(legacy) || !reflect.DeepEqual(dec, m) {
			t.Fatalf("legacy decode: instance=%d n=%d/%d msg=%v, want instance 0, full frame, %v",
				inst, n, len(legacy), dec, m)
		}
		gotInst, inner, err := StripInstance(legacy)
		if err != nil || gotInst != 0 || !bytes.Equal(inner, legacy) {
			t.Fatalf("StripInstance(legacy) = %d, %q, %v", gotInst, inner, err)
		}
	}
}

// TestInstanceEnvelopeRoundTrip covers the version-1 path, including
// instance 0 (explicit envelope) and IDs beyond one varint byte.
func TestInstanceEnvelopeRoundTrip(t *testing.T) {
	m := model.Message{From: 5, Round: 9, Payload: payload.Estimate{Est: 4, TS: 2}}
	for _, instance := range []uint64{0, 1, 127, 128, 1 << 20, 1<<64 - 1} {
		enc, err := EncodeInstanceMessage(nil, instance, m)
		if err != nil {
			t.Fatal(err)
		}
		if enc[0] != instanceMarker {
			t.Fatalf("instance frame missing marker: % x", enc)
		}
		gotInst, dec, n, err := DecodeInstanceMessage(enc)
		if err != nil {
			t.Fatalf("decode instance %d: %v", instance, err)
		}
		if gotInst != instance || n != len(enc) || !reflect.DeepEqual(dec, m) {
			t.Fatalf("round trip: instance=%d n=%d/%d msg=%v", gotInst, n, len(enc), dec)
		}
		// The envelope is exactly AppendInstanceHeader + version-0 bytes.
		legacy, _ := EncodeMessage(nil, m)
		if want := append(AppendInstanceHeader(nil, instance), legacy...); !bytes.Equal(enc, want) {
			t.Fatalf("envelope layout drifted: % x != % x", enc, want)
		}
	}
}

func TestStripInstanceTruncated(t *testing.T) {
	if _, _, err := StripInstance(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty frame: %v", err)
	}
	if _, _, err := StripInstance([]byte{instanceMarker}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("marker without id: %v", err)
	}
	if _, _, err := StripInstance([]byte{instanceMarker, 0x80}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("unterminated id varint: %v", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write: %v", err)
	}
	// A forged oversized header must be rejected before allocation.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read: %v", err)
	}
}

// TestDecisionRecordRoundTrip pins the record codec: every field survives
// encode/decode, including boundary instance IDs and negative values.
func TestDecisionRecordRoundTrip(t *testing.T) {
	cases := []DecisionRecord{
		{},
		{Instance: 1, Value: 7, Round: 4, Batch: 1},
		{Instance: 1<<64 - 1, Value: -1, Round: 1, Batch: 8},
		{Instance: 1 << 40, Value: 1<<62 - 1, Round: 256, Batch: MaxFrameSize},
	}
	for _, want := range cases {
		enc := AppendDecisionRecord(nil, want)
		got, n, err := DecodeDecisionRecord(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if n != len(enc) {
			t.Fatalf("decode %+v consumed %d of %d bytes", want, n, len(enc))
		}
		if got != want {
			t.Fatalf("round trip: %+v != %+v", got, want)
		}
	}
}

// TestDecisionRecordMarkerDisjoint checks the frame-kind invariant: a
// record can never be confused with either message frame version.
func TestDecisionRecordMarkerDisjoint(t *testing.T) {
	rec := AppendDecisionRecord(nil, DecisionRecord{Instance: 3, Value: 1, Round: 4, Batch: 2})
	if rec[0] == instanceMarker {
		t.Fatal("record marker collides with the instance marker")
	}
	for p := model.ProcessID(1); p <= model.MaxProcesses; p++ {
		frame, err := EncodeMessage(nil, model.Message{From: p, Round: 1})
		if err != nil {
			t.Fatal(err)
		}
		if frame[0] == rec[0] {
			t.Fatalf("sender %d opens with the record marker", p)
		}
	}
}

func TestDecisionRecordDecodeErrors(t *testing.T) {
	if _, _, err := DecodeDecisionRecord(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty: %v", err)
	}
	if _, _, err := DecodeDecisionRecord([]byte{0x05}); !errors.Is(err, ErrUnknownPayload) {
		t.Fatalf("wrong marker: %v", err)
	}
	full := AppendDecisionRecord(nil, DecisionRecord{Instance: 1 << 40, Value: -9, Round: 300, Batch: 5})
	for i := 1; i < len(full); i++ {
		if _, _, err := DecodeDecisionRecord(full[:i]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d bytes: %v", i, err)
		}
	}
	// An absurd batch count is rejected even when varint-complete.
	forged := append([]byte{recordMarker, 0x01, 0x02, 0x08}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, _, err := DecodeDecisionRecord(forged); !errors.Is(err, ErrUnknownPayload) {
		t.Fatalf("oversized batch: %v", err)
	}
}

func TestStartRecordRoundTrip(t *testing.T) {
	cases := []StartRecord{
		{}, {Instance: 7}, {Instance: 1<<64 - 1},
		{Instance: 7, Alg: "A_f+2"},
		{Instance: 0, Alg: "A_t+2"},
	}
	for _, want := range cases {
		enc, err := AppendStartRecord(nil, want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, n, err := DecodeStartRecord(enc)
		if err != nil || n != len(enc) || got != want {
			t.Fatalf("round trip %+v: got %+v n=%d err=%v", want, got, n, err)
		}
	}
	enc, err := AppendStartRecord(nil, StartRecord{Instance: 1})
	if err != nil {
		t.Fatal(err)
	}
	if enc[0] == recordMarker || enc[0] == instanceMarker {
		t.Fatal("start marker collides with another kind")
	}
	// A legacy record — marker + instance, no algorithm-tag length —
	// decodes with an empty Alg.
	legacy := []byte{startMarker, 0x07}
	got, n, err := DecodeStartRecord(legacy)
	if err != nil || n != len(legacy) || got.Instance != 7 || got.Alg != "" {
		t.Fatalf("legacy record: got %+v n=%d err=%v", got, n, err)
	}
	if _, _, err := DecodeStartRecord(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty: %v", err)
	}
	if _, _, err := DecodeStartRecord([]byte{startMarker}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("missing instance: %v", err)
	}
	if _, _, err := DecodeStartRecord([]byte{recordMarker, 1}); !errors.Is(err, ErrUnknownPayload) {
		t.Fatalf("wrong marker: %v", err)
	}
	// A tag longer than its payload is truncation; a tag over the cap is
	// rejected outright at both ends.
	if _, _, err := DecodeStartRecord([]byte{startMarker, 0x01, 0x05, 'a'}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short tag: %v", err)
	}
	if _, err := AppendStartRecord(nil, StartRecord{Alg: strings.Repeat("x", MaxAlgNameLen+1)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized tag encoded: %v", err)
	}
	if _, _, err := DecodeStartRecord(append([]byte{startMarker, 0x01, 0x7F}, make([]byte, 127)...)); !errors.Is(err, ErrUnknownPayload) {
		t.Fatalf("oversized tag decoded: %v", err)
	}
}

func TestHelloRecordRoundTrip(t *testing.T) {
	cases := []HelloRecord{
		{Cluster: "", Sender: 1},
		{Cluster: "indulgence", Sender: 3},
		{Cluster: "a/b c-d_e", Sender: model.MaxProcesses},
	}
	for _, want := range cases {
		enc, err := AppendHelloRecord(nil, want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, n, err := DecodeHelloRecord(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if n != len(enc) {
			t.Fatalf("decode %+v consumed %d of %d bytes", want, n, len(enc))
		}
		if got != want {
			t.Fatalf("round trip: %+v != %+v", got, want)
		}
	}
}

// TestHelloRecordMarkerDisjoint checks the frame-kind invariant for the
// handshake: a hello can never be confused with any other frame kind.
func TestHelloRecordMarkerDisjoint(t *testing.T) {
	enc, err := AppendHelloRecord(nil, HelloRecord{Cluster: "c", Sender: 2})
	if err != nil {
		t.Fatal(err)
	}
	if enc[0] == instanceMarker || enc[0] == recordMarker || enc[0] == startMarker {
		t.Fatal("hello marker collides with another kind")
	}
	for p := model.ProcessID(1); p <= model.MaxProcesses; p++ {
		frame, err := EncodeMessage(nil, model.Message{From: p, Round: 1})
		if err != nil {
			t.Fatal(err)
		}
		if frame[0] == enc[0] {
			t.Fatalf("sender %d opens with the hello marker", p)
		}
	}
}

func TestHelloRecordDecodeErrors(t *testing.T) {
	if _, _, err := DecodeHelloRecord(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty: %v", err)
	}
	if _, _, err := DecodeHelloRecord([]byte{recordMarker}); !errors.Is(err, ErrUnknownPayload) {
		t.Fatalf("wrong marker: %v", err)
	}
	full, err := AppendHelloRecord(nil, HelloRecord{Cluster: "cluster", Sender: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(full); i++ {
		if _, _, err := DecodeHelloRecord(full[:i]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d bytes: %v", i, err)
		}
	}
	// Oversized cluster IDs are refused on both sides.
	if _, err := AppendHelloRecord(nil, HelloRecord{Cluster: strings.Repeat("x", MaxClusterIDLen+1), Sender: 1}); err == nil {
		t.Fatal("oversized cluster encoded")
	}
	forged := []byte{0x07, 0xFF, 0xFF, 0x7F}
	if _, _, err := DecodeHelloRecord(forged); !errors.Is(err, ErrUnknownPayload) {
		t.Fatalf("oversized cluster decoded: %v", err)
	}
	// A sender outside [1, MaxProcesses] is structurally invalid.
	bad, err := AppendHelloRecord(nil, HelloRecord{Cluster: "c", Sender: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeHelloRecord(bad); !errors.Is(err, ErrUnknownPayload) {
		t.Fatalf("sender 0 decoded: %v", err)
	}
}

// TestAppendFrameMatchesWriteFrame pins the coalescing helper to the
// stream layout WriteFrame owns.
func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	var streamed bytes.Buffer
	var appended []byte
	for _, payload := range [][]byte{{}, {1}, []byte("frame two"), make([]byte, 300)} {
		if err := WriteFrame(&streamed, payload); err != nil {
			t.Fatal(err)
		}
		var err error
		if appended, err = AppendFrame(appended, payload); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(streamed.Bytes(), appended) {
		t.Fatal("AppendFrame diverges from WriteFrame's layout")
	}
	if _, err := AppendFrame(nil, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame appended: %v", err)
	}
}
