package wire

// Trace record kinds: the on-disk format of the workload engine's
// record/replay traces (internal/workload). A trace file is a sequence
// of CRC-framed records — one TraceHeaderRecord describing the run,
// then one TraceEventRecord per recorded proposal arrival and one
// TraceOutcomeRecord per resolved proposal. The three markers extend
// the odd-byte family documented in the package comment: 0x0B, 0x0D
// and 0x0F can never open a version-0 frame, so record kind is
// decidable from the first byte alone.

import (
	"encoding/binary"
	"fmt"

	"indulgence/internal/model"
)

// Trace record markers.
const (
	traceHeaderMarker  byte = 0x0B
	traceEventMarker   byte = 0x0D
	traceOutcomeMarker byte = 0x0F
)

// TraceFormatVersion is the trace format this package encodes. Decoders
// accept only versions they know; bumping the version is how future
// layouts stay distinguishable.
const TraceFormatVersion = 1

// MaxTraceSpecLen bounds the embedded workload-spec JSON a trace header
// may carry.
const MaxTraceSpecLen = 1 << 16

// Trace outcome statuses.
const (
	// TraceDecided marks a proposal that was decided.
	TraceDecided = 0
	// TraceShed marks a proposal refused by admission control.
	TraceShed = 1
	// TraceFailed marks a proposal that errored without deciding.
	TraceFailed = 2
)

// TraceHeaderRecord is the first record of every trace file: the
// configuration under which the run was recorded, sufficient to rebuild
// an equivalent service stack for replay.
type TraceHeaderRecord struct {
	// Version is the trace format version (TraceFormatVersion).
	Version int
	// Deterministic reports whether the recording ran on the virtual
	// clock behind the deterministic fault fabric, in which case replay
	// must reproduce every outcome byte-identically. Real-clock
	// recordings replay the same arrivals but may batch differently, so
	// replays of them are audited for agreement, not identity.
	Deterministic bool
	// Seed is the workload seed the arrivals were generated from (0 for
	// traces recorded from external load).
	Seed int64
	// N and T are the simulated cluster size and resilience.
	N, T int
	// Groups is the sharded group count (0 or 1 for a single group).
	Groups int
	// MaxBatch, MaxInflight, LingerNanos and TimeoutNanos mirror the
	// service configuration of the recorded run.
	MaxBatch     int
	MaxInflight  int
	LingerNanos  int64
	TimeoutNanos int64
	// Algorithm names the consensus algorithm ("" for the default).
	Algorithm string
	// Placement names the sharding placement policy ("" when unsharded).
	Placement string
	// Classes is the number of SLO classes the run admitted (0 for
	// unclassed traffic).
	Classes int
	// Spec is the JSON encoding of the workload spec the arrivals were
	// generated from ("" for traces recorded from external load).
	Spec string
}

// AppendTraceHeaderRecord appends the encoding of r to dst and returns
// the extended slice. The layout is the header marker, uvarint version,
// a flags byte (bit 0 = deterministic), varint seed, uvarint n, t,
// groups, batch, inflight, varint linger and timeout nanos, the
// uvarint-length-prefixed algorithm, placement and spec strings, and a
// trailing uvarint class count.
func AppendTraceHeaderRecord(dst []byte, r TraceHeaderRecord) ([]byte, error) {
	if len(r.Algorithm) > MaxAlgNameLen {
		return nil, fmt.Errorf("%w: trace algorithm of %d bytes", ErrFrameTooLarge, len(r.Algorithm))
	}
	if len(r.Placement) > MaxAlgNameLen {
		return nil, fmt.Errorf("%w: trace placement of %d bytes", ErrFrameTooLarge, len(r.Placement))
	}
	if len(r.Spec) > MaxTraceSpecLen {
		return nil, fmt.Errorf("%w: trace spec of %d bytes", ErrFrameTooLarge, len(r.Spec))
	}
	dst = append(dst, traceHeaderMarker)
	dst = binary.AppendUvarint(dst, uint64(r.Version))
	var flags byte
	if r.Deterministic {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendVarint(dst, r.Seed)
	dst = binary.AppendUvarint(dst, uint64(r.N))
	dst = binary.AppendUvarint(dst, uint64(r.T))
	dst = binary.AppendUvarint(dst, uint64(r.Groups))
	dst = binary.AppendUvarint(dst, uint64(r.MaxBatch))
	dst = binary.AppendUvarint(dst, uint64(r.MaxInflight))
	dst = binary.AppendVarint(dst, r.LingerNanos)
	dst = binary.AppendVarint(dst, r.TimeoutNanos)
	dst = binary.AppendUvarint(dst, uint64(len(r.Algorithm)))
	dst = append(dst, r.Algorithm...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Placement)))
	dst = append(dst, r.Placement...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Spec)))
	dst = append(dst, r.Spec...)
	return binary.AppendUvarint(dst, uint64(r.Classes)), nil
}

// DecodeTraceHeaderRecord decodes one trace header from b, returning it
// and the number of bytes consumed.
func DecodeTraceHeaderRecord(b []byte) (TraceHeaderRecord, int, error) {
	var r TraceHeaderRecord
	if len(b) == 0 {
		return r, 0, fmt.Errorf("%w: empty trace header", ErrTruncated)
	}
	if b[0] != traceHeaderMarker {
		return r, 0, fmt.Errorf("%w: trace header marker %#x", ErrUnknownPayload, b[0])
	}
	off := 1
	version, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: trace version", ErrTruncated)
	}
	if version != TraceFormatVersion {
		return r, 0, fmt.Errorf("%w: trace version %d", ErrUnknownPayload, version)
	}
	off += n
	if off >= len(b) {
		return r, 0, fmt.Errorf("%w: trace flags", ErrTruncated)
	}
	flags := b[off]
	if flags > 1 {
		return r, 0, fmt.Errorf("%w: trace flags %#x", ErrUnknownPayload, flags)
	}
	off++
	seed, n := binary.Varint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: trace seed", ErrTruncated)
	}
	off += n
	var u [5]uint64
	for i, field := range []string{"n", "t", "groups", "batch", "inflight"} {
		v, vn := binary.Uvarint(b[off:])
		if vn <= 0 {
			return r, 0, fmt.Errorf("%w: trace %s", ErrTruncated, field)
		}
		if v > MaxFrameSize {
			return r, 0, fmt.Errorf("%w: trace %s %d", ErrUnknownPayload, field, v)
		}
		off += vn
		u[i] = v
	}
	linger, n := binary.Varint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: trace linger", ErrTruncated)
	}
	off += n
	timeout, n := binary.Varint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: trace timeout", ErrTruncated)
	}
	off += n
	var s [3]string
	for i, field := range []struct {
		name string
		max  int
	}{{"algorithm", MaxAlgNameLen}, {"placement", MaxAlgNameLen}, {"spec", MaxTraceSpecLen}} {
		slen, sn := binary.Uvarint(b[off:])
		if sn <= 0 {
			return r, 0, fmt.Errorf("%w: trace %s length", ErrTruncated, field.name)
		}
		if slen > uint64(field.max) {
			return r, 0, fmt.Errorf("%w: trace %s of %d bytes", ErrUnknownPayload, field.name, slen)
		}
		off += sn
		if uint64(len(b)-off) < slen {
			return r, 0, fmt.Errorf("%w: trace %s", ErrTruncated, field.name)
		}
		s[i] = string(b[off : off+int(slen)])
		off += int(slen)
	}
	classes, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: trace classes", ErrTruncated)
	}
	if classes > MaxClassValue+1 {
		return r, 0, fmt.Errorf("%w: trace classes %d", ErrUnknownPayload, classes)
	}
	off += n
	r.Version = int(version)
	r.Deterministic = flags&1 != 0
	r.Seed = seed
	r.N, r.T, r.Groups = int(u[0]), int(u[1]), int(u[2])
	r.MaxBatch, r.MaxInflight = int(u[3]), int(u[4])
	r.LingerNanos, r.TimeoutNanos = linger, timeout
	r.Algorithm, r.Placement, r.Spec = s[0], s[1], s[2]
	r.Classes = int(classes)
	return r, off, nil
}

// TraceEventRecord is one recorded proposal arrival: the instant load
// entered the system, which cohort and client produced it, and the
// proposal itself.
type TraceEventRecord struct {
	// Seq is the arrival's position in the global arrival order; the
	// matching TraceOutcomeRecord carries the same Seq.
	Seq uint64
	// AtNanos is the arrival instant as nanoseconds since run start.
	AtNanos int64
	// Cohort and Client locate the generating stream within the spec.
	Cohort int
	Client int
	// Class is the proposal's SLO class.
	Class int
	// Key routes the proposal to a consensus group when sharded.
	Key uint64
	// Value is the proposed value.
	Value model.Value
	// Payload is the synthetic payload size in bytes.
	Payload int
}

// AppendTraceEventRecord appends the encoding of r to dst and returns
// the extended slice. The layout is the event marker followed by
// uvarint seq, varint at-nanos, uvarint cohort, client and class,
// uvarint key, varint value and uvarint payload size.
func AppendTraceEventRecord(dst []byte, r TraceEventRecord) []byte {
	dst = append(dst, traceEventMarker)
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = binary.AppendVarint(dst, r.AtNanos)
	dst = binary.AppendUvarint(dst, uint64(r.Cohort))
	dst = binary.AppendUvarint(dst, uint64(r.Client))
	dst = binary.AppendUvarint(dst, uint64(r.Class))
	dst = binary.AppendUvarint(dst, r.Key)
	dst = binary.AppendVarint(dst, int64(r.Value))
	return binary.AppendUvarint(dst, uint64(r.Payload))
}

// DecodeTraceEventRecord decodes one trace event from b, returning it
// and the number of bytes consumed.
func DecodeTraceEventRecord(b []byte) (TraceEventRecord, int, error) {
	var r TraceEventRecord
	if len(b) == 0 {
		return r, 0, fmt.Errorf("%w: empty trace event", ErrTruncated)
	}
	if b[0] != traceEventMarker {
		return r, 0, fmt.Errorf("%w: trace event marker %#x", ErrUnknownPayload, b[0])
	}
	off := 1
	seq, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: event seq", ErrTruncated)
	}
	off += n
	at, n := binary.Varint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: event at", ErrTruncated)
	}
	off += n
	cohort, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: event cohort", ErrTruncated)
	}
	if cohort > MaxFrameSize {
		return r, 0, fmt.Errorf("%w: event cohort %d", ErrUnknownPayload, cohort)
	}
	off += n
	client, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: event client", ErrTruncated)
	}
	if client > MaxFrameSize {
		return r, 0, fmt.Errorf("%w: event client %d", ErrUnknownPayload, client)
	}
	off += n
	class, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: event class", ErrTruncated)
	}
	if class > MaxClassValue {
		return r, 0, fmt.Errorf("%w: event class %d", ErrUnknownPayload, class)
	}
	off += n
	key, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: event key", ErrTruncated)
	}
	off += n
	value, n := binary.Varint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: event value", ErrTruncated)
	}
	off += n
	size, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: event payload", ErrTruncated)
	}
	if size > MaxFrameSize {
		return r, 0, fmt.Errorf("%w: event payload %d", ErrUnknownPayload, size)
	}
	off += n
	r.Seq = seq
	r.AtNanos = at
	r.Cohort, r.Client, r.Class = int(cohort), int(client), int(class)
	r.Key = key
	r.Value = model.Value(value)
	r.Payload = int(size)
	return r, off, nil
}

// TraceOutcomeRecord is the fate of one recorded arrival: the decision
// it was committed under, or the shed/failure it received instead.
type TraceOutcomeRecord struct {
	// Seq matches the TraceEventRecord of the arrival.
	Seq uint64
	// Status is TraceDecided, TraceShed or TraceFailed.
	Status int
	// Instance, Value, Round, Batch, Group and Class mirror the
	// DecisionRecord the proposal was journaled under (zero for shed
	// and failed proposals).
	Instance uint64
	Value    model.Value
	Round    model.Round
	Batch    int
	Group    uint64
	Class    int
	// LatencyNanos is the proposal's submit-to-resolve latency.
	LatencyNanos int64
}

// AppendTraceOutcomeRecord appends the encoding of r to dst and returns
// the extended slice. The layout is the outcome marker followed by
// uvarint seq, uvarint status, uvarint instance, varint value, varint
// round, uvarint batch, group and class, and varint latency nanos.
func AppendTraceOutcomeRecord(dst []byte, r TraceOutcomeRecord) []byte {
	dst = append(dst, traceOutcomeMarker)
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = binary.AppendUvarint(dst, uint64(r.Status))
	dst = binary.AppendUvarint(dst, r.Instance)
	dst = binary.AppendVarint(dst, int64(r.Value))
	dst = binary.AppendVarint(dst, int64(r.Round))
	dst = binary.AppendUvarint(dst, uint64(r.Batch))
	dst = binary.AppendUvarint(dst, r.Group)
	dst = binary.AppendUvarint(dst, uint64(r.Class))
	return binary.AppendVarint(dst, r.LatencyNanos)
}

// DecodeTraceOutcomeRecord decodes one trace outcome from b, returning
// it and the number of bytes consumed.
func DecodeTraceOutcomeRecord(b []byte) (TraceOutcomeRecord, int, error) {
	var r TraceOutcomeRecord
	if len(b) == 0 {
		return r, 0, fmt.Errorf("%w: empty trace outcome", ErrTruncated)
	}
	if b[0] != traceOutcomeMarker {
		return r, 0, fmt.Errorf("%w: trace outcome marker %#x", ErrUnknownPayload, b[0])
	}
	off := 1
	seq, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: outcome seq", ErrTruncated)
	}
	off += n
	status, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: outcome status", ErrTruncated)
	}
	if status > TraceFailed {
		return r, 0, fmt.Errorf("%w: outcome status %d", ErrUnknownPayload, status)
	}
	off += n
	instance, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: outcome instance", ErrTruncated)
	}
	off += n
	value, n := binary.Varint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: outcome value", ErrTruncated)
	}
	off += n
	round, n := binary.Varint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: outcome round", ErrTruncated)
	}
	off += n
	batch, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: outcome batch", ErrTruncated)
	}
	if batch > MaxFrameSize {
		return r, 0, fmt.Errorf("%w: outcome batch %d", ErrUnknownPayload, batch)
	}
	off += n
	group, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: outcome group", ErrTruncated)
	}
	off += n
	class, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: outcome class", ErrTruncated)
	}
	if class > MaxClassValue {
		return r, 0, fmt.Errorf("%w: outcome class %d", ErrUnknownPayload, class)
	}
	off += n
	latency, n := binary.Varint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: outcome latency", ErrTruncated)
	}
	off += n
	r.Seq = seq
	r.Status = int(status)
	r.Instance = instance
	r.Value = model.Value(value)
	r.Round = model.Round(round)
	r.Batch = int(batch)
	r.Group = group
	r.Class = int(class)
	r.LatencyNanos = latency
	return r, off, nil
}

// DecodeTraceRecord decodes one trace record of any kind from b,
// dispatching on the marker byte. The returned value is a
// TraceHeaderRecord, TraceEventRecord or TraceOutcomeRecord.
func DecodeTraceRecord(b []byte) (any, int, error) {
	if len(b) == 0 {
		return nil, 0, fmt.Errorf("%w: empty trace record", ErrTruncated)
	}
	switch b[0] {
	case traceHeaderMarker:
		r, n, err := DecodeTraceHeaderRecord(b)
		if err != nil {
			return nil, 0, err
		}
		return r, n, nil
	case traceEventMarker:
		r, n, err := DecodeTraceEventRecord(b)
		if err != nil {
			return nil, 0, err
		}
		return r, n, nil
	case traceOutcomeMarker:
		r, n, err := DecodeTraceOutcomeRecord(b)
		if err != nil {
			return nil, 0, err
		}
		return r, n, nil
	default:
		return nil, 0, fmt.Errorf("%w: trace marker %#x", ErrUnknownPayload, b[0])
	}
}
