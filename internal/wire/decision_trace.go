package wire

import (
	"encoding/binary"
	"fmt"
)

// decisionTraceMarker opens a decision-trace record, the journal's
// introspection record kind: the controller/selector/admission context
// a service held at the moment it chose how to launch one consensus
// instance. Like the other record markers it is an odd byte below
// 0x80, so it can never open a version-0 frame and the kind is
// decidable from the first byte alone.
const decisionTraceMarker byte = 0x11

// MaxTraceAlternatives bounds the not-taken rungs a decision-trace
// record may carry; it comfortably exceeds the algorithm ladder's
// length (three rungs plus the probe).
const MaxTraceAlternatives = 8

// MaxShedMask bounds the admission mask a decision-trace record may
// carry: one bit per SLO class, classes 0..MaxClassValue.
const MaxShedMask = 1<<(MaxClassValue+1) - 1

// DecisionTraceRecord captures why a service launched one consensus
// instance the way it did: the rung the selector chose (and the rungs
// it did not take), the controller's latency baseline and batch
// shape, and the admission state — everything needed to audit a
// demotion after the fact or replay the choice against a different
// policy. The journal writes it with the same "before any frame
// touches the network" ordering as the start claim it accompanies.
type DecisionTraceRecord struct {
	// Instance is the consensus instance the choice launched.
	Instance uint64
	// Group is the consensus group the instance belongs to (0 for
	// single-group deployments).
	Group uint64
	// Level is the selector's rung index at choice time (0 is the
	// fastest, most indulgent rung).
	Level int
	// Chosen names the algorithm the instance was launched with.
	Chosen string
	// NotTaken names the ladder's other rungs, in ladder order — the
	// counterfactual set a tuner can replay the instance against.
	NotTaken []string
	// Suspicions is the failure-detector suspicion count in the
	// controller's current observation window at choice time.
	Suspicions uint64
	// QueueLen and QueueCap are the proposal-intake occupancy and
	// capacity at choice time.
	QueueLen uint64
	QueueCap uint64
	// BatchFill is the cut batch's fill as a percentage of the batch
	// limit in force; BatchLimit is that limit.
	BatchFill  int
	BatchLimit int
	// LingerNanos is the batch linger in force at choice time.
	LingerNanos int64
	// EWMANanos is the controller's decision-latency EWMA baseline at
	// choice time (0 until the first decision lands).
	EWMANanos int64
	// ShedMask is the admission state at choice time: bit c set means
	// SLO class c was being shed.
	ShedMask uint64
}

// AppendDecisionTraceRecord appends the encoding of r to dst and
// returns the extended slice. The layout is the trace marker followed
// by uvarint instance, group, level, the uvarint-length-prefixed
// chosen algorithm, a uvarint count of not-taken rungs each length-
// prefixed the same way, and uvarint suspicions, queue length, queue
// capacity, batch fill, batch limit, linger, EWMA and shed mask.
// Negative durations clamp to zero; every field is always present
// (this record kind has no legacy layout to stay compatible with).
func AppendDecisionTraceRecord(dst []byte, r DecisionTraceRecord) ([]byte, error) {
	if len(r.Chosen) > MaxAlgNameLen {
		return nil, fmt.Errorf("%w: algorithm tag of %d bytes", ErrFrameTooLarge, len(r.Chosen))
	}
	if len(r.NotTaken) > MaxTraceAlternatives {
		return nil, fmt.Errorf("%w: %d not-taken rungs", ErrFrameTooLarge, len(r.NotTaken))
	}
	if r.Level < 0 || r.Level > MaxTraceAlternatives ||
		r.BatchFill < 0 || r.BatchFill > MaxFrameSize ||
		r.BatchLimit < 0 || r.BatchLimit > MaxFrameSize ||
		r.QueueLen > MaxFrameSize || r.QueueCap > MaxFrameSize ||
		r.ShedMask > MaxShedMask {
		return nil, fmt.Errorf("%w: decision-trace field out of range", ErrUnknownPayload)
	}
	dst = append(dst, decisionTraceMarker)
	dst = binary.AppendUvarint(dst, r.Instance)
	dst = binary.AppendUvarint(dst, r.Group)
	dst = binary.AppendUvarint(dst, uint64(r.Level))
	dst = binary.AppendUvarint(dst, uint64(len(r.Chosen)))
	dst = append(dst, r.Chosen...)
	dst = binary.AppendUvarint(dst, uint64(len(r.NotTaken)))
	for _, alg := range r.NotTaken {
		if len(alg) > MaxAlgNameLen {
			return nil, fmt.Errorf("%w: algorithm tag of %d bytes", ErrFrameTooLarge, len(alg))
		}
		dst = binary.AppendUvarint(dst, uint64(len(alg)))
		dst = append(dst, alg...)
	}
	dst = binary.AppendUvarint(dst, r.Suspicions)
	dst = binary.AppendUvarint(dst, r.QueueLen)
	dst = binary.AppendUvarint(dst, r.QueueCap)
	dst = binary.AppendUvarint(dst, uint64(r.BatchFill))
	dst = binary.AppendUvarint(dst, uint64(r.BatchLimit))
	dst = binary.AppendUvarint(dst, clampNanos(r.LingerNanos))
	dst = binary.AppendUvarint(dst, clampNanos(r.EWMANanos))
	dst = binary.AppendUvarint(dst, r.ShedMask)
	return dst, nil
}

func clampNanos(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// DecodeDecisionTraceRecord decodes one decision-trace record from b,
// returning it and the number of bytes consumed.
func DecodeDecisionTraceRecord(b []byte) (DecisionTraceRecord, int, error) {
	var r DecisionTraceRecord
	if len(b) == 0 {
		return r, 0, fmt.Errorf("%w: empty record", ErrTruncated)
	}
	if b[0] != decisionTraceMarker {
		return r, 0, fmt.Errorf("%w: decision-trace marker %#x", ErrUnknownPayload, b[0])
	}
	off := 1
	uv := func(field string) (uint64, error) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: decision-trace %s", ErrTruncated, field)
		}
		off += n
		return v, nil
	}
	str := func(field string) (string, error) {
		alen, err := uv(field + " length")
		if err != nil {
			return "", err
		}
		if alen > MaxAlgNameLen {
			return "", fmt.Errorf("%w: decision-trace %s of %d bytes", ErrUnknownPayload, field, alen)
		}
		if uint64(len(b)-off) < alen {
			return "", fmt.Errorf("%w: decision-trace %s", ErrTruncated, field)
		}
		s := string(b[off : off+int(alen)])
		off += int(alen)
		return s, nil
	}
	var err error
	if r.Instance, err = uv("instance"); err != nil {
		return DecisionTraceRecord{}, 0, err
	}
	if r.Group, err = uv("group"); err != nil {
		return DecisionTraceRecord{}, 0, err
	}
	level, err := uv("level")
	if err != nil {
		return DecisionTraceRecord{}, 0, err
	}
	if level > MaxTraceAlternatives {
		return DecisionTraceRecord{}, 0, fmt.Errorf("%w: decision-trace level %d", ErrUnknownPayload, level)
	}
	r.Level = int(level)
	if r.Chosen, err = str("chosen algorithm"); err != nil {
		return DecisionTraceRecord{}, 0, err
	}
	count, err := uv("not-taken count")
	if err != nil {
		return DecisionTraceRecord{}, 0, err
	}
	if count > MaxTraceAlternatives {
		return DecisionTraceRecord{}, 0, fmt.Errorf("%w: decision-trace with %d not-taken rungs", ErrUnknownPayload, count)
	}
	for i := uint64(0); i < count; i++ {
		alg, err := str("not-taken algorithm")
		if err != nil {
			return DecisionTraceRecord{}, 0, err
		}
		r.NotTaken = append(r.NotTaken, alg)
	}
	if r.Suspicions, err = uv("suspicions"); err != nil {
		return DecisionTraceRecord{}, 0, err
	}
	if r.QueueLen, err = uv("queue length"); err != nil {
		return DecisionTraceRecord{}, 0, err
	}
	if r.QueueCap, err = uv("queue capacity"); err != nil {
		return DecisionTraceRecord{}, 0, err
	}
	fill, err := uv("batch fill")
	if err != nil {
		return DecisionTraceRecord{}, 0, err
	}
	limit, err := uv("batch limit")
	if err != nil {
		return DecisionTraceRecord{}, 0, err
	}
	if r.QueueLen > MaxFrameSize || r.QueueCap > MaxFrameSize ||
		fill > MaxFrameSize || limit > MaxFrameSize {
		return DecisionTraceRecord{}, 0, fmt.Errorf("%w: decision-trace occupancy out of range", ErrUnknownPayload)
	}
	r.BatchFill = int(fill)
	r.BatchLimit = int(limit)
	linger, err := uv("linger")
	if err != nil {
		return DecisionTraceRecord{}, 0, err
	}
	ewma, err := uv("ewma")
	if err != nil {
		return DecisionTraceRecord{}, 0, err
	}
	if linger > 1<<62 || ewma > 1<<62 {
		return DecisionTraceRecord{}, 0, fmt.Errorf("%w: decision-trace duration out of range", ErrUnknownPayload)
	}
	r.LingerNanos = int64(linger)
	r.EWMANanos = int64(ewma)
	if r.ShedMask, err = uv("shed mask"); err != nil {
		return DecisionTraceRecord{}, 0, err
	}
	if r.ShedMask > MaxShedMask {
		return DecisionTraceRecord{}, 0, fmt.Errorf("%w: decision-trace shed mask %#x", ErrUnknownPayload, r.ShedMask)
	}
	return r, off, nil
}
