package wire

import (
	"encoding/binary"
	"fmt"

	"indulgence/internal/model"
)

// groupMarker opens a version-2 (group-addressed) frame: the sharded
// runtime's envelope, carrying a consensus-group ID and an instance ID
// so many independent groups multiplex one physical connection. Like
// the other envelope markers it is an odd byte below 0x80, so it can
// never open a version-0 frame (positive senders zigzag-encode to even
// first bytes; continuation bytes have the high bit set) and is
// disjoint from the instance envelope (0x01) and the record markers
// (0x03, 0x05, 0x07): frame kind stays decidable from the first byte
// alone.
const groupMarker byte = 0x09

// AppendGroupHeader appends the envelope header addressing (group,
// instance) to dst. Group 0 is the compatibility group and emits the
// pre-group layouts byte-identically: instance 0 appends nothing (a
// bare version-0 frame), any other instance appends the version-1
// instance envelope. Only group > 0 emits the version-2 group
// envelope, so a single-group deployment's frames are exactly the
// frames it sent before groups existed. StripGroup undoes exactly this
// header.
func AppendGroupHeader(dst []byte, group, instance uint64) []byte {
	if group == 0 {
		if instance == 0 {
			return dst
		}
		return AppendInstanceHeader(dst, instance)
	}
	dst = append(dst, groupMarker)
	dst = binary.AppendUvarint(dst, group)
	return binary.AppendUvarint(dst, instance)
}

// StripGroup splits a frame into its consensus-group ID, instance ID
// and bare message bytes. Frames of the earlier layouts — version-0
// bare messages and version-1 instance envelopes — decode as group 0,
// so every frame a pre-group peer can emit routes to the compatibility
// group unchanged.
func StripGroup(frame []byte) (group, instance uint64, inner []byte, err error) {
	if len(frame) == 0 {
		return 0, 0, nil, fmt.Errorf("%w: empty frame", ErrTruncated)
	}
	if frame[0] != groupMarker {
		instance, inner, err = StripInstance(frame)
		return 0, instance, inner, err
	}
	g, n := binary.Uvarint(frame[1:])
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: group id", ErrTruncated)
	}
	off := 1 + n
	id, n := binary.Uvarint(frame[off:])
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: group instance id", ErrTruncated)
	}
	return g, id, frame[off+n:], nil
}

// EncodeGroupMessage appends the encoding of m addressed to (group,
// instance). Group 0 emits the legacy layouts (see AppendGroupHeader).
func EncodeGroupMessage(dst []byte, group, instance uint64, m model.Message) ([]byte, error) {
	return EncodeMessage(AppendGroupHeader(dst, group, instance), m)
}

// DecodeGroupMessage decodes a frame of any envelope version, returning
// its group (0 for pre-group frames), instance, message and the bytes
// consumed.
func DecodeGroupMessage(b []byte) (group, instance uint64, m model.Message, n int, err error) {
	group, instance, inner, err := StripGroup(b)
	if err != nil {
		return 0, 0, model.Message{}, 0, err
	}
	m, used, err := DecodeMessage(inner)
	if err != nil {
		return 0, 0, model.Message{}, 0, err
	}
	return group, instance, m, len(b) - len(inner) + used, nil
}
