package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"indulgence/internal/model"
	"indulgence/internal/payload"
)

// TestGroupEnvelopeRoundTrip covers the version-2 path, including IDs
// beyond one varint byte in both dimensions.
func TestGroupEnvelopeRoundTrip(t *testing.T) {
	m := model.Message{From: 5, Round: 9, Payload: payload.Estimate{Est: 4, TS: 2}}
	for _, group := range []uint64{1, 2, 127, 128, 1 << 20, 1<<64 - 1} {
		for _, instance := range []uint64{0, 1, 127, 128, 1 << 40} {
			enc, err := EncodeGroupMessage(nil, group, instance, m)
			if err != nil {
				t.Fatal(err)
			}
			if enc[0] != groupMarker {
				t.Fatalf("group frame missing marker: % x", enc)
			}
			g, inst, dec, n, err := DecodeGroupMessage(enc)
			if err != nil {
				t.Fatalf("decode (%d, %d): %v", group, instance, err)
			}
			if g != group || inst != instance || n != len(enc) || !reflect.DeepEqual(dec, m) {
				t.Fatalf("round trip: group=%d instance=%d n=%d/%d msg=%v",
					g, inst, n, len(enc), dec)
			}
			// The envelope is exactly AppendGroupHeader + version-0 bytes.
			legacy, _ := EncodeMessage(nil, m)
			if want := append(AppendGroupHeader(nil, group, instance), legacy...); !bytes.Equal(enc, want) {
				t.Fatalf("envelope layout drifted: % x != % x", enc, want)
			}
		}
	}
}

// TestGroupZeroEmitsLegacyLayouts pins the compatibility contract from
// the encoding side: addressing group 0 emits the pre-group layouts
// byte for byte, so a single-group deployment's frames are
// indistinguishable from the frames it sent before groups existed.
func TestGroupZeroEmitsLegacyLayouts(t *testing.T) {
	m := model.Message{From: 3, Round: 7, Payload: payload.Propose{V: -4}}
	bare, err := EncodeMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EncodeGroupMessage(nil, 0, 0, m)
	if err != nil || !bytes.Equal(got, bare) {
		t.Fatalf("group 0 instance 0: % x != % x (err %v)", got, bare, err)
	}
	for _, instance := range []uint64{1, 127, 1 << 30} {
		v1, err := EncodeInstanceMessage(nil, instance, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EncodeGroupMessage(nil, 0, instance, m)
		if err != nil || !bytes.Equal(got, v1) {
			t.Fatalf("group 0 instance %d: % x != % x (err %v)", instance, got, v1, err)
		}
	}
}

// TestLegacyFramesDecodeAsGroupZero pins the compatibility contract from
// the decoding side: every frame a pre-group peer can emit — version-0
// bare messages and version-1 instance envelopes — routes to group 0.
func TestLegacyFramesDecodeAsGroupZero(t *testing.T) {
	m := model.Message{From: 2, Round: 4, Payload: payload.Decide{V: 11}}
	bare, err := EncodeMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	g, inst, inner, err := StripGroup(bare)
	if err != nil || g != 0 || inst != 0 || !bytes.Equal(inner, bare) {
		t.Fatalf("bare frame: group=%d instance=%d inner=% x err=%v", g, inst, inner, err)
	}
	v1, err := EncodeInstanceMessage(nil, 42, m)
	if err != nil {
		t.Fatal(err)
	}
	g, inst, inner, err = StripGroup(v1)
	if err != nil || g != 0 || inst != 42 || !bytes.Equal(inner, bare) {
		t.Fatalf("v1 frame: group=%d instance=%d err=%v", g, inst, err)
	}
}

// TestGroupMarkerDisjoint checks the frame-kind invariant: the group
// marker collides with no other kind and no version-0 first byte.
func TestGroupMarkerDisjoint(t *testing.T) {
	if groupMarker == instanceMarker || groupMarker == recordMarker ||
		groupMarker == startMarker || groupMarker == helloMarker {
		t.Fatal("group marker collides with another kind")
	}
	for p := model.ProcessID(1); p <= model.MaxProcesses; p++ {
		frame, err := EncodeMessage(nil, model.Message{From: p, Round: 1})
		if err != nil {
			t.Fatal(err)
		}
		if frame[0] == groupMarker {
			t.Fatalf("sender %d opens with the group marker", p)
		}
	}
}

func TestStripGroupTruncated(t *testing.T) {
	if _, _, _, err := StripGroup(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty frame: %v", err)
	}
	if _, _, _, err := StripGroup([]byte{groupMarker}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("marker without group: %v", err)
	}
	if _, _, _, err := StripGroup([]byte{groupMarker, 0x80}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("unterminated group varint: %v", err)
	}
	if _, _, _, err := StripGroup([]byte{groupMarker, 0x03}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("group without instance: %v", err)
	}
	if _, _, _, err := StripGroup([]byte{groupMarker, 0x03, 0x80}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("unterminated instance varint: %v", err)
	}
}

// TestRecordGroupTags pins the trailing group field of both journal
// record kinds: group 0 stays byte-identical to the pre-group layout,
// group > 0 round-trips, and pre-group encodings decode as Group 0.
func TestRecordGroupTags(t *testing.T) {
	legacyDec := AppendDecisionRecord(nil, DecisionRecord{Instance: 9, Value: 3, Round: 4, Batch: 2})
	zeroDec := AppendDecisionRecord(nil, DecisionRecord{Instance: 9, Value: 3, Round: 4, Batch: 2, Group: 0})
	if !bytes.Equal(legacyDec, zeroDec) {
		t.Fatal("group-0 decision record is not byte-identical to the pre-group layout")
	}
	got, n, err := DecodeDecisionRecord(legacyDec)
	if err != nil || n != len(legacyDec) || got.Group != 0 {
		t.Fatalf("legacy decision decode: %+v n=%d err=%v", got, n, err)
	}
	for _, want := range []DecisionRecord{
		{Instance: 9, Value: 3, Round: 4, Batch: 2, Group: 1},
		{Instance: 1<<64 - 1, Value: -1, Round: 1, Batch: 1, Group: 1<<64 - 1},
	} {
		enc := AppendDecisionRecord(nil, want)
		got, n, err := DecodeDecisionRecord(enc)
		if err != nil || n != len(enc) || got != want {
			t.Fatalf("grouped decision round trip %+v: got %+v n=%d err=%v", want, got, n, err)
		}
	}
	// A record whose trailing group is an unterminated varint is truncation.
	if _, _, err := DecodeDecisionRecord(append(legacyDec, 0x80)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("unterminated group varint: %v", err)
	}

	legacyStart, err := AppendStartRecord(nil, StartRecord{Instance: 5, Alg: "A_t+2"})
	if err != nil {
		t.Fatal(err)
	}
	zeroStart, err := AppendStartRecord(nil, StartRecord{Instance: 5, Alg: "A_t+2", Group: 0})
	if err != nil || !bytes.Equal(legacyStart, zeroStart) {
		t.Fatalf("group-0 start record is not byte-identical to the pre-group layout (err %v)", err)
	}
	for _, want := range []StartRecord{
		{Instance: 5, Alg: "A_t+2", Group: 3},
		{Instance: 0, Alg: "", Group: 1},
		{Instance: 1 << 40, Alg: "A_f+2", Group: 1<<64 - 1},
	} {
		enc, err := AppendStartRecord(nil, want)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeStartRecord(enc)
		if err != nil || n != len(enc) || got != want {
			t.Fatalf("grouped start round trip %+v: got %+v n=%d err=%v", want, got, n, err)
		}
	}
	// The pre-tag layout — marker + instance only — still decodes with
	// empty Alg and Group 0.
	got2, n2, err := DecodeStartRecord([]byte{startMarker, 0x07})
	if err != nil || n2 != 2 || got2.Instance != 7 || got2.Alg != "" || got2.Group != 0 {
		t.Fatalf("pre-tag start record: %+v n=%d err=%v", got2, n2, err)
	}
}

// FuzzDecodeGroupEnvelope hammers the group-envelope decode path with
// arbitrary bytes: it must never panic; every frame that does not open
// with the group marker must decode as group 0 (the pre-group
// compatibility contract — no cross-version ambiguity with the 0x01
// envelope or the 0x03/0x05/0x07 record markers); and StripGroup must
// invert AppendGroupHeader (strip/wrap/strip fixed point). The
// committed corpus under testdata/fuzz seeds every legacy frame kind.
func FuzzDecodeGroupEnvelope(f *testing.F) {
	m := model.Message{From: 3, Round: 2, Payload: payload.Propose{V: 8}}
	seed := func(frame []byte, err error) {
		if err == nil {
			f.Add(frame)
		}
	}
	seed(EncodeMessage(nil, m))
	seed(EncodeInstanceMessage(nil, 77, m))
	seed(EncodeGroupMessage(nil, 1, 0, m))
	seed(EncodeGroupMessage(nil, 4, 1<<33, m))
	f.Add(AppendDecisionRecord(nil, DecisionRecord{Instance: 2, Value: 1, Round: 3, Batch: 1, Group: 2}))
	f.Add([]byte{groupMarker})
	f.Add([]byte{groupMarker, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, frame []byte) {
		group, instance, inner, err := StripGroup(frame)
		if err != nil {
			return
		}
		if len(frame) > 0 && frame[0] != groupMarker && group != 0 {
			t.Fatalf("non-group frame % x decoded as group %d", frame, group)
		}
		// Re-wrapping the stripped payload under the same address must
		// strip back to the same triple. The one exemption: a
		// non-canonical frame that explicitly envelopes (group 0,
		// instance 0) around empty or marker-leading bytes. The
		// canonical encoding of that address is bare, so the collapse is
		// lossy by design — real payloads are never empty and never
		// start with a marker (senders zigzag-encode to even or
		// continuation bytes).
		if group == 0 && instance == 0 &&
			(len(inner) == 0 || inner[0] == instanceMarker || inner[0] == groupMarker) {
			return
		}
		rewrapped := append(AppendGroupHeader(nil, group, instance), inner...)
		g2, i2, inner2, err := StripGroup(rewrapped)
		if err != nil {
			t.Fatalf("strip of re-wrap failed: %v", err)
		}
		if g2 != group || i2 != instance || !bytes.Equal(inner2, inner) {
			t.Fatalf("strip/wrap not a fixed point: (%d, %d, % x) vs (%d, %d, % x)",
				group, instance, inner, g2, i2, inner2)
		}
	})
}
