// Package wire is the binary codec for round messages, used by the live
// runtime's transports (in-memory and TCP). Messages are encoded as a
// one-byte payload tag followed by varint-encoded fields; on the stream
// they travel in length-prefixed frames. The encoding is deterministic and
// self-contained — no reflection, no registration at run time — so the
// codec is also usable as a stable on-disk format for recorded runs.
//
// # Frame versions
//
// The original frame layout (version 0) is a bare message: varint sender,
// varint round, tag-prefixed payload. The multi-instance service layer
// wraps messages in a version-1 envelope — the marker byte 0x01 followed
// by a uvarint consensus-instance ID and then the bare message — so that
// many concurrent instances can share one physical connection. The two
// layouts are distinguishable from the first byte alone: a bare message
// starts with the zigzag varint of its sender (a ProcessID in
// [1, model.MaxProcesses], whose first encoded byte is never 0x01), so
// version-0 frames decode unchanged as instance 0. Old readers are
// insulated the other way by the frame length prefix: they fail cleanly
// on the unknown marker instead of misparsing.
//
// The sharded runtime adds a version-2 envelope — the marker byte 0x09
// followed by a uvarint consensus-group ID and then the uvarint
// instance ID and bare message — so many independent consensus groups
// multiplex one physical connection. Group 0 is the compatibility
// group: it is never encoded (AppendGroupHeader emits the version-0/1
// layouts byte-identically), and both earlier layouts decode as group
// 0, so pre-group peers interoperate unchanged. See group.go.
//
// # Record kinds
//
// The decision journal reuses the envelope family for its on-disk
// records: a DecisionRecord opens with the marker byte 0x03 followed by
// the instance ID and the decided outcome, and a StartRecord — the
// claim that an instance ID is about to touch the network, optionally
// tagged with the algorithm the instance is launched with — opens with
// 0x05. The multi-process TCP transport's connection handshake — a
// HelloRecord naming the cluster and the sender — opens with 0x07. The
// workload engine's trace files (see trace.go) add three more kinds:
// a TraceHeaderRecord opens with 0x0B, a TraceEventRecord (one recorded
// proposal arrival) with 0x0D, and a TraceOutcomeRecord (the decision
// that proposal received) with 0x0F. The introspection plane adds a
// DecisionTraceRecord (see decision_trace.go) — the controller/
// selector/admission context a service held when it launched an
// instance — opening with 0x11. Like 0x01, the odd bytes 0x03, 0x05,
// 0x07, 0x0B, 0x0D, 0x0F and 0x11 can never open a version-0 frame
// (positive senders zigzag-encode to even first bytes, and continuation
// bytes have the high bit set), so every kind is distinguishable from
// its first byte alone.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"indulgence/internal/model"
	"indulgence/internal/payload"
)

// Codec errors.
var (
	// ErrTruncated reports an encoding shorter than its structure.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrUnknownPayload reports an unknown payload tag or type.
	ErrUnknownPayload = errors.New("wire: unknown payload")
	// ErrFrameTooLarge reports a frame exceeding the reader's limit.
	ErrFrameTooLarge = errors.New("wire: frame too large")
)

// Payload tags. Tag 0 encodes a nil payload.
const (
	tagNil byte = iota
	tagValues
	tagEstHalt
	tagNewEstimate
	tagDecide
	tagEstimate
	tagPropose
	tagAck
	tagAckEst
	tagAdopt
	tagWrap
)

// MaxFrameSize bounds decoded frames (1 MiB is far beyond any round
// message in this repository).
const MaxFrameSize = 1 << 20

// instanceMarker opens a version-1 (instance-addressed) frame. It can
// never open a version-0 frame: those start with the zigzag varint of a
// sender in [1, model.MaxProcesses], which encodes to an even byte or a
// continuation byte (high bit set), never 0x01.
const instanceMarker byte = 0x01

// AppendInstanceHeader appends the version-1 envelope header addressing
// instance to dst. The bytes of a version-0 frame appended afterwards form
// a complete version-1 frame; StripInstance undoes exactly this header.
func AppendInstanceHeader(dst []byte, instance uint64) []byte {
	dst = append(dst, instanceMarker)
	return binary.AppendUvarint(dst, instance)
}

// StripInstance splits a frame into its consensus-instance ID and the bare
// message bytes. Version-0 frames (no envelope) are returned whole as
// instance 0, so pre-instance peers interoperate with the multiplexed
// transport unchanged.
func StripInstance(frame []byte) (instance uint64, inner []byte, err error) {
	if len(frame) == 0 {
		return 0, nil, fmt.Errorf("%w: empty frame", ErrTruncated)
	}
	if frame[0] != instanceMarker {
		return 0, frame, nil
	}
	id, n := binary.Uvarint(frame[1:])
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: instance id", ErrTruncated)
	}
	return id, frame[1+n:], nil
}

// EncodeInstanceMessage appends the version-1 encoding of m addressed to
// instance. Encoding to instance 0 still emits the envelope; use
// EncodeMessage for version-0 frames.
func EncodeInstanceMessage(dst []byte, instance uint64, m model.Message) ([]byte, error) {
	return EncodeMessage(AppendInstanceHeader(dst, instance), m)
}

// DecodeInstanceMessage decodes a frame of either version, returning the
// instance ID (0 for version-0 frames), the message, and the bytes
// consumed.
func DecodeInstanceMessage(b []byte) (uint64, model.Message, int, error) {
	instance, inner, err := StripInstance(b)
	if err != nil {
		return 0, model.Message{}, 0, err
	}
	m, n, err := DecodeMessage(inner)
	if err != nil {
		return 0, model.Message{}, 0, err
	}
	return instance, m, len(b) - len(inner) + n, nil
}

// recordMarker opens a decision record, the journal's on-disk record
// kind. Like instanceMarker it can never open a version-0 frame — 0x03
// is odd (positive senders zigzag-encode to even first bytes) and below
// 0x80 (not a varint continuation byte) — and it differs from
// instanceMarker, so frame kind is decidable from the first byte.
const recordMarker byte = 0x03

// DecisionRecord is the durable record of one decided consensus
// instance: what the journal appends before a decision is served and
// what recovery replays to rebuild the instance frontier.
type DecisionRecord struct {
	// Instance identifies the consensus instance.
	Instance uint64
	// Value is the instance's decided value.
	Value model.Value
	// Round is the instance's global decision round (the slowest
	// process's decision round).
	Round model.Round
	// Batch is the number of proposals the instance committed.
	Batch int
	// Group is the consensus group the instance was decided under (0
	// for single-group deployments and every record written before
	// groups existed). check.Replay uses it to flag an instance ID
	// journaled under two different groups.
	Group uint64
	// Class is the highest SLO class among the proposals the instance
	// committed (0 for unclassed traffic and every record written
	// before classes existed). check.Replay uses it to flag an
	// instance ID journaled under two different classes.
	Class int
}

// MaxClassValue bounds the SLO class a record may carry; it matches
// adapt.MaxClasses-1 without importing the package.
const MaxClassValue = 7

// AppendDecisionRecord appends the encoding of r to dst and returns the
// extended slice. The layout is the record marker followed by uvarint
// instance, varint value, varint round and uvarint batch, with trailing
// uvarint group and uvarint class fields appended only when set —
// group-0 class-0 records stay byte-identical to the pre-group layout,
// and DecodeDecisionRecord reads records that end early as zero. A
// class > 0 forces the group field (even group 0) so the two trailing
// fields stay positionally unambiguous.
func AppendDecisionRecord(dst []byte, r DecisionRecord) []byte {
	dst = append(dst, recordMarker)
	dst = binary.AppendUvarint(dst, r.Instance)
	dst = binary.AppendVarint(dst, int64(r.Value))
	dst = binary.AppendVarint(dst, int64(r.Round))
	dst = binary.AppendUvarint(dst, uint64(r.Batch))
	if r.Group > 0 || r.Class > 0 {
		dst = binary.AppendUvarint(dst, r.Group)
	}
	if r.Class > 0 {
		dst = binary.AppendUvarint(dst, uint64(r.Class))
	}
	return dst
}

// DecodeDecisionRecord decodes one record from b, returning it and the
// number of bytes consumed.
func DecodeDecisionRecord(b []byte) (DecisionRecord, int, error) {
	var r DecisionRecord
	if len(b) == 0 {
		return r, 0, fmt.Errorf("%w: empty record", ErrTruncated)
	}
	if b[0] != recordMarker {
		return r, 0, fmt.Errorf("%w: record marker %#x", ErrUnknownPayload, b[0])
	}
	off := 1
	instance, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: record instance", ErrTruncated)
	}
	off += n
	value, n := binary.Varint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: record value", ErrTruncated)
	}
	off += n
	round, n := binary.Varint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: record round", ErrTruncated)
	}
	off += n
	batch, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: record batch", ErrTruncated)
	}
	if batch > MaxFrameSize {
		return r, 0, fmt.Errorf("%w: record batch %d", ErrUnknownPayload, batch)
	}
	off += n
	r.Instance = instance
	r.Value = model.Value(value)
	r.Round = model.Round(round)
	r.Batch = int(batch)
	if off < len(b) {
		group, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return DecisionRecord{}, 0, fmt.Errorf("%w: record group", ErrTruncated)
		}
		off += n
		r.Group = group
	}
	if off < len(b) {
		class, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return DecisionRecord{}, 0, fmt.Errorf("%w: record class", ErrTruncated)
		}
		if class > MaxClassValue {
			return DecisionRecord{}, 0, fmt.Errorf("%w: record class %d", ErrUnknownPayload, class)
		}
		off += n
		r.Class = int(class)
	}
	return r, off, nil
}

// startMarker opens an instance-start record, the journal's second
// record kind: the durable claim of an instance ID, written before any
// frame of that instance may reach the network so that no ID that ever
// touched the wire can be reassigned after a crash.
const startMarker byte = 0x05

// MaxAlgNameLen bounds the algorithm tag a start record may carry.
const MaxAlgNameLen = 64

// StartRecord claims an instance ID for one consensus instance.
type StartRecord struct {
	// Instance is the claimed consensus-instance ID.
	Instance uint64
	// Alg names the algorithm the claiming service launches the
	// instance with ("" when unrecorded — every record written before
	// the adaptive control plane existed, and block claims of services
	// whose factory declines to identify itself). The tag is what lets
	// check.Replay audit algorithm choices exactly across restarts: an
	// instance must never be claimed under two different algorithms.
	Alg string
	// Group is the consensus group claiming the instance (0 for
	// single-group deployments and every record written before groups
	// existed).
	Group uint64
}

// AppendStartRecord appends the encoding of r to dst and returns the
// extended slice. The layout is the start marker, the uvarint instance,
// a uvarint-length-prefixed algorithm tag, and a trailing uvarint group
// appended only when Group > 0 — group-0 records stay byte-identical to
// the pre-group layout. Records written before the tag existed simply
// end after the instance, and DecodeStartRecord reads them as Alg == ""
// and Group == 0.
func AppendStartRecord(dst []byte, r StartRecord) ([]byte, error) {
	if len(r.Alg) > MaxAlgNameLen {
		return nil, fmt.Errorf("%w: algorithm tag of %d bytes", ErrFrameTooLarge, len(r.Alg))
	}
	dst = append(dst, startMarker)
	dst = binary.AppendUvarint(dst, r.Instance)
	dst = binary.AppendUvarint(dst, uint64(len(r.Alg)))
	dst = append(dst, r.Alg...)
	if r.Group > 0 {
		dst = binary.AppendUvarint(dst, r.Group)
	}
	return dst, nil
}

// DecodeStartRecord decodes one start record from b, returning it and
// the number of bytes consumed. A record ending right after its
// instance — the pre-tag layout — decodes with an empty Alg.
func DecodeStartRecord(b []byte) (StartRecord, int, error) {
	var r StartRecord
	if len(b) == 0 {
		return r, 0, fmt.Errorf("%w: empty record", ErrTruncated)
	}
	if b[0] != startMarker {
		return r, 0, fmt.Errorf("%w: start marker %#x", ErrUnknownPayload, b[0])
	}
	instance, n := binary.Uvarint(b[1:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: start instance", ErrTruncated)
	}
	r.Instance = instance
	off := 1 + n
	if off == len(b) {
		return r, off, nil // legacy record: no algorithm tag
	}
	alen, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: start algorithm length", ErrTruncated)
	}
	if alen > MaxAlgNameLen {
		return r, 0, fmt.Errorf("%w: start algorithm of %d bytes", ErrUnknownPayload, alen)
	}
	off += n
	if uint64(len(b)-off) < alen {
		return r, 0, fmt.Errorf("%w: start algorithm tag", ErrTruncated)
	}
	r.Alg = string(b[off : off+int(alen)])
	off += int(alen)
	if off < len(b) {
		group, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return StartRecord{}, 0, fmt.Errorf("%w: start group", ErrTruncated)
		}
		off += n
		r.Group = group
	}
	return r, off, nil
}

// helloMarker opens a handshake (hello) frame, the first frame either
// side of a multi-process TCP connection sends: the cluster ID and the
// sender's process ID, so endpoints identify themselves instead of being
// identified by dial order. Like the other envelope markers it is an odd
// byte below 0x80, so it can never open a version-0 frame and the frame
// kind is decidable from the first byte alone.
const helloMarker byte = 0x07

// MaxClusterIDLen bounds the cluster ID a hello frame may carry.
const MaxClusterIDLen = 256

// HelloRecord is the connection handshake of the multi-process TCP
// transport, exchanged in both directions: the dialing endpoint sends
// it as the first frame of every connection, the accepting endpoint
// refuses the connection unless the cluster ID matches its own and the
// sender ID is a valid peer, and an accepted connection is answered
// with the acceptor's own hello — the ack the dialer requires before
// treating the connection as live.
type HelloRecord struct {
	// Cluster names the consensus cluster the sender believes it is
	// joining; it guards against cross-cluster misconfiguration.
	Cluster string
	// Sender is the process ID the connection's frames are sent as.
	Sender model.ProcessID
}

// AppendHelloRecord appends the encoding of r to dst and returns the
// extended slice. The layout is the hello marker, a uvarint-length-
// prefixed cluster ID, and the varint sender.
func AppendHelloRecord(dst []byte, r HelloRecord) ([]byte, error) {
	if len(r.Cluster) > MaxClusterIDLen {
		return nil, fmt.Errorf("%w: cluster id of %d bytes", ErrFrameTooLarge, len(r.Cluster))
	}
	dst = append(dst, helloMarker)
	dst = binary.AppendUvarint(dst, uint64(len(r.Cluster)))
	dst = append(dst, r.Cluster...)
	return binary.AppendVarint(dst, int64(r.Sender)), nil
}

// DecodeHelloRecord decodes one hello record from b, returning it and
// the number of bytes consumed.
func DecodeHelloRecord(b []byte) (HelloRecord, int, error) {
	var r HelloRecord
	if len(b) == 0 {
		return r, 0, fmt.Errorf("%w: empty hello", ErrTruncated)
	}
	if b[0] != helloMarker {
		return r, 0, fmt.Errorf("%w: hello marker %#x", ErrUnknownPayload, b[0])
	}
	off := 1
	clen, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: hello cluster length", ErrTruncated)
	}
	if clen > MaxClusterIDLen {
		return r, 0, fmt.Errorf("%w: hello cluster of %d bytes", ErrUnknownPayload, clen)
	}
	off += n
	if uint64(len(b)-off) < clen {
		return r, 0, fmt.Errorf("%w: hello cluster id", ErrTruncated)
	}
	r.Cluster = string(b[off : off+int(clen)])
	off += int(clen)
	sender, n := binary.Varint(b[off:])
	if n <= 0 {
		return r, 0, fmt.Errorf("%w: hello sender", ErrTruncated)
	}
	if sender < 1 || sender > model.MaxProcesses {
		return r, 0, fmt.Errorf("%w: hello sender %d", ErrUnknownPayload, sender)
	}
	r.Sender = model.ProcessID(sender)
	return r, off + n, nil
}

// EncodePayload appends the tag-prefixed encoding of a payload (possibly
// nil) to dst.
func EncodePayload(dst []byte, p model.Payload) ([]byte, error) {
	return appendPayload(dst, p)
}

// DecodePayload decodes one tag-prefixed payload from b, returning it and
// the number of bytes consumed.
func DecodePayload(b []byte) (model.Payload, int, error) {
	return decodePayload(b)
}

// EncodeMessage appends the encoding of m to dst and returns the extended
// slice.
func EncodeMessage(dst []byte, m model.Message) ([]byte, error) {
	dst = binary.AppendVarint(dst, int64(m.From))
	dst = binary.AppendVarint(dst, int64(m.Round))
	return appendPayload(dst, m.Payload)
}

// DecodeMessage decodes one message from b, returning it and the number of
// bytes consumed.
func DecodeMessage(b []byte) (model.Message, int, error) {
	var m model.Message
	off := 0
	from, n := binary.Varint(b[off:])
	if n <= 0 {
		return m, 0, fmt.Errorf("%w: sender", ErrTruncated)
	}
	off += n
	round, n := binary.Varint(b[off:])
	if n <= 0 {
		return m, 0, fmt.Errorf("%w: round", ErrTruncated)
	}
	off += n
	pl, n, err := decodePayload(b[off:])
	if err != nil {
		return m, 0, err
	}
	off += n
	m.From = model.ProcessID(from)
	m.Round = model.Round(round)
	m.Payload = pl
	return m, off, nil
}

func appendOptValue(dst []byte, o model.OptValue) []byte {
	v, ok := o.Get()
	if !ok {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return binary.AppendVarint(dst, int64(v))
}

func decodeOptValue(b []byte) (model.OptValue, int, error) {
	if len(b) < 1 {
		return model.OptValue{}, 0, fmt.Errorf("%w: optvalue flag", ErrTruncated)
	}
	if b[0] == 0 {
		return model.Bottom(), 1, nil
	}
	v, n := binary.Varint(b[1:])
	if n <= 0 {
		return model.OptValue{}, 0, fmt.Errorf("%w: optvalue", ErrTruncated)
	}
	return model.Some(model.Value(v)), 1 + n, nil
}

func appendPayload(dst []byte, p model.Payload) ([]byte, error) {
	switch pl := p.(type) {
	case nil:
		return append(dst, tagNil), nil
	case payload.Values:
		dst = append(dst, tagValues)
		dst = binary.AppendUvarint(dst, uint64(len(pl.Vals)))
		for _, v := range pl.Vals {
			dst = binary.AppendVarint(dst, int64(v))
		}
		return dst, nil
	case payload.EstHalt:
		dst = append(dst, tagEstHalt)
		dst = binary.AppendVarint(dst, int64(pl.Est))
		return binary.AppendUvarint(dst, uint64(pl.Halt)), nil
	case payload.NewEstimate:
		return appendOptValue(append(dst, tagNewEstimate), pl.NE), nil
	case payload.Decide:
		return binary.AppendVarint(append(dst, tagDecide), int64(pl.V)), nil
	case payload.Estimate:
		dst = append(dst, tagEstimate)
		dst = binary.AppendVarint(dst, int64(pl.Est))
		return binary.AppendVarint(dst, int64(pl.TS)), nil
	case payload.Propose:
		return binary.AppendVarint(append(dst, tagPropose), int64(pl.V)), nil
	case payload.Ack:
		return appendOptValue(append(dst, tagAck), pl.Val), nil
	case payload.AckEst:
		dst = append(dst, tagAckEst)
		dst = binary.AppendVarint(dst, int64(pl.Est))
		dst = binary.AppendVarint(dst, int64(pl.TS))
		return appendOptValue(dst, pl.Ack), nil
	case payload.Adopt:
		return binary.AppendVarint(append(dst, tagAdopt), int64(pl.Est)), nil
	case payload.Wrap:
		return appendPayload(append(dst, tagWrap), pl.Inner)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownPayload, p)
	}
}

func decodePayload(b []byte) (model.Payload, int, error) {
	if len(b) < 1 {
		return nil, 0, fmt.Errorf("%w: payload tag", ErrTruncated)
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case tagNil:
		return nil, 1, nil
	case tagValues:
		count, n := binary.Uvarint(b)
		if n <= 0 || count > MaxFrameSize {
			return nil, 0, fmt.Errorf("%w: values count", ErrTruncated)
		}
		off := n
		vals := make([]model.Value, 0, count)
		for i := uint64(0); i < count; i++ {
			v, vn := binary.Varint(b[off:])
			if vn <= 0 {
				return nil, 0, fmt.Errorf("%w: values[%d]", ErrTruncated, i)
			}
			off += vn
			vals = append(vals, model.Value(v))
		}
		return payload.Values{Vals: vals}, 1 + off, nil
	case tagEstHalt:
		est, n := binary.Varint(b)
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: esthalt est", ErrTruncated)
		}
		halt, hn := binary.Uvarint(b[n:])
		if hn <= 0 {
			return nil, 0, fmt.Errorf("%w: esthalt halt", ErrTruncated)
		}
		return payload.EstHalt{Est: model.Value(est), Halt: model.PIDSet(halt)}, 1 + n + hn, nil
	case tagNewEstimate:
		o, n, err := decodeOptValue(b)
		if err != nil {
			return nil, 0, err
		}
		return payload.NewEstimate{NE: o}, 1 + n, nil
	case tagDecide:
		v, n := binary.Varint(b)
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: decide", ErrTruncated)
		}
		return payload.Decide{V: model.Value(v)}, 1 + n, nil
	case tagEstimate:
		est, n := binary.Varint(b)
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: estimate est", ErrTruncated)
		}
		ts, tn := binary.Varint(b[n:])
		if tn <= 0 {
			return nil, 0, fmt.Errorf("%w: estimate ts", ErrTruncated)
		}
		return payload.Estimate{Est: model.Value(est), TS: int(ts)}, 1 + n + tn, nil
	case tagPropose:
		v, n := binary.Varint(b)
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: propose", ErrTruncated)
		}
		return payload.Propose{V: model.Value(v)}, 1 + n, nil
	case tagAck:
		o, n, err := decodeOptValue(b)
		if err != nil {
			return nil, 0, err
		}
		return payload.Ack{Val: o}, 1 + n, nil
	case tagAckEst:
		est, n := binary.Varint(b)
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: ackest est", ErrTruncated)
		}
		ts, tn := binary.Varint(b[n:])
		if tn <= 0 {
			return nil, 0, fmt.Errorf("%w: ackest ts", ErrTruncated)
		}
		o, on, err := decodeOptValue(b[n+tn:])
		if err != nil {
			return nil, 0, err
		}
		return payload.AckEst{Est: model.Value(est), TS: int(ts), Ack: o}, 1 + n + tn + on, nil
	case tagAdopt:
		v, n := binary.Varint(b)
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: adopt", ErrTruncated)
		}
		return payload.Adopt{Est: model.Value(v)}, 1 + n, nil
	case tagWrap:
		inner, n, err := decodePayload(b)
		if err != nil {
			return nil, 0, err
		}
		return payload.Wrap{Inner: inner}, 1 + n, nil
	default:
		return nil, 0, fmt.Errorf("%w: tag %d", ErrUnknownPayload, tag)
	}
}

// AppendFrame appends b to dst as a length-prefixed frame — the exact
// bytes WriteFrame would put on the stream — so writers can coalesce
// many frames into one buffer without owning the frame layout.
func AppendFrame(dst, b []byte) ([]byte, error) {
	if len(b) > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(b))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...), nil
}

// WriteFrame writes b to w as a length-prefixed frame.
func WriteFrame(w io.Writer, b []byte) error {
	if len(b) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(b))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
