package wire

import (
	"reflect"
	"testing"

	"indulgence/internal/model"
	"indulgence/internal/payload"
)

// FuzzDecodeInstanceMessage hammers the instance-envelope decode path with
// arbitrary bytes: it must never panic, and whenever it reports success the
// result must re-encode to an equivalent frame (decode/encode/decode fixed
// point). The seed corpus covers both frame versions and the marker-byte
// boundary cases.
func FuzzDecodeInstanceMessage(f *testing.F) {
	seed := func(frame []byte, err error) {
		if err == nil {
			f.Add(frame)
		}
	}
	seed(EncodeMessage(nil, model.Message{From: 1, Round: 1, Payload: nil}))
	seed(EncodeMessage(nil, model.Message{From: 64, Round: 7, Payload: payload.Decide{V: -3}}))
	seed(EncodeInstanceMessage(nil, 0, model.Message{From: 2, Round: 2, Payload: payload.Propose{V: 9}}))
	seed(EncodeInstanceMessage(nil, 1<<40, model.Message{From: 3, Round: 3,
		Payload: payload.EstHalt{Est: 1, Halt: model.NewPIDSet(1, 2)}}))
	f.Add([]byte{instanceMarker})
	f.Add([]byte{instanceMarker, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, frame []byte) {
		instance, m, n, err := DecodeInstanceMessage(frame)
		if err != nil {
			return
		}
		if n > len(frame) {
			t.Fatalf("consumed %d of %d bytes", n, len(frame))
		}
		reenc, err := EncodeInstanceMessage(nil, instance, m)
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		inst2, m2, _, err := DecodeInstanceMessage(reenc)
		if err != nil {
			t.Fatalf("decode of re-encoding failed: %v", err)
		}
		if inst2 != instance || !reflect.DeepEqual(m2, m) {
			t.Fatalf("decode/encode not a fixed point: (%d, %v) vs (%d, %v)",
				instance, m, inst2, m2)
		}
	})
}
