package wire

import (
	"reflect"
	"testing"

	"indulgence/internal/model"
	"indulgence/internal/payload"
)

// FuzzDecodeInstanceMessage hammers the instance-envelope decode path with
// arbitrary bytes: it must never panic, and whenever it reports success the
// result must re-encode to an equivalent frame (decode/encode/decode fixed
// point). The seed corpus covers both frame versions and the marker-byte
// boundary cases.
func FuzzDecodeInstanceMessage(f *testing.F) {
	seed := func(frame []byte, err error) {
		if err == nil {
			f.Add(frame)
		}
	}
	seed(EncodeMessage(nil, model.Message{From: 1, Round: 1, Payload: nil}))
	seed(EncodeMessage(nil, model.Message{From: 64, Round: 7, Payload: payload.Decide{V: -3}}))
	seed(EncodeInstanceMessage(nil, 0, model.Message{From: 2, Round: 2, Payload: payload.Propose{V: 9}}))
	seed(EncodeInstanceMessage(nil, 1<<40, model.Message{From: 3, Round: 3,
		Payload: payload.EstHalt{Est: 1, Halt: model.NewPIDSet(1, 2)}}))
	f.Add([]byte{instanceMarker})
	f.Add([]byte{instanceMarker, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, frame []byte) {
		instance, m, n, err := DecodeInstanceMessage(frame)
		if err != nil {
			return
		}
		if n > len(frame) {
			t.Fatalf("consumed %d of %d bytes", n, len(frame))
		}
		reenc, err := EncodeInstanceMessage(nil, instance, m)
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		inst2, m2, _, err := DecodeInstanceMessage(reenc)
		if err != nil {
			t.Fatalf("decode of re-encoding failed: %v", err)
		}
		if inst2 != instance || !reflect.DeepEqual(m2, m) {
			t.Fatalf("decode/encode not a fixed point: (%d, %v) vs (%d, %v)",
				instance, m, inst2, m2)
		}
	})
}

// FuzzDecodeDecisionRecord is the journal-record counterpart: arbitrary
// bytes must never panic the decoder, and every successful decode must be
// a decode/encode fixed point that consumes exactly the bytes the encoder
// would emit.
func FuzzDecodeDecisionRecord(f *testing.F) {
	f.Add(AppendDecisionRecord(nil, DecisionRecord{}))
	f.Add(AppendDecisionRecord(nil, DecisionRecord{Instance: 1, Value: 7, Round: 4, Batch: 1}))
	f.Add(AppendDecisionRecord(nil, DecisionRecord{Instance: 1<<64 - 1, Value: -3, Round: 300, Batch: 8}))
	f.Add(AppendDecisionRecord(nil, DecisionRecord{Instance: 4, Value: 9, Round: 2, Batch: 3, Group: 2, Class: 3}))
	f.Add(AppendDecisionRecord(nil, DecisionRecord{Instance: 5, Value: 1, Round: 1, Batch: 1, Class: 7}))
	f.Add([]byte{recordMarker})
	f.Add([]byte{recordMarker, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeDecisionRecord(b)
		if err != nil {
			return
		}
		if n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		reenc := AppendDecisionRecord(nil, rec)
		rec2, n2, err := DecodeDecisionRecord(reenc)
		if err != nil {
			t.Fatalf("decode of re-encoding failed: %v", err)
		}
		if rec2 != rec || n2 != len(reenc) {
			t.Fatalf("decode/encode not a fixed point: %+v (%d) vs %+v (%d)",
				rec, n, rec2, n2)
		}
	})
}

// FuzzDecodeTraceRecord covers the workload trace file's three record
// kinds through the dispatching decoder: arbitrary bytes must never
// panic any of the decoders, every accepted record must satisfy its
// bounds (class caps, string caps, status range), and re-encoding must
// be a decode fixed point that consumes exactly the bytes the encoder
// emits — the property the trace replayer's byte-identity contract
// rests on.
func FuzzDecodeTraceRecord(f *testing.F) {
	hdr, err := AppendTraceHeaderRecord(nil, TraceHeaderRecord{
		Version: TraceFormatVersion, Deterministic: true, Seed: 42,
		N: 5, T: 2, Groups: 3, MaxBatch: 8, MaxInflight: 4,
		LingerNanos: 1e6, TimeoutNanos: 1e7,
		Algorithm: "atplus2", Placement: "hash",
		Classes: 3, Spec: `{"seed":42}`,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(hdr)
	f.Add(AppendTraceEventRecord(nil, TraceEventRecord{
		Seq: 9, AtNanos: 1234567, Cohort: 1, Client: 3, Class: 2,
		Key: 1 << 40, Value: -77, Payload: 512,
	}))
	f.Add(AppendTraceOutcomeRecord(nil, TraceOutcomeRecord{
		Seq: 9, Status: TraceDecided, Instance: 17, Value: -77,
		Round: 4, Batch: 6, Group: 2, Class: 2, LatencyNanos: 2500,
	}))
	f.Add(AppendTraceOutcomeRecord(nil, TraceOutcomeRecord{Seq: 3, Status: TraceShed, Class: 1}))
	f.Add([]byte{traceHeaderMarker})
	f.Add([]byte{traceEventMarker, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add([]byte{traceOutcomeMarker, 0x01, 0x03}) // status over the cap

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeTraceRecord(b)
		if err != nil {
			return
		}
		if n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		var reenc []byte
		switch r := rec.(type) {
		case TraceHeaderRecord:
			reenc, err = AppendTraceHeaderRecord(nil, r)
		case TraceEventRecord:
			if r.Class > MaxClassValue {
				t.Fatalf("accepted event class %d", r.Class)
			}
			reenc = AppendTraceEventRecord(nil, r)
		case TraceOutcomeRecord:
			if r.Status > TraceFailed {
				t.Fatalf("accepted outcome status %d", r.Status)
			}
			reenc = AppendTraceOutcomeRecord(nil, r)
		default:
			t.Fatalf("unknown decoded kind %T", rec)
		}
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		rec2, n2, err := DecodeTraceRecord(reenc)
		if err != nil {
			t.Fatalf("decode of re-encoding failed: %v", err)
		}
		if rec2 != rec || n2 != len(reenc) {
			t.Fatalf("decode/encode not a fixed point: %+v (%d) vs %+v (%d)",
				rec, n, rec2, n2)
		}
	})
}

// FuzzDecodeStartRecord covers the claim-record decoder, whose optional
// algorithm tag makes it the one variable-length record kind: arbitrary
// bytes must never panic it, every accepted record must satisfy the tag
// bound, and re-encoding must be a decode fixed point (legacy inputs
// without the tag-length byte decode as Alg == "" and re-encode to the
// canonical tagged form, which must itself decode back unchanged).
func FuzzDecodeStartRecord(f *testing.F) {
	for _, r := range []StartRecord{{}, {Instance: 7, Alg: "A_f+2"}, {Instance: 1<<64 - 1, Alg: "A_t+2+ff"}} {
		enc, err := AppendStartRecord(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{startMarker, 0x07})       // legacy: no tag length
	f.Add([]byte{startMarker, 0x01, 0x7F}) // tag length over the cap

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeStartRecord(b)
		if err != nil {
			return
		}
		if n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if len(rec.Alg) > MaxAlgNameLen {
			t.Fatalf("accepted a %d-byte algorithm tag", len(rec.Alg))
		}
		reenc, err := AppendStartRecord(nil, rec)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		rec2, n2, err := DecodeStartRecord(reenc)
		if err != nil {
			t.Fatalf("decode of re-encoding failed: %v", err)
		}
		if rec2 != rec || n2 != len(reenc) {
			t.Fatalf("decode/encode not a fixed point: %+v (%d) vs %+v (%d)",
				rec, n, rec2, n2)
		}
	})
}

// FuzzDecodeDecisionTraceRecord covers the introspection record's
// decoder: arbitrary bytes must never panic it, every accepted record
// must satisfy the tag, count and mask bounds, and re-encoding must be
// a decode fixed point.
func FuzzDecodeDecisionTraceRecord(f *testing.F) {
	for _, r := range []DecisionTraceRecord{
		{},
		{Instance: 7, Chosen: "A_f+2", NotTaken: []string{"A_<>S", "A_t+2"}},
		{
			Instance: 1<<64 - 1, Group: 3, Level: 2, Chosen: "A_t+2",
			NotTaken: []string{"A_f+2", "A_<>S"}, Suspicions: 42,
			QueueLen: 17, QueueCap: 64, BatchFill: 87, BatchLimit: 32,
			LingerNanos: 2_500_000, EWMANanos: 1_300_000, ShedMask: 0b101,
		},
	} {
		enc, err := AppendDecisionTraceRecord(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{decisionTraceMarker, 0x00, 0x00, 0x09})             // level over the cap
	f.Add([]byte{decisionTraceMarker, 0x01, 0x00, 0x00, 0x00, 0x09}) // not-taken count over the cap

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeDecisionTraceRecord(b)
		if err != nil {
			return
		}
		if n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if len(rec.Chosen) > MaxAlgNameLen || len(rec.NotTaken) > MaxTraceAlternatives ||
			rec.Level > MaxTraceAlternatives || rec.ShedMask > MaxShedMask {
			t.Fatalf("accepted an out-of-range record: %+v", rec)
		}
		reenc, err := AppendDecisionTraceRecord(nil, rec)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		rec2, n2, err := DecodeDecisionTraceRecord(reenc)
		if err != nil {
			t.Fatalf("decode of re-encoding failed: %v", err)
		}
		if !reflect.DeepEqual(rec2, rec) || n2 != len(reenc) {
			t.Fatalf("decode/encode not a fixed point: %+v (%d) vs %+v (%d)",
				rec, n, rec2, n2)
		}
	})
}
