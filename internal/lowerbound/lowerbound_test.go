package lowerbound_test

import (
	"testing"

	"indulgence/internal/core"
	"indulgence/internal/lowerbound"
	"indulgence/internal/model"
	"indulgence/internal/sched"
)

func props(n int) []model.Value {
	out := make([]model.Value, n)
	for i := range out {
		out[i] = model.Value(i + 1)
	}
	return out
}

func TestExploreRunCount(t *testing.T) {
	// n=3, t=1, one crash round, prefix mode: 1 crash-free run plus
	// 3 crashers × 3 prefix subsets = 10 runs.
	res, err := lowerbound.Explore(lowerbound.Config{
		N: 3, T: 1,
		Synchrony:     model.ES,
		Factory:       core.New(core.Options{}),
		Proposals:     props(3),
		MaxCrashRound: 1,
		Mode:          lowerbound.PrefixSubsets,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 10 {
		t.Fatalf("runs = %d, want 10", res.Runs)
	}
	// All-subsets mode: 1 + 3 crashers × 2^2 subsets = 13.
	res, err = lowerbound.Explore(lowerbound.Config{
		N: 3, T: 1,
		Synchrony:     model.ES,
		Factory:       core.New(core.Options{}),
		Proposals:     props(3),
		MaxCrashRound: 1,
		Mode:          lowerbound.AllSubsets,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 13 {
		t.Fatalf("all-subsets runs = %d, want 13", res.Runs)
	}
}

func TestExploreNoCrashes(t *testing.T) {
	res, err := lowerbound.Explore(lowerbound.Config{
		N: 3, T: 1,
		Synchrony:  model.ES,
		Factory:    core.New(core.Options{}),
		Proposals:  props(3),
		MaxCrashes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 1 {
		t.Fatalf("runs = %d, want 1 (crash-free only)", res.Runs)
	}
	if res.WorstRound != 3 {
		t.Fatalf("worst = %d, want t+2 = 3", res.WorstRound)
	}
}

func TestExploreConfigErrors(t *testing.T) {
	overBudget := sched.New(3, 1)
	overBudget.Crash(1, 1)
	overBudget.Crash(2, 2)
	_, err := lowerbound.Explore(lowerbound.Config{
		Synchrony: model.ES,
		Factory:   core.New(core.Options{}),
		Proposals: props(3),
		Base:      overBudget,
	})
	if err == nil {
		t.Fatal("base schedule with more than t crashes must be rejected")
	}
	if _, err := lowerbound.Explore(lowerbound.Config{N: 3, T: 1, Synchrony: model.ES, Proposals: props(3)}); err == nil {
		t.Fatal("nil factory must be rejected")
	}
	if _, err := lowerbound.Explore(lowerbound.Config{
		N: 3, T: 1, Synchrony: model.ES,
		Factory: core.New(core.Options{}), Proposals: props(2),
	}); err == nil {
		t.Fatal("proposal count mismatch must be rejected")
	}
}

// TestValencyLemma3 mechanizes Lemma 3 for A_{t+2} binary consensus: the
// all-0 configuration is 0-valent, the all-1 configuration is 1-valent,
// and the C_0..C_n chain contains a bivalent configuration.
func TestValencyLemma3(t *testing.T) {
	base := lowerbound.Config{
		N: 3, T: 1,
		Synchrony:     model.ES,
		Factory:       core.New(core.Options{}),
		MaxCrashRound: 3,
		Mode:          lowerbound.AllSubsets,
	}

	cfg := base
	cfg.Proposals = []model.Value{0, 0, 0}
	v, err := lowerbound.ClassifyInitial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v != lowerbound.ZeroValent {
		t.Fatalf("all-0 config: %v", v)
	}

	cfg = base
	cfg.Proposals = []model.Value{1, 1, 1}
	if v, err = lowerbound.ClassifyInitial(cfg); err != nil || v != lowerbound.OneValent {
		t.Fatalf("all-1 config: %v, %v", v, err)
	}

	proposals, ok, err := lowerbound.FindBivalentInitial(base)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no bivalent initial configuration found (Lemma 3 violated?)")
	}
	t.Logf("bivalent initial configuration: %v", proposals)
}

func TestClassifyInitialRejectsNonBinary(t *testing.T) {
	cfg := lowerbound.Config{
		N: 3, T: 1,
		Synchrony: model.ES,
		Factory:   core.New(core.Options{}),
		Proposals: []model.Value{0, 1, 7},
	}
	if _, err := lowerbound.ClassifyInitial(cfg); err == nil {
		t.Fatal("non-binary proposals must be rejected")
	}
}

func TestValencyString(t *testing.T) {
	for _, v := range []lowerbound.Valency{
		lowerbound.ZeroValent, lowerbound.OneValent, lowerbound.Bivalent, lowerbound.Undecided,
	} {
		if v.String() == "" {
			t.Fatalf("empty string for %d", v)
		}
	}
}

func TestClaim51(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{3, 1}, {5, 2}} {
		p := props(tc.n)
		p[0] = 0
		factory := core.New(core.Options{})
		c51, err := lowerbound.BuildClaim51(factory, tc.n, tc.t, p)
		if err != nil {
			t.Fatalf("build n=%d t=%d: %v", tc.n, tc.t, err)
		}
		if c51.KPrime < model.Round(tc.t+2) {
			t.Fatalf("k' = %d below t+2", c51.KPrime)
		}
		rep, err := c51.Verify(factory)
		if err != nil {
			t.Fatalf("verify n=%d t=%d: %v", tc.n, tc.t, err)
		}
		if !rep.OK() {
			t.Fatalf("n=%d t=%d: %v", tc.n, tc.t, rep.Details)
		}
	}
}

func TestClaim51ParamErrors(t *testing.T) {
	factory := core.New(core.Options{})
	if _, err := lowerbound.BuildClaim51(factory, 2, 1, props(2)); err == nil {
		t.Fatal("n=2 must be rejected")
	}
	if _, err := lowerbound.BuildClaim51(factory, 4, 2, props(4)); err == nil {
		t.Fatal("t >= n/2 must be rejected")
	}
	if _, err := lowerbound.BuildClaim51(factory, 3, 1, props(2)); err == nil {
		t.Fatal("proposal count mismatch must be rejected")
	}
}

// TestClassifyPartial checks the partial-run valency: after p1 (the only
// 0-proposer) crashes silently in round 1, the partial run is 1-valent;
// after a crash that delivers to everyone, it stays bivalent for A_{t+2}.
func TestClassifyPartial(t *testing.T) {
	cfg := lowerbound.Config{
		N: 3, T: 1,
		Synchrony:     model.ES,
		Factory:       core.New(core.Options{}),
		Proposals:     []model.Value{0, 1, 1},
		MaxCrashRound: 3,
		Mode:          lowerbound.AllSubsets,
	}
	silent := sched.New(3, 1)
	silent.CrashSilent(1, 1)
	v, err := lowerbound.ClassifyPartial(cfg, silent, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != lowerbound.OneValent {
		t.Fatalf("silent crash of the 0-proposer: %v, want 1-valent", v)
	}
	// Prefix crashes beyond the prefix length are rejected.
	late := sched.New(3, 1)
	late.Crash(1, 5)
	if _, err := lowerbound.ClassifyPartial(cfg, late, 1); err == nil {
		t.Fatal("crash beyond prefix length accepted")
	}
}

// TestFindBivalentPartial is the Lemma 4 machinery measured on A_{t+2}:
// bivalency persists through round t−1 (Lemma 4's guaranteed depth) and
// no further — t-round serial partial runs are univalent, which is why
// the paper's proof must bridge to non-synchronous runs (Claim 5.1) to
// force the t+2 bound.
func TestFindBivalentPartial(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{3, 1}, {5, 2}} {
		props := make([]model.Value, tc.n)
		for i := 1; i < tc.n; i++ {
			props[i] = 1
		}
		cfg := lowerbound.Config{
			N: tc.n, T: tc.t,
			Synchrony:     model.ES,
			Factory:       core.New(core.Options{}),
			Proposals:     props,
			MaxCrashRound: model.Round(tc.t + 2),
			Mode:          lowerbound.AllSubsets,
		}
		res, ok, err := lowerbound.FindBivalentPartial(cfg, model.Round(tc.t-1), 16)
		if err != nil {
			t.Fatalf("n=%d t=%d: %v", tc.n, tc.t, err)
		}
		if !ok {
			t.Fatalf("n=%d t=%d: no bivalent %d-round serial partial run found (%d classified)",
				tc.n, tc.t, tc.t-1, res.Explored)
		}
		t.Logf("n=%d t=%d: bivalent depth-%d witness after %d classifications: %v",
			tc.n, tc.t, tc.t-1, res.Explored, res.Witness)
	}

	// Exhaustively at n=3, t=1: every 1-round serial partial run is
	// univalent (the Lemma 2 landscape for a t+2-decider).
	cfg := lowerbound.Config{
		N: 3, T: 1,
		Synchrony:     model.ES,
		Factory:       core.New(core.Options{}),
		Proposals:     []model.Value{0, 1, 1},
		MaxCrashRound: 3,
		Mode:          lowerbound.AllSubsets,
	}
	res, ok, err := lowerbound.FindBivalentPartial(cfg, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("found a bivalent 1-round partial run: %v", res.Witness)
	}
}

// neverDecides is an algorithm that participates but never decides — the
// explorer's model-checker stress case.
type neverDecides struct{}

func (neverDecides) Name() string                         { return "never" }
func (neverDecides) StartRound(model.Round) model.Payload { return nil }
func (neverDecides) EndRound(model.Round, []model.Message) {
}
func (neverDecides) Decision() (model.Value, bool) { return 0, false }

// TestUndecidedRunsReportHorizon pins the Horizon bookkeeping: a run that
// never fully decides must be recorded as Horizon+1 (with the Undecided
// flag) even when the caller leaves Horizon at its zero default — both in
// Explore's worst case and in Distribution's histogram key.
func TestUndecidedRunsReportHorizon(t *testing.T) {
	factory := func(model.ProcessContext, model.Value) (model.Algorithm, error) {
		return neverDecides{}, nil
	}
	cfg := lowerbound.Config{
		N: 3, T: 1,
		Synchrony:  model.ES,
		Factory:    factory,
		Proposals:  props(3),
		MaxCrashes: -1, // crash-free run only
	}
	// The defaulted horizon for this config: MaxCrashRound + 3t + 8.
	wantHorizon := model.Round(1+2*1+1) + model.Round(3*1+8)

	res, err := lowerbound.Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Undecided {
		t.Fatal("undecided run not flagged")
	}
	if res.WorstRound != wantHorizon+1 {
		t.Fatalf("WorstRound = %d, want Horizon+1 = %d", res.WorstRound, wantHorizon+1)
	}

	hist, err := lowerbound.Distribution(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hist[wantHorizon+1] != 1 || len(hist) != 1 {
		t.Fatalf("histogram = %v, want {%d: 1}", hist, wantHorizon+1)
	}
}
