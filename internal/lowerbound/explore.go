// Package lowerbound mechanizes Sect. 2 of the paper (Proposition 1: every
// consensus algorithm in ES has a synchronous run deciding no earlier than
// round t+2). It provides
//
//   - an exhaustive explorer over *serial runs* — synchronous runs with at
//     most one crash per round, exactly the run family the proof
//     quantifies over — reporting the worst-case global decision round of
//     any algorithm, with the crash/receiver branching of the proof
//     (missing-receiver sets as prefixes) or fully exhaustive subsets;
//   - valency analysis of partial runs (the Lemma 2–5 apparatus); and
//   - the executable Claim 5.1 constructions (runs s1, s0, a2, a1, a0 of
//     Fig. 1) with their indistinguishability assertions (construction.go).
//
// The explorer splits the serial-run tree at the first crash placement
// into independent branches and explores them on a bounded worker pool
// (Config.Workers), each worker owning its own reusable simulator and
// schedule scratch. Per-branch aggregates are merged in the serial
// depth-first order, so every result — including worst-case witnesses —
// is identical for every worker count.
package lowerbound

import (
	"errors"
	"fmt"

	"indulgence/internal/check"
	"indulgence/internal/model"
	"indulgence/internal/pool"
	"indulgence/internal/sched"
	"indulgence/internal/sim"
)

// SubsetMode selects how the explorer enumerates the receivers that miss a
// crashing process's last messages.
type SubsetMode int

const (
	// PrefixSubsets enumerates missing-receiver sets that are prefixes of
	// the identity order — the n cases the proofs of Lemma 4/5 use
	// (including "nobody misses it" and "everybody misses it").
	PrefixSubsets SubsetMode = iota + 1
	// AllSubsets enumerates all 2^(n−1) receiver subsets. Exhaustive but
	// exponential; use for small n.
	AllSubsets
)

// Config parameterizes an exploration.
type Config struct {
	// N and T describe the system.
	N, T int
	// Synchrony is the model to validate the runs against (serial runs
	// are legal in both SCS and ES).
	Synchrony model.Synchrony
	// Factory builds the algorithm under test.
	Factory model.Factory
	// Proposals is the initial configuration (Proposals[id-1]).
	Proposals []model.Value
	// Horizon caps each simulated run. A run not fully decided by the
	// horizon is reported with decision round Horizon+1 and the Undecided
	// flag. Default: 3t+8 rounds past the largest scheduled round.
	Horizon model.Round
	// FirstCrashRound is the first round in which the explorer may place
	// a crash (default 1). Combined with Base it explores extensions of a
	// fixed prefix, as in the "synchronous after round k" experiments.
	FirstCrashRound model.Round
	// MaxCrashRound is the last round in which a crash may be placed
	// (default 2t+2, past the worst baseline's deciding rounds).
	MaxCrashRound model.Round
	// MaxCrashes caps the number of crashes: 0 selects the default T;
	// a negative value explores the crash-free run only.
	MaxCrashes int
	// Mode selects the receiver-subset enumeration (default
	// PrefixSubsets).
	Mode SubsetMode
	// Workers bounds the explorer's parallelism: 0 selects one worker per
	// runnable CPU (pool.Workers), 1 forces the serial path. Exploration
	// results are independent of the worker count (witnesses included).
	Workers int
	// Base, if non-nil, is a schedule prefix (an asynchronous prefix, or
	// a serial partial run that may already contain crashes); the
	// explorer superimposes further crashes on clones of it. Its N, T and
	// GSR are adopted; processes already crashed in Base are excluded
	// from the enumeration, and Base's crashes count against the budget.
	// Set FirstCrashRound past the prefix so extensions leave it intact.
	Base *sched.Schedule
}

func (c *Config) defaults() error {
	if c.Base != nil {
		c.N, c.T = c.Base.N(), c.Base.T()
	}
	if c.N < 2 || c.T < 0 {
		return fmt.Errorf("lowerbound: invalid n=%d t=%d", c.N, c.T)
	}
	if len(c.Proposals) != c.N {
		return fmt.Errorf("lowerbound: %d proposals for n=%d", len(c.Proposals), c.N)
	}
	if c.Factory == nil {
		return errors.New("lowerbound: nil factory")
	}
	budget := c.T
	if c.Base != nil {
		budget -= c.Base.Crashes()
		if budget < 0 {
			return fmt.Errorf("lowerbound: base schedule already has %d > t crashes", c.Base.Crashes())
		}
	}
	switch {
	case c.MaxCrashes == 0 || c.MaxCrashes > budget:
		c.MaxCrashes = budget
	case c.MaxCrashes < 0:
		c.MaxCrashes = 0
	}
	if c.FirstCrashRound == 0 {
		c.FirstCrashRound = 1
	}
	if c.MaxCrashRound == 0 {
		c.MaxCrashRound = c.FirstCrashRound + model.Round(2*c.T+1)
	}
	if c.Mode == 0 {
		c.Mode = PrefixSubsets
	}
	if c.Horizon == 0 {
		base := c.MaxCrashRound
		if c.Base != nil && c.Base.MaxScheduledRound() > base {
			base = c.Base.MaxScheduledRound()
		}
		c.Horizon = base + model.Round(3*c.T+8)
	}
	return nil
}

// resolvedHorizon returns the horizon an exploration of cfg will use —
// the explicit Horizon, or its default. Entry points whose visitors need
// the horizon (to label undecided runs as Horizon+1) call it on their own
// copy, leaving cfg itself untouched for foldSerialRuns' defaulting.
func resolvedHorizon(cfg Config) (model.Round, error) {
	if err := cfg.defaults(); err != nil {
		return 0, err
	}
	return cfg.Horizon, nil
}

// Result reports an exploration's findings.
type Result struct {
	// WorstRound is the largest global decision round over all explored
	// runs (Horizon+1 for a run that did not fully decide in time).
	WorstRound model.Round
	// Witness is a schedule attaining WorstRound.
	Witness *sched.Schedule
	// WitnessEarliest is, within the witness run, the earliest decision
	// round of any process.
	WitnessEarliest model.Round
	// Runs is the number of runs explored.
	Runs int
	// Undecided reports that some run had not fully decided by the
	// horizon.
	Undecided bool
	// PropertyViolation is the first consensus violation observed, if
	// any (the explorer doubles as a model checker for validity and
	// uniform agreement over the whole serial-run family).
	PropertyViolation error
	// ViolationWitness is the schedule of the violating run.
	ViolationWitness *sched.Schedule
}

// Explore runs the algorithm on every serial run in the configured family
// and reports the worst-case global decision round, a witness schedule and
// any consensus violation.
func Explore(cfg Config) (*Result, error) {
	// An undecided run must be recorded as Horizon+1 even when the caller
	// left Horizon at its zero default.
	horizon, err := resolvedHorizon(cfg)
	if err != nil {
		return nil, err
	}
	return foldSerialRuns(cfg,
		func() *Result { return &Result{} },
		func(res *Result, s *sched.Schedule, r *sim.Result) {
			res.Runs++
			gdr, decided := r.GlobalDecisionRound()
			if !r.AllAliveDecided || !decided {
				gdr = horizon + 1
				res.Undecided = true
			}
			if gdr > res.WorstRound {
				res.WorstRound = gdr
				res.Witness = s.Clone()
				if e, ok := check.EarliestDecisionRound(r); ok {
					res.WitnessEarliest = e
				} else {
					res.WitnessEarliest = 0
				}
			}
			if res.PropertyViolation == nil {
				rep := check.Consensus(r, cfg.Proposals)
				if !rep.Validity || !rep.Agreement {
					res.PropertyViolation = rep.Err()
					res.ViolationWitness = s.Clone()
				}
			}
		},
		func(dst, src *Result) {
			dst.Runs += src.Runs
			dst.Undecided = dst.Undecided || src.Undecided
			if src.WorstRound > dst.WorstRound {
				dst.WorstRound = src.WorstRound
				dst.Witness = src.Witness
				dst.WitnessEarliest = src.WitnessEarliest
			}
			if dst.PropertyViolation == nil {
				dst.PropertyViolation = src.PropertyViolation
				dst.ViolationWitness = src.ViolationWitness
			}
		})
}

// DecisionValues returns the set of values decided across all serial runs
// in the configured family — the valency of the (possibly empty) prefix.
func DecisionValues(cfg Config) (map[model.Value]struct{}, error) {
	return foldSerialRuns(cfg,
		func() map[model.Value]struct{} { return make(map[model.Value]struct{}) },
		func(vals map[model.Value]struct{}, _ *sched.Schedule, r *sim.Result) {
			for _, d := range r.Decisions {
				if d.Decided() {
					vals[d.Value] = struct{}{}
				}
			}
		},
		func(dst, src map[model.Value]struct{}) {
			for v := range src {
				dst[v] = struct{}{}
			}
		})
}

// Distribution returns the histogram of global decision rounds over every
// serial run in the configured family (key Horizon+1 counts runs that did
// not fully decide in time). Where Explore reports the worst case, the
// distribution exposes the whole profile — the average-case face of the
// price of indulgence.
func Distribution(cfg Config) (map[model.Round]int, error) {
	// Undecided runs are keyed by Horizon+1, resolved like in Explore.
	horizon, err := resolvedHorizon(cfg)
	if err != nil {
		return nil, err
	}
	return foldSerialRuns(cfg,
		func() map[model.Round]int { return make(map[model.Round]int) },
		func(hist map[model.Round]int, _ *sched.Schedule, r *sim.Result) {
			gdr, decided := r.GlobalDecisionRound()
			if !decided || !r.AllAliveDecided {
				gdr = horizon + 1
			}
			hist[gdr]++
		},
		func(dst, src map[model.Round]int) {
			for r, c := range src {
				dst[r] += c
			}
		})
}

// crash is one crash placement: proc crashes in round round and exactly
// the processes in missing never receive its last message.
type crash struct {
	round   model.Round
	proc    model.ProcessID
	missing model.PIDSet
}

// branch is one independent subtree of the serial-run family, identified
// by the placement of the first crash. first.proc == 0 denotes the
// crash-free run (a single leaf).
type branch struct {
	first crash
}

// explorer holds the read-only state shared by all workers of one
// exploration.
type explorer struct {
	cfg  Config
	miss [][]model.PIDSet // miss[p-1]: candidate missing-receiver sets of p
}

// missingSets enumerates the candidate sets of receivers that miss a
// crashing process p's last messages.
func (e *explorer) missingSets(p model.ProcessID) []model.PIDSet {
	others := make([]model.ProcessID, 0, e.cfg.N-1)
	for q := model.ProcessID(1); int(q) <= e.cfg.N; q++ {
		if q != p {
			others = append(others, q)
		}
	}
	if e.cfg.Mode == PrefixSubsets {
		sets := make([]model.PIDSet, 0, e.cfg.N)
		var cur model.PIDSet
		sets = append(sets, cur)
		for _, q := range others {
			cur.Add(q)
			sets = append(sets, cur)
		}
		return sets
	}
	total := 1 << len(others)
	sets := make([]model.PIDSet, 0, total)
	for mask := 0; mask < total; mask++ {
		var set model.PIDSet
		for i, q := range others {
			if mask&(1<<i) != 0 {
				set.Add(q)
			}
		}
		sets = append(sets, set)
	}
	return sets
}

// eligible reports whether p may crash (it is not already crashed in the
// base prefix).
func (e *explorer) eligible(p model.ProcessID) bool {
	return e.cfg.Base == nil || e.cfg.Base.Correct(p)
}

// branches enumerates the top-level branches in serial depth-first order:
// the crash-free leaf first, then first-crash placements from the latest
// round down to FirstCrashRound (the recursion visits the crash-free
// continuation of each round before the crashes of that round, so later
// first-crash rounds precede earlier ones in the depth-first order),
// within a round by process id, within a process by missing-set order.
func (e *explorer) branches() []branch {
	out := []branch{{}}
	if e.cfg.MaxCrashes <= 0 {
		return out
	}
	for k := e.cfg.MaxCrashRound; k >= e.cfg.FirstCrashRound; k-- {
		for p := model.ProcessID(1); int(p) <= e.cfg.N; p++ {
			if !e.eligible(p) {
				continue
			}
			for _, miss := range e.miss[p-1] {
				out = append(out, branch{first: crash{round: k, proc: p, missing: miss}})
			}
		}
	}
	return out
}

// worker executes branches serially: it owns a reusable simulator, a
// prototype schedule and a scratch schedule rebuilt per run.
type worker struct {
	e       *explorer
	sim     sim.Simulator
	proto   *sched.Schedule
	scratch *sched.Schedule
	chosen  []crash
	visit   func(*sched.Schedule, *sim.Result)
}

func (e *explorer) newWorker() *worker {
	proto := e.cfg.Base
	if proto == nil {
		proto = sched.New(e.cfg.N, e.cfg.T)
	}
	return &worker{
		e:       e,
		proto:   proto,
		scratch: sched.New(e.cfg.N, e.cfg.T),
		chosen:  make([]crash, 0, e.cfg.MaxCrashes),
	}
}

// runBranch explores one branch in depth-first order.
func (w *worker) runBranch(b branch) error {
	w.chosen = w.chosen[:0]
	if b.first.proc == 0 {
		return w.runSim()
	}
	w.chosen = append(w.chosen, b.first)
	return w.descend(b.first.round + 1)
}

// runSim simulates the run given by the chosen crashes and hands it to the
// visitor. The schedule is scratch state reused for the next run; visitors
// must Clone it if they keep it.
func (w *worker) runSim() error {
	s := w.scratch.CopyFrom(w.proto)
	for _, c := range w.chosen {
		receivers := model.FullPIDSet(w.e.cfg.N).Diff(c.missing)
		receivers.Remove(c.proc)
		s.CrashWithReceivers(c.proc, c.round, receivers)
	}
	r, err := w.sim.Run(sim.Config{
		Synchrony:      w.e.cfg.Synchrony,
		Schedule:       s,
		Proposals:      w.e.cfg.Proposals,
		Factory:        w.e.cfg.Factory,
		MaxRounds:      w.e.cfg.Horizon,
		SkipTrace:      true,
		SkipValidation: true,
	})
	if err != nil {
		return fmt.Errorf("lowerbound: simulate %v: %w", s, err)
	}
	w.visit(s, r)
	return nil
}

// descend continues the crash placement from round r onwards: no crash in
// round r, or one crash of any not-yet-crashed process with each candidate
// missing set.
func (w *worker) descend(r model.Round) error {
	if len(w.chosen) == w.e.cfg.MaxCrashes || r > w.e.cfg.MaxCrashRound {
		return w.runSim()
	}
	// No crash in round r.
	if err := w.descend(r + 1); err != nil {
		return err
	}
	// One crash in round r: any process not yet crashed (in the base
	// prefix or in this branch).
	for p := model.ProcessID(1); int(p) <= w.e.cfg.N; p++ {
		if !w.e.eligible(p) {
			continue
		}
		already := false
		for _, c := range w.chosen {
			if c.proc == p {
				already = true
				break
			}
		}
		if already {
			continue
		}
		for _, miss := range w.e.miss[p-1] {
			w.chosen = append(w.chosen, crash{round: r, proc: p, missing: miss})
			if err := w.descend(r + 1); err != nil {
				return err
			}
			w.chosen = w.chosen[:len(w.chosen)-1]
		}
	}
	return nil
}

// foldSerialRuns enumerates every serial run of the family, feeding each
// run to visit on some aggregate P, and merges the per-branch aggregates
// in serial depth-first order. visit observes runs in the exact serial
// order within each branch, and merge is applied in branch order, so the
// fold is deterministic for every worker count. The schedule handed to
// visit is scratch state: clone it to keep it.
func foldSerialRuns[P any](cfg Config, newP func() P, visit func(P, *sched.Schedule, *sim.Result), merge func(dst, src P)) (P, error) {
	var zero P
	if err := cfg.defaults(); err != nil {
		return zero, err
	}
	e := &explorer{cfg: cfg, miss: make([][]model.PIDSet, cfg.N)}
	for p := model.ProcessID(1); int(p) <= cfg.N; p++ {
		e.miss[p-1] = e.missingSets(p)
	}
	branches := e.branches()

	if pool.Workers(cfg.Workers, len(branches)) == 1 {
		// Serial fast path: one accumulator, visited in branch order —
		// the same fold the parallel path reproduces through its
		// branch-ordered merge, without per-branch partials.
		acc := newP()
		w := e.newWorker()
		w.visit = func(s *sched.Schedule, r *sim.Result) { visit(acc, s, r) }
		for _, b := range branches {
			if err := w.runBranch(b); err != nil {
				return zero, err
			}
		}
		return acc, nil
	}

	partials := make([]P, len(branches))
	errs := make([]error, len(branches))
	pool.ForEach(cfg.Workers, len(branches), func() func(int) {
		w := e.newWorker()
		return func(bi int) {
			p := newP()
			partials[bi] = p
			w.visit = func(s *sched.Schedule, r *sim.Result) { visit(p, s, r) }
			errs[bi] = w.runBranch(branches[bi])
		}
	})
	for _, err := range errs {
		if err != nil {
			return zero, err
		}
	}
	acc := newP()
	for _, p := range partials {
		merge(acc, p)
	}
	return acc, nil
}
