// Package lowerbound mechanizes Sect. 2 of the paper (Proposition 1: every
// consensus algorithm in ES has a synchronous run deciding no earlier than
// round t+2). It provides
//
//   - an exhaustive explorer over *serial runs* — synchronous runs with at
//     most one crash per round, exactly the run family the proof
//     quantifies over — reporting the worst-case global decision round of
//     any algorithm, with the crash/receiver branching of the proof
//     (missing-receiver sets as prefixes) or fully exhaustive subsets;
//   - valency analysis of partial runs (the Lemma 2–5 apparatus); and
//   - the executable Claim 5.1 constructions (runs s1, s0, a2, a1, a0 of
//     Fig. 1) with their indistinguishability assertions (construction.go).
package lowerbound

import (
	"errors"
	"fmt"

	"indulgence/internal/check"
	"indulgence/internal/model"
	"indulgence/internal/sched"
	"indulgence/internal/sim"
)

// SubsetMode selects how the explorer enumerates the receivers that miss a
// crashing process's last messages.
type SubsetMode int

const (
	// PrefixSubsets enumerates missing-receiver sets that are prefixes of
	// the identity order — the n cases the proofs of Lemma 4/5 use
	// (including "nobody misses it" and "everybody misses it").
	PrefixSubsets SubsetMode = iota + 1
	// AllSubsets enumerates all 2^(n−1) receiver subsets. Exhaustive but
	// exponential; use for small n.
	AllSubsets
)

// Config parameterizes an exploration.
type Config struct {
	// N and T describe the system.
	N, T int
	// Synchrony is the model to validate the runs against (serial runs
	// are legal in both SCS and ES).
	Synchrony model.Synchrony
	// Factory builds the algorithm under test.
	Factory model.Factory
	// Proposals is the initial configuration (Proposals[id-1]).
	Proposals []model.Value
	// Horizon caps each simulated run. A run not fully decided by the
	// horizon is reported with decision round Horizon+1 and the Undecided
	// flag. Default: 3t+8 rounds past the largest scheduled round.
	Horizon model.Round
	// FirstCrashRound is the first round in which the explorer may place
	// a crash (default 1). Combined with Base it explores extensions of a
	// fixed prefix, as in the "synchronous after round k" experiments.
	FirstCrashRound model.Round
	// MaxCrashRound is the last round in which a crash may be placed
	// (default 2t+2, past the worst baseline's deciding rounds).
	MaxCrashRound model.Round
	// MaxCrashes caps the number of crashes: 0 selects the default T;
	// a negative value explores the crash-free run only.
	MaxCrashes int
	// Mode selects the receiver-subset enumeration (default
	// PrefixSubsets).
	Mode SubsetMode
	// Base, if non-nil, is a schedule prefix (an asynchronous prefix, or
	// a serial partial run that may already contain crashes); the
	// explorer superimposes further crashes on clones of it. Its N, T and
	// GSR are adopted; processes already crashed in Base are excluded
	// from the enumeration, and Base's crashes count against the budget.
	// Set FirstCrashRound past the prefix so extensions leave it intact.
	Base *sched.Schedule
}

func (c *Config) defaults() error {
	if c.Base != nil {
		c.N, c.T = c.Base.N(), c.Base.T()
	}
	if c.N < 2 || c.T < 0 {
		return fmt.Errorf("lowerbound: invalid n=%d t=%d", c.N, c.T)
	}
	if len(c.Proposals) != c.N {
		return fmt.Errorf("lowerbound: %d proposals for n=%d", len(c.Proposals), c.N)
	}
	if c.Factory == nil {
		return errors.New("lowerbound: nil factory")
	}
	budget := c.T
	if c.Base != nil {
		budget -= c.Base.Crashes()
		if budget < 0 {
			return fmt.Errorf("lowerbound: base schedule already has %d > t crashes", c.Base.Crashes())
		}
	}
	switch {
	case c.MaxCrashes == 0 || c.MaxCrashes > budget:
		c.MaxCrashes = budget
	case c.MaxCrashes < 0:
		c.MaxCrashes = 0
	}
	if c.FirstCrashRound == 0 {
		c.FirstCrashRound = 1
	}
	if c.MaxCrashRound == 0 {
		c.MaxCrashRound = c.FirstCrashRound + model.Round(2*c.T+1)
	}
	if c.Mode == 0 {
		c.Mode = PrefixSubsets
	}
	if c.Horizon == 0 {
		base := c.MaxCrashRound
		if c.Base != nil && c.Base.MaxScheduledRound() > base {
			base = c.Base.MaxScheduledRound()
		}
		c.Horizon = base + model.Round(3*c.T+8)
	}
	return nil
}

// Result reports an exploration's findings.
type Result struct {
	// WorstRound is the largest global decision round over all explored
	// runs (Horizon+1 for a run that did not fully decide in time).
	WorstRound model.Round
	// Witness is a schedule attaining WorstRound.
	Witness *sched.Schedule
	// WitnessEarliest is, within the witness run, the earliest decision
	// round of any process.
	WitnessEarliest model.Round
	// Runs is the number of runs explored.
	Runs int
	// Undecided reports that some run had not fully decided by the
	// horizon.
	Undecided bool
	// PropertyViolation is the first consensus violation observed, if
	// any (the explorer doubles as a model checker for validity and
	// uniform agreement over the whole serial-run family).
	PropertyViolation error
	// ViolationWitness is the schedule of the violating run.
	ViolationWitness *sched.Schedule
}

// Explore runs the algorithm on every serial run in the configured family
// and reports the worst-case global decision round, a witness schedule and
// any consensus violation.
func Explore(cfg Config) (*Result, error) {
	res := &Result{}
	err := forEachSerialRun(cfg, func(s *sched.Schedule, r *sim.Result) {
		res.Runs++
		gdr, decided := r.GlobalDecisionRound()
		if !r.AllAliveDecided || !decided {
			gdr = cfg.Horizon + 1
			res.Undecided = true
		}
		if gdr > res.WorstRound {
			res.WorstRound = gdr
			res.Witness = s.Clone()
			if e, ok := check.EarliestDecisionRound(r); ok {
				res.WitnessEarliest = e
			} else {
				res.WitnessEarliest = 0
			}
		}
		if res.PropertyViolation == nil {
			rep := check.Consensus(r, cfg.Proposals)
			if !rep.Validity || !rep.Agreement {
				res.PropertyViolation = rep.Err()
				res.ViolationWitness = s.Clone()
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// DecisionValues returns the set of values decided across all serial runs
// in the configured family — the valency of the (possibly empty) prefix.
func DecisionValues(cfg Config) (map[model.Value]struct{}, error) {
	vals := make(map[model.Value]struct{})
	err := forEachSerialRun(cfg, func(_ *sched.Schedule, r *sim.Result) {
		for _, d := range r.Decisions {
			if d.Decided() {
				vals[d.Value] = struct{}{}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return vals, nil
}

// forEachSerialRun enumerates every serial run of the family and invokes
// fn with its schedule and simulation result.
func forEachSerialRun(cfg Config, fn func(*sched.Schedule, *sim.Result)) error {
	if err := cfg.defaults(); err != nil {
		return err
	}
	var newSched func() *sched.Schedule
	if cfg.Base != nil {
		newSched = cfg.Base.Clone
	} else {
		newSched = func() *sched.Schedule { return sched.New(cfg.N, cfg.T) }
	}

	type crash struct {
		round   model.Round
		proc    model.ProcessID
		missing model.PIDSet
	}
	var (
		chosen  []crash
		runSim  func() error
		descend func(r model.Round) error
	)

	runSim = func() error {
		s := newSched()
		for _, c := range chosen {
			receivers := model.FullPIDSet(cfg.N).Diff(c.missing)
			receivers.Remove(c.proc)
			s.CrashWithReceivers(c.proc, c.round, receivers)
		}
		r, err := sim.Run(sim.Config{
			Synchrony:      cfg.Synchrony,
			Schedule:       s,
			Proposals:      cfg.Proposals,
			Factory:        cfg.Factory,
			MaxRounds:      cfg.Horizon,
			SkipTrace:      true,
			SkipValidation: true,
		})
		if err != nil {
			return fmt.Errorf("lowerbound: simulate %v: %w", s, err)
		}
		fn(s, r)
		return nil
	}

	// missingSets enumerates the candidate sets of receivers that miss a
	// crashing process p's last messages.
	missingSets := func(p model.ProcessID) []model.PIDSet {
		others := make([]model.ProcessID, 0, cfg.N-1)
		for q := model.ProcessID(1); int(q) <= cfg.N; q++ {
			if q != p {
				others = append(others, q)
			}
		}
		if cfg.Mode == PrefixSubsets {
			sets := make([]model.PIDSet, 0, cfg.N)
			var cur model.PIDSet
			sets = append(sets, cur)
			for _, q := range others {
				cur.Add(q)
				sets = append(sets, cur)
			}
			return sets
		}
		total := 1 << len(others)
		sets := make([]model.PIDSet, 0, total)
		for mask := 0; mask < total; mask++ {
			var set model.PIDSet
			for i, q := range others {
				if mask&(1<<i) != 0 {
					set.Add(q)
				}
			}
			sets = append(sets, set)
		}
		return sets
	}

	descend = func(r model.Round) error {
		if len(chosen) == cfg.MaxCrashes || r > cfg.MaxCrashRound {
			return runSim()
		}
		// No crash in round r.
		if err := descend(r + 1); err != nil {
			return err
		}
		// One crash in round r: any process not yet crashed (in the base
		// prefix or in this branch).
		for p := model.ProcessID(1); int(p) <= cfg.N; p++ {
			if cfg.Base != nil && !cfg.Base.Correct(p) {
				continue
			}
			already := false
			for _, c := range chosen {
				if c.proc == p {
					already = true
					break
				}
			}
			if already {
				continue
			}
			for _, miss := range missingSets(p) {
				chosen = append(chosen, crash{round: r, proc: p, missing: miss})
				if err := descend(r + 1); err != nil {
					return err
				}
				chosen = chosen[:len(chosen)-1]
			}
		}
		return nil
	}

	return descend(cfg.FirstCrashRound)
}

// Distribution returns the histogram of global decision rounds over every
// serial run in the configured family (key Horizon+1 counts runs that did
// not fully decide in time). Where Explore reports the worst case, the
// distribution exposes the whole profile — the average-case face of the
// price of indulgence.
func Distribution(cfg Config) (map[model.Round]int, error) {
	hist := make(map[model.Round]int)
	err := forEachSerialRun(cfg, func(_ *sched.Schedule, r *sim.Result) {
		gdr, decided := r.GlobalDecisionRound()
		if !decided || !r.AllAliveDecided {
			gdr = cfg.Horizon + 1
		}
		hist[gdr]++
	})
	if err != nil {
		return nil, err
	}
	return hist, nil
}
