package lowerbound

import (
	"fmt"

	"indulgence/internal/check"
	"indulgence/internal/model"
	"indulgence/internal/sched"
	"indulgence/internal/sim"
	"indulgence/internal/trace"
)

// Claim51 is the executable form of the five-run construction in the proof
// of Claim 5.1 (Fig. 1), instantiated with p′1 = Victim and p′_{i+1} =
// Target:
//
//	s1: serial run — Victim crashes in round t, Target misses its last
//	    message (extension of r^{i+1}_t);
//	s0: serial run — Victim crashes in round t, everybody receives its
//	    last message (extension of r^i_t);
//	a2: asynchronous — Victim does not crash but is falsely suspected by
//	    Target in round t (the message is delayed to t+2); Target crashes
//	    at the beginning of round t+1; synchronous from t+1 on. Its global
//	    decision round defines k′.
//	a1: as a2 through round t; in round t+1 Target is falsely suspected
//	    by everyone (its messages are delayed past k′) while Target
//	    falsely suspects Victim; Target crashes at the beginning of round
//	    t+2.
//	a0: as s0's prefix (no suspicion in round t), with a1's round t+1;
//	    Target crashes at the beginning of round t+2.
//
// The proof's chain of view equalities — Target cannot tell s1 from a1 nor
// s0 from a0 at the end of round t+1, while no other process can ever tell
// a2, a1, a0 apart before round k′+1 — is what makes a global decision at
// round t+1 impossible; Verify checks every link mechanically on real
// executions.
type Claim51 struct {
	// N and T describe the system (3 ≤ n, 1 ≤ t < n/2).
	N, T int
	// Victim is the paper's p′1 (crashes in the serial runs, is falsely
	// suspected in the asynchronous ones).
	Victim model.ProcessID
	// Target is the paper's p′_{i+1}: the only process whose view links
	// the synchronous and asynchronous worlds.
	Target model.ProcessID
	// Proposals is the initial configuration.
	Proposals []model.Value
	// KPrime is the global decision round of a2 (the proof's k′).
	KPrime model.Round
	// S1, S0, A2, A1, A0 are the five schedules.
	S1, S0, A2, A1, A0 *sched.Schedule
}

// BuildClaim51 constructs the five runs for the given algorithm with
// Victim = p1 and Target = p2. The factory is needed because a1 and a0
// deliver Target's delayed round-(t+1) messages at round k′+1, and k′ — the
// global decision round of a2 — depends on the algorithm.
func BuildClaim51(factory model.Factory, n, t int, proposals []model.Value) (*Claim51, error) {
	if n < 3 || t < 1 || 2*t >= n {
		return nil, fmt.Errorf("lowerbound: Claim 5.1 needs n >= 3 and 1 <= t < n/2, got n=%d t=%d", n, t)
	}
	if len(proposals) != n {
		return nil, fmt.Errorf("lowerbound: %d proposals for n=%d", len(proposals), n)
	}
	c := &Claim51{
		N: n, T: t,
		Victim:    1,
		Target:    2,
		Proposals: append([]model.Value(nil), proposals...),
	}
	tr := model.Round(t)
	everyone := model.FullPIDSet(n)

	// s1: Victim crashes in round t; only Target misses its message.
	recv := everyone
	recv.Remove(c.Victim)
	recv.Remove(c.Target)
	c.S1 = sched.New(n, t)
	c.S1.CrashWithReceivers(c.Victim, tr, recv)

	// s0: Victim crashes in round t; everybody receives its message.
	recv = everyone
	recv.Remove(c.Victim)
	c.S0 = sched.New(n, t)
	c.S0.CrashWithReceivers(c.Victim, tr, recv)

	// a2: no crash in round t; Victim→Target delayed to t+2; Target
	// crashes silently at t+1; synchronous from t+1 (GSR = t+1).
	c.A2 = sched.New(n, t, sched.WithGSR(tr+1))
	c.A2.Delay(tr, c.Victim, c.Target, tr+2)
	c.A2.CrashSilent(c.Target, tr+1)

	// Run a2 to find k′.
	a2res, err := sim.Run(sim.Config{
		Synchrony: model.ES,
		Schedule:  c.A2,
		Proposals: c.Proposals,
		Factory:   factory,
	})
	if err != nil {
		return nil, fmt.Errorf("lowerbound: run a2: %w", err)
	}
	kPrime, decided := a2res.GlobalDecisionRound()
	if !decided || !a2res.AllAliveDecided {
		return nil, fmt.Errorf("lowerbound: a2 did not reach a global decision (algorithm not live?)")
	}
	c.KPrime = kPrime

	// a1: as a2 through round t; round t+1: Target's messages to everyone
	// delayed past k′, Victim→Target delayed past k′; Target crashes
	// silently at t+2 (GSR = t+2).
	c.A1 = sched.New(n, t, sched.WithGSR(tr+2))
	c.A1.Delay(tr, c.Victim, c.Target, tr+2)
	c.delayTargetRound(c.A1, tr+1)
	c.A1.CrashSilent(c.Target, tr+2)

	// a0: no suspicion at all in round t; round t+1 as in a1; Target
	// crashes silently at t+2 (GSR = t+2).
	c.A0 = sched.New(n, t, sched.WithGSR(tr+2))
	c.delayTargetRound(c.A0, tr+1)
	c.A0.CrashSilent(c.Target, tr+2)

	return c, nil
}

// delayTargetRound delays, in round r, every message from Target to round
// k′+1 and the Victim→Target message likewise (Target falsely suspects
// Victim while being falsely suspected by everyone else).
func (c *Claim51) delayTargetRound(s *sched.Schedule, r model.Round) {
	for q := model.ProcessID(1); int(q) <= c.N; q++ {
		if q != c.Target {
			s.Delay(r, c.Target, q, c.KPrime+1)
		}
	}
	s.Delay(r, c.Victim, c.Target, c.KPrime+1)
}

// VerifyReport is the outcome of checking the construction.
type VerifyReport struct {
	// KPrime is the proof's k′ (global decision round of a2).
	KPrime model.Round
	// TargetS1A1 reports that Target's views in s1 and a1 coincide at the
	// end of round t+1.
	TargetS1A1 bool
	// TargetS0A0 reports that Target's views in s0 and a0 coincide at the
	// end of round t+1.
	TargetS0A0 bool
	// WorldsDiffer reports that Target's views in s0 and s1 differ by the
	// end of round t+1 (the two linked worlds are genuinely distinct).
	WorldsDiffer bool
	// ObserversBlind reports that every process other than Target has
	// identical views in a2, a1 and a0 through round k′.
	ObserversBlind bool
	// NoEarlyDecision reports that no process decided at a round < t+2 in
	// any of the five runs (the algorithm indeed pays the indulgence
	// price).
	NoEarlyDecision bool
	// ConsensusOK reports that validity and uniform agreement held in all
	// five runs.
	ConsensusOK bool
	// GlobalDecisionRounds maps run name (s1, s0, a2, a1, a0) to its
	// global decision round.
	GlobalDecisionRounds map[string]model.Round
	// Details holds human-readable diagnostics for failed checks.
	Details []string
}

// OK reports whether every check passed.
func (r *VerifyReport) OK() bool {
	return r.TargetS1A1 && r.TargetS0A0 && r.WorldsDiffer && r.ObserversBlind &&
		r.NoEarlyDecision && r.ConsensusOK
}

// Verify executes the five runs with the given algorithm and checks every
// indistinguishability link of the Claim 5.1 argument, plus consensus
// safety of each run.
func (c *Claim51) Verify(factory model.Factory) (*VerifyReport, error) {
	rep := &VerifyReport{
		KPrime:               c.KPrime,
		NoEarlyDecision:      true,
		ConsensusOK:          true,
		ObserversBlind:       true,
		GlobalDecisionRounds: make(map[string]model.Round, 5),
	}
	type runCase struct {
		name string
		s    *sched.Schedule
	}
	cases := []runCase{
		{"s1", c.S1}, {"s0", c.S0}, {"a2", c.A2}, {"a1", c.A1}, {"a0", c.A0},
	}
	runs := make(map[string]*trace.Run, len(cases))
	horizon := c.KPrime + model.Round(3*c.T+10)
	for _, rc := range cases {
		res, err := sim.Run(sim.Config{
			Synchrony: model.ES,
			Schedule:  rc.s,
			Proposals: c.Proposals,
			Factory:   factory,
			MaxRounds: horizon,
		})
		if err != nil {
			return nil, fmt.Errorf("lowerbound: run %s: %w", rc.name, err)
		}
		runs[rc.name] = res.Run
		if gdr, ok := res.GlobalDecisionRound(); ok {
			rep.GlobalDecisionRounds[rc.name] = gdr
		}
		if early, ok := check.EarliestDecisionRound(res); ok && int(early) < c.T+2 {
			rep.NoEarlyDecision = false
			rep.Details = append(rep.Details,
				fmt.Sprintf("%s: decision at round %d < t+2=%d", rc.name, early, c.T+2))
		}
		if crep := check.Consensus(res, c.Proposals); !crep.Validity || !crep.Agreement {
			rep.ConsensusOK = false
			rep.Details = append(rep.Details, fmt.Sprintf("%s: %v", rc.name, crep.Err()))
		}
	}

	tp1 := model.Round(c.T + 1)
	rep.TargetS1A1 = trace.Indistinguishable(runs["s1"], runs["a1"], c.Target, tp1)
	if !rep.TargetS1A1 {
		rep.Details = append(rep.Details, "target distinguishes s1 from a1 at end of t+1")
	}
	rep.TargetS0A0 = trace.Indistinguishable(runs["s0"], runs["a0"], c.Target, tp1)
	if !rep.TargetS0A0 {
		rep.Details = append(rep.Details, "target distinguishes s0 from a0 at end of t+1")
	}
	rep.WorldsDiffer = !trace.Indistinguishable(runs["s0"], runs["s1"], c.Target, tp1)
	if !rep.WorldsDiffer {
		rep.Details = append(rep.Details, "target cannot tell s0 from s1 (construction degenerate)")
	}
	for q := model.ProcessID(1); int(q) <= c.N; q++ {
		if q == c.Target {
			continue
		}
		if !trace.Indistinguishable(runs["a2"], runs["a1"], q, c.KPrime) {
			rep.ObserversBlind = false
			rep.Details = append(rep.Details, fmt.Sprintf("p%d distinguishes a2 from a1 by round k'=%d", q, c.KPrime))
		}
		if !trace.Indistinguishable(runs["a1"], runs["a0"], q, c.KPrime) {
			rep.ObserversBlind = false
			rep.Details = append(rep.Details, fmt.Sprintf("p%d distinguishes a1 from a0 by round k'=%d", q, c.KPrime))
		}
	}
	return rep, nil
}
