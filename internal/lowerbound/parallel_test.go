package lowerbound_test

import (
	"fmt"
	"testing"

	"indulgence/internal/baseline"
	"indulgence/internal/core"
	"indulgence/internal/lowerbound"
	"indulgence/internal/model"
	"indulgence/internal/sched"
)

// exploreSummary renders everything Explore reports, witnesses included,
// so two explorations can be compared for exact equality.
func exploreSummary(r *lowerbound.Result) string {
	witness, violWitness := "<nil>", "<nil>"
	if r.Witness != nil {
		witness = r.Witness.String()
	}
	if r.ViolationWitness != nil {
		violWitness = r.ViolationWitness.String()
	}
	return fmt.Sprintf("worst=%d witness=%s earliest=%d runs=%d undecided=%v violation=%v violWitness=%s",
		r.WorstRound, witness, r.WitnessEarliest, r.Runs, r.Undecided, r.PropertyViolation, violWitness)
}

// TestParallelExploreDeterminism asserts that Explore, Distribution and
// DecisionValues report identical results — including the worst-case
// witness schedule — for every worker count, across both subset modes and
// several algorithms. This is the merge-order guarantee of the parallel
// explorer: worker interleaving must never show through.
func TestParallelExploreDeterminism(t *testing.T) {
	algos := []struct {
		name    string
		factory model.Factory
	}{
		{"atplus2", core.New(core.Options{})},
		{"hurfinraynal", baseline.NewHurfinRaynal()},
		{"ct", baseline.NewCT()},
	}
	modes := []lowerbound.SubsetMode{lowerbound.PrefixSubsets, lowerbound.AllSubsets}
	workerCounts := []int{2, 3, 8, 32}

	for _, a := range algos {
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s/mode=%d", a.name, mode), func(t *testing.T) {
				cfg := lowerbound.Config{
					N: 3, T: 1,
					Synchrony:     model.ES,
					Factory:       a.factory,
					Proposals:     []model.Value{1, 2, 3},
					MaxCrashRound: 4,
					Mode:          mode,
					Workers:       1,
				}
				serial, err := lowerbound.Explore(cfg)
				if err != nil {
					t.Fatal(err)
				}
				serialSummary := exploreSummary(serial)
				serialDist, err := lowerbound.Distribution(cfg)
				if err != nil {
					t.Fatal(err)
				}
				serialVals, err := lowerbound.DecisionValues(cfg)
				if err != nil {
					t.Fatal(err)
				}

				for _, workers := range workerCounts {
					pcfg := cfg
					pcfg.Workers = workers
					par, err := lowerbound.Explore(pcfg)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if got := exploreSummary(par); got != serialSummary {
						t.Errorf("workers=%d Explore diverged:\ngot  %s\nwant %s", workers, got, serialSummary)
					}
					dist, err := lowerbound.Distribution(pcfg)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if fmt.Sprint(dist) != fmt.Sprint(serialDist) {
						t.Errorf("workers=%d Distribution diverged:\ngot  %v\nwant %v", workers, dist, serialDist)
					}
					vals, err := lowerbound.DecisionValues(pcfg)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if fmt.Sprint(vals) != fmt.Sprint(serialVals) {
						t.Errorf("workers=%d DecisionValues diverged:\ngot  %v\nwant %v", workers, vals, serialVals)
					}
				}
			})
		}
	}
}

// TestParallelExploreWithBase checks worker-count independence when the
// exploration extends a base prefix that already contains a crash (the
// "synchronous after round k" family), where the branch enumeration must
// skip already-crashed processes and count the base crash against the
// budget.
func TestParallelExploreWithBase(t *testing.T) {
	base := sched.New(5, 2, sched.WithGSR(2))
	base.CrashWithReceivers(2, 1, model.NewPIDSet(1, 3))
	cfg := lowerbound.Config{
		Synchrony:       model.ES,
		Factory:         core.New(core.Options{}),
		Proposals:       []model.Value{1, 2, 3, 4, 5},
		FirstCrashRound: 2,
		MaxCrashRound:   5,
		Base:            base,
		Workers:         1,
	}
	serial, err := lowerbound.Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Runs <= 1 {
		t.Fatalf("base exploration too small to be meaningful: %d runs", serial.Runs)
	}
	want := exploreSummary(serial)
	for _, workers := range []int{2, 8} {
		pcfg := cfg
		pcfg.Workers = workers
		par, err := lowerbound.Explore(pcfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := exploreSummary(par); got != want {
			t.Errorf("workers=%d diverged:\ngot  %s\nwant %s", workers, got, want)
		}
	}
}

// TestParallelExploreDefaultWorkers checks the default worker selection
// path (Workers=0) agrees with the serial result.
func TestParallelExploreDefaultWorkers(t *testing.T) {
	cfg := lowerbound.Config{
		N: 3, T: 1,
		Synchrony:     model.ES,
		Factory:       core.New(core.Options{}),
		Proposals:     []model.Value{1, 2, 3},
		MaxCrashRound: 3,
		Mode:          lowerbound.AllSubsets,
		Workers:       1,
	}
	serial, err := lowerbound.Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 0
	def, err := lowerbound.Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exploreSummary(def) != exploreSummary(serial) {
		t.Errorf("default workers diverged:\ngot  %s\nwant %s", exploreSummary(def), exploreSummary(serial))
	}
}
