package lowerbound

import (
	"fmt"

	"indulgence/internal/model"
	"indulgence/internal/sched"
)

// Valency classifies a configuration by the decision values reachable in
// its serial extensions — the notion behind Lemmas 2–5 of the paper.
type Valency int

const (
	// ZeroValent: every serial extension decides 0.
	ZeroValent Valency = iota + 1
	// OneValent: every serial extension decides 1.
	OneValent
	// Bivalent: both decision values are reachable.
	Bivalent
	// Undecided: no serial extension decided within the horizon (only
	// possible for broken algorithms or too-small horizons).
	Undecided
)

// String implements fmt.Stringer.
func (v Valency) String() string {
	switch v {
	case ZeroValent:
		return "0-valent"
	case OneValent:
		return "1-valent"
	case Bivalent:
		return "bivalent"
	case Undecided:
		return "undecided"
	default:
		return fmt.Sprintf("Valency(%d)", int(v))
	}
}

// ClassifyInitial computes the valency of the initial configuration given
// by cfg.Proposals for a binary consensus algorithm: it enumerates every
// serial run from that configuration and classifies the reachable decision
// values. Proposals must be drawn from {0, 1}.
func ClassifyInitial(cfg Config) (Valency, error) {
	for _, v := range cfg.Proposals {
		if v != 0 && v != 1 {
			return 0, fmt.Errorf("lowerbound: binary valency requires proposals in {0,1}, got %d", v)
		}
	}
	vals, err := DecisionValues(cfg)
	if err != nil {
		return 0, err
	}
	_, zero := vals[0]
	_, one := vals[1]
	switch {
	case zero && one:
		return Bivalent, nil
	case zero:
		return ZeroValent, nil
	case one:
		return OneValent, nil
	default:
		return Undecided, nil
	}
}

// FindBivalentInitial replays the Lemma 3 argument mechanically: it walks
// the chain of initial configurations C_0..C_n (C_i: the first i processes
// propose 1, the rest 0) and returns the first bivalent one. ok is false
// if every configuration in the chain is univalent — which, per Lemma 3,
// cannot happen for a correct consensus algorithm with t ≥ 1.
func FindBivalentInitial(cfg Config) (proposals []model.Value, ok bool, err error) {
	for i := 0; i <= cfg.N; i++ {
		props := make([]model.Value, cfg.N)
		for j := 0; j < cfg.N; j++ {
			if j < i {
				props[j] = 1
			}
		}
		c := cfg
		c.Proposals = props
		v, cerr := ClassifyInitial(c)
		if cerr != nil {
			return nil, false, cerr
		}
		if v == Bivalent {
			return props, true, nil
		}
	}
	return nil, false, nil
}

// ClassifyPartial computes the valency of a serial partial run of a binary
// consensus algorithm: prefix fixes rounds 1..prefixRounds (including any
// crashes it schedules), and the serial extensions place at most one
// further crash per round from prefixRounds+1 on. It is the executable
// form of the partial-run valency of Lemmas 2, 4 and 5.
func ClassifyPartial(cfg Config, prefix *sched.Schedule, prefixRounds model.Round) (Valency, error) {
	for p := model.ProcessID(1); int(p) <= prefix.N(); p++ {
		if r, crashed := prefix.CrashRound(p); crashed && r > prefixRounds {
			return 0, fmt.Errorf("lowerbound: prefix crashes p%d at round %d beyond the prefix length %d", p, r, prefixRounds)
		}
	}
	c := cfg
	c.Base = prefix
	c.FirstCrashRound = prefixRounds + 1
	if c.MaxCrashRound != 0 && c.MaxCrashRound <= prefixRounds {
		return 0, fmt.Errorf("lowerbound: MaxCrashRound %d inside the prefix", c.MaxCrashRound)
	}
	return ClassifyInitial(c)
}

// BivalentSearch is the outcome of FindBivalentPartial.
type BivalentSearch struct {
	// Witness is a bivalent serial partial run of the requested depth.
	Witness *sched.Schedule
	// Explored counts the partial runs classified.
	Explored int
}

// FindBivalentPartial mechanizes the induction of Lemma 4: starting from
// the initial configuration given by cfg.Proposals, it extends bivalent
// serial partial runs one round at a time — choosing no crash, or one
// crash with a receiver subset per cfg.Mode — and returns a bivalent
// serial partial run of exactly `depth` rounds if one exists within the
// kept frontier.
//
// Lemma 4 guarantees a bivalent (t−1)-round serial partial run for the
// hypothetical algorithm that decides at t+1; measured on the real
// algorithms of this repository the same depth is attained — one crash per
// round can keep the critical value confined until the crash budget runs
// out — while t-round partial runs come out univalent, which is exactly
// the Lemma 2 landscape in which the proof's indistinguishability step
// (Claim 5.1, bridging to non-synchronous runs) becomes necessary to push
// the bound one round further.
//
// The frontier is capped at keep partial runs per level (default 8) to
// bound the search; ok=false means no bivalent run was found within the
// cap, not a proof that none exists (use AllSubsets and a large keep for
// exhaustiveness at small n).
func FindBivalentPartial(cfg Config, depth model.Round, keep int) (*BivalentSearch, bool, error) {
	if err := cfg.defaults(); err != nil {
		return nil, false, err
	}
	if keep <= 0 {
		keep = 8
	}
	search := &BivalentSearch{}

	classify := func(prefix *sched.Schedule, rounds model.Round) (Valency, error) {
		search.Explored++
		sub := cfg
		sub.Base = nil
		return ClassifyPartial(sub, prefix, rounds)
	}

	empty := sched.New(cfg.N, cfg.T)
	v, err := classify(empty, 0)
	if err != nil {
		return nil, false, err
	}
	if v != Bivalent {
		return search, false, nil
	}
	frontier := []*sched.Schedule{empty}
	for r := model.Round(1); r <= depth; r++ {
		var next []*sched.Schedule
		for _, prefix := range frontier {
			for _, ext := range oneRoundExtensions(cfg, prefix, r) {
				if len(next) >= keep {
					break
				}
				v, err := classify(ext, r)
				if err != nil {
					return nil, false, err
				}
				if v == Bivalent {
					next = append(next, ext)
				}
			}
			if len(next) >= keep {
				break
			}
		}
		if len(next) == 0 {
			return search, false, nil
		}
		frontier = next
	}
	search.Witness = frontier[0]
	return search, true, nil
}

// oneRoundExtensions enumerates the serial one-round extensions of a
// partial run: no crash, or one crash of a not-yet-crashed process with a
// receiver subset per cfg.Mode.
func oneRoundExtensions(cfg Config, prefix *sched.Schedule, r model.Round) []*sched.Schedule {
	out := []*sched.Schedule{prefix.Clone()}
	if prefix.Crashes() >= cfg.T {
		return out
	}
	full := model.FullPIDSet(cfg.N)
	for p := model.ProcessID(1); int(p) <= cfg.N; p++ {
		if !prefix.Correct(p) {
			continue
		}
		others := make([]model.ProcessID, 0, cfg.N-1)
		for q := model.ProcessID(1); int(q) <= cfg.N; q++ {
			if q != p {
				others = append(others, q)
			}
		}
		var missingSets []model.PIDSet
		if cfg.Mode == AllSubsets {
			total := 1 << len(others)
			for mask := 0; mask < total; mask++ {
				var miss model.PIDSet
				for i, q := range others {
					if mask&(1<<i) != 0 {
						miss.Add(q)
					}
				}
				missingSets = append(missingSets, miss)
			}
		} else {
			var miss model.PIDSet
			missingSets = append(missingSets, miss)
			for _, q := range others {
				miss.Add(q)
				missingSets = append(missingSets, miss)
			}
		}
		for _, miss := range missingSets {
			ext := prefix.Clone()
			receivers := full.Diff(miss)
			receivers.Remove(p)
			ext.CrashWithReceivers(p, r, receivers)
			out = append(out, ext)
		}
	}
	return out
}
