package service

import (
	"fmt"
	"time"

	"indulgence/internal/adapt"
	"indulgence/internal/chaos/clock"
	"indulgence/internal/check"
	"indulgence/internal/model"
	"indulgence/internal/runtime"
	"indulgence/internal/stats"
	"indulgence/internal/transport"
	"indulgence/internal/wire"
)

// runInstance executes one consensus instance for a batch of proposals:
// it opens the instance's virtual endpoints on every process's mux,
// spreads the batch's values round-robin over the n processes as their
// proposals, runs a fresh runtime.Cluster to quiescence under the
// instance's algorithm choice (the selector's pick, or the static
// configuration), audits the outcome with check.Instance, and resolves
// the batch's futures. The instance slot is released on exit, unblocking
// the next queued batch.
func (s *Service) runInstance(instance uint64, batch []*pending, choice adapt.Choice) {
	defer s.wg.Done()
	begin := s.cfg.Clock.Now()
	// The instance slot bounds concurrent consensus runs — round loops,
	// detectors, in-flight frames. It is released as soon as the run is
	// over (releaseSlot below), before the journal fsync and future
	// resolution, so durability latency overlaps the next instance's
	// consensus instead of throttling slot turnover.
	slotHeld := true
	releaseSlot := func() {
		if slotHeld {
			slotHeld = false
			<-s.slots
		}
	}
	defer releaseSlot()
	retire := func() {
		for _, m := range s.muxes {
			m.RetireGroup(s.cfg.Group, instance)
		}
	}

	eps := make([]transport.Transport, s.cfg.N)
	for i, m := range s.muxes {
		ep, err := m.OpenGroup(s.cfg.Group, instance)
		if err != nil {
			retire()
			s.failInstance(batch, fmt.Errorf("service: open instance %d on p%d: %w", instance, i+1, err))
			return
		}
		eps[i] = ep
	}
	props := make([]model.Value, s.cfg.N)
	for i := range props {
		props[i] = batch[i%len(batch)].value
	}
	cl, err := runtime.New(runtime.Config{
		N: s.cfg.N, T: s.cfg.T,
		Factory:     choice.Factory,
		Proposals:   props,
		Endpoints:   eps,
		WaitPolicy:  choice.WaitPolicy,
		BaseTimeout: s.cfg.BaseTimeout,
		MaxRounds:   s.cfg.MaxRounds,
		Clock:       s.cfg.Clock,
		Suspicions:  s.mSuspicions,
	})
	if err != nil {
		retire()
		s.failInstance(batch, fmt.Errorf("service: instance %d: %w", instance, err))
		return
	}
	if s.cfg.OnInstance != nil {
		s.cfg.OnInstance(instance, cl)
	}
	ctx, cancel := clock.WithTimeout(s.runCtx, s.cfg.Clock, s.cfg.InstanceTimeout)
	results, runErr := cl.Run(ctx)
	cancel()
	retire()
	releaseSlot()

	decisions := make([]model.OptValue, s.cfg.N)
	var crashed model.PIDSet
	var (
		value      model.Value
		round      model.Round
		have       bool
		suspicions int
	)
	for _, r := range results {
		decisions[r.ID-1] = r.Decision
		suspicions += r.Suspicions
		if r.Crashed {
			crashed.Add(r.ID)
		}
		if v, ok := r.Decision.Get(); ok {
			if !have {
				value, have = v, true
			}
			if r.Round > round {
				round = r.Round
			}
		}
	}
	if !have {
		if runErr == nil {
			runErr = fmt.Errorf("service: instance %d reached no decision", instance)
		}
		s.failInstance(batch, fmt.Errorf("service: instance %d: %w", instance, runErr))
		return
	}
	decided := s.cfg.Clock.Since(begin)
	// An instance cancelled by service shutdown (Abort, or a Close racing
	// a kill) had its undecided nodes die with the service — that is a
	// crash-stop, not a termination violation, so they are excused the
	// way crash-injected processes are. Safety is still audited in full.
	if runErr != nil && s.runCtx.Err() != nil {
		for i, d := range decisions {
			if _, ok := d.Get(); !ok {
				crashed.Add(model.ProcessID(i + 1))
			}
		}
	}
	rep := check.Instance(decisions, props, crashed)

	// The batch's SLO class is its highest member class: the instance did
	// that class's work, so the journal record and decision carry it.
	batchClass := 0
	for _, p := range batch {
		if p.class > batchClass {
			batchClass = p.class
		}
	}

	// Journal-before-complete: the decision record must be durable
	// before any future resolves, so a crash can lose an
	// acknowledgement but never an acknowledged decision. A journal
	// failure fails the batch — clients retry onto a fresh instance —
	// because resolving an unjournaled decision would let a restart
	// re-run the instance.
	if s.cfg.Journal != nil {
		rec := wire.DecisionRecord{Instance: instance, Value: value, Round: round, Batch: len(batch), Group: s.cfg.Group, Class: batchClass}
		if err := s.cfg.Journal.Append(rec); err != nil {
			s.failInstance(batch, fmt.Errorf("service: journal instance %d: %w", instance, err))
			return
		}
	}

	dec := Decision{Instance: instance, Value: value, Round: round, Batch: len(batch), Class: batchClass}
	now := s.cfg.Clock.Now()
	var latencies []time.Duration
	for _, p := range batch {
		latencies = append(latencies, now.Sub(p.enqueued))
		p.fut.resolve(dec, nil)
	}

	s.countMu.Lock()
	s.instances++
	s.resolved += len(batch)
	if batchClass > s.maxClass {
		s.maxClass = batchClass
	}
	for i, l := range latencies {
		s.latencies.Add(l)
		s.mPropLat.Observe(int64(l))
		c := batch[i].class
		s.resolvedBy[c]++
		if s.classLat[c] == nil {
			s.classLat[c] = stats.NewReservoirSeeded[time.Duration](1024, uint64(c)+1)
		}
		s.classLat[c].Add(l)
	}
	s.rounds.Add(int(round))
	s.instLat.Add(decided)
	s.mDecLat.Observe(int64(decided))
	if round > 0 {
		s.roundLat.Add(decided / time.Duration(round))
	}
	if choice.Name != "" {
		s.algs[choice.Name]++
		s.roundsHist(choice.Name).Observe(int64(round))
	}
	for _, v := range rep.Violations {
		s.violations = append(s.violations,
			fmt.Sprintf("instance %d: %s", instance, v))
	}
	s.countMu.Unlock()
	s.mDecisions.Inc()
	s.mResolved.Add(int64(len(batch)))
	if s.plane != nil {
		s.plane.ObserveDecision(latencies, suspicions)
	}
}

// failInstance resolves a batch's futures with err and records the
// failure — a missed decision the selector treats as the strongest
// distrust signal.
func (s *Service) failInstance(batch []*pending, err error) {
	failBatch(batch, err)
	if s.plane != nil {
		s.plane.ObserveFailure()
	}
	s.countMu.Lock()
	s.instanceFail++
	s.failed += len(batch)
	s.countMu.Unlock()
	s.mInstFail.Inc()
	s.mFailed.Add(int64(len(batch)))
}
