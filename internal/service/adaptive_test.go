package service_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"indulgence/internal/adapt"
	"indulgence/internal/check"
	"indulgence/internal/core"
	"indulgence/internal/journal"
	"indulgence/internal/model"
	"indulgence/internal/service"
	"indulgence/internal/wire"
)

// neverDecide is a stalled algorithm: its instances hold their slots
// until the instance deadline, which is how the overload and
// backpressure tests freeze the pipeline.
type neverDecide struct{}

func (neverDecide) Name() string                          { return "never" }
func (neverDecide) StartRound(model.Round) model.Payload  { return nil }
func (neverDecide) EndRound(model.Round, []model.Message) {}
func (neverDecide) Decision() (model.Value, bool)         { return 0, false }

func neverFactory(model.ProcessContext, model.Value) (model.Algorithm, error) {
	return neverDecide{}, nil
}

// TestServiceAdaptiveSynchronousSelectsFast pins the acceptance shape of
// the selector: on a quiet, trusted cluster (generous timeouts, no
// delays) the fast algorithm A_f+2 must be selected for at least 90% of
// instances — here it is all of them, since nothing ever demotes.
func TestServiceAdaptiveSynchronousSelectsFast(t *testing.T) {
	const n, tt = 4, 1
	_, eps := hubEndpoints(t, n)
	svc, err := service.New(service.Config{
		N: n, T: tt,
		Factory:     core.New(core.Options{}),
		BaseTimeout: 50 * time.Millisecond,
		MaxBatch:    4,
		Linger:      time.Millisecond,
		MaxInflight: 8,
		Adaptive: &adapt.Config{
			SelectAlgorithms: true,
			Interval:         2 * time.Millisecond,
		},
	}, eps)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()

	const total = 64
	decs := driveProposals(t, svc, 8, total)
	if t.Failed() {
		return
	}
	if len(decs) != total {
		t.Fatalf("resolved %d of %d", len(decs), total)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	st := svc.Snapshot()
	if len(st.Violations) != 0 {
		t.Fatalf("violations: %v", st.Violations)
	}
	fast := st.Algorithms[core.AfPlus2Name]
	if st.Instances == 0 || fast*10 < st.Instances*9 {
		t.Fatalf("A_f+2 decided %d of %d instances, want >= 90%% (algorithms %v)",
			fast, st.Instances, st.Algorithms)
	}
}

// TestServiceAdaptiveMixedAlgorithms is the mixed-algorithm agreement
// test: an injected asynchronous period forces suspicions, the selector
// demotes through its ladder, concurrent instances run different
// algorithms over the same muxes — and every instance still passes
// check.Instance (zero violations), which is the entire point of
// per-instance isolation.
func TestServiceAdaptiveMixedAlgorithms(t *testing.T) {
	const n, tt = 4, 1
	hub, eps := hubEndpoints(t, n)
	svc, err := service.New(service.Config{
		N: n, T: tt,
		Factory:     core.New(core.Options{}),
		BaseTimeout: 4 * time.Millisecond,
		MaxBatch:    4,
		Linger:      time.Millisecond,
		MaxInflight: 16,
		Adaptive: &adapt.Config{
			SelectAlgorithms: true,
			ClimbAfter:       3,
			Interval:         2 * time.Millisecond,
		},
	}, eps)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()

	// Asynchronous period: p1 slower than every detector's patience for
	// the first stretch of the load, then the network heals.
	hub.DelayProcess(1, 20*time.Millisecond)
	time.AfterFunc(250*time.Millisecond, hub.Heal)

	const total = 192
	decs := driveProposals(t, svc, 16, total)
	if t.Failed() {
		return
	}
	if len(decs) != total {
		t.Fatalf("resolved %d of %d", len(decs), total)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	st := svc.Snapshot()
	if len(st.Violations) != 0 {
		t.Fatalf("mixed-algorithm violations: %v", st.Violations)
	}
	if st.Resolved != total || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Algorithms) < 2 {
		t.Fatalf("asynchronous period never mixed algorithms: %v (transitions %d)",
			st.Algorithms, st.Control.Transitions)
	}
	if st.Control.Transitions == 0 {
		t.Fatal("selector never transitioned under injected asynchrony")
	}
}

// TestServiceAdaptiveJournalTagsAcrossRestart runs an adaptive,
// journaled service through two process lifetimes with an asynchronous
// period in each, then audits the union of both lifetimes' journals:
// every decided instance must carry a tagged per-instance start claim,
// and check.Replay — including its algorithm-consistency rule — must
// hold across the restart.
func TestServiceAdaptiveJournalTagsAcrossRestart(t *testing.T) {
	const n, tt = 4, 1
	dir := t.TempDir()
	live := make(map[uint64]model.Value)

	lifetime := func(total int) {
		hub, eps := hubEndpoints(t, n)
		jn, err := journal.Open(dir, journal.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = jn.Close() }()
		svc, err := service.New(service.Config{
			N: n, T: tt,
			Factory:     core.New(core.Options{}),
			BaseTimeout: 4 * time.Millisecond,
			MaxBatch:    4,
			Linger:      time.Millisecond,
			MaxInflight: 8,
			Journal:     jn,
			Adaptive: &adapt.Config{
				SelectAlgorithms: true,
				ClimbAfter:       2,
				Interval:         2 * time.Millisecond,
			},
		}, eps)
		if err != nil {
			t.Fatal(err)
		}
		hub.DelayProcess(1, 15*time.Millisecond)
		time.AfterFunc(100*time.Millisecond, hub.Heal)
		decs := driveProposals(t, svc, 8, total)
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
		st := svc.Snapshot()
		if len(st.Violations) != 0 {
			t.Fatalf("violations: %v", st.Violations)
		}
		for _, d := range decs {
			if prev, ok := live[d.Instance]; ok && prev != d.Value {
				t.Fatalf("instance %d resolved %d and %d across lifetimes", d.Instance, prev, d.Value)
			}
			live[d.Instance] = d.Value
		}
	}
	lifetime(64)
	lifetime(64)

	var recs []wire.DecisionRecord
	var starts []wire.StartRecord
	tagged := make(map[uint64]string)
	if _, err := journal.Replay(dir, func(e journal.Entry) error {
		switch {
		case e.Trace != nil:
			// Decision-trace entries are introspection context, not
			// claims or outcomes; the audit skips them.
		case e.Start:
			starts = append(starts, wire.StartRecord{Instance: e.Instance(), Alg: e.Alg})
			if e.Alg != "" {
				tagged[e.Instance()] = e.Alg
			}
		default:
			recs = append(recs, e.Decision)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rep := check.Replay(recs, starts, live); !rep.OK() {
		t.Fatalf("cross-restart replay violations: %v", rep.Violations)
	}
	ladder := map[string]bool{core.AfPlus2Name: true, core.DiamondSName: true, core.AtPlus2Name: true}
	for _, r := range recs {
		alg, ok := tagged[r.Instance]
		if !ok {
			t.Fatalf("decided instance %d has no tagged start claim", r.Instance)
		}
		if !ladder[alg] {
			t.Fatalf("instance %d tagged with unknown algorithm %q", r.Instance, alg)
		}
	}
	if len(recs) == 0 || len(starts) == 0 {
		t.Fatalf("journal empty: %d decisions, %d starts", len(recs), len(starts))
	}
}

// TestServiceAdaptiveOverload freezes the pipeline with never-deciding
// instances and floods intake: admission control must start shedding
// with adapt.ErrOverload, and the sheds must show in Stats.Overloads.
func TestServiceAdaptiveOverload(t *testing.T) {
	const n, tt = 3, 1
	_, eps := hubEndpoints(t, n)
	svc, err := service.New(service.Config{
		N: n, T: tt,
		Factory:         neverFactory,
		BaseTimeout:     5 * time.Millisecond,
		MaxBatch:        2,
		Linger:          100 * time.Microsecond,
		MaxInflight:     1,
		InstanceTimeout: time.Hour, // the stalled instance must hold its slot
		Adaptive: &adapt.Config{
			MaxBatch:   2, // tiny intake so the flood saturates it instantly
			Interval:   time.Millisecond,
			AdmitHigh:  0.5,
			AdmitLow:   0.1,
			AdmitTicks: 1,
		},
	}, eps)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Abort()

	deadline := time.Now().Add(30 * time.Second)
	var shed bool
	for time.Now().Before(deadline) && !shed {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_, err := svc.Propose(ctx, 1)
		cancel()
		switch {
		case errors.Is(err, adapt.ErrOverload):
			shed = true
		case err == nil, errors.Is(err, context.DeadlineExceeded):
			// Accepted (filling the queue) or blocked on a full intake —
			// keep flooding until the gate trips.
		default:
			t.Fatalf("unexpected propose error: %v", err)
		}
	}
	if !shed {
		t.Fatal("admission control never shed under a frozen pipeline")
	}
	if st := svc.Snapshot(); st.Overloads == 0 {
		t.Fatalf("sheds not counted: %+v", st.Overloads)
	}
}

// TestServiceStatsBoundaries pins the new Stats exports at their
// boundary: a service that decided nothing reports empty summaries, and
// a single decided instance yields internally consistent decision and
// round latencies.
func TestServiceStatsBoundaries(t *testing.T) {
	const n, tt = 3, 1
	_, eps := hubEndpoints(t, n)
	svc, err := service.New(service.Config{
		N: n, T: tt,
		Factory:     core.New(core.Options{}),
		BaseTimeout: 10 * time.Millisecond,
		MaxBatch:    4,
		Linger:      time.Millisecond,
		MaxInflight: 2,
	}, eps)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()

	st := svc.Snapshot()
	if st.DecisionLatency.Count != 0 || st.RoundLatency.Count != 0 || st.BatchFill.Count != 0 {
		t.Fatalf("fresh service has non-empty summaries: %+v", st)
	}
	if st.DecisionLatency.P99 != 0 || st.BatchFill.Mean != 0 {
		t.Fatalf("empty summaries not zero-valued: %+v", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fut, err := svc.Propose(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := fut.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st = svc.Snapshot()
	if st.DecisionLatency.Count != 1 || st.RoundLatency.Count != 1 || st.BatchFill.Count != 1 {
		t.Fatalf("single-instance summaries: %+v", st)
	}
	if st.DecisionLatency.Min <= 0 || st.DecisionLatency.Min != st.DecisionLatency.Max {
		t.Fatalf("decision latency of one instance: %+v", st.DecisionLatency)
	}
	// One instance: RoundLatency is exactly DecisionLatency / round.
	if want := st.DecisionLatency.Min / time.Duration(dec.Round); st.RoundLatency.Min != want {
		t.Fatalf("round latency %v, want %v (round %d)", st.RoundLatency.Min, want, dec.Round)
	}
	// A lone proposal against MaxBatch 4 fills 25%.
	if st.BatchFill.Min != 25 || st.BatchFill.Max != 25 {
		t.Fatalf("batch fill = %+v, want 25", st.BatchFill)
	}
}
