package service_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"indulgence/internal/core"
	"indulgence/internal/model"
	"indulgence/internal/service"
	"indulgence/internal/transport"
)

// hubEndpoints builds one hub and returns its endpoints.
func hubEndpoints(t *testing.T, n int) (*transport.Hub, []transport.Transport) {
	t.Helper()
	hub, err := transport.NewHub(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	eps := make([]transport.Transport, n)
	for i := 0; i < n; i++ {
		ep, err := hub.Endpoint(model.ProcessID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	return hub, eps
}

// tcpEndpoints builds one loopback TCP cluster and returns its endpoints.
func tcpEndpoints(t *testing.T, n int) []transport.Transport {
	t.Helper()
	tc, err := transport.NewTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tc.Close() })
	eps := make([]transport.Transport, n)
	for i := 0; i < n; i++ {
		ep, err := tc.Endpoint(model.ProcessID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	return eps
}

// driveProposals submits total proposals from clients concurrent workers
// and waits for every future, failing the test on any error.
func driveProposals(t *testing.T, svc *service.Service, clients, total int) []service.Decision {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var (
		mu   sync.Mutex
		decs []service.Decision
		wg   sync.WaitGroup
		next = make(chan model.Value, total)
	)
	for i := 0; i < total; i++ {
		next <- model.Value(i + 1)
	}
	close(next)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range next {
				fut, err := svc.Propose(ctx, v)
				if err != nil {
					t.Errorf("propose %d: %v", v, err)
					return
				}
				dec, err := fut.Wait(ctx)
				if err != nil {
					t.Errorf("wait %d: %v", v, err)
					return
				}
				mu.Lock()
				decs = append(decs, dec)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return decs
}

// TestServiceManyInstancesUnderDelays is the headline service-level test:
// well over 64 consensus instances run concurrently over one in-memory
// cluster while the hub injects an asynchronous period (p1's outbound
// links delayed, then healed), and every instance must satisfy agreement
// and validity — zero check violations.
func TestServiceManyInstancesUnderDelays(t *testing.T) {
	const (
		n, tt   = 4, 1
		clients = 32
		total   = 256
	)
	hub, eps := hubEndpoints(t, n)
	svc, err := service.New(service.Config{
		N: n, T: tt,
		Factory:     core.New(core.Options{}),
		BaseTimeout: 5 * time.Millisecond,
		MaxBatch:    4,
		Linger:      time.Millisecond,
		MaxInflight: 64,
	}, eps)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()

	// Asynchronous period: p1 slow for the first part of the load, then
	// the network heals — the live shape of the paper's ES model.
	hub.DelayProcess(1, 15*time.Millisecond)
	time.AfterFunc(150*time.Millisecond, hub.Heal)

	decs := driveProposals(t, svc, clients, total)
	if t.Failed() {
		return
	}
	if len(decs) != total {
		t.Fatalf("resolved %d of %d proposals", len(decs), total)
	}
	// Futures of one batch resolve to one decision; decisions are valid
	// proposals.
	byInstance := make(map[uint64]service.Decision)
	for _, d := range decs {
		if d.Value < 1 || d.Value > total {
			t.Fatalf("instance %d decided unproposed value %d", d.Instance, d.Value)
		}
		if prev, ok := byInstance[d.Instance]; ok && prev.Value != d.Value {
			t.Fatalf("instance %d resolved two values: %d and %d", d.Instance, prev.Value, d.Value)
		}
		byInstance[d.Instance] = d
	}
	if got := len(byInstance); got < 64 {
		t.Fatalf("only %d instances for %d proposals (batch ≤ 4): want ≥ 64", got, total)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	st := svc.Snapshot()
	if len(st.Violations) != 0 {
		t.Fatalf("consensus violations: %v", st.Violations)
	}
	if st.Resolved != total || st.Failed != 0 || st.InstanceFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Rounds.Min < tt+2 {
		t.Fatalf("an instance decided in %d rounds, below the t+2 floor", st.Rounds.Min)
	}
	if st.Latency.Count != total || st.Latency.P99 <= 0 {
		t.Fatalf("latency summary = %+v", st.Latency)
	}
}

// TestServiceOverTCP runs concurrent instances over real loopback
// connections: the muxes share one TCP connection per ordered process
// pair across all instances.
func TestServiceOverTCP(t *testing.T) {
	const (
		n, tt   = 4, 1
		clients = 8
		total   = 64
	)
	eps := tcpEndpoints(t, n)
	svc, err := service.New(service.Config{
		N: n, T: tt,
		Factory:     core.New(core.Options{}),
		BaseTimeout: 10 * time.Millisecond,
		MaxBatch:    4,
		Linger:      time.Millisecond,
		MaxInflight: 16,
	}, eps)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()

	decs := driveProposals(t, svc, clients, total)
	if t.Failed() {
		return
	}
	if len(decs) != total {
		t.Fatalf("resolved %d of %d proposals", len(decs), total)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	st := svc.Snapshot()
	if len(st.Violations) != 0 {
		t.Fatalf("consensus violations: %v", st.Violations)
	}
	if st.Instances < total/4 {
		t.Fatalf("only %d instances decided", st.Instances)
	}
}

// TestServiceBatching checks the batch cut points: proposals arriving
// together share an instance (and a decision), and a lone proposal is cut
// by the linger timer.
func TestServiceBatching(t *testing.T) {
	const n, tt = 4, 1
	_, eps := hubEndpoints(t, n)
	svc, err := service.New(service.Config{
		N: n, T: tt,
		Factory:     core.New(core.Options{}),
		BaseTimeout: 10 * time.Millisecond,
		MaxBatch:    3,
		Linger:      200 * time.Millisecond,
		MaxInflight: 4,
	}, eps)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Three proposals inside one linger window fill MaxBatch exactly.
	futs := make([]*service.Future, 3)
	for i := range futs {
		fut, err := svc.Propose(ctx, model.Value(i+1))
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = fut
	}
	var first service.Decision
	for i, fut := range futs {
		dec, err := fut.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = dec
		} else if dec != first {
			t.Fatalf("batch split: %+v vs %+v", dec, first)
		}
	}
	if first.Batch != 3 {
		t.Fatalf("batch size = %d, want 3", first.Batch)
	}

	// A lone proposal must not wait for a full batch: the linger timer
	// cuts it.
	start := time.Now()
	fut, err := svc.Propose(ctx, 99)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := fut.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Batch != 1 || dec.Value != 99 {
		t.Fatalf("lone decision = %+v", dec)
	}
	if waited := time.Since(start); waited > 30*time.Second {
		t.Fatalf("lone proposal took %v", waited)
	}
}

// TestServiceClose checks graceful shutdown: pending proposals flush,
// Propose after Close fails with ErrClosed, Close is idempotent.
func TestServiceClose(t *testing.T) {
	const n, tt = 4, 1
	_, eps := hubEndpoints(t, n)
	svc, err := service.New(service.Config{
		N: n, T: tt,
		Factory:     core.New(core.Options{}),
		BaseTimeout: 10 * time.Millisecond,
		MaxBatch:    8,
		Linger:      time.Hour, // only Close may cut this batch
		MaxInflight: 2,
	}, eps)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fut, err := svc.Propose(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	dec, err := fut.Wait(ctx)
	if err != nil {
		t.Fatalf("pending proposal not flushed at Close: %v", err)
	}
	if dec.Value != 7 || dec.Batch != 1 {
		t.Fatalf("decision = %+v", dec)
	}
	if _, err := svc.Propose(ctx, 8); !errors.Is(err, service.ErrClosed) {
		t.Fatalf("Propose after Close: %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceConfigErrors covers constructor validation.
func TestServiceConfigErrors(t *testing.T) {
	_, eps := hubEndpoints(t, 4)
	if _, err := service.New(service.Config{N: 1, Factory: core.New(core.Options{})}, eps[:1]); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := service.New(service.Config{N: 4, T: 1}, eps); err == nil {
		t.Fatal("nil factory accepted")
	}
	if _, err := service.New(service.Config{N: 4, T: 1, Factory: core.New(core.Options{})}, eps[:2]); err == nil {
		t.Fatal("short endpoint slice accepted")
	}
	if _, err := service.New(service.Config{N: 2, T: 0, Factory: core.New(core.Options{})},
		[]transport.Transport{eps[1], eps[0]}); err == nil {
		t.Fatal("misordered endpoints accepted")
	}
}
