package service

import (
	"testing"
	"time"

	"indulgence/internal/adapt"
	"indulgence/internal/core"
	"indulgence/internal/model"
	"indulgence/internal/transport"
)

// TestCutFill pins the fill arithmetic the controller and Stats share:
// floored at 1 (a real cut above a >100 limit must not read as an idle
// window), exceeding 100 when the limit shrank under a filling batch.
func TestCutFill(t *testing.T) {
	cases := []struct{ n, limit, want int }{
		{1, 128, 1},
		{64, 128, 50},
		{4, 4, 100},
		{5, 4, 125},
		{1, 0, 100}, // degenerate limit clamps to 1
	}
	for _, c := range cases {
		if got := cutFill(c.n, c.limit); got != c.want {
			t.Fatalf("cutFill(%d, %d) = %d, want %d", c.n, c.limit, got, c.want)
		}
	}
}

// TestIntakeTracksBatchCeiling is the regression test for intake
// sizing: the buffer must be provisioned for the batch ceiling the
// batcher can actually cut at — the controller's MaxBatch when that
// exceeds the static one — not the initial MaxBatch×MaxInflight
// product, and must never shrink below the static product when the
// controller's ceiling is the smaller of the two.
func TestIntakeTracksBatchCeiling(t *testing.T) {
	hub, err := transport.NewHub(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	eps := make([]transport.Transport, 3)
	for i := range eps {
		if eps[i], err = hub.Endpoint(model.ProcessID(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	base := Config{
		N: 3, T: 1,
		Factory:     core.New(core.Options{}),
		BaseTimeout: 10 * time.Millisecond,
		MaxBatch:    4,
		MaxInflight: 8,
	}
	cases := []struct {
		name     string
		adaptive *adapt.Config
		wantCap  int
	}{
		{"static", nil, 4 * 8},
		{"adaptive ceiling above static", &adapt.Config{MaxBatch: 32}, 32 * 8},
		{"adaptive ceiling below static", &adapt.Config{MaxBatch: 2}, 4 * 8},
		{"adaptive defaults", &adapt.Config{}, 64 * 8},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Adaptive = tc.adaptive
		svc, err := New(cfg, eps)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := cap(svc.intake); got != tc.wantCap {
			_ = svc.Close()
			t.Fatalf("%s: intake capacity %d, want %d", tc.name, got, tc.wantCap)
		}
		if err := svc.Close(); err != nil {
			t.Fatalf("%s: close: %v", tc.name, err)
		}
	}
}
