package service_test

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"indulgence/internal/check"
	"indulgence/internal/core"
	"indulgence/internal/journal"
	"indulgence/internal/model"
	"indulgence/internal/service"
	"indulgence/internal/transport"
	"indulgence/internal/wire"
)

// journalConfig is the service configuration the recovery tests run:
// small cluster, fast timeouts, small batches so a modest load spreads
// over many instances.
func journalConfig(n int, jn *journal.Journal) service.Config {
	return service.Config{
		N: n, T: 1,
		Factory:         core.New(core.Options{}),
		BaseTimeout:     3 * time.Millisecond,
		MaxBatch:        2,
		Linger:          300 * time.Microsecond,
		MaxInflight:     8,
		InstanceTimeout: 30 * time.Second,
		Journal:         jn,
	}
}

// TestServiceJournalRecovery is the plain restart path: a service
// journals its decisions, shuts down cleanly, and a successor over the
// same endpoints serves the journaled decisions via Lookup, resumes the
// instance frontier past them, and keeps the joint log clean under
// check.Replay.
func TestServiceJournalRecovery(t *testing.T) {
	const n, total = 3, 16
	dir := t.TempDir()
	_, eps := hubEndpoints(t, n)

	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(journalConfig(n, jn), eps)
	if err != nil {
		t.Fatal(err)
	}
	decs := driveProposals(t, svc, 4, total)
	if t.Failed() {
		return
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if st := svc.Snapshot(); len(st.Violations) != 0 {
		t.Fatalf("violations: %v", st.Violations)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	// Every resolved decision must already be durable
	// (journal-before-complete), and the journal's frontier must clear
	// every decided instance.
	live := make(map[uint64]model.Value)
	var maxInstance uint64
	for _, d := range decs {
		live[d.Instance] = d.Value
		if d.Instance > maxInstance {
			maxInstance = d.Instance
		}
	}

	jn2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = jn2.Close() }()
	frontier := jn2.Frontier()
	if frontier <= maxInstance {
		t.Fatalf("recovered frontier %d does not clear decided instance %d", frontier, maxInstance)
	}
	for inst, v := range live {
		rec, ok := jn2.Get(inst)
		if !ok {
			t.Fatalf("instance %d resolved live but is not journaled", inst)
		}
		if rec.Value != v {
			t.Fatalf("instance %d journaled %d but resolved %d", inst, rec.Value, v)
		}
	}

	svc2, err := service.New(journalConfig(n, jn2), eps)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc2.Close() }()
	// The recovery read path: journaled decisions are served without
	// re-running consensus.
	for inst, v := range live {
		dec, ok := svc2.Lookup(inst)
		if !ok || dec.Value != v || dec.Instance != inst {
			t.Fatalf("Lookup(%d) = %+v, %v; want value %d", inst, dec, ok, v)
		}
	}
	if _, ok := svc2.Lookup(frontier + 100); ok {
		t.Fatal("Lookup invented a decision")
	}

	decs2 := driveProposals(t, svc2, 4, total)
	if t.Failed() {
		return
	}
	for _, d := range decs2 {
		if d.Instance < frontier {
			t.Fatalf("successor decided instance %d below the recovered frontier %d", d.Instance, frontier)
		}
		live[d.Instance] = d.Value
	}
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}
	if st := svc2.Snapshot(); len(st.Violations) != 0 {
		t.Fatalf("successor violations: %v", st.Violations)
	}

	var recs []wire.DecisionRecord
	var starts []wire.StartRecord
	if _, err := journal.Replay(dir, func(e journal.Entry) error {
		switch {
		case e.Trace != nil:
		case e.Start:
			starts = append(starts, wire.StartRecord{Instance: e.Instance(), Alg: e.Alg})
		default:
			recs = append(recs, e.Decision)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rep := check.Replay(recs, starts, live); !rep.OK() {
		t.Fatalf("check.Replay violations: %v", rep.Violations)
	}
}

// crashBattery accumulates cross-lifetime observations of one journal
// directory: every live resolution ever seen, and the frontier at each
// restart.
type crashBattery struct {
	t   *testing.T
	rng *rand.Rand
	eps []transport.Transport
	n   int
	dir string

	mu           sync.Mutex
	live         map[uint64]model.Value
	conflicts    []string
	prevFrontier uint64
	nextVal      int64
}

// runLifetime runs one service lifetime over the battery's endpoints and
// journal directory. When kill is true it schedules a crash at a
// randomized point — after a randomized journal append (so the
// journaled-but-unserved window after a decision's fsync is hit
// directly) or at a randomized wall-clock instant mid-load — and
// hard-stops the service there via Abort. It reports whether the kill
// actually fired (a fast lifetime can finish first). The final lifetime
// of a scenario runs with kill=false and shuts down cleanly.
func (cb *crashBattery) runLifetime(kill bool) bool {
	t := cb.t
	t.Helper()

	var (
		killOnce  sync.Once
		killDone  = make(chan struct{})
		killFired atomic.Bool
		svcBox    atomic.Pointer[service.Service]
		timer     *time.Timer
	)
	ltCtx, ltCancel := context.WithCancel(context.Background())
	defer ltCancel()
	doKill := func() {
		killOnce.Do(func() {
			defer close(killDone)
			killFired.Store(true)
			if svc := svcBox.Load(); svc != nil {
				svc.Abort()
			}
			ltCancel()
		})
	}

	// Two kill disciplines, chosen at random: after the Nth durable
	// journal append (starts and decisions both count, so the kill can
	// land right after an instance-start fsync or right after a
	// decision fsync, before the futures resolve), or after a random
	// delay unaligned with anything.
	var (
		appendKillAt int64
		appendCount  atomic.Int64
	)
	if kill {
		if cb.rng.Intn(2) == 0 {
			appendKillAt = int64(1 + cb.rng.Intn(8))
		} else {
			timer = time.AfterFunc(time.Duration(100+cb.rng.Intn(3000))*time.Microsecond, doKill)
		}
	}

	jn, err := journal.Open(cb.dir, journal.Options{
		SegmentBytes: 2048,
		OnAppend: func(journal.Entry) {
			if appendKillAt > 0 && appendCount.Add(1) == appendKillAt {
				doKill()
			}
		},
	})
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	frontier := jn.Frontier()
	if frontier < cb.prevFrontier {
		t.Fatalf("frontier regressed across restart: %d -> %d", cb.prevFrontier, frontier)
	}
	cb.prevFrontier = frontier

	svc, err := service.New(journalConfig(cb.n, jn), cb.eps)
	if err != nil {
		t.Fatalf("start service: %v", err)
	}
	svcBox.Store(svc)

	const perLifetime = 12
	vals := make(chan model.Value, perLifetime)
	for i := 0; i < perLifetime; i++ {
		cb.nextVal++
		vals <- model.Value(cb.nextVal)
	}
	close(vals)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range vals {
				fut, err := svc.Propose(ltCtx, v)
				if err != nil {
					return // killed mid-load: the client dies with its server
				}
				dec, err := fut.Wait(ltCtx)
				if err != nil {
					return
				}
				cb.mu.Lock()
				if dec.Instance < frontier {
					cb.conflicts = append(cb.conflicts,
						"decision below the recovered frontier")
				}
				if prev, ok := cb.live[dec.Instance]; ok && prev != dec.Value {
					cb.conflicts = append(cb.conflicts,
						"instance resolved two values across lifetimes")
				}
				cb.live[dec.Instance] = dec.Value
				cb.mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if timer != nil {
		timer.Stop()
	}
	// Claim the kill slot: if the kill already fired (or is firing),
	// wait for the Abort to finish so the endpoints are free; otherwise
	// this lifetime ends gracefully.
	graceful := false
	killOnce.Do(func() { graceful = true; close(killDone) })
	<-killDone
	if graceful {
		if err := svc.Close(); err != nil {
			t.Fatalf("close service: %v", err)
		}
	}
	if st := svc.Snapshot(); len(st.Violations) != 0 {
		t.Fatalf("check violations in lifetime: %v", st.Violations)
	}
	if err := jn.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}
	return killFired.Load()
}

// finish cross-checks the scenario's journal against everything clients
// ever observed, with check.Replay as the auditor.
func (cb *crashBattery) finish() {
	t := cb.t
	t.Helper()
	cb.mu.Lock()
	defer cb.mu.Unlock()
	if len(cb.conflicts) != 0 {
		t.Fatalf("cross-lifetime conflicts: %v", cb.conflicts)
	}
	var recs []wire.DecisionRecord
	var starts []wire.StartRecord
	journaled := make(map[uint64]struct{})
	info, err := journal.Replay(cb.dir, func(e journal.Entry) error {
		switch {
		case e.Trace != nil:
		case e.Start:
			starts = append(starts, wire.StartRecord{Instance: e.Instance(), Alg: e.Alg})
		default:
			recs = append(recs, e.Decision)
			journaled[e.Decision.Instance] = struct{}{}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("final replay: %v", err)
	}
	if rep := check.Replay(recs, starts, cb.live); !rep.OK() {
		t.Fatalf("check.Replay violations: %v", rep.Violations)
	}
	// Journal-before-complete, observed end to end: nothing ever
	// resolved live without being durable first.
	for inst := range cb.live {
		if _, ok := journaled[inst]; !ok {
			t.Fatalf("instance %d resolved live but never journaled", inst)
		}
	}
	if info.Frontier < cb.prevFrontier {
		t.Fatalf("final frontier %d below last restart's %d", info.Frontier, cb.prevFrontier)
	}
}

// runCrashRestartScenario runs lifetimes service lifetimes over one
// journal directory and shared endpoints — all but the last with a
// randomized kill — and returns how many kills actually fired.
func runCrashRestartScenario(t *testing.T, rng *rand.Rand, eps []transport.Transport, n int, dir string, lifetimes int) int {
	cb := &crashBattery{
		t: t, rng: rng, eps: eps, n: n, dir: dir,
		live: make(map[uint64]model.Value),
	}
	kills := 0
	for lt := 0; lt < lifetimes; lt++ {
		if cb.runLifetime(lt < lifetimes-1) {
			kills++
		}
		if t.Failed() {
			return kills
		}
	}
	cb.finish()
	return kills
}

// TestServiceCrashRestartBattery is the crash-restart hammer the journal
// exists for: 50+ randomized kill points (append-aligned and
// wall-clock-aligned) across service lifetimes sharing one journal, over
// both the in-memory and the TCP transport. After every crash the
// successor recovers from the journal alone. The battery asserts that no
// instance ever resolves two different values across lifetimes, that
// everything resolved live was journaled first, and that the instance
// frontier never regresses — with check.Replay auditing the joint
// journal/live history of every scenario.
func TestServiceCrashRestartBattery(t *testing.T) {
	const n = 3
	rng := rand.New(rand.NewSource(20260729))
	kills := 0
	for s := 0; s < 12 && kills < 42; s++ {
		_, eps := hubEndpoints(t, n)
		kills += runCrashRestartScenario(t, rng, eps, n, t.TempDir(), 8)
		if t.Failed() {
			return
		}
	}
	for s := 0; s < 6 && kills < 52; s++ {
		eps := tcpEndpoints(t, n)
		kills += runCrashRestartScenario(t, rng, eps, n, t.TempDir(), 6)
		if t.Failed() {
			return
		}
	}
	if kills < 50 {
		t.Fatalf("battery exercised only %d kill points, want >= 50", kills)
	}
	t.Logf("crash-restart battery: %d randomized kill points", kills)
}
