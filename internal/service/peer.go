package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"indulgence/internal/adapt"
	"indulgence/internal/chaos/clock"
	"indulgence/internal/core"
	"indulgence/internal/journal"
	"indulgence/internal/model"
	"indulgence/internal/runtime"
	"indulgence/internal/stats"
	"indulgence/internal/transport"
	"indulgence/internal/wire"
)

// PeerOptions describes one member of a multi-process consensus
// cluster. Unlike Config — which drives all N processes inside one OS
// process — PeerOptions drives exactly one: the other N-1 members run
// in other OS processes and are reached through the transport endpoint
// handed to NewPeer.
type PeerOptions struct {
	// T bounds tolerated crashes across the whole cluster.
	T int
	// Factory builds this process's algorithm, once per instance.
	Factory model.Factory
	// WaitPolicy selects the receive discipline (default WaitUnsuspected).
	WaitPolicy core.WaitPolicy
	// BaseTimeout is the initial suspicion timeout of every instance
	// (default 25ms).
	BaseTimeout time.Duration
	// MaxRounds aborts an instance's node after this many rounds
	// (default 256).
	MaxRounds model.Round
	// MaxBatch is the largest number of local proposals riding one
	// instance (default 8).
	MaxBatch int
	// Linger is how long an under-full batch waits for more proposals
	// before it is cut (default 2ms).
	Linger time.Duration
	// MaxInflight bounds concurrently running local instances, initiated
	// and joined combined (default 16).
	MaxInflight int
	// InstanceTimeout is the deadline of instances this process
	// initiates (default 30s).
	InstanceTimeout time.Duration
	// JoinTimeout is the deadline of instances this process joins on a
	// peer's signal (default 10s). Joined instances carry no local
	// futures, so a join that never decides — stale flood traffic from
	// before a restart, or a cluster that lost too many members — fails
	// quietly after this long instead of holding a slot for
	// InstanceTimeout.
	JoinTimeout time.Duration
	// FloodGrace is how long a decided instance keeps flooding DECIDE
	// before this member retires it (default 150ms), so peers whose
	// nodes are a round or two behind still satisfy their wait policies.
	// The member's own futures resolve at the decision, not after the
	// grace.
	FloodGrace time.Duration
	// NoopValue is the value this process proposes when it joins an
	// instance without local proposals queued (default MaxInt64, the
	// identity of the min-based estimate adoption the paper's
	// algorithms use — so a noop loses to every real proposal and wins
	// only an instance in which every proposer proposed one). A zero
	// value selects the default; to make noops competitive on purpose,
	// pick any other value.
	NoopValue model.Value
	// Journal, when non-nil, makes this member durable exactly as for
	// Config.Journal: instance-ID blocks are claimed before frames touch
	// the network, decisions are fsynced before futures resolve, and a
	// restarted member resumes past its journaled frontier. Each member
	// owns its own journal directory.
	Journal *journal.Journal
	// Clock is the time source for lingers, deadlines, flood grace and
	// latency accounting (default the wall clock); the chaos harness
	// injects a virtual clock here.
	Clock clock.Clock
	// Adaptive, when non-nil, attaches the feedback control plane: the
	// batch controller and admission gate work exactly as for the
	// single-process service. SelectAlgorithms must be false — a member
	// cannot unilaterally change the protocol of a slot it shares with
	// its peers, so per-instance algorithm selection is a single-process
	// service feature; NewPeer rejects a config that asks for it.
	Adaptive *adapt.Config
	// Group and Groups place the member in a sharded deployment, exactly
	// as for Config: the member runs group Group of Groups and owns the
	// strided slot space congruent to Group modulo Groups. Join signals
	// for other groups' slots are dropped. The defaults (0 and 1) are
	// the single-group member.
	Group  uint64
	Groups int
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg PeerOptions) withDefaults() PeerOptions {
	if cfg.BaseTimeout == 0 {
		cfg.BaseTimeout = 25 * time.Millisecond
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 8
	}
	if cfg.Linger == 0 {
		cfg.Linger = 2 * time.Millisecond
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 16
	}
	if cfg.InstanceTimeout == 0 {
		cfg.InstanceTimeout = 30 * time.Second
	}
	if cfg.JoinTimeout == 0 {
		cfg.JoinTimeout = 10 * time.Second
	}
	if cfg.FloodGrace == 0 {
		cfg.FloodGrace = 150 * time.Millisecond
	}
	if cfg.NoopValue == 0 {
		cfg.NoopValue = model.Value(math.MaxInt64)
	}
	if cfg.Groups == 0 {
		cfg.Groups = 1
	}
	cfg.Clock = clock.Or(cfg.Clock)
	return cfg
}

// PeerService is one process's member of a multi-process consensus
// cluster: the service layer for deployments where every process runs
// its own `indulgence serve` over a peer-configured transport.
//
// Instance IDs are global slots shared by all members. A member
// initiates a slot when it cuts a local proposal batch, and joins a
// slot — riding any lingering local batch on it, proposing NoopValue
// when nothing is queued — when the mux's pending signal reports
// inbound frames for an instance it has not opened. Two members initiating the same slot concurrently is not
// a conflict; it is consensus: both propose, the round protocol picks
// one value, and both resolve their local futures to it (exactly the
// whole-batch-commits semantics of the single-process service).
//
// Each member audits only what it can see — its own decisions, which it
// journals before resolving futures. Cross-member uniform agreement is
// audited offline by check.Replay over the members' journals and live
// observations (the `indulgence cluster` helper does exactly that).
type PeerService struct {
	cfg  PeerOptions
	n    int
	self model.ProcessID
	mux  *transport.Mux
	// ownsMux reports whether Close/Abort shut the mux down: true when
	// NewPeer built it, false when a shard runtime shares one mux across
	// many group members (NewPeerOnMux).
	ownsMux bool
	// stride is uint64(cfg.Groups): the member's slots advance by it,
	// keeping every local slot congruent to cfg.Group.
	stride uint64
	static adapt.Choice
	plane  *adapt.Plane

	intake      chan *pending
	joins       chan uint64
	slots       chan struct{}
	runCtx      context.Context
	runCancel   context.CancelFunc
	batcherDone chan struct{}
	wg          sync.WaitGroup

	// mu guards closed; Propose holds it for reading across the intake
	// send so Close never closes the channel under a sender.
	mu     sync.RWMutex
	closed bool

	// nextSlot and claimedThrough are touched only by the batcher
	// goroutine (see Service for the claim-block rationale).
	nextSlot       uint64
	claimedThrough uint64

	// slotMu guards active: the slots currently running locally, used
	// to dedupe join signals against initiated and already-joined slots.
	slotMu sync.Mutex
	active map[uint64]struct{}

	countMu      sync.Mutex
	proposals    int
	resolved     int
	failed       int
	instances    int
	joined       int
	instanceFail int
	overloads    int
	latencies    *stats.Reservoir[time.Duration]
	rounds       *stats.Reservoir[int]
	instLat      *stats.Reservoir[time.Duration]
	roundLat     *stats.Reservoir[time.Duration]
	fills        *stats.Reservoir[int]
	algs         map[string]int
}

// NewPeer starts one member of an n-process cluster over its transport
// endpoint (ep.Self() identifies which member this is). The endpoint is
// owned by the caller and is not closed by Close; the member wraps it
// in a mux and owns all reads from it.
func NewPeer(cfg PeerOptions, n int, ep transport.Transport) (*PeerService, error) {
	if n < 2 {
		return nil, fmt.Errorf("service: need at least 2 processes, got %d", n)
	}
	if ep == nil {
		return nil, errors.New("service: nil endpoint")
	}
	s, err := newPeerService(cfg, n, ep.Self())
	if err != nil {
		return nil, err
	}
	s.mux = transport.NewMuxNotify(ep, s.Join)
	s.ownsMux = true
	s.start()
	return s, nil
}

// NewPeerOnMux starts one member over an already-built group-aware mux —
// the sharded runtime's constructor, where every group's member of one
// process multiplexes over a single mux. The mux stays owned by the
// caller: Close and Abort leave it open, and join signals are the
// caller's to deliver — whoever owns the mux's pending callback routes
// each (group, instance) signal to the owning member's Join.
func NewPeerOnMux(cfg PeerOptions, n int, mux *transport.Mux) (*PeerService, error) {
	if n < 2 {
		return nil, fmt.Errorf("service: need at least 2 processes, got %d", n)
	}
	if mux == nil {
		return nil, errors.New("service: nil mux")
	}
	s, err := newPeerService(cfg, n, mux.Self())
	if err != nil {
		return nil, err
	}
	s.mux = mux
	s.start()
	return s, nil
}

// newPeerService builds a member's core — everything but the mux, which
// NewPeer and NewPeerOnMux attach before calling start.
func newPeerService(cfg PeerOptions, n int, self model.ProcessID) (*PeerService, error) {
	cfg = cfg.withDefaults()
	if self < 1 || int(self) > n {
		return nil, fmt.Errorf("service: endpoint Self()=%d outside 1..%d", self, n)
	}
	if cfg.Factory == nil {
		return nil, errors.New("service: nil factory")
	}
	if cfg.Groups < 1 || cfg.Group >= uint64(cfg.Groups) {
		return nil, fmt.Errorf("service: group %d out of range for %d groups", cfg.Group, cfg.Groups)
	}
	if cfg.Adaptive != nil && cfg.Adaptive.SelectAlgorithms {
		return nil, errors.New("service: peer members cannot select algorithms per instance (the protocol of a shared slot is cluster-wide; run selection on the single-process service)")
	}
	static := adapt.Choice{
		Name:       adapt.ProbeName(cfg.Factory, n, cfg.T),
		Factory:    cfg.Factory,
		WaitPolicy: cfg.WaitPolicy,
	}
	var plane *adapt.Plane
	// Intake tracks the controller's batch ceiling, as for the
	// single-process service.
	ceiling := cfg.MaxBatch
	if cfg.Adaptive != nil {
		// One clock drives lingers, deadlines and controller windows
		// alike (see the single-process service).
		ac := *cfg.Adaptive
		if ac.Now == nil {
			ac.Now = cfg.Clock.Now
		}
		plane = adapt.NewPlane(ac, static,
			adapt.Setting{Batch: cfg.MaxBatch, Linger: cfg.Linger}, n, cfg.T)
		if c := plane.BatchCeiling(); c > ceiling {
			ceiling = c
		}
	}
	s := &PeerService{
		cfg:         cfg,
		n:           n,
		self:        self,
		stride:      uint64(cfg.Groups),
		static:      static,
		plane:       plane,
		intake:      make(chan *pending, ceiling*cfg.MaxInflight),
		joins:       make(chan uint64, 256),
		slots:       make(chan struct{}, cfg.MaxInflight),
		batcherDone: make(chan struct{}),
		active:      make(map[uint64]struct{}),
		latencies:   stats.NewReservoirSeeded[time.Duration](maxSamples, uint64(self)<<3|0),
		rounds:      stats.NewReservoirSeeded[int](maxSamples, uint64(self)<<3|1),
		instLat:     stats.NewReservoirSeeded[time.Duration](maxSamples, uint64(self)<<3|2),
		roundLat:    stats.NewReservoirSeeded[time.Duration](maxSamples, uint64(self)<<3|3),
		fills:       stats.NewReservoirSeeded[int](maxSamples, uint64(self)<<3|4),
		algs:        make(map[string]int),
	}
	return s, nil
}

// start finishes construction once the mux is attached: journal
// recovery, then the batcher and control loop.
func (s *PeerService) start() {
	// The member's first slot is its group ID; later ones add the stride
	// (see Service for the strided-allocation contract).
	s.nextSlot = s.cfg.Group
	s.claimedThrough = s.nextSlot
	if s.cfg.Journal != nil {
		// Recovery: resume past every slot this member ever claimed or
		// decided (a restarted member must never re-run an instance its
		// previous lifetime touched — rejoining one with reset algorithm
		// state would be amnesia, not a crash-stop) and drop stale
		// frames below the frontier on arrival.
		s.nextSlot = alignInstance(s.cfg.Journal.Frontier(), s.cfg.Group, s.stride)
		s.claimedThrough = s.nextSlot
		s.mux.RetireGroupBelow(s.cfg.Group, s.nextSlot)
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	go s.batcher()
	if s.plane != nil {
		go controlLoop(s.runCtx, s.cfg.Clock, s.plane, s.intake, s.slots)
	}
}

// Join signals that inbound frames exist for slot and this member should
// adopt it. It never blocks — callable straight from a mux router
// goroutine; a dropped signal re-fires on the slot's next inbound frame.
// NewPeer wires it as the member's own pending callback; the sharded
// peer runtime, which owns its shared mux's callback, calls it on the
// group member each signal addresses. Slots outside the member's group
// are dropped by the batcher.
func (s *PeerService) Join(slot uint64) {
	select {
	case s.joins <- slot:
	default:
	}
}

// Group returns the consensus group this member runs (0 for the
// single-group member).
func (s *PeerService) Group() uint64 { return s.cfg.Group }

// Occupancy reports the intake buffer's current fill and capacity — the
// load signal shard placement policies compare across groups.
func (s *PeerService) Occupancy() (used, capacity int) {
	return len(s.intake), cap(s.intake)
}

// Shedding reports whether the member's admission gate is currently
// rejecting proposals with adapt.ErrOverload.
func (s *PeerService) Shedding() bool {
	return s.plane != nil && !s.plane.Admit()
}

// Self returns this member's process ID.
func (s *PeerService) Self() model.ProcessID { return s.self }

// Lookup serves the journaled decision of an already-decided instance
// without re-running consensus. It reports false when the member has no
// journal or the instance is not on record.
func (s *PeerService) Lookup(instance uint64) (Decision, bool) {
	if s.cfg.Journal == nil {
		return Decision{}, false
	}
	rec, ok := s.cfg.Journal.Get(instance)
	if !ok {
		return Decision{}, false
	}
	return Decision{Instance: rec.Instance, Value: rec.Value, Round: rec.Round, Batch: rec.Batch}, true
}

// Propose enqueues a local proposal and returns its Future. The future
// resolves to the decision of the instance the proposal rides — which,
// by agreement, every member's clients observe identically.
func (s *PeerService) Propose(ctx context.Context, v model.Value) (*Future, error) {
	p := &pending{value: v, enqueued: s.cfg.Clock.Now(), fut: &Future{done: make(chan struct{})}}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.plane != nil && !s.plane.Admit() {
		s.countMu.Lock()
		s.overloads++
		s.countMu.Unlock()
		return nil, adapt.ErrOverload
	}
	select {
	case s.intake <- p:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.countMu.Lock()
	s.proposals++
	s.countMu.Unlock()
	return p.fut, nil
}

// Close stops intake, flushes the pending batch, waits for every local
// instance (initiated and joined) to resolve, and shuts the mux down.
// The endpoint passed to NewPeer stays open. Close is idempotent.
func (s *PeerService) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.intake)
	<-s.batcherDone
	s.wg.Wait()
	s.runCancel()
	if s.ownsMux {
		_ = s.mux.Close()
	}
	return nil
}

// Abort hard-stops the member without flushing — the shutdown shape a
// crash gives it, recoverable only through the journal (see
// Service.Abort for the full contract).
func (s *PeerService) Abort() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.runCancel()
	close(s.intake)
	if s.ownsMux {
		_ = s.mux.Close()
	}
}

// Snapshot returns current counters and latency/round summaries. Only
// locally observable quantities appear: violations require cross-member
// evidence this process does not have (see check.Replay).
func (s *PeerService) Snapshot() Stats {
	var control adapt.Stats
	if s.plane != nil {
		control = s.plane.Snapshot()
	}
	s.countMu.Lock()
	defer s.countMu.Unlock()
	algs := make(map[string]int, len(s.algs))
	for k, v := range s.algs {
		algs[k] = v
	}
	return Stats{
		Proposals:        s.proposals,
		Resolved:         s.resolved,
		Failed:           s.failed,
		Instances:        s.instances,
		JoinedInstances:  s.joined,
		InstanceFailures: s.instanceFail,
		Overloads:        s.overloads,
		Latency:          stats.SummarizeDurations(s.latencies.Values()),
		Rounds:           stats.Summarize(s.rounds.Values()),
		DecisionLatency:  stats.SummarizeDurations(s.instLat.Values()),
		RoundLatency:     stats.SummarizeDurations(s.roundLat.Values()),
		BatchFill:        stats.Summarize(s.fills.Values()),
		Control:          control,
		Algorithms:       algs,
	}
}

// batchLimit returns the effective batch-size limit (the controller's
// actuation when adaptive).
func (s *PeerService) batchLimit() int {
	if s.plane != nil {
		return s.plane.BatchLimit()
	}
	return s.cfg.MaxBatch
}

// lingerFor returns the effective linger for a fresh batch.
func (s *PeerService) lingerFor() time.Duration {
	if s.plane != nil {
		return s.plane.Linger()
	}
	return s.cfg.Linger
}

// recordCut accounts one dispatched local batch's fill with both sinks
// (Stats.BatchFill and the control plane's window), whether the batch
// was flushed onto a fresh slot or rode a joined one.
func (s *PeerService) recordCut(n int) {
	fill := cutFill(n, s.batchLimit())
	s.countMu.Lock()
	s.fills.Add(fill)
	s.countMu.Unlock()
	if s.plane != nil {
		s.plane.ObserveCut(fill)
	}
}

// batcher owns slot assignment: it cuts the local intake stream into
// batches exactly like the single-process service, and additionally
// serves join signals from the mux. Initiated slots take the next free
// global slot; joins adopt the peer's slot and push nextSlot past it,
// which keeps every member's slot counter roughly in step with the
// cluster's.
func (s *PeerService) batcher() {
	defer close(s.batcherDone)
	var (
		batch   []*pending
		lingerT clock.Timer
		lingerC <-chan time.Time
	)
	stopLinger := func() {
		if lingerT != nil {
			lingerT.Stop()
			lingerT, lingerC = nil, nil
		}
	}
	flush := func() {
		stopLinger()
		if len(batch) == 0 {
			return
		}
		b := batch
		batch = nil
		s.recordCut(len(b))
		slot := s.nextSlot
		s.nextSlot += s.stride
		s.launch(slot, b, false)
	}
	for {
		select {
		case p, ok := <-s.intake:
			if !ok {
				flush()
				return
			}
			batch = append(batch, p)
			if len(batch) == 1 {
				lingerT = s.cfg.Clock.NewTimer(s.lingerFor())
				lingerC = lingerT.C()
			}
			if len(batch) >= s.batchLimit() {
				flush()
			}
		case <-lingerC:
			lingerT, lingerC = nil, nil
			var closed bool
			batch, closed = drainIntake(s.intake, batch, s.batchLimit())
			flush()
			if closed {
				return
			}
		case slot := <-s.joins:
			if slot%s.stride != s.cfg.Group {
				continue // another group's slot — not this member's to run
			}
			if s.isActive(slot) {
				continue
			}
			if s.cfg.Journal != nil {
				if _, done := s.cfg.Journal.Get(slot); done {
					continue // decided in this lifetime; retire race
				}
			}
			// A lingering local batch rides the joined slot instead of
			// waiting for its own: the join must propose something
			// anyway, and a real proposal beats a noop. Only fresh
			// slots (never seen before, so never retired locally) may
			// carry it — a stale duplicate signal for a slot that
			// already ran must not drag real proposals into a
			// mux.Open failure.
			var b []*pending
			if slot >= s.nextSlot {
				s.nextSlot = slot + s.stride
				stopLinger()
				b, batch = batch, nil
			}
			if len(b) > 0 {
				// The ride is a batch cut like any other: the fill
				// signal must see it or a mostly-joining member's
				// controller runs blind.
				s.recordCut(len(b))
			}
			s.launch(slot, b, true)
		}
	}
}

// launch claims a slot ticket (blocking — the bounded-shard
// backpressure), claims instance IDs through the journal when needed,
// and starts the slot's local run.
func (s *PeerService) launch(slot uint64, batch []*pending, joined bool) {
	select {
	case s.slots <- struct{}{}:
	case <-s.runCtx.Done():
		failBatch(batch, s.runCtx.Err())
		return
	}
	// The claim must cover joined slots too: this member's frames for
	// the slot are about to touch the network, so a restart must resume
	// past it (see Service.batcher for the block-claim rationale).
	if s.cfg.Journal != nil && slot >= s.claimedThrough {
		through, err := claimBlock(s.cfg.Journal, slot, s.cfg.MaxInflight, s.static.Name, s.cfg.Group, s.stride)
		if err != nil {
			<-s.slots
			s.failSlot(batch, err)
			return
		}
		s.claimedThrough = through
	}
	s.slotMu.Lock()
	s.active[slot] = struct{}{}
	s.slotMu.Unlock()
	s.wg.Add(1)
	go s.runSlot(slot, batch, joined)
}

// isActive reports whether the slot is currently running locally.
func (s *PeerService) isActive(slot uint64) bool {
	s.slotMu.Lock()
	defer s.slotMu.Unlock()
	_, ok := s.active[slot]
	return ok
}

// clearActive removes a finished slot from the active set.
func (s *PeerService) clearActive(slot uint64) {
	s.slotMu.Lock()
	delete(s.active, slot)
	s.slotMu.Unlock()
}

// runSlot executes this member's node of one instance: open the
// instance's virtual endpoint, run a single-member runtime.Cluster,
// journal the local decision before any future resolves, then keep
// flooding for FloodGrace before retiring the instance.
func (s *PeerService) runSlot(slot uint64, batch []*pending, joined bool) {
	defer s.wg.Done()
	defer s.clearActive(slot)
	begin := s.cfg.Clock.Now()
	slotHeld := true
	releaseSlot := func() {
		if slotHeld {
			slotHeld = false
			<-s.slots
		}
	}
	defer releaseSlot()

	ep, err := s.mux.OpenGroup(s.cfg.Group, slot)
	if err != nil {
		// A join can race the slot's retirement (one stale signal after
		// the instance finished): not a failure, nothing to do. An
		// initiated slot losing its endpoint is one.
		if !joined || len(batch) > 0 {
			s.failSlot(batch, fmt.Errorf("service: open instance %d on p%d: %w", slot, s.self, err))
		}
		return
	}
	eps := make([]transport.Transport, s.n)
	eps[s.self-1] = ep
	props := make([]model.Value, s.n)
	local := s.cfg.NoopValue
	if len(batch) > 0 {
		local = batch[0].value
	}
	props[s.self-1] = local
	var members model.PIDSet
	members.Add(s.self)
	cl, err := runtime.New(runtime.Config{
		N: s.n, T: s.cfg.T,
		Factory:     s.cfg.Factory,
		Proposals:   props,
		Endpoints:   eps,
		Members:     members,
		WaitPolicy:  s.cfg.WaitPolicy,
		BaseTimeout: s.cfg.BaseTimeout,
		MaxRounds:   s.cfg.MaxRounds,
		Clock:       s.cfg.Clock,
	})
	if err != nil {
		s.mux.RetireGroup(s.cfg.Group, slot)
		s.failSlot(batch, fmt.Errorf("service: instance %d: %w", slot, err))
		return
	}
	// Joined slots carrying no local futures may fail quietly and soon;
	// anything with real proposals aboard gets the full deadline.
	deadline := s.cfg.InstanceTimeout
	if joined && len(batch) == 0 {
		deadline = s.cfg.JoinTimeout
	}
	ctx, cancel := clock.WithTimeout(s.runCtx, s.cfg.Clock, deadline)
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		s.mux.RetireGroup(s.cfg.Group, slot)
		s.failSlot(batch, fmt.Errorf("service: instance %d: %w", slot, err))
		return
	}
	var res runtime.NodeResult
	select {
	case res = <-cl.Decisions():
	case <-ctx.Done():
	}
	value, decided := res.Decision.Get()
	decisionLat := s.cfg.Clock.Since(begin)
	if !decided {
		cl.Stop()
		s.mux.RetireGroup(s.cfg.Group, slot)
		err := fmt.Errorf("service: instance %d reached no local decision", slot)
		if ctx.Err() != nil {
			err = fmt.Errorf("service: instance %d: %w", slot, ctx.Err())
		}
		s.failSlot(batch, err)
		return
	}

	// Journal-before-complete, exactly as in the single-process service.
	// Batch counts local proposals; a joined slot's noop is a real
	// proposal, so the record never claims an impossible batch of 0.
	localBatch := len(batch)
	if localBatch == 0 {
		localBatch = 1
	}
	if s.cfg.Journal != nil {
		rec := wire.DecisionRecord{Instance: slot, Value: value, Round: res.Round, Batch: localBatch, Group: s.cfg.Group}
		if err := s.cfg.Journal.Append(rec); err != nil {
			cl.Stop()
			s.mux.RetireGroup(s.cfg.Group, slot)
			s.failSlot(batch, fmt.Errorf("service: journal instance %d: %w", slot, err))
			return
		}
	}

	dec := Decision{Instance: slot, Value: value, Round: res.Round, Batch: localBatch}
	now := s.cfg.Clock.Now()
	var latencies []time.Duration
	for _, p := range batch {
		latencies = append(latencies, now.Sub(p.enqueued))
		p.fut.resolve(dec, nil)
	}
	s.countMu.Lock()
	s.instances++
	if joined {
		s.joined++
	}
	s.resolved += len(batch)
	for _, l := range latencies {
		s.latencies.Add(l)
	}
	s.rounds.Add(int(res.Round))
	s.instLat.Add(decisionLat)
	if res.Round > 0 {
		s.roundLat.Add(decisionLat / time.Duration(res.Round))
	}
	if s.static.Name != "" {
		s.algs[s.static.Name]++
	}
	s.countMu.Unlock()
	if s.plane != nil {
		s.plane.ObserveDecision(latencies, res.Suspicions)
	}

	// The slot ticket is free from here: flood grace must not throttle
	// the next instance.
	releaseSlot()
	grace := s.cfg.Clock.NewTimer(s.cfg.FloodGrace)
	select {
	case <-grace.C():
	case <-s.runCtx.Done():
		grace.Stop()
	}
	cl.Stop()
	s.mux.RetireGroup(s.cfg.Group, slot)
}

// failSlot resolves a batch's futures with err and records the failure.
// Joined slots fail with an empty batch: only the counter moves.
func (s *PeerService) failSlot(batch []*pending, err error) {
	failBatch(batch, err)
	if s.plane != nil {
		s.plane.ObserveFailure()
	}
	s.countMu.Lock()
	s.instanceFail++
	s.failed += len(batch)
	s.countMu.Unlock()
}
