// Package service is the consensus-as-a-service layer: it multiplexes
// many concurrent consensus instances over a single cluster of live
// processes. Clients hand proposals to Propose and get back a Future;
// the service batches proposals (up to MaxBatch, waiting at most Linger),
// assigns each batch to a fresh consensus instance, and runs up to
// MaxInflight instances concurrently, each as its own runtime.Cluster
// over virtual endpoints of per-process transport.Muxes. Every instance
// therefore gets its own round loops, timeout detectors and wait policy,
// while all instances share one set of physical connections — one Hub
// mailbox or one TCP connection per ordered process pair.
//
// The decided value of an instance is, by validity, the proposal of one
// of the batch's members (proposals are spread round-robin over the n
// processes); the whole batch commits with that instance, so every
// member's Future resolves to the same Decision. Each resolved instance
// is audited with check.Instance, and any violation — which the paper
// proves cannot happen, and which the service therefore treats as a
// defect detector — is retained in the Stats snapshot.
//
// This is where the paper's "price of indulgence" becomes a service-level
// quantity: decisions per second and per-proposal latency under injected
// asynchrony, with the t+2 round floor visible as the latency baseline of
// every instance.
package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"indulgence/internal/core"
	"indulgence/internal/model"
	"indulgence/internal/stats"
	"indulgence/internal/transport"
)

// ErrClosed reports use of a closed service.
var ErrClosed = errors.New("service: closed")

// Config describes a consensus service.
type Config struct {
	// N and T describe the underlying system; T bounds tolerated crashes.
	N, T int
	// Factory builds each process's algorithm, once per instance.
	Factory model.Factory
	// WaitPolicy selects the receive discipline (default WaitUnsuspected).
	WaitPolicy core.WaitPolicy
	// BaseTimeout is the initial per-process suspicion timeout of every
	// instance (default 25ms).
	BaseTimeout time.Duration
	// MaxRounds aborts an instance's node after this many rounds
	// (default 256).
	MaxRounds model.Round
	// MaxBatch is the largest number of proposals decided by one instance
	// (default 8).
	MaxBatch int
	// Linger is how long an under-full batch waits for more proposals
	// before it is cut (default 2ms).
	Linger time.Duration
	// MaxInflight bounds the number of concurrently running instances
	// (default 16). When every slot is busy, batches queue.
	MaxInflight int
	// InstanceTimeout is the per-instance deadline (default 30s). An
	// instance that misses it fails its batch's futures.
	InstanceTimeout time.Duration
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) withDefaults() Config {
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 8
	}
	if cfg.Linger == 0 {
		cfg.Linger = 2 * time.Millisecond
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 16
	}
	if cfg.InstanceTimeout == 0 {
		cfg.InstanceTimeout = 30 * time.Second
	}
	return cfg
}

// Decision is the resolution of a proposal: the instance it was batched
// into and the value that instance decided.
type Decision struct {
	// Instance identifies the consensus instance that committed the batch.
	Instance uint64
	// Value is the instance's decided value (the chosen batch member).
	Value model.Value
	// Round is the instance's global decision round — the slowest
	// process's decision round, where the t+2 floor shows.
	Round model.Round
	// Batch is the number of proposals committed by the instance.
	Batch int
}

// Future resolves to the Decision of the instance a proposal was batched
// into.
type Future struct {
	done chan struct{}
	dec  Decision
	err  error
}

// Wait blocks until the proposal's instance resolves or ctx is done.
func (f *Future) Wait(ctx context.Context) (Decision, error) {
	select {
	case <-f.done:
		return f.dec, f.err
	case <-ctx.Done():
		return Decision{}, ctx.Err()
	}
}

// resolve fills the future exactly once.
func (f *Future) resolve(dec Decision, err error) {
	f.dec, f.err = dec, err
	close(f.done)
}

// pending is one enqueued proposal.
type pending struct {
	value    model.Value
	enqueued time.Time
	fut      *Future
}

// Stats is a point-in-time snapshot of service counters.
type Stats struct {
	// Proposals counts accepted proposals; Resolved and Failed partition
	// the ones whose futures have fired.
	Proposals, Resolved, Failed int
	// Instances counts decided instances; InstanceFailures counts
	// instances that timed out or errored without a decision.
	Instances, InstanceFailures int
	// Violations lists every consensus-property violation detected by
	// check.Instance over resolved instances — validity, agreement, and
	// termination (a correct process undecided at instance end, e.g. on
	// an instance timeout). The paper's theorems say the safety entries
	// stay empty; the service checks anyway.
	Violations []string
	// Latency summarizes per-proposal latency (enqueue to resolution)
	// over a bounded uniform sample of the service's lifetime (the
	// retained history is capped, so Count may be below Resolved on very
	// long runs).
	Latency stats.LatencySummary
	// Rounds summarizes global decision rounds across decided instances —
	// the t+2 price floor in round units — over the same kind of bounded
	// sample.
	Rounds stats.Summary
}

// Service multiplexes consensus instances over one live cluster.
type Service struct {
	cfg   Config
	muxes []*transport.Mux

	intake      chan *pending
	slots       chan struct{}
	runCtx      context.Context
	runCancel   context.CancelFunc
	batcherDone chan struct{}
	wg          sync.WaitGroup

	// mu guards closed: Propose holds it for reading across the intake
	// send so Close never closes the channel under a sender.
	mu     sync.RWMutex
	closed bool

	// nextInstance is touched only by the batcher goroutine.
	nextInstance uint64

	// countMu guards the counters, which instance goroutines update while
	// proposers hold mu only for reading.
	countMu      sync.Mutex
	proposals    int
	resolved     int
	failed       int
	instances    int
	instanceFail int
	violations   []string
	latencies    reservoir[time.Duration]
	rounds       reservoir[int]
}

// maxSamples bounds the latency/round history a long-running service
// retains: summaries are computed over a uniform reservoir sample
// (Algorithm R) of the stream, so memory and Snapshot cost stay constant
// while the percentiles stay unbiased over the whole lifetime.
const maxSamples = 1 << 16

// reservoir keeps a bounded uniform sample of a stream. Not safe for
// concurrent use; the service serializes adds under countMu.
type reservoir[T any] struct {
	seen int
	buf  []T
}

func (r *reservoir[T]) add(x T) {
	r.seen++
	if len(r.buf) < maxSamples {
		r.buf = append(r.buf, x)
		return
	}
	if i := rand.Intn(r.seen); i < maxSamples {
		r.buf[i] = x
	}
}

// New starts a service over one transport endpoint per process
// (endpoints[i] must answer Self() == i+1). The service wraps each
// endpoint in a transport.Mux and owns all reads from it; the endpoints
// themselves remain owned by the caller and are not closed by Close.
func New(cfg Config, endpoints []transport.Transport) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		return nil, fmt.Errorf("service: need at least 2 processes, got %d", cfg.N)
	}
	if len(endpoints) != cfg.N {
		return nil, fmt.Errorf("service: need %d endpoints, got %d", cfg.N, len(endpoints))
	}
	if cfg.Factory == nil {
		return nil, errors.New("service: nil factory")
	}
	for i, ep := range endpoints {
		if ep.Self() != model.ProcessID(i+1) {
			return nil, fmt.Errorf("service: endpoint %d answers Self()=%d", i+1, ep.Self())
		}
	}
	s := &Service{
		cfg:         cfg,
		muxes:       make([]*transport.Mux, cfg.N),
		intake:      make(chan *pending, cfg.MaxBatch*cfg.MaxInflight),
		slots:       make(chan struct{}, cfg.MaxInflight),
		batcherDone: make(chan struct{}),
	}
	for i, ep := range endpoints {
		s.muxes[i] = transport.NewMux(ep)
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	go s.batcher()
	return s, nil
}

// Propose enqueues a proposal and returns its Future. It blocks only when
// the intake buffer is full (every instance slot busy and batches queued),
// providing natural backpressure.
func (s *Service) Propose(ctx context.Context, v model.Value) (*Future, error) {
	p := &pending{value: v, enqueued: time.Now(), fut: &Future{done: make(chan struct{})}}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	select {
	case s.intake <- p:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.countMu.Lock()
	s.proposals++
	s.countMu.Unlock()
	return p.fut, nil
}

// Close stops intake, flushes the pending batch, waits for every inflight
// instance to resolve, and shuts the muxes down. Endpoints passed to New
// stay open. Close is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.intake)
	<-s.batcherDone
	s.wg.Wait()
	s.runCancel()
	for _, m := range s.muxes {
		_ = m.Close()
	}
	return nil
}

// Snapshot returns current counters and latency/round summaries.
func (s *Service) Snapshot() Stats {
	s.countMu.Lock()
	defer s.countMu.Unlock()
	return Stats{
		Proposals:        s.proposals,
		Resolved:         s.resolved,
		Failed:           s.failed,
		Instances:        s.instances,
		InstanceFailures: s.instanceFail,
		Violations:       append([]string(nil), s.violations...),
		Latency:          stats.SummarizeDurations(s.latencies.buf),
		Rounds:           stats.Summarize(s.rounds.buf),
	}
}

// batcher cuts the intake stream into batches: a batch closes when it
// reaches MaxBatch proposals or its oldest proposal has waited Linger.
// Each batch then claims an instance slot (blocking — the bounded-shard
// backpressure) and launches its instance.
func (s *Service) batcher() {
	defer close(s.batcherDone)
	var (
		batch   []*pending
		lingerT *time.Timer
		lingerC <-chan time.Time
	)
	stopLinger := func() {
		if lingerT != nil {
			lingerT.Stop()
			lingerT, lingerC = nil, nil
		}
	}
	flush := func() {
		stopLinger()
		if len(batch) == 0 {
			return
		}
		b := batch
		batch = nil
		select {
		case s.slots <- struct{}{}:
		case <-s.runCtx.Done():
			failBatch(b, s.runCtx.Err())
			return
		}
		instance := s.nextInstance
		s.nextInstance++
		s.wg.Add(1)
		go s.runInstance(instance, b)
	}
	for {
		select {
		case p, ok := <-s.intake:
			if !ok {
				flush()
				return
			}
			batch = append(batch, p)
			if len(batch) == 1 {
				lingerT = time.NewTimer(s.cfg.Linger)
				lingerC = lingerT.C
			}
			if len(batch) >= s.cfg.MaxBatch {
				flush()
			}
		case <-lingerC:
			lingerT, lingerC = nil, nil
			flush()
		}
	}
}

// failBatch resolves every future of a batch with err.
func failBatch(batch []*pending, err error) {
	for _, p := range batch {
		p.fut.resolve(Decision{}, err)
	}
}
