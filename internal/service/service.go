// Package service is the consensus-as-a-service layer: it multiplexes
// many concurrent consensus instances over a single cluster of live
// processes. Clients hand proposals to Propose and get back a Future;
// the service batches proposals (up to MaxBatch, waiting at most Linger),
// assigns each batch to a fresh consensus instance, and runs up to
// MaxInflight instances concurrently, each as its own runtime.Cluster
// over virtual endpoints of per-process transport.Muxes. Every instance
// therefore gets its own round loops, timeout detectors and wait policy,
// while all instances share one set of physical connections — one Hub
// mailbox or one TCP connection per ordered process pair.
//
// The decided value of an instance is, by validity, the proposal of one
// of the batch's members (proposals are spread round-robin over the n
// processes); the whole batch commits with that instance, so every
// member's Future resolves to the same Decision. Each resolved instance
// is audited with check.Instance, and any violation — which the paper
// proves cannot happen, and which the service therefore treats as a
// defect detector — is retained in the Stats snapshot.
//
// With a journal configured, every decision is made durable before its
// futures resolve (journal-before-complete), and a restarted service
// recovers from the log: it serves journaled decisions via Lookup
// without re-running consensus and resumes its instance-ID frontier past
// the highest journaled instance, so the paper's per-decision price is
// paid once per decision, not once per process lifetime.
//
// This is where the paper's "price of indulgence" becomes a service-level
// quantity: decisions per second and per-proposal latency under injected
// asynchrony, with the t+2 round floor visible as the latency baseline of
// every instance.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"indulgence/internal/core"
	"indulgence/internal/journal"
	"indulgence/internal/model"
	"indulgence/internal/stats"
	"indulgence/internal/transport"
)

// ErrClosed reports use of a closed service.
var ErrClosed = errors.New("service: closed")

// Config describes a consensus service.
type Config struct {
	// N and T describe the underlying system; T bounds tolerated crashes.
	N, T int
	// Factory builds each process's algorithm, once per instance.
	Factory model.Factory
	// WaitPolicy selects the receive discipline (default WaitUnsuspected).
	WaitPolicy core.WaitPolicy
	// BaseTimeout is the initial per-process suspicion timeout of every
	// instance (default 25ms).
	BaseTimeout time.Duration
	// MaxRounds aborts an instance's node after this many rounds
	// (default 256).
	MaxRounds model.Round
	// MaxBatch is the largest number of proposals decided by one instance
	// (default 8).
	MaxBatch int
	// Linger is how long an under-full batch waits for more proposals
	// before it is cut (default 2ms).
	Linger time.Duration
	// MaxInflight bounds the number of concurrently running instances
	// (default 16). When every slot is busy, batches queue.
	MaxInflight int
	// InstanceTimeout is the per-instance deadline (default 30s). An
	// instance that misses it fails its batch's futures.
	InstanceTimeout time.Duration
	// Journal, when non-nil, makes decisions durable: every instance's
	// decision record is appended and fsynced (group-committed across
	// concurrent instances) before the batch's futures resolve —
	// journal-before-complete — and the service resumes its instance-ID
	// frontier past the highest journaled instance, so a restarted
	// service never re-runs an instance it already decided. The journal
	// is owned by the caller and is not closed by Close.
	Journal *journal.Journal
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) withDefaults() Config {
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 8
	}
	if cfg.Linger == 0 {
		cfg.Linger = 2 * time.Millisecond
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 16
	}
	if cfg.InstanceTimeout == 0 {
		cfg.InstanceTimeout = 30 * time.Second
	}
	return cfg
}

// Decision is the resolution of a proposal: the instance it was batched
// into and the value that instance decided.
type Decision struct {
	// Instance identifies the consensus instance that committed the batch.
	Instance uint64
	// Value is the instance's decided value (the chosen batch member).
	Value model.Value
	// Round is the instance's global decision round — the slowest
	// process's decision round, where the t+2 floor shows.
	Round model.Round
	// Batch is the number of proposals committed by the instance.
	Batch int
}

// Future resolves to the Decision of the instance a proposal was batched
// into.
type Future struct {
	done chan struct{}
	dec  Decision
	err  error
}

// Wait blocks until the proposal's instance resolves or ctx is done.
func (f *Future) Wait(ctx context.Context) (Decision, error) {
	select {
	case <-f.done:
		return f.dec, f.err
	case <-ctx.Done():
		return Decision{}, ctx.Err()
	}
}

// resolve fills the future exactly once.
func (f *Future) resolve(dec Decision, err error) {
	f.dec, f.err = dec, err
	close(f.done)
}

// pending is one enqueued proposal.
type pending struct {
	value    model.Value
	enqueued time.Time
	fut      *Future
}

// Stats is a point-in-time snapshot of service counters.
type Stats struct {
	// Proposals counts accepted proposals; Resolved and Failed partition
	// the ones whose futures have fired.
	Proposals, Resolved, Failed int
	// Instances counts decided instances; InstanceFailures counts
	// instances that timed out or errored without a decision.
	Instances, InstanceFailures int
	// JoinedInstances counts instances this process adopted on a peer's
	// signal rather than initiating (multi-process members only; always
	// 0 for the single-process service).
	JoinedInstances int
	// Violations lists every consensus-property violation detected by
	// check.Instance over resolved instances — validity, agreement, and
	// termination (a correct process undecided at instance end, e.g. on
	// an instance timeout). The paper's theorems say the safety entries
	// stay empty; the service checks anyway.
	Violations []string
	// Latency summarizes per-proposal latency (enqueue to resolution)
	// over a bounded uniform sample of the service's lifetime (the
	// retained history is capped, so Count may be below Resolved on very
	// long runs).
	Latency stats.LatencySummary
	// Rounds summarizes global decision rounds across decided instances —
	// the t+2 price floor in round units — over the same kind of bounded
	// sample.
	Rounds stats.Summary
}

// Service multiplexes consensus instances over one live cluster.
type Service struct {
	cfg   Config
	muxes []*transport.Mux

	intake      chan *pending
	slots       chan struct{}
	runCtx      context.Context
	runCancel   context.CancelFunc
	batcherDone chan struct{}
	wg          sync.WaitGroup

	// mu guards closed: Propose holds it for reading across the intake
	// send so Close never closes the channel under a sender.
	mu     sync.RWMutex
	closed bool

	// nextInstance and claimedThrough are touched only by the batcher
	// goroutine. nextInstance starts at the journal's recovered
	// frontier, so instance IDs are unique across process lifetimes;
	// claimedThrough is the first instance ID not yet covered by a
	// journaled start claim (IDs are claimed in MaxInflight-sized
	// blocks, so a crash wastes at most one block of IDs).
	nextInstance   uint64
	claimedThrough uint64

	// countMu guards the counters, which instance goroutines update while
	// proposers hold mu only for reading.
	countMu      sync.Mutex
	proposals    int
	resolved     int
	failed       int
	instances    int
	instanceFail int
	violations   []string
	latencies    *stats.Reservoir[time.Duration]
	rounds       *stats.Reservoir[int]
}

// maxSamples bounds the latency/round history a long-running service
// retains: summaries are computed over a uniform reservoir sample of the
// stream (stats.Reservoir), so memory and Snapshot cost stay constant
// while the percentiles stay unbiased over the whole lifetime.
const maxSamples = 1 << 16

// New starts a service over one transport endpoint per process
// (endpoints[i] must answer Self() == i+1). The service wraps each
// endpoint in a transport.Mux and owns all reads from it; the endpoints
// themselves remain owned by the caller and are not closed by Close.
func New(cfg Config, endpoints []transport.Transport) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		return nil, fmt.Errorf("service: need at least 2 processes, got %d", cfg.N)
	}
	if len(endpoints) != cfg.N {
		return nil, fmt.Errorf("service: need %d endpoints, got %d", cfg.N, len(endpoints))
	}
	if cfg.Factory == nil {
		return nil, errors.New("service: nil factory")
	}
	for i, ep := range endpoints {
		if ep.Self() != model.ProcessID(i+1) {
			return nil, fmt.Errorf("service: endpoint %d answers Self()=%d", i+1, ep.Self())
		}
	}
	s := &Service{
		cfg:         cfg,
		muxes:       make([]*transport.Mux, cfg.N),
		intake:      make(chan *pending, cfg.MaxBatch*cfg.MaxInflight),
		slots:       make(chan struct{}, cfg.MaxInflight),
		batcherDone: make(chan struct{}),
		latencies:   stats.NewReservoir[time.Duration](maxSamples),
		rounds:      stats.NewReservoir[int](maxSamples),
	}
	for i, ep := range endpoints {
		s.muxes[i] = transport.NewMux(ep)
	}
	if cfg.Journal != nil {
		// Recovery: resume the instance-ID frontier past every journaled
		// start claim and decision, and bulk-retire the journaled range
		// on every mux, so stale flood frames from a previous process
		// lifetime are dropped instead of buffering for instances nobody
		// will open.
		s.nextInstance = cfg.Journal.Frontier()
		s.claimedThrough = s.nextInstance
		for _, m := range s.muxes {
			m.RetireBelow(s.nextInstance)
		}
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	go s.batcher()
	return s, nil
}

// Lookup serves the journaled decision of an already-decided instance
// without re-running consensus — the recovery read path. It reports
// false when the service has no journal or the instance is not on
// record.
func (s *Service) Lookup(instance uint64) (Decision, bool) {
	if s.cfg.Journal == nil {
		return Decision{}, false
	}
	rec, ok := s.cfg.Journal.Get(instance)
	if !ok {
		return Decision{}, false
	}
	return Decision{Instance: rec.Instance, Value: rec.Value, Round: rec.Round, Batch: rec.Batch}, true
}

// Propose enqueues a proposal and returns its Future. It blocks only when
// the intake buffer is full (every instance slot busy and batches queued),
// providing natural backpressure.
func (s *Service) Propose(ctx context.Context, v model.Value) (*Future, error) {
	p := &pending{value: v, enqueued: time.Now(), fut: &Future{done: make(chan struct{})}}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	select {
	case s.intake <- p:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.countMu.Lock()
	s.proposals++
	s.countMu.Unlock()
	return p.fut, nil
}

// Close stops intake, flushes the pending batch, waits for every inflight
// instance to resolve, and shuts the muxes down. Endpoints passed to New
// stay open. Close is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.intake)
	<-s.batcherDone
	s.wg.Wait()
	s.runCancel()
	for _, m := range s.muxes {
		_ = m.Close()
	}
	return nil
}

// Abort hard-stops the service without flushing — the shutdown shape a
// crash gives it, recoverable only through the journal (the
// crash-restart tests lean on it). In-flight instances are cancelled,
// queued batches fail their futures, and the muxes close so a successor
// service can take over the endpoints (closed muxes fail every further
// send, so leftover goroutines are crash-stopped off the shared
// transport). Decision records already durable survive; an instance
// caught between its journal append and its futures resolving may leave
// clients unanswered about a decision that is on record — exactly the
// window a real crash opens, and the reason recovery trusts the
// journal, not the clients. Unlike Close, Abort waits for nothing: the
// batcher and in-flight instance goroutines unwind on their own once
// cancelled (a crash cannot wait for a goroutine that may itself be
// blocked on the journal). Endpoints and the journal stay with their
// owners.
func (s *Service) Abort() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.runCancel()
	close(s.intake)
	for _, m := range s.muxes {
		_ = m.Close()
	}
}

// Snapshot returns current counters and latency/round summaries.
func (s *Service) Snapshot() Stats {
	s.countMu.Lock()
	defer s.countMu.Unlock()
	return Stats{
		Proposals:        s.proposals,
		Resolved:         s.resolved,
		Failed:           s.failed,
		Instances:        s.instances,
		InstanceFailures: s.instanceFail,
		Violations:       append([]string(nil), s.violations...),
		Latency:          stats.SummarizeDurations(s.latencies.Values()),
		Rounds:           stats.Summarize(s.rounds.Values()),
	}
}

// batcher cuts the intake stream into batches: a batch closes when it
// reaches MaxBatch proposals or its oldest proposal has waited Linger.
// Each batch then claims an instance slot (blocking — the bounded-shard
// backpressure) and launches its instance.
func (s *Service) batcher() {
	defer close(s.batcherDone)
	var (
		batch   []*pending
		lingerT *time.Timer
		lingerC <-chan time.Time
	)
	stopLinger := func() {
		if lingerT != nil {
			lingerT.Stop()
			lingerT, lingerC = nil, nil
		}
	}
	flush := func() {
		stopLinger()
		if len(batch) == 0 {
			return
		}
		b := batch
		batch = nil
		select {
		case s.slots <- struct{}{}:
		case <-s.runCtx.Done():
			failBatch(b, s.runCtx.Err())
			return
		}
		instance := s.nextInstance
		s.nextInstance++
		// Claim instance IDs in blocks before any of their frames can
		// reach the network: the recovered frontier must cover
		// crash-undecided instances too, or their in-flight frames
		// could leak into a successor service's instance of the same
		// ID. One written (not fsynced — see journal.AppendStart)
		// claim covers MaxInflight launches.
		if s.cfg.Journal != nil && instance >= s.claimedThrough {
			through, err := claimBlock(s.cfg.Journal, instance, s.cfg.MaxInflight)
			if err != nil {
				<-s.slots
				failBatch(b, err)
				return
			}
			s.claimedThrough = through
		}
		s.wg.Add(1)
		go s.runInstance(instance, b)
	}
	for {
		select {
		case p, ok := <-s.intake:
			if !ok {
				flush()
				return
			}
			batch = append(batch, p)
			if len(batch) == 1 {
				lingerT = time.NewTimer(s.cfg.Linger)
				lingerC = lingerT.C
			}
			if len(batch) >= s.cfg.MaxBatch {
				flush()
			}
		case <-lingerC:
			lingerT, lingerC = nil, nil
			flush()
		}
	}
}

// failBatch resolves every future of a batch with err.
func failBatch(batch []*pending, err error) {
	for _, p := range batch {
		p.fut.resolve(Decision{}, err)
	}
}

// claimBlock journals a start-claim covering instance and the rest of
// its inflight-sized ID block, returning the new claimed-through
// frontier (first ID not covered). Both batchers share it so the claim
// arithmetic — which restart recovery depends on — has one owner.
func claimBlock(j *journal.Journal, instance uint64, inflight int) (uint64, error) {
	claim := instance + uint64(inflight) - 1
	if err := j.AppendStart(claim); err != nil {
		return 0, fmt.Errorf("service: claim instances through %d: %w", claim, err)
	}
	return claim + 1, nil
}
