// Package service is the consensus-as-a-service layer: it multiplexes
// many concurrent consensus instances over a single cluster of live
// processes. Clients hand proposals to Propose and get back a Future;
// the service batches proposals (up to MaxBatch, waiting at most Linger),
// assigns each batch to a fresh consensus instance, and runs up to
// MaxInflight instances concurrently, each as its own runtime.Cluster
// over virtual endpoints of per-process transport.Muxes. Every instance
// therefore gets its own round loops, timeout detectors and wait policy,
// while all instances share one set of physical connections — one Hub
// mailbox or one TCP connection per ordered process pair.
//
// The decided value of an instance is, by validity, the proposal of one
// of the batch's members (proposals are spread round-robin over the n
// processes); the whole batch commits with that instance, so every
// member's Future resolves to the same Decision. Each resolved instance
// is audited with check.Instance, and any violation — which the paper
// proves cannot happen, and which the service therefore treats as a
// defect detector — is retained in the Stats snapshot.
//
// With a journal configured, every decision is made durable before its
// futures resolve (journal-before-complete), and a restarted service
// recovers from the log: it serves journaled decisions via Lookup
// without re-running consensus and resumes its instance-ID frontier past
// the highest journaled instance, so the paper's per-decision price is
// paid once per decision, not once per process lifetime.
//
// This is where the paper's "price of indulgence" becomes a service-level
// quantity: decisions per second and per-proposal latency under injected
// asynchrony, with the t+2 round floor visible as the latency baseline of
// every instance.
package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"indulgence/internal/adapt"
	"indulgence/internal/chaos/clock"
	"indulgence/internal/core"
	"indulgence/internal/journal"
	"indulgence/internal/metrics"
	"indulgence/internal/model"
	"indulgence/internal/runtime"
	"indulgence/internal/stats"
	"indulgence/internal/transport"
	"indulgence/internal/wire"
)

// ErrClosed reports use of a closed service.
var ErrClosed = errors.New("service: closed")

// Config describes a consensus service.
type Config struct {
	// N and T describe the underlying system; T bounds tolerated crashes.
	N, T int
	// Factory builds each process's algorithm, once per instance.
	Factory model.Factory
	// WaitPolicy selects the receive discipline (default WaitUnsuspected).
	WaitPolicy core.WaitPolicy
	// BaseTimeout is the initial per-process suspicion timeout of every
	// instance (default 25ms).
	BaseTimeout time.Duration
	// MaxRounds aborts an instance's node after this many rounds
	// (default 256).
	MaxRounds model.Round
	// MaxBatch is the largest number of proposals decided by one instance
	// (default 8).
	MaxBatch int
	// Linger is how long an under-full batch waits for more proposals
	// before it is cut (default 2ms).
	Linger time.Duration
	// MaxInflight bounds the number of concurrently running instances
	// (default 16). When every slot is busy, batches queue.
	MaxInflight int
	// InstanceTimeout is the per-instance deadline (default 30s). An
	// instance that misses it fails its batch's futures.
	InstanceTimeout time.Duration
	// Journal, when non-nil, makes decisions durable: every instance's
	// decision record is appended and fsynced (group-committed across
	// concurrent instances) before the batch's futures resolve —
	// journal-before-complete — and the service resumes its instance-ID
	// frontier past the highest journaled instance, so a restarted
	// service never re-runs an instance it already decided. The journal
	// is owned by the caller and is not closed by Close.
	Journal *journal.Journal
	// Adaptive, when non-nil, attaches the feedback control plane
	// (internal/adapt): MaxBatch and Linger become the controller's
	// starting point instead of fixed constants, saturation sheds
	// proposals with adapt.ErrOverload, and — with SelectAlgorithms —
	// every instance runs the algorithm the selector currently trusts,
	// its choice journaled in the instance's start claim. The intake
	// buffer is sized to the controller's batch ceiling.
	Adaptive *adapt.Config
	// OnInstance, when non-nil, is invoked on the instance goroutine
	// after the instance's cluster is assembled and immediately before
	// its rounds start — the fault-injection and observability hook the
	// live experiments and the chaos harness use to crash processes or
	// delay links of a specific instance. The hook may retain cl to
	// inject faults for as long as the instance runs (Crash is safe at
	// any point of the cluster's lifetime, and is a no-op once the
	// instance has stopped), but must not call cl's run/stop methods.
	OnInstance func(instance uint64, cl *runtime.Cluster)
	// Clock is the time source for batching lingers, instance deadlines,
	// latency accounting and the control loop (default the wall clock).
	// The chaos harness injects a virtual clock here and threads it
	// through every instance's runtime cluster.
	Clock clock.Clock
	// Metrics, when non-nil, registers the service's instruments on this
	// registry, every series labelled with the service's group:
	// proposal/decision/failure counters, suspicion events (threaded down
	// to every instance's timeout detectors), proposal- and
	// decision-latency histograms, and — the paper's price gap as a live
	// series — indulgence_rounds_per_decision histograms per algorithm
	// rung. The registry is shared with the adaptive control plane, and —
	// for a service that owns its muxes — with per-group frame counters.
	// Snapshots of the registry are pure functions of the event schedule
	// when the service runs on a virtual clock (see internal/metrics).
	Metrics *metrics.Registry
	// Group and Groups place the service in a sharded deployment
	// (internal/shard): the service runs consensus group Group of Groups
	// total, and owns the strided slice of the global instance-ID space
	// congruent to Group modulo Groups — group g of G assigns instances
	// g, g+G, g+2G, … — so every group's IDs are globally unique and
	// check.Replay can treat an instance ID under two groups as a
	// violation. The defaults (0 and 1) are the single-group service,
	// whose instance IDs and wire frames are unchanged from before
	// groups existed.
	Group  uint64
	Groups int
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) withDefaults() Config {
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 8
	}
	if cfg.Linger == 0 {
		cfg.Linger = 2 * time.Millisecond
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 16
	}
	if cfg.InstanceTimeout == 0 {
		cfg.InstanceTimeout = 30 * time.Second
	}
	if cfg.Groups == 0 {
		cfg.Groups = 1
	}
	cfg.Clock = clock.Or(cfg.Clock)
	return cfg
}

// Decision is the resolution of a proposal: the instance it was batched
// into and the value that instance decided.
type Decision struct {
	// Instance identifies the consensus instance that committed the batch.
	Instance uint64
	// Value is the instance's decided value (the chosen batch member).
	Value model.Value
	// Round is the instance's global decision round — the slowest
	// process's decision round, where the t+2 floor shows.
	Round model.Round
	// Batch is the number of proposals committed by the instance.
	Batch int
	// Class is the highest SLO class among the batch's proposals (0 for
	// unclassed traffic) — the class the instance was journaled under.
	Class int
}

// Future resolves to the Decision of the instance a proposal was batched
// into.
type Future struct {
	done chan struct{}
	dec  Decision
	err  error
}

// Wait blocks until the proposal's instance resolves or ctx is done.
func (f *Future) Wait(ctx context.Context) (Decision, error) {
	select {
	case <-f.done:
		return f.dec, f.err
	case <-ctx.Done():
		return Decision{}, ctx.Err()
	}
}

// resolve fills the future exactly once.
func (f *Future) resolve(dec Decision, err error) {
	f.dec, f.err = dec, err
	close(f.done)
}

// pending is one enqueued proposal.
type pending struct {
	value    model.Value
	class    int
	enqueued time.Time
	fut      *Future
}

// Stats is a point-in-time snapshot of service counters.
type Stats struct {
	// Proposals counts accepted proposals; Resolved and Failed partition
	// the ones whose futures have fired.
	Proposals, Resolved, Failed int
	// Instances counts decided instances; InstanceFailures counts
	// instances that timed out or errored without a decision.
	Instances, InstanceFailures int
	// JoinedInstances counts instances this process adopted on a peer's
	// signal rather than initiating (multi-process members only; always
	// 0 for the single-process service).
	JoinedInstances int
	// Violations lists every consensus-property violation detected by
	// check.Instance over resolved instances — validity, agreement, and
	// termination (a correct process undecided at instance end, e.g. on
	// an instance timeout). The paper's theorems say the safety entries
	// stay empty; the service checks anyway.
	Violations []string
	// Latency summarizes per-proposal latency (enqueue to resolution)
	// over a bounded uniform sample of the service's lifetime (the
	// retained history is capped, so Count may be below Resolved on very
	// long runs).
	Latency stats.LatencySummary
	// Rounds summarizes global decision rounds across decided instances —
	// the t+2 price floor in round units — over the same kind of bounded
	// sample.
	Rounds stats.Summary
	// DecisionLatency summarizes per-instance latency from batch cut to
	// decision — the consensus cost alone, with queueing and linger
	// excluded — over the same kind of bounded sample.
	DecisionLatency stats.LatencySummary
	// RoundLatency summarizes the wall-clock cost of one round
	// (per-instance decision latency divided by its decision round):
	// the quantity that turns the paper's round prices into seconds.
	RoundLatency stats.LatencySummary
	// BatchFill summarizes the fill of cut batches as a percentage of
	// the effective batch limit at each cut (can exceed 100 when the
	// controller shrank the limit under a filling batch).
	BatchFill stats.Summary
	// Overloads counts proposals shed by admission control with
	// adapt.ErrOverload (always 0 without an adaptive config).
	Overloads int
	// OverloadsByClass splits Overloads per SLO class (index = class;
	// length = highest class the service has seen + 1).
	OverloadsByClass []int
	// ResolvedByClass splits Resolved per SLO class.
	ResolvedByClass []int
	// ClassLatency summarizes per-proposal latency per SLO class over
	// the same kind of bounded sample as Latency.
	ClassLatency []stats.LatencySummary
	// Control is the adaptive control plane's snapshot: the current
	// effective batch/linger, adjustment and transition counts, and the
	// selector's current algorithm. Zero when the service runs static.
	Control adapt.Stats
	// Algorithms counts decided instances per algorithm name (the
	// statically configured algorithm's name when selection is off, as
	// probed from the factory; empty names are not counted).
	Algorithms map[string]int
}

// Service multiplexes consensus instances over one live cluster.
type Service struct {
	cfg   Config
	muxes []*transport.Mux
	// ownsMuxes reports whether Close/Abort shut the muxes down: true
	// when New built them, false when a shard runtime shares one set of
	// muxes across many group services (NewOnMuxes).
	ownsMuxes bool
	// stride is uint64(cfg.Groups): the service's instance IDs advance
	// by it, keeping every assigned ID congruent to cfg.Group.
	stride uint64

	// static is the fallback algorithm choice built from Config (its
	// Name probed from the factory); plane is the adaptive control
	// plane, nil for a statically configured service.
	static adapt.Choice
	plane  *adapt.Plane

	intake      chan *pending
	slots       chan struct{}
	runCtx      context.Context
	runCancel   context.CancelFunc
	batcherDone chan struct{}
	wg          sync.WaitGroup

	// mu guards closed: Propose holds it for reading across the intake
	// send so Close never closes the channel under a sender.
	mu     sync.RWMutex
	closed bool

	// nextInstance and claimedThrough are touched only by the batcher
	// goroutine. nextInstance starts at the journal's recovered
	// frontier, so instance IDs are unique across process lifetimes;
	// claimedThrough is the first instance ID not yet covered by a
	// journaled start claim (IDs are claimed in MaxInflight-sized
	// blocks, so a crash wastes at most one block of IDs).
	nextInstance   uint64
	claimedThrough uint64

	// countMu guards the counters, which instance goroutines update while
	// proposers hold mu only for reading.
	countMu      sync.Mutex
	proposals    int
	resolved     int
	failed       int
	instances    int
	instanceFail int
	overloads    int
	violations   []string
	latencies    *stats.Reservoir[time.Duration]
	rounds       *stats.Reservoir[int]
	instLat      *stats.Reservoir[time.Duration]
	roundLat     *stats.Reservoir[time.Duration]
	fills        *stats.Reservoir[int]
	algs         map[string]int
	// Per-class accounting (index = SLO class). maxClass is the highest
	// class any proposal has carried; Snapshot trims the exported
	// slices to it. classLat reservoirs allocate lazily per class.
	maxClass    int
	overloadsBy [adapt.MaxClasses]int
	resolvedBy  [adapt.MaxClasses]int
	classLat    [adapt.MaxClasses]*stats.Reservoir[time.Duration]

	// Registry instruments (nil without Config.Metrics; nil instruments
	// no-op). algHist holds the per-algorithm rounds-per-decision
	// histograms, registered lazily at an algorithm's first decision;
	// countMu guards it.
	reg           *metrics.Registry
	metricsLabels []metrics.Label
	mProposals    *metrics.Counter
	mResolved     *metrics.Counter
	mFailed       *metrics.Counter
	mDecisions    *metrics.Counter
	mInstFail     *metrics.Counter
	mSuspicions   *metrics.Counter
	mPropLat      *metrics.Histogram
	mDecLat       *metrics.Histogram
	algHist       map[string]*metrics.Histogram
}

// maxSamples bounds the latency/round history a long-running service
// retains: summaries are computed over a uniform reservoir sample of the
// stream (stats.Reservoir), so memory and Snapshot cost stay constant
// while the percentiles stay unbiased over the whole lifetime.
const maxSamples = 1 << 16

// New starts a service over one transport endpoint per process
// (endpoints[i] must answer Self() == i+1). The service wraps each
// endpoint in a transport.Mux and owns all reads from it; the endpoints
// themselves remain owned by the caller and are not closed by Close.
func New(cfg Config, endpoints []transport.Transport) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.N >= 2 && len(endpoints) != cfg.N {
		return nil, fmt.Errorf("service: need %d endpoints, got %d", cfg.N, len(endpoints))
	}
	for i, ep := range endpoints {
		if ep.Self() != model.ProcessID(i+1) {
			return nil, fmt.Errorf("service: endpoint %d answers Self()=%d", i+1, ep.Self())
		}
	}
	muxes := make([]*transport.Mux, len(endpoints))
	for i, ep := range endpoints {
		muxes[i] = transport.NewMux(ep)
	}
	s, err := newService(cfg, muxes, true)
	if err != nil {
		for _, m := range muxes {
			_ = m.Close()
		}
		return nil, err
	}
	return s, nil
}

// NewOnMuxes starts a service over already-built muxes — the sharded
// runtime's constructor, where many group services (each with its own
// cfg.Group) multiplex over one set of muxes per member process. The
// muxes stay owned by the caller: Close and Abort leave them open, and
// the service confines itself to its group's streams (OpenGroup /
// RetireGroup under cfg.Group), so sibling groups never observe it.
func NewOnMuxes(cfg Config, muxes []*transport.Mux) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.N >= 2 && len(muxes) != cfg.N {
		return nil, fmt.Errorf("service: need %d muxes, got %d", cfg.N, len(muxes))
	}
	for i, m := range muxes {
		if m.Self() != model.ProcessID(i+1) {
			return nil, fmt.Errorf("service: mux %d answers Self()=%d", i+1, m.Self())
		}
	}
	return newService(cfg, muxes, false)
}

// newService is the shared constructor behind New and NewOnMuxes; cfg
// already has defaults applied and muxes are validated.
func newService(cfg Config, muxes []*transport.Mux, ownsMuxes bool) (*Service, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("service: need at least 2 processes, got %d", cfg.N)
	}
	if cfg.Factory == nil {
		return nil, errors.New("service: nil factory")
	}
	if cfg.Groups < 1 || cfg.Group >= uint64(cfg.Groups) {
		return nil, fmt.Errorf("service: group %d out of range for %d groups", cfg.Group, cfg.Groups)
	}
	static := adapt.Choice{
		Name:       adapt.ProbeName(cfg.Factory, cfg.N, cfg.T),
		Factory:    cfg.Factory,
		WaitPolicy: cfg.WaitPolicy,
	}
	labels := []metrics.Label{{Key: "group", Value: strconv.FormatUint(cfg.Group, 10)}}
	var plane *adapt.Plane
	// The intake buffer must track the batch ceiling the batcher can
	// actually cut at — the controller's MaxBatch when adaptive, the
	// static MaxBatch otherwise. Sizing it from the static product alone
	// would re-introduce intake backpressure exactly when the controller
	// grows the batch to absorb a burst.
	ceiling := cfg.MaxBatch
	if cfg.Adaptive != nil {
		// The control plane observes on the service's clock unless the
		// caller injected its own: one clock drives lingers, deadlines
		// and controller windows alike, so a virtual-time run is
		// adaptive end to end.
		ac := *cfg.Adaptive
		if ac.Now == nil {
			ac.Now = cfg.Clock.Now
		}
		if cfg.Metrics != nil && ac.Metrics == nil {
			ac.Metrics, ac.MetricsLabels = cfg.Metrics, labels
		}
		plane = adapt.NewPlane(ac, static,
			adapt.Setting{Batch: cfg.MaxBatch, Linger: cfg.Linger}, cfg.N, cfg.T)
		if c := plane.BatchCeiling(); c > ceiling {
			ceiling = c
		}
	}
	s := &Service{
		cfg:         cfg,
		muxes:       muxes,
		ownsMuxes:   ownsMuxes,
		stride:      uint64(cfg.Groups),
		static:      static,
		plane:       plane,
		intake:      make(chan *pending, ceiling*cfg.MaxInflight),
		slots:       make(chan struct{}, cfg.MaxInflight),
		batcherDone: make(chan struct{}),
		latencies:   stats.NewReservoirSeeded[time.Duration](maxSamples, uint64(cfg.Group)<<3|0),
		rounds:      stats.NewReservoirSeeded[int](maxSamples, uint64(cfg.Group)<<3|1),
		instLat:     stats.NewReservoirSeeded[time.Duration](maxSamples, uint64(cfg.Group)<<3|2),
		roundLat:    stats.NewReservoirSeeded[time.Duration](maxSamples, uint64(cfg.Group)<<3|3),
		fills:       stats.NewReservoirSeeded[int](maxSamples, uint64(cfg.Group)<<3|4),
		algs:        make(map[string]int),
	}
	reg := cfg.Metrics
	s.reg = reg
	s.metricsLabels = labels
	s.algHist = make(map[string]*metrics.Histogram)
	s.mProposals = reg.Counter("indulgence_proposals_total",
		"proposals accepted into intake", labels...)
	s.mResolved = reg.Counter("indulgence_resolved_total",
		"proposal futures resolved with a decision", labels...)
	s.mFailed = reg.Counter("indulgence_failed_total",
		"proposal futures failed without a decision", labels...)
	s.mDecisions = reg.Counter("indulgence_decisions_total",
		"consensus instances decided", labels...)
	s.mInstFail = reg.Counter("indulgence_instance_failures_total",
		"consensus instances that missed their decision", labels...)
	s.mSuspicions = reg.Counter("indulgence_suspicions_total",
		"failure-detector suspicion events raised across the service's instances", labels...)
	s.mPropLat = reg.Histogram("indulgence_proposal_latency_ns",
		"proposal latency, enqueue to resolution, in nanoseconds", 1<<12, 1<<34, labels...)
	s.mDecLat = reg.Histogram("indulgence_decision_latency_ns",
		"instance latency, batch cut to decision, in nanoseconds", 1<<12, 1<<34, labels...)
	if reg != nil && ownsMuxes {
		// A service that owns its muxes owns all their traffic, so the
		// frame counters carry its group label; shared muxes (NewOnMuxes)
		// are instrumented by their owner instead.
		fin := reg.Counter("indulgence_frames_in_total",
			"well-formed inbound frames routed or buffered by the mux", labels...)
		fout := reg.Counter("indulgence_frames_out_total",
			"frames sent through the mux's virtual endpoints", labels...)
		for _, m := range muxes {
			m.Instrument(fin, fout)
		}
	}
	// The first instance of group g is g itself; every later one adds
	// the stride, so the assigned IDs are exactly {g, g+G, g+2G, …}.
	s.nextInstance = cfg.Group
	s.claimedThrough = s.nextInstance
	if cfg.Journal != nil {
		// Recovery: resume the instance-ID frontier past every journaled
		// start claim and decision — aligned up to the group's residue
		// class — and bulk-retire the journaled range of this group's
		// streams on every mux, so stale flood frames from a previous
		// process lifetime are dropped instead of buffering for instances
		// nobody will open.
		s.nextInstance = alignInstance(cfg.Journal.Frontier(), cfg.Group, s.stride)
		s.claimedThrough = s.nextInstance
		for _, m := range s.muxes {
			m.RetireGroupBelow(cfg.Group, s.nextInstance)
		}
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	go s.batcher()
	if s.plane != nil {
		go controlLoop(s.runCtx, cfg.Clock, s.plane, s.intake, s.slots)
	}
	return s, nil
}

// controlLoop ticks a control plane at its interval with the live
// queue/slot occupancy until the service's run context ends. Both
// service shapes share it.
func controlLoop(ctx context.Context, clk clock.Clock, plane *adapt.Plane, intake chan *pending, slots chan struct{}) {
	t := clk.NewTicker(plane.Interval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C():
			plane.Tick(len(intake), cap(intake), len(slots), cap(slots))
		}
	}
}

// Lookup serves the journaled decision of an already-decided instance
// without re-running consensus — the recovery read path. It reports
// false when the service has no journal or the instance is not on
// record.
func (s *Service) Lookup(instance uint64) (Decision, bool) {
	if s.cfg.Journal == nil {
		return Decision{}, false
	}
	rec, ok := s.cfg.Journal.Get(instance)
	if !ok {
		return Decision{}, false
	}
	return Decision{Instance: rec.Instance, Value: rec.Value, Round: rec.Round, Batch: rec.Batch, Class: rec.Class}, true
}

// Propose enqueues a proposal and returns its Future. It blocks only when
// the intake buffer is full (every instance slot busy and batches queued),
// providing natural backpressure. An adaptive service whose admission
// gate detects sustained intake saturation sheds the proposal with
// adapt.ErrOverload instead of queueing it — callers back off and retry.
// Propose submits at SLO class 0; classed traffic uses ProposeClass.
func (s *Service) Propose(ctx context.Context, v model.Value) (*Future, error) {
	return s.ProposeClass(ctx, 0, v)
}

// ProposeClass enqueues a proposal at an SLO class (0..adapt.MaxClasses-1;
// higher classes survive admission control longer under overload). A shed
// classed proposal fails with an *adapt.OverloadError carrying the class's
// suggested back-off and retry budget; errors.Is(err, adapt.ErrOverload)
// matches it. The class rides with the proposal end to end: the deciding
// instance is journaled under the batch's highest class, and latency is
// additionally accounted per class.
func (s *Service) ProposeClass(ctx context.Context, class int, v model.Value) (*Future, error) {
	if class < 0 || class >= adapt.MaxClasses {
		return nil, fmt.Errorf("service: class %d outside [0, %d]", class, adapt.MaxClasses-1)
	}
	p := &pending{value: v, class: class, enqueued: s.cfg.Clock.Now(), fut: &Future{done: make(chan struct{})}}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.plane != nil {
		if oe := s.plane.AdmitClass(class); oe != nil {
			s.countMu.Lock()
			s.overloads++
			s.overloadsBy[class]++
			if class > s.maxClass {
				s.maxClass = class
			}
			s.countMu.Unlock()
			return nil, oe
		}
	}
	select {
	case s.intake <- p:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.countMu.Lock()
	s.proposals++
	if class > s.maxClass {
		s.maxClass = class
	}
	s.countMu.Unlock()
	s.mProposals.Inc()
	return p.fut, nil
}

// Close stops intake, flushes the pending batch, waits for every inflight
// instance to resolve, and shuts the muxes down. Endpoints passed to New
// stay open. Close is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.intake)
	<-s.batcherDone
	s.wg.Wait()
	s.runCancel()
	if s.ownsMuxes {
		for _, m := range s.muxes {
			_ = m.Close()
		}
	}
	return nil
}

// Abort hard-stops the service without flushing — the shutdown shape a
// crash gives it, recoverable only through the journal (the
// crash-restart tests lean on it). In-flight instances are cancelled,
// queued batches fail their futures, and the muxes close so a successor
// service can take over the endpoints (closed muxes fail every further
// send, so leftover goroutines are crash-stopped off the shared
// transport). Decision records already durable survive; an instance
// caught between its journal append and its futures resolving may leave
// clients unanswered about a decision that is on record — exactly the
// window a real crash opens, and the reason recovery trusts the
// journal, not the clients. Unlike Close, Abort waits for nothing: the
// batcher and in-flight instance goroutines unwind on their own once
// cancelled (a crash cannot wait for a goroutine that may itself be
// blocked on the journal). Endpoints and the journal stay with their
// owners.
func (s *Service) Abort() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.runCancel()
	close(s.intake)
	if s.ownsMuxes {
		for _, m := range s.muxes {
			_ = m.Close()
		}
	}
}

// Group returns the consensus group this service runs (0 for the
// single-group service).
func (s *Service) Group() uint64 { return s.cfg.Group }

// Occupancy reports the intake buffer's current fill and capacity — the
// load signal shard placement policies compare across groups.
func (s *Service) Occupancy() (used, capacity int) {
	return len(s.intake), cap(s.intake)
}

// Shedding reports whether the service's admission gate is currently
// rejecting proposals with adapt.ErrOverload (always false for a
// service without an adaptive config). Placement policies route around
// a shedding group while a non-shedding one exists.
func (s *Service) Shedding() bool {
	return s.plane != nil && !s.plane.Admit()
}

// Snapshot returns current counters and latency/round summaries.
func (s *Service) Snapshot() Stats {
	var control adapt.Stats
	if s.plane != nil {
		control = s.plane.Snapshot()
	}
	s.countMu.Lock()
	defer s.countMu.Unlock()
	algs := make(map[string]int, len(s.algs))
	for k, v := range s.algs {
		algs[k] = v
	}
	var overloadsBy, resolvedBy []int
	var classLat []stats.LatencySummary
	if s.maxClass > 0 {
		n := s.maxClass + 1
		overloadsBy = append(overloadsBy, s.overloadsBy[:n]...)
		resolvedBy = append(resolvedBy, s.resolvedBy[:n]...)
		classLat = make([]stats.LatencySummary, n)
		for c := 0; c < n; c++ {
			if r := s.classLat[c]; r != nil {
				classLat[c] = stats.SummarizeDurations(r.Values())
			}
		}
	}
	return Stats{
		Proposals:        s.proposals,
		Resolved:         s.resolved,
		Failed:           s.failed,
		Instances:        s.instances,
		InstanceFailures: s.instanceFail,
		Overloads:        s.overloads,
		OverloadsByClass: overloadsBy,
		ResolvedByClass:  resolvedBy,
		ClassLatency:     classLat,
		Violations:       append([]string(nil), s.violations...),
		Latency:          stats.SummarizeDurations(s.latencies.Values()),
		Rounds:           stats.Summarize(s.rounds.Values()),
		DecisionLatency:  stats.SummarizeDurations(s.instLat.Values()),
		RoundLatency:     stats.SummarizeDurations(s.roundLat.Values()),
		BatchFill:        stats.Summarize(s.fills.Values()),
		Control:          control,
		Algorithms:       algs,
	}
}

// batchLimit returns the effective batch-size limit: the controller's
// actuation when adaptive, the static MaxBatch otherwise.
func (s *Service) batchLimit() int {
	if s.plane != nil {
		return s.plane.BatchLimit()
	}
	return s.cfg.MaxBatch
}

// lingerFor returns the effective linger for a fresh batch.
func (s *Service) lingerFor() time.Duration {
	if s.plane != nil {
		return s.plane.Linger()
	}
	return s.cfg.Linger
}

// roundsHist returns (registering at an algorithm's first decision) its
// rounds-per-decision histogram — the paper's price gap as a live
// series: the A_f+2 rung's mass sits at f+2 rounds while A_t+2's sits
// at its t+2 floor. Callers hold countMu; nil without a registry.
func (s *Service) roundsHist(alg string) *metrics.Histogram {
	if s.reg == nil {
		return nil
	}
	h, ok := s.algHist[alg]
	if !ok {
		labels := append([]metrics.Label{{Key: "alg", Value: alg}}, s.metricsLabels...)
		h = s.reg.Histogram("indulgence_rounds_per_decision",
			"global decision round per decided instance, by algorithm rung", 1, 256, labels...)
		s.algHist[alg] = h
	}
	return h
}

// recordCut accounts one dispatched batch's fill with both sinks
// (Stats.BatchFill and the control plane's window) — the one piece of
// accounting both service shapes must keep identical.
func (s *Service) recordCut(n int) {
	fill := cutFill(n, s.batchLimit())
	s.countMu.Lock()
	s.fills.Add(fill)
	s.countMu.Unlock()
	if s.plane != nil {
		s.plane.ObserveCut(fill)
	}
}

// batcher cuts the intake stream into batches: a batch closes when it
// reaches the effective batch limit or its oldest proposal has waited
// the effective linger (both live values of the control plane when one
// is attached). Each batch then claims an instance slot (blocking — the
// bounded-shard backpressure) and launches its instance.
func (s *Service) batcher() {
	defer close(s.batcherDone)
	var (
		batch   []*pending
		lingerT clock.Timer
		lingerC <-chan time.Time
	)
	stopLinger := func() {
		if lingerT != nil {
			lingerT.Stop()
			lingerT, lingerC = nil, nil
		}
	}
	flush := func() {
		stopLinger()
		if len(batch) == 0 {
			return
		}
		b := batch
		batch = nil
		s.recordCut(len(b))
		select {
		case s.slots <- struct{}{}:
		case <-s.runCtx.Done():
			failBatch(b, s.runCtx.Err())
			return
		}
		instance := s.nextInstance
		s.nextInstance += s.stride
		choice := s.static
		var cctx adapt.ChoiceContext
		if s.plane != nil {
			// One lock acquisition yields both the pick and the control-
			// plane context behind it, so the decision-trace record below
			// can never disagree with the choice it annotates.
			choice, cctx = s.plane.PickContext()
		}
		if s.cfg.Journal != nil {
			// Claim instance IDs before any of their frames can reach
			// the network: the recovered frontier must cover
			// crash-undecided instances too, or their in-flight frames
			// could leak into a successor service's instance of the
			// same ID. The static path claims MaxInflight-sized blocks
			// with one written (not fsynced — see journal.AppendStart)
			// record; with algorithm selection every instance claims
			// individually so its chosen algorithm is on record before
			// the choice can act, keeping check.Replay's cross-restart
			// algorithm audit exact.
			switch {
			case s.plane != nil && s.plane.Selecting():
				rec := wire.StartRecord{Instance: instance, Alg: choice.Name, Group: s.cfg.Group}
				if err := s.cfg.Journal.AppendStartRecord(rec); err != nil {
					<-s.slots
					failBatch(b, fmt.Errorf("service: claim instance %d: %w", instance, err))
					return
				}
				if instance >= s.claimedThrough {
					s.claimedThrough = instance + s.stride
				}
			case instance >= s.claimedThrough:
				through, err := claimBlock(s.cfg.Journal, instance, s.cfg.MaxInflight, s.static.Name, s.cfg.Group, s.stride)
				if err != nil {
					<-s.slots
					failBatch(b, err)
					return
				}
				s.claimedThrough = through
			}
			if s.plane != nil {
				// Decision-trace record: the controller/selector/admission
				// context behind this launch, journaled after the start
				// claim and before any of the instance's frames can reach
				// the network, so replay can audit why each rung was
				// chosen. Same durability class as start claims (written,
				// not fsynced).
				trace := wire.DecisionTraceRecord{
					Instance:    instance,
					Group:       s.cfg.Group,
					Level:       cctx.Level,
					Chosen:      cctx.Chosen,
					NotTaken:    cctx.NotTaken,
					Suspicions:  uint64(cctx.Suspicions),
					QueueLen:    uint64(len(s.intake)),
					QueueCap:    uint64(cap(s.intake)),
					BatchFill:   cutFill(len(b), cctx.BatchLimit),
					BatchLimit:  cctx.BatchLimit,
					LingerNanos: int64(cctx.Linger),
					EWMANanos:   int64(cctx.EWMA),
					ShedMask:    uint64(cctx.ShedMask),
				}
				if err := s.cfg.Journal.AppendDecisionTrace(trace); err != nil {
					<-s.slots
					failBatch(b, fmt.Errorf("service: trace instance %d: %w", instance, err))
					return
				}
			}
		}
		s.wg.Add(1)
		go s.runInstance(instance, b, choice)
	}
	for {
		select {
		case p, ok := <-s.intake:
			if !ok {
				flush()
				return
			}
			batch = append(batch, p)
			if len(batch) == 1 {
				lingerT = s.cfg.Clock.NewTimer(s.lingerFor())
				lingerC = lingerT.C()
			}
			if len(batch) >= s.batchLimit() {
				flush()
			}
		case <-lingerC:
			lingerT, lingerC = nil, nil
			var closed bool
			batch, closed = drainIntake(s.intake, batch, s.batchLimit())
			flush()
			if closed {
				return
			}
		}
	}
}

// failBatch resolves every future of a batch with err.
func failBatch(batch []*pending, err error) {
	for _, p := range batch {
		p.fut.resolve(Decision{}, err)
	}
}

// cutFill returns a batch cut's fill percentage against the effective
// limit, floored at 1: a cut always carries at least one proposal, and
// integer division against a limit above 100 must not read as "no cut"
// (the controller treats fill 0 as an idle window).
func cutFill(n, limit int) int {
	if fill := 100 * n / max(limit, 1); fill >= 1 {
		return fill
	}
	return 1
}

// drainIntake appends the immediately available proposals to batch, up
// to limit, without blocking; closed reports that intake was closed and
// fully drained (the caller flushes and exits). Both batchers run it
// when a cut is due, so a short (or zero) linger still yields full
// batches under load instead of racing the timer one proposal at a
// time — and the closed-channel handling has one owner.
func drainIntake(intake <-chan *pending, batch []*pending, limit int) (out []*pending, closed bool) {
	for len(batch) < limit {
		select {
		case p, ok := <-intake:
			if !ok {
				return batch, true
			}
			batch = append(batch, p)
		default:
			return batch, false
		}
	}
	return batch, false
}

// claimBlock journals a start-claim covering instance and the rest of
// its inflight-sized ID block — the block spans inflight IDs of the
// claiming group's strided space, so its highest member is instance +
// stride*(inflight-1) — returning the new claimed-through frontier
// (first group ID not covered). alg tags the claim with the statically
// configured algorithm every instance of the block runs (adaptive
// selection claims per instance instead — see the batcher). Both
// batchers share it so the claim arithmetic — which restart recovery
// depends on — has one owner.
func claimBlock(j *journal.Journal, instance uint64, inflight int, alg string, group, stride uint64) (uint64, error) {
	claim := instance + stride*(uint64(inflight)-1)
	if err := j.AppendStartRecord(wire.StartRecord{Instance: claim, Alg: alg, Group: group}); err != nil {
		return 0, fmt.Errorf("service: claim instances through %d: %w", claim, err)
	}
	return claim + stride, nil
}

// alignInstance returns the smallest instance ID at or above frontier
// that belongs to group's strided ID space ({group, group+stride, …}) —
// the recovery arithmetic mapping a journal frontier, which covers every
// group journaled in that directory, back onto one group's allocation.
func alignInstance(frontier, group, stride uint64) uint64 {
	if stride <= 1 {
		return frontier
	}
	if frontier <= group {
		return group
	}
	delta := (frontier - group) % stride
	if delta == 0 {
		return frontier
	}
	return frontier + stride - delta
}
