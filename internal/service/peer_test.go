package service

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"indulgence/internal/check"
	"indulgence/internal/core"
	"indulgence/internal/journal"
	"indulgence/internal/model"
	"indulgence/internal/transport"
	"indulgence/internal/wire"
)

// reserveAddrs reserves n distinct loopback addresses by binding and
// releasing ephemeral ports.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		_ = ln.Close()
	}
	return addrs
}

// peerEndpoint builds member id's TCP endpoint over the shared address
// list.
func peerEndpoint(t *testing.T, id model.ProcessID, addrs []string) *transport.TCPEndpoint {
	t.Helper()
	peers := make([]transport.Peer, len(addrs))
	for i, a := range addrs {
		peers[i] = transport.Peer{ID: model.ProcessID(i + 1), Addr: a}
	}
	ep, err := transport.NewTCPEndpoint(
		transport.PeerConfig{Self: id, Cluster: "peer-test", Peers: peers},
		transport.TCPOptions{RetryMin: 5 * time.Millisecond, RetryMax: 100 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

// peerOpts is the fast-test member configuration.
func peerOpts(jn *journal.Journal) PeerOptions {
	return PeerOptions{
		T:           1,
		Factory:     core.New(core.Options{}),
		BaseTimeout: 15 * time.Millisecond,
		MaxBatch:    2,
		Linger:      2 * time.Millisecond,
		MaxInflight: 4,
		JoinTimeout: 5 * time.Second,
		FloodGrace:  75 * time.Millisecond,
		Journal:     jn,
	}
}

// proposeAll drives count proposals into member svc and records each
// resolved instance/value pair into live (guarded by mu), failing the
// test on any error.
func proposeAll(t *testing.T, svc *PeerService, base, count int, live map[uint64]model.Value, mu *sync.Mutex, wg *sync.WaitGroup) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	for i := 0; i < count; i++ {
		fut, err := svc.Propose(ctx, model.Value(base+i))
		if err != nil {
			cancel()
			t.Fatalf("propose %d: %v", base+i, err)
		}
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			dec, err := fut.Wait(ctx)
			if err != nil {
				t.Errorf("proposal %d: %v", v, err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if prev, ok := live[dec.Instance]; ok && prev != dec.Value {
				t.Errorf("instance %d resolved as %d and %d", dec.Instance, prev, dec.Value)
			}
			live[dec.Instance] = dec.Value
		}(base + i)
	}
	// cancel when every future of this batch resolved
	go func() {
		wg.Wait()
		cancel()
	}()
}

// auditJournals replays every member journal directory and cross-checks
// the union against the live observations with check.Replay.
func auditJournals(t *testing.T, live map[uint64]model.Value, dirs ...string) {
	t.Helper()
	var records []wire.DecisionRecord
	var starts []wire.StartRecord
	for _, dir := range dirs {
		_, err := journal.Replay(dir, func(e journal.Entry) error {
			switch {
			case e.Trace != nil:
			case e.Start:
				starts = append(starts, wire.StartRecord{Instance: e.Instance(), Alg: e.Alg})
			default:
				records = append(records, e.Decision)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replay %s: %v", dir, err)
		}
	}
	rep := check.Replay(records, starts, live)
	if len(rep.Violations) > 0 {
		t.Fatalf("cross-member audit: %v", rep.Violations)
	}
}

// TestPeerServiceAgreement runs three members over real TCP endpoints in
// one OS process, proposes at every member concurrently, and audits the
// union of their journals plus every live observation.
func TestPeerServiceAgreement(t *testing.T) {
	const n = 3
	addrs := reserveAddrs(t, n)
	dir := t.TempDir()

	members := make([]*PeerService, n)
	dirs := make([]string, n)
	live := make(map[uint64]model.Value)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := model.ProcessID(i + 1)
		ep := peerEndpoint(t, id, addrs)
		t.Cleanup(func() { _ = ep.Close() })
		dirs[i] = filepath.Join(dir, fmt.Sprintf("p%d", id))
		jn, err := journal.Open(dirs[i], journal.Options{GroupWindow: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = jn.Close() })
		svc, err := NewPeer(peerOpts(jn), n, ep)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = svc
	}

	for i, svc := range members {
		proposeAll(t, svc, 100*(i+1), 6, live, &mu, &wg)
	}
	wg.Wait()
	for i, svc := range members {
		if err := svc.Close(); err != nil {
			t.Fatalf("close member %d: %v", i+1, err)
		}
		st := svc.Snapshot()
		if st.Resolved != 6 {
			t.Fatalf("member %d resolved %d of 6 (failed %d)", i+1, st.Resolved, st.Failed)
		}
	}
	// Journals are auditable only once their members closed them.
	// (Close of the journal happens in cleanup order; flush by closing
	// explicitly first.)
	mu.Lock()
	defer mu.Unlock()
	auditJournals(t, live, dirs...)
}

// TestPeerServiceRestartRejoin is the crash/rejoin contract end to end
// in one OS process: three members decide, one member crash-stops
// (Abort), restarts over the same address with its journal, and serves
// more proposals; the union of all journals across both lifetimes plus
// every live observation audits clean.
func TestPeerServiceRestartRejoin(t *testing.T) {
	const n = 3
	addrs := reserveAddrs(t, n)
	dir := t.TempDir()
	live := make(map[uint64]model.Value)
	var mu sync.Mutex

	dirs := make([]string, n)
	eps := make([]*transport.TCPEndpoint, n)
	jns := make([]*journal.Journal, n)
	members := make([]*PeerService, n)
	for i := 0; i < n; i++ {
		id := model.ProcessID(i + 1)
		eps[i] = peerEndpoint(t, id, addrs)
		dirs[i] = filepath.Join(dir, fmt.Sprintf("p%d", id))
		jn, err := journal.Open(dirs[i], journal.Options{GroupWindow: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		jns[i] = jn
		svc, err := NewPeer(peerOpts(jn), n, eps[i])
		if err != nil {
			t.Fatal(err)
		}
		members[i] = svc
	}
	defer func() {
		for i := range members {
			members[i].Abort()
			_ = jns[i].Close()
			_ = eps[i].Close()
		}
	}()

	// First lifetime: everyone proposes and resolves.
	var wg1 sync.WaitGroup
	for i, svc := range members {
		proposeAll(t, svc, 100*(i+1), 4, live, &mu, &wg1)
	}
	wg1.Wait()

	// Crash member 3: service aborts, endpoint and journal close — the
	// whole process is gone.
	members[2].Abort()
	_ = jns[2].Close()
	_ = eps[2].Close()

	// Members 1 and 2 keep deciding through the outage (t=1 tolerates
	// the missing member).
	var wgOut sync.WaitGroup
	proposeAll(t, members[0], 500, 4, live, &mu, &wgOut)
	wgOut.Wait()

	// Member 3 restarts: same address, same journal directory, fresh
	// process state. Its transport links re-land via the peers' bounded
	// backoff, its frontier resumes past both lifetimes' claims.
	eps[2] = peerEndpoint(t, 3, addrs)
	jn3, err := journal.Open(dirs[2], journal.Options{GroupWindow: time.Millisecond})
	if err != nil {
		t.Fatalf("reopen journal after crash: %v", err)
	}
	jns[2] = jn3
	svc3, err := NewPeer(peerOpts(jn3), n, eps[2])
	if err != nil {
		t.Fatal(err)
	}
	members[2] = svc3

	// Second lifetime: the restarted member proposes and resolves, and
	// the survivors' proposals keep resolving too.
	var wg2 sync.WaitGroup
	for i, svc := range members {
		proposeAll(t, svc, 1000+100*(i+1), 4, live, &mu, &wg2)
	}
	wg2.Wait()

	for i, svc := range members {
		if err := svc.Close(); err != nil {
			t.Fatalf("close member %d: %v", i+1, err)
		}
	}
	st := members[2].Snapshot()
	if st.Resolved != 4 {
		t.Fatalf("restarted member resolved %d of 4 (failed %d)", st.Resolved, st.Failed)
	}
	for i := range jns {
		_ = jns[i].Close()
	}
	mu.Lock()
	defer mu.Unlock()
	auditJournals(t, live, dirs...)
	// Abort+Close in the deferred cleanup are now no-ops.
}

// TestPeerServiceHubMembers runs members over plain hub endpoints — the
// member layer is transport-agnostic, so an in-memory "multi-process"
// cluster must behave identically (and much faster, which keeps this in
// the default -race sweep).
func TestPeerServiceHubMembers(t *testing.T) {
	const n = 3
	hub, err := transport.NewHub(n)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	live := make(map[uint64]model.Value)
	var mu sync.Mutex
	var wg sync.WaitGroup
	members := make([]*PeerService, n)
	for i := 0; i < n; i++ {
		ep, err := hub.Endpoint(model.ProcessID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		svc, err := NewPeer(peerOpts(nil), n, ep)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = svc
	}
	for i, svc := range members {
		proposeAll(t, svc, 10*(i+1), 8, live, &mu, &wg)
	}
	wg.Wait()
	total := 0
	for i, svc := range members {
		if err := svc.Close(); err != nil {
			t.Fatalf("close member %d: %v", i+1, err)
		}
		st := svc.Snapshot()
		total += st.Resolved
		if st.Failed > 0 {
			t.Fatalf("member %d failed %d proposals", i+1, st.Failed)
		}
	}
	if total != 3*8 {
		t.Fatalf("resolved %d of %d proposals", total, 3*8)
	}
}

// TestNewPeerValidation covers the constructor error cases.
func TestNewPeerValidation(t *testing.T) {
	hub, err := transport.NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	ep, err := hub.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPeer(peerOpts(nil), 1, ep); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewPeer(peerOpts(nil), 2, nil); err == nil {
		t.Fatal("nil endpoint accepted")
	}
	opts := peerOpts(nil)
	opts.Factory = nil
	if _, err := NewPeer(opts, 2, ep); err == nil {
		t.Fatal("nil factory accepted")
	}
	// Self outside 1..n.
	hub3, err := transport.NewHub(3)
	if err != nil {
		t.Fatal(err)
	}
	defer hub3.Close()
	ep3, err := hub3.Endpoint(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPeer(peerOpts(nil), 2, ep3); err == nil {
		t.Fatal("endpoint outside the cluster accepted")
	}
}
