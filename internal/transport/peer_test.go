package transport

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"indulgence/internal/model"
)

func TestParsePeers(t *testing.T) {
	cfg, err := ParsePeers(2, "", " p2=127.0.0.1:9002, p1=127.0.0.1:9001 ,p3=127.0.0.1:9003")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 3 || cfg.Self != 2 || cfg.ClusterID() != DefaultCluster {
		t.Fatalf("parsed %+v", cfg)
	}
	// Peers come back sorted by ID regardless of spec order.
	for i, p := range cfg.Peers {
		if p.ID != model.ProcessID(i+1) {
			t.Fatalf("peer %d has id %d", i, p.ID)
		}
	}
	if addr, err := cfg.SelfAddr(); err != nil || addr != "127.0.0.1:9002" {
		t.Fatalf("self addr %q, %v", addr, err)
	}
	if _, err := cfg.Addr(9); err == nil {
		t.Fatal("address of unknown peer resolved")
	}
}

func TestParsePeersErrors(t *testing.T) {
	cases := []struct {
		name, spec string
		self       model.ProcessID
	}{
		{"empty", "", 1},
		{"only commas", " , ,", 1},
		{"no equals", "p1:127.0.0.1:9001", 1},
		{"name not pN", "q1=127.0.0.1:9001,p2=127.0.0.1:9002", 1},
		{"id zero", "p0=127.0.0.1:9000,p1=127.0.0.1:9001", 1},
		{"id not a number", "px=127.0.0.1:9001,p2=127.0.0.1:9002", 1},
		{"empty address", "p1=,p2=127.0.0.1:9002", 1},
		{"address without port", "p1=localhost,p2=127.0.0.1:9002", 1},
		{"duplicate id", "p1=127.0.0.1:9001,p1=127.0.0.1:9002", 1},
		{"duplicate address", "p1=127.0.0.1:9001,p2=127.0.0.1:9001", 1},
		{"sparse ids", "p1=127.0.0.1:9001,p3=127.0.0.1:9003", 1},
		{"single peer", "p1=127.0.0.1:9001", 1},
		{"self not a member", "p1=127.0.0.1:9001,p2=127.0.0.1:9002", 3},
	}
	for _, tc := range cases {
		if _, err := ParsePeers(tc.self, "", tc.spec); err == nil {
			t.Errorf("%s: ParsePeers(%d, %q) succeeded, want error", tc.name, tc.self, tc.spec)
		}
	}
}

func TestLoadPeerFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "peers.conf")
	content := "# local three-process cluster\np1=127.0.0.1:9001\n\np2=127.0.0.1:9002 # second\np3=127.0.0.1:9003\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadPeerFile(1, "prod", path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 3 || cfg.Cluster != "prod" {
		t.Fatalf("loaded %+v", cfg)
	}
	if _, err := LoadPeerFile(1, "", filepath.Join(dir, "missing.conf")); err == nil {
		t.Fatal("missing file loaded")
	}
	empty := filepath.Join(dir, "empty.conf")
	if err := os.WriteFile(empty, []byte("# nothing here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPeerFile(1, "", empty); err == nil {
		t.Fatal("empty file loaded")
	}
}

// freeAddrs reserves n distinct loopback addresses by binding and
// immediately releasing ephemeral ports.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		_ = ln.Close()
	}
	return addrs
}

// peerConfigs builds one PeerConfig per process over the given
// addresses.
func peerConfigs(cluster string, addrs []string) []PeerConfig {
	peers := make([]Peer, len(addrs))
	for i, a := range addrs {
		peers[i] = Peer{ID: model.ProcessID(i + 1), Addr: a}
	}
	cfgs := make([]PeerConfig, len(addrs))
	for i := range cfgs {
		cfgs[i] = PeerConfig{Self: model.ProcessID(i + 1), Cluster: cluster, Peers: peers}
	}
	return cfgs
}

func TestTCPEndpointHandshakeDelivery(t *testing.T) {
	cfgs := peerConfigs("hs", freeAddrs(t, 2))
	a, err := NewTCPEndpoint(cfgs[0], TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPEndpoint(cfgs[1], TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send(2, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithTimeout(t, b, 5*time.Second); string(got) != "one" {
		t.Fatalf("got %q", got)
	}
	if err := b.Send(1, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithTimeout(t, a, 5*time.Second); string(got) != "two" {
		t.Fatalf("got %q", got)
	}
	// Self-send short-circuits.
	if err := a.Send(1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithTimeout(t, a, 5*time.Second); string(got) != "self" {
		t.Fatalf("got %q", got)
	}
	// Unknown peer errors and names both ends.
	if err := a.Send(9, []byte("x")); err == nil || !strings.Contains(err.Error(), "p9") {
		t.Fatalf("send to unknown peer: %v", err)
	}
	if got := a.Connected(); !got.Has(2) {
		t.Fatalf("a's connected set %v", got)
	}
}

// TestTCPEndpointRefusesWrongCluster checks the handshake contract: a
// peer configured with a different cluster ID never gets its frames into
// the mailbox.
func TestTCPEndpointRefusesWrongCluster(t *testing.T) {
	addrs := freeAddrs(t, 2)
	right := peerConfigs("alpha", addrs)
	wrong := peerConfigs("beta", addrs)

	a, err := NewTCPEndpoint(right[0], TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	imp, err := NewTCPEndpoint(wrong[1], TCPOptions{RetryMin: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()

	if err := imp.Send(1, []byte("evil")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-a.Recv():
		t.Fatalf("wrong-cluster frame delivered: %q", f)
	case <-time.After(300 * time.Millisecond):
	}
	// The refusal is visible to the dialer: the handshake ack never
	// arrives, so the connection never counts as live and the link
	// records a handshake error instead of silently dropping frames.
	if imp.Connected().Has(1) {
		t.Fatal("refused connection counted as live")
	}
	if err := imp.LinkError(1); err == nil || !strings.Contains(err.Error(), "handshake") {
		t.Fatalf("refused handshake not surfaced: %v", err)
	}
}

// TestTCPEndpointReconnect is the crash/rejoin contract: frames sent
// while a peer is down are queued and flush once a fresh process listens
// on the same address again.
func TestTCPEndpointReconnect(t *testing.T) {
	cfgs := peerConfigs("rc", freeAddrs(t, 2))
	opts := TCPOptions{RetryMin: 10 * time.Millisecond, RetryMax: 50 * time.Millisecond}
	a, err := NewTCPEndpoint(cfgs[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	b, err := NewTCPEndpoint(cfgs[1], opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithTimeout(t, b, 5*time.Second); string(got) != "before" {
		t.Fatalf("got %q", got)
	}
	// Crash b: its listener and connections die with it. The watchdog
	// severs a's link within moments; wait for it so the outage frames
	// below are queued, not flushed into the dying socket (frames in
	// flight at the instant of a break are lost with it — the documented
	// at-most-once window).
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "link to the dead peer to sever", func() bool { return !a.Connected().Has(2) })

	// Frames sent into the outage queue without blocking or erroring.
	for _, m := range []string{"during-1", "during-2"} {
		if err := a.Send(2, []byte(m)); err != nil {
			t.Fatalf("send during outage: %v", err)
		}
	}

	// The restarted peer (same address, fresh listener) receives the
	// queued frames, in order, without anyone restarting the cluster.
	b2, err := NewTCPEndpoint(cfgs[1], opts)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	for _, want := range []string{"during-1", "during-2"} {
		if got := recvWithTimeout(t, b2, 10*time.Second); string(got) != want {
			t.Fatalf("after restart got %q, want %q", got, want)
		}
	}
	// And the link keeps working.
	if err := a.Send(2, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithTimeout(t, b2, 5*time.Second); string(got) != "after" {
		t.Fatalf("got %q", got)
	}
}

// TestTCPEndpointDialErrorNamesPeer checks the dial-timeout bugfix: an
// unreachable peer surfaces a bounded, peer-identifying error instead of
// hanging construction or the round loop.
func TestTCPEndpointDialErrorNamesPeer(t *testing.T) {
	cfgs := peerConfigs("down", freeAddrs(t, 2))
	opts := TCPOptions{
		DialTimeout: 200 * time.Millisecond,
		RetryMin:    10 * time.Millisecond,
		RetryMax:    20 * time.Millisecond,
	}
	a, err := NewTCPEndpoint(cfgs[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Peer 2 never starts. Send must not block; the link must record a
	// peer-identifying error.
	if err := a.Send(2, []byte("void")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "link error for an unreachable peer", func() bool { return a.LinkError(2) != nil })
	if err := a.LinkError(2); !strings.Contains(err.Error(), "p1->p2") {
		t.Fatalf("link error does not name the link: %v", err)
	}
}

// TestTCPEndpointCloseDeterministic closes an endpoint mid-traffic many
// times; the waitgroup-drained shutdown must never leak a goroutine that
// touches the mailbox after close (the race detector guards this).
func TestTCPEndpointCloseDeterministic(t *testing.T) {
	for i := 0; i < 5; i++ {
		cfgs := peerConfigs("shut", freeAddrs(t, 3))
		eps := make([]*TCPEndpoint, 3)
		for j, cfg := range cfgs {
			ep, err := NewTCPEndpoint(cfg, TCPOptions{RetryMin: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			eps[j] = ep
		}
		stop := make(chan struct{})
		for _, ep := range eps {
			go func(e *TCPEndpoint) {
				for k := 0; ; k++ {
					select {
					case <-stop:
						return
					default:
					}
					for q := model.ProcessID(1); q <= 3; q++ {
						if err := e.Send(q, []byte{byte(k)}); err != nil {
							if !errors.Is(err, ErrClosed) {
								t.Errorf("send: %v", err)
							}
							return
						}
					}
				}
			}(ep)
			go func(e *TCPEndpoint) {
				for range e.Recv() {
				}
			}(ep)
		}
		// Soak until the mesh is fully connected — traffic is then
		// genuinely in flight on every link when Close lands.
		waitFor(t, "full mesh connectivity", func() bool {
			for _, ep := range eps {
				if ep.Connected().Len() < 2 {
					return false
				}
			}
			return true
		})
		for _, ep := range eps {
			if err := ep.Close(); err != nil {
				t.Fatal(err)
			}
			// Idempotent.
			if err := ep.Close(); err != nil {
				t.Fatal(err)
			}
		}
		close(stop)
	}
}
