// Package transport provides the message transports of the live runtime:
// an in-memory hub with injectable per-link delays (for reproducing the
// paper's asynchronous periods on one machine) and a peer-configured TCP
// transport (for running the algorithms as genuinely separate OS
// processes over real sockets). A TCPEndpoint is one process's half of a
// multi-process cluster, built from a PeerConfig (self ID plus addressed
// peer list, parseable from `-peers p1=host:port,...` or a peer file):
// it listens on its own entry, identifies every connection with a
// handshake frame (cluster ID + sender ID) instead of relying on dial
// order, and redials broken peers with bounded backoff so a crashed and
// restarted member rejoins without the cluster restarting. TCPCluster is
// the in-process loopback convenience built on the same endpoints. All
// transports move opaque frames produced by package wire; none
// interprets them. A Mux layers instance multiplexing on top of any of
// them: it routes the wire instance envelope so that many concurrent
// consensus instances share one endpoint's physical connections, which
// is how the service layer runs a whole fleet of instances over a single
// cluster.
//
// Delivery guarantees mirror the ES channel axioms while connections
// hold: frames are never dropped (reliable channels) but may be delayed
// arbitrarily — by injected delays on the hub, by outages and reconnect
// backoff on TCP. Frames in flight at the instant a TCP connection
// breaks may be lost with it (see TCPEndpoint); the round protocol
// absorbs that window as a transient suspicion. Per-link FIFO order is
// not guaranteed under injected delays, which is harmless because round
// messages are self-describing.
package transport

import (
	"errors"
	"sync"
	"sync/atomic"

	"indulgence/internal/model"
)

// ErrClosed reports use of a closed transport.
var ErrClosed = errors.New("transport: closed")

// Transport moves frames between processes. Implementations must be safe
// for concurrent use.
type Transport interface {
	// Self returns the identity this endpoint sends as.
	Self() model.ProcessID
	// Send enqueues a frame for delivery to the given process (including
	// to itself). It never blocks on the receiver.
	Send(to model.ProcessID, frame []byte) error
	// Recv returns the channel on which inbound frames arrive. The
	// channel is closed when the transport is closed.
	Recv() <-chan []byte
	// Close releases the endpoint. Further Sends fail with ErrClosed.
	Close() error
}

// frameCounted is implemented by transports that share a live count of
// frames accepted but not yet handed to a receiver. The chaos harness's
// virtual clock reads the counter as an idle check — time must not
// advance over a frame still in flight at the current instant. Only the
// hub's own mailboxes participate: their consumers (a Mux router, or a
// node's round loop) always drain, so the count provably returns to
// zero once the goroutine fabric quiesces. Frames buffered further up
// in a Mux's per-instance streams are deliberately NOT counted — a
// crashed process stops reading its stream, and counting its backlog
// would hold virtual time still forever. The hub's endpoints implement
// the interface; so does the chaos fault injector, by delegation.
type frameCounted interface {
	SharedFrameCounter() *atomic.Int64
}

// mailbox is an unbounded, closable FIFO of frames feeding a channel. The
// unbounded buffer is deliberate: a sender must never block on a slow
// receiver (that would let one crashed process wedge the cluster), and
// frames must never be dropped (reliable channels). Memory is bounded in
// practice by the runtime's round pacing.
//
// When track is non-nil the mailbox participates in in-flight
// accounting: every accepted frame counts until the instant a receiver
// takes it from the out channel (or the mailbox closes with it queued).
type mailbox struct {
	track  *atomic.Int64
	mu     sync.Mutex
	queue  [][]byte
	wake   chan struct{}
	out    chan []byte
	closed bool
	done   chan struct{}
}

func newMailbox() *mailbox { return newMailboxTracked(nil) }

func newMailboxTracked(track *atomic.Int64) *mailbox {
	m := &mailbox{
		track: track,
		wake:  make(chan struct{}, 1),
		out:   make(chan []byte),
		done:  make(chan struct{}),
	}
	go m.pump()
	return m
}

// put enqueues a frame; it is a no-op after close.
func (m *mailbox) put(frame []byte) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.queue = append(m.queue, frame)
	if m.track != nil {
		m.track.Add(1)
	}
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// pump moves frames from the queue to the out channel until closed.
func (m *mailbox) pump() {
	defer close(m.out)
	for {
		m.mu.Lock()
		for len(m.queue) == 0 {
			closed := m.closed
			m.mu.Unlock()
			if closed {
				return
			}
			select {
			case <-m.wake:
			case <-m.done:
			}
			m.mu.Lock()
		}
		frame := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		select {
		case m.out <- frame:
			if m.track != nil {
				m.track.Add(-1)
			}
		case <-m.done:
			if m.track != nil {
				m.track.Add(-1) // the popped frame dies with the mailbox
			}
			return
		}
	}
}

// close stops the pump; pending frames are discarded (and released from
// the in-flight count).
func (m *mailbox) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	if m.track != nil {
		m.track.Add(-int64(len(m.queue)))
	}
	m.queue = nil
	m.mu.Unlock()
	close(m.done)
}
