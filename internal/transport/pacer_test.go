package transport

import (
	"testing"
	"time"
)

// TestReconnectPacer drives the extracted pacing state machine through
// the full reconnect life cycle on a synthetic timeline — no sockets,
// no sleeping — pinning the contract the writer loop relies on:
// doubling to RetryMax under failures, no reset on a young connection,
// reset to RetryMin only after a write on a connection RetryMax old.
func TestReconnectPacer(t *testing.T) {
	const (
		min = 10 * time.Millisecond
		max = 80 * time.Millisecond
	)
	at := func(d time.Duration) time.Time { return time.Unix(0, 0).Add(d) }
	p := newReconnectPacer(min, max)

	// First attempt is immediate.
	if w := p.wait(at(0)); w != 0 {
		t.Fatalf("first dial waits %v, want 0", w)
	}
	p.dialed(at(0))

	// Repeated failures: each served gap doubles the spacing, capped.
	now := time.Duration(0)
	for i, want := range []time.Duration{min, 2 * min, 4 * min, max, max} {
		w := p.wait(at(now))
		if w != want {
			t.Fatalf("failure %d: wait %v, want %v", i, w, want)
		}
		now += w
		p.served()
		p.dialed(at(now))
	}

	// A connection that establishes but dies young must keep the raised
	// spacing: a write inside RetryMax of connecting does not reset.
	p.connected(at(now))
	p.wrote(at(now + max/2))
	if got := p.wait(at(now)); got != max {
		t.Fatalf("young connection reset backoff: wait %v, want %v", got, max)
	}

	// Redial after the young death still observes the full spacing.
	now += max
	p.dialed(at(now))

	// A connection that survives RetryMax and then writes has proven
	// itself: backoff returns to RetryMin.
	p.connected(at(now))
	p.wrote(at(now + max))
	if got := p.current(); got != min {
		t.Fatalf("proven connection left backoff at %v, want %v", got, min)
	}

	// And the next outage starts the ladder from the bottom again.
	now += max + min
	p.dialed(at(now))
	if w := p.wait(at(now)); w != min {
		t.Fatalf("post-reset wait %v, want %v", w, min)
	}
}

// TestReconnectPacerElapsedGap: a dial attempted long after the last
// one owes no wait — the gap was already served by the calendar.
func TestReconnectPacerElapsedGap(t *testing.T) {
	at := func(d time.Duration) time.Time { return time.Unix(0, 0).Add(d) }
	p := newReconnectPacer(10*time.Millisecond, 80*time.Millisecond)
	p.dialed(at(0))
	if w := p.wait(at(time.Second)); w != 0 {
		t.Fatalf("stale last dial still waits %v", w)
	}
}
