package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"indulgence/internal/chaos/clock"
	"indulgence/internal/model"
	"indulgence/internal/wire"
)

// TCPOptions tunes a multi-process TCP endpoint. The zero value is
// usable: sane timeouts, silent diagnostics.
type TCPOptions struct {
	// DialTimeout bounds each outbound connection attempt (default 3s).
	// Without it a black-holed peer would wedge the dialer forever; with
	// it the attempt fails, the error names the peer, and the bounded
	// backoff below schedules the next try.
	DialTimeout time.Duration
	// HandshakeTimeout bounds how long an accepted connection may take
	// to present its hello frame, and how long writing the outbound
	// hello may take (default 3s).
	HandshakeTimeout time.Duration
	// RetryMin and RetryMax bound the reconnect backoff: the first
	// redial waits RetryMin, doubling per failure up to RetryMax
	// (defaults 50ms and 2s). A restarted peer is therefore re-reached
	// within one RetryMax of coming back.
	RetryMin, RetryMax time.Duration
	// Logf, when non-nil, receives connection-lifecycle diagnostics
	// (dial failures, handshake rejections). The transport never logs
	// frame contents.
	Logf func(format string, args ...any)
	// Clock supplies the time the reconnect pacer observes (default
	// clock.Real). Socket deadlines stay on the wall clock regardless —
	// the kernel enforces them — but backoff spacing is schedulable
	// state, so under a virtual clock redial pacing compresses with the
	// rest of the run.
	Clock clock.Clock
}

// withDefaults returns o with zero fields replaced by defaults.
func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout == 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 3 * time.Second
	}
	if o.RetryMin == 0 {
		o.RetryMin = 50 * time.Millisecond
	}
	if o.RetryMax == 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	o.Clock = clock.Or(o.Clock)
	return o
}

// TCPEndpoint is one process of a multi-process cluster: it listens on
// its own PeerConfig address, accepts handshake-identified inbound
// connections from any peer, and owns one outbound connection per peer
// (the sender-owned i→j convention of the loopback cluster, kept).
//
// Outbound delivery is asynchronous: Send enqueues on the peer's link
// and never blocks on the network, and each link's writer goroutine
// dials lazily, redials with bounded backoff after any failure, and
// retries the frame a broken connection interrupted on the next
// connection. A peer that crashes and restarts (same address, fresh
// listener) is therefore rejoined automatically — the queued frames
// flush as soon as a redial lands — without restarting the cluster.
// Frames queued for a peer that never comes back are discarded at
// Close, like a mailbox's.
//
// Delivery across a connection break is at-most-once: frames the writer
// flushed in the instant between the peer dying and the break being
// detected are lost with the socket (TCP acknowledges nothing to the
// application). A per-connection watchdog severs the link the moment
// the peer closes, which keeps that window to microseconds; the frames
// it saves are retried on the next connection, and the loss that
// remains looks to the round protocol exactly like a transiently slow
// process — absorbed by the failure-detector discipline, never by
// safety, which rests on the journal.
//
// Connections open with a two-way hello handshake (wire.HelloRecord:
// cluster ID + sender ID in both directions): the dialer sends its
// hello first, the acceptor validates it and answers with its own, and
// only the ack makes the connection live. Endpoints therefore identify
// themselves instead of being identified by dial order, a connection
// from a different cluster is refused at accept time, and the refusal
// is visible to the dialer as a failed dial — not as frames silently
// written into a socket nobody reads.
type TCPEndpoint struct {
	cfg   PeerConfig
	opts  TCPOptions
	ln    net.Listener
	box   *mailbox
	links map[model.ProcessID]*peerLink

	// dialCtx cancels in-flight dial attempts at Close.
	dialCtx    context.Context
	dialCancel context.CancelFunc

	mu      sync.Mutex
	inbound map[net.Conn]struct{}
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
}

var _ Transport = (*TCPEndpoint)(nil)

// NewTCPEndpoint validates cfg, listens on the self peer's address and
// starts the accept loop and one outbound link per peer. Peers are
// dialed lazily on first send, so construction succeeds even while
// peers are still coming up — the links redial with bounded backoff
// until they land.
func NewTCPEndpoint(cfg PeerConfig, opts TCPOptions) (*TCPEndpoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	addr, err := cfg.SelfAddr()
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: p%d listen on %s: %w", cfg.Self, addr, err)
	}
	return newTCPEndpoint(ln, cfg, opts), nil
}

// newTCPEndpoint assembles an endpoint over an already-bound listener
// (NewTCPCluster binds ephemeral ports before peer addresses are known).
func newTCPEndpoint(ln net.Listener, cfg PeerConfig, opts TCPOptions) *TCPEndpoint {
	e := &TCPEndpoint{
		cfg:     cfg,
		opts:    opts.withDefaults(),
		ln:      ln,
		box:     newMailbox(),
		links:   make(map[model.ProcessID]*peerLink, len(cfg.Peers)),
		inbound: make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	e.dialCtx, e.dialCancel = context.WithCancel(context.Background())
	for _, p := range cfg.Peers {
		if p.ID == cfg.Self {
			continue
		}
		l := &peerLink{ep: e, peer: p.ID, addr: p.Addr, wake: make(chan struct{}, 1),
			pace: newReconnectPacer(e.opts.RetryMin, e.opts.RetryMax)}
		e.links[p.ID] = l
		e.wg.Add(1)
		go l.run()
	}
	e.acceptLoop()
	return e
}

// Self implements Transport.
func (e *TCPEndpoint) Self() model.ProcessID { return e.cfg.Self }

// Addr returns the address the endpoint is listening on — the bound
// port, useful when the config asked for an ephemeral one.
func (e *TCPEndpoint) Addr() net.Addr { return e.ln.Addr() }

// Send implements Transport. Self-sends short-circuit through the
// mailbox; peer sends enqueue on the peer's link and never block on the
// network (an unreachable peer must not wedge the round loop — its
// frames queue until the link redials).
func (e *TCPEndpoint) Send(to model.ProcessID, frame []byte) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if to == e.cfg.Self {
		e.box.put(frame)
		return nil
	}
	if len(frame) > wire.MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", wire.ErrFrameTooLarge, len(frame))
	}
	l, ok := e.links[to]
	if !ok {
		return fmt.Errorf("transport: no peer p%d in p%d's config", to, e.cfg.Self)
	}
	l.enqueue(frame)
	return nil
}

// Recv implements Transport.
func (e *TCPEndpoint) Recv() <-chan []byte { return e.box.out }

// Connected returns the set of peers with an established outbound
// connection (dialed and hello written) right now.
func (e *TCPEndpoint) Connected() model.PIDSet {
	var s model.PIDSet
	for id, l := range e.links {
		l.mu.Lock()
		if l.conn != nil {
			s.Add(id)
		}
		l.mu.Unlock()
	}
	return s
}

// LinkError returns the last connection error of the link to peer (nil
// if the link never failed or the peer is unknown). The error names
// both endpoints of the failing link.
func (e *TCPEndpoint) LinkError(to model.ProcessID) error {
	l, ok := e.links[to]
	if !ok {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr
}

// Close implements Transport: it stops the listener, cancels in-flight
// dials, severs every connection, and waits for every goroutine the
// endpoint ever started — accept loop, inbound readers, link writers —
// to exit before closing the mailbox. Shutdown is deterministic: no
// goroutine outlives Close, so -race tests can tear clusters down
// mid-traffic without flakes.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	inbound := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		inbound = append(inbound, c)
	}
	e.mu.Unlock()
	close(e.done)
	e.dialCancel()
	err := e.ln.Close()
	for _, c := range inbound {
		_ = c.Close()
	}
	for _, l := range e.links {
		l.sever(nil)
	}
	e.wg.Wait()
	e.box.close()
	return err
}

// logf forwards to the options' diagnostics sink.
func (e *TCPEndpoint) logf(format string, args ...any) { e.opts.Logf(format, args...) }

// acceptLoop accepts inbound connections; each is handshake-checked and
// then pumped into the mailbox until it closes.
func (e *TCPEndpoint) acceptLoop() {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			conn, err := e.ln.Accept()
			if err != nil {
				return
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				// The round protocol exchanges small frames at high
				// rate; Nagle would batch them behind ACK delays.
				_ = tc.SetNoDelay(true)
			}
			e.mu.Lock()
			if e.closed {
				e.mu.Unlock()
				_ = conn.Close()
				return
			}
			e.inbound[conn] = struct{}{}
			e.mu.Unlock()
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				e.serveInbound(conn)
			}()
		}
	}()
}

// serveInbound validates one accepted connection's hello and then pumps
// its frames into the mailbox. A connection that fails the handshake —
// wrong cluster, invalid sender, no hello within the deadline — is
// closed without ever reaching the mailbox.
func (e *TCPEndpoint) serveInbound(conn net.Conn) {
	defer func() {
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
		_ = conn.Close()
	}()
	//indulgence:wallclock socket deadlines are enforced by the kernel against wall time
	_ = conn.SetReadDeadline(time.Now().Add(e.opts.HandshakeTimeout))
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		e.logf("transport: p%d: inbound %s: no hello: %v", e.cfg.Self, conn.RemoteAddr(), err)
		return
	}
	hello, _, err := wire.DecodeHelloRecord(frame)
	if err != nil {
		e.logf("transport: p%d: inbound %s: bad hello: %v", e.cfg.Self, conn.RemoteAddr(), err)
		return
	}
	if hello.Cluster != e.cfg.ClusterID() {
		e.logf("transport: p%d: inbound %s: cluster %q, want %q — refused",
			e.cfg.Self, conn.RemoteAddr(), hello.Cluster, e.cfg.ClusterID())
		return
	}
	if int(hello.Sender) > e.cfg.N() || hello.Sender == e.cfg.Self {
		e.logf("transport: p%d: inbound %s: sender p%d is not a peer — refused",
			e.cfg.Self, conn.RemoteAddr(), hello.Sender)
		return
	}
	// Ack with our own hello: the dialer treats the connection as live
	// only once this lands, so refusals above are visible as dial
	// failures on the other side instead of silent frame loss.
	ack, err := wire.AppendHelloRecord(nil, wire.HelloRecord{Cluster: e.cfg.ClusterID(), Sender: e.cfg.Self})
	if err != nil {
		e.logf("transport: p%d: inbound %s: ack: %v", e.cfg.Self, conn.RemoteAddr(), err)
		return
	}
	//indulgence:wallclock socket deadlines are enforced by the kernel against wall time
	_ = conn.SetWriteDeadline(time.Now().Add(e.opts.HandshakeTimeout))
	if err := wire.WriteFrame(conn, ack); err != nil {
		e.logf("transport: p%d: inbound %s: ack: %v", e.cfg.Self, conn.RemoteAddr(), err)
		return
	}
	_ = conn.SetWriteDeadline(time.Time{})
	_ = conn.SetReadDeadline(time.Time{})
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		e.box.put(frame)
	}
}

// peerLink is one sender-owned outbound connection: an unbounded FIFO of
// frames drained by a writer goroutine that dials (and redials) the peer.
// The unbounded queue mirrors the mailbox's contract — a sender must
// never block on a slow or dead peer, and frames are not dropped while
// the endpoint lives.
type peerLink struct {
	ep   *TCPEndpoint
	peer model.ProcessID
	addr string
	wake chan struct{}

	mu      sync.Mutex
	queue   [][]byte
	conn    net.Conn // live outbound connection, severed by Close
	lastErr error

	// pace is the reconnect pacing state (see reconnectPacer), touched
	// only by the writer goroutine.
	pace reconnectPacer
}

// enqueue appends a frame for the writer goroutine.
func (l *peerLink) enqueue(frame []byte) {
	l.mu.Lock()
	l.queue = append(l.queue, frame)
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// maxWriteBatch bounds how many queued frames one connection write may
// coalesce. Coalescing matters: the round protocol fans small frames
// out at high rate, and one syscall per drained batch beats one per
// frame whenever a queue builds up.
const maxWriteBatch = 64

// run is the link's writer loop: wait for frames, ensure a connection,
// coalesce the queued prefix into one write, pop what was written.
// Frames interrupted by a broken connection stay at the head of the
// queue and are retried on the next connection, so per-link FIFO order
// survives reconnects (the receiver may see a duplicated prefix of the
// interrupted batch, which the round protocol's receive-set dedupe
// absorbs).
func (l *peerLink) run() {
	defer l.ep.wg.Done()
	var buf []byte
	for {
		frames, ok := l.peekBatch()
		if !ok {
			return
		}
		conn := l.ensureConn()
		if conn == nil {
			return // endpoint closing
		}
		buf = buf[:0]
		for _, f := range frames {
			// Send already bounds frame sizes; AppendFrame cannot fail.
			buf, _ = wire.AppendFrame(buf, f)
		}
		if _, err := conn.Write(buf); err != nil {
			l.sever(fmt.Errorf("transport: write p%d->p%d: %w", l.ep.cfg.Self, l.peer, err))
			continue
		}
		l.popN(len(frames))
		l.pace.wrote(l.ep.opts.Clock.Now())
	}
}

// peekBatch blocks until frames are queued, returning up to
// maxWriteBatch of them without removing any, or reports the endpoint
// closed.
func (l *peerLink) peekBatch() ([][]byte, bool) {
	for {
		l.mu.Lock()
		if n := len(l.queue); n > 0 {
			if n > maxWriteBatch {
				n = maxWriteBatch
			}
			frames := l.queue[:n:n]
			l.mu.Unlock()
			return frames, true
		}
		l.mu.Unlock()
		select {
		case <-l.wake:
		case <-l.ep.done:
			return nil, false
		}
	}
}

// popN removes the n frames peekBatch returned after a successful write.
func (l *peerLink) popN(n int) {
	l.mu.Lock()
	l.queue = l.queue[n:]
	l.mu.Unlock()
}

// ensureConn returns the live connection, dialing with bounded backoff
// until one lands or the endpoint closes (nil). Backoff state lives on
// the link, not the call: it grows whenever attempts would come faster
// than the current backoff — failed dials and connections that died
// young alike — and is reset by the writer only once a connection
// proves itself (a successful write past RetryMax of age).
func (l *peerLink) ensureConn() net.Conn {
	l.mu.Lock()
	conn := l.conn
	l.mu.Unlock()
	for conn == nil {
		select {
		case <-l.ep.done:
			return nil
		default:
		}
		// Space attempts by the current backoff since the last one —
		// this paces failed dials and connections that died young
		// alike — and double the backoff once a gap has actually been
		// served, so the "retrying in" the failure below logs is the
		// wait the next attempt really observes.
		clk := l.ep.opts.Clock
		if wait := l.pace.wait(clk.Now()); wait > 0 {
			t := clk.NewTimer(wait)
			select {
			case <-t.C():
			case <-l.ep.done:
				t.Stop()
				return nil
			}
			l.pace.served()
		}
		l.pace.dialed(clk.Now())
		c, err := l.dialOnce()
		if err != nil {
			l.mu.Lock()
			l.lastErr = err
			l.mu.Unlock()
			l.ep.logf("%v (retrying in %s)", err, l.pace.current())
			continue
		}
		l.mu.Lock()
		select {
		case <-l.ep.done:
			l.mu.Unlock()
			_ = c.Close()
			return nil
		default:
		}
		l.conn = c
		l.mu.Unlock()
		conn = c
		l.pace.connected(l.ep.opts.Clock.Now())
		l.watch(c)
	}
	return conn
}

// watch severs the link the moment the peer closes the connection.
// Outbound connections are write-only — the peer never sends on them —
// so a blocked Read doubles as a free death detector: it returns
// exactly when the connection breaks (FIN, RST, or local close), which
// stops the writer from flushing queued frames into a dead socket long
// before a write would notice.
func (l *peerLink) watch(conn net.Conn) {
	l.ep.wg.Add(1)
	go func() {
		defer l.ep.wg.Done()
		buf := make([]byte, 1)
		_, err := conn.Read(buf)
		if err == nil {
			err = fmt.Errorf("unexpected inbound data")
		}
		l.severConn(conn, fmt.Errorf("transport: link p%d->p%d down: %w", l.ep.cfg.Self, l.peer, err))
	}()
}

// dialOnce makes one bounded connection attempt and performs the
// dialer's half of the two-way handshake: send our hello, then require
// the acceptor's hello back before the connection counts as live. The
// ack is what makes rejection visible — an acceptor that refuses the
// hello (wrong cluster, invalid sender) closes without answering, so
// the dial FAILS here, queued frames stay queued, and the backoff paces
// the retries; without it, frames written into a rejected socket would
// be silently lost. It also proves we reached the peer we addressed:
// an ack from the wrong process ID means the address map is stale.
// Every error names the link's endpoints.
func (l *peerLink) dialOnce() (net.Conn, error) {
	d := net.Dialer{Timeout: l.ep.opts.DialTimeout}
	conn, err := d.DialContext(l.ep.dialCtx, "tcp", l.addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial p%d->p%d (%s): %w", l.ep.cfg.Self, l.peer, l.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // small round frames must not wait out Nagle
	}
	fail := func(err error) (net.Conn, error) {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: handshake p%d->p%d (%s): %w", l.ep.cfg.Self, l.peer, l.addr, err)
	}
	hello, err := wire.AppendHelloRecord(nil, wire.HelloRecord{
		Cluster: l.ep.cfg.ClusterID(), Sender: l.ep.cfg.Self,
	})
	if err != nil {
		return fail(err)
	}
	//indulgence:wallclock socket deadlines are enforced by the kernel against wall time
	deadline := time.Now().Add(l.ep.opts.HandshakeTimeout)
	_ = conn.SetDeadline(deadline)
	if err := wire.WriteFrame(conn, hello); err != nil {
		return fail(err)
	}
	ackFrame, err := wire.ReadFrame(conn)
	if err != nil {
		return fail(fmt.Errorf("no hello ack (refused?): %w", err))
	}
	ack, _, err := wire.DecodeHelloRecord(ackFrame)
	if err != nil {
		return fail(err)
	}
	if ack.Cluster != l.ep.cfg.ClusterID() {
		return fail(fmt.Errorf("peer is in cluster %q, want %q", ack.Cluster, l.ep.cfg.ClusterID()))
	}
	if ack.Sender != l.peer {
		return fail(fmt.Errorf("address answered as p%d, want p%d (stale peer map?)", ack.Sender, l.peer))
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, nil
}

// sever tears the live connection down (recording why), so the writer
// redials. Close calls it with a nil reason to unblock a writer stuck
// in a write.
func (l *peerLink) sever(reason error) { l.severConn(nil, reason) }

// severConn severs only if the live connection is still conn (nil
// matches any), so a watchdog for a connection already replaced by a
// redial cannot tear the fresh one down.
func (l *peerLink) severConn(conn net.Conn, reason error) {
	l.mu.Lock()
	if conn != nil && l.conn != conn {
		l.mu.Unlock()
		_ = conn.Close()
		return
	}
	live := l.conn
	l.conn = nil
	if reason != nil {
		l.lastErr = reason
	}
	l.mu.Unlock()
	if live != nil {
		_ = live.Close()
	}
	if reason != nil && live != nil {
		l.ep.logf("%v (will reconnect)", reason)
	}
}

// TCPCluster runs n processes of one OS process as TCP endpoints on the
// loopback interface, each listening on an ephemeral port — the
// in-process convenience constructor the tests, benchmarks and
// single-machine CLI modes use. The endpoints are real TCPEndpoints
// built from a shared PeerConfig, so the loopback cluster exercises the
// exact listener/dialer/handshake/reconnect path a multi-process
// deployment runs.
type TCPCluster struct {
	n     int
	nodes []*TCPEndpoint
}

// NewTCPCluster binds n loopback listeners on ephemeral ports and
// builds one endpoint per process from the resulting peer list.
// Connections are dialed lazily on first send.
func NewTCPCluster(n int) (*TCPCluster, error) {
	if n < 1 || n > model.MaxProcesses {
		return nil, fmt.Errorf("transport: invalid cluster size %d", n)
	}
	lns := make([]net.Listener, n)
	peers := make([]Peer, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				_ = l.Close()
			}
			return nil, fmt.Errorf("transport: listen for p%d: %w", i+1, err)
		}
		lns[i] = ln
		peers[i] = Peer{ID: model.ProcessID(i + 1), Addr: ln.Addr().String()}
	}
	c := &TCPCluster{n: n, nodes: make([]*TCPEndpoint, n)}
	for i := 0; i < n; i++ {
		cfg := PeerConfig{Self: model.ProcessID(i + 1), Peers: peers}
		c.nodes[i] = newTCPEndpoint(lns[i], cfg, TCPOptions{})
	}
	return c, nil
}

// Endpoint returns the transport endpoint of process p.
func (c *TCPCluster) Endpoint(p model.ProcessID) (Transport, error) {
	if p < 1 || int(p) > c.n {
		return nil, fmt.Errorf("transport: no endpoint %d in cluster of %d", p, c.n)
	}
	return c.nodes[p-1], nil
}

// Close shuts down every endpoint.
func (c *TCPCluster) Close() error {
	var firstErr error
	for _, ep := range c.nodes {
		if ep == nil {
			continue
		}
		if err := ep.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
