package transport

import (
	"fmt"
	"net"
	"sync"

	"indulgence/internal/model"
	"indulgence/internal/wire"
)

// TCPCluster runs each process as a TCP endpoint on the loopback
// interface: every process listens on an ephemeral port and dials every
// peer once, so each ordered pair of processes has one sender-owned
// connection carrying length-prefixed frames. It demonstrates that the
// algorithms run unchanged over a real network stack.
type TCPCluster struct {
	n     int
	nodes []*tcpEndpoint
}

// NewTCPCluster starts n loopback endpoints and fully connects them.
func NewTCPCluster(n int) (*TCPCluster, error) {
	if n < 1 || n > model.MaxProcesses {
		return nil, fmt.Errorf("transport: invalid cluster size %d", n)
	}
	c := &TCPCluster{n: n, nodes: make([]*tcpEndpoint, n)}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: listen for p%d: %w", i+1, err)
		}
		ep := &tcpEndpoint{
			self:  model.ProcessID(i + 1),
			ln:    ln,
			box:   newMailbox(),
			conns: make(map[model.ProcessID]net.Conn, n),
		}
		ep.acceptLoop()
		c.nodes[i] = ep
	}
	// Dial every peer: sender i owns the connection i→j.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			conn, err := net.Dial("tcp", c.nodes[j].ln.Addr().String())
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("transport: dial p%d->p%d: %w", i+1, j+1, err)
			}
			c.nodes[i].conns[model.ProcessID(j+1)] = conn
		}
	}
	return c, nil
}

// Endpoint returns the transport endpoint of process p.
func (c *TCPCluster) Endpoint(p model.ProcessID) (Transport, error) {
	if p < 1 || int(p) > c.n {
		return nil, fmt.Errorf("transport: no endpoint %d in cluster of %d", p, c.n)
	}
	return c.nodes[p-1], nil
}

// Close shuts down every endpoint.
func (c *TCPCluster) Close() error {
	var firstErr error
	for _, ep := range c.nodes {
		if ep == nil {
			continue
		}
		if err := ep.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// tcpEndpoint is one process's TCP endpoint.
type tcpEndpoint struct {
	self model.ProcessID
	ln   net.Listener
	box  *mailbox

	mu      sync.Mutex
	conns   map[model.ProcessID]net.Conn // sender-owned outbound connections
	inbound []net.Conn
	wg      sync.WaitGroup
	closed  bool
}

var _ Transport = (*tcpEndpoint)(nil)

// acceptLoop accepts inbound connections and pumps their frames into the
// mailbox until the listener closes.
func (e *tcpEndpoint) acceptLoop() {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			conn, err := e.ln.Accept()
			if err != nil {
				return
			}
			e.mu.Lock()
			if e.closed {
				e.mu.Unlock()
				_ = conn.Close()
				return
			}
			e.inbound = append(e.inbound, conn)
			e.mu.Unlock()
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				for {
					frame, err := wire.ReadFrame(conn)
					if err != nil {
						return
					}
					e.box.put(frame)
				}
			}()
		}
	}()
}

// Self implements Transport.
func (e *tcpEndpoint) Self() model.ProcessID { return e.self }

// Send implements Transport. Self-sends short-circuit through the mailbox
// (a process always hears itself without touching the network).
func (e *tcpEndpoint) Send(to model.ProcessID, frame []byte) error {
	if to == e.self {
		e.box.put(frame)
		return nil
	}
	e.mu.Lock()
	conn, ok := e.conns[to]
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("transport: no connection p%d->p%d", e.self, to)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return wire.WriteFrame(conn, frame)
}

// Recv implements Transport.
func (e *tcpEndpoint) Recv() <-chan []byte { return e.box.out }

// Close implements Transport: stops the listener, closes every connection
// and waits for the reader goroutines to exit.
func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	inbound := e.inbound
	e.mu.Unlock()
	err := e.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	for _, c := range inbound {
		_ = c.Close()
	}
	e.wg.Wait()
	e.box.close()
	return err
}
