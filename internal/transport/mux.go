package transport

import (
	"fmt"
	"sync"

	"indulgence/internal/metrics"
	"indulgence/internal/model"
	"indulgence/internal/wire"
)

// streamKey addresses one virtual endpoint of a Mux: a consensus group
// and an instance within it. The single-group service uses group 0 —
// the compatibility group — exclusively.
type streamKey struct {
	group    uint64
	instance uint64
}

// groupRetired is one group's retirement state: every instance ID below
// `below` is retired, plus every member of set. Services retire
// instances roughly in open order, so the set stays at most a few
// inflight-bounds large instead of growing with service lifetime.
type groupRetired struct {
	below uint64
	set   map[uint64]struct{}
}

// Mux multiplexes many consensus instances — across many independent
// consensus groups — over one underlying Transport endpoint, so a whole
// sharded runtime's worth of concurrent instances shares a single set
// of physical connections (one Hub mailbox, or one TCP connection per
// ordered process pair) instead of one cluster per instance. Outbound
// frames are wrapped in the wire envelope carrying the (group,
// instance) address; inbound frames are routed to the matching virtual
// endpoint. Version-0 frames from pre-instance peers route to (0, 0)
// and version-1 frames to (0, instance): group 0 is the compatibility
// group, and a mux used only through the group-0 entry points behaves
// byte-identically to the pre-group mux.
//
// Frames for an instance that has not been opened locally yet are
// buffered, never dropped — a peer shard may legitimately start an
// instance and broadcast before this process opens it, and the reliable-
// channel axiom must survive multiplexing. Frames for a retired (closed)
// instance are dropped: they can only be post-decision flood traffic.
// Retirement state is tracked per group, so each group's frontier
// advances independently of its neighbors'.
type Mux struct {
	ep        Transport
	onPending func(group, instance uint64)

	mu         sync.Mutex
	streams    map[streamKey]*muxStream
	retired    map[uint64]*groupRetired
	closed     bool
	done       chan struct{}
	routerDone chan struct{}

	mIn, mOut *metrics.Counter
}

// NewMux starts a multiplexer over ep. The mux reads every inbound frame
// of ep from the moment of creation; the caller must no longer use
// ep.Recv directly.
func NewMux(ep Transport) *Mux { return NewMuxGroupNotify(ep, nil) }

// NewMuxNotify is NewMux with a pending-instance callback for group 0:
// onPending (when non-nil) is invoked from the router goroutine every
// time a frame arrives for a group-0 instance that is not currently
// open locally — the signal a single-group multi-process service member
// uses to join an instance a peer started. Frames of other groups
// buffer without notifying. The callback must not block (it stalls
// every instance's inbound traffic if it does) and may be invoked
// repeatedly for the same instance while it stays unopened, so
// receivers dedupe.
func NewMuxNotify(ep Transport, onPending func(instance uint64)) *Mux {
	if onPending == nil {
		return NewMuxGroupNotify(ep, nil)
	}
	return NewMuxGroupNotify(ep, func(group, instance uint64) {
		if group == 0 {
			onPending(instance)
		}
	})
}

// NewMuxGroupNotify is NewMux with the group-aware pending callback:
// onPending (when non-nil) is invoked from the router goroutine every
// time a frame arrives for a (group, instance) stream that is not
// currently open locally. The sharded peer runtime uses it to route
// join signals to the owning group's service. The same non-blocking and
// dedupe requirements as NewMuxNotify apply.
func NewMuxGroupNotify(ep Transport, onPending func(group, instance uint64)) *Mux {
	m := &Mux{
		ep:         ep,
		onPending:  onPending,
		streams:    make(map[streamKey]*muxStream),
		retired:    make(map[uint64]*groupRetired),
		done:       make(chan struct{}),
		routerDone: make(chan struct{}),
	}
	go m.route()
	return m
}

// Self returns the identity of the underlying endpoint.
func (m *Mux) Self() model.ProcessID { return m.ep.Self() }

// Instrument attaches frame counters: in counts every well-formed
// inbound frame the router delivers or buffers, out every frame sent
// through a virtual endpoint. Nil counters (the uninstrumented
// default) cost nothing.
func (m *Mux) Instrument(in, out *metrics.Counter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mIn, m.mOut = in, out
}

// Open returns the virtual endpoint of the given group-0 consensus
// instance; it is OpenGroup(0, instance).
func (m *Mux) Open(instance uint64) (Transport, error) {
	return m.OpenGroup(0, instance)
}

// OpenGroup returns the virtual endpoint of the given consensus
// instance of the given group. Frames that arrived for the instance
// before OpenGroup are already buffered and will be delivered in order.
// Opening an instance twice, or after it was retired, is an error.
func (m *Mux) OpenGroup(group, instance uint64) (Transport, error) {
	key := streamKey{group, instance}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.isRetiredLocked(key) {
		return nil, fmt.Errorf("transport: group %d instance %d already retired", group, instance)
	}
	s, ok := m.streams[key]
	if !ok {
		s = &muxStream{mux: m, key: key, box: newMailbox()}
		m.streams[key] = s
	} else if s.opened {
		return nil, fmt.Errorf("transport: group %d instance %d already open", group, instance)
	}
	s.opened = true
	return s, nil
}

// Retire closes a group-0 instance's virtual endpoint; it is
// RetireGroup(0, instance).
func (m *Mux) Retire(instance uint64) { m.RetireGroup(0, instance) }

// RetireGroup closes an instance's virtual endpoint and permanently
// drops any late frames addressed to it. Safe to call for instances
// never opened.
func (m *Mux) RetireGroup(group, instance uint64) {
	key := streamKey{group, instance}
	m.mu.Lock()
	s := m.streams[key]
	delete(m.streams, key)
	if !m.isRetiredLocked(key) {
		r := m.retiredFor(group)
		r.set[instance] = struct{}{}
		for {
			if _, ok := r.set[r.below]; !ok {
				break
			}
			delete(r.set, r.below)
			r.below++
		}
	}
	m.mu.Unlock()
	if s != nil {
		s.box.close()
	}
}

// RetireBelow bulk-retires group-0 instances; it is
// RetireGroupBelow(0, frontier).
func (m *Mux) RetireBelow(frontier uint64) { m.RetireGroupBelow(0, frontier) }

// RetireGroupBelow retires every instance of group with ID below
// frontier at once — the recovery path's bulk retirement. A restarted
// service raises its group's frontier past every journaled instance, so
// frames still in flight from a previous process lifetime (flood
// traffic of instances decided before the crash) are dropped on arrival
// instead of buffering forever for instances nobody will open. Buffered
// frames of such instances are discarded too; other groups' streams are
// untouched. A no-op when frontier does not extend the group's retired
// prefix.
func (m *Mux) RetireGroupBelow(group, frontier uint64) {
	m.mu.Lock()
	r := m.retiredFor(group)
	if frontier <= r.below {
		m.mu.Unlock()
		return
	}
	var stale []*muxStream
	for key, s := range m.streams {
		if key.group == group && key.instance < frontier {
			delete(m.streams, key)
			stale = append(stale, s)
		}
	}
	for id := range r.set {
		if id < frontier {
			delete(r.set, id)
		}
	}
	r.below = frontier
	for {
		if _, ok := r.set[r.below]; !ok {
			break
		}
		delete(r.set, r.below)
		r.below++
	}
	m.mu.Unlock()
	for _, s := range stale {
		s.box.close()
	}
}

// Close shuts the mux down: every virtual endpoint's receive channel
// closes and the router stops. The underlying endpoint is left open — it
// belongs to whoever created it.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	streams := make([]*muxStream, 0, len(m.streams))
	for _, s := range m.streams {
		streams = append(streams, s)
	}
	m.streams = nil
	m.mu.Unlock()
	close(m.done)
	<-m.routerDone
	for _, s := range streams {
		s.box.close()
	}
	return nil
}

// retiredFor returns (creating if needed) a group's retirement state;
// callers hold mu.
func (m *Mux) retiredFor(group uint64) *groupRetired {
	r, ok := m.retired[group]
	if !ok {
		r = &groupRetired{set: make(map[uint64]struct{})}
		m.retired[group] = r
	}
	return r
}

// isRetiredLocked reports whether key was retired; callers hold mu.
func (m *Mux) isRetiredLocked(key streamKey) bool {
	r, ok := m.retired[key.group]
	if !ok {
		return false
	}
	if key.instance < r.below {
		return true
	}
	_, ok = r.set[key.instance]
	return ok
}

// route moves inbound frames from the underlying endpoint to the virtual
// endpoint addressed by their (group, instance), creating buffer streams
// for instances not opened yet. It exits when the mux or the underlying
// endpoint closes; virtual receive channels of a closed underlying
// endpoint close too, so round loops observe the closure.
func (m *Mux) route() {
	defer close(m.routerDone)
	for {
		select {
		case <-m.done:
			return
		case frame, ok := <-m.ep.Recv():
			if !ok {
				m.mu.Lock()
				m.closed = true
				streams := make([]*muxStream, 0, len(m.streams))
				for _, s := range m.streams {
					streams = append(streams, s)
				}
				m.streams = nil
				m.mu.Unlock()
				for _, s := range streams {
					s.box.close()
				}
				return
			}
			group, instance, inner, err := wire.StripGroup(frame)
			if err != nil {
				continue // a malformed envelope is dropped, like a malformed message
			}
			key := streamKey{group, instance}
			m.mu.Lock()
			if m.closed || m.isRetiredLocked(key) {
				m.mu.Unlock()
				continue
			}
			m.mIn.Inc()
			s, ok := m.streams[key]
			if !ok {
				s = &muxStream{mux: m, key: key, box: newMailbox()}
				m.streams[key] = s
			}
			pending := !s.opened
			m.mu.Unlock()
			s.box.put(inner)
			if pending && m.onPending != nil {
				m.onPending(group, instance)
			}
		}
	}
}

// muxStream is one (group, instance)'s virtual endpoint over a Mux.
type muxStream struct {
	mux    *Mux
	key    streamKey
	box    *mailbox
	opened bool
}

var _ Transport = (*muxStream)(nil)

// Self implements Transport.
func (s *muxStream) Self() model.ProcessID { return s.mux.Self() }

// Send implements Transport: the frame travels over the underlying
// endpoint wrapped in the envelope addressing the stream. Frames must be
// version-0 wire frames (bare messages), which is what the runtime
// produces. Group 0 emits the pre-group layouts — instance 0 sends
// bare (it is the compatibility stream, and a bare frame routes to
// (0, 0) on any peer, muxed or not), other group-0 instances the
// version-1 envelope — so a single-group deployment's frames are
// byte-identical to what it sent before groups existed.
//
// Sends on a closed mux or a retired instance fail with ErrClosed
// instead of leaking onto the shared endpoint: round loops treat a send
// failure as terminal, which gives an aborted service's leftover nodes
// crash-stop semantics — a successor service reusing the endpoints (and,
// past the recovered frontier, the instance IDs) never sees their
// frames.
func (s *muxStream) Send(to model.ProcessID, frame []byte) error {
	s.mux.mu.Lock()
	dead := s.mux.closed || s.mux.isRetiredLocked(s.key)
	out := s.mux.mOut
	s.mux.mu.Unlock()
	if dead {
		return ErrClosed
	}
	out.Inc()
	if s.key.group == 0 && s.key.instance == 0 {
		return s.mux.ep.Send(to, frame)
	}
	wrapped := wire.AppendGroupHeader(make([]byte, 0, len(frame)+20), s.key.group, s.key.instance)
	return s.mux.ep.Send(to, append(wrapped, frame...))
}

// Recv implements Transport.
func (s *muxStream) Recv() <-chan []byte { return s.box.out }

// Close implements Transport by retiring the instance on the mux.
func (s *muxStream) Close() error {
	s.mux.RetireGroup(s.key.group, s.key.instance)
	return nil
}
