package transport

import (
	"fmt"
	"sync"

	"indulgence/internal/model"
	"indulgence/internal/wire"
)

// Mux multiplexes many consensus instances over one underlying Transport
// endpoint, so a whole service's worth of concurrent instances shares a
// single set of physical connections (one Hub mailbox, or one TCP
// connection per ordered process pair) instead of one cluster per
// instance. Outbound frames are wrapped in the wire version-1 envelope
// carrying the instance ID; inbound frames are routed to the matching
// virtual endpoint by that ID. Version-0 frames from pre-instance peers
// route to instance 0, the compatibility stream.
//
// Frames for an instance that has not been opened locally yet are
// buffered, never dropped — a peer shard may legitimately start an
// instance and broadcast before this process opens it, and the reliable-
// channel axiom must survive multiplexing. Frames for a retired (closed)
// instance are dropped: they can only be post-decision flood traffic.
type Mux struct {
	ep        Transport
	onPending func(instance uint64)

	mu      sync.Mutex
	streams map[uint64]*muxStream
	// retired tracks closed instance IDs awaiting frontier compaction:
	// every ID below retiredBelow is retired, plus every member of
	// retiredSet. Services retire instances roughly in open order, so the
	// set stays at most a few inflight-bounds large instead of growing
	// with service lifetime.
	retiredBelow uint64
	retiredSet   map[uint64]struct{}
	closed       bool
	done         chan struct{}
	routerDone   chan struct{}
}

// NewMux starts a multiplexer over ep. The mux reads every inbound frame
// of ep from the moment of creation; the caller must no longer use
// ep.Recv directly.
func NewMux(ep Transport) *Mux { return NewMuxNotify(ep, nil) }

// NewMuxNotify is NewMux with a pending-instance callback: onPending
// (when non-nil) is invoked from the router goroutine every time a frame
// arrives for an instance that is not currently open locally — the
// signal a multi-process service member uses to join an instance a peer
// started. The callback must not block (it stalls every instance's
// inbound traffic if it does) and may be invoked repeatedly for the same
// instance while it stays unopened, so receivers dedupe.
func NewMuxNotify(ep Transport, onPending func(instance uint64)) *Mux {
	m := &Mux{
		ep:         ep,
		onPending:  onPending,
		streams:    make(map[uint64]*muxStream),
		retiredSet: make(map[uint64]struct{}),
		done:       make(chan struct{}),
		routerDone: make(chan struct{}),
	}
	go m.route()
	return m
}

// Self returns the identity of the underlying endpoint.
func (m *Mux) Self() model.ProcessID { return m.ep.Self() }

// Open returns the virtual endpoint of the given consensus instance.
// Frames that arrived for the instance before Open are already buffered
// and will be delivered in order. Opening an instance twice, or after it
// was retired, is an error.
func (m *Mux) Open(instance uint64) (Transport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.isRetiredLocked(instance) {
		return nil, fmt.Errorf("transport: instance %d already retired", instance)
	}
	s, ok := m.streams[instance]
	if !ok {
		s = &muxStream{mux: m, instance: instance, box: newMailbox()}
		m.streams[instance] = s
	} else if s.opened {
		return nil, fmt.Errorf("transport: instance %d already open", instance)
	}
	s.opened = true
	return s, nil
}

// Retire closes an instance's virtual endpoint and permanently drops any
// late frames addressed to it. Safe to call for instances never opened.
func (m *Mux) Retire(instance uint64) {
	m.mu.Lock()
	s := m.streams[instance]
	delete(m.streams, instance)
	if !m.isRetiredLocked(instance) {
		m.retiredSet[instance] = struct{}{}
		for {
			if _, ok := m.retiredSet[m.retiredBelow]; !ok {
				break
			}
			delete(m.retiredSet, m.retiredBelow)
			m.retiredBelow++
		}
	}
	m.mu.Unlock()
	if s != nil {
		s.box.close()
	}
}

// RetireBelow retires every instance with ID below frontier at once —
// the recovery path's bulk retirement. A restarted service raises the
// frontier past every journaled instance, so frames still in flight from
// a previous process lifetime (flood traffic of instances decided before
// the crash) are dropped on arrival instead of buffering forever for
// instances nobody will open. Buffered frames of such instances are
// discarded too. A no-op when frontier does not extend the retired
// prefix.
func (m *Mux) RetireBelow(frontier uint64) {
	m.mu.Lock()
	if frontier <= m.retiredBelow {
		m.mu.Unlock()
		return
	}
	var stale []*muxStream
	for id, s := range m.streams {
		if id < frontier {
			delete(m.streams, id)
			stale = append(stale, s)
		}
	}
	for id := range m.retiredSet {
		if id < frontier {
			delete(m.retiredSet, id)
		}
	}
	m.retiredBelow = frontier
	for {
		if _, ok := m.retiredSet[m.retiredBelow]; !ok {
			break
		}
		delete(m.retiredSet, m.retiredBelow)
		m.retiredBelow++
	}
	m.mu.Unlock()
	for _, s := range stale {
		s.box.close()
	}
}

// Close shuts the mux down: every virtual endpoint's receive channel
// closes and the router stops. The underlying endpoint is left open — it
// belongs to whoever created it.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	streams := make([]*muxStream, 0, len(m.streams))
	for _, s := range m.streams {
		streams = append(streams, s)
	}
	m.streams = nil
	m.mu.Unlock()
	close(m.done)
	<-m.routerDone
	for _, s := range streams {
		s.box.close()
	}
	return nil
}

// isRetiredLocked reports whether instance was retired; callers hold mu.
func (m *Mux) isRetiredLocked(instance uint64) bool {
	if instance < m.retiredBelow {
		return true
	}
	_, ok := m.retiredSet[instance]
	return ok
}

// route moves inbound frames from the underlying endpoint to the virtual
// endpoint addressed by their instance ID, creating buffer streams for
// instances not opened yet. It exits when the mux or the underlying
// endpoint closes; virtual receive channels of a closed underlying
// endpoint close too, so round loops observe the closure.
func (m *Mux) route() {
	defer close(m.routerDone)
	for {
		select {
		case <-m.done:
			return
		case frame, ok := <-m.ep.Recv():
			if !ok {
				m.mu.Lock()
				m.closed = true
				streams := make([]*muxStream, 0, len(m.streams))
				for _, s := range m.streams {
					streams = append(streams, s)
				}
				m.streams = nil
				m.mu.Unlock()
				for _, s := range streams {
					s.box.close()
				}
				return
			}
			instance, inner, err := wire.StripInstance(frame)
			if err != nil {
				continue // a malformed envelope is dropped, like a malformed message
			}
			m.mu.Lock()
			if m.closed || m.isRetiredLocked(instance) {
				m.mu.Unlock()
				continue
			}
			s, ok := m.streams[instance]
			if !ok {
				s = &muxStream{mux: m, instance: instance, box: newMailbox()}
				m.streams[instance] = s
			}
			pending := !s.opened
			m.mu.Unlock()
			s.box.put(inner)
			if pending && m.onPending != nil {
				m.onPending(instance)
			}
		}
	}
}

// muxStream is one instance's virtual endpoint over a Mux.
type muxStream struct {
	mux      *Mux
	instance uint64
	box      *mailbox
	opened   bool
}

var _ Transport = (*muxStream)(nil)

// Self implements Transport.
func (s *muxStream) Self() model.ProcessID { return s.mux.Self() }

// Send implements Transport: the frame travels over the underlying
// endpoint wrapped in the instance envelope. Frames must be version-0
// wire frames (bare messages), which is what the runtime produces.
// Instance 0 sends them unwrapped — it is the compatibility stream, and a
// bare frame routes to instance 0 on any peer, muxed or not.
//
// Sends on a closed mux or a retired instance fail with ErrClosed
// instead of leaking onto the shared endpoint: round loops treat a send
// failure as terminal, which gives an aborted service's leftover nodes
// crash-stop semantics — a successor service reusing the endpoints (and,
// past the recovered frontier, the instance IDs) never sees their
// frames.
func (s *muxStream) Send(to model.ProcessID, frame []byte) error {
	s.mux.mu.Lock()
	dead := s.mux.closed || s.mux.isRetiredLocked(s.instance)
	s.mux.mu.Unlock()
	if dead {
		return ErrClosed
	}
	if s.instance == 0 {
		return s.mux.ep.Send(to, frame)
	}
	wrapped := wire.AppendInstanceHeader(make([]byte, 0, len(frame)+10), s.instance)
	return s.mux.ep.Send(to, append(wrapped, frame...))
}

// Recv implements Transport.
func (s *muxStream) Recv() <-chan []byte { return s.box.out }

// Close implements Transport by retiring the instance on the mux.
func (s *muxStream) Close() error {
	s.mux.Retire(s.instance)
	return nil
}
