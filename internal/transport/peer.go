package transport

import (
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"

	"indulgence/internal/model"
	"indulgence/internal/wire"
)

// Peer is one member of a multi-process cluster: a process ID and the
// TCP address the process listens on.
type Peer struct {
	// ID is the member's process ID, in [1, n].
	ID model.ProcessID
	// Addr is the member's address, host:port. The same entry is what
	// the member listens on and what every peer dials, so in a
	// multi-machine deployment it must name a host the others can
	// reach — an empty host ("=:9001") listens on every interface but
	// dials loopback, which only works when all members share one
	// machine.
	Addr string
}

// PeerConfig describes one process's view of a multi-process cluster:
// its own identity plus the addressed peer list (which includes itself —
// every process is handed the same list). It is what replaces the
// loopback-only cluster constructor: a process built from a PeerConfig
// listens on its own entry's address and dials every other entry, so one
// `indulgence serve` can run per machine.
type PeerConfig struct {
	// Self is this process's ID; the Peers entry with this ID is the
	// address this process listens on.
	Self model.ProcessID
	// Cluster names the cluster; the TCP handshake refuses connections
	// whose hello carries a different name. Empty means DefaultCluster.
	Cluster string
	// Peers lists every member, self included, sorted by ID. Members
	// must be exactly p1..pn — the runtime addresses processes densely.
	Peers []Peer
}

// DefaultCluster is the cluster name used when PeerConfig.Cluster is
// empty.
const DefaultCluster = "indulgence"

// N returns the cluster size.
func (c PeerConfig) N() int { return len(c.Peers) }

// ClusterID returns the cluster name, defaulted.
func (c PeerConfig) ClusterID() string {
	if c.Cluster == "" {
		return DefaultCluster
	}
	return c.Cluster
}

// Addr returns the address of peer p.
func (c PeerConfig) Addr(p model.ProcessID) (string, error) {
	for _, peer := range c.Peers {
		if peer.ID == p {
			return peer.Addr, nil
		}
	}
	return "", fmt.Errorf("transport: no peer p%d in config", p)
}

// SelfAddr returns the address this process listens on.
func (c PeerConfig) SelfAddr() (string, error) { return c.Addr(c.Self) }

// Validate checks that the config is a usable cluster description:
// members are exactly p1..pn with distinct, well-formed addresses, and
// Self is one of them.
func (c PeerConfig) Validate() error {
	n := len(c.Peers)
	if n < 2 {
		return fmt.Errorf("transport: peer config needs at least 2 peers, got %d", n)
	}
	if n > model.MaxProcesses {
		return fmt.Errorf("transport: peer config has %d peers, max is %d", n, model.MaxProcesses)
	}
	if len(c.Cluster) > wire.MaxClusterIDLen {
		return fmt.Errorf("transport: cluster id of %d bytes exceeds the %d-byte handshake limit",
			len(c.Cluster), wire.MaxClusterIDLen)
	}
	seenAddr := make(map[string]model.ProcessID, n)
	var ids model.PIDSet
	for _, p := range c.Peers {
		if p.ID < 1 || int(p.ID) > n {
			return fmt.Errorf("transport: peer id p%d outside 1..%d (ids must be dense)", p.ID, n)
		}
		if ids.Has(p.ID) {
			return fmt.Errorf("transport: duplicate peer id p%d", p.ID)
		}
		ids.Add(p.ID)
		if _, _, err := net.SplitHostPort(p.Addr); err != nil {
			return fmt.Errorf("transport: peer p%d address %q: %w", p.ID, p.Addr, err)
		}
		if prev, ok := seenAddr[p.Addr]; ok {
			return fmt.Errorf("transport: peers p%d and p%d share address %q", prev, p.ID, p.Addr)
		}
		seenAddr[p.Addr] = p.ID
	}
	if !ids.Has(c.Self) {
		return fmt.Errorf("transport: self p%d is not in the peer list", c.Self)
	}
	return nil
}

// ParsePeers parses a -peers flag value of the form
//
//	p1=host:port,p2=host:port,...
//
// into a PeerConfig for the given self ID. Whitespace around entries is
// tolerated; entries must name every member exactly once.
func ParsePeers(self model.ProcessID, cluster, spec string) (PeerConfig, error) {
	if strings.TrimSpace(spec) == "" {
		return PeerConfig{}, fmt.Errorf("transport: empty peer spec")
	}
	var peers []Peer
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		p, err := parsePeerEntry(entry)
		if err != nil {
			return PeerConfig{}, err
		}
		peers = append(peers, p)
	}
	cfg := PeerConfig{Self: self, Cluster: cluster, Peers: peers}
	sort.Slice(cfg.Peers, func(i, j int) bool { return cfg.Peers[i].ID < cfg.Peers[j].ID })
	if err := cfg.Validate(); err != nil {
		return PeerConfig{}, err
	}
	return cfg, nil
}

// LoadPeerFile reads a peer config file: one `pN=host:port` entry per
// line, with blank lines and `#` comments ignored — the same entries the
// -peers flag takes, one per line.
func LoadPeerFile(self model.ProcessID, cluster, path string) (PeerConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return PeerConfig{}, fmt.Errorf("transport: peer file: %w", err)
	}
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			entries = append(entries, line)
		}
	}
	if len(entries) == 0 {
		return PeerConfig{}, fmt.Errorf("transport: peer file %s has no entries", path)
	}
	return ParsePeers(self, cluster, strings.Join(entries, ","))
}

// parsePeerEntry parses one `pN=host:port` element.
func parsePeerEntry(entry string) (Peer, error) {
	eq := strings.IndexByte(entry, '=')
	if eq < 0 {
		return Peer{}, fmt.Errorf("transport: peer entry %q is not pN=host:port", entry)
	}
	name := strings.TrimSpace(entry[:eq])
	addr := strings.TrimSpace(entry[eq+1:])
	if !strings.HasPrefix(name, "p") {
		return Peer{}, fmt.Errorf("transport: peer name %q must be pN", name)
	}
	id, err := strconv.Atoi(name[1:])
	if err != nil || id < 1 {
		return Peer{}, fmt.Errorf("transport: peer name %q must be pN with N >= 1", name)
	}
	if addr == "" {
		return Peer{}, fmt.Errorf("transport: peer %s has an empty address", name)
	}
	return Peer{ID: model.ProcessID(id), Addr: addr}, nil
}
