package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"indulgence/internal/chaos/clock"
	"indulgence/internal/model"
)

// Hub is an in-memory switch connecting n endpoints. It supports
// per-link delay injection — the tool with which the live experiments
// reproduce the paper's asynchronous periods and false suspicions — and
// never drops frames (reliable channels): a delayed or partitioned frame
// is delivered when its delay elapses.
//
// The hub runs on an injected clock: delayed deliveries are clock
// timers, so under the chaos harness's virtual clock an 80ms injected
// delay costs one discrete event instead of 80ms of wall time. The hub
// also shares an in-flight frame counter across its mailboxes (and, via
// SharedFrameCounter, across any Mux layered on an endpoint); with a
// virtual clock it registers the counter as an idle check, so simulated
// time never advances over a frame that is already deliverable.
type Hub struct {
	n       int
	clk     clock.Clock
	pending atomic.Int64

	mu      sync.Mutex
	boxes   []*mailbox
	delayFn func(from, to model.ProcessID) time.Duration
	delayed map[*delayedFrame]struct{}
	timers  sync.WaitGroup
	closed  bool
}

// delayedFrame is one in-flight delayed delivery, tracked so Close can
// stop it (a virtual clock never fires timers on its own, so waiting
// for them would hang).
type delayedFrame struct{ timer clock.Timer }

// NewHub returns a hub connecting n endpoints with no injected delays,
// running on the wall clock.
func NewHub(n int) (*Hub, error) { return NewHubClock(n, clock.Real{}) }

// NewHubClock is NewHub on an explicit clock. When clk registers idle
// checks (a chaos virtual clock), the hub's in-flight frames hold the
// clock still until they are consumed.
func NewHubClock(n int, clk clock.Clock) (*Hub, error) {
	if n < 1 || n > model.MaxProcesses {
		return nil, fmt.Errorf("transport: invalid hub size %d", n)
	}
	h := &Hub{n: n, clk: clock.Or(clk), boxes: make([]*mailbox, n), delayed: make(map[*delayedFrame]struct{})}
	for i := range h.boxes {
		h.boxes[i] = newMailboxTracked(&h.pending)
	}
	if reg, ok := h.clk.(clock.IdleRegistry); ok {
		reg.RegisterIdle(func() bool { return h.pending.Load() == 0 })
	}
	return h, nil
}

// Endpoint returns the transport endpoint of process p.
func (h *Hub) Endpoint(p model.ProcessID) (Transport, error) {
	if p < 1 || int(p) > h.n {
		return nil, fmt.Errorf("transport: no endpoint %d in hub of %d", p, h.n)
	}
	return &hubEndpoint{hub: h, self: p}, nil
}

// SetDelayFn installs a per-link delay policy: every frame from from to to
// is delivered after delayFn(from, to). A nil function removes all injected
// delays. Self-links are never delayed (a process always hears itself
// in-round, mirroring the model).
func (h *Hub) SetDelayFn(delayFn func(from, to model.ProcessID) time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.delayFn = delayFn
}

// DelayProcess delays every frame sent by p to other processes by d —
// the live analogue of the schedules in which p is falsely suspected by
// everyone (sched.DelayedSenderPrefix).
func (h *Hub) DelayProcess(p model.ProcessID, d time.Duration) {
	h.SetDelayFn(func(from, to model.ProcessID) time.Duration {
		if from == p && to != p {
			return d
		}
		return 0
	})
}

// Heal removes all injected delays.
func (h *Hub) Heal() { h.SetDelayFn(nil) }

// Close shuts every endpoint down. Delayed frames whose timers have not
// fired are discarded — their receivers' mailboxes are closing anyway —
// and in-flight handovers are waited out, so no timer goroutine touches
// a mailbox after Close returns.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	boxes := h.boxes
	for d := range h.delayed {
		if d.timer.Stop() {
			h.timers.Done()
		}
	}
	h.delayed = nil
	h.mu.Unlock()
	h.timers.Wait()
	for _, b := range boxes {
		b.close()
	}
	return nil
}

func (h *Hub) send(from, to model.ProcessID, frame []byte) error {
	if to < 1 || int(to) > h.n {
		return fmt.Errorf("transport: send to unknown process %d", to)
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrClosed
	}
	box := h.boxes[to-1]
	var delay time.Duration
	if h.delayFn != nil && from != to {
		delay = h.delayFn(from, to)
	}
	if delay > 0 {
		h.timers.Add(1)
		d := &delayedFrame{}
		d.timer = h.clk.AfterFunc(delay, func() {
			defer h.timers.Done()
			h.mu.Lock()
			if h.delayed != nil {
				delete(h.delayed, d)
			}
			h.mu.Unlock()
			box.put(frame)
		})
		h.delayed[d] = struct{}{}
		h.mu.Unlock()
		return nil
	}
	h.mu.Unlock()
	box.put(frame)
	return nil
}

// hubEndpoint is one process's view of the hub.
type hubEndpoint struct {
	hub  *Hub
	self model.ProcessID
}

var _ Transport = (*hubEndpoint)(nil)
var _ frameCounted = (*hubEndpoint)(nil)

// Self implements Transport.
func (e *hubEndpoint) Self() model.ProcessID { return e.self }

// Send implements Transport.
func (e *hubEndpoint) Send(to model.ProcessID, frame []byte) error {
	return e.hub.send(e.self, to, frame)
}

// Recv implements Transport.
func (e *hubEndpoint) Recv() <-chan []byte { return e.hub.boxes[e.self-1].out }

// SharedFrameCounter exposes the hub's in-flight frame counter so a Mux
// (or a chaos injector) layered on this endpoint keeps its buffered
// frames in the same account.
func (e *hubEndpoint) SharedFrameCounter() *atomic.Int64 { return &e.hub.pending }

// Close implements Transport. Closing one endpoint only detaches its
// mailbox; the hub itself is closed with Hub.Close.
func (e *hubEndpoint) Close() error {
	e.hub.boxes[e.self-1].close()
	return nil
}
