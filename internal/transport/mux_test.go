package transport

import (
	"math/rand"
	"testing"
	"time"

	"indulgence/internal/model"
	"indulgence/internal/wire"
)

// waitFor polls cond until it holds, failing the test after 5 seconds —
// readiness polling in place of fixed sleeps, so tests synchronize on
// the condition they actually need instead of on scheduler luck.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// hasStream reports whether m tracks a stream for instance (opened or
// buffering) — the sign that the router has seen the instance's first
// frame.
func hasStream(m *Mux, instance uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.streams[instance]
	return ok
}

// queuedFrames returns how many frames sit in instance's stream mailbox
// queue. The mailbox pump holds one more in hand once a frame has
// arrived, so "all k arrived" reads as queued >= k-1.
func queuedFrames(m *Mux, instance uint64) int {
	m.mu.Lock()
	s := m.streams[instance]
	m.mu.Unlock()
	if s == nil {
		return 0
	}
	s.box.mu.Lock()
	defer s.box.mu.Unlock()
	return len(s.box.queue)
}

// msgFrame builds a minimal valid version-0 frame (a bare wire message).
func msgFrame(t *testing.T, from model.ProcessID, round model.Round) []byte {
	t.Helper()
	frame, err := wire.EncodeMessage(nil, model.Message{From: from, Round: round})
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// recvFrame pulls one frame from a virtual endpoint with a deadline.
func recvFrame(t *testing.T, ep Transport) []byte {
	t.Helper()
	select {
	case frame, ok := <-ep.Recv():
		if !ok {
			t.Fatal("receive channel closed")
		}
		return frame
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for frame")
		return nil
	}
}

// muxPair builds a 2-process hub with one mux per endpoint.
func muxPair(t *testing.T) (*Hub, *Mux, *Mux) {
	t.Helper()
	hub, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	ep1, err := hub.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := hub.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := NewMux(ep1), NewMux(ep2)
	t.Cleanup(func() { _ = m1.Close(); _ = m2.Close() })
	return hub, m1, m2
}

func TestMuxRoutesByInstance(t *testing.T) {
	_, m1, m2 := muxPair(t)
	sendA, err := m1.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	sendB, err := m1.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	recvA, err := m2.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	recvB, err := m2.Open(2)
	if err != nil {
		t.Fatal(err)
	}

	fa, fb := msgFrame(t, 1, 10), msgFrame(t, 1, 20)
	if err := sendA.Send(2, fa); err != nil {
		t.Fatal(err)
	}
	if err := sendB.Send(2, fb); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, recvB); string(got) != string(fb) {
		t.Fatalf("instance 2 got % x, want % x", got, fb)
	}
	if got := recvFrame(t, recvA); string(got) != string(fa) {
		t.Fatalf("instance 1 got % x, want % x", got, fa)
	}
	if sendA.Self() != 1 || recvA.Self() != 2 {
		t.Fatalf("Self() = %d, %d", sendA.Self(), recvA.Self())
	}
}

// TestMuxBuffersUnopenedInstance pins the reliable-channel guarantee
// across multiplexing: frames for an instance the receiver has not opened
// yet are buffered and delivered at Open, not dropped.
func TestMuxBuffersUnopenedInstance(t *testing.T) {
	_, m1, m2 := muxPair(t)
	send, err := m1.Open(7)
	if err != nil {
		t.Fatal(err)
	}
	frame := msgFrame(t, 1, 3)
	if err := send.Send(2, frame); err != nil {
		t.Fatal(err)
	}
	// Wait until the router has seen (and is buffering) the early frame.
	waitFor(t, "router to buffer the early frame", func() bool { return hasStream(m2, 7) })
	recv, err := m2.Open(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, recv); string(got) != string(frame) {
		t.Fatalf("buffered frame mangled: % x", got)
	}
}

// TestMuxLegacyInterop checks both directions of the version-0
// compatibility stream: bare frames from a non-muxed peer arrive on
// instance 0, and instance-0 sends go out as bare frames a non-muxed peer
// can read.
func TestMuxLegacyInterop(t *testing.T) {
	hub, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	ep1, err := hub.Endpoint(1) // legacy peer: no mux
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := hub.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMux(ep2)
	defer func() { _ = m2.Close() }()
	compat, err := m2.Open(0)
	if err != nil {
		t.Fatal(err)
	}

	frame := msgFrame(t, 1, 1)
	if err := ep1.Send(2, frame); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, compat); string(got) != string(frame) {
		t.Fatalf("legacy frame on instance 0: % x, want % x", got, frame)
	}

	reply := msgFrame(t, 2, 1)
	if err := compat.Send(1, reply); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, ep1); string(got) != string(reply) {
		t.Fatalf("legacy peer received % x, want bare % x", got, reply)
	}
}

func TestMuxRetire(t *testing.T) {
	_, m1, m2 := muxPair(t)
	send, err := m1.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := m2.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-recv.Recv(); ok {
		t.Fatal("retired stream's receive channel still open")
	}
	// Late frames for a retired instance are dropped, not re-buffered.
	if err := send.Send(2, msgFrame(t, 1, 9)); err != nil {
		t.Fatal(err)
	}
	// A marker frame on a fresh instance proves the router has passed
	// the late frame: the hub mailbox and router are FIFO per sender.
	marker, err := m1.Open(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := marker.Send(2, msgFrame(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "router to pass the late frame", func() bool { return hasStream(m2, 4) })
	if _, err := m2.Open(3); err == nil {
		t.Fatal("reopening a retired instance succeeded")
	}
	m2.mu.Lock()
	_, buffered := m2.streams[3]
	m2.mu.Unlock()
	if buffered {
		t.Fatal("late frame for retired instance re-created a stream")
	}
}

// TestMuxRetireCompaction checks that the retired-instance bookkeeping
// compacts to a frontier instead of growing with every instance.
func TestMuxRetireCompaction(t *testing.T) {
	_, m1, _ := muxPair(t)
	// Retire 0..99 out of order in pairs: the set must fully compact.
	for i := 1; i < 100; i += 2 {
		m1.Retire(uint64(i))
	}
	for i := 0; i < 100; i += 2 {
		m1.Retire(uint64(i))
	}
	m1.mu.Lock()
	below, setLen := m1.retiredBelow, len(m1.retiredSet)
	m1.mu.Unlock()
	if below != 100 || setLen != 0 {
		t.Fatalf("retiredBelow=%d set=%d, want 100 and 0", below, setLen)
	}
	if _, err := m1.Open(42); err == nil {
		t.Fatal("opening a frontier-retired instance succeeded")
	}
}

func TestMuxDoubleOpen(t *testing.T) {
	_, m1, _ := muxPair(t)
	if _, err := m1.Open(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Open(1); err == nil {
		t.Fatal("double open succeeded")
	}
}

// TestMuxOverTCP runs the routing test over real loopback connections.
func TestMuxOverTCP(t *testing.T) {
	tc, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tc.Close() }()
	ep1, err := tc.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := tc.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := NewMux(ep1), NewMux(ep2)
	defer func() { _ = m1.Close(); _ = m2.Close() }()

	send, err := m1.Open(11)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := m2.Open(11)
	if err != nil {
		t.Fatal(err)
	}
	frame := msgFrame(t, 1, 4)
	if err := send.Send(2, frame); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, recv); string(got) != string(frame) {
		t.Fatalf("TCP mux frame mangled: % x", got)
	}
}

// TestMuxUnderlyingClosePropagates checks that closing the underlying
// endpoint closes every virtual receive channel, so round loops observe
// the shutdown.
func TestMuxUnderlyingClosePropagates(t *testing.T) {
	hub, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	ep1, err := hub.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewMux(ep1)
	defer func() { _ = m1.Close() }()
	s, err := m1.Open(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep1.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-s.Recv():
		if ok {
			t.Fatal("got a frame after underlying close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("virtual receive channel did not close")
	}
}

// TestMuxNeverOpenedBufferedInstance pins the fate of frames buffered
// for an instance that is never opened: Retire drops them without a
// goroutine or channel leak, and a mux Close with buffered-but-unopened
// streams closes their mailboxes too.
func TestMuxNeverOpenedBufferedInstance(t *testing.T) {
	_, m1, m2 := muxPair(t)
	send, err := m1.Open(9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := send.Send(2, msgFrame(t, 1, model.Round(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the router to buffer the frames for the unopened
	// instance (the pump holds one in hand, so 7 queued means all 8
	// arrived).
	waitFor(t, "router to buffer 8 frames", func() bool {
		return hasStream(m2, 9) && queuedFrames(m2, 9) >= 7
	})
	// Retiring the never-opened instance drops the buffer for good.
	m2.Retire(9)
	m2.mu.Lock()
	_, still := m2.streams[9]
	m2.mu.Unlock()
	if still {
		t.Fatal("retired unopened stream still tracked")
	}
	if _, err := m2.Open(9); err == nil {
		t.Fatal("opening a retired never-opened instance succeeded")
	}

	// And a Close with a buffered unopened stream must close its
	// mailbox (no pump goroutine left behind).
	if err := send.Send(2, msgFrame(t, 1, 99)); err == nil {
		// Frame for retired instance 9: dropped. Now buffer one for a
		// fresh never-opened instance and close the whole mux.
		send2, err := m1.Open(10)
		if err != nil {
			t.Fatal(err)
		}
		if err := send2.Send(2, msgFrame(t, 1, 1)); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "router to buffer the unopened frame", func() bool { return hasStream(m2, 10) })
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMuxRetireMidFlight races inbound delivery against retirement: a
// sender floods an instance while the receiver retires it mid-stream.
// Frames must arrive until the retirement point and be dropped after it,
// with no panic, deadlock, or send error either side — the scenario of a
// decided instance's flood traffic arriving at a shard that has moved
// on. Run with -race, this is also the locking test for the
// router/Retire interleaving.
func TestMuxRetireMidFlight(t *testing.T) {
	_, m1, m2 := muxPair(t)
	send, err := m1.Open(4)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := m2.Open(4)
	if err != nil {
		t.Fatal(err)
	}

	const flood = 200
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < flood; i++ {
			if err := send.Send(2, msgFrame(t, 1, model.Round(i+1))); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()

	// Consume a few frames to prove delivery, then retire mid-flood.
	for i := 0; i < 5; i++ {
		recvFrame(t, recv)
	}
	m2.Retire(4)
	if err := <-sendErr; err != nil {
		t.Fatalf("send during retirement: %v", err)
	}
	// The retired stream's channel must drain to closed, not wedge.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-recv.Recv():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("retired stream's channel never closed")
		}
	}
}

// TestMuxCompactionRandomOrder retires a window of instances in a random
// permutation: whatever the order, the retired set must compact to the
// frontier with nothing left over — the property that keeps retirement
// state O(inflight) instead of O(lifetime).
func TestMuxCompactionRandomOrder(t *testing.T) {
	_, m1, _ := muxPair(t)
	const window = 257
	perm := rand.New(rand.NewSource(42)).Perm(window)
	for i, p := range perm {
		m1.Retire(uint64(p))
		m1.mu.Lock()
		below, setLen := m1.retiredBelow, len(m1.retiredSet)
		m1.mu.Unlock()
		if int(below)+setLen != i+1 {
			t.Fatalf("after %d retirements: frontier %d + set %d != %d", i+1, below, setLen, i+1)
		}
	}
	m1.mu.Lock()
	below, setLen := m1.retiredBelow, len(m1.retiredSet)
	m1.mu.Unlock()
	if below != window || setLen != 0 {
		t.Fatalf("final state: retiredBelow=%d set=%d, want %d and 0", below, setLen, window)
	}
}

// TestMuxRetireBelow covers the recovery path's bulk retirement: opened
// and buffered streams below the frontier close, later instances are
// untouched, retirements already recorded above the frontier keep
// compacting, and the call is monotonic.
func TestMuxRetireBelow(t *testing.T) {
	_, m1, m2 := muxPair(t)
	low, err := m2.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := m2.Open(8)
	if err != nil {
		t.Fatal(err)
	}
	// Buffer a frame for a never-opened stale instance (3) as a crashed
	// lifetime would leave behind.
	send3, err := m1.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := send3.Send(2, msgFrame(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "router to buffer the stale frame", func() bool { return hasStream(m2, 3) })
	// An out-of-order retirement above the frontier, to be compacted
	// through.
	m2.Retire(5)

	m2.RetireBelow(5)

	if _, ok := <-low.Recv(); ok {
		t.Fatal("stream below frontier still delivering")
	}
	m2.mu.Lock()
	below, setLen := m2.retiredBelow, len(m2.retiredSet)
	_, stale := m2.streams[3]
	m2.mu.Unlock()
	if below != 6 || setLen != 0 {
		t.Fatalf("retiredBelow=%d set=%d, want 6 (5 compacted through) and 0", below, setLen)
	}
	if stale {
		t.Fatal("buffered stale stream survived RetireBelow")
	}
	if _, err := m2.Open(2); err == nil {
		t.Fatal("opening below the frontier succeeded")
	}

	// Instances at or above the frontier are untouched.
	sendHigh, err := m1.Open(8)
	if err != nil {
		t.Fatal(err)
	}
	frame := msgFrame(t, 1, 2)
	if err := sendHigh.Send(2, frame); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, high); string(got) != string(frame) {
		t.Fatalf("instance above frontier got % x", got)
	}

	// Monotonic: lowering the frontier is a no-op.
	m2.RetireBelow(2)
	m2.mu.Lock()
	below = m2.retiredBelow
	m2.mu.Unlock()
	if below != 6 {
		t.Fatalf("frontier regressed to %d", below)
	}
}

// TestMuxPendingNotification checks the join signal of multi-process
// members: frames for an unopened instance fire the callback (possibly
// repeatedly), and opened instances stop firing it.
func TestMuxPendingNotification(t *testing.T) {
	hub, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, _ := hub.Endpoint(1)
	b, _ := hub.Endpoint(2)

	notified := make(chan uint64, 16)
	ma := NewMux(a)
	defer ma.Close()
	mb := NewMuxNotify(b, func(instance uint64) {
		select {
		case notified <- instance:
		default:
		}
	})
	defer mb.Close()

	sa, err := ma.Open(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Send(2, msgFrame(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-notified:
		if got != 7 {
			t.Fatalf("pending instance %d, want 7", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no pending notification")
	}

	// Opening drains the buffered frame; further frames notify nobody.
	sb, err := mb.Open(7)
	if err != nil {
		t.Fatal(err)
	}
	recvFrame(t, sb)
	for len(notified) > 0 {
		<-notified
	}
	if err := sa.Send(2, msgFrame(t, 1, 2)); err != nil {
		t.Fatal(err)
	}
	recvFrame(t, sb)
	select {
	case got := <-notified:
		t.Fatalf("opened instance notified as pending: %d", got)
	case <-time.After(100 * time.Millisecond):
	}
}
