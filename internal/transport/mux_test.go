package transport

import (
	"math/rand"
	"testing"
	"time"

	"indulgence/internal/model"
	"indulgence/internal/wire"
)

// waitFor polls cond until it holds, failing the test after 5 seconds —
// readiness polling in place of fixed sleeps, so tests synchronize on
// the condition they actually need instead of on scheduler luck.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// hasStream reports whether m tracks a stream for a group-0 instance
// (opened or buffering) — the sign that the router has seen the
// instance's first frame.
func hasStream(m *Mux, instance uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.streams[streamKey{0, instance}]
	return ok
}

// queuedFrames returns how many frames sit in a group-0 instance's
// stream mailbox queue. The mailbox pump holds one more in hand once a
// frame has arrived, so "all k arrived" reads as queued >= k-1.
func queuedFrames(m *Mux, instance uint64) int {
	m.mu.Lock()
	s := m.streams[streamKey{0, instance}]
	m.mu.Unlock()
	if s == nil {
		return 0
	}
	s.box.mu.Lock()
	defer s.box.mu.Unlock()
	return len(s.box.queue)
}

// retiredState returns a group's retirement frontier and leftover set
// size (0, 0 for a group never retired from).
func retiredState(m *Mux, group uint64) (below uint64, setLen int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.retired[group]
	if !ok {
		return 0, 0
	}
	return r.below, len(r.set)
}

// msgFrame builds a minimal valid version-0 frame (a bare wire message).
func msgFrame(t *testing.T, from model.ProcessID, round model.Round) []byte {
	t.Helper()
	frame, err := wire.EncodeMessage(nil, model.Message{From: from, Round: round})
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// recvFrame pulls one frame from a virtual endpoint with a deadline.
func recvFrame(t *testing.T, ep Transport) []byte {
	t.Helper()
	select {
	case frame, ok := <-ep.Recv():
		if !ok {
			t.Fatal("receive channel closed")
		}
		return frame
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for frame")
		return nil
	}
}

// muxPair builds a 2-process hub with one mux per endpoint.
func muxPair(t *testing.T) (*Hub, *Mux, *Mux) {
	t.Helper()
	hub, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	ep1, err := hub.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := hub.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := NewMux(ep1), NewMux(ep2)
	t.Cleanup(func() { _ = m1.Close(); _ = m2.Close() })
	return hub, m1, m2
}

func TestMuxRoutesByInstance(t *testing.T) {
	_, m1, m2 := muxPair(t)
	sendA, err := m1.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	sendB, err := m1.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	recvA, err := m2.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	recvB, err := m2.Open(2)
	if err != nil {
		t.Fatal(err)
	}

	fa, fb := msgFrame(t, 1, 10), msgFrame(t, 1, 20)
	if err := sendA.Send(2, fa); err != nil {
		t.Fatal(err)
	}
	if err := sendB.Send(2, fb); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, recvB); string(got) != string(fb) {
		t.Fatalf("instance 2 got % x, want % x", got, fb)
	}
	if got := recvFrame(t, recvA); string(got) != string(fa) {
		t.Fatalf("instance 1 got % x, want % x", got, fa)
	}
	if sendA.Self() != 1 || recvA.Self() != 2 {
		t.Fatalf("Self() = %d, %d", sendA.Self(), recvA.Self())
	}
}

// TestMuxBuffersUnopenedInstance pins the reliable-channel guarantee
// across multiplexing: frames for an instance the receiver has not opened
// yet are buffered and delivered at Open, not dropped.
func TestMuxBuffersUnopenedInstance(t *testing.T) {
	_, m1, m2 := muxPair(t)
	send, err := m1.Open(7)
	if err != nil {
		t.Fatal(err)
	}
	frame := msgFrame(t, 1, 3)
	if err := send.Send(2, frame); err != nil {
		t.Fatal(err)
	}
	// Wait until the router has seen (and is buffering) the early frame.
	waitFor(t, "router to buffer the early frame", func() bool { return hasStream(m2, 7) })
	recv, err := m2.Open(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, recv); string(got) != string(frame) {
		t.Fatalf("buffered frame mangled: % x", got)
	}
}

// TestMuxLegacyInterop checks both directions of the version-0
// compatibility stream: bare frames from a non-muxed peer arrive on
// instance 0, and instance-0 sends go out as bare frames a non-muxed peer
// can read.
func TestMuxLegacyInterop(t *testing.T) {
	hub, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	ep1, err := hub.Endpoint(1) // legacy peer: no mux
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := hub.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMux(ep2)
	defer func() { _ = m2.Close() }()
	compat, err := m2.Open(0)
	if err != nil {
		t.Fatal(err)
	}

	frame := msgFrame(t, 1, 1)
	if err := ep1.Send(2, frame); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, compat); string(got) != string(frame) {
		t.Fatalf("legacy frame on instance 0: % x, want % x", got, frame)
	}

	reply := msgFrame(t, 2, 1)
	if err := compat.Send(1, reply); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, ep1); string(got) != string(reply) {
		t.Fatalf("legacy peer received % x, want bare % x", got, reply)
	}
}

func TestMuxRetire(t *testing.T) {
	_, m1, m2 := muxPair(t)
	send, err := m1.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := m2.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-recv.Recv(); ok {
		t.Fatal("retired stream's receive channel still open")
	}
	// Late frames for a retired instance are dropped, not re-buffered.
	if err := send.Send(2, msgFrame(t, 1, 9)); err != nil {
		t.Fatal(err)
	}
	// A marker frame on a fresh instance proves the router has passed
	// the late frame: the hub mailbox and router are FIFO per sender.
	marker, err := m1.Open(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := marker.Send(2, msgFrame(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "router to pass the late frame", func() bool { return hasStream(m2, 4) })
	if _, err := m2.Open(3); err == nil {
		t.Fatal("reopening a retired instance succeeded")
	}
	m2.mu.Lock()
	_, buffered := m2.streams[streamKey{0, 3}]
	m2.mu.Unlock()
	if buffered {
		t.Fatal("late frame for retired instance re-created a stream")
	}
}

// TestMuxRetireCompaction checks that the retired-instance bookkeeping
// compacts to a frontier instead of growing with every instance.
func TestMuxRetireCompaction(t *testing.T) {
	_, m1, _ := muxPair(t)
	// Retire 0..99 out of order in pairs: the set must fully compact.
	for i := 1; i < 100; i += 2 {
		m1.Retire(uint64(i))
	}
	for i := 0; i < 100; i += 2 {
		m1.Retire(uint64(i))
	}
	below, setLen := retiredState(m1, 0)
	if below != 100 || setLen != 0 {
		t.Fatalf("retiredBelow=%d set=%d, want 100 and 0", below, setLen)
	}
	if _, err := m1.Open(42); err == nil {
		t.Fatal("opening a frontier-retired instance succeeded")
	}
}

func TestMuxDoubleOpen(t *testing.T) {
	_, m1, _ := muxPair(t)
	if _, err := m1.Open(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Open(1); err == nil {
		t.Fatal("double open succeeded")
	}
}

// TestMuxOverTCP runs the routing test over real loopback connections.
func TestMuxOverTCP(t *testing.T) {
	tc, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tc.Close() }()
	ep1, err := tc.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := tc.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := NewMux(ep1), NewMux(ep2)
	defer func() { _ = m1.Close(); _ = m2.Close() }()

	send, err := m1.Open(11)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := m2.Open(11)
	if err != nil {
		t.Fatal(err)
	}
	frame := msgFrame(t, 1, 4)
	if err := send.Send(2, frame); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, recv); string(got) != string(frame) {
		t.Fatalf("TCP mux frame mangled: % x", got)
	}
}

// TestMuxUnderlyingClosePropagates checks that closing the underlying
// endpoint closes every virtual receive channel, so round loops observe
// the shutdown.
func TestMuxUnderlyingClosePropagates(t *testing.T) {
	hub, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	ep1, err := hub.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewMux(ep1)
	defer func() { _ = m1.Close() }()
	s, err := m1.Open(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep1.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-s.Recv():
		if ok {
			t.Fatal("got a frame after underlying close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("virtual receive channel did not close")
	}
}

// TestMuxNeverOpenedBufferedInstance pins the fate of frames buffered
// for an instance that is never opened: Retire drops them without a
// goroutine or channel leak, and a mux Close with buffered-but-unopened
// streams closes their mailboxes too.
func TestMuxNeverOpenedBufferedInstance(t *testing.T) {
	_, m1, m2 := muxPair(t)
	send, err := m1.Open(9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := send.Send(2, msgFrame(t, 1, model.Round(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the router to buffer the frames for the unopened
	// instance (the pump holds one in hand, so 7 queued means all 8
	// arrived).
	waitFor(t, "router to buffer 8 frames", func() bool {
		return hasStream(m2, 9) && queuedFrames(m2, 9) >= 7
	})
	// Retiring the never-opened instance drops the buffer for good.
	m2.Retire(9)
	m2.mu.Lock()
	_, still := m2.streams[streamKey{0, 9}]
	m2.mu.Unlock()
	if still {
		t.Fatal("retired unopened stream still tracked")
	}
	if _, err := m2.Open(9); err == nil {
		t.Fatal("opening a retired never-opened instance succeeded")
	}

	// And a Close with a buffered unopened stream must close its
	// mailbox (no pump goroutine left behind).
	if err := send.Send(2, msgFrame(t, 1, 99)); err == nil {
		// Frame for retired instance 9: dropped. Now buffer one for a
		// fresh never-opened instance and close the whole mux.
		send2, err := m1.Open(10)
		if err != nil {
			t.Fatal(err)
		}
		if err := send2.Send(2, msgFrame(t, 1, 1)); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "router to buffer the unopened frame", func() bool { return hasStream(m2, 10) })
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMuxRetireMidFlight races inbound delivery against retirement: a
// sender floods an instance while the receiver retires it mid-stream.
// Frames must arrive until the retirement point and be dropped after it,
// with no panic, deadlock, or send error either side — the scenario of a
// decided instance's flood traffic arriving at a shard that has moved
// on. Run with -race, this is also the locking test for the
// router/Retire interleaving.
func TestMuxRetireMidFlight(t *testing.T) {
	_, m1, m2 := muxPair(t)
	send, err := m1.Open(4)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := m2.Open(4)
	if err != nil {
		t.Fatal(err)
	}

	const flood = 200
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < flood; i++ {
			if err := send.Send(2, msgFrame(t, 1, model.Round(i+1))); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()

	// Consume a few frames to prove delivery, then retire mid-flood.
	for i := 0; i < 5; i++ {
		recvFrame(t, recv)
	}
	m2.Retire(4)
	if err := <-sendErr; err != nil {
		t.Fatalf("send during retirement: %v", err)
	}
	// The retired stream's channel must drain to closed, not wedge.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-recv.Recv():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("retired stream's channel never closed")
		}
	}
}

// TestMuxCompactionRandomOrder retires a window of instances in a random
// permutation: whatever the order, the retired set must compact to the
// frontier with nothing left over — the property that keeps retirement
// state O(inflight) instead of O(lifetime).
func TestMuxCompactionRandomOrder(t *testing.T) {
	_, m1, _ := muxPair(t)
	const window = 257
	perm := rand.New(rand.NewSource(42)).Perm(window)
	for i, p := range perm {
		m1.Retire(uint64(p))
		below, setLen := retiredState(m1, 0)
		if int(below)+setLen != i+1 {
			t.Fatalf("after %d retirements: frontier %d + set %d != %d", i+1, below, setLen, i+1)
		}
	}
	below, setLen := retiredState(m1, 0)
	if below != window || setLen != 0 {
		t.Fatalf("final state: retiredBelow=%d set=%d, want %d and 0", below, setLen, window)
	}
}

// TestMuxRetireBelow covers the recovery path's bulk retirement: opened
// and buffered streams below the frontier close, later instances are
// untouched, retirements already recorded above the frontier keep
// compacting, and the call is monotonic.
func TestMuxRetireBelow(t *testing.T) {
	_, m1, m2 := muxPair(t)
	low, err := m2.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := m2.Open(8)
	if err != nil {
		t.Fatal(err)
	}
	// Buffer a frame for a never-opened stale instance (3) as a crashed
	// lifetime would leave behind.
	send3, err := m1.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := send3.Send(2, msgFrame(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "router to buffer the stale frame", func() bool { return hasStream(m2, 3) })
	// An out-of-order retirement above the frontier, to be compacted
	// through.
	m2.Retire(5)

	m2.RetireBelow(5)

	if _, ok := <-low.Recv(); ok {
		t.Fatal("stream below frontier still delivering")
	}
	below, setLen := retiredState(m2, 0)
	m2.mu.Lock()
	_, stale := m2.streams[streamKey{0, 3}]
	m2.mu.Unlock()
	if below != 6 || setLen != 0 {
		t.Fatalf("retiredBelow=%d set=%d, want 6 (5 compacted through) and 0", below, setLen)
	}
	if stale {
		t.Fatal("buffered stale stream survived RetireBelow")
	}
	if _, err := m2.Open(2); err == nil {
		t.Fatal("opening below the frontier succeeded")
	}

	// Instances at or above the frontier are untouched.
	sendHigh, err := m1.Open(8)
	if err != nil {
		t.Fatal(err)
	}
	frame := msgFrame(t, 1, 2)
	if err := sendHigh.Send(2, frame); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, high); string(got) != string(frame) {
		t.Fatalf("instance above frontier got % x", got)
	}

	// Monotonic: lowering the frontier is a no-op.
	m2.RetireBelow(2)
	below, _ = retiredState(m2, 0)
	if below != 6 {
		t.Fatalf("frontier regressed to %d", below)
	}
}

// TestMuxPendingNotification checks the join signal of multi-process
// members: frames for an unopened instance fire the callback (possibly
// repeatedly), and opened instances stop firing it.
func TestMuxPendingNotification(t *testing.T) {
	hub, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, _ := hub.Endpoint(1)
	b, _ := hub.Endpoint(2)

	notified := make(chan uint64, 16)
	ma := NewMux(a)
	defer ma.Close()
	mb := NewMuxNotify(b, func(instance uint64) {
		select {
		case notified <- instance:
		default:
		}
	})
	defer mb.Close()

	sa, err := ma.Open(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Send(2, msgFrame(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-notified:
		if got != 7 {
			t.Fatalf("pending instance %d, want 7", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no pending notification")
	}

	// Opening drains the buffered frame; further frames notify nobody.
	sb, err := mb.Open(7)
	if err != nil {
		t.Fatal(err)
	}
	recvFrame(t, sb)
	for len(notified) > 0 {
		<-notified
	}
	if err := sa.Send(2, msgFrame(t, 1, 2)); err != nil {
		t.Fatal(err)
	}
	recvFrame(t, sb)
	select {
	case got := <-notified:
		t.Fatalf("opened instance notified as pending: %d", got)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestMuxRoutesByGroup checks the group dimension of routing: the same
// instance ID under two different groups is two independent streams,
// and neither collides with the group-0 stream of that ID.
func TestMuxRoutesByGroup(t *testing.T) {
	_, m1, m2 := muxPair(t)
	type pair struct{ group, instance uint64 }
	addrs := []pair{{0, 5}, {1, 5}, {2, 5}, {2, 6}}
	sends := make(map[pair]Transport)
	recvs := make(map[pair]Transport)
	for _, a := range addrs {
		s, err := m1.OpenGroup(a.group, a.instance)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m2.OpenGroup(a.group, a.instance)
		if err != nil {
			t.Fatal(err)
		}
		sends[a], recvs[a] = s, r
	}
	// Send a distinct round number per address; each must arrive on
	// exactly its own stream.
	for i, a := range addrs {
		if err := sends[a].Send(2, msgFrame(t, 1, model.Round(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range addrs {
		want := msgFrame(t, 1, model.Round(i+1))
		if got := recvFrame(t, recvs[a]); string(got) != string(want) {
			t.Fatalf("group %d instance %d got % x, want % x", a.group, a.instance, got, want)
		}
	}
}

// TestMuxGroupRetireIndependent pins per-group retirement: retiring an
// instance in one group neither closes nor blocks the same instance ID
// in another group, and bulk frontier retirement is scoped to its
// group.
func TestMuxGroupRetireIndependent(t *testing.T) {
	_, m1, m2 := muxPair(t)
	r1, err := m2.OpenGroup(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.OpenGroup(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	m2.RetireGroup(1, 4)
	if _, ok := <-r1.Recv(); ok {
		t.Fatal("retired group-1 stream still delivering")
	}
	// Group 2's stream with the same instance ID is untouched.
	s2, err := m1.OpenGroup(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	frame := msgFrame(t, 1, 7)
	if err := s2.Send(2, frame); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, r2); string(got) != string(frame) {
		t.Fatalf("group-2 stream got % x, want % x", got, frame)
	}
	if _, err := m2.OpenGroup(1, 4); err == nil {
		t.Fatal("reopening a retired group-1 instance succeeded")
	}

	// Bulk retirement in group 1 leaves group 2's frontier at zero.
	m2.RetireGroupBelow(1, 100)
	if below, _ := retiredState(m2, 1); below != 100 {
		t.Fatalf("group-1 frontier = %d, want 100", below)
	}
	if below, setLen := retiredState(m2, 2); below != 0 || setLen != 0 {
		t.Fatalf("group-2 retirement state moved: below=%d set=%d", below, setLen)
	}
	if _, err := m2.OpenGroup(2, 50); err != nil {
		t.Fatalf("group-2 instance blocked by group-1 frontier: %v", err)
	}
}

// TestMuxGroupNotify checks the group-aware pending callback and the
// group-0 scoping of the legacy callback.
func TestMuxGroupNotify(t *testing.T) {
	hub, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, _ := hub.Endpoint(1)
	b, _ := hub.Endpoint(2)

	type pair struct{ group, instance uint64 }
	notified := make(chan pair, 16)
	ma := NewMux(a)
	defer ma.Close()
	mb := NewMuxGroupNotify(b, func(group, instance uint64) {
		select {
		case notified <- pair{group, instance}:
		default:
		}
	})
	defer mb.Close()

	sa, err := ma.OpenGroup(3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Send(2, msgFrame(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-notified:
		if got != (pair{3, 11}) {
			t.Fatalf("pending (%d, %d), want (3, 11)", got.group, got.instance)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no pending notification")
	}

	// The legacy single-ID callback must not fire for non-zero groups.
	c, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ca, _ := c.Endpoint(1)
	cb, _ := c.Endpoint(2)
	legacy := make(chan uint64, 16)
	mca := NewMux(ca)
	defer mca.Close()
	mcb := NewMuxNotify(cb, func(instance uint64) {
		select {
		case legacy <- instance:
		default:
		}
	})
	defer mcb.Close()
	sg, err := mca.OpenGroup(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := sg.Send(2, msgFrame(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "router to buffer the grouped frame", func() bool {
		mcb.mu.Lock()
		defer mcb.mu.Unlock()
		_, ok := mcb.streams[streamKey{2, 9}]
		return ok
	})
	select {
	case got := <-legacy:
		t.Fatalf("legacy callback fired for group 2 instance %d", got)
	default:
	}
	// And it still fires for group 0.
	s0, err := mca.Open(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Send(2, msgFrame(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-legacy:
		if got != 6 {
			t.Fatalf("legacy pending instance %d, want 6", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("legacy callback never fired for group 0")
	}
}

// TestMuxGroupOverTCP runs grouped routing over real loopback
// connections: two groups sharing one TCP connection pair.
func TestMuxGroupOverTCP(t *testing.T) {
	tc, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tc.Close() }()
	ep1, err := tc.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := tc.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := NewMux(ep1), NewMux(ep2)
	defer func() { _ = m1.Close(); _ = m2.Close() }()

	for group := uint64(1); group <= 2; group++ {
		send, err := m1.OpenGroup(group, 11)
		if err != nil {
			t.Fatal(err)
		}
		recv, err := m2.OpenGroup(group, 11)
		if err != nil {
			t.Fatal(err)
		}
		frame := msgFrame(t, 1, model.Round(group))
		if err := send.Send(2, frame); err != nil {
			t.Fatal(err)
		}
		if got := recvFrame(t, recv); string(got) != string(frame) {
			t.Fatalf("TCP group %d frame mangled: % x", group, got)
		}
	}
}
