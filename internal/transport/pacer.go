package transport

import "time"

// reconnectPacer is the pure reconnect-pacing state machine of one TCP
// peer link, factored out of the writer loop so its contract is
// testable without sockets or sleeping: every method takes the current
// instant explicitly, making the pacing schedule a deterministic
// function of the observed dial/connect/write history.
//
// The contract: dial attempts are spaced by the current backoff no
// matter how the previous attempt ended — a failed dial and a
// connection that established and died young pace identically, so a
// crash-looping peer cannot drive a hot redial loop. The backoff
// starts at min, doubles each time a full gap is actually served
// (capped at max), and returns to min only once a connection has
// proven itself: a successful write on a connection at least max old.
type reconnectPacer struct {
	min, max time.Duration

	backoff   time.Duration
	lastDial  time.Time
	connSince time.Time
}

func newReconnectPacer(min, max time.Duration) reconnectPacer {
	return reconnectPacer{min: min, max: max, backoff: min}
}

// wait returns how long to pause at now before the next dial attempt
// may start (zero: dial immediately — no attempt has been made yet, or
// the backoff gap has already elapsed).
func (p *reconnectPacer) wait(now time.Time) time.Duration {
	if p.lastDial.IsZero() {
		return 0
	}
	if w := p.backoff - now.Sub(p.lastDial); w > 0 {
		return w
	}
	return 0
}

// served records that a full backoff gap was actually waited out:
// the spacing doubles, up to max, so the wait a failure log announces
// is the wait the next attempt really observes.
func (p *reconnectPacer) served() {
	if p.backoff *= 2; p.backoff > p.max {
		p.backoff = p.max
	}
}

// dialed records a dial attempt starting at now.
func (p *reconnectPacer) dialed(now time.Time) { p.lastDial = now }

// connected records a connection established at now. It does NOT reset
// the backoff: a young death must keep the raised spacing.
func (p *reconnectPacer) connected(now time.Time) { p.connSince = now }

// wrote records a successful write at now and resets the backoff to
// min once the connection has proven itself by surviving at least max.
func (p *reconnectPacer) wrote(now time.Time) {
	if p.backoff > p.min && now.Sub(p.connSince) >= p.max {
		p.backoff = p.min
	}
}

// current returns the spacing the next failed attempt will observe —
// what the retry log lines report.
func (p *reconnectPacer) current() time.Duration { return p.backoff }
