package transport

import (
	"testing"
	"time"

	"indulgence/internal/model"
)

func recvWithTimeout(t *testing.T, tr Transport, d time.Duration) []byte {
	t.Helper()
	select {
	case frame, ok := <-tr.Recv():
		if !ok {
			t.Fatal("transport closed")
		}
		return frame
	case <-time.After(d):
		t.Fatal("timed out waiting for a frame")
		return nil
	}
}

func TestHubDelivery(t *testing.T) {
	hub, err := NewHub(3)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, err := hub.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Self() != 1 || b.Self() != 2 {
		t.Fatal("Self() wrong")
	}
	if err := a.Send(2, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithTimeout(t, b, time.Second); string(got) != "hi" {
		t.Fatalf("got %q", got)
	}
	// Self-send loops back.
	if err := a.Send(1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithTimeout(t, a, time.Second); string(got) != "self" {
		t.Fatalf("got %q", got)
	}
	// Unknown destination errors.
	if err := a.Send(9, []byte("x")); err == nil {
		t.Fatal("send to unknown process succeeded")
	}
}

func TestHubFIFOWithoutDelays(t *testing.T) {
	hub, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, _ := hub.Endpoint(1)
	b, _ := hub.Endpoint(2)
	for i := byte(0); i < 100; i++ {
		if err := a.Send(2, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 100; i++ {
		got := recvWithTimeout(t, b, time.Second)
		if got[0] != i {
			t.Fatalf("frame %d arrived as %d (FIFO broken)", i, got[0])
		}
	}
}

func TestHubDelayInjection(t *testing.T) {
	hub, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, _ := hub.Endpoint(1)
	b, _ := hub.Endpoint(2)
	hub.DelayProcess(1, 50*time.Millisecond)
	start := time.Now()
	if err := a.Send(2, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	got := recvWithTimeout(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("delayed frame arrived after %v", elapsed)
	}
	if string(got) != "slow" {
		t.Fatalf("got %q", got)
	}
	// Heal removes the delay.
	hub.Heal()
	start = time.Now()
	if err := a.Send(2, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, b, time.Second)
	if elapsed := time.Since(start); elapsed > 30*time.Millisecond {
		t.Fatalf("healed frame took %v", elapsed)
	}
}

func TestHubClose(t *testing.T) {
	hub, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := hub.Endpoint(1)
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("x")); err == nil {
		t.Fatal("send after close succeeded")
	}
	// Recv channel is closed.
	select {
	case _, ok := <-a.Recv():
		if ok {
			t.Fatal("unexpected frame after close")
		}
	case <-time.After(time.Second):
		t.Fatal("recv channel not closed")
	}
	// Idempotent close.
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHubBounds(t *testing.T) {
	if _, err := NewHub(0); err == nil {
		t.Fatal("empty hub accepted")
	}
	hub, err := NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if _, err := hub.Endpoint(3); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}

func TestTCPClusterRoundTrip(t *testing.T) {
	c, err := NewTCPCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, err := c.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithTimeout(t, b, 2*time.Second); string(got) != "over tcp" {
		t.Fatalf("got %q", got)
	}
	// Self-send short-circuits.
	if err := b.Send(2, []byte("loop")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithTimeout(t, b, 2*time.Second); string(got) != "loop" {
		t.Fatalf("got %q", got)
	}
	// Bidirectional.
	if err := b.Send(1, []byte("back")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithTimeout(t, a, 2*time.Second); string(got) != "back" {
		t.Fatalf("got %q", got)
	}
}

func TestTCPClusterClose(t *testing.T) {
	c, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Endpoint(1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("x")); err == nil {
		t.Fatal("send after close succeeded")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxAfterClose(t *testing.T) {
	m := newMailbox()
	m.put([]byte("a"))
	m.close()
	m.put([]byte("b")) // no-op, no panic
	// Drain whatever was pumped before close; the channel must close.
	deadline := time.After(time.Second)
	for {
		select {
		case _, ok := <-m.out:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("mailbox did not close")
		}
	}
}

func TestHubConcurrentSenders(t *testing.T) {
	hub, err := NewHub(4)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	receiver, _ := hub.Endpoint(4)
	const perSender = 200
	for i := 1; i <= 3; i++ {
		ep, _ := hub.Endpoint(model.ProcessID(i))
		go func(e Transport) {
			for j := 0; j < perSender; j++ {
				_ = e.Send(4, []byte{byte(e.Self())})
			}
		}(ep)
	}
	for i := 0; i < 3*perSender; i++ {
		recvWithTimeout(t, receiver, 2*time.Second)
	}
}
