package experiments

import (
	"fmt"

	"indulgence/internal/baseline"
	"indulgence/internal/core"
	"indulgence/internal/lowerbound"
	"indulgence/internal/model"
	"indulgence/internal/sched"
	"indulgence/internal/stats"
)

// E5EarlyDecision reproduces the early-decision discussion of Sect. 6: for
// every f ≤ t, every ES consensus algorithm has a synchronous run with at
// most f crashes deciding no earlier than round f+2. A_{f+2} matches the
// bound exactly (worst case f+2 over all serial runs with ≤ f crashes,
// foreshadowing the tightness result of [5]), while A_{t+2} — which never
// decides before t+2 by construction — shows why early decision is a
// separate design goal.
func E5EarlyDecision() (*Outcome, error) {
	o := &Outcome{
		ID:    "E5",
		Title: "Early decision: worst-case decision round with at most f crashes (synchronous runs)",
	}
	table := stats.NewTable("Worst-case global decision round over serial runs with <= f crashes",
		"algorithm", "n", "t", "f", "runs", "worst", "f+2", "t+2")
	for _, tc := range []struct{ t, f int }{{1, 0}, {1, 1}, {2, 0}, {2, 1}, {2, 2}} {
		n := 3*tc.t + 1 // admits both A_{f+2} (t<n/3) and A_{t+2} (t<n/2)
		mode := lowerbound.AllSubsets
		if n > 5 {
			mode = lowerbound.PrefixSubsets
		}
		maxCrashes := tc.f
		if maxCrashes == 0 {
			maxCrashes = -1
		}
		for _, a := range []struct {
			factory model.Factory
			bound   int
		}{
			{core.NewAfPlus2(), tc.f + 2},
			{core.New(core.Options{}), tc.t + 2},
		} {
			res, err := lowerbound.Explore(lowerbound.Config{
				N: n, T: tc.t,
				Synchrony:     model.ES,
				Factory:       a.factory,
				Proposals:     distinctProposals(n),
				MaxCrashes:    maxCrashes,
				MaxCrashRound: model.Round(tc.f + 2),
				Mode:          mode,
			})
			if err != nil {
				return nil, fmt.Errorf("E5 t=%d f=%d: %w", tc.t, tc.f, err)
			}
			alg, _ := a.factory(model.ProcessContext{Self: 1, N: n, T: tc.t}, 1)
			table.AddRowf(alg.Name(), n, tc.t, tc.f, res.Runs, res.WorstRound, tc.f+2, tc.t+2)
			o.expect(int(res.WorstRound) == a.bound,
				"E5: %s t=%d f=%d worst=%d want %d", alg.Name(), tc.t, tc.f, res.WorstRound, a.bound)
			o.expect(res.PropertyViolation == nil, "E5: %s t=%d f=%d violation: %v", alg.Name(), tc.t, tc.f, res.PropertyViolation)
		}
	}
	o.Tables = append(o.Tables, table)
	o.Notes = append(o.Notes,
		"A_f+2's worst case tracks the actual number of crashes (f+2, tight — the bound [5] later proved optimal);",
		"A_t+2 always pays t+2 because Phase 1 has a fixed length, regardless of how many crashes occur.")
	return o, nil
}

// E6EventualFast reproduces Lemma 15 and footnote 10: the eventual-fast-
// decision comparison between A_{f+2} (k+f+2) and the leader-based AMR
// (k+2f+2) in runs that are synchronous after round k with f crashes after
// round k.
//
// Table 1 isolates the per-crash cost at k=0 (synchronous runs): each
// crash costs A_{f+2} one round and AMR up to one full two-round attempt.
// Table 2 adds the adversarial asynchronous prefix (DivergencePrefix) that
// keeps A_{f+2}'s estimates diverged until the GSR, showing the k+f+2
// bound is attained exactly for every k and f.
func E6EventualFast() (*Outcome, error) {
	o := &Outcome{
		ID:    "E6",
		Title: "Eventual fast decision (Fig. 5): A_f+2 k+f+2 vs leader-based AMR k+2f+2",
	}

	crash := stats.NewTable("Table 1 - per-crash cost in synchronous runs (k=0): worst case over serial runs",
		"n", "t", "f", "A_f+2 worst", "f+2", "AMR worst", "2f+2")
	for _, tc := range []struct{ t, f int }{{1, 0}, {1, 1}, {2, 1}, {2, 2}} {
		n := 3*tc.t + 1
		mode := lowerbound.AllSubsets
		if n > 5 {
			mode = lowerbound.PrefixSubsets
		}
		maxCrashes := tc.f
		if maxCrashes == 0 {
			maxCrashes = -1
		}
		worst := make(map[string]model.Round, 2)
		for _, fac := range []model.Factory{core.NewAfPlus2(), baseline.NewAMR()} {
			res, err := lowerbound.Explore(lowerbound.Config{
				N: n, T: tc.t,
				Synchrony:     model.ES,
				Factory:       fac,
				Proposals:     distinctProposals(n),
				MaxCrashes:    maxCrashes,
				MaxCrashRound: model.Round(2*tc.f + 2),
				Mode:          mode,
			})
			if err != nil {
				return nil, fmt.Errorf("E6 crash cost t=%d f=%d: %w", tc.t, tc.f, err)
			}
			alg, _ := fac(model.ProcessContext{Self: 1, N: n, T: tc.t}, 1)
			worst[alg.Name()] = res.WorstRound
			o.expect(res.PropertyViolation == nil, "E6: %s violation: %v", alg.Name(), res.PropertyViolation)
		}
		af, am := worst[core.AfPlus2Name], worst[baseline.AMRName]
		crash.AddRowf(n, tc.t, tc.f, af, tc.f+2, am, 2*tc.f+2)
		o.expect(int(af) == tc.f+2, "E6: A_f+2 t=%d f=%d worst=%d want f+2=%d", tc.t, tc.f, af, tc.f+2)
		o.expect(am >= af, "E6: AMR t=%d f=%d faster (%d) than A_f+2 (%d)", tc.t, tc.f, am, af)
		o.expect(int(am) <= 2*tc.f+2, "E6: AMR t=%d f=%d worst=%d beyond 2f+2=%d", tc.t, tc.f, am, 2*tc.f+2)
		if tc.t == 1 && tc.f == 1 {
			o.expect(int(am) == 2*tc.f+2, "E6: AMR t=1 f=1 worst=%d, want the full 2f+2=%d", am, 2*tc.f+2)
		}
	}
	o.Tables = append(o.Tables, crash)

	prefix := stats.NewTable("Table 2 - A_f+2 under its adversarial prefix (DivergencePrefixFlood), f crashes after k",
		"n", "t", "k", "f", "A_f+2 worst", "k+f+2")
	for _, tc := range []struct {
		t, f int
		k    model.Round
	}{
		{1, 0, 2}, {1, 1, 2}, {1, 0, 4}, {1, 1, 4}, {1, 1, 6},
		{2, 1, 4},
	} {
		n := 3*tc.t + 1
		// All receiver subsets are affordable whenever at most one crash
		// is placed; only multi-crash sweeps at n=7 need the proof-style
		// prefix restriction.
		mode := lowerbound.AllSubsets
		if n > 5 && tc.f > 1 {
			mode = lowerbound.PrefixSubsets
		}
		maxCrashes := tc.f
		if maxCrashes == 0 {
			maxCrashes = -1
		}
		res, err := lowerbound.Explore(lowerbound.Config{
			Synchrony:       model.ES,
			Factory:         core.NewAfPlus2(),
			Proposals:       sched.DivergenceProposalsFlood(tc.t),
			Base:            sched.DivergencePrefixFlood(tc.t, tc.k),
			FirstCrashRound: tc.k + 1,
			MaxCrashes:      maxCrashes,
			MaxCrashRound:   tc.k + model.Round(tc.f+2),
			Mode:            mode,
		})
		if err != nil {
			return nil, fmt.Errorf("E6 prefix t=%d k=%d f=%d: %w", tc.t, tc.k, tc.f, err)
		}
		bound := int(tc.k) + tc.f + 2
		prefix.AddRowf(n, tc.t, tc.k, tc.f, res.WorstRound, bound)
		o.expect(int(res.WorstRound) == bound,
			"E6: A_f+2 prefix k=%d f=%d worst=%d want k+f+2=%d", tc.k, tc.f, res.WorstRound, bound)
		o.expect(res.PropertyViolation == nil, "E6: prefix violation: %v", res.PropertyViolation)
	}
	o.Tables = append(o.Tables, prefix)

	amrPrefix := stats.NewTable("Table 3 - AMR under its adversarial prefix (DivergencePrefixLeader), f crashes after k",
		"n", "t", "k", "f", "AMR worst", "k+2f+2")
	for _, tc := range []struct {
		t, f int
		k    model.Round
	}{
		{1, 0, 2}, {1, 1, 2}, {1, 0, 4}, {1, 1, 4}, {2, 1, 4},
	} {
		n := 3*tc.t + 1
		mode := lowerbound.AllSubsets
		if n > 5 && tc.f > 1 {
			mode = lowerbound.PrefixSubsets
		}
		maxCrashes := tc.f
		if maxCrashes == 0 {
			maxCrashes = -1
		}
		res, err := lowerbound.Explore(lowerbound.Config{
			Synchrony:       model.ES,
			Factory:         baseline.NewAMR(),
			Proposals:       sched.DivergenceProposalsLeader(tc.t),
			Base:            sched.DivergencePrefixLeader(tc.t, tc.k),
			FirstCrashRound: tc.k + 1,
			MaxCrashes:      maxCrashes,
			MaxCrashRound:   tc.k + model.Round(2*tc.f+2),
			Mode:            mode,
		})
		if err != nil {
			return nil, fmt.Errorf("E6 AMR prefix t=%d k=%d f=%d: %w", tc.t, tc.k, tc.f, err)
		}
		bound := int(tc.k) + 2*tc.f + 2
		amrPrefix.AddRowf(n, tc.t, tc.k, tc.f, res.WorstRound, bound)
		o.expect(int(res.WorstRound) == bound,
			"E6: AMR prefix k=%d f=%d worst=%d want k+2f+2=%d", tc.k, tc.f, res.WorstRound, bound)
		o.expect(res.PropertyViolation == nil, "E6: AMR prefix violation: %v", res.PropertyViolation)
	}
	o.Tables = append(o.Tables, amrPrefix)
	o.Notes = append(o.Notes,
		"Table 1: each late crash costs A_f+2 exactly one round (f+2 total) but can cost AMR a whole",
		"two-round leader attempt (2f+2 at t=1; the footnote-10 min-id leader recovers faster at larger t",
		"because leadership transfers instantly, so consecutive attempts cannot both be wasted);",
		"Tables 2-3: with adversarial asynchronous prefixes the k+f+2 bound of Lemma 15 is attained",
		"exactly by A_f+2 while AMR pays the full k+2f+2 of footnote 10 — the Sect. 6 separation.")
	return o, nil
}
