package experiments

import (
	"fmt"
	"math/rand"

	"indulgence/internal/check"
	"indulgence/internal/core"
	"indulgence/internal/lowerbound"
	"indulgence/internal/model"
	"indulgence/internal/sched"
	"indulgence/internal/sim"
)

// sweepResult aggregates decision-round measurements over a run family.
type sweepResult struct {
	runs            int
	worst           model.Round // largest global decision round
	earliest        model.Round // smallest per-process decision round seen
	undecided       bool
	violations      int
	eliminationErrs int
	haltClaimErrs   int
}

// serialWorst explores all serial runs of a factory and reports the worst
// and earliest decision rounds.
func serialWorst(factory model.Factory, n, t int, maxCrashRound model.Round, mode lowerbound.SubsetMode) (*sweepResult, error) {
	res, err := lowerbound.Explore(lowerbound.Config{
		N: n, T: t,
		Synchrony:     model.ES,
		Factory:       factory,
		Proposals:     distinctProposals(n),
		MaxCrashRound: maxCrashRound,
		Mode:          mode,
	})
	if err != nil {
		return nil, err
	}
	out := &sweepResult{
		runs:      res.Runs,
		worst:     res.WorstRound,
		earliest:  res.WitnessEarliest,
		undecided: res.Undecided,
	}
	if res.PropertyViolation != nil {
		out.violations = 1
	}
	return out, nil
}

// serialWorstSCS is serialWorst for algorithms that live in the
// synchronous crash-stop model (FloodSet, FloodSetWS).
func serialWorstSCS(factory model.Factory, n, t int, maxCrashRound model.Round, mode lowerbound.SubsetMode) (*sweepResult, error) {
	res, err := lowerbound.Explore(lowerbound.Config{
		N: n, T: t,
		Synchrony:     model.SCS,
		Factory:       factory,
		Proposals:     distinctProposals(n),
		MaxCrashRound: maxCrashRound,
		Mode:          mode,
	})
	if err != nil {
		return nil, err
	}
	out := &sweepResult{
		runs:      res.Runs,
		worst:     res.WorstRound,
		earliest:  res.WitnessEarliest,
		undecided: res.Undecided,
	}
	if res.PropertyViolation != nil {
		out.violations = 1
	}
	return out, nil
}

// sweepChunk bounds how many traced runs a batched sweep holds in memory
// at once: schedules are cheap and generated up front, but each traced
// Result retains every delivered message, so batches are processed (and
// released) chunk by chunk.
const sweepChunk = 256

// batchChunked executes cfgs through sim.RunBatch one chunk at a time,
// folding each chunk's results in input order before the next chunk runs —
// the parallelism of a full batch with the memory profile of a serial
// loop.
func batchChunked(cfgs []sim.Config, fold func(*sim.Result)) error {
	for start := 0; start < len(cfgs); start += sweepChunk {
		end := min(start+sweepChunk, len(cfgs))
		results, err := sim.RunBatch(0, cfgs[start:end])
		if err != nil {
			// RunBatch reports a chunk-relative index; name the absolute
			// sample range so a failure can be localized.
			return fmt.Errorf("samples %d..%d: %w", start, end-1, err)
		}
		for _, res := range results {
			fold(res)
		}
	}
	return nil
}

// randomSynchronousSweep runs the factory over `samples` random synchronous
// schedules (arbitrary crash patterns, not just serial) and aggregates
// decision rounds; with checkCore it additionally replays the elimination
// and Halt checks of A_{t+2} on each recorded run. The schedules are drawn
// serially (the rng stream is identical to a serial sweep), the runs fan
// out over the shared sim.RunBatch worker pool in bounded chunks, and the
// measurements are folded in sample order — the resulting tables are
// byte-identical for any worker count.
func randomSynchronousSweep(factory model.Factory, n, t, samples int, seed int64, checkCore bool) (*sweepResult, error) {
	rng := rand.New(rand.NewSource(seed))
	out := &sweepResult{earliest: 1 << 30}
	props := distinctProposals(n)
	cfgs := make([]sim.Config, samples)
	for i := range cfgs {
		cfgs[i] = sim.Config{
			Synchrony: model.ES,
			Schedule: sched.RandomSynchronous(n, t, sched.RandomOpts{
				Rng:             rng,
				MaxCrashRound:   model.Round(t + 2),
				DelayCrashSends: true,
			}),
			Proposals: props,
			Factory:   factory,
		}
	}
	err := batchChunked(cfgs, func(res *sim.Result) {
		out.runs++
		gdr, decided := res.GlobalDecisionRound()
		if !decided || !res.AllAliveDecided {
			out.undecided = true
			return
		}
		if gdr > out.worst {
			out.worst = gdr
		}
		if e, ok := check.EarliestDecisionRound(res); ok && e < out.earliest {
			out.earliest = e
		}
		if rep := check.Consensus(res, props); !rep.Validity || !rep.Agreement {
			out.violations++
		}
		if checkCore && res.Run != nil {
			if err := core.CheckElimination(res.Run); err != nil {
				out.eliminationErrs++
			}
			if err := core.CheckSynchronousHalt(res.Run); err != nil {
				out.haltClaimErrs++
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("random sweep: %w", err)
	}
	return out, nil
}

// runOnce simulates a single schedule and returns the result and report.
func runOnce(factory model.Factory, s *sched.Schedule, props []model.Value) (*sim.Result, check.Report, error) {
	res, err := sim.Run(sim.Config{
		Synchrony: model.ES,
		Schedule:  s,
		Proposals: props,
		Factory:   factory,
	})
	if err != nil {
		return nil, check.Report{}, err
	}
	return res, check.Consensus(res, props), nil
}

// runPair simulates two factory/schedule pairs (typically an ablated and a
// faithful variant on the same adversary) concurrently on the shared
// worker pool and returns both results with their consensus reports.
func runPair(fa model.Factory, sa *sched.Schedule, fb model.Factory, sb *sched.Schedule, props []model.Value) (ra, rb *sim.Result, repa, repb check.Report, err error) {
	results, err := sim.RunBatch(0, []sim.Config{
		{Synchrony: model.ES, Schedule: sa, Proposals: props, Factory: fa},
		{Synchrony: model.ES, Schedule: sb, Proposals: props, Factory: fb},
	})
	if err != nil {
		return nil, nil, check.Report{}, check.Report{}, err
	}
	ra, rb = results[0], results[1]
	return ra, rb, check.Consensus(ra, props), check.Consensus(rb, props), nil
}

// gdrOf returns the global decision round or 0.
func gdrOf(res *sim.Result) model.Round {
	gdr, _ := res.GlobalDecisionRound()
	return gdr
}

// schedFailureFree returns the failure-free synchronous schedule.
func schedFailureFree(n, t int) *sched.Schedule { return sched.FailureFree(n, t) }

// schedpkgSchedule aliases the schedule type for experiment tables.
type schedpkgSchedule = sched.Schedule

// witnessFailureFree is the worst-run witness of the flooding algorithms,
// whose decision round is the same in every synchronous run.
func witnessFailureFree(n, t int) *schedpkgSchedule { return sched.FailureFree(n, t) }

// witnessKiller returns the coordinator-killer witness builder for a
// rotating-coordinator algorithm with the given phase length.
func witnessKiller(roundsPerPhase int) func(n, t int) *schedpkgSchedule {
	return func(n, t int) *schedpkgSchedule {
		return sched.KillCoordinators(n, t, roundsPerPhase)
	}
}
