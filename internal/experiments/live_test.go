package experiments_test

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"indulgence/internal/experiments"
)

// TestE9VirtualTime pins the two properties the virtual-clock port of
// E9 exists for: the whole experiment — 80ms delay windows, 200ms heal
// schedules, crash scenarios — finishes in well under 100ms of wall
// time, and one seed reproduces one decision log, byte for byte.
func TestE9VirtualTime(t *testing.T) {
	// The replay contract is per-schedule; schedules are exact only
	// under cooperative scheduling.
	prev := runtime.GOMAXPROCS(1)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })

	start := time.Now()
	first, fails := experiments.E9DecisionLog(7)
	elapsed := time.Since(start)
	for _, f := range fails {
		t.Errorf("seeded E9 run failed: %s", f)
	}
	if first == "" {
		t.Fatal("empty decision log")
	}
	if elapsed >= 100*time.Millisecond {
		t.Errorf("E9 on virtual time took %v wall, want < 100ms", elapsed)
	}
	if !strings.Contains(first, "round=") || !strings.Contains(first, "latency=") {
		t.Fatalf("decision log missing expected fields:\n%s", first)
	}

	again, fails := experiments.E9DecisionLog(7)
	for _, f := range fails {
		t.Errorf("seeded E9 rerun failed: %s", f)
	}
	if first != again {
		t.Errorf("same seed, different decision logs:\n--- first\n%s--- again\n%s", first, again)
	}
}
