// Package experiments encodes the paper's measurable claims (R1–R10 in
// DESIGN.md) as reusable experiment runners. Each runner executes the
// relevant run families — exhaustive serial-run explorations, adversarial
// constructions, random sweeps — and returns a rendered table together
// with a machine-checkable pass/fail verdict comparing the measurements
// against the paper's formulas. The benchmark harness (bench_test.go), the
// CLI (cmd/indulgence) and EXPERIMENTS.md are all generated from these
// runners, so the reported numbers can never drift from the checked ones.
package experiments

import (
	"fmt"

	"indulgence/internal/model"
	"indulgence/internal/stats"
)

// Outcome is the result of one experiment.
type Outcome struct {
	// ID is the experiment identifier (E1..E9, A1..A4).
	ID string
	// Title is a one-line description.
	Title string
	// Tables holds the rendered result tables.
	Tables []*stats.Table
	// Notes holds human-readable observations printed after the tables.
	Notes []string
	// Failures lists expectation mismatches; empty means the paper's
	// claim was reproduced.
	Failures []string
}

// OK reports whether every expectation of the experiment was met.
func (o *Outcome) OK() bool { return len(o.Failures) == 0 }

// String renders the outcome.
func (o *Outcome) String() string {
	s := fmt.Sprintf("== %s: %s ==\n", o.ID, o.Title)
	for _, t := range o.Tables {
		s += t.String()
	}
	for _, n := range o.Notes {
		s += "note: " + n + "\n"
	}
	if o.OK() {
		s += "RESULT: PASS (paper claim reproduced)\n"
	} else {
		s += "RESULT: FAIL\n"
		for _, f := range o.Failures {
			s += "  - " + f + "\n"
		}
	}
	return s
}

// expect records a failure when the condition does not hold.
func (o *Outcome) expect(cond bool, format string, args ...any) {
	if !cond {
		o.Failures = append(o.Failures, fmt.Sprintf(format, args...))
	}
}

// distinctProposals returns the canonical worst-case initial configuration
// 1..n (all proposals distinct, so flooding algorithms must genuinely
// converge).
func distinctProposals(n int) []model.Value {
	out := make([]model.Value, n)
	for i := range out {
		out[i] = model.Value(i + 1)
	}
	return out
}

// All runs every simulator-backed experiment (E1–E8 and the four
// ablations) with test-sized parameters and returns the outcomes in order.
// The live-runtime experiment E9 is separate (it needs wall-clock time).
func All() ([]*Outcome, error) {
	runners := []func() (*Outcome, error){
		E1LowerBound,
		func() (*Outcome, error) { return E2FastDecision(200, 1) },
		func() (*Outcome, error) { return E3PriceTable(2) },
		E4FailureFree,
		E5EarlyDecision,
		E6EventualFast,
		func() (*Outcome, error) { return E7FDSimulation(100, 1) },
		E8ResiliencePrice,
		E10AverageCase,
		AblationPhase1,
		AblationHaltExchange,
		AblationThreshold,
		AblationPlurality,
	}
	out := make([]*Outcome, 0, len(runners))
	for _, r := range runners {
		o, err := r()
		if err != nil {
			return out, err
		}
		out = append(out, o)
	}
	return out, nil
}
