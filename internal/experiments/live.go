package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"indulgence/internal/adapt"
	"indulgence/internal/chaos"
	"indulgence/internal/chaos/clock"
	"indulgence/internal/core"
	"indulgence/internal/model"
	"indulgence/internal/runtime"
	"indulgence/internal/service"
	"indulgence/internal/stats"
	"indulgence/internal/transport"
)

// liveScenario describes one live execution, served through the
// consensus service layer.
type liveScenario struct {
	name        string
	n, t        int
	factory     model.Factory
	policy      core.WaitPolicy
	baseTimeout time.Duration
	// adaptive, when true, attaches the control plane with per-instance
	// algorithm selection.
	adaptive bool
	// disturb, if non-nil, runs on the instance's OnInstance hook —
	// after the cluster is assembled, before its rounds start — with the
	// scenario's clock (for scheduling the heal), hub (delay injection)
	// and cluster (crash injection); it returns the number of crashed
	// processes.
	disturb func(clk clock.Clock, hub *transport.Hub, cl *runtime.Cluster) int
	// wantRound, if non-zero, is the exact global decision round
	// expected of the instance.
	wantRound model.Round
	// wantAlg, if non-empty, is the algorithm every decided instance
	// must have run (adaptive scenarios).
	wantAlg string
}

// liveRow is one scenario's rendered outcome, plus its line in the
// canonical decision log.
type liveRow struct {
	cells []any
	log   string
	fails []string
}

// e9Scenarios is the fixed scenario set of E9. Timings are virtual:
// the injected 80ms delay and 200ms heal cost two discrete events, not
// wall time.
func e9Scenarios() []liveScenario {
	return []liveScenario{
		{
			name: "quiet network, A_t+2", n: 5, t: 2,
			factory:     core.New(core.Options{}),
			baseTimeout: 50 * time.Millisecond,
			wantRound:   4, // t+2
		},
		{
			name: "quiet network, A_t+2+ff", n: 5, t: 2,
			factory:     core.New(core.Options{FailureFreeFast: true}),
			baseTimeout: 50 * time.Millisecond,
			wantRound:   2,
		},
		{
			name: "quiet network, A_dS (wait-quorum)", n: 5, t: 2,
			factory:     core.NewDiamondS(),
			policy:      core.WaitQuorum,
			baseTimeout: 50 * time.Millisecond,
		},
		{
			name: "quiet network, adaptive selection", n: 4, t: 1,
			factory:     core.New(core.Options{}),
			baseTimeout: 50 * time.Millisecond,
			adaptive:    true,
			wantAlg:     core.AfPlus2Name, // synchronous + trusted => the fast rung
		},
		{
			name: "async period: p1 delayed 80ms, A_t+2", n: 5, t: 2,
			factory:     core.New(core.Options{}),
			baseTimeout: 10 * time.Millisecond,
			disturb: func(clk clock.Clock, hub *transport.Hub, _ *runtime.Cluster) int {
				hub.DelayProcess(1, 80*time.Millisecond)
				clk.AfterFunc(200*time.Millisecond, hub.Heal)
				return 0
			},
		},
		{
			name: "crash p2 at start, A_t+2", n: 5, t: 2,
			factory:     core.New(core.Options{}),
			baseTimeout: 10 * time.Millisecond,
			disturb: func(_ clock.Clock, _ *transport.Hub, cl *runtime.Cluster) int {
				_ = cl.Crash(2)
				return 1
			},
		},
		{
			name: "crash p1+p2, A_f+2", n: 7, t: 2,
			factory:     core.NewAfPlus2(),
			baseTimeout: 10 * time.Millisecond,
			disturb: func(_ clock.Clock, _ *transport.Hub, cl *runtime.Cluster) int {
				_ = cl.Crash(1)
				_ = cl.Crash(2)
				return 2
			},
		},
	}
}

// E9LiveRuntime validates the engineering claim behind indulgence on the
// consensus service itself — the same layer bench-service loads — over
// the in-memory transport: each scenario proposes n distinct values,
// which the service batches into one consensus instance, so the quiet
// network decides at exactly t+2 rounds, and injected delay periods
// (false suspicions) and crash injections slow decisions down but never
// endanger validity or agreement (the service's own check.Instance audit
// must stay silent). Every scenario runs on its own virtual clock behind
// the chaos fault fabric, so the whole experiment — 80ms delay windows,
// 200ms heal schedules and all — costs milliseconds of wall time and is
// reproducible from its seed (see E9DecisionLog).
func E9LiveRuntime() (*Outcome, error) {
	o := &Outcome{
		ID:    "E9",
		Title: "Live service: indulgence under virtual time (in-memory transport, chaos fabric)",
	}
	scenarios := e9Scenarios()
	rows := make([]liveRow, len(scenarios))
	for i, sc := range scenarios {
		rows[i] = runLiveScenario(sc, 1)
	}

	table := stats.NewTable("Live service outcomes (one instance per scenario, virtual time)",
		"scenario", "n", "t", "crashes", "agreed value", "round", "virtual decision latency")
	for i, row := range rows {
		table.AddRowf(row.cells...)
		for _, f := range rows[i].fails {
			o.expect(false, "%s", f)
		}
	}
	o.Tables = append(o.Tables, table)
	o.Notes = append(o.Notes,
		"delay injection causes false suspicions and extra rounds but never endangers agreement — the",
		"operational meaning of indulgence; with a quiet network A_t+2 hits its t+2 fast path exactly,",
		"and the adaptive control plane keeps the non-indulgent A_f+2 selected while the cluster stays",
		"synchronous and trusted. All scenarios ride the service layer (batching, muxes, futures) on",
		"virtual clocks: latencies are simulated time, and the same seed replays the same schedule.")
	return o, nil
}

// E9DecisionLog runs every E9 scenario on virtual clocks and returns the
// canonical decision log plus any failures. The log is the experiment's
// reproducibility witness: for one seed, two runs (on a cooperatively
// scheduled runtime — pin GOMAXPROCS to 1) must produce identical bytes,
// because every cross-process frame is a tagged clock event whose
// ordering is a pure function of (seed, frame contents).
func E9DecisionLog(seed int64) (string, []string) {
	var b strings.Builder
	var fails []string
	for _, sc := range e9Scenarios() {
		row := runLiveScenario(sc, seed)
		b.WriteString(row.log)
		fails = append(fails, row.fails...)
	}
	return b.String(), fails
}

// runLiveScenario drives one scenario through a dedicated service on a
// fresh virtual clock: the n distinct proposals batch into a single
// consensus instance, the scenario's disturbance fires on the instance
// hook, and the service's snapshot (check.Instance audit included) is
// the verdict. The endpoints are wrapped in a quiet chaos fabric — no
// faults, but every cross-process frame becomes a seed-tagged clock
// event, which is what makes the schedule replayable.
func runLiveScenario(sc liveScenario, seed int64) liveRow {
	fail := func(format string, args ...any) liveRow {
		msg := fmt.Sprintf("E9 %s: %s", sc.name, fmt.Sprintf(format, args...))
		return liveRow{
			cells: []any{sc.name, sc.n, sc.t, "-", "-", "-", "-"},
			log:   fmt.Sprintf("%s: FAILED\n", sc.name),
			fails: []string{msg},
		}
	}
	clk := clock.NewVirtual()
	virtStart := clk.Now()
	hub, err := transport.NewHubClock(sc.n, clk)
	if err != nil {
		return fail("%v", err)
	}
	defer func() { _ = hub.Close() }()
	nw := chaos.NewNetwork(chaos.Scenario{Seed: seed}, clk)
	eps := make([]transport.Transport, sc.n)
	for i := 0; i < sc.n; i++ {
		ep, err := hub.Endpoint(model.ProcessID(i + 1))
		if err != nil {
			return fail("%v", err)
		}
		eps[i] = nw.Wrap(ep)
	}
	crashes := 0
	cfg := service.Config{
		N: sc.n, T: sc.t,
		Factory:     sc.factory,
		WaitPolicy:  sc.policy,
		BaseTimeout: sc.baseTimeout,
		MaxBatch:    sc.n,
		Linger:      500 * time.Millisecond, // the batch fills to n long before this
		MaxInflight: 1,
		Clock:       clk,
		OnInstance: func(_ uint64, cl *runtime.Cluster) {
			if sc.disturb != nil {
				crashes = sc.disturb(clk, hub, cl)
			}
		},
	}
	if sc.adaptive {
		// Pin the controller's actuation envelope to the scenario's
		// static point: the scenario exercises algorithm selection, and
		// a controller free to decay the linger below the batch-fill
		// window could split the single n-proposal batch on a slow box.
		cfg.Adaptive = &adapt.Config{
			SelectAlgorithms: true,
			MinBatch:         cfg.MaxBatch, MaxBatch: cfg.MaxBatch,
			MinLinger: cfg.Linger, MaxLinger: cfg.Linger,
		}
	}
	svc, err := service.New(cfg, eps)
	if err != nil {
		return fail("%v", err)
	}
	defer func() { _ = svc.Close() }()

	futs := make([]*service.Future, sc.n)
	for i := range futs {
		if futs[i], err = svc.Propose(context.Background(), model.Value(i+1)); err != nil {
			return fail("propose: %v", err)
		}
	}
	decs := make([]service.Decision, sc.n)
	errs := make([]error, sc.n)
	var wg sync.WaitGroup
	wg.Add(sc.n)
	for i, fut := range futs {
		i, fut := i, fut
		go func() {
			defer wg.Done()
			decs[i], errs[i] = fut.Wait(context.Background())
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// Drive the virtual schedule until every future resolves. A healthy
	// scenario finishes well inside a virtual second; the cap and wall
	// watchdog only catch bugs (fd tickers keep the event queue alive
	// forever, so a dry queue is not the wedge signal here).
	const virtualCap = 30 * time.Second
	wallDeadline := time.Now().Add(15 * time.Second)
	finished := false
	for !finished {
		clk.Settle()
		select {
		case <-done:
			finished = true
			continue
		default:
		}
		if clk.Now().Sub(virtStart) > virtualCap || time.Now().After(wallDeadline) {
			break
		}
		if !clk.Step() {
			clk.Settle()
			select {
			case <-done:
				finished = true
			default:
			}
			if !finished {
				break
			}
		}
	}
	if !finished {
		svc.Abort()
		<-done
		return fail("wedged after %v virtual", clk.Now().Sub(virtStart))
	}
	var dec service.Decision
	for i := range futs {
		if errs[i] != nil {
			return fail("wait: %v", errs[i])
		}
		if i == 0 {
			dec = decs[i]
		} else if decs[i] != dec {
			return fail("batch split across decisions: %+v vs %+v", decs[i], dec)
		}
	}
	if err := svc.Close(); err != nil {
		return fail("close: %v", err)
	}
	st := svc.Snapshot()

	latency := st.DecisionLatency.Max.Round(time.Microsecond)
	row := liveRow{
		cells: []any{sc.name, sc.n, sc.t, crashes, dec.Value, dec.Round, latency},
		log: fmt.Sprintf("%s: val=%d round=%d batch=%d crashes=%d latency=%v\n",
			sc.name, dec.Value, dec.Round, dec.Batch, crashes, latency),
	}
	expect := func(cond bool, format string, args ...any) {
		if !cond {
			row.fails = append(row.fails, fmt.Sprintf("E9 %s: %s", sc.name, fmt.Sprintf(format, args...)))
		}
	}
	// The service audits every instance with check.Instance: validity,
	// uniform agreement, and termination with crash-injected processes
	// excused. A silent audit is the scenario's core claim.
	expect(len(st.Violations) == 0, "check violations: %v", st.Violations)
	expect(st.Instances == 1 && st.Resolved == sc.n, "stats = %+v", st)
	expect(dec.Value >= 1 && int(dec.Value) <= sc.n, "decided unproposed value %d", dec.Value)
	expect(dec.Batch == sc.n, "batch = %d, want %d", dec.Batch, sc.n)
	if sc.wantRound != 0 {
		expect(dec.Round == sc.wantRound, "decision round %d, want exactly %d", dec.Round, sc.wantRound)
	}
	if sc.wantAlg != "" {
		expect(st.Algorithms[sc.wantAlg] == st.Instances,
			"algorithm mix %v, want every instance on %s", st.Algorithms, sc.wantAlg)
	}
	return row
}
