package experiments

import (
	"context"
	"fmt"
	"time"

	"indulgence/internal/core"
	"indulgence/internal/model"
	"indulgence/internal/runtime"
	"indulgence/internal/stats"
	"indulgence/internal/transport"
)

// liveScenario describes one live execution.
type liveScenario struct {
	name        string
	n, t        int
	factory     model.Factory
	policy      core.WaitPolicy
	baseTimeout time.Duration
	// disturb, if non-nil, runs alongside the cluster (delay injection,
	// crashes) and returns the number of crashed processes.
	disturb func(hub *transport.Hub, cl *runtime.Cluster) int
	// wantRound, if non-zero, is the exact decision round expected of
	// every deciding process.
	wantRound model.Round
}

// E9LiveRuntime validates the engineering claim behind indulgence on live
// goroutine clusters over the in-memory transport: with a quiet network
// the fast path decides at exactly t+2 rounds; injected delay periods
// (false suspicions) and crash injections slow decisions down but never
// endanger validity or agreement. Wall-clock latencies are reported for
// scale.
func E9LiveRuntime() (*Outcome, error) {
	o := &Outcome{
		ID:    "E9",
		Title: "Live runtime: indulgence under real concurrency (in-memory transport)",
	}
	scenarios := []liveScenario{
		{
			name: "quiet network, A_t+2", n: 5, t: 2,
			factory:     core.New(core.Options{}),
			baseTimeout: 50 * time.Millisecond,
			wantRound:   4, // t+2
		},
		{
			name: "quiet network, A_t+2+ff", n: 5, t: 2,
			factory:     core.New(core.Options{FailureFreeFast: true}),
			baseTimeout: 50 * time.Millisecond,
			wantRound:   2,
		},
		{
			name: "quiet network, A_dS (wait-quorum)", n: 5, t: 2,
			factory:     core.NewDiamondS(),
			policy:      core.WaitQuorum,
			baseTimeout: 50 * time.Millisecond,
		},
		{
			name: "async period: p1 delayed 80ms, A_t+2", n: 5, t: 2,
			factory:     core.New(core.Options{}),
			baseTimeout: 10 * time.Millisecond,
			disturb: func(hub *transport.Hub, _ *runtime.Cluster) int {
				hub.DelayProcess(1, 80*time.Millisecond)
				time.AfterFunc(200*time.Millisecond, hub.Heal)
				return 0
			},
		},
		{
			name: "crash p2 at start, A_t+2", n: 5, t: 2,
			factory:     core.New(core.Options{}),
			baseTimeout: 10 * time.Millisecond,
			disturb: func(_ *transport.Hub, cl *runtime.Cluster) int {
				_ = cl.Crash(2)
				return 1
			},
		},
		{
			name: "crash p1+p2, A_f+2", n: 7, t: 2,
			factory:     core.NewAfPlus2(),
			baseTimeout: 10 * time.Millisecond,
			disturb: func(_ *transport.Hub, cl *runtime.Cluster) int {
				_ = cl.Crash(1)
				_ = cl.Crash(2)
				return 2
			},
		},
	}

	table := stats.NewTable("Live cluster outcomes",
		"scenario", "n", "t", "deciders", "agreed value", "rounds (min..max)", "latency (max)")
	for _, sc := range scenarios {
		if err := runLiveScenario(o, table, sc); err != nil {
			return nil, err
		}
	}
	o.Tables = append(o.Tables, table)
	o.Notes = append(o.Notes,
		"delay injection causes false suspicions and extra rounds but never endangers agreement — the",
		"operational meaning of indulgence; with a quiet network A_t+2 hits its t+2 fast path exactly.")
	return o, nil
}

func runLiveScenario(o *Outcome, table *stats.Table, sc liveScenario) error {
	hub, err := transport.NewHub(sc.n)
	if err != nil {
		return fmt.Errorf("E9 %s: %w", sc.name, err)
	}
	defer func() { _ = hub.Close() }()
	eps := make([]transport.Transport, sc.n)
	for i := 0; i < sc.n; i++ {
		ep, err := hub.Endpoint(model.ProcessID(i + 1))
		if err != nil {
			return fmt.Errorf("E9 %s: %w", sc.name, err)
		}
		eps[i] = ep
	}
	cl, err := runtime.New(runtime.Config{
		N: sc.n, T: sc.t,
		Factory:     sc.factory,
		Proposals:   distinctProposals(sc.n),
		Endpoints:   eps,
		WaitPolicy:  sc.policy,
		BaseTimeout: sc.baseTimeout,
	})
	if err != nil {
		return fmt.Errorf("E9 %s: %w", sc.name, err)
	}
	crashes := 0
	if sc.disturb != nil {
		crashes = sc.disturb(hub, cl)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, err := cl.Run(ctx)
	if err != nil {
		return fmt.Errorf("E9 %s: %w", sc.name, err)
	}

	var (
		deciders           int
		value              model.Value
		haveValue, agreed  = false, true
		minRound, maxRound model.Round
		maxLatency         time.Duration
	)
	for _, r := range results {
		v, ok := r.Decision.Get()
		if !ok {
			continue
		}
		deciders++
		if !haveValue {
			value, haveValue = v, true
			minRound, maxRound = r.Round, r.Round
		} else {
			if v != value {
				agreed = false
			}
			if r.Round < minRound {
				minRound = r.Round
			}
			if r.Round > maxRound {
				maxRound = r.Round
			}
		}
		if r.Elapsed > maxLatency {
			maxLatency = r.Elapsed
		}
	}
	table.AddRowf(sc.name, sc.n, sc.t, deciders, value,
		fmt.Sprintf("%d..%d", minRound, maxRound), maxLatency.Round(time.Millisecond))
	o.expect(agreed, "E9 %s: agreement violated", sc.name)
	o.expect(deciders >= sc.n-crashes, "E9 %s: only %d of %d live processes decided", sc.name, deciders, sc.n-crashes)
	o.expect(value >= 1 && int(value) <= sc.n, "E9 %s: decided unproposed value %d", sc.name, value)
	if sc.wantRound != 0 {
		o.expect(minRound == sc.wantRound && maxRound == sc.wantRound,
			"E9 %s: decision rounds %d..%d, want exactly %d", sc.name, minRound, maxRound, sc.wantRound)
	}
	return nil
}
