package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"indulgence/internal/adapt"
	"indulgence/internal/core"
	"indulgence/internal/model"
	"indulgence/internal/runtime"
	"indulgence/internal/service"
	"indulgence/internal/stats"
	"indulgence/internal/transport"
)

// liveScenario describes one live execution, served through the
// consensus service layer.
type liveScenario struct {
	name        string
	n, t        int
	factory     model.Factory
	policy      core.WaitPolicy
	baseTimeout time.Duration
	// adaptive, when true, attaches the control plane with per-instance
	// algorithm selection.
	adaptive bool
	// disturb, if non-nil, runs on the instance's OnInstance hook —
	// after the cluster is assembled, before its rounds start — with the
	// scenario's hub (delay injection) and cluster (crash injection);
	// it returns the number of crashed processes.
	disturb func(hub *transport.Hub, cl *runtime.Cluster) int
	// wantRound, if non-zero, is the exact global decision round
	// expected of the instance.
	wantRound model.Round
	// wantAlg, if non-empty, is the algorithm every decided instance
	// must have run (adaptive scenarios).
	wantAlg string
}

// liveRow is one scenario's rendered outcome, collected concurrently and
// tabled in scenario order.
type liveRow struct {
	cells []any
	fails []string
}

// E9LiveRuntime validates the engineering claim behind indulgence on the
// consensus service itself — the same layer bench-service loads — over
// the in-memory transport: each scenario proposes n distinct values,
// which the service batches into one consensus instance, so the quiet
// network decides at exactly t+2 rounds, and injected delay periods
// (false suspicions) and crash injections slow decisions down but never
// endanger validity or agreement (the service's own check.Instance audit
// must stay silent). Scenarios run concurrently, giving the experiment
// wall-clock parity with the bench instead of paying each disturbance's
// injected delay serially.
func E9LiveRuntime() (*Outcome, error) {
	o := &Outcome{
		ID:    "E9",
		Title: "Live service: indulgence under real concurrency (in-memory transport)",
	}
	scenarios := []liveScenario{
		{
			name: "quiet network, A_t+2", n: 5, t: 2,
			factory:     core.New(core.Options{}),
			baseTimeout: 50 * time.Millisecond,
			wantRound:   4, // t+2
		},
		{
			name: "quiet network, A_t+2+ff", n: 5, t: 2,
			factory:     core.New(core.Options{FailureFreeFast: true}),
			baseTimeout: 50 * time.Millisecond,
			wantRound:   2,
		},
		{
			name: "quiet network, A_dS (wait-quorum)", n: 5, t: 2,
			factory:     core.NewDiamondS(),
			policy:      core.WaitQuorum,
			baseTimeout: 50 * time.Millisecond,
		},
		{
			name: "quiet network, adaptive selection", n: 4, t: 1,
			factory:     core.New(core.Options{}),
			baseTimeout: 50 * time.Millisecond,
			adaptive:    true,
			wantAlg:     core.AfPlus2Name, // synchronous + trusted => the fast rung
		},
		{
			name: "async period: p1 delayed 80ms, A_t+2", n: 5, t: 2,
			factory:     core.New(core.Options{}),
			baseTimeout: 10 * time.Millisecond,
			disturb: func(hub *transport.Hub, _ *runtime.Cluster) int {
				hub.DelayProcess(1, 80*time.Millisecond)
				time.AfterFunc(200*time.Millisecond, hub.Heal)
				return 0
			},
		},
		{
			name: "crash p2 at start, A_t+2", n: 5, t: 2,
			factory:     core.New(core.Options{}),
			baseTimeout: 10 * time.Millisecond,
			disturb: func(_ *transport.Hub, cl *runtime.Cluster) int {
				_ = cl.Crash(2)
				return 1
			},
		},
		{
			name: "crash p1+p2, A_f+2", n: 7, t: 2,
			factory:     core.NewAfPlus2(),
			baseTimeout: 10 * time.Millisecond,
			disturb: func(_ *transport.Hub, cl *runtime.Cluster) int {
				_ = cl.Crash(1)
				_ = cl.Crash(2)
				return 2
			},
		},
	}

	rows := make([]liveRow, len(scenarios))
	var wg sync.WaitGroup
	for i, sc := range scenarios {
		wg.Add(1)
		go func(i int, sc liveScenario) {
			defer wg.Done()
			rows[i] = runLiveScenario(sc)
		}(i, sc)
	}
	wg.Wait()

	table := stats.NewTable("Live service outcomes (one instance per scenario, scenarios concurrent)",
		"scenario", "n", "t", "crashes", "agreed value", "round", "decision latency")
	for i, row := range rows {
		table.AddRowf(row.cells...)
		for _, f := range rows[i].fails {
			o.expect(false, "%s", f)
		}
	}
	o.Tables = append(o.Tables, table)
	o.Notes = append(o.Notes,
		"delay injection causes false suspicions and extra rounds but never endangers agreement — the",
		"operational meaning of indulgence; with a quiet network A_t+2 hits its t+2 fast path exactly,",
		"and the adaptive control plane keeps the non-indulgent A_f+2 selected while the cluster stays",
		"synchronous and trusted. All scenarios ride the service layer (batching, muxes, futures).")
	return o, nil
}

// runLiveScenario drives one scenario through a dedicated service: the
// n distinct proposals batch into a single consensus instance, the
// scenario's disturbance fires on the instance hook, and the service's
// snapshot (check.Instance audit included) is the verdict.
func runLiveScenario(sc liveScenario) liveRow {
	fail := func(format string, args ...any) liveRow {
		return liveRow{
			cells: []any{sc.name, sc.n, sc.t, "-", "-", "-", "-"},
			fails: []string{fmt.Sprintf("E9 %s: %s", sc.name, fmt.Sprintf(format, args...))},
		}
	}
	hub, err := transport.NewHub(sc.n)
	if err != nil {
		return fail("%v", err)
	}
	defer func() { _ = hub.Close() }()
	eps := make([]transport.Transport, sc.n)
	for i := 0; i < sc.n; i++ {
		ep, err := hub.Endpoint(model.ProcessID(i + 1))
		if err != nil {
			return fail("%v", err)
		}
		eps[i] = ep
	}
	crashes := 0
	cfg := service.Config{
		N: sc.n, T: sc.t,
		Factory:     sc.factory,
		WaitPolicy:  sc.policy,
		BaseTimeout: sc.baseTimeout,
		MaxBatch:    sc.n,
		Linger:      500 * time.Millisecond, // the batch fills to n long before this
		MaxInflight: 1,
		OnInstance: func(_ uint64, cl *runtime.Cluster) {
			if sc.disturb != nil {
				crashes = sc.disturb(hub, cl)
			}
		},
	}
	if sc.adaptive {
		// Pin the controller's actuation envelope to the scenario's
		// static point: the scenario exercises algorithm selection, and
		// a controller free to decay the linger below the batch-fill
		// window could split the single n-proposal batch on a slow box.
		cfg.Adaptive = &adapt.Config{
			SelectAlgorithms: true,
			MinBatch:         cfg.MaxBatch, MaxBatch: cfg.MaxBatch,
			MinLinger: cfg.Linger, MaxLinger: cfg.Linger,
		}
	}
	svc, err := service.New(cfg, eps)
	if err != nil {
		return fail("%v", err)
	}
	defer func() { _ = svc.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	futs := make([]*service.Future, sc.n)
	for i := range futs {
		if futs[i], err = svc.Propose(ctx, model.Value(i+1)); err != nil {
			return fail("propose: %v", err)
		}
	}
	var dec service.Decision
	for i, fut := range futs {
		d, err := fut.Wait(ctx)
		if err != nil {
			return fail("wait: %v", err)
		}
		if i == 0 {
			dec = d
		} else if d != dec {
			return fail("batch split across decisions: %+v vs %+v", d, dec)
		}
	}
	if err := svc.Close(); err != nil {
		return fail("close: %v", err)
	}
	st := svc.Snapshot()

	row := liveRow{cells: []any{sc.name, sc.n, sc.t, crashes, dec.Value, dec.Round,
		st.DecisionLatency.Max.Round(time.Millisecond)}}
	expect := func(cond bool, format string, args ...any) {
		if !cond {
			row.fails = append(row.fails, fmt.Sprintf("E9 %s: %s", sc.name, fmt.Sprintf(format, args...)))
		}
	}
	// The service audits every instance with check.Instance: validity,
	// uniform agreement, and termination with crash-injected processes
	// excused. A silent audit is the scenario's core claim.
	expect(len(st.Violations) == 0, "check violations: %v", st.Violations)
	expect(st.Instances == 1 && st.Resolved == sc.n, "stats = %+v", st)
	expect(dec.Value >= 1 && int(dec.Value) <= sc.n, "decided unproposed value %d", dec.Value)
	expect(dec.Batch == sc.n, "batch = %d, want %d", dec.Batch, sc.n)
	if sc.wantRound != 0 {
		expect(dec.Round == sc.wantRound, "decision round %d, want exactly %d", dec.Round, sc.wantRound)
	}
	if sc.wantAlg != "" {
		expect(st.Algorithms[sc.wantAlg] == st.Instances,
			"algorithm mix %v, want every instance on %s", st.Algorithms, sc.wantAlg)
	}
	return row
}
